(* End-to-end fuzzing: generate random programs in the supported
   fragment, push them through the whole pipeline (parse -> dependence
   extraction -> joint time/space optimization -> cycle-accurate
   simulation) and require a clean run whenever a mapping exists.

   This is the cross-cutting invariant of the repository: anything the
   front end accepts and the optimizers map must simulate without
   computational conflicts, causality violations or value errors. *)

let var_names = [| "i"; "j"; "k" |]

(* A random single-statement program over [nv] loop variables: one
   output accumulation plus 1-2 input references with small offsets. *)
let random_program rng =
  let nv = 2 + Random.State.int rng 2 in
  let bounds =
    List.init nv (fun v -> Printf.sprintf "%s = 0..%d" var_names.(v) (2 + Random.State.int rng 3))
  in
  let affine v off =
    if off = 0 then var_names.(v)
    else if off > 0 then Printf.sprintf "%s+%d" var_names.(v) off
    else Printf.sprintf "%s%d" var_names.(v) off
  in
  (* LHS: an output indexed by a strict subset or all of the vars. *)
  let out_dims = 1 + Random.State.int rng (nv - 1) in
  let lhs_idx = List.init out_dims (fun v -> var_names.(v)) in
  let lhs = Printf.sprintf "OUT[%s]" (String.concat "," lhs_idx) in
  (* Inputs: full-dimensional references with random small offsets. *)
  let input i =
    let name = Printf.sprintf "IN%d" i in
    let idx =
      List.init nv (fun v -> affine v (Random.State.int rng 3 - 1))
    in
    Printf.sprintf "%s[%s]" name (String.concat "," idx)
  in
  let inputs = List.init (1 + Random.State.int rng 2) input in
  Printf.sprintf "for %s { %s = %s + %s }" (String.concat ", " bounds) lhs lhs
    (String.concat " * " inputs)

let prop_pipeline_clean =
  QCheck.Test.make ~name:"parse -> optimize -> simulate is always clean" ~count:60
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = random_program rng in
      match Loopnest.parse_result src with
      | Error _ -> true (* the generator can produce degenerate programs *)
      | Ok a -> (
        let alg = a.Loopnest.algorithm in
        match Space_opt.optimize_joint ~max_time_objective:60 alg ~k:2 with
        | None -> true
        | Some (pi, so) ->
          let tm = Tmap.make ~s:so.Space_opt.s ~pi in
          let rep = Exec.run alg Dataflow.semantics tm in
          Exec.is_clean rep
          && rep.Exec.num_processors = so.Space_opt.processors))

let prop_optimizers_agree_on_fuzzed =
  QCheck.Test.make ~name:"Procedure 5.1 (exact) = (theorem) on fuzzed programs" ~count:40
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = random_program rng in
      match Loopnest.parse_result src with
      | Error _ -> true
      | Ok a ->
        let alg = a.Loopnest.algorithm in
        let n = Algorithm.dim alg in
        (* Project out the last dimension as a simple space mapping. *)
        let s = Intmat.make 1 n (fun _ j -> if j = n - 1 then Zint.one else Zint.zero) in
        let time r = Option.map (fun x -> x.Procedure51.total_time) r in
        time (Procedure51.optimize ~check:Procedure51.Exact ~max_objective:40 alg ~s)
        = time (Procedure51.optimize ~check:Procedure51.Theorem ~max_objective:40 alg ~s))

(* Random two-statement program: a producer array feeding a consumer,
   each with small offsets — exercising the alignment search. *)
let random_two_statement rng =
  let nv = 2 in
  let bounds =
    List.init nv (fun v -> Printf.sprintf "%s = 0..%d" var_names.(v) (2 + Random.State.int rng 3))
  in
  let affine v off =
    if off = 0 then var_names.(v)
    else if off > 0 then Printf.sprintf "%s+%d" var_names.(v) off
    else Printf.sprintf "%s%d" var_names.(v) off
  in
  let idx () = List.init nv (fun v -> affine v (Random.State.int rng 3 - 1)) in
  let full_idx = List.init nv (fun v -> var_names.(v)) in
  let s1 =
    Printf.sprintf "B[%s] = B[%s] + A[%s]"
      (String.concat "," full_idx)
      (String.concat "," (idx ()))
      (String.concat "," (idx ()))
  in
  let s2 =
    Printf.sprintf "C[%s] = B[%s] + B[%s]"
      (String.concat "," full_idx)
      (String.concat "," (idx ()))
      (String.concat "," (idx ()))
  in
  Printf.sprintf "for %s { %s; %s }" (String.concat ", " bounds) s1 s2

let prop_multi_statement_pipeline_clean =
  QCheck.Test.make ~name:"multi-statement fuzz: aligned programs simulate cleanly" ~count:40
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = random_two_statement rng in
      match Loopnest.parse_result src with
      | Error _ -> true (* degenerate programs are allowed to be rejected *)
      | Ok a -> (
        let alg = a.Loopnest.algorithm in
        (* Alignment must produce a schedulable dependence set. *)
        match Procedure51.minimal_schedule alg with
        | None -> false (* the alignment search promised schedulability *)
        | Some _ -> (
          match Space_opt.optimize_joint ~max_time_objective:60 alg ~k:2 with
          | None -> true
          | Some (pi, so) ->
            Exec.is_clean (Exec.run alg Dataflow.semantics (Tmap.make ~s:so.Space_opt.s ~pi)))))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pipeline_clean;
      prop_optimizers_agree_on_fuzzed;
      prop_multi_statement_pipeline_clean;
    ]
