(* Tests for the space-optimal mapping search (the paper's
   Problem 6.1). *)

let test_matmul_linear_array () =
  (* With Pi = (1,4,1) fixed, a 9-PE linear array exists — better than
     the paper's 13-PE S = [1,1,-1]. *)
  let alg = Matmul.algorithm ~mu:4 in
  match Space_opt.optimize alg ~pi:(Matmul.optimal_pi ~mu:4) ~k:2 with
  | Some r ->
    Alcotest.(check int) "9 PEs" 9 r.Space_opt.processors;
    (* The found S beats the paper's S on the same objective. *)
    let paper_tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu:4) in
    let paper_procs = List.length (Tmap.processors paper_tm alg.Algorithm.index_set) in
    Alcotest.(check bool) "beats paper's 13 PEs" true (r.Space_opt.processors < paper_procs);
    (* Validity: conflict-free and full rank. *)
    let t = Intmat.append_row r.Space_opt.s (Matmul.optimal_pi ~mu:4) in
    Alcotest.(check bool) "conflict-free" true (Conflict.is_conflict_free ~mu:[| 4; 4; 4 |] t);
    Alcotest.(check int) "rank 2" 2 (Intmat.rank t)
  | None -> Alcotest.fail "expected a space mapping"

let test_found_mapping_simulates_cleanly () =
  let mu = 4 in
  let alg = Matmul.algorithm ~mu in
  let pi = Matmul.optimal_pi ~mu in
  match Space_opt.optimize alg ~pi ~k:2 with
  | Some r ->
    let rng = Random.State.make [| 3 |] in
    let a = Matmul.random_matrix ~rng (mu + 1) and b = Matmul.random_matrix ~rng (mu + 1) in
    let report = Exec.run alg (Matmul.semantics ~a ~b) (Tmap.make ~s:r.Space_opt.s ~pi) in
    Alcotest.(check bool) "clean" true (Exec.is_clean report);
    Alcotest.(check int) "PE count matches" r.Space_opt.processors report.Exec.num_processors
  | None -> Alcotest.fail "expected a space mapping"

let test_tc_space () =
  let alg = Transitive_closure.algorithm ~mu:4 in
  match Space_opt.optimize alg ~pi:(Transitive_closure.optimal_pi ~mu:4) ~k:2 with
  | Some r ->
    (* The paper's S = [0,0,1] is already processor-optimal (mu+1 PEs). *)
    Alcotest.(check int) "5 PEs" 5 r.Space_opt.processors
  | None -> Alcotest.fail "expected a space mapping"

let test_objective_processors_only () =
  let alg = Matmul.algorithm ~mu:3 in
  let pi = Intvec.of_ints [ 1; 2; 2 ] in
  match
    ( Space_opt.optimize ~objective:Space_opt.Processors alg ~pi ~k:2,
      Space_opt.optimize ~objective:Space_opt.Processors_plus_wire alg ~pi ~k:2 )
  with
  | Some a, Some b ->
    Alcotest.(check bool) "procs-only never uses more PEs" true
      (a.Space_opt.processors <= b.Space_opt.processors)
  | _ -> Alcotest.fail "expected mappings"

let test_2d_target () =
  (* 4-D convolution onto a 2-D array: S has two rows. *)
  let alg = Convolution.algorithm ~mu_ij:2 ~mu_pq:1 in
  match Procedure51.optimize alg ~s:Convolution.example_s with
  | None -> Alcotest.fail "expected a schedule"
  | Some p -> (
    match Space_opt.optimize alg ~pi:p.Procedure51.pi ~k:3 with
    | Some r ->
      Alcotest.(check int) "two rows" 2 (Intmat.rows r.Space_opt.s);
      let t = Intmat.append_row r.Space_opt.s p.Procedure51.pi in
      Alcotest.(check int) "rank 3" 3 (Intmat.rank t);
      Alcotest.(check bool) "conflict-free" true
        (Conflict.is_conflict_free ~mu:(Index_set.bounds alg.Algorithm.index_set) t)
    | None -> Alcotest.fail "expected a space mapping")

let test_joint_matmul () =
  (* Problem 6.2 on matmul mu = 4: the joint optimum reaches the same
     total time as the paper's fixed-S optimum (25) with only 9 PEs. *)
  let mu = 4 in
  let alg = Matmul.algorithm ~mu in
  match Space_opt.optimize_joint alg ~k:2 with
  | Some (pi, r) ->
    Alcotest.(check int) "time 25" 25 (Schedule.total_time ~mu:[| mu; mu; mu |] pi);
    Alcotest.(check int) "9 PEs" 9 r.Space_opt.processors;
    let t = Intmat.append_row r.Space_opt.s pi in
    Alcotest.(check bool) "conflict-free" true (Conflict.is_conflict_free ~mu:[| mu; mu; mu |] t)
  | None -> Alcotest.fail "expected a joint mapping"

let test_wider_entry_bound_no_improvement () =
  (* Even over entries in [-2, 2], no linear array beats 9 PEs for
     matmul at the optimal schedule: 9 is genuinely minimal. *)
  let alg = Matmul.algorithm ~mu:4 in
  match Space_opt.optimize ~entry_bound:2 alg ~pi:(Matmul.optimal_pi ~mu:4) ~k:2 with
  | Some r -> Alcotest.(check int) "still 9 PEs" 9 r.Space_opt.processors
  | None -> Alcotest.fail "expected a mapping"

let test_joint_is_time_optimal_first () =
  (* The joint search must never return a slower schedule than the
     best fixed-S optimum over the same family. *)
  let mu = 3 in
  let alg = Matmul.algorithm ~mu in
  match Space_opt.optimize_joint alg ~k:2 with
  | Some (pi, _) ->
    Alcotest.(check int) "t = mu(mu+2)+1" (Matmul.optimal_total_time ~mu)
      (Schedule.total_time ~mu:[| mu; mu; mu |] pi)
  | None -> Alcotest.fail "expected a joint mapping"

let test_invalid_pi_rejected () =
  let alg = Matmul.algorithm ~mu:3 in
  Alcotest.(check bool) "rejected" true
    (try ignore (Space_opt.optimize alg ~pi:(Intvec.of_ints [ 1; -1; 1 ]) ~k:2); false
     with Invalid_argument _ -> true)

let test_bad_k_rejected () =
  let alg = Matmul.algorithm ~mu:3 in
  Alcotest.(check bool) "k too small" true
    (try ignore (Space_opt.optimize alg ~pi:(Intvec.of_ints [ 1; 2; 2 ]) ~k:1); false
     with Invalid_argument _ -> true)

let prop_result_is_valid =
  QCheck.Test.make ~name:"space-opt results are valid mappings" ~count:30 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let mu = 2 + Random.State.int rng 2 in
      let alg = Matmul.algorithm ~mu in
      (* any positive Pi respecting D = I *)
      let pi = Array.init 3 (fun _ -> Zint.of_int (1 + Random.State.int rng (mu + 1))) in
      match Space_opt.optimize alg ~pi ~k:2 with
      | None -> true
      | Some r ->
        let t = Intmat.append_row r.Space_opt.s pi in
        Intmat.rank t = 2
        && Conflict.is_conflict_free ~mu:(Index_set.bounds alg.Algorithm.index_set) t
        && r.Space_opt.processors > 0)

let suite =
  [
    Alcotest.test_case "matmul 9-PE array" `Quick test_matmul_linear_array;
    Alcotest.test_case "found mapping simulates cleanly" `Quick test_found_mapping_simulates_cleanly;
    Alcotest.test_case "tc space" `Quick test_tc_space;
    Alcotest.test_case "objective variants" `Quick test_objective_processors_only;
    Alcotest.test_case "2-D target" `Slow test_2d_target;
    Alcotest.test_case "joint matmul (Problem 6.2)" `Slow test_joint_matmul;
    Alcotest.test_case "wider entry bound" `Slow test_wider_entry_bound_no_improvement;
    Alcotest.test_case "joint time-optimal first" `Slow test_joint_is_time_optimal_first;
    Alcotest.test_case "invalid pi rejected" `Quick test_invalid_pi_rejected;
    Alcotest.test_case "bad k rejected" `Quick test_bad_k_rejected;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_result_is_valid ]
