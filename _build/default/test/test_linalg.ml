(* Tests for Intvec / Intmat: exact vectors, matrices, Bareiss
   determinant/rank, adjugate. *)

let iv = Intvec.of_ints
let im = Intmat.of_ints

let test_vec_basics () =
  let v = iv [ 3; -6; 9 ] in
  Alcotest.(check int) "dim" 3 (Intvec.dim v);
  Alcotest.(check int) "content" 3 (Zint.to_int (Intvec.content v));
  Alcotest.(check bool) "not primitive" false (Intvec.is_primitive v);
  Alcotest.(check (list int)) "primitive part" [ 1; -2; 3 ] (Intvec.to_ints (Intvec.primitive_part v));
  Alcotest.(check (list int)) "unit" [ 0; 1; 0 ] (Intvec.to_ints (Intvec.unit 3 1));
  Alcotest.(check int) "dot" (3 - 12 + 27) (Zint.to_int (Intvec.dot v (iv [ 1; 2; 3 ])));
  Alcotest.(check int) "linf" 9 (Zint.to_int (Intvec.linf_norm v))

let test_vec_sign_normalization () =
  Alcotest.(check (list int)) "flip" [ 1; -2 ] (Intvec.to_ints (Intvec.normalize_sign (iv [ -1; 2 ])));
  Alcotest.(check (list int)) "keep" [ 1; -2 ] (Intvec.to_ints (Intvec.normalize_sign (iv [ 1; -2 ])));
  Alcotest.(check (list int)) "zero prefix" [ 0; 2; -1 ]
    (Intvec.to_ints (Intvec.normalize_sign (iv [ 0; -2; 1 ])));
  Alcotest.(check (list int)) "zero vector" [ 0; 0 ] (Intvec.to_ints (Intvec.normalize_sign (iv [ 0; 0 ])))

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Intvec.dot: dimension mismatch")
    (fun () -> ignore (Intvec.dot (iv [ 1 ]) (iv [ 1; 2 ])))

let test_mat_basics () =
  let m = im [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "rows" 2 (Intmat.rows m);
  Alcotest.(check int) "cols" 2 (Intmat.cols m);
  Alcotest.(check (list (list int))) "transpose" [ [ 1; 3 ]; [ 2; 4 ] ] (Intmat.to_ints (Intmat.transpose m));
  Alcotest.(check (list int)) "row" [ 3; 4 ] (Intvec.to_ints (Intmat.row m 1));
  Alcotest.(check (list int)) "col" [ 2; 4 ] (Intvec.to_ints (Intmat.col m 1));
  Alcotest.(check (list (list int))) "mul"
    [ [ 7; 10 ]; [ 15; 22 ] ]
    (Intmat.to_ints (Intmat.mul m m))

let test_mat_identity_laws () =
  let m = im [ [ 1; -2; 3 ]; [ 0; 4; 5 ] ] in
  Alcotest.(check bool) "I*m = m" true (Intmat.equal (Intmat.mul (Intmat.identity 2) m) m);
  Alcotest.(check bool) "m*I = m" true (Intmat.equal (Intmat.mul m (Intmat.identity 3)) m)

let test_det_known () =
  Alcotest.(check int) "2x2" (-2) (Zint.to_int (Intmat.det (im [ [ 1; 2 ]; [ 3; 4 ] ])));
  Alcotest.(check int) "singular" 0 (Zint.to_int (Intmat.det (im [ [ 1; 2 ]; [ 2; 4 ] ])));
  Alcotest.(check int) "3x3" 1
    (Zint.to_int (Intmat.det (im [ [ 1; 0; 0 ]; [ 5; 1; 0 ]; [ -7; 3; 1 ] ])));
  (* Vandermonde 4x4 on 1,2,3,4: prod of differences = 12 *)
  let vander = Intmat.make 4 4 (fun i j -> Zint.pow (Zint.of_int (i + 1)) j) in
  Alcotest.(check int) "vandermonde" 12 (Zint.to_int (Intmat.det vander));
  Alcotest.(check int) "empty" 1 (Zint.to_int (Intmat.det (Intmat.identity 0)))

let test_det_nonsquare () =
  Alcotest.check_raises "non-square" (Invalid_argument "Intmat.det: non-square matrix")
    (fun () -> ignore (Intmat.det (im [ [ 1; 2; 3 ] ])))

let test_rank () =
  Alcotest.(check int) "full" 2 (Intmat.rank (im [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check int) "deficient" 1 (Intmat.rank (im [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "zero" 0 (Intmat.rank (Intmat.zero 3 4));
  Alcotest.(check int) "wide" 2 (Intmat.rank (im [ [ 1; 0; 5 ]; [ 0; 1; 7 ] ]));
  Alcotest.(check int) "tall" 1 (Intmat.rank (im [ [ 2 ]; [ 4 ]; [ 6 ] ]))

let test_adjugate () =
  let m = im [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check (list (list int))) "2x2 adjugate" [ [ 4; -2 ]; [ -3; 1 ] ]
    (Intmat.to_ints (Intmat.adjugate m));
  Alcotest.(check (list (list int))) "1x1 adjugate" [ [ 1 ] ] (Intmat.to_ints (Intmat.adjugate (im [ [ 9 ] ])))

let test_unimodular () =
  Alcotest.(check bool) "identity" true (Intmat.is_unimodular (Intmat.identity 4));
  Alcotest.(check bool) "det -1" true (Intmat.is_unimodular (im [ [ 0; 1 ]; [ 1; 0 ] ]));
  Alcotest.(check bool) "det 2" false (Intmat.is_unimodular (im [ [ 2; 0 ]; [ 0; 1 ] ]));
  Alcotest.(check bool) "non-square" false (Intmat.is_unimodular (im [ [ 1; 0 ] ]))

let test_shape_helpers () =
  let m = im [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  Alcotest.(check (list (list int))) "sub_cols" [ [ 2; 3 ]; [ 5; 6 ] ] (Intmat.to_ints (Intmat.sub_cols m 1 2));
  Alcotest.(check (list (list int))) "delete" [ [ 1; 3 ] ] (Intmat.to_ints (Intmat.delete_row_col m 1 1));
  Alcotest.(check (list (list int))) "hcat" [ [ 1; 2; 3; 1; 2; 3 ]; [ 4; 5; 6; 4; 5; 6 ] ]
    (Intmat.to_ints (Intmat.hcat m m));
  Alcotest.(check (list (list int))) "append_row" [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ] ]
    (Intmat.to_ints (Intmat.append_row m (iv [ 7; 8; 9 ])))

let test_of_ints_validation () =
  Alcotest.(check bool) "ragged rejected" true
    (try ignore (im [ [ 1; 2 ]; [ 3 ] ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (im []); false with Invalid_argument _ -> true)

(* ---------------- properties ---------------- *)

let mat_gen n =
  QCheck.make
    ~print:(fun m -> Intmat.to_string m)
    (QCheck.Gen.map
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         Intmat.make n n (fun _ _ -> Zint.of_int (Random.State.int rng 21 - 10)))
       QCheck.Gen.int)

let prop_det_transpose =
  QCheck.Test.make ~name:"det(A) = det(A^T)" ~count:300 (mat_gen 4) (fun m ->
      Zint.equal (Intmat.det m) (Intmat.det (Intmat.transpose m)))

let prop_det_multiplicative =
  QCheck.Test.make ~name:"det(AB) = det(A) det(B)" ~count:200
    (QCheck.pair (mat_gen 3) (mat_gen 3))
    (fun (a, b) ->
      Zint.equal (Intmat.det (Intmat.mul a b)) (Zint.mul (Intmat.det a) (Intmat.det b)))

let prop_adjugate_identity =
  QCheck.Test.make ~name:"A adj(A) = det(A) I" ~count:200 (mat_gen 4) (fun m ->
      let d = Intmat.det m in
      Intmat.equal (Intmat.mul m (Intmat.adjugate m)) (Intmat.scale d (Intmat.identity 4))
      && Intmat.equal (Intmat.mul (Intmat.adjugate m) m) (Intmat.scale d (Intmat.identity 4)))

let prop_rank_matches_rational =
  QCheck.Test.make ~name:"Bareiss rank = Gauss-Jordan rank" ~count:300 (mat_gen 4)
    (fun m -> Intmat.rank m = Ratmat.rank (Ratmat.of_intmat m))

let prop_mulvec_linear =
  QCheck.Test.make ~name:"M(x+y) = Mx + My" ~count:300 (mat_gen 3) (fun m ->
      let x = iv [ 1; -2; 3 ] and y = iv [ 4; 0; -5 ] in
      Intvec.equal (Intmat.mul_vec m (Intvec.add x y))
        (Intvec.add (Intmat.mul_vec m x) (Intmat.mul_vec m y)))

let suite =
  [
    Alcotest.test_case "vector basics" `Quick test_vec_basics;
    Alcotest.test_case "sign normalization" `Quick test_vec_sign_normalization;
    Alcotest.test_case "vector dim mismatch" `Quick test_vec_dim_mismatch;
    Alcotest.test_case "matrix basics" `Quick test_mat_basics;
    Alcotest.test_case "identity laws" `Quick test_mat_identity_laws;
    Alcotest.test_case "known determinants" `Quick test_det_known;
    Alcotest.test_case "det non-square" `Quick test_det_nonsquare;
    Alcotest.test_case "rank" `Quick test_rank;
    Alcotest.test_case "adjugate" `Quick test_adjugate;
    Alcotest.test_case "unimodularity" `Quick test_unimodular;
    Alcotest.test_case "shape helpers" `Quick test_shape_helpers;
    Alcotest.test_case "of_ints validation" `Quick test_of_ints_validation;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_det_transpose;
        prop_det_multiplicative;
        prop_adjugate_identity;
        prop_rank_matches_rational;
        prop_mulvec_linear;
      ]
