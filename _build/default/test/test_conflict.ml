(* Tests for conflict vectors: Definition 2.3, Theorem 2.2, the box
   oracle, and the Section 3 closed form. *)

let im = Intmat.of_ints
let iv = Intvec.of_ints

let mu6 = [| 6; 6; 6; 6 |]
let t_eq_2_8 = im [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ]

let test_feasibility_theorem_2_2 () =
  (* Example 2.1's three conflict vectors. *)
  Alcotest.(check bool) "gamma1 feasible" true (Conflict.is_feasible ~mu:mu6 (iv [ 0; 1; -7; 0 ]));
  Alcotest.(check bool) "gamma2 feasible" true (Conflict.is_feasible ~mu:mu6 (iv [ 7; -1; 0; 0 ]));
  Alcotest.(check bool) "gamma3 not feasible" false (Conflict.is_feasible ~mu:mu6 (iv [ 1; 0; -1; 0 ]))

let test_example_2_1_not_conflict_free () =
  Alcotest.(check bool) "not conflict-free" false (Conflict.is_conflict_free ~mu:mu6 t_eq_2_8);
  match Conflict.find_conflict ~mu:mu6 t_eq_2_8 with
  | Some g ->
    Alcotest.(check bool) "witness in kernel" true (Intvec.is_zero (Intmat.mul_vec t_eq_2_8 g));
    Alcotest.(check bool) "witness primitive" true (Intvec.is_primitive g);
    Alcotest.(check bool) "witness in box" true (not (Conflict.is_feasible ~mu:mu6 g))
  | None -> Alcotest.fail "expected a conflict"

let test_figure_1 () =
  (* J = [0,4]^2.  gamma = (1,1) collides; gamma = (3,5) does not.  A
     1x2 mapping with the given kernel demonstrates both. *)
  let mu = [| 4; 4 |] in
  (* kernel (1,1): T = [1, -1] *)
  Alcotest.(check bool) "(1,1) conflicts" false (Conflict.is_conflict_free ~mu (im [ [ 1; -1 ] ]));
  (* kernel (3,5): T = [5, -3] *)
  Alcotest.(check bool) "(3,5) conflict-free" true (Conflict.is_conflict_free ~mu (im [ [ 5; -3 ] ]));
  (* the five collisions of Figure 1 along the diagonal *)
  let all = Conflict.all_in_box ~mu (im [ [ 1; -1 ] ]) in
  Alcotest.(check int) "diagonal multiples" 4 (List.length all)

let test_square_full_rank_is_free () =
  let t = im [ [ 1; 0 ]; [ 0; 1 ] ] in
  Alcotest.(check bool) "identity conflict-free" true (Conflict.is_conflict_free ~mu:[| 9; 9 |] t)

let test_kernel_basis_are_conflict_vectors () =
  let kb = Conflict.kernel_basis t_eq_2_8 in
  Alcotest.(check int) "two generators" 2 (List.length kb);
  List.iter
    (fun g ->
      Alcotest.(check bool) "annihilated" true (Intvec.is_zero (Intmat.mul_vec t_eq_2_8 g));
      Alcotest.(check bool) "primitive" true (Intvec.is_primitive g))
    kb

let test_single_conflict_vector_example_3_1 () =
  (* Equation 3.5: gamma proportional to (-pi2-pi3, pi1+pi3, pi1-pi2). *)
  let s = im [ [ 1; 1; -1 ] ] in
  let check pi expected =
    let t = Intmat.append_row s (iv pi) in
    match Conflict.single_conflict_vector t with
    | Some g -> Alcotest.(check (list int)) "gamma" expected (Intvec.to_ints g)
    | None -> Alcotest.fail "expected a conflict vector"
  in
  (* pi = (1,4,1): gamma prop to (-5, 2, -3) -> normalized (5, -2, 3) *)
  check [ 1; 4; 1 ] [ 5; -2; 3 ];
  (* pi = (2,1,mu) with mu=3: (-4, 5, 1) -> normalized (4, -5, -1)? sign:
     first nonzero positive: (-(1+3), 2+3, 2-1) = (-4,5,1) -> (4,-5,-1). *)
  check [ 2; 1; 3 ] [ 4; -5; -1 ]

let test_single_conflict_vector_example_3_2 () =
  (* Equation 3.7: gamma proportional to (pi2, -pi1, 0). *)
  let s = im [ [ 0; 0; 1 ] ] in
  let t = Intmat.append_row s (iv [ 5; 1; 1 ]) in
  match Conflict.single_conflict_vector t with
  | Some g -> Alcotest.(check (list int)) "gamma" [ 1; -5; 0 ] (Intvec.to_ints g)
  | None -> Alcotest.fail "expected a conflict vector"

let test_single_conflict_rank_deficient () =
  let t = im [ [ 1; 2; 3 ]; [ 2; 4; 6 ] ] in
  Alcotest.(check bool) "rank deficient -> None" true (Conflict.single_conflict_vector t = None)

let test_f_coefficients_example_3_1 () =
  (* Proposition 3.2 coefficients for S = [1,1,-1]: C pi = the Equation
     3.5 vector up to a global sign. *)
  let c = Conflict.f_coefficient_matrix ~s:(im [ [ 1; 1; -1 ] ]) in
  let pi = iv [ 3; 5; 7 ] in
  let g = Intmat.mul_vec c pi in
  let expected = iv [ -12; 10; -2 ] in
  Alcotest.(check bool) "proportional to Eq 3.5" true
    (Intvec.equal g expected || Intvec.equal g (Intvec.neg expected))

let test_conflicting_pairs_oracle_agrees () =
  (* Definition-level check on a small instance. *)
  let iset = Index_set.cube ~n:3 ~mu:2 in
  let t_bad = im [ [ 1; 1; -1 ]; [ 1; 1; 1 ] ] in
  let pairs = Conflict.conflicting_pairs_oracle iset t_bad in
  let free = Conflict.is_conflict_free ~mu:(Index_set.bounds iset) t_bad in
  Alcotest.(check bool) "oracle consistency" true ((pairs = []) = free)

(* ---------------- properties ---------------- *)

let random_t_mu seed ~codim =
  let rng = Random.State.make [| seed |] in
  let n = codim + 1 + Random.State.int rng 2 in
  let k = n - codim in
  let t = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 15 - 7)) in
  let mu = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
  (t, mu)

let prop_box_oracle_matches_pairs_oracle =
  QCheck.Test.make ~name:"box oracle = literal pairs oracle (Theorem 2.2)" ~count:150
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 2 in
      let k = 1 + Random.State.int rng (n - 1) in
      let t = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 9 - 4)) in
      let mu = Array.init n (fun _ -> 1 + Random.State.int rng 3) in
      let iset = Index_set.make mu in
      let literal = Conflict.conflicting_pairs_oracle iset t = [] in
      literal = Conflict.is_conflict_free ~mu t)

let prop_single_vector_matches_kernel =
  QCheck.Test.make ~name:"Theorem 3.1 vector spans the kernel" ~count:200 QCheck.int
    (fun seed ->
      let t, _ = random_t_mu seed ~codim:1 in
      match Conflict.single_conflict_vector t with
      | None -> Intmat.rank t < Intmat.cols t - 1
      | Some g ->
        Intvec.is_zero (Intmat.mul_vec t g)
        && Intvec.is_primitive g
        &&
        (match Conflict.kernel_basis t with
        | [ b ] -> Intvec.equal g b || Intvec.equal g (Intvec.neg b)
        | _ -> false))

let prop_feasibility_vs_box =
  QCheck.Test.make ~name:"k = n-1: conflict-free iff single vector feasible" ~count:200
    QCheck.int (fun seed ->
      let t, mu = random_t_mu seed ~codim:1 in
      match Conflict.single_conflict_vector t with
      | None -> true
      | Some g -> Conflict.is_feasible ~mu g = Conflict.is_conflict_free ~mu t)

let prop_find_conflict_sound =
  QCheck.Test.make ~name:"find_conflict returns a genuine in-box kernel vector" ~count:200
    QCheck.int (fun seed ->
      let t, mu = random_t_mu seed ~codim:2 in
      match Conflict.find_conflict ~mu t with
      | None -> true
      | Some g ->
        Intvec.is_zero (Intmat.mul_vec t g)
        && (not (Intvec.is_zero g))
        && not (Conflict.is_feasible ~mu g))

let suite =
  [
    Alcotest.test_case "Theorem 2.2 feasibility" `Quick test_feasibility_theorem_2_2;
    Alcotest.test_case "Example 2.1" `Quick test_example_2_1_not_conflict_free;
    Alcotest.test_case "Figure 1" `Quick test_figure_1;
    Alcotest.test_case "square full rank" `Quick test_square_full_rank_is_free;
    Alcotest.test_case "kernel basis" `Quick test_kernel_basis_are_conflict_vectors;
    Alcotest.test_case "Example 3.1 closed form" `Quick test_single_conflict_vector_example_3_1;
    Alcotest.test_case "Example 3.2 closed form" `Quick test_single_conflict_vector_example_3_2;
    Alcotest.test_case "rank deficient closed form" `Quick test_single_conflict_rank_deficient;
    Alcotest.test_case "Proposition 3.2 coefficients" `Quick test_f_coefficients_example_3_1;
    Alcotest.test_case "pairs oracle consistency" `Quick test_conflicting_pairs_oracle_agrees;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_box_oracle_matches_pairs_oracle;
        prop_single_vector_matches_kernel;
        prop_feasibility_vs_box;
        prop_find_conflict_sound;
      ]
