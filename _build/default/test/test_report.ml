(* Tests for the text-table renderer. *)

let test_render_alignment () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "12345" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: sep :: _ ->
    Alcotest.(check int) "separator width" (String.length header) (String.length sep)
  | _ -> Alcotest.fail "expected at least two lines");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains row" true (List.exists (fun l -> contains l "long-name") lines)

let test_arity_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.(check bool) "rejected" true
    (try Table.add_row t [ "only-one" ]; false with Invalid_argument _ -> true)

let test_int_row () =
  let t = Table.create [ "mu"; "t" ] in
  Table.add_int_row t "4" [ 25 ];
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let suite =
  [
    Alcotest.test_case "alignment" `Quick test_render_alignment;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "int row" `Quick test_int_row;
  ]
