(* Tests for rational matrices (Gauss-Jordan). *)

let qm ll = Array.of_list (List.map (fun r -> Array.of_list (List.map Qnum.of_int r)) ll)
let qv l = Array.of_list (List.map Qnum.of_int l)

let test_inverse_known () =
  let m = qm [ [ 2; 0 ]; [ 0; 4 ] ] in
  match Ratmat.inverse m with
  | Some inv ->
    Alcotest.(check bool) "inv entries" true
      (Qnum.equal inv.(0).(0) (Qnum.of_ints 1 2) && Qnum.equal inv.(1).(1) (Qnum.of_ints 1 4))
  | None -> Alcotest.fail "expected invertible"

let test_inverse_singular () =
  Alcotest.(check bool) "singular" true (Ratmat.inverse (qm [ [ 1; 2 ]; [ 2; 4 ] ]) = None)

let test_solve_unique () =
  let a = qm [ [ 1; 1 ]; [ 1; -1 ] ] in
  match Ratmat.solve a (qv [ 4; 2 ]) with
  | Some x ->
    Alcotest.(check bool) "x = (3,1)" true (Qnum.equal x.(0) (Qnum.of_int 3) && Qnum.equal x.(1) Qnum.one)
  | None -> Alcotest.fail "expected solution"

let test_solve_inconsistent () =
  let a = qm [ [ 1; 1 ]; [ 1; 1 ] ] in
  Alcotest.(check bool) "inconsistent" true (Ratmat.solve a (qv [ 1; 2 ]) = None)

let test_solve_underdetermined () =
  let a = qm [ [ 1; 1 ] ] in
  match Ratmat.solve a (qv [ 5 ]) with
  | Some x ->
    let v = Qnum.add x.(0) x.(1) in
    Alcotest.(check bool) "satisfies" true (Qnum.equal v (Qnum.of_int 5))
  | None -> Alcotest.fail "expected a solution"

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"M * M^-1 = I or singular" ~count:300 QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 1 + Random.State.int rng 4 in
      let m = Ratmat.make n n (fun _ _ -> Qnum.of_int (Random.State.int rng 11 - 5)) in
      match Ratmat.inverse m with
      | Some inv ->
        Ratmat.equal (Ratmat.mul m inv) (Ratmat.identity n)
        && Ratmat.equal (Ratmat.mul inv m) (Ratmat.identity n)
      | None -> Ratmat.rank m < n)

let prop_solve_satisfies =
  QCheck.Test.make ~name:"solve returns a genuine solution" ~count:300 QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let r = 1 + Random.State.int rng 3 and c = 1 + Random.State.int rng 4 in
      let a = Ratmat.make r c (fun _ _ -> Qnum.of_int (Random.State.int rng 7 - 3)) in
      let b = Array.init r (fun _ -> Qnum.of_int (Random.State.int rng 9 - 4)) in
      match Ratmat.solve a b with
      | Some x ->
        let ax = Ratmat.mul_vec a x in
        Array.for_all2 Qnum.equal ax b
      | None ->
        (* Inconsistency witnessed by rank jump of the augmented matrix. *)
        let aug = Ratmat.make r (c + 1) (fun i j -> if j < c then a.(i).(j) else b.(i)) in
        Ratmat.rank aug > Ratmat.rank a)

let suite =
  [
    Alcotest.test_case "inverse known" `Quick test_inverse_known;
    Alcotest.test_case "inverse singular" `Quick test_inverse_singular;
    Alcotest.test_case "solve unique" `Quick test_solve_unique;
    Alcotest.test_case "solve inconsistent" `Quick test_solve_inconsistent;
    Alcotest.test_case "solve underdetermined" `Quick test_solve_underdetermined;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_inverse_roundtrip; prop_solve_satisfies ]
