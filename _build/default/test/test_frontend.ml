(* Tests for the loop-nest front end. *)

let matmul_src = "for i = 0..4, j = 0..4, k = 0..4 { C[i,j] = C[i,j] + A[i,k] * B[k,j] }"

let deps_of a =
  List.sort compare
    (List.map (fun (d, _) -> Intvec.to_ints d) a.Loopnest.dependence_origin)

let test_matmul_source () =
  let a = Loopnest.parse matmul_src in
  Alcotest.(check int) "n = 3" 3 (Algorithm.dim a.Loopnest.algorithm);
  Alcotest.(check int) "|J| = 125" 125 (Index_set.cardinal a.Loopnest.algorithm.Algorithm.index_set);
  Alcotest.(check (list (list int))) "D = I (up to order)"
    [ [ 0; 0; 1 ]; [ 0; 1; 0 ]; [ 1; 0; 0 ] ]
    (deps_of a);
  Alcotest.(check (list string)) "vars" [ "i"; "j"; "k" ] a.Loopnest.loop_vars

let test_matmul_matches_builtin () =
  (* The front end recovers exactly the structure of the hand-built
     instance; Procedure 5.1 therefore finds the same optimum. *)
  let a = Loopnest.parse matmul_src in
  match
    ( Procedure51.optimize a.Loopnest.algorithm ~s:Matmul.paper_s,
      Procedure51.optimize (Matmul.algorithm ~mu:4) ~s:Matmul.paper_s )
  with
  | Some x, Some y ->
    Alcotest.(check int) "same optimum" y.Procedure51.total_time x.Procedure51.total_time
  | _ -> Alcotest.fail "expected schedules"

let test_fir_filter () =
  let a = Loopnest.parse "for i = 0..9, k = 0..3 { Y[i] = Y[i] + W[k] * X[i-k] }" in
  Alcotest.(check (list (list int))) "FIR dependences"
    [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (deps_of a)

let test_stencil_flow_deps () =
  let a = Loopnest.parse "for t = 0..9, i = 0..7 { A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] }" in
  Alcotest.(check (list (list int))) "stencil dependences"
    [ [ 1; -1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (deps_of a)

let test_lower_bound_shift () =
  (* Bounds 1..5 are normalized to 0..4 (Assumption 2.1). *)
  let a = Loopnest.parse "for i = 1..5, k = 1..5 { Y[i] = Y[i] + X[i-k] }" in
  Alcotest.(check (array int)) "shift" [| 1; 1 |] a.Loopnest.shifts;
  Alcotest.(check int) "mu" 4 (Index_set.bound a.Loopnest.algorithm.Algorithm.index_set 0)

let test_coefficient_syntax () =
  let a = Loopnest.parse "for i = 0..4, j = 0..4 { A[2*i+j] = A[2*i+j-1] + B[j] }" in
  (* flow: F d = (1) with F = [2 1]: d = ... integral, plus kernel of
     [2 1] = (1,-2) oriented positive, plus reuse of B along e_i. *)
  let ds = deps_of a in
  Alcotest.(check bool) "has flow dep" true
    (List.exists
       (fun d -> match d with [ a; b ] -> (2 * a) + b = 1 | _ -> false)
       ds);
  Alcotest.(check bool) "has kernel dep (1,-2)" true (List.mem [ 1; -2 ] ds)

(* ---------------- multi-statement programs ---------------- *)

let test_two_statement_pipeline () =
  let a =
    Loopnest.parse
      "for i = 0..4, j = 0..4 { B[i,j] = A[i,j] + A[i-1,j]; C[i,j] = B[i,j] + B[i-1,j] }"
  in
  (* Zero alignment suffices: B feeds C at the same point (body order)
     and one iteration back; the A-reuse and the cross flow coincide on
     (1,0). *)
  Alcotest.(check (list (list int))) "deps" [ [ 1; 0 ] ] (deps_of a);
  Alcotest.(check (list (list int))) "alignment all zero"
    [ [ 0; 0 ]; [ 0; 0 ] ]
    (List.map (fun (_, o) -> Array.to_list o) a.Loopnest.alignment)

let test_forward_reference () =
  (* Statement 1 reads what statement 2 wrote one iteration earlier. *)
  let a = Loopnest.parse "for i = 0..5 { Y[i] = Z[i-1] + X[i]; Z[i] = Y[i] + X[i] }" in
  Alcotest.(check (list (list int))) "deps" [ [ 1 ] ] (deps_of a)

let test_alignment_shift_required () =
  (* P reads Q[i] but Q is computed later in the body: the zero
     alignment is invalid and the search must shift Q. *)
  let a = Loopnest.parse "for i = 0..5 { P[i] = Q[i] + Q[i]; Q[i] = R[i-1] + R[i-1] }" in
  let off = List.assoc "Q" a.Loopnest.alignment in
  Alcotest.(check bool) "Q shifted" true (off.(0) <> 0);
  Alcotest.(check (list (list int))) "deps" [ [ 1 ] ] (deps_of a)

let test_duplicate_writer_rejected () =
  match Loopnest.parse_result "for i = 0..3 { A[i] = B[i-1] + B[i]; A[i] = B[i] + B[i] }" with
  | Error (Loopnest.Non_uniform _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected a duplicate-writer error"

let test_input_reuse_between_refs () =
  (* Two offset reads of the same input induce a reuse dependence. *)
  let a = Loopnest.parse "for t = 0..5, i = 0..5 { B[t,i] = A[i] + A[i-1] }" in
  Alcotest.(check bool) "has (0,1) reuse" true (List.mem [ 0; 1 ] (deps_of a))

let test_multi_statement_schedulable () =
  (* The fused UDA from a 2-statement program maps onto a linear array
     end to end. *)
  let a =
    Loopnest.parse
      "for i = 0..5, j = 0..3 { B[i,j] = B[i,j-1] + A[i,j]; C[i,j] = B[i,j] + C[i,j-1] }"
  in
  let alg = a.Loopnest.algorithm in
  match Space_opt.optimize_joint alg ~k:2 with
  | Some (pi, so) ->
    let tm = Tmap.make ~s:so.Space_opt.s ~pi in
    let rep = Exec.run alg Dataflow.semantics tm in
    Alcotest.(check bool) "clean" true (Exec.is_clean rep)
  | None -> Alcotest.fail "expected a joint mapping"

let check_error src expected =
  match Loopnest.parse_result src with
  | Error e ->
    let s = Loopnest.error_to_string e in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (s ^ " mentions " ^ expected) true (contains s expected)
  | Ok _ -> Alcotest.fail ("expected failure for: " ^ src)

let test_errors () =
  check_error "for i = 0..3 { A[i] = A[i] + 1 }" "reads exactly";
  check_error "for i = 0..3, j = 0..3 { A[i,j] = A[j,i] }" "different index matrices";
  check_error "for i = 0..3 { A[i] = B[2*i] }" "no dependences";
  check_error "for i = 0..0 { A[i] = A[i-1] }" "fewer than two iterations";
  check_error "for i = 0..3 { A[i] = A[q] }" "unknown loop variable";
  check_error "for i = 0..3 { A[i] = }" "parse error";
  check_error "for i = 0..3 A[i] = A[i-1]" "parse error";
  check_error "for i = 0..3 { A[i] = x }" "scalar reference"

let test_parse_error_offset_without_solution () =
  (* F = [2]: offset 1 has no integral preimage. *)
  check_error "for i = 0..4 { A[2*i] = A[2*i-1] }" "no integral solution"

let test_end_to_end_from_source () =
  (* Parse, optimize, simulate — the full pipeline on source text. *)
  let a = Loopnest.parse "for i = 0..5, k = 0..3 { Y[i] = Y[i] + W[k] * X[i-k] }" in
  let s = Intmat.of_ints [ [ 1; 0 ] ] in
  match Procedure51.optimize a.Loopnest.algorithm ~s with
  | Some r ->
    let tm = Tmap.make ~s ~pi:r.Procedure51.pi in
    let report = Exec.run a.Loopnest.algorithm Dataflow.semantics tm in
    Alcotest.(check bool) "clean" true (Exec.is_clean report);
    Alcotest.(check int) "makespan" r.Procedure51.total_time report.Exec.makespan
  | None -> Alcotest.fail "expected a schedule"

let prop_parse_deterministic =
  QCheck.Test.make ~name:"analysis is deterministic" ~count:20 QCheck.unit (fun () ->
      let a1 = Loopnest.parse matmul_src and a2 = Loopnest.parse matmul_src in
      deps_of a1 = deps_of a2)

let suite =
  [
    Alcotest.test_case "matmul source" `Quick test_matmul_source;
    Alcotest.test_case "matmul matches builtin" `Quick test_matmul_matches_builtin;
    Alcotest.test_case "FIR filter" `Quick test_fir_filter;
    Alcotest.test_case "stencil flow deps" `Quick test_stencil_flow_deps;
    Alcotest.test_case "lower bound shift" `Quick test_lower_bound_shift;
    Alcotest.test_case "coefficient syntax" `Quick test_coefficient_syntax;
    Alcotest.test_case "two-statement pipeline" `Quick test_two_statement_pipeline;
    Alcotest.test_case "forward reference" `Quick test_forward_reference;
    Alcotest.test_case "alignment shift required" `Quick test_alignment_shift_required;
    Alcotest.test_case "duplicate writer rejected" `Quick test_duplicate_writer_rejected;
    Alcotest.test_case "input reuse between refs" `Quick test_input_reuse_between_refs;
    Alcotest.test_case "multi-statement end to end" `Slow test_multi_statement_schedulable;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "offset without solution" `Quick test_parse_error_offset_without_solution;
    Alcotest.test_case "end-to-end from source" `Quick test_end_to_end_from_source;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_parse_deterministic ]
