(* Unit and property tests for the Zint bignum substrate. *)

let z = Zint.of_int

let check_z msg expected actual =
  Alcotest.(check string) msg expected (Zint.to_string actual)

let test_constants () =
  check_z "zero" "0" Zint.zero;
  check_z "one" "1" Zint.one;
  check_z "two" "2" Zint.two;
  check_z "minus_one" "-1" Zint.minus_one;
  Alcotest.(check bool) "is_zero" true (Zint.is_zero Zint.zero);
  Alcotest.(check bool) "is_one" true (Zint.is_one Zint.one);
  Alcotest.(check bool) "one not zero" false (Zint.is_zero Zint.one)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Zint.to_int (z n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 45; max_int; min_int;
      max_int - 1; min_int + 1 ]

let test_to_int_overflow () =
  let big = Zint.pow (z 2) 80 in
  Alcotest.(check bool) "fits_int" false (Zint.fits_int big);
  Alcotest.check_raises "to_int raises" (Failure "Zint.to_int: overflow") (fun () ->
      ignore (Zint.to_int big))

let test_addition_chains () =
  (* 2^62 via repeated doubling crosses the native boundary smoothly *)
  let rec double acc i = if i = 0 then acc else double (Zint.add acc acc) (i - 1) in
  check_z "2^62" "4611686018427387904" (double Zint.one 62);
  check_z "2^100" "1267650600228229401496703205376" (double Zint.one 100)

let test_mul_known () =
  check_z "mul" "121932631112635269" (Zint.mul (z 123456789) (z 987654321));
  check_z "neg mul" "-121932631112635269" (Zint.mul (z (-123456789)) (z 987654321));
  check_z "factorial 25" "15511210043330985984000000"
    (List.fold_left (fun acc i -> Zint.mul acc (z i)) Zint.one (List.init 25 (fun i -> i + 1)))

let test_divmod_signs () =
  (* Truncated semantics must match native int *)
  List.iter
    (fun (a, b) ->
      let q, r = Zint.divmod (z a) (z b) in
      Alcotest.(check int) (Printf.sprintf "q %d/%d" a b) (a / b) (Zint.to_int q);
      Alcotest.(check int) (Printf.sprintf "r %d/%d" a b) (a mod b) (Zint.to_int r))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5); (1, 7); (-1, 7) ]

let test_euclidean_division () =
  List.iter
    (fun (a, b) ->
      let q, r = Zint.ediv_rem (z a) (z b) in
      Alcotest.(check bool) "r nonneg" true (Zint.sign r >= 0);
      Alcotest.(check bool) "r < |b|" true (Zint.compare r (Zint.abs (z b)) < 0);
      Alcotest.(check int) "identity" a (Zint.to_int (Zint.add (Zint.mul q (z b)) r)))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 3); (-1, 5); (-10, -3) ]

let test_floor_ceil_division () =
  List.iter
    (fun (a, b, fq, cq) ->
      Alcotest.(check int) (Printf.sprintf "fdiv %d %d" a b) fq (Zint.to_int (Zint.fdiv (z a) (z b)));
      Alcotest.(check int) (Printf.sprintf "cdiv %d %d" a b) cq (Zint.to_int (Zint.cdiv (z a) (z b))))
    [ (7, 2, 3, 4); (-7, 2, -4, -3); (7, -2, -4, -3); (-7, -2, 3, 4); (6, 3, 2, 2) ]

let test_division_by_zero () =
  Alcotest.check_raises "divmod" Division_by_zero (fun () -> ignore (Zint.divmod Zint.one Zint.zero))

let test_gcd () =
  Alcotest.(check int) "gcd 12 18" 6 (Zint.to_int (Zint.gcd (z 12) (z 18)));
  Alcotest.(check int) "gcd -12 18" 6 (Zint.to_int (Zint.gcd (z (-12)) (z 18)));
  Alcotest.(check int) "gcd 0 0" 0 (Zint.to_int (Zint.gcd Zint.zero Zint.zero));
  Alcotest.(check int) "gcd 0 7" 7 (Zint.to_int (Zint.gcd Zint.zero (z 7)));
  Alcotest.(check int) "lcm 4 6" 12 (Zint.to_int (Zint.lcm (z 4) (z 6)));
  Alcotest.(check int) "lcm 0 6" 0 (Zint.to_int (Zint.lcm Zint.zero (z 6)))

let test_gcdext_canonical_on_divisibility () =
  (* When one argument divides the other, the Bezout pair must be the
     trivial (±1, 0) / (0, ±1): the Smith elimination relies on it to
     make progress (a regression test for a real livelock, see
     EXPERIMENTS.md).  In particular gcdext(1, 1) must not be (1,0,1). *)
  let check a b eg ex ey =
    let g, x, y = Zint.gcdext (z a) (z b) in
    Alcotest.(check (triple int int int))
      (Printf.sprintf "gcdext(%d,%d)" a b)
      (eg, ex, ey)
      (Zint.to_int g, Zint.to_int x, Zint.to_int y)
  in
  check 1 1 1 1 0;
  check 1 (-1) 1 1 0;
  check (-1) 1 1 (-1) 0;
  check 2 4 2 1 0;
  check 2 (-4) 2 1 0;
  check (-2) 4 2 (-1) 0;
  check 4 2 2 0 1;
  check 4 (-2) 2 0 (-1);
  check 0 7 7 0 1;
  check 7 0 7 1 0

let test_pow () =
  check_z "2^0" "1" (Zint.pow (z 2) 0);
  check_z "2^100" "1267650600228229401496703205376" (Zint.pow (z 2) 100);
  check_z "(-3)^3" "-27" (Zint.pow (z (-3)) 3);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Zint.pow: negative exponent")
    (fun () -> ignore (Zint.pow (z 2) (-1)))

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Zint.to_string (Zint.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-999999999999999999999999";
      "1000000000"; "999999999"; "1000000001" ]

let test_of_string_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try ignore (Zint.of_string s); false with Invalid_argument _ -> true))
    [ ""; "-"; "+"; "12a"; " 12"; "1 2" ]

let test_compare_total_order () =
  let vals = List.map z [ -100; -1; 0; 1; 2; 100 ] @ [ Zint.pow (z 10) 30; Zint.neg (Zint.pow (z 10) 30) ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Zint.compare a b in
          let c' = compare (Zint.to_float a) (Zint.to_float b) in
          Alcotest.(check int) "order agrees with float" c' c)
        vals)
    vals

let test_min_int_magnitude () =
  (* |min_int| does not fit an int; Zint must handle it exactly. *)
  let m = z min_int in
  check_z "min_int" (string_of_int min_int) m;
  Alcotest.(check int) "roundtrip" min_int (Zint.to_int m);
  Alcotest.(check bool) "abs does not fit" false (Zint.fits_int (Zint.abs m) && Zint.to_int (Zint.abs m) < 0)

(* ---------------- properties ---------------- *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let big_gen =
  (* compose from several int chunks to exercise multi-digit paths *)
  QCheck.map
    (fun (a, b, c, neg) ->
      let v =
        Zint.add
          (Zint.mul (Zint.add (Zint.mul (z a) (z 1_000_000_000)) (z b)) (z 1_000_000_000))
          (z c)
      in
      if neg then Zint.neg v else v)
    QCheck.(quad (int_bound 999_999_999) (int_bound 999_999_999) (int_bound 999_999_999) bool)

let prop_matches_native =
  QCheck.Test.make ~name:"add/mul/div match native int" ~count:2000
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      Zint.to_int (Zint.add (z a) (z b)) = a + b
      && Zint.to_int (Zint.mul (z a) (z b)) = a * b
      && Zint.to_int (Zint.sub (z a) (z b)) = a - b
      && (b = 0 || Zint.to_int (Zint.div (z a) (z b)) = a / b)
      && (b = 0 || Zint.to_int (Zint.rem (z a) (z b)) = a mod b))

let prop_divmod_identity =
  QCheck.Test.make ~name:"big divmod identity and remainder bound" ~count:1000
    QCheck.(pair big_gen big_gen)
    (fun (a, b) ->
      QCheck.assume (not (Zint.is_zero b));
      let q, r = Zint.divmod a b in
      Zint.equal a (Zint.add (Zint.mul q b) r)
      && Zint.compare (Zint.abs r) (Zint.abs b) < 0
      && (Zint.is_zero r || Zint.sign r = Zint.sign a))

let prop_gcdext =
  QCheck.Test.make ~name:"gcdext Bezout identity" ~count:1000
    QCheck.(pair big_gen big_gen)
    (fun (a, b) ->
      let g, x, y = Zint.gcdext a b in
      Zint.equal g (Zint.gcd a b)
      && Zint.equal g (Zint.add (Zint.mul a x) (Zint.mul b y))
      && Zint.sign g >= 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:1000 big_gen (fun a ->
      Zint.equal a (Zint.of_string (Zint.to_string a)))

let prop_ring_axioms =
  QCheck.Test.make ~name:"ring axioms on random bignums" ~count:500
    QCheck.(triple big_gen big_gen big_gen)
    (fun (a, b, c) ->
      Zint.equal (Zint.add a b) (Zint.add b a)
      && Zint.equal (Zint.mul a b) (Zint.mul b a)
      && Zint.equal (Zint.mul a (Zint.add b c)) (Zint.add (Zint.mul a b) (Zint.mul a c))
      && Zint.equal (Zint.add a (Zint.neg a)) Zint.zero)

let prop_floor_ceil_consistency =
  QCheck.Test.make ~name:"fdiv <= tdiv <= cdiv" ~count:1000
    QCheck.(pair big_gen big_gen)
    (fun (a, b) ->
      QCheck.assume (not (Zint.is_zero b));
      let f = Zint.fdiv a b and t = Zint.div a b and c = Zint.cdiv a b in
      Zint.compare f t <= 0 && Zint.compare t c <= 0
      && Zint.compare (Zint.sub c f) Zint.one <= 0)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "of/to int" `Quick test_of_to_int;
    Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
    Alcotest.test_case "doubling chains" `Quick test_addition_chains;
    Alcotest.test_case "known products" `Quick test_mul_known;
    Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
    Alcotest.test_case "euclidean division" `Quick test_euclidean_division;
    Alcotest.test_case "floor/ceil division" `Quick test_floor_ceil_division;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "gcd/lcm" `Quick test_gcd;
    Alcotest.test_case "gcdext canonical" `Quick test_gcdext_canonical_on_divisibility;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "of_string malformed" `Quick test_of_string_malformed;
    Alcotest.test_case "total order" `Quick test_compare_total_order;
    Alcotest.test_case "min_int magnitude" `Quick test_min_int_magnitude;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_matches_native;
        prop_divmod_identity;
        prop_gcdext;
        prop_string_roundtrip;
        prop_ring_axioms;
        prop_floor_ceil_consistency;
      ]
