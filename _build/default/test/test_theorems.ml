(* Property tests of the paper's Theorems 4.3-4.8 against the exact
   box oracle, including the two deviations we found (documented in
   EXPERIMENTS.md, experiment E11):
   - Theorem 4.7 is sufficient but NOT necessary as printed;
   - Theorem 4.8 as printed is neither sufficient nor necessary (it
     misses conflict vectors whose beta has a zero component); the
     corrected variant restores sufficiency. *)

let random_input seed ~codim =
  let rng = Random.State.make [| seed |] in
  let n = codim + 1 + Random.State.int rng 2 in
  let k = n - codim in
  let t = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 15 - 7)) in
  let mu = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
  (t, mu)

let with_full_rank seed ~codim f =
  let t, mu = random_input seed ~codim in
  if Intmat.rank t <> Intmat.rows t then true else f t mu

let prop_necessary_cond2 =
  QCheck.Test.make ~name:"Theorem 4.3 is necessary" ~count:400 QCheck.int (fun seed ->
      with_full_rank seed ~codim:2 (fun t mu ->
          (not (Conflict.is_conflict_free ~mu t))
          || Theorems.necessary_cond2 (Theorems.make_input ~mu t)))

let prop_necessary_cond3 =
  QCheck.Test.make ~name:"Theorem 4.4 is necessary" ~count:400 QCheck.int (fun seed ->
      with_full_rank seed ~codim:2 (fun t mu ->
          (not (Conflict.is_conflict_free ~mu t))
          || Theorems.necessary_cond3 (Theorems.make_input ~mu t)))

let prop_sufficient_cond4 =
  QCheck.Test.make ~name:"Theorem 4.5 is sufficient" ~count:400 QCheck.int (fun seed ->
      with_full_rank seed ~codim:2 (fun t mu ->
          (not (Theorems.sufficient_cond4 (Theorems.make_input ~mu t)))
          || Conflict.is_conflict_free ~mu t))

let prop_sufficient_cond5 =
  QCheck.Test.make ~name:"Theorem 4.6 is sufficient" ~count:400 QCheck.int (fun seed ->
      with_full_rank seed ~codim:2 (fun t mu ->
          (not (Theorems.sufficient_cond5 (Theorems.make_input ~mu t)))
          || Conflict.is_conflict_free ~mu t))

let prop_theorem_4_7_sufficient =
  QCheck.Test.make ~name:"Theorem 4.7 is sufficient" ~count:600 QCheck.int (fun seed ->
      with_full_rank seed ~codim:2 (fun t mu ->
          (not (Theorems.nec_suff_n_minus_2 (Theorems.make_input ~mu t)))
          || Conflict.is_conflict_free ~mu t))

let test_theorem_4_7_not_necessary () =
  (* A reproducible counterexample to the paper's necessity claim:
     conflict-free, but no sign-matched row sums past its bound. *)
  let t = Intmat.of_ints [ [ 1; 0; -3; -6 ]; [ 5; 2; 3; -3 ] ] in
  let mu = [| 1; 3; 1; 3 |] in
  Alcotest.(check bool) "conflict-free (oracle)" true (Conflict.is_conflict_free ~mu t);
  Alcotest.(check bool) "Theorem 4.7 rejects it" false
    (Theorems.nec_suff_n_minus_2 (Theorems.make_input ~mu t))

let test_theorem_4_8_not_sufficient () =
  (* Counterexample to the paper's sufficiency claim for Theorem 4.8:
     the witness conflict vector is u4 - u5 (beta = (0, 1, -1)), which
     none of the four all-nonzero sign patterns covers. *)
  let t = Intmat.of_ints [ [ -6; -6; 1; 4; -5 ]; [ 0; -6; -3; 0; -7 ] ] in
  let mu = [| 4; 2; 2; 1; 1 |] in
  let inp = Theorems.make_input ~mu t in
  if Theorems.nec_suff_n_minus_3 inp then
    Alcotest.(check bool) "oracle finds a conflict anyway" false
      (Conflict.is_conflict_free ~mu t)
  else
    (* HNF normalization differences may flip the printed condition;
       the corrected condition must still be sound. *)
    Alcotest.(check bool) "corrected is conservative" true
      ((not (Theorems.corrected_sufficient_n_minus_3 inp)) || Conflict.is_conflict_free ~mu t)

let prop_corrected_4_8_sufficient =
  QCheck.Test.make ~name:"corrected Theorem 4.8 is sufficient" ~count:600 QCheck.int
    (fun seed ->
      with_full_rank seed ~codim:3 (fun t mu ->
          (not (Theorems.corrected_sufficient_n_minus_3 (Theorems.make_input ~mu t)))
          || Conflict.is_conflict_free ~mu t))

let prop_decide_is_exact =
  QCheck.Test.make ~name:"decide agrees with the oracle everywhere" ~count:500 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 4 in
      let k = 1 + Random.State.int rng (min (n - 1) 4) in
      let t = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 15 - 7)) in
      let mu = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
      fst (Theorems.decide ~mu t) = Conflict.is_conflict_free ~mu t)

let test_decide_methods () =
  (* The dispatcher picks the method the paper prescribes per shape. *)
  let check t mu expect =
    let _, m = Theorems.decide ~mu t in
    Alcotest.(check bool) "method" true (m = expect)
  in
  check (Intmat.identity 3) [| 2; 2; 2 |] Theorems.Full_rank_square;
  check (Intmat.of_ints [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]) [| 4; 4; 4 |] Theorems.Adjugate_form;
  (* kernel column inside the box -> immediate rejection *)
  let t = Intmat.of_ints [ [ 1; 0; 0; 0 ]; [ 0; 1; 0; 0 ] ] in
  check t [| 3; 3; 3; 3 |] Theorems.Column_infeasible

let test_wrong_codimension_raises () =
  let t = Intmat.of_ints [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ] in
  let inp = Theorems.make_input ~mu:[| 2; 2; 2 |] t in
  Alcotest.(check bool) "4.7 on codim 1 rejected" true
    (try ignore (Theorems.nec_suff_n_minus_2 inp); false with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "4.7 not necessary (counterexample)" `Quick test_theorem_4_7_not_necessary;
    Alcotest.test_case "4.8 not sufficient (counterexample)" `Quick test_theorem_4_8_not_sufficient;
    Alcotest.test_case "decide picks paper methods" `Quick test_decide_methods;
    Alcotest.test_case "wrong codimension" `Quick test_wrong_codimension_raises;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_necessary_cond2;
        prop_necessary_cond3;
        prop_sufficient_cond4;
        prop_sufficient_cond5;
        prop_theorem_4_7_sufficient;
        prop_corrected_4_8_sufficient;
        prop_decide_is_exact;
      ]
