(* Tests for LLL reduction and the lattice-based conflict oracle. *)

let iv = Intvec.of_ints

let test_reduce_known () =
  (* Classic example: a skewed 2-D basis reduces to short vectors. *)
  let basis = [ iv [ 1; 1 ]; iv [ 1; 0 ] ] in
  let red = Lll.reduce basis in
  Alcotest.(check bool) "reduced" true (Lll.is_reduced red);
  List.iter
    (fun v ->
      Alcotest.(check bool) "short" true (Zint.to_int (Intvec.linf_norm v) <= 1))
    red

let test_reduce_preserves_lattice () =
  let basis = [ iv [ 9; 1; 18 ]; iv [ -1; -16; 7 ] ] in
  let red = Lll.reduce basis in
  let canon b = (Hnf.compute (Intmat.of_cols b)).Hnf.h in
  Alcotest.(check bool) "same lattice" true (Intmat.equal (canon basis) (canon red));
  Alcotest.(check bool) "reduced" true (Lll.is_reduced red)

let test_reduce_single_vector () =
  let red = Lll.reduce [ iv [ 4; -6 ] ] in
  Alcotest.(check int) "one vector" 1 (List.length red);
  Alcotest.(check bool) "reduced" true (Lll.is_reduced red)

let test_reduce_rejects_dependent () =
  Alcotest.(check bool) "dependent rejected" true
    (try ignore (Lll.reduce [ iv [ 1; 2 ]; iv [ 2; 4 ] ]); false
     with Invalid_argument _ -> true)

let test_gram_schmidt_orthogonality () =
  let basis = [ iv [ 3; 1 ]; iv [ 1; 2 ] ] in
  let mu, norms = Lll.gram_schmidt basis in
  (* b*_1 = b1 - mu10 b0 with mu10 = 5/10 = 1/2; ||b*_0||^2 = 10. *)
  Alcotest.(check bool) "mu10 = 1/2" true (Qnum.equal mu.(1).(0) (Qnum.of_ints 1 2));
  Alcotest.(check bool) "norm0 = 10" true (Qnum.equal norms.(0) (Qnum.of_int 10))

let prop_reduce_invariants =
  QCheck.Test.make ~name:"LLL: same lattice, reduced, shorter" ~count:300 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 4 in
      let d = 1 + Random.State.int rng (min 3 n) in
      let basis =
        List.init d (fun _ -> Array.init n (fun _ -> Zint.of_int (Random.State.int rng 41 - 20)))
      in
      if Intmat.rank (Intmat.of_cols basis) < d then true
      else begin
        let red = Lll.reduce basis in
        let canon b = (Hnf.compute (Intmat.of_cols b)).Hnf.h in
        Lll.is_reduced red
        && Intmat.equal (canon basis) (canon red)
        &&
        (* The standard LLL guarantee on the first vector:
           ||b1||^2 <= 2^(m-1) * lambda1^2 <= 2^(m-1) * min input norm^2. *)
        let min_norm b =
          List.fold_left (fun acc v -> Zint.min acc (Intvec.dot v v)) (Intvec.dot (List.hd b) (List.hd b)) b
        in
        let first = Intvec.dot (List.hd red) (List.hd red) in
        Zint.compare first (Zint.mul (Zint.pow Zint.two (d - 1)) (min_norm basis)) <= 0
      end)

let prop_lattice_oracle_matches_box =
  QCheck.Test.make ~name:"lattice oracle = box oracle" ~count:300 QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 3 in
      let k = 1 + Random.State.int rng (n - 1) in
      let t = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 15 - 7)) in
      let mu = Array.init n (fun _ -> 1 + Random.State.int rng 5) in
      (Conflict.find_conflict ~mu t = None) = (Conflict.find_conflict_lattice ~mu t = None))

let prop_lattice_witness_sound =
  QCheck.Test.make ~name:"lattice witness is a genuine in-box kernel vector" ~count:300
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 3 in
      let k = 1 + Random.State.int rng (n - 1) in
      let t = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 15 - 7)) in
      let mu = Array.init n (fun _ -> 1 + Random.State.int rng 5) in
      match Conflict.find_conflict_lattice ~mu t with
      | None -> true
      | Some g ->
        Intvec.is_zero (Intmat.mul_vec t g)
        && (not (Intvec.is_zero g))
        && not (Conflict.is_feasible ~mu g))

let test_large_mu_scaling () =
  (* The whole point: mu = 1000 is decidable instantly via the lattice,
     while the box would have ~10^9 points in 3-D. *)
  let mu = [| 1000; 1000; 1000 |] in
  let t_free = Intmat.append_row Matmul.paper_s (iv [ 1; 1000; 1 ]) in
  Alcotest.(check bool) "(1,1000,1) conflict-free" true
    (Conflict.find_conflict_lattice ~mu t_free = None);
  let t_bad = Intmat.append_row Matmul.paper_s (iv [ 1; 1; 1 ]) in
  Alcotest.(check bool) "(1,1,1) conflicts" true
    (Conflict.find_conflict_lattice ~mu t_bad <> None);
  (* And the dispatching oracle picks the lattice path for huge boxes. *)
  Alcotest.(check bool) "dispatch agrees" true (Conflict.is_conflict_free ~mu t_free);
  Alcotest.(check bool) "dispatch agrees (bad)" false (Conflict.is_conflict_free ~mu t_bad)

let suite =
  [
    Alcotest.test_case "reduce known basis" `Quick test_reduce_known;
    Alcotest.test_case "reduce preserves lattice" `Quick test_reduce_preserves_lattice;
    Alcotest.test_case "single vector" `Quick test_reduce_single_vector;
    Alcotest.test_case "dependent basis rejected" `Quick test_reduce_rejects_dependent;
    Alcotest.test_case "gram-schmidt" `Quick test_gram_schmidt_orthogonality;
    Alcotest.test_case "large-mu scaling" `Quick test_large_mu_scaling;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_reduce_invariants; prop_lattice_oracle_matches_box; prop_lattice_witness_sound ]
