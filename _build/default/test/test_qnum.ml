(* Unit and property tests for exact rationals. *)

let q = Qnum.of_int
let qq = Qnum.of_ints
let check_q msg expected actual = Alcotest.(check string) msg expected (Qnum.to_string actual)

let test_canonical_form () =
  check_q "6/4 reduces" "3/2" (qq 6 4);
  check_q "-6/4 reduces" "-3/2" (qq (-6) 4);
  check_q "6/-4 sign moves up" "-3/2" (qq 6 (-4));
  check_q "-6/-4" "3/2" (qq (-6) (-4));
  check_q "0/5" "0" (qq 0 5);
  Alcotest.(check bool) "den positive" true (Zint.sign (Qnum.den (qq 3 (-7))) > 0)

let test_zero_denominator () =
  Alcotest.check_raises "make 1/0" Division_by_zero (fun () -> ignore (qq 1 0));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Qnum.inv Qnum.zero));
  Alcotest.check_raises "div by 0" Division_by_zero (fun () -> ignore (Qnum.div Qnum.one Qnum.zero))

let test_arithmetic () =
  check_q "1/2 + 1/3" "5/6" (Qnum.add (qq 1 2) (qq 1 3));
  check_q "1/2 - 1/3" "1/6" (Qnum.sub (qq 1 2) (qq 1 3));
  check_q "2/3 * 3/4" "1/2" (Qnum.mul (qq 2 3) (qq 3 4));
  check_q "1/2 / 1/4" "2" (Qnum.div (qq 1 2) (qq 1 4));
  check_q "inv -2/3" "-3/2" (Qnum.inv (qq (-2) 3))

let test_rounding () =
  let cases = [ (7, 2, 3, 4); (-7, 2, -4, -3); (6, 3, 2, 2); (-1, 2, -1, 0); (0, 1, 0, 0) ] in
  List.iter
    (fun (n, d, fl, ce) ->
      Alcotest.(check int) (Printf.sprintf "floor %d/%d" n d) fl (Zint.to_int (Qnum.floor (qq n d)));
      Alcotest.(check int) (Printf.sprintf "ceil %d/%d" n d) ce (Zint.to_int (Qnum.ceil (qq n d))))
    cases

let test_is_integer () =
  Alcotest.(check bool) "4/2 is integer" true (Qnum.is_integer (qq 4 2));
  Alcotest.(check bool) "3/2 not" false (Qnum.is_integer (qq 3 2));
  Alcotest.(check int) "to_zint_exn" 2 (Zint.to_int (Qnum.to_zint_exn (qq 4 2)));
  Alcotest.check_raises "to_zint_exn fails" (Failure "Qnum.to_zint_exn: not an integer")
    (fun () -> ignore (Qnum.to_zint_exn (qq 3 2)))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Qnum.compare (qq 1 3) (qq 1 2) < 0);
  Alcotest.(check bool) "-1/3 > -1/2" true (Qnum.compare (qq (-1) 3) (qq (-1) 2) > 0);
  Alcotest.(check bool) "equal canonical" true (Qnum.equal (qq 2 4) (qq 1 2));
  Alcotest.(check bool) "min" true (Qnum.equal (Qnum.min (qq 1 3) (qq 1 2)) (qq 1 3));
  Alcotest.(check bool) "max" true (Qnum.equal (Qnum.max (qq 1 3) (qq 1 2)) (qq 1 2))

let rational_gen =
  QCheck.map
    (fun (n, d) -> Qnum.of_ints n (if d = 0 then 1 else d))
    QCheck.(pair (int_range (-10000) 10000) (int_range (-100) 100))

let prop_field_axioms =
  QCheck.Test.make ~name:"field axioms" ~count:1000
    QCheck.(triple rational_gen rational_gen rational_gen)
    (fun (a, b, c) ->
      Qnum.equal (Qnum.add a b) (Qnum.add b a)
      && Qnum.equal (Qnum.mul a (Qnum.add b c)) (Qnum.add (Qnum.mul a b) (Qnum.mul a c))
      && Qnum.equal (Qnum.sub a a) Qnum.zero
      && (Qnum.is_zero a || Qnum.equal (Qnum.mul a (Qnum.inv a)) Qnum.one))

let prop_floor_bounds =
  QCheck.Test.make ~name:"floor <= q < floor+1" ~count:1000 rational_gen (fun a ->
      let f = Qnum.of_zint (Qnum.floor a) in
      Qnum.compare f a <= 0 && Qnum.compare a (Qnum.add f Qnum.one) < 0)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:1000
    QCheck.(pair rational_gen rational_gen)
    (fun (a, b) -> Qnum.compare a b = -Qnum.compare b a)

let suite =
  [
    Alcotest.test_case "canonical form" `Quick test_canonical_form;
    Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "rounding" `Quick test_rounding;
    Alcotest.test_case "is_integer" `Quick test_is_integer;
    Alcotest.test_case "compare" `Quick test_compare;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_field_axioms; prop_floor_bounds; prop_compare_antisym ]
