(* Tests for Schedule (Equation 2.7) and Tmap (Definition 2.2,
   conditions 1, 2 and 4). *)

let iv = Intvec.of_ints
let im = Intmat.of_ints

let test_respects () =
  let d = im [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ] in
  Alcotest.(check bool) "positive" true (Schedule.respects (iv [ 1; 1; 1 ]) d);
  Alcotest.(check bool) "zero component" false (Schedule.respects (iv [ 1; 0; 1 ]) d);
  Alcotest.(check bool) "negative" false (Schedule.respects (iv [ 1; -1; 1 ]) d)

let test_time_of () =
  Alcotest.(check int) "dot" 14 (Schedule.time_of (iv [ 1; 2; 3 ]) [| 3; 1; 3 |])

let test_total_time_formula () =
  (* Equation 2.7 must equal the brute-force makespan (Equation 2.4). *)
  let mu = [| 3; 4; 2 |] in
  let iset = Index_set.make mu in
  List.iter
    (fun pi ->
      let pi = iv pi in
      Alcotest.(check int) "Eq 2.7 = Eq 2.4" (Schedule.makespan_oracle iset pi)
        (Schedule.total_time ~mu pi))
    [ [ 1; 1; 1 ]; [ 2; -1; 3 ]; [ -1; -1; -1 ]; [ 0; 5; 0 ]; [ 1; 4; 1 ] ]

let test_objective () =
  Alcotest.(check int) "objective" 24 (Schedule.objective ~mu:[| 4; 4; 4 |] (iv [ 1; 4; 1 ]));
  Alcotest.(check int) "abs values" 24 (Schedule.objective ~mu:[| 4; 4; 4 |] (iv [ -1; 4; -1 ]))

let test_tmap_construction () =
  let tm = Tmap.make ~s:(im [ [ 1; 1; -1 ] ]) ~pi:(iv [ 1; 4; 1 ]) in
  Alcotest.(check int) "n" 3 (Tmap.n tm);
  Alcotest.(check int) "k" 2 (Tmap.k tm);
  Alcotest.(check (list (list int))) "matrix" [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]
    (Intmat.to_ints (Tmap.matrix tm));
  Alcotest.(check (array int)) "space" [| 2 |] (Tmap.space_of tm [| 1; 2; 1 |]);
  Alcotest.(check int) "time" 10 (Tmap.time_of tm [| 1; 2; 1 |]);
  Alcotest.(check bool) "full rank" true (Tmap.has_full_rank tm)

let test_tmap_of_rows () =
  let tm = Tmap.of_rows [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ] in
  Alcotest.(check (list (list int))) "matrix" [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]
    (Intmat.to_ints (Tmap.matrix tm))

let test_tmap_rank_deficient () =
  let tm = Tmap.make ~s:(im [ [ 1; 1; 1 ] ]) ~pi:(iv [ 2; 2; 2 ]) in
  Alcotest.(check bool) "rank 1 < 2" false (Tmap.has_full_rank tm)

let test_processor_count_matmul () =
  (* Example 5.1, mu = 4: PEs are j1 + j2 - j3 in [-4, 8]: 13 of them. *)
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu:4) in
  let procs = Tmap.processors tm (Index_set.cube ~n:3 ~mu:4) in
  Alcotest.(check int) "13 PEs" 13 (List.length procs)

let test_nearest_neighbor_primitives () =
  (* The paper's 4-neighbor P for 2-D arrays, up to column order. *)
  let p = Tmap.nearest_neighbor_primitives 2 in
  Alcotest.(check int) "rows" 2 (Intmat.rows p);
  Alcotest.(check int) "cols" 4 (Intmat.cols p);
  let cols = List.init 4 (fun j -> Intvec.to_ints (Intmat.col p j)) in
  List.iter
    (fun c -> Alcotest.(check bool) "unit column" true (List.mem c cols))
    [ [ 1; 0 ]; [ -1; 0 ]; [ 0; 1 ]; [ 0; -1 ] ]

let test_routing_matmul () =
  (* Example 5.1: hops (1,1,1), buffers (0, mu-1, 0) with Pi = (1,mu,1);
     the paper counts 3 buffers on the A link at mu = 4. *)
  let mu = 4 in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
  let d = (Matmul.algorithm ~mu).Algorithm.dependences in
  match Tmap.find_routing tm ~d with
  | Some r ->
    Alcotest.(check (array int)) "hops" [| 1; 1; 1 |] r.Tmap.hops;
    Alcotest.(check (array int)) "buffers" [| 0; 3; 0 |] r.Tmap.buffers;
    Alcotest.(check bool) "PK = SD" true
      (Intmat.equal
         (Intmat.mul (Tmap.nearest_neighbor_primitives 1) r.Tmap.k_matrix)
         (Intmat.mul Matmul.paper_s d))
  | None -> Alcotest.fail "expected a routing"

let test_routing_lee_kedem_buffers () =
  (* [23]'s schedule needs Sigma (Pi' d_i - 1) = 4 buffers at mu = 4. *)
  let mu = 4 in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.lee_kedem_pi ~mu) in
  let d = (Matmul.algorithm ~mu).Algorithm.dependences in
  match Tmap.find_routing tm ~d with
  | Some r ->
    Alcotest.(check int) "4 buffers total" 4 (Array.fold_left ( + ) 0 r.Tmap.buffers)
  | None -> Alcotest.fail "expected a routing"

let test_routing_infeasible () =
  (* A dependence that must travel 2 hops in 1 time step cannot be
     routed. *)
  let tm = Tmap.make ~s:(im [ [ 2; 0 ] ]) ~pi:(iv [ 1; 1 ]) in
  let d = im [ [ 1; 0 ]; [ 0; 1 ] ] in
  Alcotest.(check bool) "no routing" true (Tmap.find_routing tm ~d = None)

let test_routing_with_negative_displacement () =
  let tm = Tmap.make ~s:(im [ [ -1; 0 ] ]) ~pi:(iv [ 1; 1 ]) in
  let d = im [ [ 1; 0 ]; [ 0; 1 ] ] in
  match Tmap.find_routing tm ~d with
  | Some r -> Alcotest.(check (array int)) "hops" [| 1; 0 |] r.Tmap.hops
  | None -> Alcotest.fail "expected a routing"

let prop_total_time_is_makespan =
  QCheck.Test.make ~name:"Equation 2.7 equals brute-force makespan" ~count:150 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 1 + Random.State.int rng 3 in
      let mu = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
      let pi = Array.init n (fun _ -> Zint.of_int (Random.State.int rng 9 - 4)) in
      Schedule.total_time ~mu pi = Schedule.makespan_oracle (Index_set.make mu) pi)

let suite =
  [
    Alcotest.test_case "Pi D > 0" `Quick test_respects;
    Alcotest.test_case "time of point" `Quick test_time_of;
    Alcotest.test_case "total time formula" `Quick test_total_time_formula;
    Alcotest.test_case "objective" `Quick test_objective;
    Alcotest.test_case "tmap construction" `Quick test_tmap_construction;
    Alcotest.test_case "tmap of_rows" `Quick test_tmap_of_rows;
    Alcotest.test_case "tmap rank deficient" `Quick test_tmap_rank_deficient;
    Alcotest.test_case "matmul processor count" `Quick test_processor_count_matmul;
    Alcotest.test_case "nearest neighbor primitives" `Quick test_nearest_neighbor_primitives;
    Alcotest.test_case "matmul routing" `Quick test_routing_matmul;
    Alcotest.test_case "lee-kedem buffers" `Quick test_routing_lee_kedem_buffers;
    Alcotest.test_case "routing infeasible" `Quick test_routing_infeasible;
    Alcotest.test_case "routing negative displacement" `Quick test_routing_with_negative_displacement;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_total_time_is_makespan ]
