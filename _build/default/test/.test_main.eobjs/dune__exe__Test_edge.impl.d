test/test_edge.ml: Alcotest Algorithm Array Conflict Dataflow Exec Format Hnf Index_set Intmat Intvec Lin List Loopnest Matmul Qnum Schedule Simplex Smith Stats String Theorems Tmap Trace Vertex Zint
