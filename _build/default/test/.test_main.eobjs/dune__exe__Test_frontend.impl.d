test/test_frontend.ml: Alcotest Algorithm Array Dataflow Exec Index_set Intmat Intvec List Loopnest Matmul Procedure51 QCheck QCheck_alcotest Space_opt String Tmap
