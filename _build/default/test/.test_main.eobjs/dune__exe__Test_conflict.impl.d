test/test_conflict.ml: Alcotest Array Conflict Index_set Intmat Intvec List QCheck QCheck_alcotest Random Zint
