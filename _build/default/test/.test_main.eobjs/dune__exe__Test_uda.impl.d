test/test_uda.ml: Alcotest Algorithm Array Dataflow Index_set Intvec List Lu Matmul QCheck QCheck_alcotest Random Transitive_closure
