test/test_qnum.ml: Alcotest List Printf QCheck QCheck_alcotest Qnum Zint
