test/test_fuzz.ml: Algorithm Array Dataflow Exec Intmat List Loopnest Option Printf Procedure51 QCheck QCheck_alcotest Random Space_opt String Tmap Zint
