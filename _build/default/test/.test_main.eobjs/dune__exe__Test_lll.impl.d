test/test_lll.ml: Alcotest Array Conflict Hnf Intmat Intvec List Lll Matmul QCheck QCheck_alcotest Qnum Random Zint
