test/test_mapping.ml: Alcotest Algorithm Array Index_set Intmat Intvec List Matmul QCheck QCheck_alcotest Random Schedule Tmap Zint
