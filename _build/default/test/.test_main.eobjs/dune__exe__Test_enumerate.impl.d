test/test_enumerate.ml: Alcotest Algorithm Array Conflict Enumerate Intmat Intvec List Matmul Printf Procedure51 Schedule Tmap Transitive_closure
