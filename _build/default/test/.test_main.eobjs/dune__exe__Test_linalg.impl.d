test/test_linalg.ml: Alcotest Intmat Intvec List QCheck QCheck_alcotest Random Ratmat Zint
