test/test_scale.ml: Alcotest Algorithm Array Conflict Exec Format Hnf Index_set Int Intmat Intvec Lin List Matmul Procedure51 Qnum Random Simplex Smith Tmap Zint
