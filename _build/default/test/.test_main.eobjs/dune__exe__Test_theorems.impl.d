test/test_theorems.ml: Alcotest Array Conflict Intmat List QCheck QCheck_alcotest Random Theorems Zint
