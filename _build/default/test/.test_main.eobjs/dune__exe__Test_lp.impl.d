test/test_lp.ml: Alcotest Array Ilp Lin List QCheck QCheck_alcotest Qnum Random Simplex Vertex Zint
