test/test_ratmat.ml: Alcotest Array List QCheck QCheck_alcotest Qnum Random Ratmat
