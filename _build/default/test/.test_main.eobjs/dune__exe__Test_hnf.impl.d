test/test_hnf.ml: Alcotest Hnf Intmat Intvec List Printf QCheck QCheck_alcotest Random Smith Zint
