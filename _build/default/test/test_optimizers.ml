(* Tests for Procedure 5.1, the ILP formulation (5.1)-(5.2) and
   Proposition 8.1. *)

let iv = Intvec.of_ints

let test_candidates_at_cost () =
  (* mu = (1,1): cost 1 candidates are (±1, 0), (0, ±1). *)
  let c = Procedure51.candidates_at_cost ~mu:[| 1; 1 |] 1 in
  Alcotest.(check int) "four" 4 (List.length c);
  (* weighted: mu = (2,3), cost 6: |pi1|*2 + |pi2|*3 = 6:
     (3,0),(0,2) and signs: 2 + 2 = 4 *)
  let c = Procedure51.candidates_at_cost ~mu:[| 2; 3 |] 6 in
  Alcotest.(check int) "weighted" 4 (List.length c)

let test_candidates_cover_objective () =
  (* Every candidate at cost c has objective exactly c. *)
  let mu = [| 2; 3; 1 |] in
  List.iter
    (fun c ->
      List.iter
        (fun pi -> Alcotest.(check int) "objective" c (Schedule.objective ~mu pi))
        (Procedure51.candidates_at_cost ~mu c))
    [ 1; 2; 3; 4; 5 ]

let test_matmul_optimum_matches_paper () =
  (* Example 5.1: t = mu(mu+2) + 1. *)
  List.iter
    (fun mu ->
      let alg = Matmul.algorithm ~mu in
      match Procedure51.optimize alg ~s:Matmul.paper_s with
      | Some r ->
        Alcotest.(check int)
          (Printf.sprintf "total time mu=%d" mu)
          (Matmul.optimal_total_time ~mu) r.Procedure51.total_time
      | None -> Alcotest.fail "expected a schedule")
    [ 2; 3; 4; 5; 6 ]

let test_tc_optimum_matches_paper () =
  (* Example 5.2: t = mu(mu+3) + 1, Pi = (mu+1, 1, 1). *)
  List.iter
    (fun mu ->
      let alg = Transitive_closure.algorithm ~mu in
      match Procedure51.optimize alg ~s:Transitive_closure.paper_s with
      | Some r ->
        Alcotest.(check int)
          (Printf.sprintf "total time mu=%d" mu)
          (Transitive_closure.optimal_total_time ~mu)
          r.Procedure51.total_time
      | None -> Alcotest.fail "expected a schedule")
    [ 2; 3; 4; 5 ]

let test_tc_paper_pi_is_valid () =
  let mu = 5 in
  let alg = Transitive_closure.algorithm ~mu in
  let pi = Transitive_closure.optimal_pi ~mu in
  Alcotest.(check bool) "respects D" true (Schedule.respects pi alg.Algorithm.dependences);
  let t = Intmat.append_row Transitive_closure.paper_s pi in
  Alcotest.(check bool) "conflict-free" true
    (Conflict.is_conflict_free ~mu:(Index_set.bounds alg.Algorithm.index_set) t)

let test_exact_and_theorem_checks_agree () =
  let alg = Matmul.algorithm ~mu:3 in
  let r1 = Procedure51.optimize ~check:Procedure51.Exact alg ~s:Matmul.paper_s in
  let r2 = Procedure51.optimize ~check:Procedure51.Theorem alg ~s:Matmul.paper_s in
  match (r1, r2) with
  | Some a, Some b ->
    Alcotest.(check int) "same optimum" a.Procedure51.total_time b.Procedure51.total_time
  | _ -> Alcotest.fail "expected schedules"

let test_optimize_with_routing () =
  let mu = 3 in
  let alg = Matmul.algorithm ~mu in
  match Procedure51.optimize ~require_routing:true alg ~s:Matmul.paper_s with
  | Some r ->
    Alcotest.(check bool) "routing present" true (r.Procedure51.routing <> None);
    Alcotest.(check int) "optimum unchanged" (Matmul.optimal_total_time ~mu) r.Procedure51.total_time
  | None -> Alcotest.fail "expected a schedule"

let test_optimize_infeasible_space_map () =
  (* S with a kernel direction equal to a dependence makes every
     candidate conflict... not quite; instead use max_objective too
     small to find anything. *)
  let alg = Matmul.algorithm ~mu:4 in
  Alcotest.(check bool) "bounded search gives up" true
    (Procedure51.optimize ~max_objective:5 alg ~s:Matmul.paper_s = None)

let test_minimal_schedule () =
  (* For D = I, Pi D > 0 forces every component positive: (1,1,1). *)
  let alg = Matmul.algorithm ~mu:4 in
  (match Procedure51.minimal_schedule alg with
  | Some pi -> Alcotest.(check (list int)) "matmul free" [ 1; 1; 1 ] (Intvec.to_ints pi)
  | None -> Alcotest.fail "expected a schedule");
  let alg = Transitive_closure.algorithm ~mu:4 in
  match Procedure51.minimal_schedule alg with
  | Some pi ->
    Alcotest.(check bool) "respects D" true (Schedule.respects pi alg.Algorithm.dependences);
    (* pi1 > pi2 + pi3 forces cost >= 5 at mu-uniform weights. *)
    Alcotest.(check (list int)) "tc free" [ 3; 1; 1 ] (Intvec.to_ints pi)
  | None -> Alcotest.fail "expected a schedule"

(* ----------------------- ILP formulation ----------------------- *)

let test_ilp_form_matmul () =
  let mu = 4 in
  let alg = Matmul.algorithm ~mu in
  match Ilp_form.optimize alg ~s:Matmul.paper_s with
  | Some sol ->
    Alcotest.(check int) "objective mu(mu+2)" (mu * (mu + 2)) sol.Ilp_form.objective;
    (* The solution has the paper's cost; the specific schedule may be
       any of the cost-24 winners ((1,4,1), (4,1,1), (1,2,3), ...). *)
    ignore iv;
    let t = Intmat.append_row Matmul.paper_s sol.Ilp_form.pi in
    Alcotest.(check bool) "conflict-free" true
      (Conflict.is_conflict_free ~mu:[| mu; mu; mu |] t);
    Alcotest.(check bool) "appendix integrality" true sol.Ilp_form.integral_vertices
  | None -> Alcotest.fail "expected a solution"

let test_ilp_form_odd_mu_edge_point () =
  (* At odd mu every vertex of the optimal face fails the postponed gcd
     check and the optimum is an interior lattice point of the face
     (EXPERIMENTS.md E6). *)
  let mu = 3 in
  let alg = Matmul.algorithm ~mu in
  match Ilp_form.optimize alg ~s:Matmul.paper_s with
  | Some sol ->
    Alcotest.(check int) "objective mu(mu+2)" (mu * (mu + 2)) sol.Ilp_form.objective;
    Alcotest.(check bool) "gamma feasible" true
      (Conflict.is_feasible ~mu:[| mu; mu; mu |] sol.Ilp_form.gamma)
  | None -> Alcotest.fail "expected a solution"

let test_ilp_form_tc () =
  let mu = 4 in
  let alg = Transitive_closure.algorithm ~mu in
  match Ilp_form.optimize alg ~s:Transitive_closure.paper_s with
  | Some sol ->
    Alcotest.(check int) "objective mu(mu+3)" (mu * (mu + 3)) sol.Ilp_form.objective;
    Alcotest.(check (list int)) "Pi = (mu+1, 1, 1)" [ mu + 1; 1; 1 ] (Intvec.to_ints sol.Ilp_form.pi);
    Alcotest.(check (list int)) "gamma = (1, -(mu+1), 0)" [ 1; -(mu + 1); 0 ]
      (Intvec.to_ints sol.Ilp_form.gamma)
  | None -> Alcotest.fail "expected a solution"

let test_ilp_form_equals_procedure51 () =
  (* Experiment E12: the two optimizers agree on the optimum value. *)
  List.iter
    (fun mu ->
      let alg = Matmul.algorithm ~mu in
      match (Ilp_form.optimize alg ~s:Matmul.paper_s, Procedure51.optimize alg ~s:Matmul.paper_s) with
      | Some a, Some b ->
        Alcotest.(check int) "agree" (a.Ilp_form.objective + 1) b.Procedure51.total_time
      | _ -> Alcotest.fail "expected solutions")
    [ 2; 3; 4; 5 ]

let test_ilp_form_branch_count () =
  let alg = Matmul.algorithm ~mu:4 in
  Alcotest.(check int) "2n branches" 6 (List.length (Ilp_form.branches alg ~s:Matmul.paper_s))

let test_ilp_form_wrong_shape () =
  let alg = Matmul.algorithm ~mu:3 in
  Alcotest.(check bool) "S must be (n-2) x n" true
    (try ignore (Ilp_form.branches alg ~s:(Intmat.of_ints [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ])); false
     with Invalid_argument _ -> true)

let test_formulation_5_5_5_6 () =
  (* The (5.5)-(5.6) route (Prop 8.1-screened) agrees with the general
     Procedure 5.1 on the 5-D -> 2-D bit-level mapping. *)
  let alg = Bit_matmul.algorithm ~mu_word:2 ~mu_bit:2 in
  let s = Bit_matmul.example_s in
  match
    ( Ilp_form.optimize_5d_to_2d ~max_objective:40 alg ~s,
      Procedure51.optimize ~max_objective:40 alg ~s )
  with
  | Some (_, t1), Some r -> Alcotest.(check int) "same optimum" r.Procedure51.total_time t1
  | _ -> Alcotest.fail "expected schedules"

let test_formulation_5_5_5_6_rejects_bad_s () =
  let alg = Bit_matmul.algorithm ~mu_word:2 ~mu_bit:2 in
  let bad = Intmat.of_ints [ [ 2; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ] ] in
  Alcotest.(check bool) "normalization enforced" true
    (try ignore (Ilp_form.optimize_5d_to_2d alg ~s:bad); false
     with Invalid_argument _ -> true)

(* ----------------------- Proposition 8.1 ----------------------- *)

let test_prop81_applicability () =
  Alcotest.(check bool) "bit-matmul S applicable" true (Prop81.applicable ~s:Bit_matmul.example_s);
  Alcotest.(check bool) "wrong shape" false (Prop81.applicable ~s:Matmul.paper_s);
  let bad = Intmat.of_ints [ [ 2; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ] ] in
  Alcotest.(check bool) "s11 <> 1" false (Prop81.applicable ~s:bad)

let test_prop81_kernel_generators () =
  let s = Bit_matmul.example_s in
  let pi = iv [ 3; 5; 7; 11; 13 ] in
  match Prop81.compute ~s ~pi with
  | Some r ->
    let t = Intmat.append_row s pi in
    Alcotest.(check bool) "T u4 = 0" true (Intvec.is_zero (Intmat.mul_vec t r.Prop81.u4));
    Alcotest.(check bool) "T u5 = 0" true (Intvec.is_zero (Intmat.mul_vec t r.Prop81.u5));
    (* u4, u5 must generate the same lattice as the HNF kernel basis. *)
    let canon b = (Hnf.compute (Intmat.of_cols b)).Hnf.h in
    Alcotest.(check bool) "full kernel lattice" true
      (Intmat.equal (canon [ r.Prop81.u4; r.Prop81.u5 ]) (canon (Hnf.kernel_basis t)))
  | None -> Alcotest.fail "expected Prop81 to apply"

let prop_prop81_decide_exact =
  QCheck.Test.make ~name:"Prop 8.1 decide = exact oracle" ~count:300 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s12 = Random.State.int rng 5 - 2 and s21 = Random.State.int rng 5 - 2 in
      let s22 = (s21 * s12) + 1 in
      let rest () = Random.State.int rng 7 - 3 in
      let s =
        Intmat.of_ints
          [ [ 1; s12; rest (); rest (); rest () ]; [ s21; s22; rest (); rest (); rest () ] ]
      in
      let pi = Array.init 5 (fun _ -> Zint.of_int (Random.State.int rng 11 - 5)) in
      let mu = Array.init 5 (fun _ -> 1 + Random.State.int rng 4) in
      Prop81.decide ~mu ~s ~pi
      = Conflict.is_conflict_free ~mu (Intmat.append_row s pi))

let prop_prop81_matches_hnf =
  QCheck.Test.make ~name:"Prop 8.1 generators = HNF kernel lattice" ~count:300 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      (* Random S satisfying the normalization, random Pi. *)
      let s12 = Random.State.int rng 7 - 3 and s21 = Random.State.int rng 7 - 3 in
      let s22 = (s21 * s12) + 1 in
      let rest () = Random.State.int rng 9 - 4 in
      let s =
        Intmat.of_ints
          [ [ 1; s12; rest (); rest (); rest () ]; [ s21; s22; rest (); rest (); rest () ] ]
      in
      let pi = Array.init 5 (fun _ -> Zint.of_int (Random.State.int rng 11 - 5)) in
      match Prop81.compute ~s ~pi with
      | None ->
        (* only when rank T < 3 *)
        Intmat.rank (Intmat.append_row s pi) < 3
      | Some r ->
        let t = Intmat.append_row s pi in
        Intvec.is_zero (Intmat.mul_vec t r.Prop81.u4)
        && Intvec.is_zero (Intmat.mul_vec t r.Prop81.u5)
        &&
        let canon b = (Hnf.compute (Intmat.of_cols b)).Hnf.h in
        Intmat.equal (canon [ r.Prop81.u4; r.Prop81.u5 ]) (canon (Hnf.kernel_basis t)))

let suite =
  [
    Alcotest.test_case "candidate enumeration" `Quick test_candidates_at_cost;
    Alcotest.test_case "candidates hit their cost" `Quick test_candidates_cover_objective;
    Alcotest.test_case "matmul optimum (Example 5.1)" `Slow test_matmul_optimum_matches_paper;
    Alcotest.test_case "tc optimum (Example 5.2)" `Slow test_tc_optimum_matches_paper;
    Alcotest.test_case "tc paper Pi valid" `Quick test_tc_paper_pi_is_valid;
    Alcotest.test_case "exact vs theorem check" `Quick test_exact_and_theorem_checks_agree;
    Alcotest.test_case "optimize with routing" `Quick test_optimize_with_routing;
    Alcotest.test_case "bounded search returns None" `Quick test_optimize_infeasible_space_map;
    Alcotest.test_case "minimal free schedule" `Quick test_minimal_schedule;
    Alcotest.test_case "ILP matmul (Example 5.1)" `Quick test_ilp_form_matmul;
    Alcotest.test_case "ILP odd-mu edge point" `Quick test_ilp_form_odd_mu_edge_point;
    Alcotest.test_case "ILP tc (Example 5.2)" `Quick test_ilp_form_tc;
    Alcotest.test_case "ILP = Procedure 5.1 (E12)" `Slow test_ilp_form_equals_procedure51;
    Alcotest.test_case "2n branches" `Quick test_ilp_form_branch_count;
    Alcotest.test_case "ILP wrong shape" `Quick test_ilp_form_wrong_shape;
    Alcotest.test_case "formulation (5.5)-(5.6)" `Slow test_formulation_5_5_5_6;
    Alcotest.test_case "(5.5)-(5.6) rejects bad S" `Quick test_formulation_5_5_5_6_rejects_bad_s;
    Alcotest.test_case "Prop 8.1 applicability" `Quick test_prop81_applicability;
    Alcotest.test_case "Prop 8.1 generators" `Quick test_prop81_kernel_generators;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_prop81_matches_hnf; prop_prop81_decide_exact ]
