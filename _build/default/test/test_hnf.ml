(* Tests for the Hermite normal form (Theorem 4.1 machinery) and the
   Smith normal form companion. *)

let im = Intmat.of_ints

let random_mat ~rng k n lim =
  Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng ((2 * lim) + 1) - lim))

let test_paper_example_4_2 () =
  (* T of Equation 2.8; its kernel is generated (up to basis change) by
     the paper's u3 = (-1,0,1,0) and u4 = (-7,1,0,0). *)
  let t = im [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ] in
  let res = Hnf.compute t in
  Alcotest.(check bool) "verify" true (Hnf.verify t res);
  Alcotest.(check int) "rank" 2 res.Hnf.rank;
  let kb = Hnf.kernel_basis t in
  Alcotest.(check int) "kernel dim" 2 (List.length kb);
  List.iter
    (fun g ->
      Alcotest.(check bool) "in kernel" true (Intvec.is_zero (Intmat.mul_vec t g));
      Alcotest.(check bool) "primitive" true (Intvec.is_primitive g))
    kb;
  (* The paper's generators must lie in the computed lattice: solve in
     integers against the basis using the 2x2 nonzero coordinates. *)
  let in_lattice v =
    (* brute force small integer combos *)
    let b1 = List.nth kb 0 and b2 = List.nth kb 1 in
    let found = ref false in
    for a = -20 to 20 do
      for b = -20 to 20 do
        if Intvec.equal v (Intvec.add (Intvec.scale_int a b1) (Intvec.scale_int b b2)) then
          found := true
      done
    done;
    !found
  in
  Alcotest.(check bool) "paper u3 in lattice" true (in_lattice (Intvec.of_ints [ -1; 0; 1; 0 ]));
  Alcotest.(check bool) "paper u4 in lattice" true (in_lattice (Intvec.of_ints [ -7; 1; 0; 0 ]))

let test_lower_triangular_shape () =
  let t = im [ [ 4; 6; 2 ]; [ 2; 8; 9 ] ] in
  let res = Hnf.compute t in
  Alcotest.(check bool) "verify" true (Hnf.verify t res);
  (* H = [L 0]: entry (0, j) must vanish for j >= 1, etc. *)
  Alcotest.(check int) "h01 = 0" 0 (Zint.to_int (Intmat.get res.Hnf.h 0 1));
  Alcotest.(check int) "h02 = 0" 0 (Zint.to_int (Intmat.get res.Hnf.h 0 2));
  Alcotest.(check int) "h12 = 0" 0 (Zint.to_int (Intmat.get res.Hnf.h 1 2));
  Alcotest.(check bool) "pivot positive" true (Zint.sign (Intmat.get res.Hnf.h 0 0) > 0)

let test_rank_deficient () =
  let t = im [ [ 1; 2; 3 ]; [ 2; 4; 6 ] ] in
  let res = Hnf.compute t in
  Alcotest.(check int) "rank 1" 1 res.Hnf.rank;
  Alcotest.(check bool) "verify" true (Hnf.verify t res);
  Alcotest.(check int) "kernel dim 2" 2 (List.length (Hnf.kernel_basis t))

let test_identity_input () =
  let t = Intmat.identity 3 in
  let res = Hnf.compute t in
  Alcotest.(check bool) "H = I" true (Intmat.equal res.Hnf.h (Intmat.identity 3));
  Alcotest.(check bool) "U = I" true (Intmat.equal res.Hnf.u (Intmat.identity 3));
  Alcotest.(check (list pass)) "empty kernel" [] (Hnf.kernel_basis t)

let test_gcdext_strategy () =
  let t = im [ [ 6; 10; 15 ] ] in
  let res = Hnf.compute ~strategy:Hnf.Gcdext t in
  Alcotest.(check bool) "verify" true (Hnf.verify t res);
  (* gcd(6,10,15) = 1 must land in the pivot. *)
  Alcotest.(check int) "pivot gcd" 1 (Zint.to_int (Intmat.get res.Hnf.h 0 0))

let test_single_row_gcd () =
  let t = im [ [ 12; 18 ] ] in
  let res = Hnf.compute t in
  Alcotest.(check int) "pivot is gcd" 6 (Zint.to_int (Intmat.get res.Hnf.h 0 0));
  let kb = Hnf.kernel_basis t in
  Alcotest.(check int) "kernel dim" 1 (List.length kb);
  Alcotest.(check bool) "kernel primitive" true (Intvec.is_primitive (List.hd kb))

let prop_verify gen_params strategy =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "HNF invariants (%s)"
         (match strategy with Hnf.Min_abs -> "min-abs" | Hnf.Gcdext -> "gcdext"))
    ~count:300 QCheck.(pair int gen_params)
    (fun (seed, (k, n)) ->
      let rng = Random.State.make [| seed |] in
      let t = random_mat ~rng k n 10 in
      Hnf.verify t (Hnf.compute ~strategy t))

let dims_gen = QCheck.(map (fun (a, b) -> (1 + (a mod 4), 1 + (b mod 5))) (pair small_nat small_nat))

let prop_kernel_vectors_annihilate =
  QCheck.Test.make ~name:"kernel basis annihilates and is primitive" ~count:300
    QCheck.(pair int dims_gen)
    (fun (seed, (k, n)) ->
      let rng = Random.State.make [| seed |] in
      let t = random_mat ~rng k n 10 in
      List.for_all
        (fun g -> Intvec.is_zero (Intmat.mul_vec t g) && Intvec.is_primitive g)
        (Hnf.kernel_basis t))

let prop_strategies_same_lattice =
  QCheck.Test.make ~name:"both strategies span the same kernel lattice" ~count:200
    QCheck.(pair int dims_gen)
    (fun (seed, (k, n)) ->
      let rng = Random.State.make [| seed |] in
      let t = random_mat ~rng k n 8 in
      let b1 = Hnf.kernel_basis ~strategy:Hnf.Min_abs t in
      let b2 = Hnf.kernel_basis ~strategy:Hnf.Gcdext t in
      match (b1, b2) with
      | [], [] -> true
      | _ ->
        (* Equal lattices iff the canonical column HNFs of the two
           basis matrices coincide. *)
        let canon b = (Hnf.compute (Intmat.of_cols b)).Hnf.h in
        Intmat.equal (canon b1) (canon b2))

(* ------------------- Smith normal form ------------------- *)

let test_smith_known () =
  let a = im [ [ 2; 4; 4 ]; [ -6; 6; 12 ]; [ 10; 4; 16 ] ] in
  let res = Smith.compute a in
  Alcotest.(check bool) "verify" true (Smith.verify a res);
  Alcotest.(check (list int)) "invariant factors" [ 2; 2; 156 ]
    (List.map Zint.to_int res.Smith.invariant_factors)

let test_smith_livelock_regression () =
  (* These inputs once livelocked the elimination: entries equal to
     ±corner made gcdext return a nontrivial Bezout pair, so clearing
     the pivot row re-dirtied the pivot column forever.  Fixed by the
     canonical gcdext convention; kept as a permanent regression. *)
  let m1 =
    im [ [ 2; 4; -5; 0; -6 ]; [ -3; -3; -8; -4; -3 ]; [ -2; 4; 6; -6; 3 ]; [ -8; 7; -4; 4; 0 ] ]
  in
  Alcotest.(check bool) "m1" true (Smith.verify m1 (Smith.compute m1));
  let rng = Random.State.make [| 107 |] in
  let m2 = Intmat.make 5 6 (fun _ _ -> Zint.of_int (Random.State.int rng 201 - 100)) in
  Alcotest.(check bool) "m2" true (Smith.verify m2 (Smith.compute m2))

let test_smith_zero_matrix () =
  let a = Intmat.zero 2 3 in
  let res = Smith.compute a in
  Alcotest.(check bool) "verify" true (Smith.verify a res);
  Alcotest.(check (list pass)) "no factors" [] res.Smith.invariant_factors

let prop_smith_invariants =
  QCheck.Test.make ~name:"Smith invariants" ~count:200 QCheck.(pair int dims_gen)
    (fun (seed, (k, n)) ->
      let rng = Random.State.make [| seed |] in
      let a = random_mat ~rng k n 8 in
      let res = Smith.compute a in
      Smith.verify a res
      && List.length res.Smith.invariant_factors = Intmat.rank a)

let prop_smith_hnf_rank_agree =
  QCheck.Test.make ~name:"Smith rank = HNF rank" ~count:200 QCheck.(pair int dims_gen)
    (fun (seed, (k, n)) ->
      let rng = Random.State.make [| seed |] in
      let a = random_mat ~rng k n 8 in
      List.length (Smith.compute a).Smith.invariant_factors = (Hnf.compute a).Hnf.rank)

let suite =
  [
    Alcotest.test_case "paper example 4.2" `Quick test_paper_example_4_2;
    Alcotest.test_case "lower triangular shape" `Quick test_lower_triangular_shape;
    Alcotest.test_case "rank deficient" `Quick test_rank_deficient;
    Alcotest.test_case "identity input" `Quick test_identity_input;
    Alcotest.test_case "gcdext strategy" `Quick test_gcdext_strategy;
    Alcotest.test_case "single row gcd" `Quick test_single_row_gcd;
    Alcotest.test_case "smith known" `Quick test_smith_known;
    Alcotest.test_case "smith zero" `Quick test_smith_zero_matrix;
    Alcotest.test_case "smith livelock regression" `Quick test_smith_livelock_regression;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_verify dims_gen Hnf.Min_abs;
        prop_verify dims_gen Hnf.Gcdext;
        prop_kernel_vectors_annihilate;
        prop_strategies_same_lattice;
        prop_smith_invariants;
        prop_smith_hnf_rank_agree;
      ]
