(* Scale and robustness checks: larger inputs that push the
   arbitrary-precision paths (big HNF multipliers, long simplex
   tableaux, deep accumulation chains) while staying fast enough for
   every test run. *)

let test_hnf_large_entries () =
  (* Entries around 10^9: products overflow 64-bit during elimination,
     so this exercises genuine multi-digit Zint arithmetic. *)
  let rng = Random.State.make [| 101 |] in
  let t =
    Intmat.make 3 6 (fun _ _ ->
        Zint.of_int (Random.State.full_int rng 2_000_000_000 - 1_000_000_000))
  in
  let res = Hnf.compute t in
  Alcotest.(check bool) "verify" true (Hnf.verify t res);
  let res' = Hnf.compute ~strategy:Hnf.Gcdext t in
  Alcotest.(check bool) "verify gcdext" true (Hnf.verify t res')

let test_det_large_matrix () =
  (* 7x7 with entries up to 10^6: the Bareiss intermediates exceed
     native range by far. *)
  let rng = Random.State.make [| 103 |] in
  let m = Intmat.make 7 7 (fun _ _ -> Zint.of_int (Random.State.int rng 2_000_001 - 1_000_000)) in
  let d = Intmat.det m in
  (* det(M) = det(M^T) and adjugate identity still hold exactly. *)
  Alcotest.(check bool) "transpose" true (Zint.equal d (Intmat.det (Intmat.transpose m)));
  Alcotest.(check bool) "adjugate" true
    (Intmat.equal (Intmat.mul m (Intmat.adjugate m)) (Intmat.scale d (Intmat.identity 7)))

let test_smith_larger () =
  let rng = Random.State.make [| 107 |] in
  let m = Intmat.make 5 6 (fun _ _ -> Zint.of_int (Random.State.int rng 201 - 100)) in
  let res = Smith.compute m in
  Alcotest.(check bool) "verify" true (Smith.verify m res)

let test_simplex_larger_lp () =
  (* 8 variables, 20 constraints; optimum must satisfy everything and
     match the best enumerated vertex is too costly here, so check
     feasibility + boundedness structure instead. *)
  let rng = Random.State.make [| 109 |] in
  let n = 8 in
  let box =
    List.concat (List.init n (fun i -> Lin.[ ge_int (var n i) 0; le_int (var n i) 9 ]))
  in
  let cuts =
    List.init 20 (fun _ ->
        let e = Array.init n (fun _ -> Qnum.of_int (Random.State.int rng 7 - 3)) in
        Lin.(e <=. Qnum.of_int (Random.State.int rng 40)))
  in
  let obj = Array.init n (fun _ -> Qnum.of_int (Random.State.int rng 11 - 5)) in
  let p = Simplex.{ nvars = n; objective = obj; constraints = box @ cuts } in
  (match Simplex.solve p with
  | Simplex.Optimal { x; _ } ->
    Alcotest.(check bool) "feasible" true (List.for_all (Lin.satisfies x) p.Simplex.constraints)
  | Simplex.Infeasible -> ()
  | Simplex.Unbounded -> Alcotest.fail "bounded box cannot be unbounded")

let test_matmul_mu30_closed_form () =
  (* Optimization at mu = 30 — only practical through the closed-form
     conflict test; the paper's formula must hold. *)
  let mu = 30 in
  match Procedure51.optimize (Matmul.algorithm ~mu) ~s:Matmul.paper_s with
  | Some r ->
    Alcotest.(check int) "t = mu(mu+2)+1" (Matmul.optimal_total_time ~mu) r.Procedure51.total_time
  | None -> Alcotest.fail "expected a schedule"

let test_conflict_lattice_mu_10000 () =
  (* Extreme bounds: decidable in microseconds via the lattice. *)
  let mu = [| 10_000; 10_000; 10_000 |] in
  let free = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 10_000; 1 ]) in
  Alcotest.(check bool) "free" true (Conflict.find_conflict_lattice ~mu free = None);
  let bad = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 9_999; 1 ]) in
  (* gamma = (-10000, 2, -9998)/2 = (-5000, 1, -4999): inside the box. *)
  Alcotest.(check bool) "conflicts" true (Conflict.find_conflict_lattice ~mu bad <> None)

let test_deep_accumulation_chain () =
  (* A 1-D chain of length 3000: the evaluator must not blow the stack
     and the running sum must be exact. *)
  let n = 3000 in
  let alg =
    Algorithm.make ~name:"chain" ~index_set:(Index_set.make [| n |]) ~dependences:[ [ 1 ] ]
  in
  let sem =
    {
      Algorithm.boundary = (fun _ _ -> 0);
      compute = (fun j ops -> ops.(0) + j.(0));
      equal_value = Int.equal;
      pp_value = Format.pp_print_int;
    }
  in
  Alcotest.(check int) "sum 0..n" (n * (n + 1) / 2) (Algorithm.evaluate alg sem [| n |])

let test_simulation_mu10 () =
  (* 1331 points end to end with value checking. *)
  let mu = 10 in
  let rng = Random.State.make [| 113 |] in
  let a = Matmul.random_matrix ~rng (mu + 1) and b = Matmul.random_matrix ~rng (mu + 1) in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
  let r = Exec.run (Matmul.algorithm ~mu) (Matmul.semantics ~a ~b) tm in
  Alcotest.(check bool) "clean" true (Exec.is_clean r);
  Alcotest.(check int) "makespan" (Matmul.optimal_total_time ~mu) r.Exec.makespan

let suite =
  [
    Alcotest.test_case "hnf with 10^9 entries" `Quick test_hnf_large_entries;
    Alcotest.test_case "7x7 determinant" `Quick test_det_large_matrix;
    Alcotest.test_case "smith 5x6" `Quick test_smith_larger;
    Alcotest.test_case "simplex 8 vars 36 constraints" `Quick test_simplex_larger_lp;
    Alcotest.test_case "matmul mu=30 formula" `Slow test_matmul_mu30_closed_form;
    Alcotest.test_case "lattice oracle at mu=10000" `Quick test_conflict_lattice_mu_10000;
    Alcotest.test_case "deep accumulation chain" `Quick test_deep_accumulation_chain;
    Alcotest.test_case "simulation at mu=10" `Slow test_simulation_mu10;
  ]
