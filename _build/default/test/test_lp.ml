(* Tests for the exact simplex, ILP branch & bound and vertex
   enumeration. *)

let q = Qnum.of_int
let qq = Qnum.of_ints

let solve_opt p =
  match Simplex.solve p with
  | Simplex.Optimal { x; obj } -> Some (x, obj)
  | Simplex.Unbounded | Simplex.Infeasible -> None

let test_basic_min () =
  let p =
    Simplex.
      {
        nvars = 2;
        objective = Lin.of_ints [ 1; 1 ];
        constraints =
          Lin.[ ge_int (var 2 0) 1; ge_int (var 2 1) 2; ge_int (of_ints [ 1; 1 ]) 5 ];
      }
  in
  match solve_opt p with
  | Some (_, obj) -> Alcotest.(check string) "obj" "5" (Qnum.to_string obj)
  | None -> Alcotest.fail "expected optimum"

let test_infeasible () =
  let p =
    Simplex.
      {
        nvars = 1;
        objective = Lin.of_ints [ 1 ];
        constraints = Lin.[ ge_int (var 1 0) 3; le_int (var 1 0) 2 ];
      }
  in
  (match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  let p =
    Simplex.
      {
        nvars = 1;
        objective = Lin.of_ints [ -1 ];
        constraints = Lin.[ ge_int (var 1 0) 0 ];
      }
  in
  (match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_fractional_optimum () =
  let p =
    Simplex.
      { nvars = 1; objective = Lin.of_ints [ 1 ]; constraints = [ Lin.ge_int (Lin.of_ints [ 2 ]) 3 ] }
  in
  match solve_opt p with
  | Some (x, obj) ->
    Alcotest.(check bool) "x = 3/2" true (Qnum.equal x.(0) (qq 3 2));
    Alcotest.(check bool) "obj = 3/2" true (Qnum.equal obj (qq 3 2))
  | None -> Alcotest.fail "expected optimum"

let test_free_variables () =
  (* Minimum at a negative coordinate: the split-variable encoding must
     handle unrestricted signs. *)
  let p =
    Simplex.
      { nvars = 1; objective = Lin.of_ints [ 1 ]; constraints = [ Lin.((var 1 0) >=. q (-5)) ] }
  in
  match solve_opt p with
  | Some (x, _) -> Alcotest.(check bool) "x = -5" true (Qnum.equal x.(0) (q (-5)))
  | None -> Alcotest.fail "expected optimum"

let test_equality_constraints () =
  let p =
    Simplex.
      {
        nvars = 2;
        objective = Lin.of_ints [ 1; 2 ];
        constraints = Lin.[ eq_int (of_ints [ 1; 1 ]) 10; ge_int (var 2 0) 0; ge_int (var 2 1) 0 ];
      }
  in
  match solve_opt p with
  | Some (x, obj) ->
    Alcotest.(check bool) "obj = 10 (all on x0)" true (Qnum.equal obj (q 10));
    Alcotest.(check bool) "x0 = 10" true (Qnum.equal x.(0) (q 10))
  | None -> Alcotest.fail "expected optimum"

let test_degenerate_no_cycle () =
  (* Classic degeneracy: multiple constraints active at the optimum;
     Bland's rule must terminate. *)
  let p =
    Simplex.
      {
        nvars = 2;
        objective = Lin.of_ints [ -1; -1 ];
        constraints =
          Lin.
            [
              le_int (of_ints [ 1; 0 ]) 1;
              le_int (of_ints [ 0; 1 ]) 1;
              le_int (of_ints [ 1; 1 ]) 2;
              le_int (of_ints [ 2; 1 ]) 3;
              ge_int (var 2 0) 0;
              ge_int (var 2 1) 0;
            ];
      }
  in
  match solve_opt p with
  | Some (_, obj) -> Alcotest.(check bool) "obj = -2" true (Qnum.equal obj (q (-2)))
  | None -> Alcotest.fail "expected optimum"

let test_maximize () =
  let p =
    Simplex.
      {
        nvars = 1;
        objective = Lin.of_ints [ 1 ];
        constraints = Lin.[ le_int (var 1 0) 7; ge_int (var 1 0) 0 ];
      }
  in
  match Simplex.maximize p with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check bool) "max = 7" true (Qnum.equal obj (q 7))
  | _ -> Alcotest.fail "expected optimum"

let test_feasible_point () =
  let p =
    Simplex.
      {
        nvars = 2;
        objective = Lin.of_ints [ 0; 0 ];
        constraints = Lin.[ ge_int (of_ints [ 1; 1 ]) 4; le_int (of_ints [ 1; -1 ]) 0 ];
      }
  in
  match Simplex.feasible p with
  | Some x -> Alcotest.(check bool) "satisfies" true (List.for_all (Lin.satisfies x) p.Simplex.constraints)
  | None -> Alcotest.fail "expected feasible point"

(* ------------------------- ILP ------------------------- *)

let test_ilp_rounds_up () =
  let p =
    Simplex.
      { nvars = 1; objective = Lin.of_ints [ 1 ]; constraints = [ Lin.ge_int (Lin.of_ints [ 2 ]) 3 ] }
  in
  match Ilp.solve p with
  | Ilp.Optimal { x; obj } ->
    Alcotest.(check int) "x = 2" 2 (Zint.to_int x.(0));
    Alcotest.(check bool) "obj = 2" true (Qnum.equal obj (q 2))
  | _ -> Alcotest.fail "expected optimum"

let test_ilp_knapsack () =
  (* max 5x + 4y st 6x + 4y <= 24, x + 2y <= 6, x,y >= 0: ILP optimum 20 at (4,0). *)
  let p =
    Simplex.
      {
        nvars = 2;
        objective = Lin.of_ints [ -5; -4 ];
        constraints =
          Lin.
            [
              le_int (of_ints [ 6; 4 ]) 24;
              le_int (of_ints [ 1; 2 ]) 6;
              ge_int (var 2 0) 0;
              ge_int (var 2 1) 0;
            ];
      }
  in
  match Ilp.solve p with
  | Ilp.Optimal { x; obj } ->
    Alcotest.(check bool) "obj = -20" true (Qnum.equal obj (q (-20)));
    Alcotest.(check int) "x = 4" 4 (Zint.to_int x.(0))
  | _ -> Alcotest.fail "expected optimum"

let test_ilp_infeasible_gap () =
  (* LP-feasible but integer-infeasible: 2 <= 4x <= 3. *)
  let p =
    Simplex.
      {
        nvars = 1;
        objective = Lin.of_ints [ 1 ];
        constraints = Lin.[ ge_int (of_ints [ 4 ]) 2; le_int (of_ints [ 4 ]) 3 ];
      }
  in
  (match Ilp.solve p with
  | Ilp.Infeasible -> ()
  | _ -> Alcotest.fail "expected integer infeasible")

let test_ilp_stats () =
  let p =
    Simplex.
      { nvars = 1; objective = Lin.of_ints [ 1 ]; constraints = [ Lin.ge_int (Lin.of_ints [ 2 ]) 3 ] }
  in
  let _, stats = Ilp.solve_with_stats p in
  Alcotest.(check bool) "branched at least once" true (stats.Ilp.nodes >= 2)

(* ---------------------- vertices ---------------------- *)

let test_vertex_triangle () =
  let cons = Lin.[ ge_int (var 2 0) 0; ge_int (var 2 1) 0; le_int (of_ints [ 1; 1 ]) 2 ] in
  let vs = Vertex.enumerate ~nvars:2 cons in
  Alcotest.(check int) "3 vertices" 3 (List.length vs);
  Alcotest.(check bool) "integral" true (Vertex.all_integral vs)

let test_vertex_unbounded_polyhedron () =
  (* x >= 1, y >= 1: single vertex (1,1) despite unboundedness. *)
  let cons = Lin.[ ge_int (var 2 0) 1; ge_int (var 2 1) 1 ] in
  let vs = Vertex.enumerate ~nvars:2 cons in
  Alcotest.(check int) "one vertex" 1 (List.length vs)

let test_vertex_empty () =
  let cons = Lin.[ ge_int (var 1 0) 3; le_int (var 1 0) 2 ] in
  Alcotest.(check (list pass)) "no vertices" [] (Vertex.enumerate ~nvars:1 cons)

let test_vertex_minimize () =
  let cons = Lin.[ ge_int (var 2 0) 1; ge_int (var 2 1) 2; ge_int (of_ints [ 1; 1 ]) 5 ] in
  match Vertex.minimize ~nvars:2 (Lin.of_ints [ 1; 1 ]) cons with
  | Some (_, v) -> Alcotest.(check bool) "min 5" true (Qnum.equal v (q 5))
  | None -> Alcotest.fail "expected vertex"

(* ---------------------- properties ---------------------- *)

let random_bounded_problem seed =
  let rng = Random.State.make [| seed |] in
  let n = 2 + Random.State.int rng 2 in
  let box =
    List.concat
      (List.init n (fun i -> Lin.[ ge_int (var n i) 0; le_int (var n i) 5 ]))
  in
  let cuts =
    List.init
      (1 + Random.State.int rng 3)
      (fun _ ->
        let e = Array.init n (fun _ -> q (Random.State.int rng 5 - 2)) in
        Lin.(e <=. q (Random.State.int rng 10)))
  in
  let obj = Array.init n (fun _ -> q (Random.State.int rng 7 - 3)) in
  Simplex.{ nvars = n; objective = obj; constraints = box @ cuts }

let prop_simplex_equals_vertex_scan =
  QCheck.Test.make ~name:"simplex optimum = best vertex (bounded)" ~count:200 QCheck.int
    (fun seed ->
      let p = random_bounded_problem seed in
      match
        (Simplex.solve p, Vertex.minimize ~nvars:p.Simplex.nvars p.Simplex.objective p.Simplex.constraints)
      with
      | Simplex.Optimal { obj; _ }, Some (_, v) -> Qnum.equal obj v
      | Simplex.Infeasible, None -> true
      | _ -> false)

let prop_solution_feasible =
  QCheck.Test.make ~name:"simplex solution satisfies all constraints" ~count:200 QCheck.int
    (fun seed ->
      let p = random_bounded_problem seed in
      match Simplex.solve p with
      | Simplex.Optimal { x; _ } -> List.for_all (Lin.satisfies x) p.Simplex.constraints
      | Simplex.Infeasible -> true
      | Simplex.Unbounded -> false)

let prop_ilp_at_least_lp =
  QCheck.Test.make ~name:"ILP optimum >= LP optimum, integral, feasible" ~count:150 QCheck.int
    (fun seed ->
      let p = random_bounded_problem seed in
      match (Simplex.solve p, Ilp.solve p) with
      | Simplex.Optimal { obj = lp; _ }, Ilp.Optimal { x; obj = ip } ->
        Qnum.compare ip lp >= 0
        && List.for_all (Lin.satisfies (Array.map Qnum.of_zint x)) p.Simplex.constraints
      | Simplex.Infeasible, Ilp.Infeasible -> true
      | _, Ilp.Infeasible -> true (* integrality gap can empty the box *)
      | _ -> false)

let suite =
  [
    Alcotest.test_case "basic min" `Quick test_basic_min;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "fractional optimum" `Quick test_fractional_optimum;
    Alcotest.test_case "free variables" `Quick test_free_variables;
    Alcotest.test_case "equality constraints" `Quick test_equality_constraints;
    Alcotest.test_case "degenerate no cycle" `Quick test_degenerate_no_cycle;
    Alcotest.test_case "maximize" `Quick test_maximize;
    Alcotest.test_case "feasible point" `Quick test_feasible_point;
    Alcotest.test_case "ilp rounds up" `Quick test_ilp_rounds_up;
    Alcotest.test_case "ilp knapsack" `Quick test_ilp_knapsack;
    Alcotest.test_case "ilp integrality gap" `Quick test_ilp_infeasible_gap;
    Alcotest.test_case "ilp stats" `Quick test_ilp_stats;
    Alcotest.test_case "vertex triangle" `Quick test_vertex_triangle;
    Alcotest.test_case "vertex unbounded" `Quick test_vertex_unbounded_polyhedron;
    Alcotest.test_case "vertex empty" `Quick test_vertex_empty;
    Alcotest.test_case "vertex minimize" `Quick test_vertex_minimize;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_simplex_equals_vertex_scan; prop_solution_feasible; prop_ilp_at_least_lp ]
