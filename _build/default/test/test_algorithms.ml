(* Tests for the concrete algorithm instances. *)

let test_matmul_structure () =
  let a = Matmul.algorithm ~mu:4 in
  Alcotest.(check int) "n = 3" 3 (Algorithm.dim a);
  Alcotest.(check bool) "D = I" true (Intmat.equal a.Algorithm.dependences (Intmat.identity 3));
  Alcotest.(check int) "|J| = 125" 125 (Index_set.cardinal a.Algorithm.index_set)

let test_matmul_times () =
  Alcotest.(check int) "optimal mu=4" 25 (Matmul.optimal_total_time ~mu:4);
  Alcotest.(check int) "lee-kedem mu=4" 29 (Matmul.lee_kedem_total_time ~mu:4);
  (* At mu = 3 the two coincide: the paper notes Pi' is optimal there. *)
  Alcotest.(check int) "lee-kedem mu=3" 19 (Matmul.lee_kedem_total_time ~mu:3);
  Alcotest.(check int) "optimal mu=3" 16 (Matmul.optimal_total_time ~mu:3)

let test_tc_structure () =
  (* Equation 3.6. *)
  let a = Transitive_closure.algorithm ~mu:4 in
  Alcotest.(check (list (list int))) "D"
    [ [ 0; 0; 1; 1; 1 ]; [ 0; 1; -1; -1; 0 ]; [ 1; 0; -1; 0; -1 ] ]
    (Intmat.to_ints a.Algorithm.dependences)

let test_tc_times () =
  Alcotest.(check int) "optimal mu=4" 29 (Transitive_closure.optimal_total_time ~mu:4);
  Alcotest.(check int) "[22] heuristic mu=4" 45 (Transitive_closure.prior_total_time ~mu:4)

let test_warshall () =
  let f = false and t = true in
  let a = [| [| f; t; f |]; [| f; f; t |]; [| f; f; f |] |] in
  let c = Transitive_closure.warshall a in
  Alcotest.(check bool) "0 reaches 2" true c.(0).(2);
  Alcotest.(check bool) "2 reaches nothing" false (c.(2).(0) || c.(2).(1) || c.(2).(2));
  (* idempotence *)
  Alcotest.(check bool) "closure of closure" true (Transitive_closure.warshall c = c)

let test_convolution_reference () =
  let ker = [| [| 1; 0 |]; [| 0; -1 |] |] in
  let img = [| [| 1; 2 |]; [| 3; 4 |] |] in
  let y = Convolution.reference_convolution ~ker ~img ~out_size:2 in
  (* y(0,0) = 1*img(0,0) = 1; y(1,1) = img(1,1) - img(0,0) = 3. *)
  Alcotest.(check int) "y00" 1 y.(0).(0);
  Alcotest.(check int) "y11" 3 y.(1).(1)

let test_convolution_evaluator_matches_reference () =
  let mu_ij = 3 and mu_pq = 2 in
  let rng = Random.State.make [| 11 |] in
  let ker = Array.init (mu_pq + 1) (fun _ -> Array.init (mu_pq + 1) (fun _ -> Random.State.int rng 9 - 4)) in
  let img = Array.init (mu_ij + 1) (fun _ -> Array.init (mu_ij + 1) (fun _ -> Random.State.int rng 9 - 4)) in
  let alg = Convolution.algorithm ~mu_ij ~mu_pq in
  let value = Algorithm.evaluate_all alg (Convolution.semantics ~ker ~img) in
  Alcotest.(check (array (array int))) "matches direct convolution"
    (Convolution.reference_convolution ~ker ~img ~out_size:(mu_ij + 1))
    (Convolution.output_of_values ~mu_ij ~mu_pq value)

let test_convolution_structure () =
  let a = Convolution.algorithm ~mu_ij:3 ~mu_pq:2 in
  Alcotest.(check int) "n = 4" 4 (Algorithm.dim a);
  Alcotest.(check int) "m = 6" 6 (Algorithm.num_dependences a);
  (* the row-carry dependence encodes the kernel width *)
  Alcotest.(check (array int)) "d2" [| 0; 0; 1; -2 |] (Algorithm.dependence a 1)

let test_bit_matmul_structure () =
  let a = Bit_matmul.algorithm ~mu_word:2 ~mu_bit:3 in
  Alcotest.(check int) "n = 5" 5 (Algorithm.dim a);
  Alcotest.(check int) "m = 5" 5 (Algorithm.num_dependences a);
  Alcotest.(check int) "|J|" (3 * 3 * 3 * 4 * 4) (Index_set.cardinal a.Algorithm.index_set);
  Alcotest.(check bool) "prop81 normalization" true (Prop81.applicable ~s:Bit_matmul.example_s)

let test_bit_matmul_chained_values () =
  let mu_word = 2 and mu_bit = 2 in
  let rng = Random.State.make [| 31 |] in
  let a = Bit_matmul.random_word_matrix ~rng ~size:(mu_word + 1) ~mu_bit in
  let b = Bit_matmul.random_word_matrix ~rng ~size:(mu_word + 1) ~mu_bit in
  let alg = Bit_matmul.chained_algorithm ~mu_word ~mu_bit in
  let value = Algorithm.evaluate_all alg (Bit_matmul.semantics ~a ~b) in
  Alcotest.(check (array (array int))) "bit-level product = word product"
    (Matmul.reference_product a b)
    (Bit_matmul.product_of_values ~mu_word ~mu_bit value)

let test_bit_matmul_chained_on_2d_array () =
  let mu_word = 2 and mu_bit = 1 in
  let rng = Random.State.make [| 37 |] in
  let a = Bit_matmul.random_word_matrix ~rng ~size:(mu_word + 1) ~mu_bit in
  let b = Bit_matmul.random_word_matrix ~rng ~size:(mu_word + 1) ~mu_bit in
  let alg = Bit_matmul.chained_algorithm ~mu_word ~mu_bit in
  match Procedure51.optimize ~max_objective:40 alg ~s:Bit_matmul.example_s with
  | Some r ->
    let tm = Tmap.make ~s:Bit_matmul.example_s ~pi:r.Procedure51.pi in
    let rep = Exec.run alg (Bit_matmul.semantics ~a ~b) tm in
    Alcotest.(check bool) "clean, real values" true (Exec.is_clean rep)
  | None -> Alcotest.fail "expected a schedule"

let test_bit_convolution_structure () =
  let a = Bit_convolution.algorithm ~mu_sample:3 ~mu_tap:2 ~mu_bit:2 in
  Alcotest.(check int) "n = 4" 4 (Algorithm.dim a);
  Alcotest.(check int) "m = 5" 5 (Algorithm.num_dependences a);
  Alcotest.(check bool) "schedulable" true
    (Algorithm.is_acyclic_witness a (Intvec.of_ints [ 1; 4; 1; 1 ]))

let test_lu_structure () =
  let a = Lu.algorithm ~mu:3 in
  Alcotest.(check int) "n = 3" 3 (Algorithm.dim a);
  Alcotest.(check int) "m = 5" 5 (Algorithm.num_dependences a);
  (* a valid schedule exists: (3,1,1) satisfies Pi D > 0 *)
  Alcotest.(check bool) "schedulable" true
    (Algorithm.is_acyclic_witness a (Intvec.of_ints [ 3; 1; 1 ]))

let test_fir_evaluator_matches_reference () =
  let mu_i = 6 and mu_k = 3 in
  let rng = Random.State.make [| 23 |] in
  let w = Array.init (mu_k + 1) (fun _ -> Random.State.int rng 9 - 4) in
  let x = Array.init (mu_i + 1) (fun _ -> Random.State.int rng 9 - 4) in
  let alg = Fir.algorithm ~mu_i ~mu_k in
  let value = Algorithm.evaluate_all alg (Fir.semantics ~w ~x) in
  Alcotest.(check (array int)) "matches direct FIR"
    (Fir.reference_fir ~w ~x ~out_size:(mu_i + 1))
    (Fir.output_of_values ~mu_i ~mu_k value)

let test_fir_simulates_on_linear_array () =
  let mu_i = 5 and mu_k = 2 in
  let alg = Fir.algorithm ~mu_i ~mu_k in
  let w = [| 2; -1; 3 |] and x = [| 1; 2; 3; 4; 5; 6 |] in
  match Procedure51.optimize alg ~s:(Intmat.of_ints [ [ 0; 1 ] ]) with
  | Some r ->
    let tm = Tmap.make ~s:(Intmat.of_ints [ [ 0; 1 ] ]) ~pi:r.Procedure51.pi in
    let report = Exec.run alg (Fir.semantics ~w ~x) tm in
    Alcotest.(check bool) "clean" true (Exec.is_clean report);
    Alcotest.(check int) "PEs = taps" (mu_k + 1) report.Exec.num_processors
  | None -> Alcotest.fail "expected a schedule"

let test_stencil_evaluator_matches_reference () =
  let mu_t = 5 and mu_i = 7 in
  let initial = [| 0; 3; -1; 4; 1; -5; 9; 2 |] in
  let coeffs = (1, -2, 1) in
  let alg = Stencil.algorithm ~mu_t ~mu_i in
  let value = Algorithm.evaluate_all alg (Stencil.semantics ~coeffs ~initial) in
  Alcotest.(check (array int)) "matches direct sweeps"
    (Stencil.reference_sweeps ~coeffs ~initial ~steps:mu_t)
    (Stencil.row_of_values ~mu_t ~mu_i value)

let test_stencil_simulates_on_linear_array () =
  let mu_t = 4 and mu_i = 5 in
  let alg = Stencil.algorithm ~mu_t ~mu_i in
  let s = Intmat.of_ints [ [ 0; 1 ] ] in
  match Procedure51.optimize alg ~s with
  | Some r ->
    let sem = Stencil.semantics ~coeffs:(1, 1, 1) ~initial:[| 1; 0; 0; 0; 0; 0 |] in
    let report = Exec.run alg sem (Tmap.make ~s ~pi:r.Procedure51.pi) in
    Alcotest.(check bool) "clean" true (Exec.is_clean report);
    Alcotest.(check int) "one PE per cell" (mu_i + 1) report.Exec.num_processors
  | None -> Alcotest.fail "expected a schedule"

let test_stencil_matches_frontend () =
  (* The hand-built instance has exactly the structure the front end
     extracts from the equivalent source. *)
  let a =
    Loopnest.parse "for t = 0..4, i = 0..5 { A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] }"
  in
  let built = Stencil.algorithm ~mu_t:4 ~mu_i:5 in
  let cols m =
    List.sort compare
      (List.init (Intmat.cols m) (fun i -> Intvec.to_ints (Intmat.col m i)))
  in
  Alcotest.(check (list (list int))) "same dependences"
    (cols built.Algorithm.dependences)
    (cols a.Loopnest.algorithm.Algorithm.dependences)

let test_lu_factors_exact () =
  let mu = 3 in
  let rng = Random.State.make [| 61 |] in
  let a = Lu.random_dominant_matrix ~rng (mu + 1) in
  let alg = Lu.executable_algorithm ~mu in
  let value = Algorithm.evaluate_all alg (Lu.semantics ~a) in
  let l, u = Lu.factors_of_values ~mu value in
  (* Exact rational check: L U = A, L unit lower, U upper. *)
  let lu = Lu.matmul_q l u in
  for i = 0 to mu do
    for j = 0 to mu do
      Alcotest.(check bool)
        (Printf.sprintf "LU=A at (%d,%d)" i j)
        true
        (Qnum.equal lu.(i).(j) a.(i).(j));
      if j > i then Alcotest.(check bool) "L upper zero" true (Qnum.is_zero l.(i).(j));
      if j < i then Alcotest.(check bool) "U lower zero" true (Qnum.is_zero u.(i).(j))
    done;
    Alcotest.(check bool) "L unit diagonal" true (Qnum.equal l.(i).(i) Qnum.one)
  done

let test_lu_on_linear_array () =
  let mu = 2 in
  let rng = Random.State.make [| 67 |] in
  let a = Lu.random_dominant_matrix ~rng (mu + 1) in
  let alg = Lu.executable_algorithm ~mu in
  match Procedure51.optimize alg ~s:Lu.example_s with
  | Some r ->
    let rep = Exec.run alg (Lu.semantics ~a) (Tmap.make ~s:Lu.example_s ~pi:r.Procedure51.pi) in
    Alcotest.(check bool) "clean exact-rational LU through the array" true (Exec.is_clean rep)
  | None -> Alcotest.fail "expected a schedule"

let test_sorter_sorts () =
  let cells = 6 in
  let steps = cells + 1 in
  let initial = [| 9; -3; 7; 0; 7; -8; 4 |] in
  let alg = Sorter.algorithm ~steps ~cells in
  let value = Algorithm.evaluate_all alg (Sorter.semantics ~initial) in
  let final = Sorter.row_of_values ~steps ~cells value in
  Alcotest.(check bool) "sorted" true (Sorter.is_sorted final);
  Alcotest.(check (list int)) "same multiset"
    (List.sort compare (Array.to_list initial))
    (Array.to_list final)

let prop_sorter_sorts_random =
  QCheck.Test.make ~name:"odd-even sorter sorts random rows" ~count:100 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let cells = 2 + Random.State.int rng 6 in
      let steps = cells + 1 in
      let initial = Array.init (cells + 1) (fun _ -> Random.State.int rng 100 - 50) in
      let alg = Sorter.algorithm ~steps ~cells in
      let value = Algorithm.evaluate_all alg (Sorter.semantics ~initial) in
      let final = Sorter.row_of_values ~steps ~cells value in
      Sorter.is_sorted final
      && List.sort compare (Array.to_list initial) = Array.to_list final)

let test_sorter_on_linear_array () =
  let cells = 4 in
  let steps = cells + 1 in
  let alg = Sorter.algorithm ~steps ~cells in
  let initial = [| 5; 1; 4; 2; 3 |] in
  match Procedure51.optimize alg ~s:(Intmat.of_ints [ [ 0; 1 ] ]) with
  | Some r ->
    let rep = Exec.run alg (Sorter.semantics ~initial) (Tmap.make ~s:(Intmat.of_ints [ [ 0; 1 ] ]) ~pi:r.Procedure51.pi) in
    Alcotest.(check bool) "clean" true (Exec.is_clean rep);
    Alcotest.(check int) "one PE per cell" (cells + 1) rep.Exec.num_processors
  | None -> Alcotest.fail "expected a schedule"

let test_all_instances_schedulable () =
  (* Every shipped instance admits some valid linear schedule. *)
  let check name alg =
    let d = alg.Algorithm.dependences in
    let n = Algorithm.dim alg in
    (* Pi = (B^{n-1}, ..., B, 1) with B large dominates lexicographic order
       only for lex-positive D; instead just search small vectors. *)
    let found = ref false in
    let rec go pi i =
      if !found then ()
      else if i = n then begin
        if Schedule.respects (Intvec.of_int_array pi) d then found := true
      end
      else
        for v = -6 to 6 do
          pi.(i) <- v;
          go pi (i + 1)
        done
    in
    go (Array.make n 0) 0;
    Alcotest.(check bool) (name ^ " schedulable") true !found
  in
  check "matmul" (Matmul.algorithm ~mu:2);
  check "tc" (Transitive_closure.algorithm ~mu:2);
  check "convolution" (Convolution.algorithm ~mu_ij:2 ~mu_pq:2);
  check "bit-matmul" (Bit_matmul.algorithm ~mu_word:2 ~mu_bit:2);
  check "lu" (Lu.algorithm ~mu:2);
  check "fir" (Fir.algorithm ~mu_i:2 ~mu_k:2)

let suite =
  [
    Alcotest.test_case "matmul structure" `Quick test_matmul_structure;
    Alcotest.test_case "matmul times" `Quick test_matmul_times;
    Alcotest.test_case "tc structure (Eq 3.6)" `Quick test_tc_structure;
    Alcotest.test_case "tc times" `Quick test_tc_times;
    Alcotest.test_case "warshall" `Quick test_warshall;
    Alcotest.test_case "convolution reference" `Quick test_convolution_reference;
    Alcotest.test_case "convolution evaluator" `Quick test_convolution_evaluator_matches_reference;
    Alcotest.test_case "convolution structure" `Quick test_convolution_structure;
    Alcotest.test_case "bit-matmul structure" `Quick test_bit_matmul_structure;
    Alcotest.test_case "bit-matmul chained values" `Quick test_bit_matmul_chained_values;
    Alcotest.test_case "bit-matmul chained on 2-D array" `Slow test_bit_matmul_chained_on_2d_array;
    Alcotest.test_case "bit-convolution structure" `Quick test_bit_convolution_structure;
    Alcotest.test_case "lu structure" `Quick test_lu_structure;
    Alcotest.test_case "lu exact factors" `Quick test_lu_factors_exact;
    Alcotest.test_case "lu on linear array" `Quick test_lu_on_linear_array;
    Alcotest.test_case "fir evaluator" `Quick test_fir_evaluator_matches_reference;
    Alcotest.test_case "fir on linear array" `Quick test_fir_simulates_on_linear_array;
    Alcotest.test_case "stencil evaluator" `Quick test_stencil_evaluator_matches_reference;
    Alcotest.test_case "stencil on linear array" `Quick test_stencil_simulates_on_linear_array;
    Alcotest.test_case "stencil matches frontend" `Quick test_stencil_matches_frontend;
    Alcotest.test_case "sorter sorts" `Quick test_sorter_sorts;
    Alcotest.test_case "sorter on linear array" `Quick test_sorter_on_linear_array;
    Alcotest.test_case "all instances schedulable" `Quick test_all_instances_schedulable;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_sorter_sorts_random ]
