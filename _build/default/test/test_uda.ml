(* Tests for index sets, the algorithm model and the reference
   evaluator. *)

let test_index_set_basics () =
  let s = Index_set.make [| 2; 3 |] in
  Alcotest.(check int) "dim" 2 (Index_set.dim s);
  Alcotest.(check int) "cardinal" 12 (Index_set.cardinal s);
  Alcotest.(check int) "bound" 3 (Index_set.bound s 1);
  Alcotest.(check bool) "contains origin" true (Index_set.contains s [| 0; 0 |]);
  Alcotest.(check bool) "contains corner" true (Index_set.contains s [| 2; 3 |]);
  Alcotest.(check bool) "over" false (Index_set.contains s [| 3; 0 |]);
  Alcotest.(check bool) "under" false (Index_set.contains s [| 0; -1 |]);
  Alcotest.(check bool) "wrong arity" false (Index_set.contains s [| 0 |])

let test_index_set_validation () =
  Alcotest.(check bool) "zero bound rejected" true
    (try ignore (Index_set.make [| 0 |]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Index_set.make [||]); false with Invalid_argument _ -> true)

let test_iteration_order_and_count () =
  let s = Index_set.make [| 1; 2 |] in
  let pts = Index_set.to_list s in
  Alcotest.(check int) "count" 6 (List.length pts);
  Alcotest.(check (list (list int))) "lexicographic"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ]
    (List.map Array.to_list pts)

let test_cube () =
  let s = Index_set.cube ~n:4 ~mu:6 in
  Alcotest.(check int) "cardinal 7^4" 2401 (Index_set.cardinal s)

let test_algorithm_accessors () =
  let a = Matmul.algorithm ~mu:3 in
  Alcotest.(check int) "dim" 3 (Algorithm.dim a);
  Alcotest.(check int) "deps" 3 (Algorithm.num_dependences a);
  Alcotest.(check (array int)) "d2" [| 0; 1; 0 |] (Algorithm.dependence a 1);
  Alcotest.(check (array int)) "pred" [| 1; 2; 2 |] (Algorithm.predecessor a [| 1; 2; 3 |] 2)

let test_algorithm_validation () =
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       ignore
         (Algorithm.make ~name:"bad" ~index_set:(Index_set.cube ~n:3 ~mu:2)
            ~dependences:[ [ 1; 0 ] ]);
       false
     with Invalid_argument _ -> true)

let test_acyclic_witness () =
  let a = Transitive_closure.algorithm ~mu:3 in
  Alcotest.(check bool) "optimal pi valid" true
    (Algorithm.is_acyclic_witness a (Transitive_closure.optimal_pi ~mu:3));
  Alcotest.(check bool) "(1,1,1) invalid" false
    (Algorithm.is_acyclic_witness a (Intvec.of_ints [ 1; 1; 1 ]))

let test_evaluator_matmul () =
  let mu = 3 in
  let rng = Random.State.make [| 7 |] in
  let a = Matmul.random_matrix ~rng (mu + 1) and b = Matmul.random_matrix ~rng (mu + 1) in
  let alg = Matmul.algorithm ~mu in
  let value = Algorithm.evaluate_all alg (Matmul.semantics ~a ~b) in
  Alcotest.(check (array (array int))) "product"
    (Matmul.reference_product a b)
    (Matmul.product_of_values ~mu value)

let test_evaluator_outside_point () =
  let alg = Matmul.algorithm ~mu:2 in
  Alcotest.(check bool) "outside rejected" true
    (try
       ignore (Algorithm.evaluate alg Dataflow.semantics [| 5; 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_evaluator_deterministic () =
  let alg = Transitive_closure.algorithm ~mu:3 in
  Alcotest.(check int) "fingerprint stable" (Dataflow.fingerprint_all alg) (Dataflow.fingerprint_all alg)

let test_fingerprint_distinguishes () =
  (* Different dependence structures must fingerprint differently. *)
  let a1 = Matmul.algorithm ~mu:3 in
  let a2 = Lu.algorithm ~mu:3 in
  Alcotest.(check bool) "matmul <> lu" true
    (Dataflow.fingerprint_all a1 <> Dataflow.fingerprint_all a2)

let prop_iter_matches_contains =
  QCheck.Test.make ~name:"every iterated point is contained" ~count:100 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 1 + Random.State.int rng 3 in
      let mu = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
      let s = Index_set.make mu in
      Index_set.fold (fun ok j -> ok && Index_set.contains s j) true s
      && List.length (Index_set.to_list s) = Index_set.cardinal s)

let suite =
  [
    Alcotest.test_case "index set basics" `Quick test_index_set_basics;
    Alcotest.test_case "index set validation" `Quick test_index_set_validation;
    Alcotest.test_case "iteration order" `Quick test_iteration_order_and_count;
    Alcotest.test_case "cube" `Quick test_cube;
    Alcotest.test_case "algorithm accessors" `Quick test_algorithm_accessors;
    Alcotest.test_case "algorithm validation" `Quick test_algorithm_validation;
    Alcotest.test_case "acyclic witness" `Quick test_acyclic_witness;
    Alcotest.test_case "evaluator computes matmul" `Quick test_evaluator_matmul;
    Alcotest.test_case "evaluator outside point" `Quick test_evaluator_outside_point;
    Alcotest.test_case "evaluator deterministic" `Quick test_evaluator_deterministic;
    Alcotest.test_case "fingerprint distinguishes" `Quick test_fingerprint_distinguishes;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_iter_matches_contains ]
