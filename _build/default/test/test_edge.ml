(* Boundary-condition battery: smallest legal inputs, degenerate
   shapes, and API corners not covered by the per-module suites. *)

let iv = Intvec.of_ints
let im = Intmat.of_ints

(* ----------------------------- zint/qnum ---------------------------- *)

let test_zint_infix () =
  let open Zint.Infix in
  let z = Zint.of_int in
  Alcotest.(check bool) "ops" true
    (z 2 + z 3 = z 5
    && z 2 * z 3 = z 6
    && z 7 - z 2 = z 5
    && z 7 / z 2 = z 3
    && ~-(z 4) = z (-4)
    && z 1 < z 2 && z 2 <= z 2 && z 3 > z 2 && z 3 >= z 3 && z 1 <> z 2)

let test_qnum_infix_and_mul_zint () =
  let open Qnum.Infix in
  let q = Qnum.of_ints in
  Alcotest.(check bool) "ops" true
    (q 1 2 + q 1 3 = q 5 6 && q 1 2 * q 2 3 = q 1 3 && q 3 4 - q 1 4 = q 1 2
    && q 1 2 / q 1 4 = q 2 1 && ~-(q 1 2) = q (-1) 2 && q 1 3 < q 1 2);
  Alcotest.(check bool) "mul_zint" true
    (Qnum.equal (Qnum.mul_zint (Qnum.of_ints 1 6) (Zint.of_int 3)) (Qnum.of_ints 1 2))

let test_zint_succ_pred_minmax () =
  let z = Zint.of_int in
  Alcotest.(check int) "succ" 1 (Zint.to_int (Zint.succ Zint.zero));
  Alcotest.(check int) "pred" (-1) (Zint.to_int (Zint.pred Zint.zero));
  Alcotest.(check int) "min" (-5) (Zint.to_int (Zint.min (z (-5)) (z 3)));
  Alcotest.(check int) "max" 3 (Zint.to_int (Zint.max (z (-5)) (z 3)));
  Alcotest.(check bool) "divisible" true (Zint.divisible (z 12) (z 4));
  Alcotest.(check bool) "not divisible" false (Zint.divisible (z 12) (z 5));
  Alcotest.(check int) "mul_int" 21 (Zint.to_int (Zint.mul_int (z 7) 3));
  Alcotest.(check int) "add_int" 10 (Zint.to_int (Zint.add_int (z 7) 3))

let test_zint_hash_consistent () =
  let a = Zint.of_string "123456789012345678901234567890" in
  let b = Zint.of_string "123456789012345678901234567890" in
  Alcotest.(check int) "equal values hash equal" (Zint.hash a) (Zint.hash b)

(* ------------------------------ linalg ------------------------------ *)

let test_1x1_everything () =
  let m = im [ [ 7 ] ] in
  Alcotest.(check int) "det" 7 (Zint.to_int (Intmat.det m));
  Alcotest.(check int) "rank" 1 (Intmat.rank m);
  Alcotest.(check (list (list int))) "adjugate" [ [ 1 ] ] (Intmat.to_ints (Intmat.adjugate m));
  let res = Hnf.compute m in
  Alcotest.(check bool) "hnf" true (Hnf.verify m res);
  let sm = Smith.compute m in
  Alcotest.(check (list int)) "smith" [ 7 ] (List.map Zint.to_int sm.Smith.invariant_factors)

let test_hnf_without_reduction () =
  let t = im [ [ 4; 6; 2 ]; [ 2; 8; 9 ] ] in
  let res = Hnf.compute ~reduce:false t in
  (* Shape only: TU = H, unimodularity, zero block. *)
  Alcotest.(check bool) "verify" true (Hnf.verify t res)

let test_hnf_zero_matrix () =
  let t = Intmat.zero 2 3 in
  let res = Hnf.compute t in
  Alcotest.(check int) "rank 0" 0 res.Hnf.rank;
  Alcotest.(check int) "kernel is everything" 3 (List.length (Hnf.kernel_basis t))

let test_vec_scale_zero () =
  Alcotest.(check bool) "0 * v = 0" true
    (Intvec.is_zero (Intvec.scale Zint.zero (iv [ 3; -4 ])))

let test_intmat_pp_roundtrip_shape () =
  let m = im [ [ 1; -22 ]; [ 333; 4 ] ] in
  let s = Intmat.to_string m in
  Alcotest.(check bool) "mentions all entries" true
    (List.for_all
       (fun needle ->
         let nh = String.length s and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
         go 0)
       [ "1"; "-22"; "333"; "4" ])

(* -------------------------------- lp -------------------------------- *)

let test_lin_pp () =
  let c = Lin.(le_int (of_ints [ 1; -2; 0 ]) 5) in
  let s = Format.asprintf "%a" Lin.pp_constr c in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_lin_eval_and_satisfies () =
  let x = Array.map Qnum.of_int [| 2; 3 |] in
  Alcotest.(check bool) "eval" true
    (Qnum.equal (Lin.eval (Lin.of_ints [ 1; 2 ]) x) (Qnum.of_int 8));
  Alcotest.(check bool) "eq satisfied" true (Lin.satisfies x Lin.(eq_int (of_ints [ 1; 2 ]) 8));
  Alcotest.(check bool) "eq violated" false (Lin.satisfies x Lin.(eq_int (of_ints [ 1; 2 ]) 9))

let test_simplex_trivial_problems () =
  (* No constraints at all: minimum of a nonzero objective is unbounded;
     of a zero objective, zero. *)
  let p = Simplex.{ nvars = 1; objective = Lin.of_ints [ 1 ]; constraints = [] } in
  (match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded");
  let p0 = Simplex.{ nvars = 1; objective = Lin.of_ints [ 0 ]; constraints = [] } in
  match Simplex.solve p0 with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check bool) "zero" true (Qnum.is_zero obj)
  | _ -> Alcotest.fail "expected optimum"

let test_vertex_single_point () =
  (* x = 3 exactly: one vertex. *)
  let vs = Vertex.enumerate ~nvars:1 [ Lin.eq_int (Lin.of_ints [ 1 ]) 3 ] in
  Alcotest.(check int) "one vertex" 1 (List.length vs)

(* ----------------------------- uda/mapping -------------------------- *)

let test_mu_1_box () =
  (* The smallest legal index set: {0,1}^n. *)
  let mu = [| 1; 1 |] in
  Alcotest.(check bool) "diag conflicts" false (Conflict.is_conflict_free ~mu (im [ [ 1; -1 ] ]));
  Alcotest.(check bool) "(2,-1) free" true (Conflict.is_conflict_free ~mu (im [ [ 1; -2 ] ]))

let test_k_equals_n_mapping () =
  (* Square T: conflict-freedom is exactly nonsingularity. *)
  let mu = [| 3; 3 |] in
  Alcotest.(check bool) "identity free" true (fst (Theorems.decide ~mu (Intmat.identity 2)));
  Alcotest.(check bool) "singular not" false
    (fst (Theorems.decide ~mu (im [ [ 1; 1 ]; [ 2; 2 ] ])))

let test_routing_zero_displacement () =
  (* A dependence that stays on the same PE needs no hops. *)
  let tm = Tmap.make ~s:(im [ [ 1; 0 ] ]) ~pi:(iv [ 1; 1 ]) in
  let d = im [ [ 0 ]; [ 1 ] ] in
  match Tmap.find_routing tm ~d with
  | Some r ->
    Alcotest.(check (array int)) "0 hops" [| 0 |] r.Tmap.hops;
    Alcotest.(check (array int)) "1 buffer" [| 1 |] r.Tmap.buffers
  | None -> Alcotest.fail "expected routing"

let test_routing_with_custom_p () =
  (* Diagonal links allow a 2-D displacement in one hop. *)
  let tm = Tmap.make ~s:(im [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ]) ~pi:(iv [ 1; 1; 1 ]) in
  let d = im [ [ 1 ]; [ 1 ]; [ 0 ] ] in
  let p_diag = im [ [ 1; -1 ]; [ 1; -1 ] ] in
  match Tmap.find_routing ~p:p_diag tm ~d with
  | Some r -> Alcotest.(check (array int)) "one diagonal hop" [| 1 |] r.Tmap.hops
  | None -> Alcotest.fail "expected routing"

let test_schedule_negative_entries () =
  (* Equation 2.7 with mixed-sign Pi. *)
  Alcotest.(check int) "total time" (1 + (2 * 3) + (1 * 4))
    (Schedule.total_time ~mu:[| 3; 4 |] (iv [ -2; 1 ]))

let test_tmap_processors_negative_coords () =
  let tm = Tmap.make ~s:(im [ [ 1; -1 ] ]) ~pi:(iv [ 1; 2 ]) in
  let procs = Tmap.processors tm (Index_set.make [| 2; 2 |]) in
  (* S j in [-2, 2]: 5 PEs. *)
  Alcotest.(check int) "5 PEs" 5 (List.length procs)

(* ----------------------------- systolic ----------------------------- *)

let test_exec_single_dependence_line () =
  (* 1-D chain: n = 1 algorithm on a single PE. *)
  let alg =
    Algorithm.make ~name:"chain" ~index_set:(Index_set.make [| 5 |]) ~dependences:[ [ 1 ] ]
  in
  let tm = Tmap.make ~s:(im [ [ 0 ] ]) ~pi:(iv [ 1 ]) in
  let r = Exec.run alg Dataflow.semantics tm in
  Alcotest.(check int) "one PE" 1 r.Exec.num_processors;
  Alcotest.(check int) "6 cycles" 6 r.Exec.makespan;
  Alcotest.(check bool) "clean" true (Exec.is_clean r)

let test_firing_list_total () =
  let alg = Matmul.algorithm ~mu:1 in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(iv [ 1; 2; 4 ]) in
  let listing = Trace.firing_list alg tm in
  (* 8 points, each on its own or shared line; all rendered. *)
  let count = ref 0 in
  String.iter (fun c -> if c = '<' then incr count) listing;
  Alcotest.(check int) "8 firings" 8 !count

let test_stats_single_point_algorithm () =
  let alg =
    Algorithm.make ~name:"tiny" ~index_set:(Index_set.make [| 1 |]) ~dependences:[ [ 1 ] ]
  in
  let tm = Tmap.make ~s:(im [ [ 0 ] ]) ~pi:(iv [ 1 ]) in
  let s = Stats.compute alg tm in
  Alcotest.(check int) "computations" 2 s.Stats.computations;
  Alcotest.(check int) "peak" 1 s.Stats.peak_parallelism

(* ----------------------------- frontend ----------------------------- *)

let test_frontend_constant_index () =
  (* A constant array subscript parses: OUT[i, 0]... actually constants
     appear in input subscripts. *)
  let a = Loopnest.parse "for i = 0..3, j = 0..3 { B[i,j] = B[i,j-1] + A[i,0] }" in
  Alcotest.(check bool) "has accumulation" true
    (List.exists (fun (d, _) -> Intvec.to_ints d = [ 0; 1 ]) a.Loopnest.dependence_origin)

let test_frontend_whitespace_insensitive () =
  let a = Loopnest.parse "for i=0..3,k=0..2{Y[i]=Y[i]+W[k]*X[i-k]}" in
  Alcotest.(check int) "n = 2" 2 (Algorithm.dim a.Loopnest.algorithm)

let suite =
  [
    Alcotest.test_case "zint infix" `Quick test_zint_infix;
    Alcotest.test_case "qnum infix / mul_zint" `Quick test_qnum_infix_and_mul_zint;
    Alcotest.test_case "zint succ/pred/min/max" `Quick test_zint_succ_pred_minmax;
    Alcotest.test_case "zint hash" `Quick test_zint_hash_consistent;
    Alcotest.test_case "1x1 linalg" `Quick test_1x1_everything;
    Alcotest.test_case "hnf without reduction" `Quick test_hnf_without_reduction;
    Alcotest.test_case "hnf zero matrix" `Quick test_hnf_zero_matrix;
    Alcotest.test_case "scale by zero" `Quick test_vec_scale_zero;
    Alcotest.test_case "matrix printing" `Quick test_intmat_pp_roundtrip_shape;
    Alcotest.test_case "lin pp" `Quick test_lin_pp;
    Alcotest.test_case "lin eval/satisfies" `Quick test_lin_eval_and_satisfies;
    Alcotest.test_case "simplex trivial" `Quick test_simplex_trivial_problems;
    Alcotest.test_case "vertex single point" `Quick test_vertex_single_point;
    Alcotest.test_case "mu = 1 box" `Quick test_mu_1_box;
    Alcotest.test_case "k = n mapping" `Quick test_k_equals_n_mapping;
    Alcotest.test_case "zero-displacement routing" `Quick test_routing_zero_displacement;
    Alcotest.test_case "custom P routing" `Quick test_routing_with_custom_p;
    Alcotest.test_case "negative schedule entries" `Quick test_schedule_negative_entries;
    Alcotest.test_case "negative PE coordinates" `Quick test_tmap_processors_negative_coords;
    Alcotest.test_case "1-D chain simulation" `Quick test_exec_single_dependence_line;
    Alcotest.test_case "firing list total" `Quick test_firing_list_total;
    Alcotest.test_case "single-point stats" `Quick test_stats_single_point_algorithm;
    Alcotest.test_case "frontend constant index" `Quick test_frontend_constant_index;
    Alcotest.test_case "frontend whitespace" `Quick test_frontend_whitespace_insensitive;
  ]
