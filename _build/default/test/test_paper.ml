(* Integration tests pinning every quantitative claim of the paper to
   this implementation (the per-experiment index of DESIGN.md). *)

let iv = Intvec.of_ints
let im = Intmat.of_ints

(* E2/E3 — Example 2.1 / 4.2: the mapping of Equation 2.8. *)
let test_e2_example_2_1 () =
  let t = im [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ] in
  let mu = [| 6; 6; 6; 6 |] in
  (* "Therefore, T is not conflict-free." *)
  Alcotest.(check bool) "not conflict-free" false (Conflict.is_conflict_free ~mu t);
  (* gamma = (2,0,-2,0) is a kernel vector but not a conflict vector
     (gcd 2); the box oracle returns primitive witnesses only. *)
  match Conflict.find_conflict ~mu t with
  | Some g -> Alcotest.(check bool) "primitive witness" true (Intvec.is_primitive g)
  | None -> Alcotest.fail "expected a witness"

let test_e3_hermite_of_equation_2_8 () =
  let t = im [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ] in
  let res = Hnf.compute t in
  (* Theorem 4.1 structure: H = [L 0], L lower triangular nonsingular. *)
  Alcotest.(check bool) "verify" true (Hnf.verify t res);
  Alcotest.(check int) "rank 2" 2 res.Hnf.rank;
  (* Theorem 4.2(3): all conflict vectors are integral combinations of
     the last two columns of U; the non-feasible (1,0,-1,0) of the
     paper must be such a combination. *)
  let u3 = Intmat.col res.Hnf.u 2 and u4 = Intmat.col res.Hnf.u 3 in
  let target = iv [ 1; 0; -1; 0 ] in
  let found = ref false in
  for a = -10 to 10 do
    for b = -10 to 10 do
      if Intvec.equal target (Intvec.add (Intvec.scale_int a u3) (Intvec.scale_int b u4)) then
        found := true
    done
  done;
  Alcotest.(check bool) "(1,0,-1,0) in the kernel lattice" true !found

(* E4 — Example 3.1 / Equation 3.5 with T gamma = 0. *)
let test_e4_matmul_gamma () =
  let s = Matmul.paper_s in
  List.iter
    (fun pi ->
      let t = Intmat.append_row s (iv pi) in
      match Conflict.single_conflict_vector t with
      | Some g ->
        Alcotest.(check bool) "T gamma = 0" true (Intvec.is_zero (Intmat.mul_vec t g));
        (* Equation 3.5 shape: proportional to (-p2-p3, p1+p3, p1-p2). *)
        let p1 = List.nth pi 0 and p2 = List.nth pi 1 and p3 = List.nth pi 2 in
        let expected = Intvec.normalize_sign (Intvec.primitive_part (iv [ -p2 - p3; p1 + p3; p1 - p2 ])) in
        Alcotest.(check (list int)) "Eq 3.5" (Intvec.to_ints expected) (Intvec.to_ints g)
      | None -> Alcotest.fail "expected gamma")
    [ [ 1; 4; 1 ]; [ 2; 1; 3 ]; [ 1; 2; 3 ]; [ 5; 2; 2 ] ]

(* E5 — Example 3.2 / Equation 3.7. *)
let test_e5_tc_gamma () =
  let s = Transitive_closure.paper_s in
  List.iter
    (fun pi ->
      let t = Intmat.append_row s (iv pi) in
      match Conflict.single_conflict_vector t with
      | Some g ->
        let p1 = List.nth pi 0 and p2 = List.nth pi 1 in
        let expected = Intvec.normalize_sign (Intvec.primitive_part (iv [ p2; -p1; 0 ])) in
        Alcotest.(check (list int)) "Eq 3.7" (Intvec.to_ints expected) (Intvec.to_ints g)
      | None -> Alcotest.fail "expected gamma")
    [ [ 5; 1; 1 ]; [ 9; 1; 1 ]; [ 7; 2; 1 ] ]

(* E6 — Example 5.1 and its appendix derivation. *)
let test_e6_appendix_extreme_points () =
  (* Formulation I of Equation 8.1 at mu = 4 has exactly the extreme
     points Pi_1 = (1,1,mu) and Pi_2 = (1,mu,1). *)
  let mu = 4 in
  let n = 3 in
  let cons =
    Lin.
      [
        ge_int (var n 0) 1;
        ge_int (var n 1) 1;
        ge_int (var n 2) 1;
        ge_int (of_ints [ 0; 1; 1 ]) (mu + 1);
      ]
  in
  let vs = Vertex.enumerate ~nvars:n cons in
  Alcotest.(check bool) "all integral" true (Vertex.all_integral vs);
  let as_ints = List.map (fun v -> Array.to_list (Array.map (fun q -> Zint.to_int (Qnum.to_zint_exn q)) v)) vs in
  let sorted = List.sort compare as_ints in
  Alcotest.(check (list (list int))) "Pi_1 and Pi_2" [ [ 1; 1; mu ]; [ 1; mu; 1 ] ] sorted;
  (* Pi_1 = (1,1,mu) has the non-feasible conflict vector (1,1,0)
     mentioned in the appendix... normalized here as primitive. *)
  let t1 = Intmat.append_row Matmul.paper_s (iv [ 1; 1; mu ]) in
  (match Conflict.single_conflict_vector t1 with
  | Some g ->
    Alcotest.(check bool) "Pi_1 rejected" false (Conflict.is_feasible ~mu:[| mu; mu; mu |] g)
  | None -> Alcotest.fail "expected gamma");
  (* Pi_2 = (1,mu,1) is feasible. *)
  let t2 = Intmat.append_row Matmul.paper_s (iv [ 1; mu; 1 ]) in
  match Conflict.single_conflict_vector t2 with
  | Some g -> Alcotest.(check bool) "Pi_2 accepted" true (Conflict.is_feasible ~mu:[| mu; mu; mu |] g)
  | None -> Alcotest.fail "expected gamma"

let test_e6_matmul_vs_lee_kedem_crossover () =
  (* The paper (quoting [23]) says Pi' = (2,1,mu) is optimal at mu = 3
     and suboptimal at mu = 4.  Under THIS paper's own constraint set
     (Definition 2.2, which allows buffered early arrival) we find that
     Pi' is already suboptimal at mu = 3: Pi = (1,2,2) is conflict-free
     with t = 16 < 19.  The mu = 3 remark holds only under [23]'s
     stricter exact-arrival model — a reproduction observation recorded
     in EXPERIMENTS.md (E6). *)
  let optimal mu =
    match Procedure51.optimize (Matmul.algorithm ~mu) ~s:Matmul.paper_s with
    | Some r -> r.Procedure51.total_time
    | None -> Alcotest.fail "expected schedule"
  in
  Alcotest.(check int) "mu=3 optimum is mu(mu+2)+1" 16 (optimal 3);
  Alcotest.(check bool) "Pi' beaten at mu=3 in our model" true
    (optimal 3 < Matmul.lee_kedem_total_time ~mu:3);
  Alcotest.(check bool) "Pi' beaten at mu=4 (paper agrees)" true
    (optimal 4 < Matmul.lee_kedem_total_time ~mu:4);
  (* The witness schedule runs clean end to end. *)
  let mu = 3 in
  let rng = Random.State.make [| 5 |] in
  let a = Matmul.random_matrix ~rng (mu + 1) and b = Matmul.random_matrix ~rng (mu + 1) in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(iv [ 1; 2; 2 ]) in
  let r = Exec.run (Matmul.algorithm ~mu) (Matmul.semantics ~a ~b) tm in
  Alcotest.(check bool) "witness clean" true (Exec.is_clean r);
  Alcotest.(check int) "witness makespan 16" 16 r.Exec.makespan

(* E9 — Example 5.2 and the appendix's Formulation II extreme points. *)
let test_e9_appendix_tc_extreme_points () =
  let mu = 4 in
  let n = 3 in
  (* Formulation II: pi2 >= 1, pi3 >= 1, pi1 - pi2 - pi3 >= 1,
     pi1 - pi2 >= 1, pi1 - pi3 >= 1, pi1 >= mu+1.  Wait: the paper's
     branch fixes pi1 >= mu + 1; its four extreme points are listed in
     the appendix. *)
  let cons =
    Lin.
      [
        ge_int (var n 1) 1;
        ge_int (var n 2) 1;
        ge_int (of_ints [ 1; -1; -1 ]) 1;
        ge_int (of_ints [ 1; -1; 0 ]) 1;
        ge_int (of_ints [ 1; 0; -1 ]) 1;
        ge_int (var n 0) (mu + 1);
      ]
  in
  let vs = Vertex.enumerate ~nvars:n cons in
  Alcotest.(check bool) "integral" true (Vertex.all_integral vs);
  let as_ints =
    List.sort compare
      (List.map (fun v -> Array.to_list (Array.map (fun q -> Zint.to_int (Qnum.to_zint_exn q)) v)) vs)
  in
  (* Paper: Pi_1 = (mu+1,1,1), Pi_2 = (mu+1,1,mu-1), Pi_4 = (mu+1,mu-1,1)
     (Pi_3 as printed fails pi1 - pi2 - pi3 >= 1; OCR noise — the
     enumeration is authoritative). *)
  Alcotest.(check bool) "contains (mu+1,1,1)" true (List.mem [ mu + 1; 1; 1 ] as_ints);
  Alcotest.(check bool) "contains (mu+1,1,mu-1)" true (List.mem [ mu + 1; 1; mu - 1 ] as_ints);
  Alcotest.(check bool) "contains (mu+1,mu-1,1)" true (List.mem [ mu + 1; mu - 1; 1 ] as_ints)

let test_e9_tc_improvement_factor () =
  (* The headline: t' = mu(2mu+3)+1 of [22] improved to mu(mu+3)+1 —
     asymptotically a 2x speedup. *)
  List.iter
    (fun mu ->
      let t_opt = Transitive_closure.optimal_total_time ~mu in
      let t_prior = Transitive_closure.prior_total_time ~mu in
      Alcotest.(check bool) "strictly better for mu >= 1" true (t_opt < t_prior);
      let ratio = float_of_int t_prior /. float_of_int t_opt in
      Alcotest.(check bool) "ratio approaches 2" true (ratio > 1.5 || mu < 4))
    [ 2; 4; 8; 16; 32 ]

(* E10 — the 5-D bit-level mapping via Proposition 8.1 + Theorem 4.7. *)
let test_e10_bit_matmul_mapping_exists () =
  let alg = Bit_matmul.algorithm ~mu_word:2 ~mu_bit:2 in
  let s = Bit_matmul.example_s in
  match Procedure51.optimize ~max_objective:40 alg ~s with
  | Some r ->
    let t = Intmat.append_row s r.Procedure51.pi in
    let mu = Index_set.bounds alg.Algorithm.index_set in
    Alcotest.(check bool) "conflict-free" true (Conflict.is_conflict_free ~mu t);
    Alcotest.(check bool) "rank 3" true (Intmat.rank t = 3);
    (* Proposition 8.1 agrees with the generic HNF machinery. *)
    (match Prop81.compute ~s ~pi:r.Procedure51.pi with
    | Some p ->
      Alcotest.(check bool) "u4 in kernel" true (Intvec.is_zero (Intmat.mul_vec t p.Prop81.u4));
      Alcotest.(check bool) "u5 in kernel" true (Intvec.is_zero (Intmat.mul_vec t p.Prop81.u5))
    | None -> Alcotest.fail "Prop 8.1 must apply")
  | None -> Alcotest.fail "expected a schedule"

(* E15 — Section 3's motivating sentence: 4-D bit-level convolution
   onto a 2-D array via the Theorem 3.1 closed form. *)
let test_e15_bit_convolution_2d () =
  let alg = Bit_convolution.algorithm ~mu_sample:3 ~mu_tap:2 ~mu_bit:2 in
  let s = Bit_convolution.bitplane_s in
  match Procedure51.optimize alg ~s with
  | None -> Alcotest.fail "expected a schedule"
  | Some r ->
    let t = Intmat.append_row s r.Procedure51.pi in
    (* n = 4, k = 3: the (n-1) x n case — a single conflict vector. *)
    (match Conflict.single_conflict_vector t with
    | Some gamma ->
      Alcotest.(check bool) "Theorem 3.1 gamma feasible" true
        (Conflict.is_feasible ~mu:(Index_set.bounds alg.Algorithm.index_set) gamma)
    | None -> Alcotest.fail "expected the closed-form conflict vector");
    let tm = Tmap.make ~s ~pi:r.Procedure51.pi in
    let rep = Exec.run alg Dataflow.semantics tm in
    Alcotest.(check bool) "clean" true (Exec.is_clean rep);
    Alcotest.(check int) "bit-plane PEs" 9 rep.Exec.num_processors;
    (* Perfectly balanced bit-plane load. *)
    let loads = Stats.pe_loads alg tm in
    let _, first = List.hd loads in
    Alcotest.(check bool) "balanced load" true (List.for_all (fun (_, c) -> c = first) loads)

(* Theorem 2.1 — monotonicity of total time in |pi_i|. *)
let test_theorem_2_1_monotonicity () =
  let mu = [| 3; 5; 2 |] in
  let base = [| 2; -1; 3 |] in
  let t0 = Schedule.total_time ~mu (Intvec.of_int_array base) in
  Array.iteri
    (fun i v ->
      let bumped = Array.copy base in
      bumped.(i) <- (if v >= 0 then v + 1 else v - 1);
      let t1 = Schedule.total_time ~mu (Intvec.of_int_array bumped) in
      Alcotest.(check bool) "increases" true (t1 > t0))
    base

let suite =
  [
    Alcotest.test_case "E2: Example 2.1" `Quick test_e2_example_2_1;
    Alcotest.test_case "E3: HNF of Eq 2.8" `Quick test_e3_hermite_of_equation_2_8;
    Alcotest.test_case "E4: Eq 3.5 gamma" `Quick test_e4_matmul_gamma;
    Alcotest.test_case "E5: Eq 3.7 gamma" `Quick test_e5_tc_gamma;
    Alcotest.test_case "E6: appendix extreme points" `Quick test_e6_appendix_extreme_points;
    Alcotest.test_case "E6: crossover vs [23]" `Slow test_e6_matmul_vs_lee_kedem_crossover;
    Alcotest.test_case "E9: appendix TC extreme points" `Quick test_e9_appendix_tc_extreme_points;
    Alcotest.test_case "E9: improvement over [22]" `Quick test_e9_tc_improvement_factor;
    Alcotest.test_case "E10: 5-D bit-level mapping" `Slow test_e10_bit_matmul_mapping_exists;
    Alcotest.test_case "E15: 4-D bit convolution -> 2-D" `Slow test_e15_bit_convolution_2d;
    Alcotest.test_case "Theorem 2.1 monotonicity" `Quick test_theorem_2_1_monotonicity;
  ]
