type error =
  | Parse_error of string
  | Non_uniform of string
  | Unknown_variable of string
  | Empty_index_set of string
  | No_alignment of string

exception Error of error

let error_to_string = function
  | Parse_error s -> "parse error: " ^ s
  | Non_uniform s -> "non-uniform program: " ^ s
  | Unknown_variable s -> "unknown loop variable: " ^ s
  | Empty_index_set s -> "empty index set: " ^ s
  | No_alignment s -> "no valid alignment: " ^ s

let fail e = raise (Error e)

(* ------------------------------- lexer ------------------------------ *)

type token =
  | FOR
  | IDENT of string
  | INT of int
  | EQUALS
  | DOTDOT
  | COMMA
  | SEMI
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | EOF

let token_to_string = function
  | FOR -> "for"
  | IDENT s -> s
  | INT n -> string_of_int n
  | EQUALS -> "="
  | DOTDOT -> ".."
  | COMMA -> ","
  | SEMI -> ";"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | EOF -> "<eof>"

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_alpha c then begin
      let start = !i in
      while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do incr i done;
      let word = String.sub src start (!i - start) in
      emit (if word = "for" then FOR else IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      (match c with
      | '=' -> emit EQUALS
      | '.' ->
        if !i + 1 < n && src.[!i + 1] = '.' then begin emit DOTDOT; incr i end
        else fail (Parse_error "single '.'")
      | ',' -> emit COMMA
      | ';' -> emit SEMI
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' -> emit STAR
      | c -> fail (Parse_error (Printf.sprintf "unexpected character %C" c)));
      incr i
    end
  done;
  emit EOF;
  List.rev !tokens

(* ------------------------------ parser ------------------------------ *)

type affine = { coeffs : int array; const : int }

type array_ref = { array_name : string; indices : affine list }

type parser_state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t =
  if peek st = t then advance st
  else
    fail
      (Parse_error
         (Printf.sprintf "expected '%s' but found '%s'" (token_to_string t)
            (token_to_string (peek st))))

let parse_int st =
  match peek st with
  | INT n -> advance st; n
  | MINUS ->
    advance st;
    (match peek st with
    | INT n -> advance st; -n
    | t -> fail (Parse_error ("expected integer after '-', found " ^ token_to_string t)))
  | t -> fail (Parse_error ("expected integer, found " ^ token_to_string t))

(* Affine index expression over the loop variables [vars]. *)
let parse_affine st vars =
  let nv = List.length vars in
  let coeffs = Array.make nv 0 in
  let const = ref 0 in
  let var_index name =
    let rec go i = function
      | [] -> fail (Unknown_variable name)
      | v :: rest -> if v = name then i else go (i + 1) rest
    in
    go 0 vars
  in
  let add_term sign =
    match peek st with
    | INT n -> (
      advance st;
      match peek st with
      | STAR -> (
        advance st;
        match peek st with
        | IDENT v ->
          advance st;
          let idx = var_index v in
          coeffs.(idx) <- coeffs.(idx) + (sign * n)
        | t -> fail (Parse_error ("expected variable after '*', found " ^ token_to_string t)))
      | _ -> const := !const + (sign * n))
    | IDENT v ->
      advance st;
      let idx = var_index v in
      coeffs.(idx) <- coeffs.(idx) + sign
    | t -> fail (Parse_error ("expected index term, found " ^ token_to_string t))
  in
  let first_sign = if peek st = MINUS then (advance st; -1) else 1 in
  add_term first_sign;
  let continue = ref true in
  while !continue do
    match peek st with
    | PLUS -> advance st; add_term 1
    | MINUS -> advance st; add_term (-1)
    | _ -> continue := false
  done;
  { coeffs; const = !const }

let parse_ref st vars name =
  expect st LBRACKET;
  let indices = ref [ parse_affine st vars ] in
  while peek st = COMMA do
    advance st;
    indices := parse_affine st vars :: !indices
  done;
  expect st RBRACKET;
  { array_name = name; indices = List.rev !indices }

(* Right-hand side: we only need the referenced arrays; arithmetic
   structure is irrelevant to (J, D). *)
let rec parse_expr_refs st vars acc =
  let acc = parse_term_refs st vars acc in
  match peek st with
  | PLUS | MINUS ->
    advance st;
    parse_expr_refs st vars acc
  | _ -> acc

and parse_term_refs st vars acc =
  let acc = parse_factor_refs st vars acc in
  match peek st with
  | STAR ->
    advance st;
    parse_term_refs st vars acc
  | _ -> acc

and parse_factor_refs st vars acc =
  match peek st with
  | INT _ -> advance st; acc
  | MINUS -> advance st; parse_factor_refs st vars acc
  | LPAREN ->
    advance st;
    let acc = parse_expr_refs st vars acc in
    expect st RPAREN;
    acc
  | IDENT name ->
    advance st;
    if peek st = LBRACKET then parse_ref st vars name :: acc
    else fail (Parse_error ("scalar reference '" ^ name ^ "' is not supported"))
  | t -> fail (Parse_error ("expected expression, found " ^ token_to_string t))

type stmt = { lhs : array_ref; rhs_refs : array_ref list }

type nest = {
  vars : string list;
  lower : int array;
  upper : int array;
  stmts : stmt list;
}

let parse_stmt st vars =
  let lhs =
    match peek st with
    | IDENT name -> advance st; parse_ref st vars name
    | t -> fail (Parse_error ("expected assignment, found " ^ token_to_string t))
  in
  expect st EQUALS;
  let refs = List.rev (parse_expr_refs st vars []) in
  { lhs; rhs_refs = refs }

let parse_nest src =
  let st = { toks = tokenize src } in
  expect st FOR;
  let vars = ref [] and lowers = ref [] and uppers = ref [] in
  let parse_bind () =
    match peek st with
    | IDENT v ->
      advance st;
      expect st EQUALS;
      let lo = parse_int st in
      expect st DOTDOT;
      let hi = parse_int st in
      vars := v :: !vars;
      lowers := lo :: !lowers;
      uppers := hi :: !uppers
    | t -> fail (Parse_error ("expected loop variable, found " ^ token_to_string t))
  in
  parse_bind ();
  while peek st = COMMA do
    advance st;
    parse_bind ()
  done;
  let vars = List.rev !vars in
  expect st LBRACE;
  let stmts = ref [ parse_stmt st vars ] in
  while peek st = SEMI do
    advance st;
    if peek st <> RBRACE then stmts := parse_stmt st vars :: !stmts
  done;
  expect st RBRACE;
  expect st EOF;
  {
    vars;
    lower = Array.of_list (List.rev !lowers);
    upper = Array.of_list (List.rev !uppers);
    stmts = List.rev !stmts;
  }

(* ----------------------------- analysis ----------------------------- *)

type analysis = {
  algorithm : Algorithm.t;
  loop_vars : string list;
  shifts : int array;
  dependence_origin : (Intvec.t * string) list;
  alignment : (string * int array) list;
}

(* Access function of a reference after normalizing loop lower bounds
   to zero: index = F j + f with j = var - lower. *)
let access_of_ref nest (r : array_ref) =
  let nv = List.length nest.vars in
  let rows = List.length r.indices in
  let f_mat =
    Intmat.make rows nv (fun i j -> Zint.of_int (List.nth r.indices i).coeffs.(j))
  in
  let offset =
    Array.of_list
      (List.map
         (fun (a : affine) ->
           let c = ref a.const in
           Array.iteri (fun i co -> c := !c + (co * nest.lower.(i))) a.coeffs;
           Zint.of_int !c)
         r.indices)
  in
  (f_mat, offset)

let ref_to_string (r : array_ref) nest =
  let affine_to_string (a : affine) =
    let buf = Buffer.create 8 in
    let first = ref true in
    Array.iteri
      (fun i c ->
        if c <> 0 then begin
          let v = List.nth nest.vars i in
          if c = 1 then begin
            if not !first then Buffer.add_char buf '+';
            Buffer.add_string buf v
          end
          else if c = -1 then Buffer.add_string buf ("-" ^ v)
          else begin
            if c > 0 && not !first then Buffer.add_char buf '+';
            Buffer.add_string buf (string_of_int c ^ "*" ^ v)
          end;
          first := false
        end)
      a.coeffs;
    if a.const <> 0 || !first then begin
      if a.const >= 0 && not !first then Buffer.add_char buf '+';
      Buffer.add_string buf (string_of_int a.const)
    end;
    Buffer.contents buf
  in
  r.array_name ^ "[" ^ String.concat "," (List.map affine_to_string r.indices) ^ "]"

(* Integral solution of F d = diff, via the Hermite normal form. *)
let solve_integral f diff =
  let res = Hnf.compute f in
  let r = res.Hnf.rank in
  let n = Intmat.cols f in
  let l = Ratmat.of_intmat (Intmat.sub_cols res.Hnf.h 0 (Stdlib.max r 1)) in
  let b = Array.map Qnum.of_zint diff in
  if r = 0 then if Array.for_all Zint.is_zero diff then Some (Intvec.zero n) else None
  else
    match Ratmat.solve l b with
    | None -> None
    | Some y ->
      if Array.for_all Qnum.is_integer y then begin
        let ext = Array.make n Zint.zero in
        Array.iteri (fun i v -> ext.(i) <- Qnum.to_zint_exn v) y;
        Some (Intmat.mul_vec res.Hnf.u ext)
      end
      else None

(* A cross-statement flow dependence before alignment. *)
type cross_dep = {
  writer : int;
  reader : int;
  raw : Intvec.t;
  label : string;
}

let l1_norm v =
  Array.fold_left (fun acc x -> acc + abs (Zint.to_int x)) 0 v

(* Does some small Pi satisfy Pi D > 0 for this dependence set? *)
let schedulable nv deps =
  if deps = [] then true
  else begin
    let d = Intmat.of_cols deps in
    let respects pi =
      Array.for_all
        (fun x -> Zint.sign x > 0)
        (Intmat.vec_mul (Intvec.of_int_array pi) d)
    in
    let found = ref false in
    let pi = Array.make nv 0 in
    let rec go i =
      if !found then ()
      else if i = nv then begin
        if respects pi then found := true
      end
      else
        for v = -3 to 3 do
          pi.(i) <- v;
          go (i + 1);
          pi.(i) <- 0
        done
    in
    go 0;
    !found
  end

let analyze ?(alignment_bound = 2) nest =
  let nv = List.length nest.vars in
  let mu = Array.init nv (fun i -> nest.upper.(i) - nest.lower.(i)) in
  Array.iteri
    (fun i m ->
      if m < 1 then
        fail
          (Empty_index_set
             (Printf.sprintf "loop %s has fewer than two iterations" (List.nth nest.vars i))))
    mu;
  let stmts = Array.of_list nest.stmts in
  let ns = Array.length stmts in
  (* Map written arrays to their (unique) writing statement. *)
  let writers = Hashtbl.create 8 in
  Array.iteri
    (fun idx st ->
      if Hashtbl.mem writers st.lhs.array_name then
        fail (Non_uniform (st.lhs.array_name ^ " is written by more than one statement"));
      Hashtbl.add writers st.lhs.array_name idx)
    stmts;
  (* Offset-independent dependences (self flows, accumulations, input
     reuse) and offset-dependent cross-statement flows. *)
  let static : (Intvec.t * string) list ref = ref [] in
  let cross : cross_dep list ref = ref [] in
  let add_static d why =
    if not (Intvec.is_zero d) then
      match List.find_opt (fun (d', _) -> Intvec.equal d' d) !static with
      | Some _ -> ()
      | None -> static := (d, why) :: !static
  in
  Array.iteri
    (fun reader_idx st ->
      let f_lhs, off_lhs = access_of_ref nest st.lhs in
      List.iter
        (fun (r : array_ref) ->
          let f_r, off_r = access_of_ref nest r in
          let rname = ref_to_string r nest in
          match Hashtbl.find_opt writers r.array_name with
          | None ->
            (* Pure input: localize its reuse along the access kernel,
               and across sibling references reading the same array at
               a constant offset (A[i,j] vs A[i-1,j]). *)
            List.iter
              (fun g -> add_static (Intvec.normalize_sign g) (Printf.sprintf "input reuse of %s" rname))
              (Hnf.kernel_basis f_r);
            Array.iter
              (fun (st' : stmt) ->
                List.iter
                  (fun (r' : array_ref) ->
                    if r'.array_name = r.array_name && r' != r then begin
                      let f', off' = access_of_ref nest r' in
                      if Intmat.equal f' f_r then begin
                        let diff =
                          Array.init (Array.length off_r) (fun i -> Zint.sub off'.(i) off_r.(i))
                        in
                        if not (Array.for_all Zint.is_zero diff) then
                          match solve_integral f_r diff with
                          | Some d ->
                            add_static (Intvec.normalize_sign d)
                              (Printf.sprintf "input reuse between %s and %s" rname
                                 (ref_to_string r' nest))
                          | None -> ()
                      end
                    end)
                  st'.rhs_refs)
              stmts
          | Some writer_idx when writer_idx = reader_idx ->
            if not (Intmat.equal f_r f_lhs) then
              fail
                (Non_uniform
                   (Printf.sprintf "%s and %s access %s with different index matrices"
                      (ref_to_string st.lhs nest) rname r.array_name));
            let diff =
              Array.init (Array.length off_lhs) (fun i -> Zint.sub off_lhs.(i) off_r.(i))
            in
            let kernel = List.map Intvec.normalize_sign (Hnf.kernel_basis f_lhs) in
            if Array.for_all Zint.is_zero diff then begin
              if kernel = [] then
                fail
                  (Non_uniform (Printf.sprintf "%s reads exactly the element it writes" rname));
              List.iter (fun g -> add_static g (Printf.sprintf "accumulation of %s" rname)) kernel
            end
            else begin
              match solve_integral f_lhs diff with
              | None ->
                fail
                  (Non_uniform
                     (Printf.sprintf "offset between %s and %s has no integral solution"
                        (ref_to_string st.lhs nest) rname))
              | Some d ->
                add_static d (Printf.sprintf "flow from %s" rname);
                List.iter (fun g -> add_static g (Printf.sprintf "reuse of %s" rname)) kernel
            end
          | Some writer_idx ->
            let wst = stmts.(writer_idx) in
            let f_w, off_w = access_of_ref nest wst.lhs in
            if not (Intmat.equal f_r f_w) then
              fail
                (Non_uniform
                   (Printf.sprintf "%s and %s access %s with different index matrices"
                      (ref_to_string wst.lhs nest) rname r.array_name));
            if Hnf.kernel_basis f_w <> [] then
              fail
                (Non_uniform
                   (Printf.sprintf
                      "cross-statement access %s has ambiguous writers (non-injective %s)"
                      rname
                      (ref_to_string wst.lhs nest)));
            let diff =
              Array.init (Array.length off_w) (fun i -> Zint.sub off_w.(i) off_r.(i))
            in
            (match solve_integral f_w diff with
            | None ->
              fail
                (Non_uniform
                   (Printf.sprintf "offset between %s and %s has no integral solution"
                      (ref_to_string wst.lhs nest) rname))
            | Some raw ->
              cross :=
                {
                  writer = writer_idx;
                  reader = reader_idx;
                  raw;
                  label =
                    Printf.sprintf "cross flow %s -> statement %d" rname (reader_idx + 1);
                }
                :: !cross))
        st.rhs_refs)
    stmts;
  let static = List.rev !static in
  let cross = List.rev !cross in
  (* Choose alignment offsets (first statement pinned at zero). *)
  let offsets = Array.make ns (Array.make nv 0) in
  if ns > 1 && cross <> [] then begin
    let b = alignment_bound in
    let best = ref None in
    let candidate = Array.init ns (fun _ -> Array.make nv 0) in
    let aligned_dep (c : cross_dep) =
      Array.init nv (fun r ->
          Zint.add c.raw.(r)
            (Zint.of_int (candidate.(c.reader).(r) - candidate.(c.writer).(r))))
    in
    let evaluate () =
      let ok = ref true in
      let cost = ref 0 in
      let deps = ref [] in
      List.iter
        (fun c ->
          let d = aligned_dep c in
          if Intvec.is_zero d then begin
            if c.writer >= c.reader then ok := false
          end
          else begin
            cost := !cost + l1_norm d;
            deps := d :: !deps
          end)
        cross;
      if !ok then begin
        let all = List.map fst static @ !deps in
        if schedulable nv all then begin
          (* Secondary criterion: prefer small offsets, so that the
             zero alignment wins all else being equal. *)
          let offcost =
            Array.fold_left
              (fun acc o -> Array.fold_left (fun a x -> a + abs x) acc o)
              0 candidate
          in
          match !best with
          | Some ((bcost, boff), _) when (bcost, boff) <= (!cost, offcost) -> ()
          | Some _ | None ->
            best := Some ((!cost, offcost), Array.map Array.copy candidate)
        end
      end
    in
    (* Enumerate offsets for statements 1..ns-1. *)
    let rec go s coord =
      if s = ns then evaluate ()
      else if coord = nv then go (s + 1) 0
      else
        for v = -b to b do
          candidate.(s).(coord) <- v;
          go s (coord + 1);
          candidate.(s).(coord) <- 0
        done
    in
    go 1 0;
    match !best with
    | Some (_, chosen) -> Array.blit chosen 0 offsets 0 ns
    | None ->
      fail
        (No_alignment
           (Printf.sprintf "searched offsets up to +/-%d in %d dimensions" b nv))
  end;
  (* Final dependence list. *)
  let deps : (Intvec.t * string) list ref = ref [] in
  let add d why =
    if not (Intvec.is_zero d) then
      match List.find_opt (fun (d', _) -> Intvec.equal d' d) !deps with
      | Some _ -> ()
      | None -> deps := (d, why) :: !deps
  in
  List.iter (fun (d, why) -> add d why) static;
  List.iter
    (fun (c : cross_dep) ->
      let d =
        Array.init nv (fun r ->
            Zint.add c.raw.(r) (Zint.of_int (offsets.(c.reader).(r) - offsets.(c.writer).(r))))
      in
      add d c.label)
    cross;
  let deps = List.rev !deps in
  if deps = [] then
    fail (Non_uniform "the statement induces no dependences (pointwise map)");
  let dependences = List.map (fun (d, _) -> Intvec.to_ints d) deps in
  let name = stmts.(0).lhs.array_name ^ "-nest" in
  {
    algorithm = Algorithm.make ~name ~index_set:(Index_set.make mu) ~dependences;
    loop_vars = nest.vars;
    shifts = Array.copy nest.lower;
    dependence_origin = deps;
    alignment =
      Array.to_list (Array.mapi (fun i o -> (stmts.(i).lhs.array_name, Array.copy o)) offsets);
  }

let parse ?alignment_bound src = analyze ?alignment_bound (parse_nest src)

let parse_result ?alignment_bound src =
  match parse ?alignment_bound src with
  | a -> Ok a
  | exception Error e -> Error e

let pp_analysis fmt a =
  Format.fprintf fmt "@[<v>algorithm %s: n = %d, |J| = %d@," a.algorithm.Algorithm.name
    (Algorithm.dim a.algorithm)
    (Index_set.cardinal a.algorithm.Algorithm.index_set);
  Format.fprintf fmt "loop variables: %s@," (String.concat ", " a.loop_vars);
  if List.length a.alignment > 1 then
    List.iter
      (fun (name, o) ->
        Format.fprintf fmt "alignment %s: (%s)@," name
          (String.concat "," (Array.to_list (Array.map string_of_int o))))
      a.alignment;
  List.iter
    (fun (d, why) -> Format.fprintf fmt "d = %s  (%s)@," (Intvec.to_string d) why)
    a.dependence_origin;
  Format.fprintf fmt "@]"
