(** A small front end from nested-loop programs to uniform dependence
    algorithms — the program class of Definition 2.1's discussion:
    "a single statement appears in the body of a multiply nested loop
    and the indices of the variable in the left hand side differ by a
    constant from the corresponding indices in each reference to the
    same variable in the right hand side".

    Input syntax (whitespace-insensitive):

    {v
    for i = 0..4, j = 0..4, k = 0..4 {
      C[i,j] = C[i,j] + A[i,k] * B[k,j]
    }
    v}

    Index expressions are affine in the loop variables with integer
    coefficients ([i], [i-1], [2*i+k-3], ...).  Loop lower bounds may
    be any integer; the index set is shifted to start at 0
    (Assumption 2.1).

    Dependence extraction:
    - a right-hand-side reference to the {e same} array as the left
      side induces the flow dependence [d] with [F d = f_lhs - f_rhs]
      (solved exactly over the integers through the Hermite normal
      form of the shared access matrix [F]), plus one accumulation /
      broadcast dependence per generator of [ker F] — e.g.
      [C[i,j] = C[i,j] + ...] yields the [e_k] accumulation vector;
    - a reference to a {e different} array (a pure input) is localized:
      the value is reused along [ker F], so one propagation dependence
      per kernel generator is emitted ([A[i,k]] in matmul rides along
      [e_j]); an injective access needs no dependence.

    Kernel generators are oriented lexicographically positive, and
    duplicate dependences are merged.

    {b Multiple statements} (the paper's pointer to the alignment
    method of [14]/[24]) are separated by [';']:

    {v
    for i = 0..4, j = 0..4 {
      B[i,j] = A[i,j] + A[i,j];
      C[i,j] = B[i,j] + B[i-1,j]
    }
    v}

    The statements are fused into one uniform dependence body per
    index point; each statement [s] receives an integral alignment
    offset [o_s] (the first statement is pinned at 0) and every
    cross-statement flow dependence becomes
    [d_raw + o_reader - o_writer].  Offsets are chosen to minimize the
    total L1 length of the cross dependences, subject to validity
    (a zero dependence is only allowed when the writer precedes the
    reader in the body) and schedulability (some [Pi D > 0] must
    exist). *)

type error =
  | Parse_error of string        (** Syntax error with position info. *)
  | Non_uniform of string        (** Same-array accesses whose matrices differ,
                                     offsets with no integral solution,
                                     ambiguous or duplicate writers. *)
  | Unknown_variable of string
  | Empty_index_set of string
  | No_alignment of string       (** No valid statement alignment in the
                                     searched offset range. *)

exception Error of error

val error_to_string : error -> string

(** The analyzed program. *)
type analysis = {
  algorithm : Algorithm.t;
  loop_vars : string list;
  shifts : int array;
  (** Amount subtracted from each loop variable to normalize lower
      bounds to 0. *)
  dependence_origin : (Intvec.t * string) list;
  (** For each dependence column: which reference produced it and
      why (flow / accumulation / input reuse / cross-statement flow). *)
  alignment : (string * int array) list;
  (** Chosen alignment offset per statement (keyed by the written
      array); all zeros for single-statement programs. *)
}

val parse : ?alignment_bound:int -> string -> analysis
(** @raise Error on malformed or non-uniform programs.
    [alignment_bound] (default 2) bounds the per-coordinate magnitude
    of the searched statement offsets. *)

val parse_result : ?alignment_bound:int -> string -> (analysis, error) Stdlib.result

val pp_analysis : Format.formatter -> analysis -> unit
