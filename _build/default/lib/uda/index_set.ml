type t = { mu : int array }

let make mu =
  if Array.length mu = 0 || Array.exists (fun m -> m < 1) mu then
    invalid_arg "Index_set.make: bounds must be >= 1";
  { mu = Array.copy mu }

let cube ~n ~mu = make (Array.make n mu)

let dim t = Array.length t.mu
let bounds t = Array.copy t.mu
let bound t i = t.mu.(i)

let cardinal t = Array.fold_left (fun acc m -> acc * (m + 1)) 1 t.mu

let contains t j =
  Array.length j = dim t
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x < 0 || x > t.mu.(i) then ok := false) j;
  !ok

let iter f t =
  let n = dim t in
  let j = Array.make n 0 in
  let rec go i =
    if i = n then f j
    else
      for x = 0 to t.mu.(i) do
        j.(i) <- x;
        go (i + 1)
      done
  in
  go 0

let fold f init t =
  let acc = ref init in
  iter (fun j -> acc := f !acc j) t;
  !acc

let to_list t = List.rev (fold (fun acc j -> Array.copy j :: acc) [] t)

let pp_point fmt j =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") Format.pp_print_int)
    (Array.to_list j)

let pp fmt t =
  Format.fprintf fmt "{0..%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "}x{0..") Format.pp_print_int)
    (Array.to_list t.mu)
