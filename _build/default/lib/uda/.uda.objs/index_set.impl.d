lib/uda/index_set.ml: Array Format List
