lib/uda/algorithm.mli: Format Index_set Intmat Intvec
