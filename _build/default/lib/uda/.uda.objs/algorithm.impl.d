lib/uda/algorithm.ml: Array Format Hashtbl Index_set Intmat Intvec List Zint
