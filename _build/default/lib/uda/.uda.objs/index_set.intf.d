lib/uda/index_set.mli: Format
