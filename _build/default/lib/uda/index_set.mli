(** Constant-bounded index sets (Assumption 2.1 / Equation 2.5):
    [J = { j ∈ Z^n : 0 <= j_i <= mu_i }].

    Index points are plain [int array]s of length [dim]; they are small
    and live in the iteration space, unlike the {!Zint}-valued vectors
    of the mapping machinery. *)

type t

val make : int array -> t
(** [make mu] with every [mu_i >= 1].
    @raise Invalid_argument otherwise. *)

val cube : n:int -> mu:int -> t
(** [cube ~n ~mu] is the n-dimensional index set with all bounds [mu]. *)

val dim : t -> int
val bounds : t -> int array
(** A fresh copy of the upper bounds [mu]. *)

val bound : t -> int -> int
val cardinal : t -> int
val contains : t -> int array -> bool

val iter : (int array -> unit) -> t -> unit
(** Iterate over all index points in lexicographic order.  The array
    passed to the callback is reused; copy it to keep it. *)

val fold : ('a -> int array -> 'a) -> 'a -> t -> 'a
val to_list : t -> int array list

val pp : Format.formatter -> t -> unit
val pp_point : Format.formatter -> int array -> unit
