(** Uniform dependence algorithms (Definition 2.1): the pair [(J, D)]
    of a constant-bounded index set and an n×m integer dependence
    matrix, plus optional per-point semantics used by the systolic
    simulator and the reference evaluator.

    The computation at [j ∈ J] depends on the computations at
    [j - d_i] for every dependence column [d_i]; when [j - d_i] falls
    outside [J] the operand is an external input supplied by the
    semantics' [boundary] function. *)

type t = {
  name : string;
  index_set : Index_set.t;
  dependences : Intmat.t;  (** n×m; columns are the dependence vectors. *)
}

val make : name:string -> index_set:Index_set.t -> dependences:int list list -> t
(** [dependences] is given as a list of m column vectors of length n.
    @raise Invalid_argument on dimension mismatch. *)

val dim : t -> int
(** Algorithm dimension [n]. *)

val num_dependences : t -> int
(** [m], the number of dependence vectors. *)

val dependence : t -> int -> int array
(** [dependence a i] is column [d_i] as native ints. *)

val predecessor : t -> int array -> int -> int array
(** [predecessor a j i] is [j - d_i] (may fall outside [J]). *)

(** Per-point semantics for executing the algorithm.  ['v] is the value
    type carried between computations. *)
type 'v semantics = {
  boundary : int array -> int -> 'v;
  (** [boundary j i] is the external input standing in for the value of
      [j - d_i] when that point is outside [J]. *)
  compute : int array -> 'v array -> 'v;
  (** [compute j operands] where [operands.(i)] is the value of
      [j - d_i] (or the boundary input). *)
  equal_value : 'v -> 'v -> bool;
  pp_value : Format.formatter -> 'v -> unit;
}

val evaluate : t -> 'v semantics -> int array -> 'v
(** Reference evaluator: the value computed at a point, by memoized
    recursion along the dependences.  Used as ground truth against the
    systolic simulator.
    @raise Invalid_argument if the point lies outside [J].
    @raise Failure on cyclic dependences. *)

val evaluate_all : t -> 'v semantics -> (int array -> 'v)
(** Evaluate the whole index set once; the returned function looks
    values up in O(1).  @raise as {!evaluate}. *)

val is_acyclic_witness : t -> Intvec.t -> bool
(** [is_acyclic_witness a pi] checks [pi D > 0], i.e. [pi] is a valid
    linear schedule direction proving the dependence graph acyclic. *)
