type t = {
  name : string;
  index_set : Index_set.t;
  dependences : Intmat.t;
}

let make ~name ~index_set ~dependences =
  let n = Index_set.dim index_set in
  if dependences = [] then invalid_arg "Algorithm.make: no dependences";
  if List.exists (fun d -> List.length d <> n) dependences then
    invalid_arg "Algorithm.make: dependence arity mismatch";
  (* Columns are given; build the n×m matrix. *)
  let cols = List.map Intvec.of_ints dependences in
  { name; index_set; dependences = Intmat.of_cols cols }

let dim a = Index_set.dim a.index_set
let num_dependences a = Intmat.cols a.dependences

let dependence a i =
  Array.init (dim a) (fun r -> Zint.to_int (Intmat.get a.dependences r i))

let predecessor a j i =
  let d = dependence a i in
  Array.mapi (fun r x -> x - d.(r)) j

type 'v semantics = {
  boundary : int array -> int -> 'v;
  compute : int array -> 'v array -> 'v;
  equal_value : 'v -> 'v -> bool;
  pp_value : Format.formatter -> 'v -> unit;
}

type status = In_progress | Done

let evaluate_memo a sem =
  let table : (int list, 'v) Hashtbl.t = Hashtbl.create 1024 in
  let state : (int list, status) Hashtbl.t = Hashtbl.create 1024 in
  let m = num_dependences a in
  let rec value j =
    let key = Array.to_list j in
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
      (match Hashtbl.find_opt state key with
      | Some In_progress -> failwith "Algorithm.evaluate: cyclic dependences"
      | Some Done | None -> ());
      Hashtbl.replace state key In_progress;
      let operands =
        Array.init m (fun i ->
            let p = predecessor a j i in
            if Index_set.contains a.index_set p then value p else sem.boundary j i)
      in
      let v = sem.compute j operands in
      Hashtbl.replace state key Done;
      Hashtbl.replace table key v;
      v
  in
  value

let evaluate a sem j =
  if not (Index_set.contains a.index_set j) then
    invalid_arg "Algorithm.evaluate: point outside the index set";
  evaluate_memo a sem j

let evaluate_all a sem =
  let value = evaluate_memo a sem in
  Index_set.iter (fun j -> ignore (value (Array.copy j))) a.index_set;
  fun j ->
    if not (Index_set.contains a.index_set j) then
      invalid_arg "Algorithm.evaluate_all: point outside the index set";
    value j

let is_acyclic_witness a pi =
  let prod = Intvec.(dim pi) in
  if prod <> dim a then invalid_arg "Algorithm.is_acyclic_witness: arity mismatch";
  let res = Intmat.vec_mul pi a.dependences in
  Array.for_all (fun x -> Zint.sign x > 0) res
