type t = {
  processors : int;
  makespan : int;
  computations : int;
  utilization : float;
  max_pe_load : int;
  min_pe_load : int;
  peak_parallelism : int;
  wire_length : int;
}

let pe_loads (alg : Algorithm.t) tm =
  let counts = Hashtbl.create 256 in
  Index_set.iter
    (fun j ->
      let pe = Tmap.space_of tm j in
      let key = Array.to_list pe in
      Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0))
    alg.Algorithm.index_set;
  List.sort compare
    (Hashtbl.fold (fun key c acc -> (Array.of_list key, c) :: acc) counts [])

let compute (alg : Algorithm.t) tm =
  let loads = pe_loads alg tm in
  let processors = List.length loads in
  let computations = Index_set.cardinal alg.Algorithm.index_set in
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let makespan = Schedule.total_time ~mu tm.Tmap.pi in
  let per_cycle = Hashtbl.create 256 in
  Index_set.iter
    (fun j ->
      let time = Tmap.time_of tm j in
      Hashtbl.replace per_cycle time (1 + try Hashtbl.find per_cycle time with Not_found -> 0))
    alg.Algorithm.index_set;
  let peak_parallelism = Hashtbl.fold (fun _ c acc -> max acc c) per_cycle 0 in
  let max_pe_load = List.fold_left (fun acc (_, c) -> max acc c) 0 loads in
  let min_pe_load = List.fold_left (fun acc (_, c) -> min acc c) max_int loads in
  let sd = Intmat.mul tm.Tmap.s alg.Algorithm.dependences in
  let wire_length =
    let acc = ref 0 in
    for i = 0 to Intmat.cols sd - 1 do
      for r = 0 to Intmat.rows sd - 1 do
        acc := !acc + abs (Zint.to_int (Intmat.get sd r i))
      done
    done;
    !acc
  in
  {
    processors;
    makespan;
    computations;
    utilization =
      (if processors = 0 || makespan = 0 then 0.
       else float_of_int computations /. float_of_int (processors * makespan));
    max_pe_load;
    min_pe_load;
    peak_parallelism;
    wire_length;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>processors       %d@,makespan         %d@,computations     %d@,\
     utilization      %.3f@,PE load          %d..%d@,peak parallelism %d@,\
     wire length      %d@]"
    s.processors s.makespan s.computations s.utilization s.min_pe_load s.max_pe_load
    s.peak_parallelism s.wire_length
