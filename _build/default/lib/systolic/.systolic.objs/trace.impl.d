lib/systolic/trace.ml: Algorithm Array Buffer Exec Hashtbl List Printf String Tmap
