lib/systolic/stats.ml: Algorithm Array Format Hashtbl Index_set Intmat List Schedule Tmap Zint
