lib/systolic/linkcheck.mli: Algorithm Intvec Tmap
