lib/systolic/exec.ml: Algorithm Array Hashtbl Index_set Intmat Intvec List Schedule Tmap Zint
