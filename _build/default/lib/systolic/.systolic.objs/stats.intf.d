lib/systolic/stats.mli: Algorithm Format Tmap
