lib/systolic/exec.mli: Algorithm Intmat Tmap
