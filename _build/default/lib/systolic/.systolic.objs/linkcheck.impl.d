lib/systolic/linkcheck.ml: Algorithm Array Conflict Exec Hnf Index_set Intmat Intvec List Lll Qnum Ratmat Stdlib Tmap Zint
