lib/systolic/trace.mli: Algorithm Tmap
