(** Array-level statistics of a mapping — the quantities Problem 6.1's
    cost function and the paper's VLSI-area discussion (Section 2) talk
    about, computed exactly from the schedule. *)

type t = {
  processors : int;
  makespan : int;
  computations : int;
  utilization : float;        (** computations / (processors * makespan). *)
  max_pe_load : int;          (** Firings of the busiest PE. *)
  min_pe_load : int;          (** Firings of the laziest used PE. *)
  peak_parallelism : int;     (** Most PEs firing in one cycle. *)
  wire_length : int;          (** Σ_i ||S d_i||₁ over the dependences. *)
}

val compute : Algorithm.t -> Tmap.t -> t

val pe_loads : Algorithm.t -> Tmap.t -> (int array * int) list
(** Firing count per PE, sorted by PE coordinates. *)

val pp : Format.formatter -> t -> unit
