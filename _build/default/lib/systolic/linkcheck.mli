(** Analytical data-link collision prediction — the condition of [23]
    that the paper discusses alongside computational conflicts
    (Section 5 and appendix: "data link collisions occur only if data
    use links more than once when passing from the source to the
    destination").

    Under the canonical movement policy (one interconnection primitive
    per cycle along the routed path, then destination buffering —
    exactly what {!Exec} simulates), two data of the same dependence
    stream occupy the same directed link of the same PE at the same
    cycle iff there are two positions [l1 < l2] of the hop sequence
    using the same primitive and two emitting points [j1, j2] with

    [T (j1 - j2) = (P_{l2} - P_{l1} ; l2 - l1)]

    where [P_l] is the partial displacement after [l] hops.  This
    module decides that condition exactly by searching the affine
    lattice [{delta : T delta = target}] inside the difference box of
    the emitting set — no simulation involved.  Property tests check
    it against {!Exec}'s observed collisions. *)

type prediction = {
  stream : int;                   (** Dependence index. *)
  hop_positions : int * int;      (** The colliding pair [l1 < l2]. *)
  delta : Intvec.t;               (** A witness difference [j1 - j2]. *)
}

val predict : Algorithm.t -> Tmap.t -> Tmap.routing -> prediction list
(** All colliding (stream, hop-pair) combinations with a witness each;
    empty iff the mapping is link-collision-free under this routing. *)

val single_use_per_link : Tmap.routing -> bool
(** The paper's sufficient condition: every routed path uses each
    primitive at most once (true whenever [K] has unit columns, e.g.
    [K = I] in Examples 5.1/5.2).  Implies [predict] returns []. *)
