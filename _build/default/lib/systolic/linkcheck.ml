type prediction = {
  stream : int;
  hop_positions : int * int;
  delta : Intvec.t;
}

let single_use_per_link (routing : Tmap.routing) =
  let k = routing.Tmap.k_matrix in
  let ok = ref true in
  for i = 0 to Intmat.cols k - 1 do
    for j = 0 to Intmat.rows k - 1 do
      if Zint.compare (Intmat.get k j i) Zint.one > 0 then ok := false
    done
  done;
  !ok

(* Find an integral point of {delta : T delta = target} with
   |delta_r| <= w_r, or None.  Same technique as the conflict oracles:
   particular solution + LLL-reduced kernel, coefficient enumeration
   with suffix pruning. *)
let affine_point_in_box t target w =
  let res = Hnf.compute t in
  let r = res.Hnf.rank in
  let n = Intmat.cols t in
  (* Particular solution via the full-column-rank head of H. *)
  let l = Ratmat.of_intmat (Intmat.sub_cols res.Hnf.h 0 (Stdlib.max r 1)) in
  let b = Array.map Qnum.of_zint target in
  let particular =
    if r = 0 then if Array.for_all Zint.is_zero target then Some (Intvec.zero n) else None
    else
      match Ratmat.solve l b with
      | None -> None
      | Some y when Array.for_all Qnum.is_integer y ->
        let ext = Array.make n Zint.zero in
        Array.iteri (fun i v -> ext.(i) <- Qnum.to_zint_exn v) y;
        Some (Intmat.mul_vec res.Hnf.u ext)
      | Some _ -> None
  in
  match particular with
  | None -> None
  | Some d0 -> (
    let kernel = List.init (n - r) (fun c -> Intmat.col res.Hnf.u (r + c)) in
    match kernel with
    | [] ->
      let fits = ref true in
      Array.iteri
        (fun i x -> if Zint.compare (Zint.abs x) (Zint.of_int w.(i)) > 0 then fits := false)
        d0;
      if !fits then Some d0 else None
    | kernel ->
      let basis = Array.of_list (Lll.reduce kernel) in
      let dker = Array.length basis in
      (* Coefficient bounds from the pseudo-inverse applied to the
         largest possible |delta - d0|. *)
      let btb =
        Ratmat.make dker dker (fun i j -> Qnum.of_zint (Intvec.dot basis.(i) basis.(j)))
      in
      let inv =
        match Ratmat.inverse btb with
        | Some m -> m
        | None -> invalid_arg "Linkcheck: dependent kernel basis"
      in
      let p i j =
        let acc = ref Qnum.zero in
        for m = 0 to dker - 1 do
          acc := Qnum.add !acc (Qnum.mul inv.(i).(m) (Qnum.of_zint basis.(m).(j)))
        done;
        !acc
      in
      let bound =
        Array.init dker (fun i ->
            let acc = ref Qnum.zero in
            for j = 0 to n - 1 do
              let reach = Zint.add (Zint.of_int w.(j)) (Zint.abs d0.(j)) in
              acc := Qnum.add !acc (Qnum.mul_zint (Qnum.abs (p i j)) reach)
            done;
            Zint.to_int (Qnum.floor !acc))
      in
      let brow = Array.map (fun v -> Array.map Zint.to_int v) basis in
      let d0i = Array.map Zint.to_int d0 in
      let suffix =
        Array.init n (fun rr ->
            let s = Array.make (dker + 1) 0 in
            for i = dker - 1 downto 0 do
              s.(i) <- s.(i + 1) + (abs brow.(i).(rr) * bound.(i))
            done;
            s)
      in
      let gamma = Array.copy d0i in
      let found = ref None in
      let exception Stop in
      let rec go i =
        if i = dker then begin
          let ok = ref true in
          for rr = 0 to n - 1 do
            if abs gamma.(rr) > w.(rr) then ok := false
          done;
          if !ok then begin
            found := Some (Array.map Zint.of_int gamma);
            raise Stop
          end
        end
        else
          for v = -bound.(i) to bound.(i) do
            let ok = ref true in
            for rr = 0 to n - 1 do
              let s = gamma.(rr) + (brow.(i).(rr) * v) in
              if abs s > w.(rr) + suffix.(rr).(i + 1) then ok := false
            done;
            if !ok then begin
              for rr = 0 to n - 1 do
                gamma.(rr) <- gamma.(rr) + (brow.(i).(rr) * v)
              done;
              go (i + 1);
              for rr = 0 to n - 1 do
                gamma.(rr) <- gamma.(rr) - (brow.(i).(rr) * v)
              done
            end
          done
      in
      (try go 0 with Stop -> ());
      !found)

let predict (alg : Algorithm.t) tm (routing : Tmap.routing) =
  let n = Algorithm.dim alg in
  let m = Algorithm.num_dependences alg in
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let t = Tmap.matrix tm in
  let k = Tmap.k tm in
  let pmat = Tmap.nearest_neighbor_primitives (k - 1) in
  let prim_vec prim = Array.init (k - 1) (fun r -> Zint.to_int (Intmat.get pmat r prim)) in
  let results = ref [] in
  for i = 0 to m - 1 do
    let d = Algorithm.dependence alg i in
    (* Emitting set: j and j + d_i both in J; a box of these widths. *)
    let widths = Array.init n (fun r -> mu.(r) - abs d.(r)) in
    if Array.for_all (fun x -> x >= 0) widths then begin
      let prims = Array.of_list (Exec.route_primitives routing i) in
      let h = Array.length prims in
      (* Same-hop-position collisions (l1 = l2): two emitters at the
         same time on the same PE, i.e. a computational conflict
         restricted to the emitting box.  Conflict-free mappings never
         trigger this branch. *)
      if h > 0 then begin
        match Conflict.conflict_in_lattice ~mu:widths (Hnf.kernel_basis t) with
        | Some delta -> results := { stream = i; hop_positions = (0, 0); delta } :: !results
        | None -> ()
      end;
      (* Partial displacements D_l. *)
      let disp = Array.make (h + 1) (Array.make (k - 1) 0) in
      for l = 0 to h - 1 do
        let pv = prim_vec prims.(l) in
        disp.(l + 1) <- Array.mapi (fun r x -> x + pv.(r)) disp.(l)
      done;
      for l1 = 0 to h - 1 do
        for l2 = l1 + 1 to h - 1 do
          if prims.(l1) = prims.(l2) then begin
            (* target = (D_{l2} - D_{l1} ; l2 - l1) as a k-vector. *)
            let target =
              Array.init k (fun r ->
                  if r < k - 1 then Zint.of_int (disp.(l2).(r) - disp.(l1).(r))
                  else Zint.of_int (l2 - l1))
            in
            match affine_point_in_box t target widths with
            | Some delta ->
              results := { stream = i; hop_positions = (l1, l2); delta } :: !results
            | None -> ()
          end
        done
      done
    end
  done;
  List.rev !results
