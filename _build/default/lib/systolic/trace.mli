(** Render Figure-3-style execution tables: processors down the side,
    time across the top, the index point fired in each cell.

    Only sensible for linear arrays (1-dimensional PE coordinates);
    higher-dimensional arrays get the flat [time -> firings] listing. *)

val linear_array_table : Algorithm.t -> Tmap.t -> string
(** @raise Invalid_argument when the array is not 1-dimensional. *)

val firing_list : Algorithm.t -> Tmap.t -> string
(** One line per cycle: [t=..: pe(..) <- (j); ...]. *)

val grid_snapshot : Algorithm.t -> Tmap.t -> time:int -> string
(** For 2-dimensional arrays: the PE grid at one cycle, active PEs
    showing the index point they fire, idle PEs showing dots.
    @raise Invalid_argument when the array is not 2-dimensional. *)

val grid_activity : Algorithm.t -> Tmap.t -> string
(** For 2-dimensional arrays: the PE grid with each cell showing how
    many firings that PE performs over the whole run — a load map.
    @raise Invalid_argument when the array is not 2-dimensional. *)
