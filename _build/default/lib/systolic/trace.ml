let point_to_string j =
  "("
  ^ String.concat "," (Array.to_list (Array.map string_of_int j))
  ^ ")"

let linear_array_table (alg : Algorithm.t) tm =
  if Tmap.k tm <> 2 then
    invalid_arg "Trace.linear_array_table: array is not 1-dimensional";
  let table = Exec.schedule_table alg tm in
  let times = List.map fst table in
  let tmin = List.fold_left min max_int times in
  let tmax = List.fold_left max min_int times in
  let pes =
    List.sort_uniq compare
      (List.concat_map (fun (_, evs) -> List.map (fun (pe, _) -> pe.(0)) evs) table)
  in
  let cell = Hashtbl.create 256 in
  List.iter
    (fun (t, evs) ->
      List.iter (fun (pe, j) -> Hashtbl.replace cell (t, pe.(0)) (point_to_string j)) evs)
    table;
  let width =
    Hashtbl.fold (fun _ s acc -> max acc (String.length s)) cell 4
  in
  let buf = Buffer.create 4096 in
  let pad s = Printf.sprintf "%*s" width s in
  Buffer.add_string buf (Printf.sprintf "%6s |" "PE\\t");
  for t = tmin to tmax do
    Buffer.add_string buf (" " ^ pad (string_of_int t))
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (8 + ((tmax - tmin + 1) * (width + 1))) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun pe ->
      Buffer.add_string buf (Printf.sprintf "%6d |" pe);
      for t = tmin to tmax do
        let s = try Hashtbl.find cell (t, pe) with Not_found -> "" in
        Buffer.add_string buf (" " ^ pad s)
      done;
      Buffer.add_char buf '\n')
    pes;
  Buffer.contents buf

let grid_bounds cells =
  List.fold_left
    (fun (x0, x1, y0, y1) (pe : int array) ->
      (min x0 pe.(0), max x1 pe.(0), min y0 pe.(1), max y1 pe.(1)))
    (max_int, min_int, max_int, min_int)
    cells

let render_grid ~cell_width cells lookup =
  let x0, x1, y0, y1 = grid_bounds cells in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%*s" (cell_width + 1) "");
  for y = y0 to y1 do
    Buffer.add_string buf (Printf.sprintf " %*d" cell_width y)
  done;
  Buffer.add_char buf '\n';
  for x = x0 to x1 do
    Buffer.add_string buf (Printf.sprintf "%*d " cell_width x);
    for y = y0 to y1 do
      Buffer.add_string buf (Printf.sprintf " %*s" cell_width (lookup x y))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let require_2d tm name = if Tmap.k tm <> 3 then invalid_arg (name ^ ": array is not 2-dimensional")

let grid_snapshot (alg : Algorithm.t) tm ~time =
  require_2d tm "Trace.grid_snapshot";
  let table = Exec.schedule_table alg tm in
  let all_pes =
    List.concat_map (fun (_, evs) -> List.map (fun (pe, _) -> pe) evs) table
  in
  let firing = Hashtbl.create 64 in
  (match List.assoc_opt time table with
  | Some evs ->
    List.iter (fun (pe, j) -> Hashtbl.replace firing (pe.(0), pe.(1)) (point_to_string j)) evs
  | None -> ());
  let width =
    Hashtbl.fold (fun _ s acc -> max acc (String.length s)) firing 3
  in
  render_grid ~cell_width:width all_pes (fun x y ->
      match Hashtbl.find_opt firing (x, y) with Some s -> s | None -> ".")

let grid_activity (alg : Algorithm.t) tm =
  require_2d tm "Trace.grid_activity";
  let table = Exec.schedule_table alg tm in
  let counts = Hashtbl.create 64 in
  let all_pes =
    List.concat_map (fun (_, evs) -> List.map (fun (pe, _) -> pe) evs) table
  in
  List.iter
    (fun pe ->
      let key = (pe.(0), pe.(1)) in
      Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0))
    all_pes;
  let width =
    Hashtbl.fold (fun _ c acc -> max acc (String.length (string_of_int c))) counts 1
  in
  render_grid ~cell_width:width all_pes (fun x y ->
      match Hashtbl.find_opt counts (x, y) with Some c -> string_of_int c | None -> ".")

let firing_list (alg : Algorithm.t) tm =
  let table = Exec.schedule_table alg tm in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (t, evs) ->
      Buffer.add_string buf (Printf.sprintf "t=%3d:" t);
      List.iter
        (fun (pe, j) ->
          Buffer.add_string buf
            (Printf.sprintf " %s<-%s" (point_to_string pe) (point_to_string j)))
        evs;
      Buffer.add_char buf '\n')
    table;
  Buffer.contents buf
