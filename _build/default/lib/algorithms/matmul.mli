(** The matrix multiplication algorithm as a uniform dependence
    algorithm (Examples 3.1 and 5.1).

    [C = A B] on (mu+1)×(mu+1) matrices over the 3-dimensional cube
    [J = [0, mu]^3] with dependence matrix [D = I]: the columns
    [d_1 = e_1], [d_2 = e_2], [d_3 = e_3] carry the [B], [A] and [C]
    streams respectively (the paper's convention).  Full integer
    semantics is provided, so the systolic simulation computes real
    products and checks them against direct multiplication. *)

val algorithm : mu:int -> Algorithm.t

type value = { a : int; b : int; c : int }

val semantics : a:int array array -> b:int array array -> value Algorithm.semantics
(** [a] and [b] must be (mu+1)×(mu+1); reads outside are errors. *)

val product_of_values : mu:int -> (int array -> value) -> int array array
(** Extract [C]: entry (i, j) is the [c] field at point [(i, j, mu)]. *)

val reference_product : int array array -> int array array -> int array array
(** Direct O(n³) multiplication, the ground truth. *)

val random_matrix : rng:Random.State.t -> int -> int array array

(** {1 The paper's mappings (Example 5.1)} *)

val paper_s : Intmat.t
(** [S = [1, 1, -1]], the space mapping of [23] reused by the paper. *)

val optimal_pi : mu:int -> Intvec.t
(** [Pi° = [1, mu, 1]] — total time [mu(mu+2) + 1]. *)

val lee_kedem_pi : mu:int -> Intvec.t
(** [Pi' = [2, 1, mu]] of [23] — total time [mu(mu+3) + 1]. *)

val optimal_total_time : mu:int -> int
val lee_kedem_total_time : mu:int -> int
