(** 2-D convolution as a 4-dimensional uniform dependence algorithm —
    the word-level stand-in for the paper's motivating "4-dimensional
    bit-level convolution" (Section 3; see DESIGN.md substitutions).

    [y(i,j) = Σ_{p,q} ker(p,q) * img(i-p, j-q)] on the index cube
    [(i, j, p, q) ∈ [0,mu_i]×[0,mu_j]×[0,mu_p]×[0,mu_q]], with six
    uniform dependences:

    - [d_1 = (0,0,0,1)]: partial sum along [q];
    - [d_2 = (0,0,1,-mu_q)]: row-sum carry from [(p-1, mu_q)] to [(p, 0)];
    - [d_3 = (1,0,0,0)], [d_4 = (0,1,0,0)]: kernel coefficient
      propagation (invariant in [i] and [j]);
    - [d_5 = (1,0,1,0)], [d_6 = (0,1,0,1)]: image pixel propagation
      (invariant along both diagonals).

    Being 4-dimensional with full integer semantics, this is the
    natural Theorem 3.1 workload: mapping it to a 2-D array uses
    [T ∈ Z^{3×4} = Z^{(n-1)×n}]. *)

val algorithm : mu_ij:int -> mu_pq:int -> Algorithm.t
(** Output size [mu_ij + 1] square, kernel size [mu_pq + 1] square. *)

type value = { y : int; k : int; x : int }

val semantics :
  ker:int array array -> img:int array array -> value Algorithm.semantics
(** Pixels outside the image are zero (zero padding). *)

val output_of_values : mu_ij:int -> mu_pq:int -> (int array -> value) -> int array array

val reference_convolution :
  ker:int array array -> img:int array array -> out_size:int -> int array array

val example_s : Intmat.t
(** A 2×4 space mapping onto a 2-D array used by the examples:
    [[1,0,1,0]; [0,1,0,1]] (output-plus-kernel projection). *)
