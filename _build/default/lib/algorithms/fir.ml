let algorithm ~mu_i ~mu_k =
  Algorithm.make ~name:"fir"
    ~index_set:(Index_set.make [| mu_i; mu_k |])
    ~dependences:[ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]

type value = { y : int; w : int; x : int }

let sample x i = if i < 0 || i >= Array.length x then 0 else x.(i)

let semantics ~w ~x =
  {
    Algorithm.boundary =
      (fun j i ->
        match i with
        | 0 -> { y = 0; w = 0; x = 0 }
        | 1 -> { y = 0; w = w.(j.(1)); x = 0 }
        | 2 -> { y = 0; w = 0; x = sample x (j.(0) - j.(1)) }
        | _ -> invalid_arg "Fir.semantics: bad dependence index");
    compute =
      (fun _ ops ->
        let w = ops.(1).w and x = ops.(2).x in
        { y = ops.(0).y + (w * x); w; x });
    equal_value = (fun a b -> a.y = b.y && a.w = b.w && a.x = b.x);
    pp_value = (fun fmt v -> Format.fprintf fmt "{y=%d}" v.y);
  }

let output_of_values ~mu_i ~mu_k value =
  Array.init (mu_i + 1) (fun i -> (value [| i; mu_k |]).y)

let reference_fir ~w ~x ~out_size =
  Array.init out_size (fun i ->
      let acc = ref 0 in
      Array.iteri (fun k wk -> acc := !acc + (wk * sample x (i - k))) w;
      !acc)
