(** LU decomposition dependence structure on the rectangular hull of
    its triangular index set — listed by the paper alongside matrix
    multiplication and convolution as a standard bit-level target
    (Section 1).

    The classic systolic LU recurrence updates
    [a(k+1; i, j) = a(k; i, j) - l(k; i) u(k; j)] with the pivot row
    and column propagating through the mesh; on the rectangular hull
    this gives the three unit dependences plus two diagonal propagation
    vectors.  Simulation uses the {!Dataflow} fingerprint semantics. *)

val algorithm : mu:int -> Algorithm.t

val example_s : Intmat.t
(** [S = [1, 0, 0]]: project onto the pivot axis (linear array). *)

(** {1 Executable variant}

    Gentleman-Kung-style LU without pivoting, made uniform on the cube
    [(k, i, j) ∈ [0,mu]^3] with [D = I]: the matrix state flows along
    [k] ([d_1]), the pivot row's [u(k,j)] values travel down the rows
    ([d_2]) and the multipliers [l(i,k)] travel across the columns
    ([d_3]).  Values are exact rationals ({!Qnum.t}), so the factors
    are checked by the identity [L U = A] — no numerics involved.
    Requires nonzero leading minors; {!random_dominant_matrix} supplies
    strictly diagonally dominant inputs. *)

val executable_algorithm : mu:int -> Algorithm.t

type value = { a : Qnum.t; u : Qnum.t; l : Qnum.t }

val semantics : a:Qnum.t array array -> value Algorithm.semantics
(** [a] must be (mu+1)×(mu+1) with nonzero leading principal minors. *)

val factors_of_values :
  mu:int -> (int array -> value) -> Qnum.t array array * Qnum.t array array
(** [(l, u)] with [l] unit lower triangular and [u] upper triangular. *)

val matmul_q : Qnum.t array array -> Qnum.t array array -> Qnum.t array array
val random_dominant_matrix : rng:Random.State.t -> int -> Qnum.t array array
