(** A 3-point explicit stencil (1-D heat/diffusion sweep) as a
    2-dimensional uniform dependence algorithm:

    [a(t, i) = c_l a(t-1, i-1) + c_c a(t-1, i) + c_r a(t-1, i+1)]

    on [(t, i) ∈ [0,mu_t] × [0,mu_i]], with the flow dependences
    [(1,1)], [(1,0)] and [(1,-1)] — exactly what the {!Loopnest} front
    end extracts from the corresponding source.  Full integer
    semantics: simulation computes real sweeps and is checked against
    a direct iteration.  Cells outside the rod are held at zero
    (absorbing boundary); row [t = 0] takes the initial values. *)

val algorithm : mu_t:int -> mu_i:int -> Algorithm.t

val semantics : coeffs:int * int * int -> initial:int array -> int Algorithm.semantics
(** [coeffs = (c_l, c_c, c_r)]; [initial] has [mu_i + 1] cells. *)

val row_of_values : mu_t:int -> mu_i:int -> (int array -> int) -> int array
(** The final row [t = mu_t]. *)

val reference_sweeps :
  coeffs:int * int * int -> initial:int array -> steps:int -> int array
(** Direct iteration, the ground truth. *)
