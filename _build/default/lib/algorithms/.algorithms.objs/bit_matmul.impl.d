lib/algorithms/bit_matmul.ml: Algorithm Array Format Index_set Intmat Random
