lib/algorithms/lu.ml: Algorithm Array Format Index_set Intmat Qnum Random
