lib/algorithms/convolution.ml: Algorithm Array Format Index_set Intmat
