lib/algorithms/bit_convolution.mli: Algorithm Intmat
