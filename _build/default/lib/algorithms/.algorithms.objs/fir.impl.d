lib/algorithms/fir.ml: Algorithm Array Format Index_set
