lib/algorithms/stencil.mli: Algorithm
