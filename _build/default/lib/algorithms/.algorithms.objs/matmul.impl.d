lib/algorithms/matmul.ml: Algorithm Array Format Index_set Intmat Intvec Random
