lib/algorithms/convolution.mli: Algorithm Intmat
