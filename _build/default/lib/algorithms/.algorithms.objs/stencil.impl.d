lib/algorithms/stencil.ml: Algorithm Array Format Index_set Int
