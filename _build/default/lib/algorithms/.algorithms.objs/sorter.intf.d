lib/algorithms/sorter.mli: Algorithm
