lib/algorithms/transitive_closure.mli: Algorithm Intmat Intvec
