lib/algorithms/dataflow.ml: Algorithm Array Format Index_set Int
