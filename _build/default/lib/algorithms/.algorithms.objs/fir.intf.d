lib/algorithms/fir.mli: Algorithm
