lib/algorithms/sorter.ml: Algorithm Array Format Index_set Int Stdlib
