lib/algorithms/bit_matmul.mli: Algorithm Intmat Random
