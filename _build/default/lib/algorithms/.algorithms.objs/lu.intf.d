lib/algorithms/lu.mli: Algorithm Intmat Qnum Random
