lib/algorithms/bit_convolution.ml: Algorithm Index_set Intmat
