lib/algorithms/dataflow.mli: Algorithm
