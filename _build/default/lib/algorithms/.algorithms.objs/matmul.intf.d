lib/algorithms/matmul.mli: Algorithm Intmat Intvec Random
