lib/algorithms/transitive_closure.ml: Algorithm Array Index_set Intmat Intvec
