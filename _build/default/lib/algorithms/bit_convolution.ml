let algorithm ~mu_sample ~mu_tap ~mu_bit =
  Algorithm.make ~name:"bit-convolution"
    ~index_set:(Index_set.make [| mu_sample; mu_tap; mu_bit; mu_bit |])
    ~dependences:
      [
        [ 0; 1; 0; 0 ];  (* partial-sum accumulation over the taps *)
        [ 0; 0; 1; 0 ];  (* carry chain along the coefficient-bit axis *)
        [ 0; 0; 0; 1 ];  (* carry chain along the input-bit axis *)
        [ 1; 0; 0; 0 ];  (* coefficient bits ride along the samples *)
        [ 1; 1; 0; 0 ];  (* input bits ride along the (i, k) diagonal *)
      ]

let bitplane_s = Intmat.of_ints [ [ 0; 0; 1; 0 ]; [ 0; 0; 0; 1 ] ]
