let algorithm ~steps ~cells =
  Algorithm.make ~name:"odd-even-sort"
    ~index_set:(Index_set.make [| steps; cells |])
    ~dependences:[ [ 1; 1 ]; [ 1; 0 ]; [ 1; -1 ] ]

(* At step t, cell i pairs with i+1 when (i + t) is even, with i-1 when
   odd; edge cells without a partner copy their value. *)
let semantics ~initial =
  let cells = Array.length initial - 1 in
  {
    Algorithm.boundary = (fun _ _ -> 0);
    compute =
      (fun j ops ->
        let t = j.(0) and i = j.(1) in
        if t = 0 then initial.(i)
        else if (i + t) mod 2 = 0 && i < cells then Stdlib.min ops.(1) ops.(2)
        else if (i + t) mod 2 = 1 && i > 0 then Stdlib.max ops.(0) ops.(1)
        else ops.(1));
    equal_value = Int.equal;
    pp_value = Format.pp_print_int;
  }

let row_of_values ~steps ~cells value =
  Array.init (cells + 1) (fun i -> value [| steps; i |])

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok
