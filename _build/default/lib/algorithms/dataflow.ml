(* 63-bit mixing in the spirit of the splitmix64 finalizer (constants
   truncated to OCaml's int range); good enough to make accidental
   fingerprint collisions vanishingly unlikely. *)
let mix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x3f58476d1ce4e5b9 in
  let h = h lxor (h lsr 27) in
  let h = h * 0x14d049bb133111eb in
  h lxor (h lsr 31)

let combine acc x = mix ((acc * 31) + x + 0x9e3779b9)

let point_tag j = Array.fold_left combine 0x12345 j

let semantics =
  {
    Algorithm.boundary = (fun j i -> mix (combine (point_tag j) (i + 7777)));
    compute = (fun j ops -> Array.fold_left combine (point_tag j) ops);
    equal_value = Int.equal;
    pp_value = (fun fmt v -> Format.fprintf fmt "%x" (v land 0xffffff));
  }

let fingerprint_all alg =
  let value = Algorithm.evaluate_all alg semantics in
  Index_set.fold (fun acc j -> combine acc (value j)) 0 alg.Algorithm.index_set
