(** Bit-level 1-D convolution as a 4-dimensional uniform dependence
    algorithm — the exact scenario Section 3 names for the Theorem 3.1
    machinery: "the mapping of 4-dimensional convolution algorithm at
    bit-level [26] into a 2-dimensional systolic array".

    Index point [(i, k, bw, bx)]: output sample [i], tap [k], bit [bw]
    of the coefficient, bit [bx] of the input sample.  Dependences:
    accumulation over taps, carry chains along both bit axes,
    coefficient-bit reuse along [i], and input-bit reuse along the
    [(1,1,0,0)] diagonal.  Being 4-dimensional, mapping it onto a 2-D
    array uses [T ∈ Z^{3×4} = Z^{(n-1)×n}] — the closed-form single
    conflict vector applies.  Simulation uses {!Dataflow} fingerprints
    (see DESIGN.md substitutions). *)

val algorithm : mu_sample:int -> mu_tap:int -> mu_bit:int -> Algorithm.t

val bitplane_s : Intmat.t
(** [S = [[0,0,1,0]; [0,0,0,1]]]: one PE per (coefficient-bit,
    input-bit) pair — the RAB-style bit-plane layout. *)
