let algorithm ~mu =
  Algorithm.make ~name:"lu-decomposition"
    ~index_set:(Index_set.cube ~n:3 ~mu)
    ~dependences:
      [
        [ 1; 0; 0 ];  (* element update from the previous elimination step *)
        [ 0; 1; 0 ];  (* pivot-row value sweeping down the rows *)
        [ 0; 0; 1 ];  (* pivot-column value sweeping across the columns *)
        [ 1; 1; 0 ];  (* multiplier l(k; i) reused on the next step's row *)
        [ 1; 0; 1 ];  (* pivot-row element u(k; j) reused likewise *)
      ]

let example_s = Intmat.of_ints [ [ 1; 0; 0 ] ]

let executable_algorithm ~mu =
  Algorithm.make ~name:"lu-executable"
    ~index_set:(Index_set.cube ~n:3 ~mu)
    ~dependences:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]

type value = { a : Qnum.t; u : Qnum.t; l : Qnum.t }

(* Point (k, i, j): [a] is the matrix entry (i, j) entering step k
   (i.e. after k-1 elimination steps), delivered along d_1; at the
   pivot row i = k it becomes the traveling u(k, j); at the pivot
   column j = k rows i > k compute their multiplier l(i, k) = a / u;
   interior points i, j > k update a <- a - l u. *)
let semantics ~a:matrix =
  let zero = { a = Qnum.zero; u = Qnum.zero; l = Qnum.zero } in
  {
    Algorithm.boundary =
      (fun j i ->
        match i with
        | 0 -> { zero with a = matrix.(j.(1)).(j.(2)) }
        | 1 | 2 -> zero
        | _ -> invalid_arg "Lu.semantics: bad dependence index");
    compute =
      (fun p ops ->
        let k = p.(0) and i = p.(1) and j = p.(2) in
        let a_in = ops.(0).a in
        let u = if i = k then a_in else ops.(1).u in
        let l =
          if j = k then
            if i > k then Qnum.div a_in u else Qnum.zero
          else ops.(2).l
        in
        let a = if i > k && j > k then Qnum.sub a_in (Qnum.mul l u) else a_in in
        { a; u; l });
    equal_value = (fun x y -> Qnum.equal x.a y.a && Qnum.equal x.u y.u && Qnum.equal x.l y.l);
    pp_value = (fun fmt v -> Format.fprintf fmt "{a=%a}" Qnum.pp v.a);
  }

let factors_of_values ~mu value =
  let n = mu + 1 in
  let l =
    Array.init n (fun i ->
        Array.init n (fun k ->
            if i = k then Qnum.one
            else if i > k then (value [| k; i; k |]).l
            else Qnum.zero))
  in
  let u =
    Array.init n (fun k ->
        Array.init n (fun j -> if j >= k then (value [| k; k; j |]).u else Qnum.zero))
  in
  (l, u)

let matmul_q a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref Qnum.zero in
          for k = 0 to n - 1 do
            acc := Qnum.add !acc (Qnum.mul a.(i).(k) b.(k).(j))
          done;
          !acc))

let random_dominant_matrix ~rng n =
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then Qnum.of_int ((10 * n) + Random.State.int rng 5)
          else Qnum.of_int (Random.State.int rng 9 - 4)))
