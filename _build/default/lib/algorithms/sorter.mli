(** Odd-even transposition sort as a 2-dimensional uniform dependence
    algorithm — the classic linear-systolic sorting network, and a
    workload whose semantics (compare-exchange) differs per point
    parity, exercising Definition 2.1's allowance for different
    functions [g_j] at different points.

    Index point [(t, i)]: the value held by cell [i] after step [t].
    At step [t], cells [i] and [i+1] with [i ≡ t (mod 2)] compare and
    exchange.  Dependences: [(1,-1)], [(1,0)], [(1,1)] — each cell
    reads its own and (at most) both neighbours' previous values and
    keeps min or max according to the parity.  After [n] steps the row
    is sorted (checked against [List.sort]). *)

val algorithm : steps:int -> cells:int -> Algorithm.t
(** [J = [0, steps] × [0, cells]]; sorting [cells + 1] values needs
    [steps >= cells]. *)

val semantics : initial:int array -> int Algorithm.semantics
(** [initial] has [cells + 1] entries, the row at [t = 0]. *)

val row_of_values : steps:int -> cells:int -> (int array -> int) -> int array

val is_sorted : int array -> bool
