let algorithm ~mu =
  Algorithm.make ~name:"transitive-closure"
    ~index_set:(Index_set.cube ~n:3 ~mu)
    ~dependences:
      [ [ 0; 0; 1 ]; [ 0; 1; 0 ]; [ 1; -1; -1 ]; [ 1; -1; 0 ]; [ 1; 0; -1 ] ]

let paper_s = Intmat.of_ints [ [ 0; 0; 1 ] ]
let optimal_pi ~mu = Intvec.of_ints [ mu + 1; 1; 1 ]
let prior_pi ~mu = Intvec.of_ints [ (2 * mu) + 1; 1; 1 ]
let optimal_total_time ~mu = (mu * (mu + 3)) + 1
let prior_total_time ~mu = (mu * ((2 * mu) + 3)) + 1

let warshall a =
  let n = Array.length a in
  let c = Array.map Array.copy a in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if c.(i).(k) && c.(k).(j) then c.(i).(j) <- true
      done
    done
  done;
  c
