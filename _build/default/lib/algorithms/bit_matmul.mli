(** Bit-level matrix multiplication as a 5-dimensional uniform
    dependence algorithm — the shape of the RAB kernels that motivate
    the paper (Sections 1 and 5; see DESIGN.md substitutions).

    Index point [(i, j, k, ba, bb)]: word-level point [(i, j, k)] of the
    product, bit [ba] of the [A] operand, bit [bb] of the [B] operand.
    Dependences: accumulation along [k], carry/shift chains along the
    two bit axes, and operand-bit propagation along [i] and [j].
    Simulation uses the {!Dataflow} fingerprint semantics — the paper
    only ever uses this algorithm's structure, in formulation
    (5.5)-(5.6) and Proposition 8.1. *)

val algorithm : mu_word:int -> mu_bit:int -> Algorithm.t
(** Words range over [[0, mu_word]^3], bits over [[0, mu_bit]^2]. *)

val example_s : Intmat.t
(** [S = [[1,0,0,1,0]; [0,1,0,0,1]]]: word coordinates plus bit offsets,
    a 2-D bit-level array layout.  Satisfies the Proposition 8.1
    normalization ([s11 = 1], [s22 - s21 s12 = 1]). *)

(** {1 Executable variant}

    [chained_algorithm] replaces the two abstract carry-chain axes with
    a serpentine accumulation order (innermost [bb], then [ba], then
    [k]) whose dependences are still uniform — the row-carry trick of
    the 4-D convolution instance applied twice.  Each point multiplies
    one bit of [A] by one bit of [B], weights it by [2^(ba+bb)] and
    adds it to the running sum (carry-save style), so simulation
    computes real products, checked against word-level
    multiplication. *)

val chained_algorithm : mu_word:int -> mu_bit:int -> Algorithm.t

type value = { a_bit : int; b_bit : int; sum : int }

val semantics : a:int array array -> b:int array array -> value Algorithm.semantics
(** Entries of [a] and [b] must fit in [mu_bit + 1] bits (unsigned). *)

val product_of_values :
  mu_word:int -> mu_bit:int -> (int array -> value) -> int array array

val random_word_matrix : rng:Random.State.t -> size:int -> mu_bit:int -> int array array
