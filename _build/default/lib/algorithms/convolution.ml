let algorithm ~mu_ij ~mu_pq =
  Algorithm.make ~name:"convolution-2d"
    ~index_set:(Index_set.make [| mu_ij; mu_ij; mu_pq; mu_pq |])
    ~dependences:
      [
        [ 0; 0; 0; 1 ];
        [ 0; 0; 1; -mu_pq ];
        [ 1; 0; 0; 0 ];
        [ 0; 1; 0; 0 ];
        [ 1; 0; 1; 0 ];
        [ 0; 1; 0; 1 ];
      ]

type value = { y : int; k : int; x : int }

let pixel img r c =
  if r < 0 || c < 0 || r >= Array.length img || c >= Array.length img.(0) then 0
  else img.(r).(c)

(* At (i, j, p, q): multiply ker(p,q) by img(i-p, j-q) and add it to the
   running sum.  Exactly one of the two sum predecessors (d_1 within a
   kernel row, d_2 across rows) lies inside J, except at (p,q) = (0,0)
   where the sum starts at zero. *)
let semantics ~ker ~img =
  {
    Algorithm.boundary =
      (fun j i ->
        let zero = { y = 0; k = 0; x = 0 } in
        match i with
        | 0 | 1 -> zero
        | 2 | 3 -> { zero with k = ker.(j.(2)).(j.(3)) }
        | 4 | 5 -> { zero with x = pixel img (j.(0) - j.(2)) (j.(1) - j.(3)) }
        | _ -> invalid_arg "Convolution.semantics: bad dependence index");
    compute =
      (fun j ops ->
        let prev_y = if j.(3) > 0 then ops.(0).y else ops.(1).y in
        let k = if j.(0) > 0 then ops.(2).k else ops.(3).k in
        let x = if j.(0) > 0 && j.(2) > 0 then ops.(4).x else ops.(5).x in
        { y = prev_y + (k * x); k; x });
    equal_value = (fun a b -> a.y = b.y && a.k = b.k && a.x = b.x);
    pp_value = (fun fmt v -> Format.fprintf fmt "{y=%d}" v.y);
  }

let output_of_values ~mu_ij ~mu_pq value =
  Array.init (mu_ij + 1) (fun i ->
      Array.init (mu_ij + 1) (fun j -> (value [| i; j; mu_pq; mu_pq |]).y))

let reference_convolution ~ker ~img ~out_size =
  Array.init out_size (fun i ->
      Array.init out_size (fun j ->
          let acc = ref 0 in
          Array.iteri
            (fun p row -> Array.iteri (fun q kv -> acc := !acc + (kv * pixel img (i - p) (j - q))) row)
            ker;
          !acc))

let example_s = Intmat.of_ints [ [ 1; 0; 1; 0 ]; [ 0; 1; 0; 1 ] ]
