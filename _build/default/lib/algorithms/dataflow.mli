(** Generic dataflow-fingerprint semantics, usable with any uniform
    dependence algorithm.

    Every computation produces an integer fingerprint mixing its index
    point with the fingerprints of its operands.  Simulated execution
    reproduces the reference fingerprints exactly iff every operand
    reached the right point — i.e. the array executed the true
    dataflow.  This is the semantics used for algorithms whose
    arithmetic the paper never specifies (the reindexed transitive
    closure of [17], the RAB bit-level kernels), where the mapping
    claims under test are purely structural. *)

val semantics : int Algorithm.semantics

val fingerprint_all : Algorithm.t -> int
(** Combined fingerprint of the whole index set under the reference
    evaluator; a convenient one-number regression check. *)
