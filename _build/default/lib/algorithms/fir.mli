(** FIR filter (1-D convolution) as a 2-dimensional uniform dependence
    algorithm — the smallest member of the paper's DSP workload family
    and the classic linear-systolic-array example.

    [y(i) = Σ_k w(k) x(i-k)] on [(i, k) ∈ [0,mu_i] × [0,mu_k]]:
    accumulation along [k] ([d_1 = (0,1)]), coefficient reuse along [i]
    ([d_2 = (1,0)]), input sample reuse along the diagonal
    ([d_3 = (1,1)]).  Exactly the structure the {!Loopnest} front end
    extracts from [Y[i] = Y[i] + W[k] * X[i-k]]. *)

val algorithm : mu_i:int -> mu_k:int -> Algorithm.t

type value = { y : int; w : int; x : int }

val semantics : w:int array -> x:int array -> value Algorithm.semantics
(** Samples [x] outside the signal are zero. *)

val output_of_values : mu_i:int -> mu_k:int -> (int array -> value) -> int array
val reference_fir : w:int array -> x:int array -> out_size:int -> int array
