(** The reindexed transitive closure algorithm of [17] as used in
    Examples 3.2 and 5.2: a 3-dimensional uniform dependence algorithm
    on [J = [0, mu]^3] with the five dependence vectors of
    Equation 3.6.

    The paper evaluates only the structural mapping properties of this
    algorithm (schedule length, conflicts, routing); the arithmetic of
    the reindexed recurrence is defined in [17], which is not
    reproduced here, so simulation uses the {!Dataflow} fingerprint
    semantics (see DESIGN.md, substitutions).  A direct Warshall
    closure is provided for the example program. *)

val algorithm : mu:int -> Algorithm.t

val paper_s : Intmat.t
(** [S = [0, 0, 1]], the space mapping of [22] reused by the paper. *)

val optimal_pi : mu:int -> Intvec.t
(** [Pi° = [mu+1, 1, 1]] — total time [mu(mu+3) + 1] (Example 5.2). *)

val prior_pi : mu:int -> Intvec.t
(** [Pi' = [2 mu + 1, 1, 1]] found by the heuristic of [22] — total
    time [mu(2 mu + 3) + 1]. *)

val optimal_total_time : mu:int -> int
val prior_total_time : mu:int -> int

val warshall : bool array array -> bool array array
(** Reference transitive closure (reflexive-transitive reachability is
    NOT implied: pure Warshall on the given relation). *)
