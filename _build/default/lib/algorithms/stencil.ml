let algorithm ~mu_t ~mu_i =
  Algorithm.make ~name:"stencil-1d"
    ~index_set:(Index_set.make [| mu_t; mu_i |])
    ~dependences:[ [ 1; 1 ]; [ 1; 0 ]; [ 1; -1 ] ]

let semantics ~coeffs:(cl, cc, cr) ~initial =
  {
    (* Absorbing boundary: out-of-rod neighbors contribute zero. *)
    Algorithm.boundary = (fun _ _ -> 0);
    compute =
      (fun j ops ->
        if j.(0) = 0 then initial.(j.(1))
        else (cl * ops.(0)) + (cc * ops.(1)) + (cr * ops.(2)));
    equal_value = Int.equal;
    pp_value = Format.pp_print_int;
  }

let row_of_values ~mu_t ~mu_i value =
  Array.init (mu_i + 1) (fun i -> value [| mu_t; i |])

let reference_sweeps ~coeffs:(cl, cc, cr) ~initial ~steps =
  let n = Array.length initial in
  let cell row i = if i < 0 || i >= n then 0 else row.(i) in
  let rec go row s =
    if s = 0 then row
    else
      go
        (Array.init n (fun i ->
             (cl * cell row (i - 1)) + (cc * cell row i) + (cr * cell row (i + 1))))
        (s - 1)
  in
  go (Array.copy initial) steps
