let algorithm ~mu =
  Algorithm.make ~name:"matmul"
    ~index_set:(Index_set.cube ~n:3 ~mu)
    ~dependences:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]

type value = { a : int; b : int; c : int }

(* Point (j1, j2, j3) computes the j3-th partial sum of C[j1][j2]:
   the A element A[j1][j3] arrives along d_2 = e_2 (constant in j2),
   the B element B[j3][j2] along d_1 = e_1 (constant in j1), and the
   running sum along d_3 = e_3. *)
let semantics ~a ~b =
  {
    Algorithm.boundary =
      (fun j i ->
        match i with
        | 0 -> { a = 0; b = b.(j.(2)).(j.(1)); c = 0 }
        | 1 -> { a = a.(j.(0)).(j.(2)); b = 0; c = 0 }
        | 2 -> { a = 0; b = 0; c = 0 }
        | _ -> invalid_arg "Matmul.semantics: bad dependence index");
    compute =
      (fun _ ops ->
        let from_b = ops.(0) and from_a = ops.(1) and from_c = ops.(2) in
        { a = from_a.a; b = from_b.b; c = from_c.c + (from_a.a * from_b.b) });
    equal_value = (fun x y -> x.a = y.a && x.b = y.b && x.c = y.c);
    pp_value = (fun fmt v -> Format.fprintf fmt "{a=%d;b=%d;c=%d}" v.a v.b v.c);
  }

let product_of_values ~mu value =
  Array.init (mu + 1) (fun i -> Array.init (mu + 1) (fun j -> (value [| i; j; mu |]).c))

let reference_product a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0 in
          for k = 0 to n - 1 do
            acc := !acc + (a.(i).(k) * b.(k).(j))
          done;
          !acc))

let random_matrix ~rng n =
  Array.init n (fun _ -> Array.init n (fun _ -> Random.State.int rng 19 - 9))

let paper_s = Intmat.of_ints [ [ 1; 1; -1 ] ]
let optimal_pi ~mu = Intvec.of_ints [ 1; mu; 1 ]
let lee_kedem_pi ~mu = Intvec.of_ints [ 2; 1; mu ]
let optimal_total_time ~mu = (mu * (mu + 2)) + 1
let lee_kedem_total_time ~mu = (mu * (mu + 3)) + 1
