let algorithm ~mu_word ~mu_bit =
  Algorithm.make ~name:"bit-matmul"
    ~index_set:(Index_set.make [| mu_word; mu_word; mu_word; mu_bit; mu_bit |])
    ~dependences:
      [
        [ 0; 0; 1; 0; 0 ];  (* partial-product accumulation along k *)
        [ 0; 0; 0; 1; 0 ];  (* carry/shift chain along the A-bit axis *)
        [ 0; 0; 0; 0; 1 ];  (* carry/shift chain along the B-bit axis *)
        [ 1; 0; 0; 0; 0 ];  (* B bits ride along i *)
        [ 0; 1; 0; 0; 0 ];  (* A bits ride along j *)
      ]

let example_s = Intmat.of_ints [ [ 1; 0; 0; 1; 0 ]; [ 0; 1; 0; 0; 1 ] ]

(* Serpentine accumulation: bb innermost, then ba, then k.  The two
   carry dependences jump back to the end of the previous row/plane,
   exactly like the row-carry of the 4-D convolution instance. *)
let chained_algorithm ~mu_word ~mu_bit =
  Algorithm.make ~name:"bit-matmul-chained"
    ~index_set:(Index_set.make [| mu_word; mu_word; mu_word; mu_bit; mu_bit |])
    ~dependences:
      [
        [ 0; 0; 0; 0; 1 ];                    (* sum along bb *)
        [ 0; 0; 0; 1; -mu_bit ];              (* carry to the next ba row *)
        [ 0; 0; 1; -mu_bit; -mu_bit ];        (* carry to the next k plane *)
        [ 1; 0; 0; 0; 0 ];                    (* B bits ride along i *)
        [ 0; 1; 0; 0; 0 ];                    (* A bits ride along j *)
      ]

type value = { a_bit : int; b_bit : int; sum : int }

let bit x pos = (x lsr pos) land 1

(* Point (i, j, k, ba, bb) multiplies bit ba of A[i][k] by bit bb of
   B[k][j]: the A bit is invariant along j (dependence 5), the B bit
   along i (dependence 4). *)
let semantics ~a ~b =
  {
    Algorithm.boundary =
      (fun j i ->
        let zero = { a_bit = 0; b_bit = 0; sum = 0 } in
        match i with
        | 0 | 1 | 2 -> zero
        | 3 -> { zero with b_bit = bit b.(j.(2)).(j.(1)) j.(4) }
        | 4 -> { zero with a_bit = bit a.(j.(0)).(j.(2)) j.(3) }
        | _ -> invalid_arg "Bit_matmul.semantics: bad dependence index");
    compute =
      (fun j ops ->
        (* Operands 3/4 are the propagated bit when the predecessor is
           inside J and the boundary injection otherwise. *)
        let b_bit = ops.(3).b_bit in
        let a_bit = ops.(4).a_bit in
        let prev =
          if j.(4) > 0 then ops.(0).sum
          else if j.(3) > 0 then ops.(1).sum
          else if j.(2) > 0 then ops.(2).sum
          else 0
        in
        { a_bit; b_bit; sum = prev + (a_bit * b_bit * (1 lsl (j.(3) + j.(4)))) });
    equal_value = (fun x y -> x.a_bit = y.a_bit && x.b_bit = y.b_bit && x.sum = y.sum);
    pp_value = (fun fmt v -> Format.fprintf fmt "{sum=%d}" v.sum);
  }

let product_of_values ~mu_word ~mu_bit value =
  Array.init (mu_word + 1) (fun i ->
      Array.init (mu_word + 1) (fun j -> (value [| i; j; mu_word; mu_bit; mu_bit |]).sum))

let random_word_matrix ~rng ~size ~mu_bit =
  Array.init size (fun _ -> Array.init size (fun _ -> Random.State.int rng (1 lsl (mu_bit + 1))))
