lib/lp/simplex.ml: Array Lin List Qnum
