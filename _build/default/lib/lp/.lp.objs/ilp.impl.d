lib/lp/ilp.ml: Array Lin Qnum Simplex Zint
