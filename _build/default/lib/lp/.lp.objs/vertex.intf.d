lib/lp/vertex.mli: Lin Qnum
