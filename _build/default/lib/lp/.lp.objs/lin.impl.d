lib/lp/lin.ml: Array Format List Qnum
