lib/lp/vertex.ml: Array Lin List Qnum Ratmat
