lib/lp/ilp.mli: Qnum Simplex Zint
