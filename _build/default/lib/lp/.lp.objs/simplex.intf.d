lib/lp/simplex.mli: Lin Qnum
