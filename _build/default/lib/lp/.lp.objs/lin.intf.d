lib/lp/lin.mli: Format Qnum
