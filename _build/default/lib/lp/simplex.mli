(** Exact two-phase primal simplex over {!Qnum}.

    Variables are free (unrestricted in sign) by default and are split
    into positive and negative parts internally; add explicit [>=]
    constraints for sign restrictions.  Bland's rule is used throughout,
    so the method terminates on every input.  All arithmetic is exact,
    which is what makes the paper's appendix argument ("all extreme
    points of these polyhedra are integral") directly observable in the
    solver output. *)

type problem = {
  nvars : int;
  objective : Lin.expr;        (** Minimized. *)
  constraints : Lin.constr list;
}

type outcome =
  | Optimal of { x : Qnum.t array; obj : Qnum.t }
  | Unbounded
  | Infeasible

val solve : problem -> outcome

val maximize : problem -> outcome
(** Same problem record, but the objective is maximized. *)

val feasible : problem -> Qnum.t array option
(** Any feasible point (phase 1 only), ignoring the objective. *)
