type problem = {
  nvars : int;
  objective : Lin.expr;
  constraints : Lin.constr list;
}

type outcome =
  | Optimal of { x : Qnum.t array; obj : Qnum.t }
  | Unbounded
  | Infeasible

(* Tableau rows have length [ncols + 1]; the last entry is the rhs.
   [basis.(i)] is the column basic in row [i].  The objective row [z]
   has the same length; z.(ncols) is the negated objective value. *)
type tableau = {
  mutable rows : Qnum.t array array;
  mutable basis : int array;
  mutable ncols : int;
  z : Qnum.t array;
}

let q = Qnum.of_int

let pivot t ~row ~col =
  let r = t.rows.(row) in
  let inv = Qnum.inv r.(col) in
  for j = 0 to t.ncols do
    r.(j) <- Qnum.mul r.(j) inv
  done;
  let eliminate target =
    let f = target.(col) in
    if not (Qnum.is_zero f) then
      for j = 0 to t.ncols do
        target.(j) <- Qnum.sub target.(j) (Qnum.mul f r.(j))
      done
  in
  Array.iteri (fun i row' -> if i <> row then eliminate row') t.rows;
  eliminate t.z;
  t.basis.(row) <- col

(* Bland's rule: entering column = smallest index with negative reduced
   cost among [allowed]; leaving row = lexicographically safe min-ratio
   with smallest basic index as tie-break. *)
let rec iterate t ~allowed =
  let entering = ref (-1) in
  for j = t.ncols - 1 downto 0 do
    if allowed j && Qnum.sign t.z.(j) < 0 then entering := j
  done;
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let leaving = ref (-1) in
    let best = ref Qnum.zero in
    Array.iteri
      (fun i r ->
        if Qnum.sign r.(col) > 0 then begin
          let ratio = Qnum.div r.(t.ncols) r.(col) in
          if !leaving < 0
             || Qnum.compare ratio !best < 0
             || (Qnum.equal ratio !best && t.basis.(i) < t.basis.(!leaving))
          then begin
            leaving := i;
            best := ratio
          end
        end)
      t.rows;
    if !leaving < 0 then `Unbounded
    else begin
      pivot t ~row:!leaving ~col;
      iterate t ~allowed
    end
  end

(* Install costs [c] (length ncols) into the objective row and cancel
   the reduced costs of the current basic variables. *)
let set_objective t c =
  Array.blit c 0 t.z 0 t.ncols;
  t.z.(t.ncols) <- Qnum.zero;
  Array.iteri
    (fun i bj ->
      let cb = t.z.(bj) in
      if not (Qnum.is_zero cb) then
        for j = 0 to t.ncols do
          t.z.(j) <- Qnum.sub t.z.(j) (Qnum.mul cb t.rows.(i).(j))
        done)
    t.basis

let solve_internal { nvars; objective; constraints } =
  let cons = Array.of_list constraints in
  let m = Array.length cons in
  (* Structural columns: x_i = u_i - w_i with u, w >= 0. *)
  let ns = 2 * nvars in
  (* Count slack/surplus columns and artificial columns. *)
  let nslack = ref 0 and nart = ref 0 in
  Array.iter
    (fun (c : Lin.constr) ->
      match c.cmp with
      | Lin.Le | Lin.Ge -> incr nslack
      | Lin.Eq -> ())
    cons;
  (* Every row whose slack cannot serve as the initial basic variable
     needs an artificial; conservatively give one to each row and let
     phase 1 drive them out (Le rows with nonneg rhs reuse the slack). *)
  Array.iter (fun _ -> incr nart) cons;
  let art_start = ns + !nslack in
  let ncols = ns + !nslack + !nart in
  let rows = Array.init m (fun _ -> Array.make (ncols + 1) Qnum.zero) in
  let basis = Array.make m (-1) in
  let next_slack = ref ns and next_art = ref art_start in
  Array.iteri
    (fun i (c : Lin.constr) ->
      if Array.length c.coeffs <> nvars then
        invalid_arg "Simplex.solve: constraint arity mismatch";
      (* Orient the row so that rhs >= 0. *)
      let flip = Qnum.sign c.rhs < 0 in
      let sgn v = if flip then Qnum.neg v else v in
      let cmp =
        match (c.cmp, flip) with
        | Lin.Eq, _ -> Lin.Eq
        | Lin.Le, false | Lin.Ge, true -> Lin.Le
        | Lin.Ge, false | Lin.Le, true -> Lin.Ge
      in
      let r = rows.(i) in
      for v = 0 to nvars - 1 do
        let a = sgn c.coeffs.(v) in
        r.(2 * v) <- a;
        r.((2 * v) + 1) <- Qnum.neg a
      done;
      r.(ncols) <- sgn c.rhs;
      (match cmp with
      | Lin.Le ->
        r.(!next_slack) <- Qnum.one;
        basis.(i) <- !next_slack;
        incr next_slack
      | Lin.Ge ->
        r.(!next_slack) <- Qnum.minus_one;
        incr next_slack
      | Lin.Eq -> ());
      if basis.(i) < 0 then begin
        r.(!next_art) <- Qnum.one;
        basis.(i) <- !next_art;
        incr next_art
      end)
    cons;
  let t = { rows; basis; ncols; z = Array.make (ncols + 1) Qnum.zero } in
  (* Phase 1: minimize the sum of artificial variables. *)
  let phase1_cost = Array.make ncols Qnum.zero in
  for j = art_start to ncols - 1 do
    phase1_cost.(j) <- Qnum.one
  done;
  set_objective t phase1_cost;
  (match iterate t ~allowed:(fun _ -> true) with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal -> ());
  if Qnum.sign (Qnum.neg t.z.(t.ncols)) > 0 then Infeasible
  else begin
    (* Drive any remaining basic artificials out; drop redundant rows. *)
    let keep = Array.make (Array.length t.rows) true in
    Array.iteri
      (fun i bj ->
        if bj >= art_start then begin
          let piv = ref (-1) in
          for j = art_start - 1 downto 0 do
            if not (Qnum.is_zero t.rows.(i).(j)) then piv := j
          done;
          if !piv >= 0 then pivot t ~row:i ~col:!piv else keep.(i) <- false
        end)
      t.basis;
    let kept = ref [] and kept_basis = ref [] in
    Array.iteri
      (fun i r ->
        if keep.(i) then begin
          kept := r :: !kept;
          kept_basis := t.basis.(i) :: !kept_basis
        end)
      t.rows;
    t.rows <- Array.of_list (List.rev !kept);
    t.basis <- Array.of_list (List.rev !kept_basis);
    (* Phase 2 with the real objective over the split variables. *)
    let phase2_cost = Array.make ncols Qnum.zero in
    for v = 0 to nvars - 1 do
      phase2_cost.(2 * v) <- objective.(v);
      phase2_cost.((2 * v) + 1) <- Qnum.neg objective.(v)
    done;
    set_objective t phase2_cost;
    match iterate t ~allowed:(fun j -> j < art_start) with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let value = Array.make ncols Qnum.zero in
      Array.iteri (fun i bj -> value.(bj) <- t.rows.(i).(t.ncols)) t.basis;
      let x =
        Array.init nvars (fun v -> Qnum.sub value.(2 * v) value.((2 * v) + 1))
      in
      Optimal { x; obj = Lin.eval objective x }
  end

let solve p = solve_internal p

let maximize p =
  match solve_internal { p with objective = Lin.neg p.objective } with
  | Optimal { x; _ } -> Optimal { x; obj = Lin.eval p.objective x }
  | (Unbounded | Infeasible) as o -> o

let feasible p =
  match solve_internal { p with objective = Array.make p.nvars (q 0) } with
  | Optimal { x; _ } -> Some x
  | Unbounded -> None (* cannot happen with a zero objective *)
  | Infeasible -> None
