type outcome =
  | Optimal of { x : Zint.t array; obj : Qnum.t }
  | Unbounded
  | Infeasible

type stats = { nodes : int; lp_solves : int }

let first_fractional x =
  let rec go i =
    if i >= Array.length x then None
    else if Qnum.is_integer x.(i) then go (i + 1)
    else Some i
  in
  go 0

let solve_with_stats ?(max_nodes = 100_000) (p : Simplex.problem) =
  let nodes = ref 0 and lp_solves = ref 0 in
  let incumbent = ref None in
  let better obj =
    match !incumbent with
    | None -> true
    | Some (_, best) -> Qnum.compare obj best < 0
  in
  let root_unbounded = ref false in
  let rec branch extra ~depth =
    incr nodes;
    if !nodes > max_nodes then failwith "Ilp.solve: node limit exceeded";
    incr lp_solves;
    match Simplex.solve { p with constraints = extra @ p.constraints } with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
      (* An unbounded relaxation anywhere makes the integer problem
         unbounded whenever it is feasible there; we report it
         conservatively rather than search an infinite ray. *)
      ignore depth;
      root_unbounded := true
    | Simplex.Optimal { x; obj } ->
      if better obj then begin
        match first_fractional x with
        | None ->
          let xi = Array.map Qnum.to_zint_exn x in
          incumbent := Some (xi, obj)
        | Some i ->
          let n = p.nvars in
          let lo = Qnum.of_zint (Qnum.floor x.(i)) in
          let hi = Qnum.of_zint (Qnum.ceil x.(i)) in
          branch (Lin.(var n i <=. lo) :: extra) ~depth:(depth + 1);
          branch (Lin.(var n i >=. hi) :: extra) ~depth:(depth + 1)
      end
  in
  branch [] ~depth:0;
  let outcome =
    if !root_unbounded then Unbounded
    else
      match !incumbent with
      | Some (x, obj) -> Optimal { x; obj }
      | None -> Infeasible
  in
  (outcome, { nodes = !nodes; lp_solves = !lp_solves })

let solve ?max_nodes p = fst (solve_with_stats ?max_nodes p)
