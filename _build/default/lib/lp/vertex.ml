(* Enumerate size-n subsets of the constraint list, solve each as an
   equality system, and keep solutions feasible for all constraints. *)

let subsets n l =
  let rec go k rest =
    if k = 0 then [ [] ]
    else
      match rest with
      | [] -> []
      | x :: tl ->
        List.map (fun s -> x :: s) (go (k - 1) tl) @ go k tl
  in
  go n l

let enumerate ~nvars constraints =
  let m = List.length constraints in
  if m < nvars then []
  else begin
    let candidates =
      List.filter_map
        (fun (subset : Lin.constr list) ->
          let a =
            Ratmat.make nvars nvars (fun i j -> (List.nth subset i).Lin.coeffs.(j))
          in
          let b = Array.of_list (List.map (fun c -> c.Lin.rhs) subset) in
          (* A vertex needs the n active constraints to be independent. *)
          if Ratmat.rank a < nvars then None
          else
            match Ratmat.solve a b with
            | Some x when List.for_all (Lin.satisfies x) constraints -> Some x
            | Some _ | None -> None)
        (subsets nvars constraints)
    in
    (* Deduplicate. *)
    List.sort_uniq
      (fun x y ->
        let rec cmp i =
          if i >= nvars then 0
          else
            let c = Qnum.compare x.(i) y.(i) in
            if c <> 0 then c else cmp (i + 1)
        in
        cmp 0)
      candidates
  end

let minimize ~nvars objective constraints =
  let vertices = enumerate ~nvars constraints in
  List.fold_left
    (fun best x ->
      let v = Lin.eval objective x in
      match best with
      | Some (_, bv) when Qnum.compare bv v <= 0 -> best
      | Some _ | None -> Some (x, v))
    None vertices

let all_integral vertices =
  List.for_all (fun x -> Array.for_all Qnum.is_integer x) vertices
