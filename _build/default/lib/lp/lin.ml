type expr = Qnum.t array

type cmp = Le | Ge | Eq

type constr = { coeffs : expr; cmp : cmp; rhs : Qnum.t }

let zero_expr n = Array.make n Qnum.zero

let var n i =
  let e = zero_expr n in
  e.(i) <- Qnum.one;
  e

let of_ints l = Array.of_list (List.map Qnum.of_int l)
let scale c e = Array.map (Qnum.mul c) e

let add a b =
  if Array.length a <> Array.length b then invalid_arg "Lin.add: dimension mismatch";
  Array.init (Array.length a) (fun i -> Qnum.add a.(i) b.(i))

let neg e = Array.map Qnum.neg e
let sub a b = add a (neg b)

let eval e x =
  if Array.length e <> Array.length x then invalid_arg "Lin.eval: dimension mismatch";
  let acc = ref Qnum.zero in
  Array.iteri (fun i c -> acc := Qnum.add !acc (Qnum.mul c x.(i))) e;
  !acc

let ( <=. ) coeffs rhs = { coeffs; cmp = Le; rhs }
let ( >=. ) coeffs rhs = { coeffs; cmp = Ge; rhs }
let ( =. ) coeffs rhs = { coeffs; cmp = Eq; rhs }

let le_int e k = e <=. Qnum.of_int k
let ge_int e k = e >=. Qnum.of_int k
let eq_int e k = e =. Qnum.of_int k

let satisfies x { coeffs; cmp; rhs } =
  let v = eval coeffs x in
  match cmp with
  | Le -> Qnum.compare v rhs <= 0
  | Ge -> Qnum.compare v rhs >= 0
  | Eq -> Qnum.equal v rhs

let pp_constr fmt { coeffs; cmp; rhs } =
  let first = ref true in
  Array.iteri
    (fun i c ->
      if not (Qnum.is_zero c) then begin
        if !first then begin
          if Qnum.equal c Qnum.minus_one then Format.fprintf fmt "-"
          else if not (Qnum.equal c Qnum.one) then Format.fprintf fmt "%a*" Qnum.pp c
        end
        else if Qnum.sign c < 0 then begin
          Format.fprintf fmt " - ";
          let a = Qnum.abs c in
          if not (Qnum.equal a Qnum.one) then Format.fprintf fmt "%a*" Qnum.pp a
        end
        else begin
          Format.fprintf fmt " + ";
          if not (Qnum.equal c Qnum.one) then Format.fprintf fmt "%a*" Qnum.pp c
        end;
        Format.fprintf fmt "x%d" i;
        first := false
      end)
    coeffs;
  if !first then Format.fprintf fmt "0";
  let op = match cmp with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
  Format.fprintf fmt " %s %a" op Qnum.pp rhs
