(** Small builder for linear expressions and constraints over a fixed
    number of variables, shared by {!Simplex}, {!Ilp} and {!Vertex}.

    An expression is just a dense coefficient vector; the builder only
    exists so that the paper's formulations (Sections 5 and 8) read the
    way they are written. *)

type expr = Qnum.t array
(** Coefficient vector of length [nvars]. *)

type cmp = Le | Ge | Eq

type constr = { coeffs : expr; cmp : cmp; rhs : Qnum.t }

val zero_expr : int -> expr
val var : int -> int -> expr
(** [var n i] is the expression [x_i] over [n] variables. *)

val of_ints : int list -> expr
val scale : Qnum.t -> expr -> expr
val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val neg : expr -> expr

val eval : expr -> Qnum.t array -> Qnum.t

val ( <=. ) : expr -> Qnum.t -> constr
val ( >=. ) : expr -> Qnum.t -> constr
val ( =. ) : expr -> Qnum.t -> constr

val le_int : expr -> int -> constr
val ge_int : expr -> int -> constr
val eq_int : expr -> int -> constr

val satisfies : Qnum.t array -> constr -> bool
val pp_constr : Format.formatter -> constr -> unit
