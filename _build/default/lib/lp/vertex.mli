(** Extreme-point enumeration for small polyhedra.

    This is the appendix's solution technique made executable: the
    paper's LP subproblems have {-1, 0, 1} constraint coefficients, so
    all extreme points are integral and the optimum of each convex
    subproblem is attained at one of them.  We enumerate every
    n-subset of constraints, solve it as an equality system and keep
    the solutions satisfying all constraints. *)

val enumerate : nvars:int -> Lin.constr list -> Qnum.t array list
(** All extreme points (vertices) of the polyhedron.  Exponential in
    [nvars]; intended for the paper-sized systems (n <= 6). *)

val minimize : nvars:int -> Lin.expr -> Lin.constr list ->
  (Qnum.t array * Qnum.t) option
(** Best vertex under the objective; [None] when the polyhedron has no
    vertex.  Only meaningful when the objective is bounded below on the
    polyhedron (true for all of the paper's formulations, where every
    variable is bounded below and objective coefficients are
    non-negative). *)

val all_integral : Qnum.t array list -> bool
(** Check the appendix's integrality claim on an enumerated vertex
    set. *)
