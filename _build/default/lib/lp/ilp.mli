(** Exact integer linear programming by branch and bound over
    {!Simplex} relaxations.

    All variables are required to be integral.  This is the general
    backstop for the paper's Problem 2.2 formulation; the appendix's
    special cases never branch because their relaxations already have
    integral extreme points (a fact asserted by a test). *)

type outcome =
  | Optimal of { x : Zint.t array; obj : Qnum.t }
  | Unbounded      (** The relaxation is unbounded. *)
  | Infeasible

type stats = { nodes : int; lp_solves : int }

val solve : ?max_nodes:int -> Simplex.problem -> outcome
(** @raise Failure when [max_nodes] (default 100_000) is exceeded. *)

val solve_with_stats : ?max_nodes:int -> Simplex.problem -> outcome * stats
