lib/zint/zint.ml: Array Buffer Format Hashtbl List Printf Stdlib String
