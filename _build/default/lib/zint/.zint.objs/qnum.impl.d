lib/zint/qnum.ml: Format Zint
