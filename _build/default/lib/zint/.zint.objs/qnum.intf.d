lib/zint/qnum.mli: Format Zint
