(** Exact rational numbers over {!Zint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator; zero is [0/1].  Used by the rational
    linear-algebra layer and the exact simplex solver, where floating
    point would silently destroy the integrality arguments the paper's
    appendix relies on. *)

type t

val num : t -> Zint.t
val den : t -> Zint.t
(** [den q] is always positive. *)

(** {1 Construction} *)

val make : Zint.t -> Zint.t -> t
(** [make n d] is the canonical form of [n/d].
    @raise Division_by_zero if [d] is zero. *)

val of_zint : Zint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints n d] is [n/d]. *)

val zero : t
val one : t
val minus_one : t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val mul_zint : t -> Zint.t -> t

(** {1 Comparisons and predicates} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Rounding} *)

val floor : t -> Zint.t
val ceil : t -> Zint.t
val to_zint_exn : t -> Zint.t
(** @raise Failure if the value is not an integer. *)

(** {1 Conversions} *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
