(* Sign-magnitude bignums, little-endian base 2^30.  Invariants:
   [sign] is -1, 0 or 1; [sign = 0] iff [mag] is empty; the highest
   digit of [mag] is nonzero; every digit is in [0, base). *)

type t = { sign : int; mag : int array }

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

(* ------------------------------------------------------------------ *)
(* Magnitude primitives.  A magnitude is an int array in little-endian
   base-2^30 form; it is "normalized" when its top digit is nonzero. *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_is_zero a = Array.length a = 0

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  mag_normalize r

(* Precondition: a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj <= (2^30-1)^2 < 2^60; plus two < 2^31 terms stays < 2^61 *)
        let s = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    mag_normalize r
  end

(* Left shift by [k] bits, 0 <= k < base_bits. *)
let mag_shl_small a k =
  if k = 0 || mag_is_zero a then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) lsl k) lor !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

(* Right shift by [k] bits, 0 <= k < base_bits. *)
let mag_shr_small a k =
  if k = 0 || mag_is_zero a then a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr k in
      let hi = if i + 1 < la then (a.(i + 1) lsl (base_bits - k)) land base_mask else 0 in
      r.(i) <- lo lor hi
    done;
    mag_normalize r
  end

(* Divide magnitude by single digit, returning (quotient, remainder). *)
let mag_divmod_digit a d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

(* Knuth algorithm D.  Preconditions: b has >= 2 digits, a >= b. *)
let mag_divmod_long a b =
  let nb = Array.length b in
  (* Normalize so that the top digit of the divisor is >= base/2. *)
  let shift =
    let top = b.(nb - 1) in
    let rec go k t = if t >= base / 2 then k else go (k + 1) (t lsl 1) in
    go 0 top
  in
  let v = mag_shl_small b shift in
  let u0 = mag_shl_small a shift in
  let n = Array.length v in
  assert (n = nb);
  let m = Array.length u0 - n in
  (* u gets one extra high digit for the subtraction window. *)
  let u = Array.make (Array.length u0 + 1) 0 in
  Array.blit u0 0 u 0 (Array.length u0);
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) and vsec = v.(n - 2) in
  for j = m downto 0 do
    let top = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top / vtop) in
    let rhat = ref (top mod vtop) in
    let continue = ref true in
    while !continue
          && (!qhat >= base
              || !qhat * vsec > (!rhat lsl base_bits) lor u.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + vtop;
      if !rhat >= base then continue := false
    done;
    (* Multiply-subtract u[j..j+n] -= qhat * v. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let s = u.(i + j) - (p land base_mask) - !borrow in
      if s < 0 then begin
        u.(i + j) <- s + base;
        borrow := 1
      end else begin
        u.(i + j) <- s;
        borrow := 0
      end
    done;
    let s = u.(j + n) - !carry - !borrow in
    if s < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      u.(j + n) <- s + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let t = u.(i + j) + v.(i) + !c in
        u.(i + j) <- t land base_mask;
        c := t lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land base_mask
    end else u.(j + n) <- s;
    q.(j) <- !qhat
  done;
  let r = mag_shr_small (mag_normalize (Array.sub u 0 n)) shift in
  (mag_normalize q, r)

let mag_divmod a b =
  if mag_is_zero b then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else if Array.length b = 1 then
    let q, r = mag_divmod_digit a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  else mag_divmod_long a b

(* ------------------------------------------------------------------ *)
(* Signed layer. *)

let mk sign mag =
  let mag = mag_normalize mag in
  if mag_is_zero mag then zero else { sign; mag }

let sign t = t.sign
let is_zero t = t.sign = 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash t = Hashtbl.hash (t.sign, t.mag)

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (mag_add a.mag b.mag)
  else
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (mag_sub a.mag b.mag)
    else mk b.sign (mag_sub b.mag a.mag)

let sub a b = add a (neg b)
let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else mk (a.sign * b.sign) (mag_mul a.mag b.mag)

let succ t = add t one
let pred t = add t minus_one

(* Truncated division: quotient toward zero, remainder has dividend's sign. *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else
    let qm, rm = mag_divmod a.mag b.mag in
    let q = mk (a.sign * b.sign) qm in
    let r = mk a.sign rm in
    (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let fdiv a b =
  let q, r = divmod a b in
  if r.sign = 0 || r.sign = b.sign then q else pred q

let cdiv a b =
  let q, r = divmod a b in
  if r.sign = 0 || r.sign <> b.sign then q else succ q

let divexact = div
let divisible a b = is_zero (rem a b)

let of_int n =
  if n = 0 then zero
  else if n = Stdlib.min_int then
    (* |min_int| = 2^62 = 4 * (2^30)^2 on 64-bit OCaml. *)
    { sign = -1; mag = [| 0; 0; 4 |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    let v = Stdlib.abs n in
    if v < base then { sign; mag = [| v |] }
    else if v lsr base_bits < base then
      { sign; mag = [| v land base_mask; v lsr base_bits |] }
    else
      { sign;
        mag =
          [| v land base_mask;
             (v lsr base_bits) land base_mask;
             v lsr (2 * base_bits) |] }
  end

let to_int_opt t =
  match Array.length t.mag with
  | 0 -> Some 0
  | 1 -> Some (t.sign * t.mag.(0))
  | 2 -> Some (t.sign * ((t.mag.(1) lsl base_bits) lor t.mag.(0)))
  | 3 ->
    let hi = t.mag.(2) in
    if hi > 4 then None
    else begin
      (* Value is hi*2^60 + mid*2^30 + lo; max_int = 2^62 - 1. *)
      if hi = 4 then
        if t.sign < 0 && t.mag.(1) = 0 && t.mag.(0) = 0 then Some Stdlib.min_int
        else None
      else Some (t.sign * ((hi lsl (2 * base_bits)) lor (t.mag.(1) lsl base_bits) lor t.mag.(0)))
    end
  | _ -> None

let fits_int t = to_int_opt t <> None

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Zint.to_int: overflow"

let to_float t =
  let acc = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !acc

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

let pow a e =
  if e < 0 then invalid_arg "Zint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one a e

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let gcdext a b =
  (* Divisibility shortcuts first: they guarantee the canonical trivial
     Bezout pair (±1, 0) — consumers such as the Smith normal form rely
     on [y = 0] whenever [a] divides [b] to ensure their elimination
     loops make progress. *)
  if (not (is_zero a)) && is_zero (rem b a) then
    (abs a, of_int a.sign, zero)
  else if (not (is_zero b)) && is_zero (rem a b) then
    (abs b, zero, of_int b.sign)
  else begin
    (* Iterative extended Euclid with truncated quotients; valid for any
       signs, fixed up at the end so that g >= 0. *)
    let rec go old_r r old_s s old_t t =
      if is_zero r then (old_r, old_s, old_t)
      else
        let q = div old_r r in
        go r (sub old_r (mul q r)) s (sub old_s (mul q s)) t (sub old_t (mul q t))
    in
    let g, x, y = go a b one zero zero one in
    if g.sign < 0 then (neg g, neg x, neg y) else (g, x, y)
  end

let lcm a b =
  if is_zero a || is_zero b then zero else abs (mul (div a (gcd a b)) b)

(* Decimal I/O via 10^9 chunks (10^9 < 2^30). *)
let chunk = 1_000_000_000
let chunk_digits = 9

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go m acc =
      if mag_is_zero m then acc
      else
        let q, r = mag_divmod_digit m chunk in
        go q (r :: acc)
    in
    match go t.mag [] with
    | [] -> "0"
    | first :: rest ->
      if t.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Zint.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Zint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < n do
    let stop = Stdlib.min n (!i + chunk_digits) in
    (* Align so that all chunks after the first have exactly 9 digits. *)
    let stop =
      let rem_len = n - !i in
      if rem_len mod chunk_digits = 0 then stop
      else !i + (rem_len mod chunk_digits)
    in
    let piece = String.sub s !i (stop - !i) in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Zint.of_string: bad digit") piece;
    let pow10 = [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000; 1_000_000_000 |] in
    acc := add (mul !acc (of_int pow10.(String.length piece))) (of_int (int_of_string piece));
    i := stop
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
