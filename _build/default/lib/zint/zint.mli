(** Arbitrary-precision signed integers.

    This is a from-scratch replacement for the subset of [zarith] needed
    by the exact linear algebra and exact simplex layers: the Hermite
    normal form multiplier, adjugates and simplex tableaux produce
    intermediate values that overflow native [int] even for the small
    matrices of the paper, so every algebraic kernel in this repository
    computes over [Zint.t].

    Representation: sign-magnitude, magnitude in little-endian base
    2{^30} digits with no leading zero digit.  All operations are purely
    functional. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit a native [int]. *)

val to_int_opt : t -> int option
val fits_int : t -> bool
val to_float : t -> float

val of_string : string -> t
(** Accepts an optional leading ['-' | '+'] followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is truncated division as for native [int]: the quotient
    rounds toward zero and the remainder has the sign of [a].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: [ediv_rem a b = (q, r)] with [a = q*b + r] and
    [0 <= r < |b|]. *)

val fdiv : t -> t -> t
(** Floor division (quotient rounds toward negative infinity). *)

val cdiv : t -> t -> t
(** Ceiling division (quotient rounds toward positive infinity). *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow a e] for [e >= 0]. @raise Invalid_argument on negative [e]. *)

(** {1 Number theory} *)

val gcd : t -> t -> t
(** Non-negative gcd; [gcd zero zero = zero]. *)

val gcdext : t -> t -> t * t * t
(** [gcdext a b = (g, x, y)] with [g = gcd a b >= 0] and
    [a*x + b*y = g]. *)

val lcm : t -> t -> t
val divexact : t -> t -> t
(** Division known to be exact; equivalent to [div] but documents intent. *)

val divisible : t -> t -> bool
(** [divisible a b] is true iff [b] divides [a] ([b] nonzero). *)

(** {1 Infix operators}

    Intended to be used via [Zint.Infix] or a local [open]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
