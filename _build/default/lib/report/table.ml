type t = {
  headers : string list;
  mutable rows : string list list;  (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_int_row t label ints =
  add_row t (label :: List.map string_of_int ints)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (Printf.sprintf "%*s" (List.nth widths c) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
    print_newline ();
    print_endline s;
    print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)
