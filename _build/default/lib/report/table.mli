(** Aligned plain-text tables for the experiment harness. *)

type t

val create : string list -> t
(** [create headers] starts a table. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val add_int_row : t -> string -> int list -> unit
(** First cell a label, the rest integers. *)

val render : t -> string

val print : ?title:string -> t -> unit
(** Render to stdout with an optional underlined title. *)
