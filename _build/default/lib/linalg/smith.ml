type result = {
  s : Intmat.t;
  l : Intmat.t;
  r : Intmat.t;
  invariant_factors : Zint.t list;
}

(* Row and column operations on the working matrix [s], mirrored into
   the unimodular accumulators [l] (rows, left) and [r] (columns,
   right) so that [l * a * r = s] holds throughout. *)

let swap_rows s l i1 i2 =
  if i1 <> i2 then begin
    let t = s.(i1) in s.(i1) <- s.(i2); s.(i2) <- t;
    let t = l.(i1) in l.(i1) <- l.(i2); l.(i2) <- t
  end

let swap_cols s r j1 j2 =
  if j1 <> j2 then begin
    let swap m =
      for i = 0 to Array.length m - 1 do
        let t = m.(i).(j1) in
        m.(i).(j1) <- m.(i).(j2);
        m.(i).(j2) <- t
      done
    in
    swap s; swap r
  end

(* row i2 <- row i2 - q * row i1 *)
let submul_row s l i1 i2 q =
  if not (Zint.is_zero q) then begin
    let op m =
      for j = 0 to Array.length m.(i2) - 1 do
        m.(i2).(j) <- Zint.sub m.(i2).(j) (Zint.mul q m.(i1).(j))
      done
    in
    op s; op l
  end

let negate_row s l i =
  s.(i) <- Array.map Zint.neg s.(i);
  l.(i) <- Array.map Zint.neg l.(i)

(* Rows (i1, i2) <- M * rows, M = [[m00 m01] [m10 m11]], det M = ±1. *)
let transform2_rows s l i1 i2 m00 m01 m10 m11 =
  let op m =
    let r1 = m.(i1) and r2 = m.(i2) in
    let w = Array.length r1 in
    let n1 = Array.init w (fun c -> Zint.add (Zint.mul m00 r1.(c)) (Zint.mul m01 r2.(c))) in
    let n2 = Array.init w (fun c -> Zint.add (Zint.mul m10 r1.(c)) (Zint.mul m11 r2.(c))) in
    m.(i1) <- n1;
    m.(i2) <- n2
  in
  op s; op l

(* Columns (j1, j2) <- cols * M^T analog: new c1 = m00 c1 + m01 c2,
   new c2 = m10 c1 + m11 c2, det M = ±1. *)
let transform2_cols s r j1 j2 m00 m01 m10 m11 =
  let op m =
    for i = 0 to Array.length m - 1 do
      let c1 = m.(i).(j1) and c2 = m.(i).(j2) in
      m.(i).(j1) <- Zint.add (Zint.mul m00 c1) (Zint.mul m01 c2);
      m.(i).(j2) <- Zint.add (Zint.mul m10 c1) (Zint.mul m11 c2)
    done
  in
  op s; op r

let compute a =
  let k = Intmat.rows a and n = Intmat.cols a in
  let s = Intmat.copy a in
  let l = Intmat.identity k in
  let r = Intmat.identity n in
  let rank = Stdlib.min k n in
  let t = ref 0 in
  let continue_outer = ref true in
  while !continue_outer && !t < rank do
    (* Bring the smallest-magnitude nonzero entry to the corner. *)
    let bi = ref (-1) and bj = ref (-1) in
    for i = !t to k - 1 do
      for j = !t to n - 1 do
        if not (Zint.is_zero s.(i).(j))
           && (!bi < 0
               || Zint.compare (Zint.abs s.(i).(j)) (Zint.abs s.(!bi).(!bj)) < 0)
        then begin bi := i; bj := j end
      done
    done;
    if !bi < 0 then continue_outer := false
    else begin
      swap_rows s l !t !bi;
      swap_cols s r !t !bj;
      (* A positive corner guarantees that gcdext returns the trivial
         Bezout pair (1, 0) whenever the corner already divides the
         entry, so clearing never reintroduces entries without strictly
         shrinking the corner. *)
      if Zint.sign s.(!t).(!t) < 0 then negate_row s l !t;
      (* Clear column t and row t with gcdext (Blankinship) transforms.
         Clearing the row can dirty the column and vice versa, but each
         bounce replaces the corner by a proper divisor of itself, so
         the loop ends after at most log(corner) bounces. *)
      let dirty = ref true in
      while !dirty do
        dirty := false;
        for i = !t + 1 to k - 1 do
          let b = s.(i).(!t) in
          if not (Zint.is_zero b) then begin
            let a0 = s.(!t).(!t) in
            let g, x, y = Zint.gcdext a0 b in
            transform2_rows s l !t i x y
              (Zint.neg (Zint.divexact b g))
              (Zint.divexact a0 g)
          end
        done;
        for j = !t + 1 to n - 1 do
          let b = s.(!t).(j) in
          if not (Zint.is_zero b) then begin
            let a0 = s.(!t).(!t) in
            let g, x, y = Zint.gcdext a0 b in
            transform2_cols s r !t j x y
              (Zint.neg (Zint.divexact b g))
              (Zint.divexact a0 g)
          end
        done;
        (* Column entries may have been re-introduced by the column
           transforms. *)
        for i = !t + 1 to k - 1 do
          if not (Zint.is_zero s.(i).(!t)) then dirty := true
        done
      done;
      (* Enforce divisibility: the corner must divide every entry of the
         trailing block; otherwise fold the offending row in and redo
         the pivot step (the corner then shrinks to a proper divisor). *)
      let offender = ref None in
      for i = !t + 1 to k - 1 do
        for j = !t + 1 to n - 1 do
          if !offender = None && not (Zint.divisible s.(i).(j) s.(!t).(!t)) then
            offender := Some i
        done
      done;
      match !offender with
      | Some i ->
        (* row t <- row t + row i, then re-run the pivot step at t. *)
        submul_row s l i !t Zint.minus_one
      | None ->
        if Zint.sign s.(!t).(!t) < 0 then negate_row s l !t;
        incr t
    end
  done;
  let invariant_factors =
    List.filter (fun d -> not (Zint.is_zero d))
      (List.init rank (fun i -> s.(i).(i)))
  in
  { s; l; r; invariant_factors }

let verify a { s; l; r; invariant_factors } =
  let k = Intmat.rows a and n = Intmat.cols a in
  Intmat.equal (Intmat.mul (Intmat.mul l a) r) s
  && Intmat.is_unimodular l
  && Intmat.is_unimodular r
  && (* diagonal *)
  (let ok = ref true in
   for i = 0 to k - 1 do
     for j = 0 to n - 1 do
       if i <> j && not (Zint.is_zero s.(i).(j)) then ok := false
     done
   done;
   !ok)
  && (* divisibility chain and signs *)
  (let rec chain = function
     | d1 :: (d2 :: _ as rest) ->
       Zint.sign d1 > 0 && Zint.divisible d2 d1 && chain rest
     | [ d ] -> Zint.sign d > 0
     | [] -> true
   in
   chain invariant_factors)
