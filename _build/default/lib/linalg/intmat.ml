type t = Zint.t array array

let rows m = Array.length m
let cols m = if rows m = 0 then 0 else Array.length m.(0)
let get m i j = m.(i).(j)
let make r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))

let of_ints ll =
  match ll with
  | [] -> invalid_arg "Intmat.of_ints: empty matrix"
  | first :: _ ->
    let c = List.length first in
    if c = 0 || List.exists (fun r -> List.length r <> c) ll then
      invalid_arg "Intmat.of_ints: ragged or empty rows";
    Array.of_list (List.map (fun r -> Array.of_list (List.map Zint.of_int r)) ll)

let to_ints m =
  Array.to_list (Array.map (fun r -> Array.to_list (Array.map Zint.to_int r)) m)

let row m i = Array.copy m.(i)
let col m j = Array.init (rows m) (fun i -> m.(i).(j))
let identity n = make n n (fun i j -> if i = j then Zint.one else Zint.zero)
let zero r c = make r c (fun _ _ -> Zint.zero)
let transpose m = make (cols m) (rows m) (fun i j -> m.(j).(i))
let copy m = Array.map Array.copy m

let equal a b =
  rows a = rows b && cols a = cols b
  &&
  let ok = ref true in
  for i = 0 to rows a - 1 do
    for j = 0 to cols a - 1 do
      if not (Zint.equal a.(i).(j) b.(i).(j)) then ok := false
    done
  done;
  !ok

let of_rows rs =
  match rs with
  | [] -> invalid_arg "Intmat.of_rows: empty"
  | first :: _ ->
    let c = Intvec.dim first in
    if List.exists (fun r -> Intvec.dim r <> c) rs then
      invalid_arg "Intmat.of_rows: dimension mismatch";
    Array.of_list (List.map Array.copy rs)

let of_cols cs = transpose (of_rows cs)

let append_row m v =
  if Intvec.dim v <> cols m then invalid_arg "Intmat.append_row: dimension mismatch";
  Array.append (copy m) [| Array.copy v |]

let hcat a b =
  if rows a <> rows b then invalid_arg "Intmat.hcat: row mismatch";
  make (rows a) (cols a + cols b) (fun i j ->
      if j < cols a then a.(i).(j) else b.(i).(j - cols a))

let sub_cols m lo len = make (rows m) len (fun i j -> m.(i).(lo + j))

let delete_row_col m i j =
  make (rows m - 1) (cols m - 1) (fun r c ->
      m.(if r < i then r else r + 1).(if c < j then c else c + 1))

let map2 f a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Intmat: dimension mismatch";
  make (rows a) (cols a) (fun i j -> f a.(i).(j) b.(i).(j))

let add = map2 Zint.add
let sub = map2 Zint.sub
let neg m = make (rows m) (cols m) (fun i j -> Zint.neg m.(i).(j))
let scale c m = make (rows m) (cols m) (fun i j -> Zint.mul c m.(i).(j))

let mul a b =
  if cols a <> rows b then invalid_arg "Intmat.mul: dimension mismatch";
  make (rows a) (cols b) (fun i j ->
      let acc = ref Zint.zero in
      for k = 0 to cols a - 1 do
        acc := Zint.add !acc (Zint.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let mul_vec m v =
  if Intvec.dim v <> cols m then invalid_arg "Intmat.mul_vec: dimension mismatch";
  Array.init (rows m) (fun i -> Intvec.dot m.(i) v)

let vec_mul v m =
  if Intvec.dim v <> rows m then invalid_arg "Intmat.vec_mul: dimension mismatch";
  Array.init (cols m) (fun j -> Intvec.dot v (col m j))

(* Fraction-free Bareiss elimination on a working copy.  Returns the
   number of pivots (rank) and, when the matrix is square and has full
   rank, leaves the determinant (up to the tracked sign) in the last
   pivot position. *)
let bareiss work =
  let r = Array.length work and c = if Array.length work = 0 then 0 else Array.length work.(0) in
  let sign = ref 1 in
  let prev = ref Zint.one in
  let pivot_row = ref 0 in
  let pivots = ref 0 in
  let j = ref 0 in
  while !pivot_row < r && !j < c do
    (* Find a pivot in column !j at or below !pivot_row. *)
    let p = ref (-1) in
    for i = !pivot_row to r - 1 do
      if !p < 0 && not (Zint.is_zero work.(i).(!j)) then p := i
    done;
    if !p < 0 then incr j
    else begin
      if !p <> !pivot_row then begin
        let tmp = work.(!p) in
        work.(!p) <- work.(!pivot_row);
        work.(!pivot_row) <- tmp;
        sign := - !sign
      end;
      let piv = work.(!pivot_row).(!j) in
      for i = !pivot_row + 1 to r - 1 do
        for k = !j + 1 to c - 1 do
          let num =
            Zint.sub (Zint.mul piv work.(i).(k)) (Zint.mul work.(i).(!j) work.(!pivot_row).(k))
          in
          work.(i).(k) <- Zint.divexact num !prev
        done;
        work.(i).(!j) <- Zint.zero
      done;
      prev := piv;
      incr pivot_row;
      incr pivots;
      incr j
    end
  done;
  (!pivots, !sign)

let det m =
  let n = rows m in
  if n <> cols m then invalid_arg "Intmat.det: non-square matrix";
  if n = 0 then Zint.one
  else begin
    let work = copy m in
    let pivots, sign = bareiss work in
    if pivots < n then Zint.zero
    else
      let d = work.(n - 1).(n - 1) in
      if sign < 0 then Zint.neg d else d
  end

let rank m =
  let work = copy m in
  fst (bareiss work)

let minor m i j = det (delete_row_col m i j)

let cofactor m i j =
  let d = minor m i j in
  if (i + j) mod 2 = 0 then d else Zint.neg d

(* adj(M)_{ji} = cofactor_{ij}, i.e. the transpose of the cofactor matrix. *)
let adjugate m =
  let n = rows m in
  if n <> cols m then invalid_arg "Intmat.adjugate: non-square matrix";
  if n = 0 then m
  else if n = 1 then identity 1
  else make n n (fun i j -> cofactor m j i)

let is_unimodular m =
  rows m = cols m
  &&
  let d = det m in
  Zint.is_one d || Zint.equal d Zint.minus_one

let pp fmt m =
  let widths =
    Array.init (cols m) (fun j ->
        let w = ref 0 in
        for i = 0 to rows m - 1 do
          w := Stdlib.max !w (String.length (Zint.to_string m.(i).(j)))
        done;
        !w)
  in
  for i = 0 to rows m - 1 do
    Format.pp_print_string fmt (if i = 0 then "[" else " ");
    Format.pp_print_string fmt "[";
    for j = 0 to cols m - 1 do
      if j > 0 then Format.pp_print_string fmt " ";
      Format.fprintf fmt "%*s" widths.(j) (Zint.to_string m.(i).(j))
    done;
    Format.pp_print_string fmt "]";
    if i = rows m - 1 then Format.pp_print_string fmt "]"
    else Format.pp_print_cut fmt ()
  done

let to_string m = Format.asprintf "@[<v>%a@]" pp m
