(** Dense integer matrices over {!Zint}.

    Row-major [Zint.t array array]; matrices are treated as immutable by
    every function here.  Determinant and rank use fraction-free Bareiss
    elimination, which keeps intermediate entries bounded by minors of
    the input and never leaves the integers. *)

type t = Zint.t array array

(** {1 Construction and access} *)

val make : int -> int -> (int -> int -> Zint.t) -> t
val of_ints : int list list -> t
(** @raise Invalid_argument on ragged rows or an empty matrix. *)

val to_ints : t -> int list list
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Zint.t
val row : t -> int -> Intvec.t
val col : t -> int -> Intvec.t
val identity : int -> t
val zero : int -> int -> t
val transpose : t -> t
val copy : t -> t
val equal : t -> t -> bool

val of_rows : Intvec.t list -> t
val of_cols : Intvec.t list -> t
val append_row : t -> Intvec.t -> t
(** Stack one extra row under the matrix. *)

val hcat : t -> t -> t
val sub_cols : t -> int -> int -> t
(** [sub_cols m lo len] keeps columns [lo .. lo+len-1]. *)

val delete_row_col : t -> int -> int -> t
(** [delete_row_col m i j] is the (i,j) minor's matrix. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val mul_vec : t -> Intvec.t -> Intvec.t
val vec_mul : Intvec.t -> t -> Intvec.t
(** Row-vector times matrix. *)

val scale : Zint.t -> t -> t

(** {1 Invariants} *)

val det : t -> Zint.t
(** Determinant by fraction-free Bareiss elimination.
    @raise Invalid_argument on a non-square matrix. *)

val rank : t -> int

val minor : t -> int -> int -> Zint.t
(** [minor m i j] is the determinant of [m] with row [i] and column [j]
    deleted. *)

val cofactor : t -> int -> int -> Zint.t
val adjugate : t -> t
(** Adjugate (classical adjoint): [mul m (adjugate m) = det m * I]. *)

val is_unimodular : t -> bool
(** Square, integral (trivially) and determinant ±1. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
