(** Dense integer (column) vectors over {!Zint}.

    The representation is a plain [Zint.t array]; vectors are treated as
    immutable by every function here (none of them mutates its
    arguments). *)

type t = Zint.t array

val of_ints : int list -> t
val of_int_array : int array -> t
val to_ints : t -> int list
(** @raise Failure if an entry overflows native [int]. *)

val dim : t -> int
val zero : int -> t
val unit : int -> int -> t
(** [unit n i] is the [i]-th standard basis vector of dimension [n]. *)

val get : t -> int -> Zint.t
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Zint.t -> t -> t
val scale_int : int -> t -> t
val dot : t -> t -> Zint.t

val is_zero : t -> bool

val content : t -> Zint.t
(** Gcd of the entries (non-negative); zero for the zero vector. *)

val is_primitive : t -> bool
(** True iff the entries are relatively prime (content = 1). *)

val primitive_part : t -> t
(** [primitive_part v] divides out the content.  Identity on the zero
    vector. *)

val first_nonzero : t -> int option
(** Index of the first (lowest-index) nonzero entry. *)

val normalize_sign : t -> t
(** Scale by -1 if needed so the first nonzero entry is positive — the
    paper's convention for canonical conflict vectors. *)

val linf_norm : t -> Zint.t
(** Max of absolute values of entries. *)

val map2 : (Zint.t -> Zint.t -> Zint.t) -> t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
