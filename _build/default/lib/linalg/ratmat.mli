(** Dense rational matrices and Gauss-Jordan elimination over {!Qnum}.

    Used wherever the paper's machinery leaves the integers: inverting
    the nonsingular block [B] of Theorem 3.1 conceptually, solving for
    LP vertices in the appendix derivations, and cross-checking the
    integer kernels computed by {!Hnf}. *)

type t = Qnum.t array array

val of_intmat : Intmat.t -> t
val make : int -> int -> (int -> int -> Qnum.t) -> t
val rows : t -> int
val cols : t -> int
val identity : int -> t
val equal : t -> t -> bool
val mul : t -> t -> t
val mul_vec : t -> Qnum.t array -> Qnum.t array
val transpose : t -> t

val rank : t -> int

val inverse : t -> t option
(** [None] when singular. *)

val solve : t -> Qnum.t array -> Qnum.t array option
(** [solve a b] finds some [x] with [a x = b], or [None] when the system
    is inconsistent.  If the system is underdetermined, free variables
    are set to zero. *)

val pp : Format.formatter -> t -> unit
