(** Column-style Hermite normal form, the engine behind the paper's
    Theorem 4.1/4.2.

    For [T ∈ Z^{k×n}] we compute a unimodular [U ∈ Z^{n×n}] such that
    [T U = H = [L 0]] where [L] is lower triangular with nonzero
    diagonal (when [rank T = k]).  Both [U] and its exact inverse
    [V = U⁻¹] are tracked during elimination (so [T = H V] without any
    matrix inversion at the end).

    All conflict vectors of a mapping matrix [T] are the integral
    relatively-prime combinations of the last [n - rank] columns of [U]
    (Theorem 4.2(3)); {!kernel_basis} returns exactly those columns. *)

type strategy =
  | Min_abs  (** Euclidean elimination with smallest-magnitude pivot —
                 slows coefficient growth (default). *)
  | Gcdext   (** One-pass Blankinship gcd transforms — the textbook
                 method, kept for the coefficient-growth ablation. *)

type result = {
  h : Intmat.t;  (** k×n Hermite form [L 0]. *)
  u : Intmat.t;  (** n×n unimodular multiplier, [T U = H]. *)
  v : Intmat.t;  (** [V = U⁻¹], so [T = H V]. *)
  rank : int;    (** Number of pivots = rank of [T]. *)
}

val compute : ?strategy:strategy -> ?reduce:bool -> Intmat.t -> result
(** [compute t] eliminates above-diagonal entries row by row with
    unimodular column operations.  With [reduce] (default [true]) the
    entries left of each pivot are reduced modulo the pivot and pivots
    are made positive, giving the canonical form; with [~reduce:false]
    only the [L 0] shape is guaranteed (all the paper needs). *)

val kernel_basis : ?strategy:strategy -> Intmat.t -> Intvec.t list
(** Lattice basis of [{x ∈ Z^n : T x = 0}]: the last [n - rank] columns
    of [U].  Every returned vector is primitive (its entries are
    relatively prime) because columns of a unimodular matrix are. *)

val verify : Intmat.t -> result -> bool
(** Check all claimed identities ([TU = H], [UV = I], shape of [H],
    unimodularity) — used by tests and as an internal sanity oracle. *)
