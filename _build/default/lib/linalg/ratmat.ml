type t = Qnum.t array array

let rows m = Array.length m
let cols m = if rows m = 0 then 0 else Array.length m.(0)
let make r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))
let of_intmat m = make (Intmat.rows m) (Intmat.cols m) (fun i j -> Qnum.of_zint (Intmat.get m i j))
let identity n = make n n (fun i j -> if i = j then Qnum.one else Qnum.zero)
let transpose m = make (cols m) (rows m) (fun i j -> m.(j).(i))

let equal a b =
  rows a = rows b && cols a = cols b
  &&
  let ok = ref true in
  for i = 0 to rows a - 1 do
    for j = 0 to cols a - 1 do
      if not (Qnum.equal a.(i).(j) b.(i).(j)) then ok := false
    done
  done;
  !ok

let mul a b =
  if cols a <> rows b then invalid_arg "Ratmat.mul: dimension mismatch";
  make (rows a) (cols b) (fun i j ->
      let acc = ref Qnum.zero in
      for k = 0 to cols a - 1 do
        acc := Qnum.add !acc (Qnum.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let mul_vec m v =
  if Array.length v <> cols m then invalid_arg "Ratmat.mul_vec: dimension mismatch";
  Array.init (rows m) (fun i ->
      let acc = ref Qnum.zero in
      for j = 0 to cols m - 1 do
        acc := Qnum.add !acc (Qnum.mul m.(i).(j) v.(j))
      done;
      !acc)

(* Gauss-Jordan on a working copy; returns the pivot columns. *)
let reduce work =
  let r = Array.length work and c = if Array.length work = 0 then 0 else Array.length work.(0) in
  let pivots = ref [] in
  let pr = ref 0 in
  let j = ref 0 in
  while !pr < r && !j < c do
    let p = ref (-1) in
    for i = !pr to r - 1 do
      if !p < 0 && not (Qnum.is_zero work.(i).(!j)) then p := i
    done;
    if !p < 0 then incr j
    else begin
      let tmp = work.(!p) in
      work.(!p) <- work.(!pr);
      work.(!pr) <- tmp;
      let inv = Qnum.inv work.(!pr).(!j) in
      for k = 0 to c - 1 do
        work.(!pr).(k) <- Qnum.mul work.(!pr).(k) inv
      done;
      for i = 0 to r - 1 do
        if i <> !pr && not (Qnum.is_zero work.(i).(!j)) then begin
          let f = work.(i).(!j) in
          for k = 0 to c - 1 do
            work.(i).(k) <- Qnum.sub work.(i).(k) (Qnum.mul f work.(!pr).(k))
          done
        end
      done;
      pivots := (!pr, !j) :: !pivots;
      incr pr;
      incr j
    end
  done;
  List.rev !pivots

let rank m =
  let work = Array.map Array.copy m in
  List.length (reduce work)

let inverse m =
  let n = rows m in
  if n <> cols m then invalid_arg "Ratmat.inverse: non-square matrix";
  let work = make n (2 * n) (fun i j -> if j < n then m.(i).(j) else if j - n = i then Qnum.one else Qnum.zero) in
  let pivots = reduce work in
  (* Singular iff fewer than n pivots land in the left block. *)
  if List.length (List.filter (fun (_, j) -> j < n) pivots) < n then None
  else Some (make n n (fun i j -> work.(i).(n + j)))

let solve a b =
  let r = rows a and c = cols a in
  if Array.length b <> r then invalid_arg "Ratmat.solve: dimension mismatch";
  let work = make r (c + 1) (fun i j -> if j < c then a.(i).(j) else b.(i)) in
  let pivots = reduce work in
  (* Inconsistent iff a pivot lands in the augmented column. *)
  if List.exists (fun (_, j) -> j = c) pivots then None
  else begin
    let x = Array.make c Qnum.zero in
    List.iter (fun (i, j) -> x.(j) <- work.(i).(c)) pivots;
    Some x
  end

let pp fmt m =
  for i = 0 to rows m - 1 do
    Format.pp_print_string fmt (if i = 0 then "[" else " ");
    Format.pp_print_string fmt "[";
    for j = 0 to cols m - 1 do
      if j > 0 then Format.pp_print_string fmt " ";
      Qnum.pp fmt m.(i).(j)
    done;
    Format.pp_print_string fmt "]";
    if i = rows m - 1 then Format.pp_print_string fmt "]"
    else Format.pp_print_cut fmt ()
  done
