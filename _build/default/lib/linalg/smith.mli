(** Smith normal form over {!Zint}.

    For [A ∈ Z^{k×n}] computes unimodular [L ∈ Z^{k×k}], [R ∈ Z^{n×n}]
    with [L A R = S] diagonal, diagonal entries non-negative and each
    dividing the next.  Not required by the paper's main theorems, but
    the natural companion of {!Hnf}: it yields the invariant factors of
    the conflict-vector lattice and is used in tests as an independent
    cross-check of kernel ranks. *)

type result = {
  s : Intmat.t;          (** k×n diagonal Smith form. *)
  l : Intmat.t;          (** k×k unimodular, rows side. *)
  r : Intmat.t;          (** n×n unimodular, columns side. *)
  invariant_factors : Zint.t list;  (** Nonzero diagonal entries, in order. *)
}

val compute : Intmat.t -> result
val verify : Intmat.t -> result -> bool
