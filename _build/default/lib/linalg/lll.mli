(** Lenstra-Lenstra-Lovász lattice basis reduction over {!Zint}, with
    exact rational Gram-Schmidt (no floating point).

    Used to make conflict detection scale: the box oracle of
    [Conflict] enumerates O((2 mu + 1)^n) points, while the conflict
    vectors of a mapping live in the rank-(n-k) kernel lattice of [T];
    reducing that lattice basis first makes coefficient-space
    enumeration tight and essentially independent of [mu].  (The paper
    never needed this because its closed forms stop at k = n-3; the
    exact fallback for the cases its theorems cannot decide does.) *)

val reduce : ?delta:Qnum.t -> Intvec.t list -> Intvec.t list
(** [reduce basis] LLL-reduces a list of linearly independent integer
    vectors (default Lovász parameter [delta = 3/4]).  The result spans
    the same lattice, is size-reduced ([|mu_ij| <= 1/2]) and satisfies
    the Lovász condition.
    @raise Invalid_argument on an empty or dependent input basis. *)

val is_reduced : ?delta:Qnum.t -> Intvec.t list -> bool
(** Check both LLL conditions — used by tests. *)

val gram_schmidt : Intvec.t list -> Qnum.t array array * Qnum.t array
(** [(mu, norms)] where [mu.(i).(j)] (for [j < i]) is the Gram-Schmidt
    coefficient and [norms.(i)] is [||b*_i||²].  Exposed for tests. *)
