lib/linalg/intvec.mli: Format Zint
