lib/linalg/lll.mli: Intvec Qnum
