lib/linalg/ratmat.ml: Array Format Intmat List Qnum
