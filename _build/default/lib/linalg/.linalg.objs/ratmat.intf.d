lib/linalg/ratmat.mli: Format Intmat Qnum
