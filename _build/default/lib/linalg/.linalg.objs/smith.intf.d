lib/linalg/smith.mli: Intmat Zint
