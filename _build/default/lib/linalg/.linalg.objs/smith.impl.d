lib/linalg/smith.ml: Array Intmat List Stdlib Zint
