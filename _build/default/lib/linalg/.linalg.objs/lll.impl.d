lib/linalg/lll.ml: Array Intvec List Qnum Stdlib Zint
