lib/linalg/intmat.mli: Format Intvec Zint
