lib/linalg/intvec.ml: Array Format List Stdlib Zint
