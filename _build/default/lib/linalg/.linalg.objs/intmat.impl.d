lib/linalg/intmat.ml: Array Format Intvec List Stdlib String Zint
