lib/linalg/hnf.ml: Array Intmat List Zint
