lib/linalg/hnf.mli: Intmat Intvec
