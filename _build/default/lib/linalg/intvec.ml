type t = Zint.t array

let of_ints l = Array.of_list (List.map Zint.of_int l)
let of_int_array a = Array.map Zint.of_int a
let to_ints v = Array.to_list (Array.map Zint.to_int v)

let dim = Array.length
let zero n = Array.make n Zint.zero

let unit n i =
  let v = Array.make n Zint.zero in
  v.(i) <- Zint.one;
  v

let get v i = v.(i)

let equal a b =
  dim a = dim b
  &&
  let rec go i = i >= dim a || (Zint.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Stdlib.compare (dim a) (dim b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= dim a then 0
      else
        let c = Zint.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let map2 f a b =
  if dim a <> dim b then invalid_arg "Intvec.map2: dimension mismatch";
  Array.init (dim a) (fun i -> f a.(i) b.(i))

let add = map2 Zint.add
let sub = map2 Zint.sub
let neg v = Array.map Zint.neg v
let scale c v = Array.map (Zint.mul c) v
let scale_int c v = scale (Zint.of_int c) v

let dot a b =
  if dim a <> dim b then invalid_arg "Intvec.dot: dimension mismatch";
  let acc = ref Zint.zero in
  for i = 0 to dim a - 1 do
    acc := Zint.add !acc (Zint.mul a.(i) b.(i))
  done;
  !acc

let is_zero v = Array.for_all Zint.is_zero v

let content v = Array.fold_left Zint.gcd Zint.zero v

let is_primitive v = Zint.is_one (content v)

let primitive_part v =
  let g = content v in
  if Zint.is_zero g || Zint.is_one g then v
  else Array.map (fun x -> Zint.divexact x g) v

let first_nonzero v =
  let rec go i =
    if i >= dim v then None
    else if Zint.is_zero v.(i) then go (i + 1)
    else Some i
  in
  go 0

let normalize_sign v =
  match first_nonzero v with
  | Some i when Zint.sign v.(i) < 0 -> neg v
  | Some _ | None -> v

let linf_norm v = Array.fold_left (fun acc x -> Zint.max acc (Zint.abs x)) Zint.zero v

let pp fmt v =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Zint.pp)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
