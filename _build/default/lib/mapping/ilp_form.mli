(** The integer-programming route to Problem 2.2 (formulations
    (5.1)-(5.2) and the appendix's convex-subset partitioning).

    For [T ∈ Z^{(n-1)×n}] the conflict vector is a linear function of
    [Pi] (Proposition 3.2): [gamma(Pi) = C Pi^T] with [C] from
    {!Conflict.f_coefficient_matrix}.  The disjunctive conflict-freedom
    constraint [∃i |f_i| > mu_i] is partitioned into [2n] convex
    branches ([f_i >= mu_i + 1] or [-f_i >= mu_i + 1]), each
    intersected with the dependence constraints [Pi D >= 1]; when the
    dependences force every [pi_i >= 1] the objective is linear and the
    appendix's observation applies: every extreme point is integral, so
    each branch is solved by vertex enumeration with an exact ILP
    fallback.  Candidate optima are screened by the gcd check the paper
    postpones (the canonical conflict vector is the primitive part of
    [C Pi^T]) and by rank, exactly as in Examples 5.1/5.2. *)

type branch = {
  description : string;
  problem : Simplex.problem;
}

type solution = {
  pi : Intvec.t;
  objective : int;             (** [Σ pi_i mu_i] = total time - 1. *)
  branch : string;             (** The binding disjunct ([|f_i| > mu_i])
                                   at the optimum. *)
  gamma : Intvec.t;            (** Canonical conflict vector of the result. *)
  integral_vertices : bool;    (** The appendix integrality observation,
                                   verified on this instance. *)
}

val branches : Algorithm.t -> s:Intmat.t -> branch list
(** The [2n] convex subproblems.  Dependence constraints are encoded as
    [Pi d >= 1] (equivalent to [Pi d > 0] over the integers).
    @raise Invalid_argument unless [S] is (n-2)×n. *)

val optimize_5d_to_2d :
  ?max_objective:int -> Algorithm.t -> s:Intmat.t -> (Intvec.t * int) option
(** Formulation (5.5)-(5.6) as the paper uses it: optimize the schedule
    of a 5-dimensional algorithm onto a 2-dimensional array, screening
    candidates with the Proposition 8.1 closed-form kernel generators
    (no Hermite reduction of [T] per candidate).  Returns [(Pi°, total
    time)].  Equivalent to Procedure 5.1 with the [Prop81.decide]
    conflict test; the perf bench compares the two screens.
    @raise Invalid_argument unless [S] satisfies [Prop81.applicable]. *)

val optimize : ?positivity_required:bool -> Algorithm.t -> s:Intmat.t -> solution option
(** Solve every branch's LP relaxation for a lower bound, then scan
    integer points level by level from that bound, accepting the first
    one that passes the exact checks the paper postpones (rank,
    [Pi D > 0], feasibility of the {e primitive part} of the conflict
    vector).  The level scan is necessary for exactness: the postponed
    gcd condition can reject every {e vertex} of the optimal face while
    an interior lattice point of the same face survives — this happens
    for matrix multiplication at every odd [mu] (see EXPERIMENTS.md,
    E6).

    With [positivity_required] (default [true]) the function insists
    that the dependence constraints imply [pi_i >= 1] — the premise
    under which the linear objective [Σ pi_i mu_i] equals
    [Σ |pi_i| mu_i]; it is verified on the solution and an exception is
    raised if violated, rather than silently returning a non-optimal
    schedule.  @raise Failure in that case. *)
