type t = {
  h33 : Zint.t;
  h34 : Zint.t;
  h35 : Zint.t;
  u4 : Intvec.t;
  u5 : Intvec.t;
}

let applicable ~s =
  Intmat.rows s = 2 && Intmat.cols s = 5
  && Zint.is_one (Intmat.get s 0 0)
  && Zint.is_one
       (Zint.sub (Intmat.get s 1 1) (Zint.mul (Intmat.get s 1 0) (Intmat.get s 0 1)))

(* w_j = (c_{1j}, c_{2j}, e_j) spans ker S over Z (Equations 8.5); the
   leading 2x2 block of S is unimodular, so the free coordinates
   (3,4,5) determine integral coordinates (1,2). *)
let w_vector s j =
  let g r c = Intmat.get s r c in
  let s12 = g 0 1 and s21 = g 1 0 in
  let s1j = g 0 j and s2j = g 1 j in
  let c2 = Zint.sub (Zint.mul s21 s1j) s2j in
  let c1 = Zint.sub (Zint.neg (Zint.mul s12 c2)) s1j in
  Array.init 5 (fun i ->
      if i = 0 then c1 else if i = 1 then c2 else if i = j then Zint.one else Zint.zero)

let compute ~s ~pi =
  if not (applicable ~s) then None
  else begin
    let w3 = w_vector s 2 and w4 = w_vector s 3 and w5 = w_vector s 4 in
    let h33 = Intvec.dot pi w3 in
    let h34 = Intvec.dot pi w4 in
    let h35 = Intvec.dot pi w5 in
    let combine coeffs vecs =
      List.fold_left2
        (fun acc c v -> Intvec.add acc (Intvec.scale c v))
        (Intvec.zero 5) coeffs vecs
    in
    let g1, p1, q1 = Zint.gcdext h33 h34 in
    if Zint.is_zero g1 && Zint.is_zero h35 then None (* rank T < 3 *)
    else if Zint.is_zero g1 then
      (* h33 = h34 = 0: the kernel equation only kills w5. *)
      Some { h33; h34; h35; u4 = w3; u5 = w4 }
    else begin
      let u4 =
        combine [ Zint.divexact h34 g1; Zint.neg (Zint.divexact h33 g1) ] [ w3; w4 ]
      in
      let g2 = Zint.gcd g1 h35 in
      let f = Zint.divexact h35 g2 in
      let u5 =
        combine
          [ Zint.neg (Zint.mul p1 f); Zint.neg (Zint.mul q1 f); Zint.divexact g1 g2 ]
          [ w3; w4; w5 ]
      in
      Some { h33; h34; h35; u4; u5 }
    end
  end
(* appended to prop81.ml *)

(* Theorem 2.2 per-vector feasibility, locally. *)
let feasible ~mu v =
  let ok = ref false in
  Array.iteri
    (fun i x -> if Zint.compare (Zint.abs x) (Zint.of_int mu.(i)) > 0 then ok := true)
    v;
  !ok

let screen ~mu { u4; u5; _ } =
  if Array.length mu <> 5 then invalid_arg "Prop81.screen: mu must have 5 entries";
  (* Necessary: the generators and their unit combinations must escape
     the box (beta in {e1, e2, e1+e2, e1-e2}). *)
  let necessary =
    feasible ~mu u4 && feasible ~mu u5
    && feasible ~mu (Intvec.add u4 u5)
    && feasible ~mu (Intvec.sub u4 u5)
  in
  if not necessary then Some false
  else begin
    (* Sufficient: Theorem 4.7's conditions on the generator pair. *)
    let n = 5 in
    let cond1 =
      let rec go i =
        i < n
        && ((let a = u4.(i) and b = u5.(i) in
             Zint.sign (Zint.mul a b) >= 0
             && Zint.compare (Zint.abs (Zint.add a b)) (Zint.of_int mu.(i)) > 0)
            || go (i + 1))
      in
      go 0
    in
    let cond2 =
      let rec go j =
        j < n
        && ((let a = u4.(j) and b = u5.(j) in
             Zint.sign (Zint.mul a b) <= 0
             && Zint.compare (Zint.abs (Zint.sub a b)) (Zint.of_int mu.(j)) > 0)
            || go (j + 1))
      in
      go 0
    in
    if cond1 && cond2 then Some true else None
  end

let decide ~mu ~s ~pi =
  match compute ~s ~pi with
  | None ->
    (* rank T < 3: with a 2-dimensional kernel... the proposition does
       not apply; defer to the generic machinery. *)
    Conflict.is_conflict_free ~mu (Intmat.append_row s pi)
  | Some r -> (
    match screen ~mu r with
    | Some b -> b
    | None -> Conflict.conflict_in_lattice ~mu [ r.u4; r.u5 ] = None)
