let respects pi d =
  let prods = Intmat.vec_mul pi d in
  Array.for_all (fun x -> Zint.sign x > 0) prods

let time_of pi j =
  if Array.length j <> Intvec.dim pi then
    invalid_arg "Schedule.time_of: arity mismatch";
  let acc = ref Zint.zero in
  Array.iteri (fun i x -> acc := Zint.add !acc (Zint.mul_int pi.(i) x)) j;
  Zint.to_int !acc

let objective ~mu pi =
  if Array.length mu <> Intvec.dim pi then
    invalid_arg "Schedule.objective: arity mismatch";
  let acc = ref Zint.zero in
  Array.iteri (fun i m -> acc := Zint.add !acc (Zint.mul_int (Zint.abs pi.(i)) m)) mu;
  Zint.to_int !acc

let total_time ~mu pi = 1 + objective ~mu pi

let makespan_oracle iset pi =
  let best_min = ref max_int and best_max = ref min_int in
  Index_set.iter
    (fun j ->
      let t = time_of pi j in
      if t < !best_min then best_min := t;
      if t > !best_max then best_max := t)
    iset;
  !best_max - !best_min + 1
