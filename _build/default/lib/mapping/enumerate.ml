let all_optimal_schedules ?max_objective (alg : Algorithm.t) ~s =
  match Procedure51.optimize ?max_objective alg ~s with
  | None -> []
  | Some best ->
    let mu = Index_set.bounds alg.Algorithm.index_set in
    let d = alg.Algorithm.dependences in
    let k = Intmat.rows s + 1 in
    let cost = best.Procedure51.total_time - 1 in
    List.filter
      (fun pi ->
        Schedule.respects pi d
        &&
        let t = Intmat.append_row s pi in
        Intmat.rank t = k && fst (Theorems.decide ~mu t))
      (Procedure51.candidates_at_cost ~mu cost)

let best_by_buffers ?max_objective (alg : Algorithm.t) ~s =
  let d = alg.Algorithm.dependences in
  let tm_of pi = Tmap.make ~s ~pi in
  let scored =
    List.filter_map
      (fun pi ->
        match Tmap.find_routing (tm_of pi) ~d with
        | Some routing ->
          let buffers = Array.fold_left ( + ) 0 routing.Tmap.buffers in
          let hops = Array.fold_left ( + ) 0 routing.Tmap.hops in
          Some ((buffers, hops), pi, routing)
        | None -> None)
      (all_optimal_schedules ?max_objective alg ~s)
  in
  match List.sort (fun (a, _, _) (b, _, _) -> compare a b) scored with
  | [] -> None
  | (_, pi, routing) :: _ -> Some (pi, routing)

type pareto_point = {
  total_time : int;
  processors : int;
  pi : Intvec.t;
  s : Intmat.t;
}

let pareto_front ?entry_bound ?(time_slack = 8) ?(accept = fun _ _ -> true)
    (alg : Algorithm.t) ~k =
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  match Space_opt.optimize_joint ?entry_bound alg ~k with
  | None -> []
  | Some (pi0, _) ->
    let base_cost = Schedule.objective ~mu pi0 in
    let candidates = ref [] in
    for cost = base_cost to base_cost + time_slack do
      List.iter
        (fun pi ->
          if Schedule.respects pi d then
            match Space_opt.optimize ?entry_bound ~objective:Space_opt.Processors alg ~pi ~k with
            | Some r when accept pi r.Space_opt.s ->
              candidates :=
                {
                  total_time = cost + 1;
                  processors = r.Space_opt.processors;
                  pi;
                  s = r.Space_opt.s;
                }
                :: !candidates
            | Some _ | None -> ())
        (Procedure51.candidates_at_cost ~mu cost)
    done;
    (* Keep non-dominated points: smaller time and smaller array. *)
    let sorted =
      List.sort
        (fun a b -> compare (a.total_time, a.processors) (b.total_time, b.processors))
        !candidates
    in
    let rec sweep best_procs = function
      | [] -> []
      | p :: rest ->
        if p.processors < best_procs then p :: sweep p.processors rest
        else sweep best_procs rest
    in
    sweep max_int sorted
