lib/mapping/tmap.mli: Index_set Intmat Intvec
