lib/mapping/space_opt.ml: Algorithm Array Index_set Intmat Intvec List Procedure51 Schedule Theorems Tmap Zint
