lib/mapping/procedure51.mli: Algorithm Intmat Intvec Tmap
