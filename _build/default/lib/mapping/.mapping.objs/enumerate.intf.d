lib/mapping/enumerate.mli: Algorithm Intmat Intvec Tmap
