lib/mapping/prop81.ml: Array Conflict Intmat Intvec List Zint
