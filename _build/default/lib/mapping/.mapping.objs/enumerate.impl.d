lib/mapping/enumerate.ml: Algorithm Array Index_set Intmat Intvec List Procedure51 Schedule Space_opt Theorems Tmap
