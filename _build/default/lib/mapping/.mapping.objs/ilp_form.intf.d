lib/mapping/ilp_form.mli: Algorithm Intmat Intvec Simplex
