lib/mapping/ilp_form.ml: Algorithm Array Conflict Index_set Intmat Intvec Lin List Printf Procedure51 Prop81 Qnum Schedule Simplex Stdlib Vertex Zint
