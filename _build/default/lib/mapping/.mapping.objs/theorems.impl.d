lib/mapping/theorems.ml: Array Conflict Hnf Intmat List Zint
