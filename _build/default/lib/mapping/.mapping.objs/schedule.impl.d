lib/mapping/schedule.ml: Array Index_set Intmat Intvec Zint
