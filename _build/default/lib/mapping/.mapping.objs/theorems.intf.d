lib/mapping/theorems.mli: Hnf Intmat
