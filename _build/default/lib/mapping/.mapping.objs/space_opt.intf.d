lib/mapping/space_opt.mli: Algorithm Intmat Intvec
