lib/mapping/tmap.ml: Array Hashtbl Ilp Index_set Intmat Intvec Lin List Option Qnum Schedule Simplex Zint
