lib/mapping/schedule.mli: Index_set Intmat Intvec
