lib/mapping/prop81.mli: Intmat Intvec Zint
