lib/mapping/conflict.mli: Index_set Intmat Intvec
