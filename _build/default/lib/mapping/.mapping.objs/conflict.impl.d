lib/mapping/conflict.ml: Array Hashtbl Hnf Index_set Intmat Intvec List Lll Qnum Ratmat Zint
