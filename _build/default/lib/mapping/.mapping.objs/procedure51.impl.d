lib/mapping/procedure51.ml: Algorithm Array Conflict Index_set Intmat Intvec List Schedule Theorems Tmap
