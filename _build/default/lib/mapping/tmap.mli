(** Mapping matrices [T = [S; Pi] ∈ Z^{k×n}] (Definition 2.2): the
    space mapping [S ∈ Z^{(k-1)×n}] stacked over the linear schedule
    [Pi], mapping an n-dimensional algorithm onto a (k-1)-dimensional
    processor array.

    Also implements condition 2 of Definition 2.2: the interconnection
    feasibility [SD = PK] with hop counts bounded by the schedule
    ([Σ_j k_ji <= Pi d_i]), solved exactly per dependence with the
    {!Ilp} substrate. *)

type t = private { s : Intmat.t; pi : Intvec.t }

val make : s:Intmat.t -> pi:Intvec.t -> t
(** @raise Invalid_argument when [S] and [Pi] disagree on [n]. *)

val of_rows : int list list -> t
(** Build from the rows of the full matrix [T]; the last row is [Pi]. *)

val matrix : t -> Intmat.t
(** The full k×n matrix, [S] rows first, [Pi] last (Definition 2.2). *)

val n : t -> int
(** Algorithm dimension (columns). *)

val k : t -> int
(** Rows of [T]; the target array is (k-1)-dimensional. *)

val space_of : t -> int array -> int array
(** PE coordinates [S j] of an index point. *)

val time_of : t -> int array -> int
(** Execution time [Pi j]. *)

val has_full_rank : t -> bool
(** Condition 4 of Definition 2.2: [rank T = k]. *)

val processors : t -> Index_set.t -> int array list
(** The set of PE coordinates actually used, deduplicated and sorted. *)

(** {1 Interconnection feasibility (condition 2)} *)

type routing = {
  k_matrix : Intmat.t;
  (** r×m non-negative matrix with [P K = S D]; column [i] spells how
      many times each primitive carries the datum of dependence [d_i]. *)
  hops : int array;     (** [Σ_j k_ji] per dependence. *)
  buffers : int array;  (** [Pi d_i - hops_i] per dependence — the
                            number of delay registers on that stream. *)
}

val nearest_neighbor_primitives : int -> Intmat.t
(** The (k-1)×(2(k-1)) matrix [P] of ±unit primitives (the paper's
    4-neighbor example generalized to any array dimension). *)

val find_routing : ?p:Intmat.t -> t -> d:Intmat.t -> routing option
(** Minimal-hop routing of every dependence, or [None] when some
    dependence cannot reach its destination within its schedule slack.
    [p] defaults to {!nearest_neighbor_primitives}[ (k-1)]. *)
