let is_feasible ~mu gamma =
  if Array.length mu <> Intvec.dim gamma then
    invalid_arg "Conflict.is_feasible: arity mismatch";
  let ok = ref false in
  Array.iteri
    (fun i g -> if Zint.compare (Zint.abs g) (Zint.of_int mu.(i)) > 0 then ok := true)
    gamma;
  !ok

let kernel_basis t = Hnf.kernel_basis t

(* ------------------------------------------------------------------ *)
(* Exact box oracle.  We search for gamma with |gamma_i| <= mu_i,
   gamma <> 0 and T gamma = 0 by assigning components left to right,
   pruning with interval bounds on the remaining partial sums.  The
   first nonzero component is forced positive (gamma and -gamma are
   equivalent). *)

let to_int_matrix t =
  Array.init (Intmat.rows t) (fun i ->
      Array.init (Intmat.cols t) (fun j -> Zint.to_int (Intmat.get t i j)))

let search_box ~mu t ~emit =
  let rows = to_int_matrix t in
  let k = Array.length rows and n = Array.length mu in
  if n <> Intmat.cols t then invalid_arg "Conflict: arity mismatch";
  (* suffix.(r).(i) = sum over c >= i of |T r c| * mu_c : the maximal
     swing the unassigned components can still contribute to row r. *)
  let suffix =
    Array.init k (fun r ->
        let s = Array.make (n + 1) 0 in
        for i = n - 1 downto 0 do
          s.(i) <- s.(i + 1) + (abs rows.(r).(i) * mu.(i))
        done;
        s)
  in
  let gamma = Array.make n 0 in
  let partial = Array.make k 0 in
  let exception Stop in
  let rec go i ~nonzero_seen =
    if i = n then begin
      if nonzero_seen then
        if emit (Intvec.of_int_array gamma) then raise Stop
    end
    else begin
      let feasible_partial v =
        (* After assigning gamma_i = v, can every row still reach 0? *)
        let ok = ref true in
        for r = 0 to k - 1 do
          let s = partial.(r) + (rows.(r).(i) * v) in
          if abs s > suffix.(r).(i + 1) then ok := false
        done;
        !ok
      in
      let lo = if nonzero_seen then -mu.(i) else 0 in
      for v = lo to mu.(i) do
        if feasible_partial v then begin
          gamma.(i) <- v;
          for r = 0 to k - 1 do
            partial.(r) <- partial.(r) + (rows.(r).(i) * v)
          done;
          go (i + 1) ~nonzero_seen:(nonzero_seen || v <> 0);
          for r = 0 to k - 1 do
            partial.(r) <- partial.(r) - (rows.(r).(i) * v)
          done;
          gamma.(i) <- 0
        end
      done
    end
  in
  try go 0 ~nonzero_seen:false with Stop -> ()

let find_conflict ~mu t =
  let found = ref None in
  search_box ~mu t ~emit:(fun g ->
      found := Some (Intvec.normalize_sign (Intvec.primitive_part g));
      true);
  !found

(* ------------------------------------------------------------------ *)
(* Lattice-based oracle: enumerate coefficients over an LLL-reduced
   kernel basis instead of points of the box. *)

let conflict_in_lattice ~mu basis =
  match basis with
  | [] -> None
  | basis ->
    let basis = Array.of_list (Lll.reduce basis) in
    let d = Array.length basis in
    let n = Array.length mu in
    if Array.exists (fun v -> Intvec.dim v <> n) basis then
      invalid_arg "Conflict.conflict_in_lattice: arity mismatch";
    (* Coefficient bounds: x = (B^T B)^{-1} B^T gamma, so
       |x_i| <= Sigma_j |P_ij| mu_j. *)
    let btb =
      Ratmat.make d d (fun i j -> Qnum.of_zint (Intvec.dot basis.(i) basis.(j)))
    in
    let inv =
      match Ratmat.inverse btb with
      | Some m -> m
      | None -> invalid_arg "Conflict.find_conflict_lattice: dependent kernel basis"
    in
    let p i j =
      let acc = ref Qnum.zero in
      for k = 0 to d - 1 do
        acc := Qnum.add !acc (Qnum.mul inv.(i).(k) (Qnum.of_zint basis.(k).(j)))
      done;
      !acc
    in
    let bound =
      Array.init d (fun i ->
          let acc = ref Qnum.zero in
          for j = 0 to n - 1 do
            acc := Qnum.add !acc (Qnum.mul_zint (Qnum.abs (p i j)) (Zint.of_int mu.(j)))
          done;
          Zint.to_int (Qnum.floor !acc))
    in
    (* Integer rows of the basis for fast accumulation; entries of a
       reduced kernel basis are tiny, so native ints are safe here
       (checked by to_int). *)
    let brow = Array.map (fun v -> Array.map Zint.to_int v) basis in
    (* suffix.(r).(i) = max contribution of coefficients i..d-1 to
       coordinate r. *)
    let suffix =
      Array.init n (fun r ->
          let s = Array.make (d + 1) 0 in
          for i = d - 1 downto 0 do
            s.(i) <- s.(i + 1) + (abs brow.(i).(r) * bound.(i))
          done;
          s)
    in
    let gamma = Array.make n 0 in
    let found = ref None in
    let exception Stop in
    let rec go i ~nonzero =
      if i = d then begin
        if nonzero then begin
          let ok = ref true in
          for r = 0 to n - 1 do
            if abs gamma.(r) > mu.(r) then ok := false
          done;
          if !ok then begin
            found :=
              Some
                (Intvec.normalize_sign
                   (Intvec.primitive_part (Array.map Zint.of_int gamma)));
            raise Stop
          end
        end
      end
      else begin
        let feasible v =
          let ok = ref true in
          for r = 0 to n - 1 do
            let s = gamma.(r) + (brow.(i).(r) * v) in
            if abs s > mu.(r) + suffix.(r).(i + 1) then ok := false
          done;
          !ok
        in
        let lo = if nonzero then -bound.(i) else 0 in
        for v = lo to bound.(i) do
          if feasible v then begin
            for r = 0 to n - 1 do
              gamma.(r) <- gamma.(r) + (brow.(i).(r) * v)
            done;
            go (i + 1) ~nonzero:(nonzero || v <> 0);
            for r = 0 to n - 1 do
              gamma.(r) <- gamma.(r) - (brow.(i).(r) * v)
            done
          end
        done
      end
    in
    (try go 0 ~nonzero:false with Stop -> ());
    !found

let find_conflict_lattice ~mu t =
  if Array.length mu <> Intmat.cols t then invalid_arg "Conflict: arity mismatch";
  conflict_in_lattice ~mu (Hnf.kernel_basis t)

(* Box volume threshold above which the lattice oracle takes over. *)
let box_volume_limit = 2_000_000

let is_conflict_free ~mu t =
  let volume =
    Array.fold_left
      (fun acc m -> if acc > box_volume_limit then acc else acc * ((2 * m) + 1))
      1 mu
  in
  if volume <= box_volume_limit then find_conflict ~mu t = None
  else find_conflict_lattice ~mu t = None

let all_in_box ~mu t =
  let acc = ref [] in
  search_box ~mu t ~emit:(fun g ->
      acc := g :: !acc;
      false);
  List.rev !acc

let conflicting_pairs_oracle iset t =
  let images = Hashtbl.create 1024 in
  Index_set.iter
    (fun j ->
      let img = Array.to_list (Array.map Zint.to_int (Intmat.mul_vec t (Intvec.of_int_array j))) in
      let prev = try Hashtbl.find images img with Not_found -> [] in
      Hashtbl.replace images img (Array.copy j :: prev))
    iset;
  Hashtbl.fold
    (fun _ pts acc ->
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      pairs pts @ acc)
    images []

(* ------------------------------------------------------------------ *)
(* k = n-1 closed form (Section 3). *)

let single_conflict_vector t =
  let n = Intmat.cols t in
  if Intmat.rows t <> n - 1 then
    invalid_arg "Conflict.single_conflict_vector: T must be (n-1) x n";
  (* gamma_i = (-1)^i det(T with column i deleted): the Laplace
     expansion of the singular square matrix [row; T] gives T gamma = 0. *)
  let gamma =
    Array.init n (fun i ->
        let d = Intmat.det (Intmat.make (n - 1) (n - 1) (fun r c -> Intmat.get t r (if c < i then c else c + 1))) in
        if i mod 2 = 0 then d else Zint.neg d)
  in
  if Intvec.is_zero gamma then None
  else Some (Intvec.normalize_sign (Intvec.primitive_part gamma))

let f_coefficient_matrix ~s =
  let n = Intmat.cols s in
  if Intmat.rows s <> n - 2 then
    invalid_arg "Conflict.f_coefficient_matrix: S must be (n-2) x n";
  (* Column j of C is the (un-normalized) signed-minor vector of
     [S; e_j]; by multilinearity gamma(pi) = C pi^T. *)
  let column j =
    let t = Intmat.append_row s (Intvec.unit n j) in
    Array.init n (fun i ->
        let d = Intmat.det (Intmat.make (n - 1) (n - 1) (fun r c -> Intmat.get t r (if c < i then c else c + 1))) in
        if i mod 2 = 0 then d else Zint.neg d)
  in
  Intmat.of_cols (List.init n column)
