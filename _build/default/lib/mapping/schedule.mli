(** Linear schedules [Pi ∈ Z^{1×n}] (Definition 2.2, condition 1 and
    Equations 2.4/2.7).

    A schedule is represented as an {!Intvec.t} treated as a row
    vector; the computation indexed by [j] executes at time [Pi j]. *)

val respects : Intvec.t -> Intmat.t -> bool
(** [respects pi d] is [Pi D > 0]: every dependence is strictly
    delayed, so the partial order of the algorithm is preserved. *)

val time_of : Intvec.t -> int array -> int
(** [time_of pi j] is [Pi j]. *)

val total_time : mu:int array -> Intvec.t -> int
(** Equation 2.7: [1 + Σ |pi_i| mu_i] — the exact makespan on a
    constant-bounded index set. *)

val makespan_oracle : Index_set.t -> Intvec.t -> int
(** Equation 2.4 computed by brute force over the index set:
    [max { Pi (j1 - j2) } + 1].  Exponential; used by tests to validate
    {!total_time}. *)

val objective : mu:int array -> Intvec.t -> int
(** The paper's objective [f = total_time - 1 = Σ |pi_i| mu_i]. *)
