(** Problem 2.1 made constructive: enumerate conflict-free mappings
    rather than merely testing one.

    [all_optimal_schedules] lists {e every} time-optimal conflict-free
    schedule for a fixed space mapping — the full candidate set a
    designer would pick from using secondary criteria (buffers, wire
    directions).  [pareto_front] explores the time/processor trade-off
    over the unit space-mapping family of [Space_opt], answering the
    question behind the paper's Problems 6.1/6.2: which (total time,
    array size) pairs are achievable at all? *)

val all_optimal_schedules :
  ?max_objective:int -> Algorithm.t -> s:Intmat.t -> Intvec.t list
(** All conflict-free, full-rank, dependence-respecting [Pi] at the
    minimal total-time level; [] when none exists within the bound. *)

val best_by_buffers :
  ?max_objective:int -> Algorithm.t -> s:Intmat.t -> (Intvec.t * Tmap.routing) option
(** The paper's conclusion names buffer counts as the next optimization
    criterion.  Among {e all} time-optimal conflict-free schedules,
    return one minimizing the total number of delay registers
    [Σ_i (Pi d_i - hops_i)] (ties: fewest total hops), with its
    routing.  [None] when no schedule or no routing exists. *)

type pareto_point = {
  total_time : int;
  processors : int;
  pi : Intvec.t;
  s : Intmat.t;
}

val pareto_front :
  ?entry_bound:int ->
  ?time_slack:int ->
  ?accept:(Intvec.t -> Intmat.t -> bool) ->
  Algorithm.t ->
  k:int ->
  pareto_point list
(** Non-dominated (total time, processors) pairs, smallest time first.
    Schedules are scanned from the joint optimum's time level up to
    [time_slack] extra levels (default 8); for each valid schedule the
    cheapest conflict-free array of the unit family gives the processor
    count.  [accept pi s] (default: accept all) can impose additional
    model constraints on each candidate point — e.g. link-collision
    freedom via [Linkcheck.predict], which Definition 2.2 does not
    require but [23]'s stricter model does. *)
