type branch = {
  description : string;
  problem : Simplex.problem;
}

type solution = {
  pi : Intvec.t;
  objective : int;
  branch : string;
  gamma : Intvec.t;
  integral_vertices : bool;
}

let q_of_z = Qnum.of_zint

let dependence_constraints d =
  let n = Intmat.rows d in
  List.init (Intmat.cols d) (fun i ->
      let col = Intmat.col d i in
      let coeffs = Array.init n (fun j -> q_of_z col.(j)) in
      Lin.ge_int coeffs 1)

let branches (alg : Algorithm.t) ~s =
  let n = Algorithm.dim alg in
  if Intmat.rows s <> n - 2 then
    invalid_arg "Ilp_form.branches: S must be (n-2) x n";
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let c = Conflict.f_coefficient_matrix ~s in
  let deps = dependence_constraints alg.Algorithm.dependences in
  let objective = Array.init n (fun i -> Qnum.of_int mu.(i)) in
  List.concat
    (List.init n (fun i ->
         let row = Array.init n (fun j -> q_of_z (Intmat.get c i j)) in
         let bound = mu.(i) + 1 in
         [
           {
             description = Printf.sprintf "f_%d >= %d" (i + 1) bound;
             problem = Simplex.{ nvars = n; objective; constraints = Lin.ge_int row bound :: deps };
           };
           {
             description = Printf.sprintf "-f_%d >= %d" (i + 1) bound;
             problem =
               Simplex.{ nvars = n; objective; constraints = Lin.ge_int (Lin.neg row) bound :: deps };
           };
         ]))

let optimize_5d_to_2d ?max_objective (alg : Algorithm.t) ~s =
  if not (Prop81.applicable ~s) then
    invalid_arg "Ilp_form.optimize_5d_to_2d: S fails the Prop 8.1 normalization";
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  let max_objective =
    match max_objective with
    | Some m -> m
    | None -> Array.fold_left (fun acc m -> acc + (m * (m + 1))) 0 mu
  in
  let accept pi =
    Schedule.respects pi d
    && Intmat.rank (Intmat.append_row s pi) = 3
    && Prop81.decide ~mu ~s ~pi
  in
  let rec by_cost cost =
    if cost > max_objective then None
    else
      match List.find_opt accept (Procedure51.candidates_at_cost ~mu cost) with
      | Some pi -> Some (pi, cost + 1)
      | None -> by_cost (cost + 1)
  in
  by_cost 1

let optimize ?(positivity_required = true) (alg : Algorithm.t) ~s =
  let n = Algorithm.dim alg in
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let c = Conflict.f_coefficient_matrix ~s in
  let all_integral = ref true in
  (* Per-branch LP optima give a lower bound on the true objective;
     the vertices illustrate the appendix's integrality observation. *)
  let bounds =
    List.filter_map
      (fun { description; problem } ->
        match Simplex.solve problem with
        | Simplex.Infeasible -> None
        | Simplex.Unbounded ->
          if positivity_required then
            failwith
              ("Ilp_form.optimize: branch '" ^ description
             ^ "' is unbounded; the linear objective premise does not hold")
          else None
        | Simplex.Optimal { obj; _ } ->
          let vertices = Vertex.enumerate ~nvars:n problem.Simplex.constraints in
          if not (Vertex.all_integral vertices) then all_integral := false;
          Some obj)
      (branches alg ~s)
  in
  match bounds with
  | [] -> None
  | first :: rest ->
    let lower = List.fold_left Qnum.min first rest in
    let accept cost pi =
      let t = Intmat.append_row s pi in
      if Intmat.rank t <> n - 1 then None
      else if not (Schedule.respects pi alg.Algorithm.dependences) then None
      else begin
        let gamma = Intvec.normalize_sign (Intvec.primitive_part (Intmat.mul_vec c pi)) in
        if Intvec.is_zero gamma || not (Conflict.is_feasible ~mu gamma) then None
        else begin
          if positivity_required && Array.exists (fun x -> Zint.sign x <= 0) pi then
            failwith "Ilp_form.optimize: solution violates the positivity premise";
          let branch =
            (* Name the binding disjunct for reporting. *)
            let rec find i =
              if i >= n then "interior of the optimal face"
              else
                let fi = Zint.to_int gamma.(i) in
                if abs fi > mu.(i) then
                  Printf.sprintf "%sf_%d >= %d" (if fi > 0 then "" else "-") (i + 1) (mu.(i) + 1)
                else find (i + 1)
            in
            find 0
          in
          Some { pi; objective = cost; branch; gamma; integral_vertices = !all_integral }
        end
      end
    in
    (* Enumerate integer points level by level starting at the LP lower
       bound: the gcd condition the formulation postpones (Section 8)
       can reject every vertex of the optimal face, in which case the
       optimum is an interior lattice point of that face — e.g. matmul
       at odd mu, where Pi = (1, mu-1, 2)-style schedules win. *)
    let max_objective =
      Stdlib.max
        (Array.fold_left (fun acc m -> acc + (m * (m + 1))) 0 mu)
        (Zint.to_int (Qnum.ceil lower) * 4)
    in
    let rec by_cost cost =
      if cost > max_objective then None
      else
        match
          List.find_map (fun pi -> accept cost pi) (Procedure51.candidates_at_cost ~mu cost)
        with
        | Some sol -> Some sol
        | None -> by_cost (cost + 1)
    in
    by_cost (Zint.to_int (Qnum.ceil lower))
