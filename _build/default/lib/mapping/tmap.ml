type t = { s : Intmat.t; pi : Intvec.t }

let make ~s ~pi =
  if Intmat.cols s <> Intvec.dim pi then
    invalid_arg "Tmap.make: S and Pi disagree on the algorithm dimension";
  { s; pi }

let of_rows rows =
  match List.rev rows with
  | [] | [ _ ] -> invalid_arg "Tmap.of_rows: need at least two rows"
  | pi :: srows_rev ->
    make
      ~s:(Intmat.of_ints (List.rev srows_rev))
      ~pi:(Intvec.of_ints pi)

let matrix t = Intmat.append_row t.s t.pi
let n t = Intmat.cols t.s
let k t = Intmat.rows t.s + 1

let space_of t j =
  if Array.length j <> n t then invalid_arg "Tmap.space_of: arity mismatch";
  Array.init (Intmat.rows t.s) (fun r ->
      let acc = ref 0 in
      Array.iteri (fun c x -> acc := !acc + (Zint.to_int (Intmat.get t.s r c) * x)) j;
      !acc)

let time_of t j = Schedule.time_of t.pi j

let has_full_rank t = Intmat.rank (matrix t) = k t

let processors t iset =
  let seen = Hashtbl.create 256 in
  Index_set.iter
    (fun j ->
      let p = space_of t j in
      let key = Array.to_list p in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key p)
    iset;
  List.sort compare (Hashtbl.fold (fun _ p acc -> Array.copy p :: acc) seen [])

type routing = {
  k_matrix : Intmat.t;
  hops : int array;
  buffers : int array;
}

let nearest_neighbor_primitives dim =
  if dim = 0 then Intmat.zero 0 0
  else
    Intmat.make dim (2 * dim) (fun i j ->
        if j = 2 * i then Zint.one
        else if j = (2 * i) + 1 then Zint.minus_one
        else Zint.zero)

(* Route one dependence: find non-negative integral [kcol] minimizing
   total hops subject to [P kcol = sd] and [Σ kcol <= slack]. *)
let route_column p sd slack =
  let r = Intmat.cols p in
  if r = 0 then
    (* 0-dimensional array (k = 1): every dependence stays in place. *)
    if Array.for_all Zint.is_zero sd then Some [||] else None
  else begin
    let rows = Intmat.rows p in
    let ones = Array.make r Qnum.one in
    let eqs =
      List.init rows (fun i ->
          let coeffs = Array.init r (fun j -> Qnum.of_zint (Intmat.get p i j)) in
          Lin.(coeffs =. Qnum.of_zint sd.(i)))
    in
    let nonneg = List.init r (fun j -> Lin.(ge_int (var r j) 0)) in
    let budget = Lin.(ones <=. Qnum.of_int slack) in
    let problem =
      Simplex.{ nvars = r; objective = ones; constraints = (budget :: eqs) @ nonneg }
    in
    match Ilp.solve problem with
    | Ilp.Optimal { x; _ } -> Some x
    | Ilp.Infeasible -> None
    | Ilp.Unbounded -> assert false (* objective is a sum of nonnegative vars *)
  end

let find_routing ?p t ~d =
  let dim = k t - 1 in
  let p = match p with Some p -> p | None -> nearest_neighbor_primitives dim in
  if Intmat.rows p <> dim then invalid_arg "Tmap.find_routing: P has wrong height";
  let m = Intmat.cols d in
  let sd = Intmat.mul t.s d in
  let slack i =
    let pid = Intvec.dot t.pi (Intmat.col d i) in
    Zint.to_int pid
  in
  let cols =
    List.init m (fun i -> route_column p (Intmat.col sd i) (slack i))
  in
  if List.exists (fun c -> c = None) cols then None
  else begin
    let r = Intmat.cols p in
    let kcols = List.map Option.get cols in
    let k_matrix =
      if r = 0 then Intmat.zero 0 m
      else Intmat.of_cols kcols
    in
    let hops =
      Array.of_list
        (List.map (fun c -> Array.fold_left (fun a x -> a + Zint.to_int x) 0 c) kcols)
    in
    let buffers = Array.init m (fun i -> slack i - hops.(i)) in
    Some { k_matrix; hops; buffers }
  end
