examples/matmul_linear_array.ml: Algorithm Array Conflict Exec Index_set Intvec List Matmul Printf Procedure51 Random String Sys Tmap Trace
