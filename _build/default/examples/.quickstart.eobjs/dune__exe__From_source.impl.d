examples/from_source.ml: Algorithm Array Exec Fir Format Index_set Intmat Intvec List Loopnest Printf Procedure51 Space_opt String Tmap
