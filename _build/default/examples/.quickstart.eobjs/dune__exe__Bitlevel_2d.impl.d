examples/bitlevel_2d.ml: Algorithm Bit_matmul Conflict Dataflow Exec Hnf Index_set Intmat Intvec List Printf Procedure51 Prop81 Theorems Tmap Zint
