examples/bitlevel_2d.mli:
