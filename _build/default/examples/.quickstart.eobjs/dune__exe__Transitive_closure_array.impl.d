examples/transitive_closure_array.ml: Array Dataflow Exec Ilp_form Intvec List Printf Procedure51 Random Sys Tmap Transitive_closure
