examples/matmul_linear_array.mli:
