examples/quickstart.ml: Algorithm Conflict Exec Index_set Intmat Intvec List Matmul Printf Procedure51 Random Tmap
