examples/quickstart.mli:
