(* Command-line front end for the Shang-Fortes mapping machinery.

   $ shangfortes hnf -m "1,7,1,1;1,7,1,0"
   $ shangfortes analyze -m "1,1,-1;1,4,1" --mu 4,4,4
   $ shangfortes optimize --algorithm matmul --mu 4 -s "1,1,-1"
   $ shangfortes simulate --algorithm tc --mu 4 -s "0,0,1" --pi 5,1,1 *)

open Cmdliner

let parse_vector s =
  try List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s)
  with Failure _ -> failwith ("cannot parse vector: " ^ s)

let parse_matrix s =
  let rows = List.map parse_vector (String.split_on_char ';' s) in
  Intmat.of_ints rows

(* ------------------------------- hnf ------------------------------- *)

let hnf_cmd =
  let matrix =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "matrix" ] ~docv:"ROWS" ~doc:"Matrix, rows separated by ';'.")
  in
  let run m =
    let t = parse_matrix m in
    let res = Hnf.compute t in
    Printf.printf "T =\n%s\nH = T U =\n%s\nU =\n%s\nV = U^-1 =\n%s\nrank = %d\nverified: %b\n"
      (Intmat.to_string t) (Intmat.to_string res.Hnf.h) (Intmat.to_string res.Hnf.u)
      (Intmat.to_string res.Hnf.v) res.Hnf.rank (Hnf.verify t res);
    match Hnf.kernel_basis t with
    | [] -> print_endline "kernel: trivial"
    | basis ->
      print_endline "kernel basis (conflict-vector generators):";
      List.iter (fun g -> Printf.printf "  %s\n" (Intvec.to_string g)) basis
  in
  Cmd.v
    (Cmd.info "hnf" ~doc:"Hermite normal form with multiplier U and V = U^-1 (Theorem 4.1)")
    Term.(const run $ matrix)

(* ----------------------------- analyze ----------------------------- *)

let mu_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "mu" ] ~docv:"MU" ~doc:"Index-set upper bounds, comma separated.")

let analyze_cmd =
  let matrix =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "matrix" ] ~docv:"ROWS"
          ~doc:"Mapping matrix T = [S; Pi], rows separated by ';' (last row is Pi).")
  in
  let run m mu_s =
    let t = parse_matrix m in
    let mu = Array.of_list (parse_vector mu_s) in
    if Array.length mu <> Intmat.cols t then failwith "mu arity does not match T";
    let k = Intmat.rows t and n = Intmat.cols t in
    Printf.printf "T (%dx%d) =\n%s\nrank = %d (need %d for a (k-1)-dimensional array)\n"
      k n (Intmat.to_string t) (Intmat.rank t) k;
    let free, how = Theorems.decide ~mu t in
    let how_s =
      match how with
      | Theorems.Full_rank_square -> "square full-rank test"
      | Theorems.Adjugate_form -> "Theorem 3.1 (adjugate closed form)"
      | Theorems.Column_infeasible -> "Theorem 4.4 (a kernel column fits in the box)"
      | Theorems.Hermite_n_minus_2 -> "Theorem 4.7 (sufficient)"
      | Theorems.Hermite_n_minus_3 -> "corrected Theorem 4.8 (sufficient)"
      | Theorems.Gcd_sufficient -> "Theorem 4.5 (gcd, sufficient)"
      | Theorems.Box_oracle -> "exact box oracle"
    in
    Printf.printf "conflict-free on J = [0,mu]: %b   [decided by %s]\n" free how_s;
    (match Conflict.find_conflict ~mu t with
    | Some g -> Printf.printf "witness conflict vector: %s\n" (Intvec.to_string g)
    | None -> ());
    match Conflict.kernel_basis t with
    | [] -> ()
    | basis ->
      print_endline "conflict-vector generators:";
      List.iter
        (fun g ->
          Printf.printf "  %s  (feasible: %b)\n" (Intvec.to_string g)
            (Conflict.is_feasible ~mu g))
        basis
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Conflict analysis of a mapping matrix (Theorems 2.2, 3.1, 4.3-4.8)")
    Term.(const run $ matrix $ mu_arg)

(* ------------------------- shared: algorithms ---------------------- *)

let builtin_algorithm name mu =
  match name with
  | "matmul" -> (Matmul.algorithm ~mu, Some Matmul.paper_s)
  | "tc" | "transitive-closure" -> (Transitive_closure.algorithm ~mu, Some Transitive_closure.paper_s)
  | "convolution" -> (Convolution.algorithm ~mu_ij:mu ~mu_pq:(max 1 (mu / 2)), Some Convolution.example_s)
  | "bitmm" | "bit-matmul" -> (Bit_matmul.algorithm ~mu_word:mu ~mu_bit:mu, Some Bit_matmul.example_s)
  | "lu" -> (Lu.algorithm ~mu, Some Lu.example_s)
  | other -> failwith ("unknown algorithm: " ^ other ^ " (matmul|tc|convolution|bitmm|lu)")

let algorithm_arg =
  Arg.(
    value
    & opt string "matmul"
    & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc:"matmul, tc, convolution, bitmm or lu.")

let mu_int_arg =
  Arg.(value & opt int 4 & info [ "mu" ] ~docv:"N" ~doc:"Problem size (loop upper bound).")

let s_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "space" ] ~docv:"ROWS"
        ~doc:"Space mapping S, rows separated by ';' (default: the paper's choice).")

(* ----------------------------- optimize ---------------------------- *)

let optimize_cmd =
  let method_arg =
    Arg.(
      value
      & opt string "p51"
      & info [ "method" ] ~docv:"M" ~doc:"p51 (Procedure 5.1) or ilp (formulation (5.1)-(5.2)).")
  in
  let routing_arg =
    Arg.(value & flag & info [ "routing" ] ~doc:"Require SD = PK routing on nearest-neighbor links.")
  in
  let bound_arg =
    Arg.(value & opt (some int) None & info [ "max-objective" ] ~docv:"N" ~doc:"Search bound.")
  in
  let run name mu s_opt method_ routing bound =
    let alg, default_s = builtin_algorithm name mu in
    let s =
      match (s_opt, default_s) with
      | Some s, _ -> parse_matrix s
      | None, Some s -> s
      | None, None -> failwith "no default space mapping; pass -s"
    in
    match method_ with
    | "p51" ->
      (match Procedure51.optimize ~require_routing:routing ?max_objective:bound alg ~s with
      | Some r ->
        Printf.printf "Pi = %s\ntotal time = %d\ncandidates tried = %d\n"
          (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time
          r.Procedure51.candidates_tried;
        (match r.Procedure51.routing with
        | Some rt ->
          Printf.printf "hops = (%s)  buffers = (%s)\n"
            (String.concat "," (Array.to_list (Array.map string_of_int rt.Tmap.hops)))
            (String.concat "," (Array.to_list (Array.map string_of_int rt.Tmap.buffers)))
        | None -> ())
      | None -> print_endline "no conflict-free schedule within the search bound")
    | "ilp" ->
      (match Ilp_form.optimize alg ~s with
      | Some sol ->
        Printf.printf "Pi = %s\ntotal time = %d\nbinding branch: %s\ngamma = %s\n"
          (Intvec.to_string sol.Ilp_form.pi)
          (sol.Ilp_form.objective + 1)
          sol.Ilp_form.branch
          (Intvec.to_string sol.Ilp_form.gamma)
      | None -> print_endline "no solution")
    | other -> failwith ("unknown method: " ^ other)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Find the time-optimal conflict-free schedule (Problem 2.2)")
    Term.(const run $ algorithm_arg $ mu_int_arg $ s_arg $ method_arg $ routing_arg $ bound_arg)

(* ----------------------------- simulate ---------------------------- *)

let simulate_cmd =
  let pi_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "pi" ] ~docv:"PI" ~doc:"Linear schedule vector, comma separated.")
  in
  let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print the execution table.") in
  let run name mu s_opt pi_s trace =
    let alg, default_s = builtin_algorithm name mu in
    let s =
      match (s_opt, default_s) with
      | Some s, _ -> parse_matrix s
      | None, Some s -> s
      | None, None -> failwith "no default space mapping; pass -s"
    in
    let pi = Intvec.of_ints (parse_vector pi_s) in
    let tm = Tmap.make ~s ~pi in
    let r = Exec.run alg Dataflow.semantics tm in
    Printf.printf
      "makespan = %d\nprocessors = %d\ncomputations = %d\nconflicts = %d\n\
       causality violations = %d\nlink collisions = %d\nbuffers = (%s)\n\
       dataflow correct = %b\nutilization = %.3f\n"
      r.Exec.makespan r.Exec.num_processors r.Exec.computations
      (List.length r.Exec.conflicts)
      (List.length r.Exec.causality_violations)
      (List.length r.Exec.collisions)
      (String.concat "," (Array.to_list (Array.map string_of_int r.Exec.max_buffer_occupancy)))
      r.Exec.values_ok r.Exec.utilization;
    List.iter
      (fun c ->
        Printf.printf "conflict at t=%d pe=(%s): %d points\n" c.Exec.time
          (String.concat "," (Array.to_list (Array.map string_of_int c.Exec.pe)))
          (List.length c.Exec.points))
      r.Exec.conflicts;
    if trace then
      if Tmap.k tm = 2 then print_string (Trace.linear_array_table alg tm)
      else print_string (Trace.firing_list alg tm)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Cycle-accurate simulation of an algorithm under a mapping")
    Term.(const run $ algorithm_arg $ mu_int_arg $ s_arg $ pi_arg $ trace_arg)

(* ------------------------------ parse ------------------------------ *)

let parse_cmd =
  let src_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE"
          ~doc:"Loop nest, e.g. 'for i = 0..4, j = 0..4, k = 0..4 { C[i,j] = C[i,j] + A[i,k]*B[k,j] }'.")
  in
  let optimize_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "optimize" ] ~docv:"S"
          ~doc:"Also find the time-optimal schedule for this space mapping (rows ';'-separated).")
  in
  let space_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "array-dim" ] ~docv:"K"
          ~doc:"Also search the cheapest conflict-free K-dimensional array (Problem 6.1).")
  in
  let run src opt_s array_dim =
    match Loopnest.parse_result src with
    | Error e ->
      prerr_endline (Loopnest.error_to_string e);
      exit 1
    | Ok a ->
      Format.printf "%a@." Loopnest.pp_analysis a;
      let alg = a.Loopnest.algorithm in
      let pi_found = ref None in
      (match opt_s with
      | None -> ()
      | Some s ->
        let s = parse_matrix s in
        (match Procedure51.optimize alg ~s with
        | Some r ->
          pi_found := Some r.Procedure51.pi;
          Printf.printf "optimal Pi = %s, total time = %d\n"
            (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time
        | None -> print_endline "no conflict-free schedule found"));
      match array_dim with
      | None -> ()
      | Some dim ->
        let pi =
          match !pi_found with
          | Some pi -> pi
          | None -> (
            (* Use the cost-minimal free schedule as Problem 6.1's
               given Pi. *)
            match Procedure51.minimal_schedule alg with
            | Some pi -> pi
            | None -> failwith "no valid schedule exists")
        in
        (match Space_opt.optimize alg ~pi ~k:(dim + 1) with
        | Some r ->
          Printf.printf "space-optimal S =\n%s\nprocessors = %d, wire length = %d\n"
            (Intmat.to_string r.Space_opt.s) r.Space_opt.processors r.Space_opt.wire_length
        | None -> print_endline "no conflict-free space mapping in the searched family")
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Extract (J, D) from a nested-loop program; optionally optimize and place it")
    Term.(const run $ src_arg $ optimize_arg $ space_arg)

(* ------------------------------ pareto ------------------------------ *)

let pareto_cmd =
  let dim_arg =
    Arg.(value & opt int 1 & info [ "array-dim" ] ~docv:"K" ~doc:"Array dimension (default 1).")
  in
  let collision_free_arg =
    Arg.(
      value & flag
      & info [ "collision-free" ]
          ~doc:"Also require link-collision freedom ([23]'s stricter model).")
  in
  let run name mu dim collision_free =
    let alg, _ = builtin_algorithm name mu in
    let accept pi s =
      (not collision_free)
      ||
      let tm = Tmap.make ~s ~pi in
      match Tmap.find_routing tm ~d:alg.Algorithm.dependences with
      | Some routing -> Linkcheck.predict alg tm routing = []
      | None -> false
    in
    let front = Enumerate.pareto_front ~accept alg ~k:(dim + 1) in
    if front = [] then print_endline "no achievable points found"
    else
      List.iter
        (fun p ->
          Printf.printf "t = %-4d PEs = %-4d Pi = %-12s S = %s\n" p.Enumerate.total_time
            p.Enumerate.processors
            (Intvec.to_string p.Enumerate.pi)
            (Intmat.to_string p.Enumerate.s))
        front
  in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Achievable (total time, processors) trade-off (Problems 2.1/6.2)")
    Term.(const run $ algorithm_arg $ mu_int_arg $ dim_arg $ collision_free_arg)

(* ------------------------------ stats ------------------------------ *)

let stats_cmd =
  let pi_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "pi" ] ~docv:"PI" ~doc:"Linear schedule vector, comma separated.")
  in
  let run name mu s_opt pi_s =
    let alg, default_s = builtin_algorithm name mu in
    let s =
      match (s_opt, default_s) with
      | Some s, _ -> parse_matrix s
      | None, Some s -> s
      | None, None -> failwith "no default space mapping; pass -s"
    in
    let tm = Tmap.make ~s ~pi:(Intvec.of_ints (parse_vector pi_s)) in
    Format.printf "%a@." Stats.pp (Stats.compute alg tm)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Array statistics of a mapping (PEs, utilization, wire length)")
    Term.(const run $ algorithm_arg $ mu_int_arg $ s_arg $ pi_arg)

(* ------------------------------- main ------------------------------ *)

let () =
  let doc = "time-optimal conflict-free mappings of uniform dependence algorithms" in
  let info = Cmd.info "shangfortes" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ hnf_cmd; analyze_cmd; optimize_cmd; simulate_cmd; parse_cmd; pareto_cmd; stats_cmd ]))
