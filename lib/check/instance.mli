(** A differential-check instance: a mapping matrix [T] together with
    the index-set bounds [mu] it is judged on.

    Instances are the currency of the whole [check] subsystem — {!Gen}
    produces them, {!Oracle} ground-truths them, {!Diff} pushes them
    through every fast path, {!Shrink} minimizes the failing ones and
    {!Corpus} persists those as regression cases.  The textual format
    is the corpus file format (one instance per file):

    {v
    # optional comment lines
    mu: 6,6,6,6
    t: 1,7,1,1;1,7,1,0
    v} *)

type t = {
  mu : int array;  (** Upper bounds of [J = { 0 <= j_i <= mu_i }]. *)
  tmat : Intmat.t; (** The k×n mapping matrix. *)
}

val make : mu:int array -> Intmat.t -> t
(** @raise Invalid_argument when [mu] and the matrix disagree on [n],
    or some [mu_i < 1]. *)

val n : t -> int
(** Columns of [tmat] = dimension of the index set. *)

val k : t -> int
(** Rows of [tmat]. *)

val points : t -> int
(** Cardinality of the index set, [prod (mu_i + 1)]. *)

val equal : t -> t -> bool

val size : t -> int
(** The well-founded shrink measure: [n + k + sum mu + sum |t_ij|].
    Every {!Shrink} step strictly decreases it. *)

val to_string : t -> string
(** The corpus file format shown above (no comment lines). *)

val of_string : string -> t
(** Parses the corpus format; ['#'] lines and blank lines are ignored.
    @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
