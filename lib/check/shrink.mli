(** Greedy minimization of failing instances.

    [shrink ~keeps_failing inst] repeatedly applies the first candidate
    transformation (in a fixed deterministic order) that preserves
    [keeps_failing], until none applies.  Candidates are, in order:
    dropping an index-set dimension (a column of [T] together with its
    bound), dropping a row of [T], reducing a bound [mu_i] (to 1,
    halved, decremented), and reducing a matrix entry (to 0, halved,
    moved one toward 0).

    Every transformation strictly decreases {!Instance.size}, so the
    loop terminates; and because the result admits no further failing
    candidate, shrinking is idempotent:
    [shrink ~keeps_failing (shrink ~keeps_failing i)] is
    [shrink ~keeps_failing i] (tested in [test_check.ml]). *)

val candidates : Instance.t -> Instance.t Seq.t
(** All single-step reductions of an instance, in application order.
    Each has strictly smaller {!Instance.size}. *)

val shrink : keeps_failing:(Instance.t -> bool) -> Instance.t -> Instance.t
(** [keeps_failing] must hold of the input (otherwise the input is
    returned unchanged). *)
