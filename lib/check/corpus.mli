(** Persistence of shrunk failing instances as regression cases.

    A corpus case is one {!Instance.t} in the textual format of
    {!Instance.to_string}, stored as a [*.case] file.  [test/corpus/]
    is the repository's regression directory: every file there is
    replayed by [dune runtest] (see [test_check.ml]), asserting that
    all fast paths agree with the oracle on it — so once a fuzzing run
    lands a counterexample, it can never silently regress. *)

val extension : string
(** [".case"]. *)

val save : dir:string -> name:string -> ?comment:string -> Instance.t -> string
(** Write [dir/name.case] (creating [dir] if needed) and return the
    path.  [comment] lines are prefixed with [# ]. *)

val load_file : string -> Instance.t
(** @raise Failure on malformed content. *)

val load_dir : string -> (string * Instance.t) list
(** All [*.case] files of a directory, sorted by filename; the empty
    list when the directory does not exist. *)
