type family =
  | General
  | Square
  | Codim1
  | Codim2
  | Rank_deficient
  | Boundary

let families = [ General; Square; Codim1; Codim2; Rank_deficient; Boundary ]

let family_name = function
  | General -> "general"
  | Square -> "square"
  | Codim1 -> "codim1"
  | Codim2 -> "codim2"
  | Rank_deficient -> "rank-deficient"
  | Boundary -> "boundary"

let mu rng ~size ~n = Array.init n (fun _ -> 1 + Random.State.int rng (max 1 (size + 1)))

let entry rng ~max_entry = Random.State.int rng ((2 * max_entry) + 1) - max_entry

let matrix rng ~k ~n ~max_entry =
  Intmat.make k n (fun _ _ -> Zint.of_int (entry rng ~max_entry))

(* A planted kernel vector whose entries straddle the Theorem 2.2
   feasibility boundary: each |gamma_i| lands on mu_i or mu_i + 1 (or a
   small interior value), so the generated T exercises exactly the
   strict-inequality edge of the closed-form conditions. *)
let boundary_gamma rng mu =
  let n = Array.length mu in
  let gamma =
    Array.init n (fun i ->
        let mag =
          match Random.State.int rng 4 with
          | 0 -> mu.(i)         (* on the boundary: still a conflict *)
          | 1 -> mu.(i) + 1     (* just past it: feasible coordinate *)
          | 2 -> 0
          | _ -> 1 + Random.State.int rng (max 1 mu.(i))
        in
        if Random.State.bool rng then mag else -mag)
  in
  if Array.for_all (fun x -> x = 0) gamma then gamma.(Random.State.int rng n) <- 1;
  gamma

(* Rows orthogonal to [gamma]: a basis of the integer orthogonal
   complement, lightly mixed with random row additions so the Hermite
   multiplier the fast paths compute is not trivially the basis we
   started from. *)
let orthogonal_rows rng gamma ~k =
  let g = Intmat.of_rows [ Intvec.of_int_array gamma ] in
  let basis = Array.of_list (Hnf.kernel_basis g) in
  let nb = Array.length basis in
  (* Fisher-Yates on a copy, then take the first k rows. *)
  for i = nb - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = basis.(i) in
    basis.(i) <- basis.(j);
    basis.(j) <- tmp
  done;
  let rows = Array.sub basis 0 k in
  for _ = 0 to k do
    let i = Random.State.int rng k and j = Random.State.int rng k in
    if i <> j then
      rows.(i) <- Intvec.add rows.(i) (Intvec.scale_int (entry rng ~max_entry:1) rows.(j))
  done;
  Intmat.of_rows (Array.to_list rows)

let pick_n rng ~size = 2 + Random.State.int rng (max 1 (min 4 (size + 1)))

let instance ?family rng ~size =
  let n = pick_n rng ~size in
  let family =
    match family with
    | Some f -> f
    | None -> List.nth families (Random.State.int rng (List.length families))
  in
  (* Families that need a codimension fall back to General when n is
     too small to provide it. *)
  let family =
    match family with
    | Codim2 when n < 3 -> General
    | f -> f
  in
  let max_entry = size + 1 in
  let bounds = mu rng ~size ~n in
  let tmat =
    match family with
    | General ->
      let k = 1 + Random.State.int rng n in
      matrix rng ~k ~n ~max_entry
    | Square -> matrix rng ~k:n ~n ~max_entry
    | Codim1 -> matrix rng ~k:(n - 1) ~n ~max_entry
    | Codim2 -> matrix rng ~k:(n - 2) ~n ~max_entry
    | Rank_deficient ->
      let k = max 2 (1 + Random.State.int rng n) in
      let m = matrix rng ~k:(k - 1) ~n ~max_entry in
      let combo =
        List.fold_left
          (fun acc i ->
            Intvec.add acc (Intvec.scale_int (entry rng ~max_entry:1) (Intmat.row m i)))
          (Intvec.zero n)
          (List.init (k - 1) Fun.id)
      in
      let rows = List.init (k - 1) (Intmat.row m) @ [ combo ] in
      (* Insert the dependent row at a random position. *)
      let pos = Random.State.int rng k in
      let arr = Array.of_list rows in
      let last = arr.(k - 1) in
      for i = k - 1 downto pos + 1 do
        arr.(i) <- arr.(i - 1)
      done;
      arr.(pos) <- last;
      Intmat.of_rows (Array.to_list arr)
    | Boundary ->
      let gamma = boundary_gamma rng bounds in
      let k = if n = 2 then 1 else n - 1 - Random.State.int rng 2 in
      orthogonal_rows rng gamma ~k
  in
  Instance.make ~mu:bounds tmat

let ith ~seed ~size i =
  let rng = Random.State.make [| 0x5F17; seed; size; i |] in
  instance rng ~size

(* ------------------------------------------------------------------ *)
(* Dependence-matrix and source-program generators (shared with the
   end-to-end pipeline fuzzing). *)

let dependences rng ~n ~m =
  let column () =
    let d = Array.init n (fun _ -> Random.State.int rng 3 - 1) in
    (match Array.find_opt (fun x -> x <> 0) d with
    | None -> d.(Random.State.int rng n) <- 1
    | Some _ -> ());
    (* Lexicographically positive: flip the sign when the first nonzero
       entry is negative, so every column is schedulable. *)
    let first = ref 0 in
    (try
       Array.iter
         (fun x ->
           if x <> 0 then begin
             first := x;
             raise Exit
           end)
         d
     with Exit -> ());
    if !first < 0 then Array.map (fun x -> -x) d else d
  in
  List.init m (fun _ -> Array.to_list (column ()))

let var_names = [| "i"; "j"; "k" |]

let affine v off =
  if off = 0 then var_names.(v)
  else if off > 0 then Printf.sprintf "%s+%d" var_names.(v) off
  else Printf.sprintf "%s%d" var_names.(v) off

let source_program rng =
  let nv = 2 + Random.State.int rng 2 in
  let bounds =
    List.init nv (fun v ->
        Printf.sprintf "%s = 0..%d" var_names.(v) (2 + Random.State.int rng 3))
  in
  (* LHS: an output indexed by a strict subset or all of the vars. *)
  let out_dims = 1 + Random.State.int rng (nv - 1) in
  let lhs_idx = List.init out_dims (fun v -> var_names.(v)) in
  let lhs = Printf.sprintf "OUT[%s]" (String.concat "," lhs_idx) in
  (* Inputs: full-dimensional references with random small offsets. *)
  let input i =
    let name = Printf.sprintf "IN%d" i in
    let idx = List.init nv (fun v -> affine v (Random.State.int rng 3 - 1)) in
    Printf.sprintf "%s[%s]" name (String.concat "," idx)
  in
  let inputs = List.init (1 + Random.State.int rng 2) input in
  Printf.sprintf "for %s { %s = %s + %s }" (String.concat ", " bounds) lhs lhs
    (String.concat " * " inputs)

let source_two_statement rng =
  let nv = 2 in
  let bounds =
    List.init nv (fun v ->
        Printf.sprintf "%s = 0..%d" var_names.(v) (2 + Random.State.int rng 3))
  in
  let idx () = List.init nv (fun v -> affine v (Random.State.int rng 3 - 1)) in
  let full_idx = List.init nv (fun v -> var_names.(v)) in
  let s1 =
    Printf.sprintf "B[%s] = B[%s] + A[%s]"
      (String.concat "," full_idx)
      (String.concat "," (idx ()))
      (String.concat "," (idx ()))
  in
  let s2 =
    Printf.sprintf "C[%s] = B[%s] + B[%s]"
      (String.concat "," full_idx)
      (String.concat "," (idx ()))
      (String.concat "," (idx ()))
  in
  Printf.sprintf "for %s { %s; %s }" (String.concat ", " bounds) s1 s2
