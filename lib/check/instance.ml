type t = {
  mu : int array;
  tmat : Intmat.t;
}

let make ~mu tmat =
  if Array.length mu <> Intmat.cols tmat then
    invalid_arg "Instance.make: mu arity does not match T";
  if Array.exists (fun m -> m < 1) mu then
    invalid_arg "Instance.make: every mu_i must be >= 1";
  { mu; tmat }

let n inst = Intmat.cols inst.tmat
let k inst = Intmat.rows inst.tmat

let points inst = Array.fold_left (fun acc m -> acc * (m + 1)) 1 inst.mu

let equal a b = a.mu = b.mu && Intmat.equal a.tmat b.tmat

let size inst =
  (* Entries that do not fit a native int count as a large constant so
     the measure stays total (and shrinking them still decreases it). *)
  let entry z =
    match Zint.to_int_opt (Zint.abs z) with
    | Some v -> min v 1_000_000
    | None -> 1_000_000
  in
  let entries = ref 0 in
  for i = 0 to k inst - 1 do
    for j = 0 to n inst - 1 do
      entries := !entries + entry (Intmat.get inst.tmat i j)
    done
  done;
  n inst + k inst + Array.fold_left ( + ) 0 inst.mu + !entries

let to_string inst =
  let mu_s =
    String.concat "," (Array.to_list (Array.map string_of_int inst.mu))
  in
  let row i =
    String.concat ","
      (List.init (n inst) (fun j -> Zint.to_string (Intmat.get inst.tmat i j)))
  in
  let t_s = String.concat ";" (List.init (k inst) row) in
  Printf.sprintf "mu: %s\nt: %s\n" mu_s t_s

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let field key =
    let prefix = key ^ ":" in
    match
      List.find_opt
        (fun l -> String.length l > String.length prefix
                  && String.sub l 0 (String.length prefix) = prefix)
        lines
    with
    | Some l ->
      String.trim (String.sub l (String.length prefix) (String.length l - String.length prefix))
    | None -> failwith (Printf.sprintf "Instance.of_string: missing '%s:' line" key)
  in
  let ints s =
    List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s)
  in
  let mu = Array.of_list (ints (field "mu")) in
  let tmat = Intmat.of_ints (List.map ints (String.split_on_char ';' (field "t"))) in
  make ~mu tmat

let pp fmt inst =
  Format.fprintf fmt "@[<v>mu = (%s)@,T =@,%s@]"
    (String.concat "," (Array.to_list (Array.map string_of_int inst.mu)))
    (Intmat.to_string inst.tmat)
