let extension = ".case"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save ~dir ~name ?comment inst =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ extension) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      (match comment with
      | Some c ->
        String.split_on_char '\n' c
        |> List.iter (fun line -> Printf.fprintf oc "# %s\n" line)
      | None -> ());
      output_string oc (Instance.to_string inst));
  path

let load_file path = Instance.of_string (read_file path)

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f extension)
    |> List.sort compare
    |> List.map (fun f -> (f, load_file (Filename.concat dir f)))
