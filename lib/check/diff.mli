(** The differential runner: push an instance through every fast path
    the repository offers and report any disagreement with the
    brute-force {!Oracle}.

    The fast paths checked per instance:

    - [Theorems.decide] — the uncached sequential reference cascade;
    - [Conflict.find_conflict] — the pruned box enumeration (its
      witness, when produced, is also validated against Theorem 2.2);
    - [Conflict.find_conflict_lattice] — the LLL coefficient-lattice
      oracle (witness validated likewise);
    - [Analysis.check] twice — the first call exercises the
      compute path, the second must replay the memoized verdict
      identically (warm vs cold cache);
    - [Analysis.check] under a pressed {!Engine.Budget} — the verdict
      must be reported with [exactness = Bounded], never as a wrong
      [Exact], and its (lattice-backed) answer must still match the
      oracle;
    - [Analysis.eval_family] on [Analysis.family] — whenever the
      symbolic family verdict for the instance's [T] decides at its
      [mu], the result must byte-match both the oracle and the concrete
      [Analysis.check] verdict (boolean, method, full-rank flag and
      witness — the soundness contract of [docs/FAMILIES.md]); residual
      instances carry no obligation beyond the concrete paths;
    - [Exec.run] — the cycle-accurate simulator executes the instance
      under a synthesized causal dependence (the sign vector of the Pi
      row), and the verdict is cross-checked end to end: conflict-free
      per the oracle iff the simulation shows zero computational
      conflicts, plus zero causality violations and matching dataflow
      fingerprints unconditionally.  Skipped only when the Pi row is
      all zeros (no causal dependence exists, and {!Exec.run} rightly
      refuses such schedules).

    {!run} executes the stream in parallel via {!Engine.Pool} and is
    deterministic in the number of worker domains: instances come from
    {!Gen.ith} (per-index seeding) and the pool merges in input order,
    so the same [(seed, size, count)] yields the same report at any
    [jobs] (tested in [test_check.ml]). *)

type path =
  | Theorems_decide
  | Box_oracle_path
  | Lattice_oracle_path
  | Analysis_path
  | Analysis_cached
  | Budget_degraded
  | Family_path
  | Exec_simulate

val path_name : path -> string

type disagreement = {
  path : path;
  detail : string;  (** What the fast path claimed, human-readable. *)
}

type failure = {
  index : int;  (** Stream index of the instance ([-1] outside {!run}). *)
  instance : Instance.t;
  shrunk : Instance.t;  (** {!Shrink}-minimized, still disagreeing. *)
  oracle_free : bool;   (** Ground truth for [instance]. *)
  disagreements : disagreement list;
}

type report = {
  seed : int;
  size : int;
  jobs : int;
  checked : int;
  failures : failure list;
}

val check_instance : Instance.t -> disagreement list
(** All fast-path disagreements on one instance; [[]] means every path
    agrees with the oracle (and with itself across the cache). *)

val shrink_failure : ?index:int -> Instance.t -> disagreement list -> failure
(** Minimize a disagreeing instance with
    [Shrink.shrink ~keeps_failing:(fun i -> check_instance i <> [])]. *)

val run : ?jobs:int -> ?seed:int -> ?count:int -> ?size:int -> unit -> report
(** Check [count] (default 200) instances of the [(seed, size)] stream
    (defaults 42 and 3), in parallel over [jobs] domains.  Clears
    {!Engine.Cache} first so the first [Analysis.check] per instance is
    genuinely cold. *)
