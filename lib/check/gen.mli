(** Seeded, size-parameterized instance generators.

    Everything here is a pure function of the [Random.State.t] handed
    in (no global state), and {!ith} derives an independent state per
    stream index — so the instance stream for a given seed is identical
    whatever the number of worker domains replaying it ({!Diff} relies
    on this for its determinism guarantee).

    [size] scales every knob at once: index-set bounds grow like
    [size + 1], matrix entries like [size + 1], and the dimension [n]
    ranges over [2 .. min 5 (2 + size)].  The defaults keep
    [Instance.points] far below {!Oracle.max_points}. *)

(** Adversarial instance families.  [General] draws uniform shapes;
    the others target the paths most likely to hide a sign or gcd
    slip. *)
type family =
  | General         (** Uniform [k×n], [1 <= k <= n]. *)
  | Square          (** [k = n]: the rank-only fast path. *)
  | Codim1          (** [k = n-1]: Theorem 3.1's adjugate closed form. *)
  | Codim2          (** [k = n-2]: Theorems 4.6/4.7 Hermite conditions. *)
  | Rank_deficient  (** A row is a combination of the others. *)
  | Boundary
      (** [T] is built orthogonal to a planted kernel vector whose
          entries sit exactly on the [|gamma_i| = mu_i] /
          [|gamma_i| = mu_i + 1] feasibility boundary of Theorem 2.2. *)

val families : family list
(** All six, in declaration order. *)

val family_name : family -> string

val mu : Random.State.t -> size:int -> n:int -> int array
(** Bounds with [1 <= mu_i <= size + 1]. *)

val matrix : Random.State.t -> k:int -> n:int -> max_entry:int -> Intmat.t
(** Uniform entries in [-max_entry .. max_entry]. *)

val instance : ?family:family -> Random.State.t -> size:int -> Instance.t
(** One instance; the family is drawn from the state when not given
    (families needing [n >= 3] fall back to [General] at [n = 2]). *)

val ith : seed:int -> size:int -> int -> Instance.t
(** The [i]-th instance of the stream for [seed]: generated from a
    fresh state derived from [(seed, size, i)], independent of every
    other index.  [List.init count (ith ~seed ~size)] at any degree of
    parallelism yields the same list. *)

(** {1 Dependence-matrix and source-program generators}

    Shared by the end-to-end pipeline fuzzing in [test_fuzz.ml]. *)

val dependences : Random.State.t -> n:int -> m:int -> int list list
(** [m] dependence column vectors of length [n], each nonzero with its
    first nonzero entry positive (lexicographically positive, hence
    schedulable). *)

val source_program : Random.State.t -> string
(** A random single-statement loop nest in the supported fragment: one
    accumulation output plus 1-2 offset input references over 2-3 loop
    variables. *)

val source_two_statement : Random.State.t -> string
(** A random producer/consumer two-statement program exercising the
    alignment search. *)
