type path =
  | Theorems_decide
  | Box_oracle_path
  | Lattice_oracle_path
  | Analysis_path
  | Analysis_cached
  | Budget_degraded
  | Family_path
  | Exec_simulate

let path_name = function
  | Theorems_decide -> "theorems-decide"
  | Box_oracle_path -> "box-oracle"
  | Lattice_oracle_path -> "lattice-oracle"
  | Analysis_path -> "analysis"
  | Analysis_cached -> "analysis-cached"
  | Budget_degraded -> "budget-degraded"
  | Family_path -> "family"
  | Exec_simulate -> "exec-simulate"

type disagreement = {
  path : path;
  detail : string;
}

type failure = {
  index : int;
  instance : Instance.t;
  shrunk : Instance.t;
  oracle_free : bool;
  disagreements : disagreement list;
}

type report = {
  seed : int;
  size : int;
  jobs : int;
  checked : int;
  failures : failure list;
}

(* A finder returning a witness option must say None exactly on free
   instances, and any witness it does produce must be a genuine
   conflict (nonzero kernel vector inside the box). *)
let check_finder inst ~oracle_free ~add path = function
  | Some w ->
    if oracle_free then
      add path (Printf.sprintf "claims conflict %s on a conflict-free instance" (Intvec.to_string w))
    else if not (Oracle.valid_witness inst w) then
      add path (Printf.sprintf "invalid witness %s" (Intvec.to_string w))
  | None ->
    if not oracle_free then add path "claims conflict-free on a conflicting instance"

let check_instance inst =
  Obs.Trace.with_span "check.instance" @@ fun () ->
  let mu = inst.Instance.mu and t = inst.Instance.tmat in
  let oracle_free = Oracle.is_conflict_free inst in
  let out = ref [] in
  let add path detail = out := { path; detail } :: !out in
  (* 1. The uncached sequential reference cascade. *)
  let decide_free, method_used = Theorems.decide ~mu t in
  if decide_free <> oracle_free then
    add Theorems_decide
      (Printf.sprintf "decide says %b (method %s) but oracle says %b" decide_free
         (Analysis.decided_by_name (Analysis.Theorem method_used))
         oracle_free);
  (* 2. The pruned box enumeration, witness validated. *)
  check_finder inst ~oracle_free ~add Box_oracle_path (Conflict.find_conflict ~mu t);
  (* 3. The LLL coefficient-lattice oracle, witness validated. *)
  check_finder inst ~oracle_free ~add Lattice_oracle_path
    (Conflict.find_conflict_lattice ~mu t);
  (* 4. The unified engine entry point: compute path, then memoized
     replay, which must be verbatim identical. *)
  let v1 = Analysis.check ~mu t in
  if v1.Analysis.conflict_free <> oracle_free then
    add Analysis_path
      (Printf.sprintf "check says %b (decided by %s) but oracle says %b"
         v1.Analysis.conflict_free
         (Analysis.decided_by_name v1.Analysis.decided_by)
         oracle_free);
  if v1.Analysis.exactness <> Analysis.Exact then
    add Analysis_path "unlimited budget reported a bounded verdict";
  if v1.Analysis.full_rank <> (Intmat.rank t = Intmat.rows t) then
    add Analysis_path "full_rank flag disagrees with Intmat.rank";
  (match v1.Analysis.witness with
  | Some w when not (Oracle.valid_witness inst w) ->
    add Analysis_path (Printf.sprintf "invalid witness %s" (Intvec.to_string w))
  | _ -> ());
  let v2 = Analysis.check ~mu t in
  if
    v2.Analysis.conflict_free <> v1.Analysis.conflict_free
    || v2.Analysis.full_rank <> v1.Analysis.full_rank
    || not (Option.equal Intvec.equal v2.Analysis.witness v1.Analysis.witness)
  then add Analysis_cached "warm-cache verdict differs from the cold one";
  (* 5. Degradation: a pressed budget must answer bounded — and the
     lattice fallback it switches to is still exact in substance, so
     the boolean must also match the oracle. *)
  let vb =
    Analysis.check ~budget:(Engine.Budget.make ~max_oracle_calls:0 ()) ~mu t
  in
  if vb.Analysis.exactness <> Analysis.Bounded then
    add Budget_degraded "pressed budget reported an exact verdict";
  if vb.Analysis.conflict_free <> oracle_free then
    add Budget_degraded
      (Printf.sprintf "degraded verdict %b but oracle says %b" vb.Analysis.conflict_free
         oracle_free);
  (match vb.Analysis.witness with
  | Some w when not (Oracle.valid_witness inst w) ->
    add Budget_degraded (Printf.sprintf "invalid witness %s" (Intvec.to_string w))
  | _ -> ());
  (* 6. The symbolic family tier: whenever the family verdict for this
     T decides the instance, it must byte-match both the oracle and the
     concrete verdict v1 — boolean, method, full-rank flag and witness
     (the soundness contract of docs/FAMILIES.md).  Residual instances
     carry no obligation here; paths 1-5 already cover them. *)
  (match Analysis.eval_family (Analysis.family t) ~mu with
  | None -> ()
  | Some fv ->
    if fv.Analysis.conflict_free <> oracle_free then
      add Family_path
        (Printf.sprintf "family verdict %b (decided by %s) but oracle says %b"
           fv.Analysis.conflict_free
           (Analysis.decided_by_name fv.Analysis.decided_by)
           oracle_free);
    if
      fv.Analysis.conflict_free <> v1.Analysis.conflict_free
      || fv.Analysis.full_rank <> v1.Analysis.full_rank
      || fv.Analysis.decided_by <> v1.Analysis.decided_by
      || not (Option.equal Intvec.equal fv.Analysis.witness v1.Analysis.witness)
    then
      add Family_path
        (Printf.sprintf "family verdict (decided by %s) differs from concrete (%s)"
           (Analysis.decided_by_name fv.Analysis.decided_by)
           (Analysis.decided_by_name v1.Analysis.decided_by));
    if fv.Analysis.exactness <> Analysis.Exact then
      add Family_path "family verdict reported as bounded";
    (match fv.Analysis.witness with
    | Some w when not (Oracle.valid_witness inst w) ->
      add Family_path (Printf.sprintf "invalid witness %s" (Intvec.to_string w))
    | _ -> ()));
  (* 7. Close the loop on execution: run the instance through the
     cycle-accurate simulator.  Conflicts there are pairs of points
     with [T j1 = T j2], i.e. exactly the oracle's notion, so a
     conflict-free verdict must mean a conflict-free (and causal)
     simulated run.  Any lexicographically positive dependence works
     for the simulation; we synthesize the cheapest one the schedule
     respects — the sign vector of the Pi row — and, for 1-row T,
     pad S with a zero row (which maps every point to PE 0 and so
     changes neither the conflict set nor the verdict). *)
  let k = Intmat.rows t and n = Intmat.cols t in
  let pi = Intmat.row t (k - 1) in
  if not (Intvec.is_zero pi) then begin
    let d = List.init n (fun i -> Zint.sign (Intvec.get pi i)) in
    let alg =
      Algorithm.make ~name:"fuzz-exec" ~index_set:(Index_set.make mu)
        ~dependences:[ d ]
    in
    let s =
      if k = 1 then Intmat.zero 1 n
      else Intmat.of_rows (List.init (k - 1) (Intmat.row t))
    in
    let r = Exec.run alg Dataflow.semantics (Tmap.make ~s ~pi) in
    if (r.Exec.conflicts = []) <> oracle_free then
      add Exec_simulate
        (Printf.sprintf "simulation found %d conflicts but oracle says free = %b"
           (List.length r.Exec.conflicts) oracle_free);
    if r.Exec.causality_violations <> [] then
      add Exec_simulate
        (Printf.sprintf "%d causality violations under a respected schedule"
           (List.length r.Exec.causality_violations));
    if not (Exec.values_agree r) then
      add Exec_simulate "simulated dataflow fingerprints disagree with the reference"
  end;
  List.rev !out

let shrink_failure ?(index = -1) inst disagreements =
  let keeps_failing candidate = check_instance candidate <> [] in
  let shrunk = Shrink.shrink ~keeps_failing inst in
  {
    index;
    instance = inst;
    shrunk;
    oracle_free = Oracle.is_conflict_free inst;
    disagreements;
  }

let run ?jobs ?(seed = 42) ?(count = 200) ?(size = 3) () =
  Obs.Trace.with_span "check.diff.run" @@ fun () ->
  let pool = Engine.Pool.create ?jobs () in
  Engine.Cache.clear ();
  let suspects =
    Engine.Pool.map pool
      (fun index ->
        let inst = Gen.ith ~seed ~size index in
        match check_instance inst with
        | [] -> None
        | disagreements -> Some (index, inst, disagreements))
      (List.init count Fun.id)
  in
  (* Shrinking is rare (a failure means a real bug) and deliberately
     sequential: check_instance goes through the shared caches, and a
     deterministic pass keeps the corpus cases reproducible. *)
  let failures =
    List.filter_map
      (Option.map (fun (index, inst, ds) -> shrink_failure ~index inst ds))
      suspects
  in
  { seed; size; jobs = Engine.Pool.jobs pool; checked = count; failures }
