(** Brute-force ground truth for conflict-freedom.

    Unlike every fast path in the repository (which reasons about the
    kernel lattice of [T] through Hermite forms, adjugates or LLL),
    this oracle checks Definition 2.2 condition 3 {e literally}: it
    maps every index point [j ∈ J] through [T] and reports two distinct
    points landing on the same image — the same (processor, time)
    slot.  It shares no code with the kernel machinery, which is what
    makes disagreements meaningful.

    Cost is [O(|J|)] hashed insertions, so callers must keep [|J|]
    small; {!max_points} is the guard. *)

type verdict =
  | Free
  | Collision of int array * int array
      (** Two distinct index points with [T j1 = T j2]. *)

val max_points : int
(** Largest index-set cardinality the oracle accepts (1_000_000). *)

val check : Instance.t -> verdict
(** @raise Invalid_argument when [Instance.points] exceeds
    {!max_points}. *)

val is_conflict_free : Instance.t -> bool

val conflict_vector : int array * int array -> Intvec.t
(** [j1 - j2] of a collision, sign-normalized: an integral kernel
    vector of [T] lying inside the box [|gamma_i| <= mu_i] (it need
    not be primitive — collisions are about points, not generators). *)

val valid_witness : Instance.t -> Intvec.t -> bool
(** Whether a fast path's claimed witness really is a conflict: nonzero,
    [T gamma = 0] and [|gamma_i| <= mu_i] for all [i]. *)
