let drop_dim inst j =
  let n = Instance.n inst and k = Instance.k inst in
  let mu =
    Array.init (n - 1) (fun i -> inst.Instance.mu.(if i < j then i else i + 1))
  in
  let tmat =
    Intmat.make k (n - 1) (fun r c ->
        Intmat.get inst.Instance.tmat r (if c < j then c else c + 1))
  in
  Instance.make ~mu tmat

let drop_row inst r =
  let n = Instance.n inst and k = Instance.k inst in
  let tmat =
    Intmat.make (k - 1) n (fun i c ->
        Intmat.get inst.Instance.tmat (if i < r then i else i + 1) c)
  in
  Instance.make ~mu:inst.Instance.mu tmat

let set_mu inst i v =
  let mu = Array.copy inst.Instance.mu in
  mu.(i) <- v;
  Instance.make ~mu inst.Instance.tmat

let set_entry inst r c v =
  let tmat =
    Intmat.make (Instance.k inst) (Instance.n inst) (fun i j ->
        if i = r && j = c then v else Intmat.get inst.Instance.tmat i j)
  in
  Instance.make ~mu:inst.Instance.mu tmat

let candidates inst =
  let n = Instance.n inst and k = Instance.k inst in
  let dims =
    if n <= 1 then Seq.empty
    else Seq.map (drop_dim inst) (Seq.init n Fun.id)
  in
  let rows =
    if k <= 1 then Seq.empty
    else Seq.map (drop_row inst) (Seq.init k Fun.id)
  in
  let mus =
    Seq.concat_map
      (fun i ->
        let m = inst.Instance.mu.(i) in
        List.to_seq
          (List.sort_uniq compare [ 1; m / 2; m - 1 ]
          |> List.filter (fun v -> v >= 1 && v < m)
          |> List.map (set_mu inst i)))
      (Seq.init n Fun.id)
  in
  let entries =
    Seq.concat_map
      (fun idx ->
        let r = idx / n and c = idx mod n in
        let e = Intmat.get inst.Instance.tmat r c in
        if Zint.is_zero e then Seq.empty
        else
          let smaller =
            [ Zint.zero; Zint.div e Zint.two; Zint.sub e (Zint.of_int (Zint.sign e)) ]
          in
          List.to_seq
            (List.sort_uniq Zint.compare smaller
            |> List.filter (fun v -> Zint.compare (Zint.abs v) (Zint.abs e) < 0)
            |> List.map (set_entry inst r c)))
      (Seq.init (k * n) Fun.id)
  in
  Seq.concat (List.to_seq [ dims; rows; mus; entries ])

let rec shrink ~keeps_failing inst =
  match Seq.find keeps_failing (candidates inst) with
  | Some smaller -> shrink ~keeps_failing smaller
  | None -> inst
