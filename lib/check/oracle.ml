type verdict =
  | Free
  | Collision of int array * int array

let max_points = 1_000_000

let check inst =
  if Instance.points inst > max_points then
    invalid_arg "Oracle.check: index set too large for brute force";
  Obs.Trace.with_span "check.oracle" @@ fun () ->
  let index_set = Index_set.make inst.Instance.mu in
  (* Key every point by the string image of T j; the first collision in
     lexicographic order is returned, which keeps the oracle
     deterministic for the shrinker and the corpus. *)
  let seen = Hashtbl.create (Instance.points inst) in
  let found = ref Free in
  (try
     Index_set.iter
       (fun j ->
         let image =
           Intvec.to_string (Intmat.mul_vec inst.Instance.tmat (Intvec.of_int_array j))
         in
         match Hashtbl.find_opt seen image with
         | Some j0 ->
           found := Collision (j0, Array.copy j);
           raise Exit
         | None -> Hashtbl.add seen image (Array.copy j))
       index_set
   with Exit -> ());
  !found

let is_conflict_free inst = check inst = Free

let conflict_vector (j1, j2) =
  Intvec.normalize_sign
    (Intvec.sub (Intvec.of_int_array j1) (Intvec.of_int_array j2))

let valid_witness inst gamma =
  Intvec.dim gamma = Instance.n inst
  && (not (Intvec.is_zero gamma))
  && Intvec.is_zero (Intmat.mul_vec inst.Instance.tmat gamma)
  && Array.for_all2
       (fun m g -> Zint.compare (Zint.abs g) (Zint.of_int m) <= 0)
       inst.Instance.mu gamma
