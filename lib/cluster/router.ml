(* The cluster router: one process that makes N daemon shards look
   like one daemon (docs/CLUSTER.md).

   Downstream it speaks the same versioned wire protocol as the
   daemon — v1 JSON lines by default, v2 binary after a [hello] — one
   thread per accepted client.  Upstream it keeps a small pool of
   pipelined connections per shard; requests are restamped with a
   router-unique integer id, the original id parked in the pool
   connection's pending table, and a per-connection reader thread
   matches replies back and restamps them on the way out.  [analyze]
   routes by the matrix-only family hash through the consistent-hash
   {!Ring} (so the content key and its mu-parametric family stay on
   one shard); the stateless ops round-robin over live shards;
   [ping]/[stats]/[drain]/[hello] answer inline; [ship] is rejected —
   it is the replication channel, shard-direct by contract.

   Gray-failure machinery (docs/RESILIENCE.md):

   - every in-flight request is one [reqstate] shared by however many
     upstream copies exist; [r_done] is the first-wins latch (atomic
     exchange), [r_outstanding] counts copies still parked so a lost
     connection only errors the client when the *last* copy dies;
   - a hedge thread ticks every millisecond over the table of
     hedgeable analyze requests; once a request has been in flight
     longer than the hedge delay (fixed, or adaptive: 2x the shard's
     observed p99), it re-issues the request on the shard's follower
     with the *remaining* deadline restamped, guarded by a token
     bucket so a melting shard cannot double the fleet's load;
   - the monitor times its pings and feeds latency into {!Health}'s
     EWMA circuit breaker; while a shard's breaker is [Open] its
     analyze traffic diverts to the follower, and [pick_rr] prefers
     shards whose breaker is closed.

   Hedging is byte-safe because verdicts are deterministic: primary
   and follower produce identical bytes for the same analyze, so
   taking the first reply never changes an answer.

   Failover: a monitor thread pings every shard each health interval
   and pumps its journal {!Shipper}; when {!Health} reports the
   threshold crossing, the shard's follower is caught up from the
   primary's journal and promoted in place.  {!promote_shard} exposes
   the same transition synchronously for the chaos harness, which
   needs the kill -> promote sequence at a deterministic point in its
   request stream.

   Lock order: shard [s_lock] > pool connection [u_plock] > client
   [c_olock].  Fault sites: [route.forward] (class [cluster]) is
   consulted once per forwarded request, on the client's thread, so a
   single-driver chaos run consults it at a seed-reproducible
   sequence; hedge re-issues never consult it (they are not part of
   the seeded request stream). *)

type shard_spec = {
  primary : Server.Client.addr;
  follower : Server.Client.addr option;
  journal : string option;
}

type hedge_policy = No_hedge | Fixed_ms of int | Adaptive

type config = {
  listen : Server.Daemon.listen;
  shards : shard_spec list;
  pool_size : int;
  shard_transport : Server.Wire.version;
  max_transport : Server.Wire.version;
  health_interval_ms : int;
  health_threshold : int;
  vnodes : int;
  hedge : hedge_policy;
  hedge_budget : int;
  latency_limit_ms : float;
}

let default_config listen shards =
  {
    listen;
    shards;
    pool_size = 2;
    shard_transport = Server.Wire.V2;
    max_transport = Server.Wire.V2;
    health_interval_ms = 1000;
    health_threshold = 3;
    vnodes = 64;
    hedge = Adaptive;
    hedge_budget = 64;
    latency_limit_ms = 500.;
  }

type client = {
  c_fd : Unix.file_descr;
  c_dec : Server.Wire.decoder;
  c_olock : Mutex.t;
  mutable c_version : Server.Wire.version;
  mutable c_closed : bool;
}

(* One forwarded request; shared by every upstream copy (primary send
   plus any hedge).  [r_done] is the first-reply-wins latch;
   [r_outstanding] counts copies still parked in pending tables so a
   dead connection errors the client only when no copy is left. *)
type reqstate = {
  r_client : client;
  r_id : Json.t;
  r_req : Server.Protocol.request;
  r_deadline : float;  (* absolute seconds; nan = no deadline *)
  r_sent_at : float;
  r_done : bool Atomic.t;
  r_hedged : bool Atomic.t;
  r_outstanding : int Atomic.t;
  r_shard : shard;
}

and pending = { p_state : reqstate; p_hedge : bool }

and uconn = {
  u : Server.Client.conn;
  u_send : Mutex.t;
  u_pending : (int, pending) Hashtbl.t;
  u_plock : Mutex.t;
  mutable u_dead : bool;
  mutable u_reader : Thread.t option;
}

and shard = {
  idx : int;
  spec : shard_spec;
  s_lock : Mutex.t;
  mutable target : Server.Client.addr;
  mutable alive : bool;
  mutable promoted : bool;
  mutable pool : uconn list;
  mutable f_pool : uconn list;  (* follower pool: hedges + breaker diverts *)
  mutable next_conn : int;
  mutable f_next : int;
  mutable forwarded : int;
  mutable shed : int;
  mutable hedges : int;
  mutable hedge_wins : int;
  lat : float array;  (* ring of recent first-reply latencies, ms *)
  mutable lat_n : int;
  health : Health.t;
  shipper : Shipper.t option;
}

type t = {
  cfg : config;
  ring : Ring.t;
  shards : shard array;
  listen_fd : Unix.file_descr;
  sock_path : string option;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  next_rid : int Atomic.t;
  stopping : bool Atomic.t;
  rr : int Atomic.t;  (* round-robin cursor for the stateless ops *)
  lock : Mutex.t;     (* clients list + global counters *)
  mutable clients : (client * Thread.t) list;
  mutable accepted : int;
  mutable promotions : int;
  inflight : (int, reqstate) Hashtbl.t;  (* hedgeable requests, by primary rid *)
  i_lock : Mutex.t;
  h_lock : Mutex.t;   (* hedge token bucket *)
  mutable h_tokens : float;
  mutable h_refill_at : float;
}

let m_forwarded = Obs.Metrics.counter "router.forwarded"
let m_shed = Obs.Metrics.counter "router.shed"
let m_promotions = Obs.Metrics.counter "router.promotions"
let m_hedges = Obs.Metrics.counter "cluster.hedges"
let m_hedge_wins = Obs.Metrics.counter "cluster.hedge_wins"
let g_breaker = Obs.Metrics.gauge "cluster.breaker_state"

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let hedging_active t = t.cfg.hedge <> No_hedge && t.cfg.hedge_budget > 0

(* ----------------------------- listening --------------------------- *)

let bind_unix path =
  if Sys.file_exists path then begin
    (* Same stale-socket policy as the daemon: probe; unlink only a
       dead socket; never unlink a non-socket. *)
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      failwith (Printf.sprintf "Router.create: %s already has a live listener" path)
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      Unix.close probe;
      Unix.unlink path
    | exception Unix.Unix_error _ -> Unix.close probe (* let bind fail loudly *))
  end;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let addr_string : Server.Client.addr -> string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ------------------------------ create ----------------------------- *)

let create (cfg : config) =
  if cfg.shards = [] then invalid_arg "Router.create: no shards";
  if cfg.pool_size < 1 then invalid_arg "Router.create: pool_size must be >= 1";
  let listen_fd, sock_path =
    match cfg.listen with
    | Server.Daemon.Unix_sock path -> (bind_unix path, Some path)
    | Server.Daemon.Tcp port -> (bind_tcp port, None)
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let shards =
    Array.of_list
      (List.mapi
         (fun idx spec ->
           {
             idx;
             spec;
             s_lock = Mutex.create ();
             target = spec.primary;
             alive = true;
             promoted = false;
             pool = [];
             f_pool = [];
             next_conn = 0;
             f_next = 0;
             forwarded = 0;
             shed = 0;
             hedges = 0;
             hedge_wins = 0;
             lat = Array.make 64 0.;
             lat_n = 0;
             health =
               Health.create ~threshold:cfg.health_threshold
                 ~latency_limit_ms:cfg.latency_limit_ms ();
             shipper =
               (match (spec.journal, spec.follower) with
               | Some journal, Some follower ->
                 Some (Shipper.create ~journal ~transport:Server.Wire.V1 ~follower ())
               | _ -> None);
           })
         cfg.shards)
  in
  {
    cfg;
    ring = Ring.make ~vnodes:cfg.vnodes (Array.length shards);
    shards;
    listen_fd;
    sock_path;
    pipe_r;
    pipe_w;
    next_rid = Atomic.make 1;
    stopping = Atomic.make false;
    rr = Atomic.make 0;
    lock = Mutex.create ();
    clients = [];
    accepted = 0;
    promotions = 0;
    inflight = Hashtbl.create 64;
    i_lock = Mutex.create ();
    h_lock = Mutex.create ();
    h_tokens = float_of_int (max 0 cfg.hedge_budget);
    h_refill_at = Unix.gettimeofday ();
  }

let ring t = t.ring

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> Some p
  | _ -> None

(* --------------------------- client output ------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let send_client c reply =
  locked c.c_olock (fun () ->
      if not c.c_closed then
        try write_all c.c_fd (Server.Wire.encode c.c_version (Server.Wire.Text (Json.to_string reply)))
        with Unix.Unix_error _ | Sys_error _ -> c.c_closed <- true)

let close_client t c =
  let was_open =
    locked c.c_olock (fun () ->
        let was = not c.c_closed in
        c.c_closed <- true;
        was)
  in
  if was_open then (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
  locked t.lock (fun () ->
      t.clients <- List.filter (fun (cl, _) -> cl != c) t.clients)

(* --------------------------- latency ring -------------------------- *)

let record_latency shard ms =
  locked shard.s_lock (fun () ->
      shard.lat.(shard.lat_n mod Array.length shard.lat) <- ms;
      shard.lat_n <- shard.lat_n + 1)

(* Caller holds [s_lock]. *)
let ring_p99_locked shard =
  let n = min shard.lat_n (Array.length shard.lat) in
  if n = 0 then 0.
  else begin
    let a = Array.sub shard.lat 0 n in
    Array.sort compare a;
    a.(min (n - 1) (n * 99 / 100))
  end

let hedge_delay_ms t shard =
  match t.cfg.hedge with
  | No_hedge -> infinity
  | Fixed_ms n -> float_of_int n
  | Adaptive ->
    let p99 = locked shard.s_lock (fun () -> ring_p99_locked shard) in
    if p99 <= 0. then 10. else Float.max 1. (2. *. p99)

(* --------------------------- upstream pool ------------------------- *)

let take_pending uc rid =
  locked uc.u_plock (fun () ->
      match Hashtbl.find_opt uc.u_pending rid with
      | Some p ->
        Hashtbl.remove uc.u_pending rid;
        Some p
      | None -> None)

let drain_pendings uc =
  locked uc.u_plock (fun () ->
      let l = Hashtbl.fold (fun _ p acc -> p :: acc) uc.u_pending [] in
      Hashtbl.reset uc.u_pending;
      l)

(* Idempotent: the first caller wins; a parked request completes with
   a retriable [overloaded] only when the dying copy was its *last*
   outstanding one — a hedged request whose other copy is still parked
   elsewhere just loses a redundant leg.  The descriptor is only shut
   down here — the reader thread, the sole blocked reader, closes it
   on its way out. *)
let fail_uconn shard uc =
  let first =
    locked shard.s_lock (fun () ->
        let first = not uc.u_dead in
        uc.u_dead <- true;
        if first then begin
          shard.pool <- List.filter (fun x -> x != uc) shard.pool;
          shard.f_pool <- List.filter (fun x -> x != uc) shard.f_pool
        end;
        first)
  in
  if first then begin
    Server.Client.shutdown uc.u;
    List.iter
      (fun p ->
        let left = Atomic.fetch_and_add p.p_state.r_outstanding (-1) - 1 in
        if left <= 0 && not (Atomic.exchange p.p_state.r_done true) then
          send_client p.p_state.r_client
            (Server.Protocol.error_reply ~id:p.p_state.r_id ~code:"overloaded"
               ~detail:(Printf.sprintf "shard %d connection lost" shard.idx)))
      (drain_pendings uc)
  end

let restamp id = function
  | Json.Obj fields ->
    Json.Obj (List.map (fun (k, v) -> if k = "id" then (k, id) else (k, v)) fields)
  | j -> j

let upstream_reader shard uc =
  let rec loop () =
    let reply = Server.Client.recv uc.u in
    (match Server.Protocol.reply_id reply with
    | Json.Int rid -> (
      match take_pending uc rid with
      | Some p ->
        ignore (Atomic.fetch_and_add p.p_state.r_outstanding (-1));
        (* First reply wins; the loser (if any) is dropped when its
           copy surfaces here or its connection dies. *)
        if not (Atomic.exchange p.p_state.r_done true) then begin
          send_client p.p_state.r_client (restamp p.p_state.r_id reply);
          record_latency shard
            ((Unix.gettimeofday () -. p.p_state.r_sent_at) *. 1000.);
          if p.p_hedge then begin
            locked shard.s_lock (fun () -> shard.hedge_wins <- shard.hedge_wins + 1);
            Obs.Metrics.incr m_hedge_wins
          end
        end
      | None -> () (* already failed over; the session re-issued *))
    | _ -> () (* unroutable reply; drop *));
    loop ()
  in
  (try loop () with Failure _ | Unix.Unix_error _ | Sys_error _ -> ());
  fail_uconn shard uc;
  Server.Client.close uc.u

(* [addr_of]/[pool_of] select the primary pool or the follower pool;
   both share the reader, the pending table and the failure path. *)
let get_conn t shard ~follower =
  locked shard.s_lock (fun () ->
      let addr =
        if follower then shard.spec.follower
        else if shard.alive then Some shard.target
        else None
      in
      match addr with
      | None -> None
      | Some addr ->
        let pool = if follower then shard.f_pool else shard.pool in
        let live = List.filter (fun uc -> not uc.u_dead) pool in
        let n = List.length live in
        let cursor = if follower then shard.f_next else shard.next_conn in
        let bump () =
          if follower then shard.f_next <- shard.f_next + 1
          else shard.next_conn <- shard.next_conn + 1
        in
        if n >= t.cfg.pool_size then begin
          let uc = List.nth live (cursor mod n) in
          bump ();
          Some uc
        end
        else
          match Server.Client.connect ~transport:t.cfg.shard_transport addr with
          | u ->
            let uc =
              {
                u;
                u_send = Mutex.create ();
                u_pending = Hashtbl.create 16;
                u_plock = Mutex.create ();
                u_dead = false;
                u_reader = None;
              }
            in
            uc.u_reader <- Some (Thread.create (fun () -> upstream_reader shard uc) ());
            if follower then shard.f_pool <- uc :: shard.f_pool
            else shard.pool <- uc :: shard.pool;
            bump ();
            Some uc
          | exception (Unix.Unix_error _ | Failure _ | Sys_error _) -> None)

let get_uconn t shard = get_conn t shard ~follower:false

(* ----------------------------- forwarding -------------------------- *)

(* [deadline_override], when given, replaces the request's stamped
   deadline with the *remaining* budget — the hedge path computes it
   from the absolute deadline so a re-issued request never tells the
   follower it has the full original allowance. *)
let send_upstream ?deadline_override uc ~rid (req : Server.Protocol.request) =
  let dl orig = match deadline_override with Some _ -> deadline_override | None -> orig in
  locked uc.u_send (fun () ->
      match req with
      | Server.Protocol.Analyze { mu; tmat; deadline_ms } ->
        Server.Client.send_analyze uc.u ~id:rid ?deadline_ms:(dl deadline_ms) ~mu tmat
      | Server.Protocol.Search { algorithm; mu; s; pareto; array_dim; deadline_ms } ->
        Server.Client.send uc.u
          (Server.Protocol.search ~id:(Json.Int rid) ?deadline_ms:(dl deadline_ms) ?s
             ~pareto ~array_dim ~algorithm ~mu ())
      | Server.Protocol.Simulate { algorithm; mu; s; pi } ->
        Server.Client.send uc.u
          (Server.Protocol.simulate ~id:(Json.Int rid) ?s ~algorithm ~mu ~pi ())
      | Server.Protocol.Replay { instance } ->
        Server.Client.send uc.u (Server.Protocol.replay ~id:(Json.Int rid) instance)
      | Server.Protocol.Ship _ | Server.Protocol.Ping | Server.Protocol.Stats
      | Server.Protocol.Drain | Server.Protocol.Hello _ ->
        invalid_arg "Router.send_upstream: inline op")

let shed shard c ~id detail =
  locked shard.s_lock (fun () -> shard.shed <- shard.shed + 1);
  Obs.Metrics.incr m_shed;
  send_client c (Server.Protocol.error_reply ~id ~code:"overloaded" ~detail)

let request_deadline_ms : Server.Protocol.request -> int option = function
  | Server.Protocol.Analyze { deadline_ms; _ } -> deadline_ms
  | Server.Protocol.Search { deadline_ms; _ } -> deadline_ms
  | _ -> None

let forward t c ~id shard req =
  if Fault.should_fail "route.forward" then
    shed shard c ~id "fault injected: route.forward"
  else begin
    let is_analyze = match req with Server.Protocol.Analyze _ -> true | _ -> false in
    let promoted = locked shard.s_lock (fun () -> shard.promoted) in
    let has_follower = shard.spec.follower <> None && not promoted in
    (* Breaker open: the shard is up but slow — divert its analyze
       traffic to the follower (same bytes, deterministic verdicts)
       while the monitor probes it back in. *)
    let divert = is_analyze && has_follower && Health.state shard.health = Health.Open in
    let conn =
      if divert then
        match get_conn t shard ~follower:true with
        | Some uc -> Some uc
        | None -> get_uconn t shard
      else get_uconn t shard
    in
    match conn with
    | None -> shed shard c ~id (Printf.sprintf "shard %d unavailable" shard.idx)
    | Some uc -> (
      let rid = Atomic.fetch_and_add t.next_rid 1 in
      let now = Unix.gettimeofday () in
      let r =
        {
          r_client = c;
          r_id = id;
          r_req = req;
          r_deadline =
            (match request_deadline_ms req with
            | Some d -> now +. (float_of_int d /. 1000.)
            | None -> Float.nan);
          r_sent_at = now;
          r_done = Atomic.make false;
          r_hedged = Atomic.make false;
          r_outstanding = Atomic.make 1;
          r_shard = shard;
        }
      in
      let hedgeable = is_analyze && has_follower && (not divert) && hedging_active t in
      locked uc.u_plock (fun () ->
          Hashtbl.replace uc.u_pending rid { p_state = r; p_hedge = false });
      if hedgeable then
        locked t.i_lock (fun () -> Hashtbl.replace t.inflight rid r);
      match send_upstream uc ~rid req with
      | () ->
        locked shard.s_lock (fun () -> shard.forwarded <- shard.forwarded + 1);
        Obs.Metrics.incr m_forwarded
      | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
        let mine = take_pending uc rid <> None in
        fail_uconn shard uc;
        if mine then begin
          Atomic.set r.r_done true;
          ignore (Atomic.fetch_and_add r.r_outstanding (-1));
          shed shard c ~id (Printf.sprintf "shard %d write failed" shard.idx)
        end)
  end

(* Round-robin over live shards for the ops that carry no key; shards
   whose breaker is closed are preferred, so a gray shard only sees
   stateless traffic when every alternative is at least as sick. *)
let pick_rr t =
  let n = Array.length t.shards in
  let pick pred =
    let rec go tries =
      if tries = n then None
      else
        let s = t.shards.(Atomic.fetch_and_add t.rr 1 mod n) in
        if pred s then Some s else go (tries + 1)
    in
    go 0
  in
  match pick (fun s -> s.alive && Health.state s.health = Health.Closed) with
  | Some s -> Some s
  | None -> pick (fun s -> s.alive)

(* ------------------------------ hedging ---------------------------- *)

(* Token bucket: capacity [hedge_budget], refilling a full budget per
   second — a bound on sustained hedge rate, not a per-request gate.
   An empty bucket just skips this tick; the entry stays scannable. *)
let take_hedge_token t =
  let cap = float_of_int t.cfg.hedge_budget in
  locked t.h_lock (fun () ->
      let now = Unix.gettimeofday () in
      let dt = Float.max 0. (now -. t.h_refill_at) in
      t.h_refill_at <- now;
      t.h_tokens <- Float.min cap (t.h_tokens +. (dt *. cap));
      if t.h_tokens >= 1. then begin
        t.h_tokens <- t.h_tokens -. 1.;
        true
      end
      else false)

let hedge_tick t =
  let now = Unix.gettimeofday () in
  let entries =
    locked t.i_lock (fun () ->
        Hashtbl.fold (fun k r acc -> (k, r) :: acc) t.inflight [])
  in
  List.iter
    (fun (k, r) ->
      let drop () = locked t.i_lock (fun () -> Hashtbl.remove t.inflight k) in
      if Atomic.get r.r_done || Atomic.get r.r_hedged then drop ()
      else begin
        let elapsed_ms = (now -. r.r_sent_at) *. 1000. in
        if elapsed_ms >= hedge_delay_ms t r.r_shard then begin
          let shard = r.r_shard in
          let remaining =
            if Float.is_nan r.r_deadline then None
            else Some (int_of_float ((r.r_deadline -. now) *. 1000.))
          in
          let eligible =
            (match remaining with Some ms -> ms > 0 | None -> true)
            && locked shard.s_lock (fun () -> shard.alive && not shard.promoted)
            && shard.spec.follower <> None
          in
          if not eligible then drop ()
          else if take_hedge_token t then begin
            Atomic.set r.r_hedged true;
            drop ();
            match get_conn t shard ~follower:true with
            | None -> () (* follower unreachable: the primary copy stands alone *)
            | Some uc -> (
              let rid = Atomic.fetch_and_add t.next_rid 1 in
              Atomic.incr r.r_outstanding;
              locked uc.u_plock (fun () ->
                  Hashtbl.replace uc.u_pending rid { p_state = r; p_hedge = true });
              match send_upstream ?deadline_override:remaining uc ~rid r.r_req with
              | () ->
                locked shard.s_lock (fun () -> shard.hedges <- shard.hedges + 1);
                Obs.Metrics.incr m_hedges
              | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
                let mine = take_pending uc rid <> None in
                fail_uconn shard uc;
                if mine then ignore (Atomic.fetch_and_add r.r_outstanding (-1)))
          end
          (* else: bucket empty — retry next tick *)
        end
      end)
    entries

let hedger t =
  while not (Atomic.get t.stopping) do
    Thread.delay 0.001;
    hedge_tick t
  done

(* ---------------------------- promotion ---------------------------- *)

let promote_shard t idx =
  if idx < 0 || idx >= Array.length t.shards then
    invalid_arg "Router.promote_shard: no such shard";
  let shard = t.shards.(idx) in
  let already =
    locked shard.s_lock (fun () ->
        if shard.promoted then true
        else begin
          shard.alive <- false;
          false
        end)
  in
  if already then shard.alive
  else begin
    let pools = locked shard.s_lock (fun () -> shard.pool @ shard.f_pool) in
    List.iter (fun uc -> fail_uconn shard uc) pools;
    match shard.spec.follower with
    | None -> false (* no replica: the shard stays down *)
    | Some follower ->
      (* Catch the follower up from the primary's journal before any
         request is redirected: every record the dead primary acked
         (and drain-flushed) must be queryable on the follower first —
         the zero-lost-acked-writes half of the failover contract. *)
      (match shard.shipper with
      | Some sh -> ignore (Shipper.catch_up sh)
      | None -> ());
      locked shard.s_lock (fun () ->
          shard.target <- follower;
          shard.promoted <- true;
          shard.alive <- true);
      locked t.lock (fun () -> t.promotions <- t.promotions + 1);
      Obs.Metrics.incr m_promotions;
      true
  end

(* ------------------------------ monitor ---------------------------- *)

let probe addr =
  match Server.Client.connect ~transport:Server.Wire.V1 addr with
  | exception (Unix.Unix_error _ | Failure _ | Sys_error _) -> false
  | c ->
    let ok =
      match Server.Client.request c (Server.Protocol.ping ()) with
      | reply -> Server.Protocol.reply_ok reply
      | exception (Unix.Unix_error _ | Failure _ | Sys_error _) -> false
    in
    Server.Client.close c;
    ok

let monitor t =
  let interval = float_of_int t.cfg.health_interval_ms /. 1000. in
  let rec sleep left =
    if left > 0. && not (Atomic.get t.stopping) then begin
      let d = Float.min left 0.05 in
      Thread.delay d;
      sleep (left -. d)
    end
  in
  while not (Atomic.get t.stopping) do
    sleep interval;
    if not (Atomic.get t.stopping) then begin
      Array.iter
        (fun shard ->
          (match shard.shipper with
          | Some sh when not shard.promoted -> ignore (Shipper.pump sh)
          | _ -> ());
          if shard.alive && not shard.promoted then begin
            let t0 = Unix.gettimeofday () in
            let ok = probe shard.target in
            let latency_ms = (Unix.gettimeofday () -. t0) *. 1000. in
            match Health.note shard.health ~latency_ms ~ok () with
            | `Failed -> ignore (promote_shard t shard.idx)
            | `Opened ->
              ignore
                (Obs.Warn.once "router.breaker_open"
                   (Printf.sprintf "shard %d breaker opened (ewma %.1f ms)"
                      shard.idx (Health.ewma_ms shard.health)))
            | `Recovered | `Ok -> ()
          end)
        t.shards;
      let open_count =
        Array.fold_left
          (fun acc s -> if Health.state s.health <> Health.Closed then acc + 1 else acc)
          0 t.shards
      in
      Obs.Metrics.set_gauge g_breaker (float_of_int open_count)
    end
  done

(* ------------------------- drain and stats ------------------------- *)

let wake t =
  try ignore (Unix.write t.pipe_w (Bytes.of_string "d") 0 1)
  with Unix.Unix_error _ -> ()

let initiate_drain t = if not (Atomic.exchange t.stopping true) then wake t

let stats_fields t =
  let shards =
    Array.to_list
      (Array.map
         (fun s ->
           locked s.s_lock (fun () ->
               Json.Obj
                 [
                   ("shard", Json.Int s.idx);
                   ("target", Json.Str (addr_string s.target));
                   ("alive", Json.Bool s.alive);
                   ("promoted", Json.Bool s.promoted);
                   ("pool", Json.Int (List.length s.pool));
                   ("follower_pool", Json.Int (List.length s.f_pool));
                   ("forwarded", Json.Int s.forwarded);
                   ("shed", Json.Int s.shed);
                   ("hedges", Json.Int s.hedges);
                   ("hedge_wins", Json.Int s.hedge_wins);
                   ("breaker", Json.Str (Health.state_name s.health));
                   ("ewma_ms", Json.Float (Health.ewma_ms s.health));
                   ("health_failures", Json.Int (Health.failures s.health));
                   ( "watermark",
                     Json.Int
                       (match s.shipper with Some sh -> Shipper.watermark sh | None -> 0)
                   );
                 ]))
         t.shards)
  in
  let accepted, promotions = locked t.lock (fun () -> (t.accepted, t.promotions)) in
  let hedges, hedge_wins =
    Array.fold_left
      (fun (h, w) s -> locked s.s_lock (fun () -> (h + s.hedges, w + s.hedge_wins)))
      (0, 0) t.shards
  in
  [
    ("role", Json.Str "router");
    ("shards", Json.Arr shards);
    ("vnodes", Json.Int t.cfg.vnodes);
    ("accepted", Json.Int accepted);
    ("promotions", Json.Int promotions);
    ("hedges", Json.Int hedges);
    ("hedge_wins", Json.Int hedge_wins);
    ("draining", Json.Bool (Atomic.get t.stopping));
    ("max_transport", Json.Str (Server.Wire.version_name t.cfg.max_transport));
  ]

(* ----------------------------- requests ---------------------------- *)

let version_rank = function Server.Wire.V1 -> 1 | Server.Wire.V2 -> 2

let handle_request t c ~id (req : Server.Protocol.request) =
  match req with
  | Server.Protocol.Ping -> send_client c (Server.Protocol.ok_reply ~id ~op:"ping" [])
  | Server.Protocol.Stats ->
    send_client c (Server.Protocol.ok_reply ~id ~op:"stats" (stats_fields t))
  | Server.Protocol.Drain ->
    send_client c
      (Server.Protocol.ok_reply ~id ~op:"drain" [ ("draining", Json.Bool true) ]);
    initiate_drain t
  | Server.Protocol.Hello { transport } -> (
    match Server.Wire.version_of_name transport with
    | Some v when version_rank v <= version_rank t.cfg.max_transport ->
      (* Ack in the current dialect, then switch both directions —
         same switch point as the daemon's. *)
      locked c.c_olock (fun () ->
          if not c.c_closed then begin
            (try
               write_all c.c_fd
                 (Server.Wire.encode c.c_version
                    (Server.Wire.Text
                       (Json.to_string
                          (Server.Protocol.ok_reply ~id ~op:"hello"
                             [ ("transport", Json.Str (Server.Wire.version_name v)) ]))))
             with Unix.Unix_error _ | Sys_error _ -> c.c_closed <- true);
            c.c_version <- v
          end);
      Server.Wire.set_version c.c_dec v
    | Some _ | None ->
      send_client c
        (Server.Protocol.error_reply ~id ~code:"bad_request"
           ~detail:(Printf.sprintf "unknown or disabled transport %S" transport)))
  | Server.Protocol.Ship _ ->
    send_client c
      (Server.Protocol.error_reply ~id ~code:"bad_request"
         ~detail:"ship is shard-direct; the router does not replicate")
  | Server.Protocol.Analyze { tmat; _ } ->
    let shard = t.shards.(Ring.shard_of t.ring (Server.Store.family_hash tmat)) in
    forward t c ~id shard req
  | Server.Protocol.Search _ | Server.Protocol.Simulate _ | Server.Protocol.Replay _
    -> (
    match pick_rr t with
    | Some shard -> forward t c ~id shard req
    | None ->
      send_client c
        (Server.Protocol.error_reply ~id ~code:"overloaded" ~detail:"no live shards"))

(* --------------------------- client serving ------------------------ *)

let handle_frame t c = function
  | Server.Wire.Text line -> (
    match Server.Protocol.request_of_line line with
    | Ok env -> handle_request t c ~id:env.Server.Protocol.id env.Server.Protocol.req
    | Error msg ->
      send_client c (Server.Protocol.error_reply ~id:Json.Null ~code:"bad_request" ~detail:msg))
  | Server.Wire.Bin_analyze { id; deadline_ms; mu; tmat } ->
    handle_request t c ~id:(Json.Int id)
      (Server.Protocol.Analyze { mu; tmat; deadline_ms })
  | Server.Wire.Bin_verdict _ ->
    send_client c
      (Server.Protocol.error_reply ~id:Json.Null ~code:"bad_request"
         ~detail:"unexpected verdict frame from a client")

let rec pull_frames t c =
  match Server.Wire.next c.c_dec with
  | Server.Wire.Need_more -> true
  | Server.Wire.Corrupt msg ->
    send_client c (Server.Protocol.error_reply ~id:Json.Null ~code:"parse_error" ~detail:msg);
    false
  | Server.Wire.Frame f ->
    handle_frame t c f;
    pull_frames t c

let serve_client t c =
  let buf = Bytes.create 8192 in
  let rec loop () =
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Server.Wire.feed c.c_dec buf 0 n;
      if pull_frames t c then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
  in
  (try loop () with _ -> ());
  close_client t c

(* ------------------------------- run ------------------------------- *)

let run t =
  let mon = Thread.create monitor t in
  let hed = if hedging_active t then Some (Thread.create hedger t) else None in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd; t.pipe_r ] [] [] (-1.) with
      | ready, _, _ ->
        if List.mem t.pipe_r ready then begin
          (* A wake-up IS a drain request — signal handlers may only
             write the pipe (same contract as the daemon's loop). *)
          (let b = Bytes.create 16 in
           try ignore (Unix.read t.pipe_r b 0 16) with Unix.Unix_error _ -> ());
          Atomic.set t.stopping true
        end;
        if (not (Atomic.get t.stopping)) && List.mem t.listen_fd ready then (
          match Unix.accept t.listen_fd with
          | fd, _ ->
            let c =
              {
                c_fd = fd;
                c_dec = Server.Wire.decoder Server.Wire.V1;
                c_olock = Mutex.create ();
                c_version = Server.Wire.V1;
                c_closed = false;
              }
            in
            let th = Thread.create (fun () -> serve_client t c) () in
            locked t.lock (fun () ->
                t.accepted <- t.accepted + 1;
                t.clients <- (c, th) :: t.clients)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: stop listening, hang up on clients (shutdown wakes their
     blocked reads), push the final journal tail, then dismantle the
     upstream pools reader-first. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.sock_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  let clients = locked t.lock (fun () -> t.clients) in
  List.iter
    (fun (c, _) -> try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    clients;
  List.iter (fun (_, th) -> Thread.join th) clients;
  Thread.join mon;
  Option.iter Thread.join hed;
  Array.iter
    (fun shard ->
      let pools = locked shard.s_lock (fun () -> shard.pool @ shard.f_pool) in
      List.iter (fun uc -> fail_uconn shard uc) pools;
      List.iter
        (fun uc -> match uc.u_reader with Some th -> Thread.join th | None -> ())
        pools;
      match shard.shipper with
      | Some sh ->
        if not shard.promoted then ignore (Shipper.pump sh);
        Shipper.close sh
      | None -> ())
    t.shards;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ())
