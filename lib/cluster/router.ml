(* The cluster router: one process that makes N daemon shards look
   like one daemon (docs/CLUSTER.md).

   Downstream it speaks the same versioned wire protocol as the
   daemon — v1 JSON lines by default, v2 binary after a [hello] — one
   thread per accepted client.  Upstream it keeps a small pool of
   pipelined connections per shard; requests are restamped with a
   router-unique integer id, the original id parked in the pool
   connection's pending table, and a per-connection reader thread
   matches replies back and restamps them on the way out.  [analyze]
   routes by the matrix-only family hash through the consistent-hash
   {!Ring} (so the content key and its mu-parametric family stay on
   one shard); the stateless ops round-robin over live shards;
   [ping]/[stats]/[drain]/[hello] answer inline; [ship] is rejected —
   it is the replication channel, shard-direct by contract.

   Failover: a monitor thread pings every shard each health interval
   and pumps its journal {!Shipper}; when {!Health} reports the
   threshold crossing, the shard's follower is caught up from the
   primary's journal and promoted in place.  {!promote_shard} exposes
   the same transition synchronously for the chaos harness, which
   needs the kill -> promote sequence at a deterministic point in its
   request stream.

   Lock order: shard [s_lock] > pool connection [u_plock] > client
   [c_olock].  Fault sites: [route.forward] (class [cluster]) is
   consulted once per forwarded request, on the client's thread, so a
   single-driver chaos run consults it at a seed-reproducible
   sequence. *)

type shard_spec = {
  primary : Server.Client.addr;
  follower : Server.Client.addr option;
  journal : string option;
}

type config = {
  listen : Server.Daemon.listen;
  shards : shard_spec list;
  pool_size : int;
  shard_transport : Server.Wire.version;
  max_transport : Server.Wire.version;
  health_interval_ms : int;
  health_threshold : int;
  vnodes : int;
}

let default_config listen shards =
  {
    listen;
    shards;
    pool_size = 2;
    shard_transport = Server.Wire.V2;
    max_transport = Server.Wire.V2;
    health_interval_ms = 1000;
    health_threshold = 3;
    vnodes = 64;
  }

type client = {
  c_fd : Unix.file_descr;
  c_dec : Server.Wire.decoder;
  c_olock : Mutex.t;
  mutable c_version : Server.Wire.version;
  mutable c_closed : bool;
}

type pending = { p_client : client; p_id : Json.t }

type uconn = {
  u : Server.Client.conn;
  u_send : Mutex.t;
  u_pending : (int, pending) Hashtbl.t;
  u_plock : Mutex.t;
  mutable u_dead : bool;
  mutable u_reader : Thread.t option;
}

type shard = {
  idx : int;
  spec : shard_spec;
  s_lock : Mutex.t;
  mutable target : Server.Client.addr;
  mutable alive : bool;
  mutable promoted : bool;
  mutable pool : uconn list;
  mutable next_conn : int;
  mutable forwarded : int;
  mutable shed : int;
  health : Health.t;
  shipper : Shipper.t option;
}

type t = {
  cfg : config;
  ring : Ring.t;
  shards : shard array;
  listen_fd : Unix.file_descr;
  sock_path : string option;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  next_rid : int Atomic.t;
  stopping : bool Atomic.t;
  rr : int Atomic.t;  (* round-robin cursor for the stateless ops *)
  lock : Mutex.t;     (* clients list + global counters *)
  mutable clients : (client * Thread.t) list;
  mutable accepted : int;
  mutable promotions : int;
}

let m_forwarded = Obs.Metrics.counter "router.forwarded"
let m_shed = Obs.Metrics.counter "router.shed"
let m_promotions = Obs.Metrics.counter "router.promotions"

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ----------------------------- listening --------------------------- *)

let bind_unix path =
  if Sys.file_exists path then begin
    (* Same stale-socket policy as the daemon: probe; unlink only a
       dead socket; never unlink a non-socket. *)
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      failwith (Printf.sprintf "Router.create: %s already has a live listener" path)
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      Unix.close probe;
      Unix.unlink path
    | exception Unix.Unix_error _ -> Unix.close probe (* let bind fail loudly *))
  end;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let addr_string : Server.Client.addr -> string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ------------------------------ create ----------------------------- *)

let create (cfg : config) =
  if cfg.shards = [] then invalid_arg "Router.create: no shards";
  if cfg.pool_size < 1 then invalid_arg "Router.create: pool_size must be >= 1";
  let listen_fd, sock_path =
    match cfg.listen with
    | Server.Daemon.Unix_sock path -> (bind_unix path, Some path)
    | Server.Daemon.Tcp port -> (bind_tcp port, None)
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let shards =
    Array.of_list
      (List.mapi
         (fun idx spec ->
           {
             idx;
             spec;
             s_lock = Mutex.create ();
             target = spec.primary;
             alive = true;
             promoted = false;
             pool = [];
             next_conn = 0;
             forwarded = 0;
             shed = 0;
             health = Health.create ~threshold:cfg.health_threshold ();
             shipper =
               (match (spec.journal, spec.follower) with
               | Some journal, Some follower ->
                 Some (Shipper.create ~journal ~transport:Server.Wire.V1 ~follower ())
               | _ -> None);
           })
         cfg.shards)
  in
  {
    cfg;
    ring = Ring.make ~vnodes:cfg.vnodes (Array.length shards);
    shards;
    listen_fd;
    sock_path;
    pipe_r;
    pipe_w;
    next_rid = Atomic.make 1;
    stopping = Atomic.make false;
    rr = Atomic.make 0;
    lock = Mutex.create ();
    clients = [];
    accepted = 0;
    promotions = 0;
  }

let ring t = t.ring

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> Some p
  | _ -> None

(* --------------------------- client output ------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let send_client c reply =
  locked c.c_olock (fun () ->
      if not c.c_closed then
        try write_all c.c_fd (Server.Wire.encode c.c_version (Server.Wire.Text (Json.to_string reply)))
        with Unix.Unix_error _ | Sys_error _ -> c.c_closed <- true)

let close_client t c =
  let was_open =
    locked c.c_olock (fun () ->
        let was = not c.c_closed in
        c.c_closed <- true;
        was)
  in
  if was_open then (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
  locked t.lock (fun () ->
      t.clients <- List.filter (fun (cl, _) -> cl != c) t.clients)

(* --------------------------- upstream pool ------------------------- *)

let take_pending uc rid =
  locked uc.u_plock (fun () ->
      match Hashtbl.find_opt uc.u_pending rid with
      | Some p ->
        Hashtbl.remove uc.u_pending rid;
        Some p
      | None -> None)

let drain_pendings uc =
  locked uc.u_plock (fun () ->
      let l = Hashtbl.fold (fun _ p acc -> p :: acc) uc.u_pending [] in
      Hashtbl.reset uc.u_pending;
      l)

(* Idempotent: the first caller wins; every parked request completes
   with a retriable [overloaded] so sessions re-issue elsewhere.  The
   descriptor is only shut down here — the reader thread, the sole
   blocked reader, closes it on its way out. *)
let fail_uconn shard uc =
  let first =
    locked shard.s_lock (fun () ->
        let first = not uc.u_dead in
        uc.u_dead <- true;
        if first then shard.pool <- List.filter (fun x -> x != uc) shard.pool;
        first)
  in
  if first then begin
    Server.Client.shutdown uc.u;
    List.iter
      (fun p ->
        send_client p.p_client
          (Server.Protocol.error_reply ~id:p.p_id ~code:"overloaded"
             ~detail:(Printf.sprintf "shard %d connection lost" shard.idx)))
      (drain_pendings uc)
  end

let restamp id = function
  | Json.Obj fields ->
    Json.Obj (List.map (fun (k, v) -> if k = "id" then (k, id) else (k, v)) fields)
  | j -> j

let upstream_reader shard uc =
  let rec loop () =
    let reply = Server.Client.recv uc.u in
    (match Server.Protocol.reply_id reply with
    | Json.Int rid -> (
      match take_pending uc rid with
      | Some p -> send_client p.p_client (restamp p.p_id reply)
      | None -> () (* already failed over; the session re-issued *))
    | _ -> () (* unroutable reply; drop *));
    loop ()
  in
  (try loop () with Failure _ | Unix.Unix_error _ | Sys_error _ -> ());
  fail_uconn shard uc;
  Server.Client.close uc.u

let get_uconn t shard =
  locked shard.s_lock (fun () ->
      if not shard.alive then None
      else begin
        let live = List.filter (fun uc -> not uc.u_dead) shard.pool in
        let n = List.length live in
        if n >= t.cfg.pool_size then begin
          let uc = List.nth live (shard.next_conn mod n) in
          shard.next_conn <- shard.next_conn + 1;
          Some uc
        end
        else
          match Server.Client.connect ~transport:t.cfg.shard_transport shard.target with
          | u ->
            let uc =
              {
                u;
                u_send = Mutex.create ();
                u_pending = Hashtbl.create 16;
                u_plock = Mutex.create ();
                u_dead = false;
                u_reader = None;
              }
            in
            uc.u_reader <- Some (Thread.create (fun () -> upstream_reader shard uc) ());
            shard.pool <- uc :: shard.pool;
            shard.next_conn <- shard.next_conn + 1;
            Some uc
          | exception (Unix.Unix_error _ | Failure _ | Sys_error _) -> None
      end)

(* ----------------------------- forwarding -------------------------- *)

let send_upstream uc ~rid (req : Server.Protocol.request) =
  locked uc.u_send (fun () ->
      match req with
      | Server.Protocol.Analyze { mu; tmat; deadline_ms } ->
        Server.Client.send_analyze uc.u ~id:rid ?deadline_ms ~mu tmat
      | Server.Protocol.Search { algorithm; mu; s; pareto; array_dim; deadline_ms } ->
        Server.Client.send uc.u
          (Server.Protocol.search ~id:(Json.Int rid) ?deadline_ms ?s ~pareto ~array_dim
             ~algorithm ~mu ())
      | Server.Protocol.Simulate { algorithm; mu; s; pi } ->
        Server.Client.send uc.u
          (Server.Protocol.simulate ~id:(Json.Int rid) ?s ~algorithm ~mu ~pi ())
      | Server.Protocol.Replay { instance } ->
        Server.Client.send uc.u (Server.Protocol.replay ~id:(Json.Int rid) instance)
      | Server.Protocol.Ship _ | Server.Protocol.Ping | Server.Protocol.Stats
      | Server.Protocol.Drain | Server.Protocol.Hello _ ->
        invalid_arg "Router.send_upstream: inline op")

let shed shard c ~id detail =
  locked shard.s_lock (fun () -> shard.shed <- shard.shed + 1);
  Obs.Metrics.incr m_shed;
  send_client c (Server.Protocol.error_reply ~id ~code:"overloaded" ~detail)

let forward t c ~id shard req =
  if Fault.should_fail "route.forward" then
    shed shard c ~id "fault injected: route.forward"
  else
    match get_uconn t shard with
    | None -> shed shard c ~id (Printf.sprintf "shard %d unavailable" shard.idx)
    | Some uc -> (
      let rid = Atomic.fetch_and_add t.next_rid 1 in
      locked uc.u_plock (fun () ->
          Hashtbl.replace uc.u_pending rid { p_client = c; p_id = id });
      match send_upstream uc ~rid req with
      | () ->
        locked shard.s_lock (fun () -> shard.forwarded <- shard.forwarded + 1);
        Obs.Metrics.incr m_forwarded
      | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
        let mine = take_pending uc rid <> None in
        fail_uconn shard uc;
        if mine then shed shard c ~id (Printf.sprintf "shard %d write failed" shard.idx))

(* Round-robin over live shards for the ops that carry no key. *)
let pick_rr t =
  let n = Array.length t.shards in
  let rec go tries =
    if tries = n then None
    else
      let s = t.shards.(Atomic.fetch_and_add t.rr 1 mod n) in
      if s.alive then Some s else go (tries + 1)
  in
  go 0

(* ---------------------------- promotion ---------------------------- *)

let promote_shard t idx =
  if idx < 0 || idx >= Array.length t.shards then
    invalid_arg "Router.promote_shard: no such shard";
  let shard = t.shards.(idx) in
  let already =
    locked shard.s_lock (fun () ->
        if shard.promoted then true
        else begin
          shard.alive <- false;
          false
        end)
  in
  if already then shard.alive
  else begin
    let pool = locked shard.s_lock (fun () -> shard.pool) in
    List.iter (fun uc -> fail_uconn shard uc) pool;
    match shard.spec.follower with
    | None -> false (* no replica: the shard stays down *)
    | Some follower ->
      (* Catch the follower up from the primary's journal before any
         request is redirected: every record the dead primary acked
         (and drain-flushed) must be queryable on the follower first —
         the zero-lost-acked-writes half of the failover contract. *)
      (match shard.shipper with
      | Some sh -> ignore (Shipper.catch_up sh)
      | None -> ());
      locked shard.s_lock (fun () ->
          shard.target <- follower;
          shard.promoted <- true;
          shard.alive <- true);
      locked t.lock (fun () -> t.promotions <- t.promotions + 1);
      Obs.Metrics.incr m_promotions;
      true
  end

(* ------------------------------ monitor ---------------------------- *)

let probe addr =
  match Server.Client.connect ~transport:Server.Wire.V1 addr with
  | exception (Unix.Unix_error _ | Failure _ | Sys_error _) -> false
  | c ->
    let ok =
      match Server.Client.request c (Server.Protocol.ping ()) with
      | reply -> Server.Protocol.reply_ok reply
      | exception (Unix.Unix_error _ | Failure _ | Sys_error _) -> false
    in
    Server.Client.close c;
    ok

let monitor t =
  let interval = float_of_int t.cfg.health_interval_ms /. 1000. in
  let rec sleep left =
    if left > 0. && not (Atomic.get t.stopping) then begin
      let d = Float.min left 0.05 in
      Thread.delay d;
      sleep (left -. d)
    end
  in
  while not (Atomic.get t.stopping) do
    sleep interval;
    if not (Atomic.get t.stopping) then
      Array.iter
        (fun shard ->
          (match shard.shipper with
          | Some sh when not shard.promoted -> ignore (Shipper.pump sh)
          | _ -> ());
          if shard.alive && not shard.promoted then
            match Health.note shard.health ~ok:(probe shard.target) with
            | `Failed -> ignore (promote_shard t shard.idx)
            | `Ok -> ())
        t.shards
  done

(* ------------------------- drain and stats ------------------------- *)

let wake t =
  try ignore (Unix.write t.pipe_w (Bytes.of_string "d") 0 1)
  with Unix.Unix_error _ -> ()

let initiate_drain t = if not (Atomic.exchange t.stopping true) then wake t

let stats_fields t =
  let shards =
    Array.to_list
      (Array.map
         (fun s ->
           locked s.s_lock (fun () ->
               Json.Obj
                 [
                   ("shard", Json.Int s.idx);
                   ("target", Json.Str (addr_string s.target));
                   ("alive", Json.Bool s.alive);
                   ("promoted", Json.Bool s.promoted);
                   ("pool", Json.Int (List.length s.pool));
                   ("forwarded", Json.Int s.forwarded);
                   ("shed", Json.Int s.shed);
                   ("health_failures", Json.Int (Health.failures s.health));
                   ( "watermark",
                     Json.Int
                       (match s.shipper with Some sh -> Shipper.watermark sh | None -> 0)
                   );
                 ]))
         t.shards)
  in
  let accepted, promotions = locked t.lock (fun () -> (t.accepted, t.promotions)) in
  [
    ("role", Json.Str "router");
    ("shards", Json.Arr shards);
    ("vnodes", Json.Int t.cfg.vnodes);
    ("accepted", Json.Int accepted);
    ("promotions", Json.Int promotions);
    ("draining", Json.Bool (Atomic.get t.stopping));
    ("max_transport", Json.Str (Server.Wire.version_name t.cfg.max_transport));
  ]

(* ----------------------------- requests ---------------------------- *)

let version_rank = function Server.Wire.V1 -> 1 | Server.Wire.V2 -> 2

let handle_request t c ~id (req : Server.Protocol.request) =
  match req with
  | Server.Protocol.Ping -> send_client c (Server.Protocol.ok_reply ~id ~op:"ping" [])
  | Server.Protocol.Stats ->
    send_client c (Server.Protocol.ok_reply ~id ~op:"stats" (stats_fields t))
  | Server.Protocol.Drain ->
    send_client c
      (Server.Protocol.ok_reply ~id ~op:"drain" [ ("draining", Json.Bool true) ]);
    initiate_drain t
  | Server.Protocol.Hello { transport } -> (
    match Server.Wire.version_of_name transport with
    | Some v when version_rank v <= version_rank t.cfg.max_transport ->
      (* Ack in the current dialect, then switch both directions —
         same switch point as the daemon's. *)
      locked c.c_olock (fun () ->
          if not c.c_closed then begin
            (try
               write_all c.c_fd
                 (Server.Wire.encode c.c_version
                    (Server.Wire.Text
                       (Json.to_string
                          (Server.Protocol.ok_reply ~id ~op:"hello"
                             [ ("transport", Json.Str (Server.Wire.version_name v)) ]))))
             with Unix.Unix_error _ | Sys_error _ -> c.c_closed <- true);
            c.c_version <- v
          end);
      Server.Wire.set_version c.c_dec v
    | Some _ | None ->
      send_client c
        (Server.Protocol.error_reply ~id ~code:"bad_request"
           ~detail:(Printf.sprintf "unknown or disabled transport %S" transport)))
  | Server.Protocol.Ship _ ->
    send_client c
      (Server.Protocol.error_reply ~id ~code:"bad_request"
         ~detail:"ship is shard-direct; the router does not replicate")
  | Server.Protocol.Analyze { tmat; _ } ->
    let shard = t.shards.(Ring.shard_of t.ring (Server.Store.family_hash tmat)) in
    forward t c ~id shard req
  | Server.Protocol.Search _ | Server.Protocol.Simulate _ | Server.Protocol.Replay _
    -> (
    match pick_rr t with
    | Some shard -> forward t c ~id shard req
    | None ->
      send_client c
        (Server.Protocol.error_reply ~id ~code:"overloaded" ~detail:"no live shards"))

(* --------------------------- client serving ------------------------ *)

let handle_frame t c = function
  | Server.Wire.Text line -> (
    match Server.Protocol.request_of_line line with
    | Ok env -> handle_request t c ~id:env.Server.Protocol.id env.Server.Protocol.req
    | Error msg ->
      send_client c (Server.Protocol.error_reply ~id:Json.Null ~code:"bad_request" ~detail:msg))
  | Server.Wire.Bin_analyze { id; deadline_ms; mu; tmat } ->
    handle_request t c ~id:(Json.Int id)
      (Server.Protocol.Analyze { mu; tmat; deadline_ms })
  | Server.Wire.Bin_verdict _ ->
    send_client c
      (Server.Protocol.error_reply ~id:Json.Null ~code:"bad_request"
         ~detail:"unexpected verdict frame from a client")

let rec pull_frames t c =
  match Server.Wire.next c.c_dec with
  | Server.Wire.Need_more -> true
  | Server.Wire.Corrupt msg ->
    send_client c (Server.Protocol.error_reply ~id:Json.Null ~code:"parse_error" ~detail:msg);
    false
  | Server.Wire.Frame f ->
    handle_frame t c f;
    pull_frames t c

let serve_client t c =
  let buf = Bytes.create 8192 in
  let rec loop () =
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Server.Wire.feed c.c_dec buf 0 n;
      if pull_frames t c then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
  in
  (try loop () with _ -> ());
  close_client t c

(* ------------------------------- run ------------------------------- *)

let run t =
  let mon = Thread.create monitor t in
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd; t.pipe_r ] [] [] (-1.) with
      | ready, _, _ ->
        if List.mem t.pipe_r ready then begin
          (* A wake-up IS a drain request — signal handlers may only
             write the pipe (same contract as the daemon's loop). *)
          (let b = Bytes.create 16 in
           try ignore (Unix.read t.pipe_r b 0 16) with Unix.Unix_error _ -> ());
          Atomic.set t.stopping true
        end;
        if (not (Atomic.get t.stopping)) && List.mem t.listen_fd ready then (
          match Unix.accept t.listen_fd with
          | fd, _ ->
            let c =
              {
                c_fd = fd;
                c_dec = Server.Wire.decoder Server.Wire.V1;
                c_olock = Mutex.create ();
                c_version = Server.Wire.V1;
                c_closed = false;
              }
            in
            let th = Thread.create (fun () -> serve_client t c) () in
            locked t.lock (fun () ->
                t.accepted <- t.accepted + 1;
                t.clients <- (c, th) :: t.clients)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: stop listening, hang up on clients (shutdown wakes their
     blocked reads), push the final journal tail, then dismantle the
     upstream pools reader-first. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.sock_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  let clients = locked t.lock (fun () -> t.clients) in
  List.iter
    (fun (c, _) -> try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    clients;
  List.iter (fun (_, th) -> Thread.join th) clients;
  Thread.join mon;
  Array.iter
    (fun shard ->
      let pool = locked shard.s_lock (fun () -> shard.pool) in
      List.iter (fun uc -> fail_uconn shard uc) pool;
      List.iter
        (fun uc -> match uc.u_reader with Some th -> Thread.join th | None -> ())
        pool;
      match shard.shipper with
      | Some sh ->
        if not shard.promoted then ignore (Shipper.pump sh);
        Shipper.close sh
      | None -> ())
    t.shards;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ())
