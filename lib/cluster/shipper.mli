(** Journal shipping: replicates a primary's store journal to a
    follower daemon over the [ship] op (docs/CLUSTER.md).

    The shipper tails the journal {e file}, not the daemon, so it
    works identically whether the primary is alive, draining or
    already dead — promotion relies on that to catch the follower up
    from a killed primary's drain-flushed journal.  Each complete
    record line is sent as [ship {seq; record}] where [seq] is the
    journal byte offset just past the line; an acked line advances the
    {!watermark} to its [seq].  Records self-validate (their CRC
    travels inside the line) and the follower applies them
    idempotently, so overlap after a crash or a journal rewrite is
    harmless. *)

type t

val create :
  journal:string ->
  ?retry:Server.Client.retry ->
  ?transport:Server.Wire.version ->
  follower:Server.Client.addr ->
  unit ->
  t
(** Lazy: nothing connects until the first {!pump}.  The watermark
    starts at 0 — the first pump ships the whole journal (minus the
    header line, which the follower's own store provides). *)

val pump : t -> int
(** Ship every complete line past the watermark, in order, stopping at
    the first un-acked line or a torn tail; returns the number of
    lines acked this call.  A journal shorter than the watermark
    (rewritten by compaction) resets the watermark to 0 and re-ships —
    idempotent application makes the overlap safe.  A missing journal
    ships nothing. *)

val catch_up : t -> int
(** [pump] under its promotion-time name: called once more after the
    primary is known dead, so every record its drain flushed reaches
    the follower before the router redirects traffic. *)

val watermark : t -> int
(** Journal byte offset at or below which every record is follower-acked. *)

val shipped : t -> int
val failed : t -> int
val journal : t -> string

val close : t -> unit
