(* Consistent-hash ring over shard indices.  Each shard owns [vnodes]
   points on a 32-bit circle; a key hashes to the first point at or
   after it (wrapping).  Placement depends only on (shards, vnodes) —
   never on socket paths or boot order — so a router restart, the
   chaos audit and a re-spawned fleet all agree on who owns what. *)

type t = { points : (int * int) array; shards : int; vnodes : int }

(* Same FNV-1a the store journal uses for its record CRCs; 32-bit. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let make ?(vnodes = 64) shards =
  if shards < 1 then invalid_arg "Ring.make: shards must be >= 1";
  if vnodes < 1 then invalid_arg "Ring.make: vnodes must be >= 1";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and replica = i mod vnodes in
        (fnv1a (Printf.sprintf "shard:%d:%d" shard replica), shard))
  in
  (* Ties (two vnodes hashing to the same point) break towards the
     lower shard index — [compare] on the pair is total, so the sort
     is deterministic. *)
  Array.sort compare points;
  { points; shards; vnodes }

let shards t = t.shards
let vnodes t = t.vnodes

let shard_of t hash =
  let h = hash land 0xFFFFFFFF in
  let n = Array.length t.points in
  (* Lower bound: first point >= h, else wrap to the first point. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  snd t.points.(if !lo = n then 0 else !lo)

let spread t ~samples =
  if samples < 1 then invalid_arg "Ring.spread: samples must be >= 1";
  let counts = Array.make t.shards 0 in
  for i = 0 to samples - 1 do
    let s = shard_of t (fnv1a (string_of_int i)) in
    counts.(s) <- counts.(s) + 1
  done;
  counts
