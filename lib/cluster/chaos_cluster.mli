(** Cluster chaos: kill a shard under load, promote its follower, and
    prove nothing was lost (docs/CLUSTER.md, docs/RESILIENCE.md).

    {!run} boots a whole fleet in-process — [shards] primary daemons,
    one follower each, one {!Router} — and drives [requests] analyze
    queries through the router from a single retrying session.  An
    armed {!Fault.Plan} decides, at the [shard.kill] site, when the
    doomed shard (index [seed mod shards]) dies; the driver kills it
    (graceful drain, or {!Server.Daemon.abort} when [hard_kill] — the
    SIGKILL-grade path the [fsync_every = 1] durability leg uses),
    calls {!Router.promote_shard}, and keeps going.  After the run the
    audit re-derives placement through the same {!Ring} and reopens
    the journals that may now hold each acked write — the follower's
    (only) for the killed shard; primary {e or} follower for a live
    shard, since a hedge that won on the follower acked the write
    there — and compares byte-for-byte with a fault-free ground truth.

    Determinism: with the default [classes = ["cluster"]] only
    [shard.kill] and [route.forward] are armed, both consulted on the
    single driver thread's synchronous request path; the fleet's
    background traffic consults only {e disabled} sites, which never
    bump counters — so two same-seed runs produce byte-identical
    fault logs (the CI cluster-smoke job diffs them).  The [latency]
    class extends the contract to gray failures: its sites are ambient
    (stall, never log per event), so the log stays byte-identical even
    though stalls and hedge races are not schedule-deterministic.

    SLO mode ([slo = true]) runs three passes — fault-free baseline,
    gray with hedging, gray without — and the report's [slo] field
    carries the p99 of each plus the audited bound
    [max (3 * baseline_p99) 25ms]: convergence then additionally
    requires the hedged pass under the bound and the unhedged pass
    over it.  Arm it with [classes = ["latency"]] (the CI gray smoke
    does): kills would remove hedge partners mid-pass and void the
    bound. *)

type config = {
  seed : int;
  requests : int;
  distinct : int;
  size : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : Server.Wire.version;
  hedge : bool;        (** Router hedging (fixed 5 ms delay) in the main pass. *)
  hard_kill : bool;    (** Kill via {!Server.Daemon.abort} instead of drain. *)
  fsync_every : int;   (** Shard daemons' store sync interval. *)
  slo : bool;          (** Three-pass SLO audit (see above). *)
  delay_ms : int;      (** Stall applied by fired latency-site consults. *)
}

val default_config : config
(** Seed 42, 500 requests, 32 distinct instances, size 4, 3 shards,
    classes [["cluster"]], rate 0.1, v1 transport, hedging on,
    graceful kill, [fsync_every = 4], SLO off, 50 ms gray delay. *)

type slo_report = {
  baseline_p99_ms : float;
  hedged_p99_ms : float;
  unhedged_p99_ms : float;
  bound_ms : float;             (** [max (3 * baseline_p99) 25ms]. *)
  hedged_within_bound : bool;
  unhedged_degraded : bool;     (** Unhedged p99 over the same bound. *)
}

type report = {
  seed : int;
  requests : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : string;
  ok : int;
  errors : int;
  retried : int;
  attempts : int;
  disagreements : int;   (** Replies differing from ground truth. *)
  acked : int;           (** Distinct instances with an acked write. *)
  lost_writes : int;     (** Acked writes missing from every owning journal. *)
  faults : int;
  delays : int;          (** Ambient latency stalls applied ({!Fault.Plan.delays_injected}). *)
  site_counts : (string * int) list;
  killed_shard : int;    (** [-1] when the plan never fired [shard.kill]. *)
  killed_at : int;       (** Request index of the kill, [-1] when none. *)
  promoted : bool;
  promotions : int;
  hedges : int;          (** Hedge re-issues the router sent. *)
  hedge_wins : int;      (** Hedges whose reply arrived first. *)
  fingerprint : string;
  fault_log : string list;
  converged : bool;
      (** Zero disagreements, zero lost acked writes, some successes,
          a successful promotion if a kill fired — and, in SLO mode,
          the hedged-under-bound / unhedged-over-bound pair. *)
  slo : slo_report option;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  wall_s : float;
}

val run : config -> report
(** @raise Invalid_argument on a non-positive [requests], [distinct],
    [shards] or [fsync_every]. *)

val json_of_report : report -> Json.t
