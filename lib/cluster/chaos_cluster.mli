(** Cluster chaos: kill a shard under load, promote its follower, and
    prove nothing was lost (docs/CLUSTER.md, docs/RESILIENCE.md).

    {!run} boots a whole fleet in-process — [shards] primary daemons,
    one follower each, one {!Router} — and drives [requests] analyze
    queries through the router from a single retrying session.  An
    armed {!Fault.Plan} decides, at the [shard.kill] site, when the
    doomed shard (index [seed mod shards]) dies; the driver drains it,
    calls {!Router.promote_shard}, and keeps going.  After the run the
    audit re-derives placement through the same {!Ring} and reopens
    the journal that must now hold each acked write — the follower's
    for the killed shard — and compares byte-for-byte with a
    fault-free ground truth.

    Determinism: with the default [classes = ["cluster"]] only
    [shard.kill] and [route.forward] are armed, both consulted on the
    single driver thread's synchronous request path; the fleet's
    background traffic consults only {e disabled} sites, which never
    bump counters — so two same-seed runs produce byte-identical
    fault logs (the CI cluster-smoke job diffs them). *)

type config = {
  seed : int;
  requests : int;
  distinct : int;
  size : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : Server.Wire.version;
}

val default_config : config
(** Seed 42, 500 requests, 32 distinct instances, size 4, 3 shards,
    classes [["cluster"]], rate 0.1, v1 transport. *)

type report = {
  seed : int;
  requests : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : string;
  ok : int;
  errors : int;
  retried : int;
  attempts : int;
  disagreements : int;   (** Replies differing from ground truth. *)
  acked : int;           (** Distinct instances with an acked write. *)
  lost_writes : int;     (** Acked writes missing from the owning journal. *)
  faults : int;
  site_counts : (string * int) list;
  killed_shard : int;    (** [-1] when the plan never fired [shard.kill]. *)
  killed_at : int;       (** Request index of the kill, [-1] when none. *)
  promoted : bool;
  promotions : int;
  fingerprint : string;
  fault_log : string list;
  converged : bool;
      (** Zero disagreements, zero lost acked writes, some successes —
          and, if a kill fired, a successful promotion. *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  wall_s : float;
}

val run : config -> report
(** @raise Invalid_argument on a non-positive [requests], [distinct]
    or [shards]. *)

val json_of_report : report -> Json.t
