(* Consecutive-failure shard health tracking.  Deliberately tiny: the
   router's monitor thread feeds it one probe result per interval and
   acts on the single [`Failed] edge it reports. *)

type verdict = [ `Ok | `Failed ]

type t = {
  threshold : int;
  mutable consecutive : int;
  mutable probes : int;
  mutable failures : int;
}

let create ?(threshold = 3) () =
  if threshold < 1 then invalid_arg "Health.create: threshold must be >= 1";
  { threshold; consecutive = 0; probes = 0; failures = 0 }

let note t ~ok : verdict =
  t.probes <- t.probes + 1;
  if ok then begin
    t.consecutive <- 0;
    `Ok
  end
  else begin
    t.failures <- t.failures + 1;
    t.consecutive <- t.consecutive + 1;
    (* Report the threshold crossing exactly once; staying down is not
       news — the router must not re-promote on every later probe. *)
    if t.consecutive = t.threshold then `Failed else `Ok
  end

let consecutive t = t.consecutive
let probes t = t.probes
let failures t = t.failures
let threshold t = t.threshold
