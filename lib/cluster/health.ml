(* Latency-aware shard health: a consecutive-failure tracker (the
   crash-detection edge the router promotes on, unchanged) plus a
   latency EWMA driving a per-shard circuit breaker, so a shard that
   is up but *slow* — a gray failure — is demoted off the hot path and
   probed back in.  The router's monitor thread feeds it one probe
   result per interval. *)

type breaker = Closed | Open | Half_open
type verdict = [ `Ok | `Failed | `Opened | `Recovered ]

type t = {
  threshold : int;
  alpha : float;
  latency_limit_ms : float;
  cooldown : int;
  mutable consecutive : int;
  mutable probes : int;
  mutable failures : int;
  mutable ewma : float; (* nan until the first latency sample *)
  mutable state : breaker;
  mutable open_since : int; (* probe count when the breaker opened *)
  mutable opens : int;
}

let create ?(threshold = 3) ?(alpha = 0.3) ?(latency_limit_ms = 500.)
    ?(cooldown = 3) () =
  if threshold < 1 then invalid_arg "Health.create: threshold must be >= 1";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Health.create: alpha must be in (0, 1]";
  if cooldown < 1 then invalid_arg "Health.create: cooldown must be >= 1";
  {
    threshold;
    alpha;
    latency_limit_ms;
    cooldown;
    consecutive = 0;
    probes = 0;
    failures = 0;
    ewma = Float.nan;
    state = Closed;
    open_since = 0;
    opens = 0;
  }

let breaker_enabled t = t.latency_limit_ms > 0.

let open_breaker t =
  t.state <- Open;
  t.open_since <- t.probes;
  t.opens <- t.opens + 1

let note t ?latency_ms ~ok () : verdict =
  t.probes <- t.probes + 1;
  if not ok then begin
    t.failures <- t.failures + 1;
    t.consecutive <- t.consecutive + 1;
    (* A failed probe while half-open slams the breaker shut again
       (shut = Open: traffic stays off the shard). *)
    if breaker_enabled t && t.state = Half_open then open_breaker t;
    (* Report the threshold crossing exactly once; staying down is not
       news — the router must not re-promote on every later probe. *)
    if t.consecutive = t.threshold then `Failed else `Ok
  end
  else begin
    t.consecutive <- 0;
    match latency_ms with
    | None -> `Ok
    | Some ms ->
      if not (breaker_enabled t) then begin
        t.ewma <-
          (if Float.is_nan t.ewma then ms
           else (t.alpha *. ms) +. ((1. -. t.alpha) *. t.ewma));
        `Ok
      end
      else begin
        match t.state with
        | Closed ->
          t.ewma <-
            (if Float.is_nan t.ewma then ms
             else (t.alpha *. ms) +. ((1. -. t.alpha) *. t.ewma));
          if t.ewma > t.latency_limit_ms then begin
            open_breaker t;
            `Opened
          end
          else `Ok
        | Open ->
          (* While open the EWMA is frozen — the shard serves no
             traffic, and the probe stream alone decides when to try
             it again, after [cooldown] probes. *)
          if t.probes - t.open_since >= t.cooldown then t.state <- Half_open;
          `Ok
        | Half_open ->
          (* One trial probe decides: fast closes the breaker (and
             restarts the EWMA from this sample, forgetting the slow
             episode), slow re-opens it. *)
          if ms <= t.latency_limit_ms then begin
            t.state <- Closed;
            t.ewma <- ms;
            `Recovered
          end
          else begin
            open_breaker t;
            `Ok
          end
      end
  end

let state t = t.state

let state_name t =
  match t.state with
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

let ewma_ms t = if Float.is_nan t.ewma then 0. else t.ewma
let opens t = t.opens
let consecutive t = t.consecutive
let probes t = t.probes
let failures t = t.failures
let threshold t = t.threshold
let latency_limit_ms t = t.latency_limit_ms
