(** Consistent-hash ring: the placement function of the cluster tier
    (docs/CLUSTER.md).

    The router hashes every [analyze] request to a shard through this
    ring, keyed on the {e matrix-only} {!Server.Store.family_hash} —
    so the full content key (matrix plus [mu] row) and every
    [mu]-parametric family record for the same matrix land on the
    same shard, and the daemon's family fastpath stays shard-local.

    Placement is a pure function of [(shards, vnodes)]: no socket
    paths, no boot order, no randomness.  The chaos audit re-derives
    it independently to decide which journal must hold each acked
    write. *)

type t

val make : ?vnodes:int -> int -> t
(** [make ~vnodes n] builds the ring for shard indices [0 .. n-1] with
    [vnodes] points per shard (default 64).
    @raise Invalid_argument when [n < 1] or [vnodes < 1]. *)

val shard_of : t -> int -> int
(** [shard_of t hash] maps a 32-bit hash (only the low 32 bits are
    used) to the owning shard index: the shard of the first ring point
    at or after the hash, wrapping past the top of the circle. *)

val shards : t -> int
val vnodes : t -> int

val spread : t -> samples:int -> int array
(** Ownership histogram over [samples] synthetic keys — the balance
    diagnostic the ring test bounds (no shard may own a grossly
    disproportionate share).
    @raise Invalid_argument when [samples < 1]. *)

val fnv1a : string -> int
(** The 32-bit FNV-1a hash the ring points are placed with (the same
    function the store journal uses for record CRCs). *)
