(* Journal shipping: replicate a primary's store journal to a follower
   daemon, line by line, over the [ship] op (docs/CLUSTER.md).

   The shipper reads the journal {e file} — not the daemon — so it
   works identically whether the primary is alive, draining or dead;
   the promotion path relies on that to catch the follower up from a
   killed primary's (drain-flushed) journal.  The watermark is a byte
   offset: everything before it has been acked by the follower, so a
   resumed or re-created shipper re-reads only the tail.  Records
   themselves carry their CRCs, and the follower applies them
   idempotently (last-wins, same as journal replay), so re-shipping an
   overlap after a crash is harmless. *)

type t = {
  journal : string;
  session : Server.Client.session;
  mutable offset : int;  (* watermark: journal bytes acked by the follower *)
  mutable shipped : int;
  mutable failed : int;
}

let create ~journal ?retry ?(transport = Server.Wire.V1) ~follower () =
  {
    journal;
    session = Server.Client.session ?retry ~transport follower;
    offset = 0;
    shipped = 0;
    failed = 0;
  }

let watermark t = t.offset
let shipped t = t.shipped
let failed t = t.failed
let journal t = t.journal

let ship_line t ~seq line =
  match Server.Client.call t.session (Server.Protocol.ship ~seq ~record:line ()) with
  | Ok (reply, _) -> Server.Protocol.reply_ok reply
  | Error _ -> false

(* Ship every complete ('\n'-terminated) line past the watermark; a
   torn tail stays unshipped until the primary finishes it.  Stops at
   the first un-acked line — watermark semantics demand a prefix. *)
let pump t =
  match open_in_bin t.journal with
  | exception Sys_error _ -> 0
  | ic ->
    let len = in_channel_length ic in
    (* A shorter file means the journal was rewritten under us
       (compaction truncates it to a bare header): start over —
       idempotent application makes the overlap safe. *)
    if t.offset > len then t.offset <- 0;
    let base = t.offset in
    seek_in ic base;
    let tail =
      match really_input_string ic (len - base) with
      | s -> close_in ic; s
      | exception (End_of_file | Sys_error _) -> close_in ic; ""
    in
    let shipped_now = ref 0 in
    let pos = ref 0 in
    (try
       while !pos < String.length tail do
         match String.index_from_opt tail !pos '\n' with
         | None -> raise Exit (* torn tail *)
         | Some nl ->
           let line = String.sub tail !pos (nl - !pos) in
           let after = base + nl + 1 in
           if base + !pos = 0 then
             (* The journal header line: never shipped, only skipped —
                the follower has its own header. *)
             t.offset <- after
           else if ship_line t ~seq:after line then begin
             t.offset <- after;
             t.shipped <- t.shipped + 1;
             incr shipped_now
           end
           else begin
             t.failed <- t.failed + 1;
             raise Exit
           end;
           pos := nl + 1
       done
     with Exit -> ());
    !shipped_now

let catch_up = pump

let close t = Server.Client.close_session t.session
