(* Cluster chaos: boot a whole fleet in-process — N shard daemons, N
   followers, one router — kill a shard mid-load, promote its
   follower, and audit that the fleet never disagreed with ground
   truth and never lost an acked write (docs/CLUSTER.md,
   docs/RESILIENCE.md).

   Determinism contract, stricter than single-daemon {!Server.Chaos}:
   only the [cluster] fault class is armed by default.  The fleet's
   background traffic (health probes, journal shipping, the daemons'
   own accept/read paths) would consult the io/conn sites in
   timing-dependent order; with those classes disabled a consult never
   bumps a site counter ({!Fault}), so the armed sites —
   [shard.kill], consulted once per request by the single driver
   thread, and [route.forward], consulted once per forward on the
   driver's synchronous request path — see a seed-reproducible
   sequence, and two same-seed runs produce byte-identical fault
   logs.  The kill -> catch-up -> promote transition itself runs
   synchronously on the driver thread, between two requests. *)

type config = {
  seed : int;
  requests : int;
  distinct : int;
  size : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : Server.Wire.version;
}

let default_config =
  {
    seed = 42;
    requests = 500;
    distinct = 32;
    size = 4;
    shards = 3;
    classes = [ "cluster" ];
    rate = 0.1;
    transport = Server.Wire.V1;
  }

type report = {
  seed : int;
  requests : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : string;
  ok : int;
  errors : int;
  retried : int;
  attempts : int;
  disagreements : int;
  acked : int;
  lost_writes : int;
  faults : int;
  site_counts : (string * int) list;
  killed_shard : int;    (* -1 when the plan never fired shard.kill *)
  killed_at : int;       (* request index of the kill, -1 when none *)
  promoted : bool;
  promotions : int;
  fingerprint : string;
  fault_log : string list;
  converged : bool;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  wall_s : float;
}

let path_counter = Atomic.make 0

let fresh_path prefix suffix =
  Printf.sprintf "%s/%s-%d-%d%s"
    (Filename.get_temp_dir_name ())
    prefix (Unix.getpid ())
    (Atomic.fetch_and_add path_counter 1)
    suffix

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let reply_field reply name =
  match Json.member name reply with Some (Json.Str s) -> Some s | _ -> None

let shard_daemon ~sock ~journal =
  Server.Daemon.create
    {
      (Server.Daemon.default_config (Server.Daemon.Unix_sock sock)) with
      jobs = Some 1;
      store_path = Some journal;
      (* Small fsync interval, as in single-daemon chaos: acked
         writes reach the journal file promptly. *)
      fsync_every = 4;
    }

let run (cfg : config) =
  if cfg.requests < 1 then invalid_arg "Chaos_cluster.run: requests must be >= 1";
  if cfg.distinct < 1 then invalid_arg "Chaos_cluster.run: distinct must be >= 1";
  if cfg.shards < 1 then invalid_arg "Chaos_cluster.run: shards must be >= 1";
  let router_sock = fresh_path "cluster" ".sock" in
  let shard_socks = Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "shard%d" i) ".sock") in
  let shard_journals =
    Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "shard%d" i) ".journal")
  in
  let follower_socks =
    Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "follower%d" i) ".sock")
  in
  let follower_journals =
    Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "follower%d" i) ".journal")
  in
  let instances =
    Array.init cfg.distinct (fun i -> Check.Gen.ith ~seed:cfg.seed ~size:cfg.size i)
  in
  (* Ground truth before any plan is armed. *)
  let expected =
    Array.map
      (fun (inst : Check.Instance.t) ->
        Json.to_string
          (Server.Protocol.json_of_wire
             (Server.Protocol.wire_of_verdict
                (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat))))
      instances
  in
  let shard_daemons =
    Array.init cfg.shards (fun i ->
        shard_daemon ~sock:shard_socks.(i) ~journal:shard_journals.(i))
  in
  let follower_daemons =
    Array.init cfg.shards (fun i ->
        shard_daemon ~sock:follower_socks.(i) ~journal:follower_journals.(i))
  in
  let shard_threads = Array.map (fun d -> Thread.create Server.Daemon.run d) shard_daemons in
  let follower_threads =
    Array.map (fun d -> Thread.create Server.Daemon.run d) follower_daemons
  in
  let router =
    Router.create
      {
        (Router.default_config (Server.Daemon.Unix_sock router_sock)
           (Array.to_list
              (Array.init cfg.shards (fun i ->
                   {
                     Router.primary = `Unix shard_socks.(i);
                     follower = Some (`Unix follower_socks.(i));
                     journal = Some shard_journals.(i);
                   }))))
        with
        pool_size = 1;
        shard_transport = cfg.transport;
        (* Quiet monitor: the driver performs the kill and promotion
           itself, at a deterministic point in the request stream. *)
        health_interval_ms = 60_000;
      }
  in
  let router_thread = Thread.create Router.run router in
  let plan = Fault.Plan.make ~rate:cfg.rate ~seed:cfg.seed ~classes:cfg.classes () in
  Fault.Plan.arm plan;
  let session =
    Server.Client.session
      ~retry:{ Server.Client.default_retry with retry_seed = cfg.seed }
      ~transport:cfg.transport (`Unix router_sock)
  in
  let kill_target = cfg.seed mod cfg.shards in
  let killed_at = ref (-1) in
  let promoted = ref false in
  let ok = ref 0
  and errors = ref 0
  and retried = ref 0
  and attempts = ref 0
  and disagreements = ref 0 in
  let latencies = Array.make cfg.requests nan in
  let acked = Array.make cfg.distinct false in
  let t0 = Unix.gettimeofday () in
  for i = 0 to cfg.requests - 1 do
    (* One kill per run, armed only after a warm-up third of the load:
       there must be acked writes on the doomed shard for the audit to
       mean anything. *)
    if !killed_at < 0 && i >= cfg.requests / 3 && Fault.should_fail "shard.kill" then begin
      killed_at := i;
      Server.Daemon.initiate_drain shard_daemons.(kill_target);
      Thread.join shard_threads.(kill_target);
      promoted := Router.promote_shard router kill_target
    end;
    let idx = i mod cfg.distinct in
    let inst = instances.(idx) in
    let req =
      Server.Protocol.analyze ~id:(Json.Int i) ~mu:inst.Check.Instance.mu
        inst.Check.Instance.tmat
    in
    let r0 = Unix.gettimeofday () in
    match Server.Client.call session req with
    | Error _ -> incr errors
    | Ok (reply, tries) ->
      latencies.(i) <- 1000. *. (Unix.gettimeofday () -. r0);
      attempts := !attempts + tries;
      if tries > 1 then incr retried;
      if Server.Protocol.reply_ok reply then begin
        incr ok;
        (match Json.member "verdict" reply with
        | Some v when Json.to_string v = expected.(idx) -> ()
        | _ -> incr disagreements);
        match reply_field reply "store" with
        | Some ("hit" | "miss" | "family") -> acked.(idx) <- true
        | _ -> ()
      end
      else incr errors
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  Server.Client.close_session session;
  (* Shutdown is not under test; disarm so the drains run clean and
     every journal is fully flushed before the audit reopens it. *)
  Fault.Plan.disarm ();
  let killed = !killed_at >= 0 in
  Router.initiate_drain router;
  Thread.join router_thread;
  Array.iteri
    (fun i d ->
      if not (killed && i = kill_target) then begin
        Server.Daemon.initiate_drain d;
        Thread.join shard_threads.(i)
      end)
    shard_daemons;
  Array.iteri
    (fun i d ->
      Server.Daemon.initiate_drain d;
      Thread.join follower_threads.(i))
    follower_daemons;
  (* The audit re-derives placement through the same ring and checks
     every acked write in the journal that must now hold it: the
     follower's for the killed shard, the primary's otherwise. *)
  let ring = Router.ring router in
  let stores = Hashtbl.create cfg.shards in
  let store_for shard =
    match Hashtbl.find_opt stores shard with
    | Some s -> s
    | None ->
      let path =
        if killed && shard = kill_target then follower_journals.(shard)
        else shard_journals.(shard)
      in
      let s = Server.Store.open_ path in
      Hashtbl.add stores shard s;
      s
  in
  let lost_writes = ref 0 in
  Array.iteri
    (fun idx was_acked ->
      if was_acked then begin
        let inst = instances.(idx) in
        let shard = Ring.shard_of ring (Server.Store.family_hash inst.Check.Instance.tmat) in
        match
          Server.Store.find (store_for shard) ~mu:inst.Check.Instance.mu
            inst.Check.Instance.tmat
        with
        | Some e
          when Json.to_string (Server.Protocol.json_of_wire (Server.Protocol.wire_of_entry e))
               = expected.(idx) -> ()
        | Some _ | None -> incr lost_writes
      end)
    acked;
  Hashtbl.iter (fun _ s -> Server.Store.close s) stores;
  let cleanup p = try Sys.remove p with Sys_error _ -> () in
  cleanup router_sock;
  Array.iter cleanup shard_socks;
  Array.iter cleanup follower_socks;
  Array.iter
    (fun j ->
      cleanup j;
      cleanup (j ^ ".quarantine"))
    (Array.append shard_journals follower_journals);
  let events = Fault.Plan.events plan in
  let site_counts =
    List.map
      (fun (site, _) ->
        (site, List.length (List.filter (fun e -> e.Fault.Plan.site = site) events)))
      Fault.Plan.site_catalogue
  in
  let lat =
    let xs =
      Array.of_list
        (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list latencies))
    in
    Array.sort compare xs;
    xs
  in
  {
    seed = cfg.seed;
    requests = cfg.requests;
    shards = cfg.shards;
    classes = cfg.classes;
    rate = cfg.rate;
    transport = Server.Wire.version_name cfg.transport;
    ok = !ok;
    errors = !errors;
    retried = !retried;
    attempts = !attempts;
    disagreements = !disagreements;
    acked = Array.fold_left (fun n b -> if b then n + 1 else n) 0 acked;
    lost_writes = !lost_writes;
    faults = Fault.Plan.faults_injected plan;
    site_counts;
    killed_shard = (if killed then kill_target else -1);
    killed_at = !killed_at;
    promoted = !promoted;
    promotions = (if !promoted then 1 else 0);
    fingerprint = Fault.Plan.fingerprint plan;
    fault_log = Fault.Plan.log_lines plan;
    converged = !disagreements = 0 && !lost_writes = 0 && !ok > 0 && (not killed || !promoted);
    p50_ms = percentile lat 0.50;
    p95_ms = percentile lat 0.95;
    p99_ms = percentile lat 0.99;
    wall_s;
  }

let json_of_report r =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("requests", Json.Int r.requests);
      ("shards", Json.Int r.shards);
      ("classes", Json.Arr (List.map (fun c -> Json.Str c) r.classes));
      ("rate", Json.Float r.rate);
      ("transport", Json.Str r.transport);
      ("ok", Json.Int r.ok);
      ("errors", Json.Int r.errors);
      ("retried", Json.Int r.retried);
      ("attempts", Json.Int r.attempts);
      ("disagreements", Json.Int r.disagreements);
      ("acked", Json.Int r.acked);
      ("lost_writes", Json.Int r.lost_writes);
      ("faults", Json.Int r.faults);
      ( "site_counts",
        Json.Obj (List.map (fun (s, n) -> (s, Json.Int n)) r.site_counts) );
      ("killed_shard", Json.Int r.killed_shard);
      ("killed_at", Json.Int r.killed_at);
      ("promoted", Json.Bool r.promoted);
      ("promotions", Json.Int r.promotions);
      ("fingerprint", Json.Str r.fingerprint);
      ("converged", Json.Bool r.converged);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("wall_s", Json.Float r.wall_s);
    ]
