(* Cluster chaos: boot a whole fleet in-process — N shard daemons, N
   followers, one router — kill a shard mid-load, promote its
   follower, and audit that the fleet never disagreed with ground
   truth and never lost an acked write (docs/CLUSTER.md,
   docs/RESILIENCE.md).

   Determinism contract, stricter than single-daemon {!Server.Chaos}:
   only the [cluster] fault class is armed by default.  The fleet's
   background traffic (health probes, journal shipping, the daemons'
   own accept/read paths) would consult the io/conn sites in
   timing-dependent order; with those classes disabled a consult never
   bumps a site counter ({!Fault}), so the armed sites —
   [shard.kill], consulted once per request by the single driver
   thread, and [route.forward], consulted once per forward on the
   driver's synchronous request path — see a seed-reproducible
   sequence, and two same-seed runs produce byte-identical fault
   logs.  The [latency] class is also safe to arm: its sites are
   ambient — a fired consult stalls the caller but is never logged
   per event, so the log carries only the deterministic arm-time
   record of each enabled site and its delay.  The kill -> catch-up ->
   promote transition itself runs synchronously on the driver thread,
   between two requests.

   SLO mode ([slo = true]) runs three passes over the same instance
   stream: fault-free baseline, gray (latency faults armed) with
   hedging, gray without hedging.  The audit then demands
   [hedged_p99 <= max (3 * baseline_p99) 25ms] while the unhedged
   pass demonstrably degrades past the same bound — the measurable
   claim behind the hedging machinery.  The reported counters,
   fingerprint and fault log come from the gray+hedged pass (the
   other armed pass sees the same seed, hence the same log). *)

type config = {
  seed : int;
  requests : int;
  distinct : int;
  size : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : Server.Wire.version;
  hedge : bool;
  hard_kill : bool;
  fsync_every : int;
  slo : bool;
  delay_ms : int;
}

let default_config =
  {
    seed = 42;
    requests = 500;
    distinct = 32;
    size = 4;
    shards = 3;
    classes = [ "cluster" ];
    rate = 0.1;
    transport = Server.Wire.V1;
    hedge = true;
    hard_kill = false;
    fsync_every = 4;
    slo = false;
    delay_ms = 50;
  }

type slo_report = {
  baseline_p99_ms : float;
  hedged_p99_ms : float;
  unhedged_p99_ms : float;
  bound_ms : float;
  hedged_within_bound : bool;
  unhedged_degraded : bool;
}

type report = {
  seed : int;
  requests : int;
  shards : int;
  classes : string list;
  rate : float;
  transport : string;
  ok : int;
  errors : int;
  retried : int;
  attempts : int;
  disagreements : int;
  acked : int;
  lost_writes : int;
  faults : int;
  delays : int;
  site_counts : (string * int) list;
  killed_shard : int;    (* -1 when the plan never fired shard.kill *)
  killed_at : int;       (* request index of the kill, -1 when none *)
  promoted : bool;
  promotions : int;
  hedges : int;
  hedge_wins : int;
  fingerprint : string;
  fault_log : string list;
  converged : bool;
  slo : slo_report option;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  wall_s : float;
}

let path_counter = Atomic.make 0

let fresh_path prefix suffix =
  Printf.sprintf "%s/%s-%d-%d%s"
    (Filename.get_temp_dir_name ())
    prefix (Unix.getpid ())
    (Atomic.fetch_and_add path_counter 1)
    suffix

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let reply_field reply name =
  match Json.member name reply with Some (Json.Str s) -> Some s | _ -> None

let shard_daemon ~fsync_every ~sock ~journal =
  Server.Daemon.create
    {
      (Server.Daemon.default_config (Server.Daemon.Unix_sock sock)) with
      jobs = Some 1;
      store_path = Some journal;
      (* Small fsync interval, as in single-daemon chaos: acked
         writes reach the journal file promptly.  The hard-kill
         durability leg runs with [fsync_every = 1]: every ack
         synced before the reply, so even an abort loses nothing. *)
      fsync_every;
    }

(* One fleet boot + load + audit.  [arm] decides whether the seeded
   plan is armed for this pass; [hedge] whether the router hedges.
   The caller owns pass sequencing (SLO mode runs three). *)
type pass = {
  x_ok : int;
  x_errors : int;
  x_retried : int;
  x_attempts : int;
  x_disagreements : int;
  x_acked : int;
  x_lost : int;
  x_killed_shard : int;
  x_killed_at : int;
  x_promoted : bool;
  x_hedges : int;
  x_hedge_wins : int;
  x_plan : Fault.Plan.t option;
  x_p50 : float;
  x_p95 : float;
  x_p99 : float;
  x_wall : float;
}

let stat_int fields name =
  match List.assoc_opt name fields with Some (Json.Int n) -> n | _ -> 0

let run_pass (cfg : config) ~arm ~hedge ~instances ~expected =
  let router_sock = fresh_path "cluster" ".sock" in
  let shard_socks = Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "shard%d" i) ".sock") in
  let shard_journals =
    Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "shard%d" i) ".journal")
  in
  let follower_socks =
    Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "follower%d" i) ".sock")
  in
  let follower_journals =
    Array.init cfg.shards (fun i -> fresh_path (Printf.sprintf "follower%d" i) ".journal")
  in
  let shard_daemons =
    Array.init cfg.shards (fun i ->
        shard_daemon ~fsync_every:cfg.fsync_every ~sock:shard_socks.(i)
          ~journal:shard_journals.(i))
  in
  let follower_daemons =
    Array.init cfg.shards (fun i ->
        shard_daemon ~fsync_every:cfg.fsync_every ~sock:follower_socks.(i)
          ~journal:follower_journals.(i))
  in
  let shard_threads = Array.map (fun d -> Thread.create Server.Daemon.run d) shard_daemons in
  let follower_threads =
    Array.map (fun d -> Thread.create Server.Daemon.run d) follower_daemons
  in
  let router =
    Router.create
      {
        (Router.default_config (Server.Daemon.Unix_sock router_sock)
           (Array.to_list
              (Array.init cfg.shards (fun i ->
                   {
                     Router.primary = `Unix shard_socks.(i);
                     follower = Some (`Unix follower_socks.(i));
                     journal = Some shard_journals.(i);
                   }))))
        with
        pool_size = 1;
        shard_transport = cfg.transport;
        (* Quiet monitor: the driver performs the kill and promotion
           itself, at a deterministic point in the request stream. *)
        health_interval_ms = 60_000;
        (* A fixed hedge delay keeps the pass self-contained: no
           warm-up needed before the adaptive p99 is meaningful.  The
           budget is sized to the run: a gray stall parks every
           request queued behind it and each one hedges, so a pass can
           legitimately need several hedges per stall — the audit
           measures hedging, not the budget's refill race (the budget
           mechanics have their own tests). *)
        hedge = (if hedge then Router.Fixed_ms 5 else Router.No_hedge);
        hedge_budget = max 64 cfg.requests;
      }
  in
  let router_thread = Thread.create Router.run router in
  let plan =
    if arm then begin
      let p =
        Fault.Plan.make ~rate:cfg.rate ~seed:cfg.seed ~delay_ms:cfg.delay_ms
          ~classes:cfg.classes ()
      in
      Fault.Plan.arm p;
      Some p
    end
    else None
  in
  let session =
    Server.Client.session
      ~retry:{ Server.Client.default_retry with retry_seed = cfg.seed }
      ~transport:cfg.transport (`Unix router_sock)
  in
  let kill_target = cfg.seed mod cfg.shards in
  let killed_at = ref (-1) in
  let promoted = ref false in
  let ok = ref 0
  and errors = ref 0
  and retried = ref 0
  and attempts = ref 0
  and disagreements = ref 0 in
  let latencies = Array.make cfg.requests nan in
  let acked = Array.make cfg.distinct false in
  let t0 = Unix.gettimeofday () in
  for i = 0 to cfg.requests - 1 do
    (* One kill per run, armed only after a warm-up third of the load:
       there must be acked writes on the doomed shard for the audit to
       mean anything. *)
    if !killed_at < 0 && i >= cfg.requests / 3 && Fault.should_fail "shard.kill" then begin
      killed_at := i;
      (* [hard_kill] is the SIGKILL-grade path: no drain, no flush —
         queued requests and buffered reply bytes are discarded and
         acked writes survive only per the fsync_every contract. *)
      if cfg.hard_kill then Server.Daemon.abort shard_daemons.(kill_target)
      else Server.Daemon.initiate_drain shard_daemons.(kill_target);
      Thread.join shard_threads.(kill_target);
      promoted := Router.promote_shard router kill_target
    end;
    let idx = i mod cfg.distinct in
    let inst = instances.(idx) in
    let req =
      Server.Protocol.analyze ~id:(Json.Int i) ~mu:inst.Check.Instance.mu
        inst.Check.Instance.tmat
    in
    let r0 = Unix.gettimeofday () in
    match Server.Client.call session req with
    | Error _ -> incr errors
    | Ok (reply, tries) ->
      latencies.(i) <- 1000. *. (Unix.gettimeofday () -. r0);
      attempts := !attempts + tries;
      if tries > 1 then incr retried;
      if Server.Protocol.reply_ok reply then begin
        incr ok;
        (match Json.member "verdict" reply with
        | Some v when Json.to_string v = expected.(idx) -> ()
        | _ -> incr disagreements);
        match reply_field reply "store" with
        | Some ("hit" | "miss" | "family") -> acked.(idx) <- true
        | _ -> ()
      end
      else incr errors
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  Server.Client.close_session session;
  (* Shutdown is not under test; disarm so the drains run clean and
     every journal is fully flushed before the audit reopens it. *)
  if arm then Fault.Plan.disarm ();
  let killed = !killed_at >= 0 in
  let router_stats = Router.stats_fields router in
  Router.initiate_drain router;
  Thread.join router_thread;
  Array.iteri
    (fun i d ->
      if not (killed && i = kill_target) then begin
        Server.Daemon.initiate_drain d;
        Thread.join shard_threads.(i)
      end)
    shard_daemons;
  Array.iteri
    (fun i d ->
      Server.Daemon.initiate_drain d;
      Thread.join follower_threads.(i))
    follower_daemons;
  (* The audit re-derives placement through the same ring and checks
     every acked write in the journals that may now hold it: the
     follower's (only) for the killed shard; for a live shard the
     primary's or the follower's — a hedge that won on the follower
     acked the write into the follower's journal, which is exactly as
     durable under the replication contract. *)
  let ring = Router.ring router in
  let stores = Hashtbl.create cfg.shards in
  let open_store path =
    match Hashtbl.find_opt stores path with
    | Some s -> s
    | None ->
      let s = Server.Store.open_ path in
      Hashtbl.add stores path s;
      s
  in
  let present path idx =
    let inst = instances.(idx) in
    match
      Server.Store.find (open_store path) ~mu:inst.Check.Instance.mu
        inst.Check.Instance.tmat
    with
    | Some e ->
      Json.to_string (Server.Protocol.json_of_wire (Server.Protocol.wire_of_entry e))
      = expected.(idx)
    | None -> false
  in
  let lost_writes = ref 0 in
  Array.iteri
    (fun idx was_acked ->
      if was_acked then begin
        let inst = instances.(idx) in
        let shard = Ring.shard_of ring (Server.Store.family_hash inst.Check.Instance.tmat) in
        let journals =
          if killed && shard = kill_target then [ follower_journals.(shard) ]
          else [ shard_journals.(shard); follower_journals.(shard) ]
        in
        if not (List.exists (fun p -> present p idx) journals) then incr lost_writes
      end)
    acked;
  Hashtbl.iter (fun _ s -> Server.Store.close s) stores;
  let cleanup p = try Sys.remove p with Sys_error _ -> () in
  cleanup router_sock;
  Array.iter cleanup shard_socks;
  Array.iter cleanup follower_socks;
  Array.iter
    (fun j ->
      cleanup j;
      cleanup (j ^ ".quarantine"))
    (Array.append shard_journals follower_journals);
  let lat =
    let xs =
      Array.of_list
        (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list latencies))
    in
    Array.sort compare xs;
    xs
  in
  {
    x_ok = !ok;
    x_errors = !errors;
    x_retried = !retried;
    x_attempts = !attempts;
    x_disagreements = !disagreements;
    x_acked = Array.fold_left (fun n b -> if b then n + 1 else n) 0 acked;
    x_lost = !lost_writes;
    x_killed_shard = (if killed then kill_target else -1);
    x_killed_at = !killed_at;
    x_promoted = !promoted;
    x_hedges = stat_int router_stats "hedges";
    x_hedge_wins = stat_int router_stats "hedge_wins";
    x_plan = plan;
    x_p50 = percentile lat 0.50;
    x_p95 = percentile lat 0.95;
    x_p99 = percentile lat 0.99;
    x_wall = wall_s;
  }

let run (cfg : config) =
  if cfg.requests < 1 then invalid_arg "Chaos_cluster.run: requests must be >= 1";
  if cfg.distinct < 1 then invalid_arg "Chaos_cluster.run: distinct must be >= 1";
  if cfg.shards < 1 then invalid_arg "Chaos_cluster.run: shards must be >= 1";
  if cfg.fsync_every < 1 then invalid_arg "Chaos_cluster.run: fsync_every must be >= 1";
  let instances =
    Array.init cfg.distinct (fun i -> Check.Gen.ith ~seed:cfg.seed ~size:cfg.size i)
  in
  (* Ground truth before any plan is armed. *)
  let expected =
    Array.map
      (fun (inst : Check.Instance.t) ->
        Json.to_string
          (Server.Protocol.json_of_wire
             (Server.Protocol.wire_of_verdict
                (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat))))
      instances
  in
  let main, slo, extra_wall =
    if not cfg.slo then (run_pass cfg ~arm:true ~hedge:cfg.hedge ~instances ~expected, None, 0.)
    else begin
      let baseline = run_pass cfg ~arm:false ~hedge:cfg.hedge ~instances ~expected in
      let hedged = run_pass cfg ~arm:true ~hedge:true ~instances ~expected in
      let unhedged = run_pass cfg ~arm:true ~hedge:false ~instances ~expected in
      let bound_ms = Float.max (3. *. baseline.x_p99) 25. in
      ( hedged,
        Some
          {
            baseline_p99_ms = baseline.x_p99;
            hedged_p99_ms = hedged.x_p99;
            unhedged_p99_ms = unhedged.x_p99;
            bound_ms;
            hedged_within_bound = hedged.x_p99 <= bound_ms;
            unhedged_degraded = unhedged.x_p99 > bound_ms;
          },
        baseline.x_wall +. unhedged.x_wall )
    end
  in
  let faults, delays, fingerprint, fault_log, site_counts =
    match main.x_plan with
    | Some plan ->
      let events = Fault.Plan.events plan in
      ( Fault.Plan.faults_injected plan,
        Fault.Plan.delays_injected plan,
        Fault.Plan.fingerprint plan,
        Fault.Plan.log_lines plan,
        List.map
          (fun (site, _) ->
            (site, List.length (List.filter (fun e -> e.Fault.Plan.site = site) events)))
          Fault.Plan.site_catalogue )
    | None -> (0, 0, "", [], [])
  in
  let killed = main.x_killed_at >= 0 in
  let slo_ok =
    match slo with
    | None -> true
    | Some s -> s.hedged_within_bound && s.unhedged_degraded
  in
  {
    seed = cfg.seed;
    requests = cfg.requests;
    shards = cfg.shards;
    classes = cfg.classes;
    rate = cfg.rate;
    transport = Server.Wire.version_name cfg.transport;
    ok = main.x_ok;
    errors = main.x_errors;
    retried = main.x_retried;
    attempts = main.x_attempts;
    disagreements = main.x_disagreements;
    acked = main.x_acked;
    lost_writes = main.x_lost;
    faults;
    delays;
    site_counts;
    killed_shard = main.x_killed_shard;
    killed_at = main.x_killed_at;
    promoted = main.x_promoted;
    promotions = (if main.x_promoted then 1 else 0);
    hedges = main.x_hedges;
    hedge_wins = main.x_hedge_wins;
    fingerprint;
    fault_log;
    converged =
      main.x_disagreements = 0 && main.x_lost = 0 && main.x_ok > 0
      && ((not killed) || main.x_promoted)
      && slo_ok;
    slo;
    p50_ms = main.x_p50;
    p95_ms = main.x_p95;
    p99_ms = main.x_p99;
    wall_s = main.x_wall +. extra_wall;
  }

let json_of_slo s =
  Json.Obj
    [
      ("baseline_p99_ms", Json.Float s.baseline_p99_ms);
      ("hedged_p99_ms", Json.Float s.hedged_p99_ms);
      ("unhedged_p99_ms", Json.Float s.unhedged_p99_ms);
      ("bound_ms", Json.Float s.bound_ms);
      ("hedged_within_bound", Json.Bool s.hedged_within_bound);
      ("unhedged_degraded", Json.Bool s.unhedged_degraded);
    ]

let json_of_report r =
  Json.Obj
    ([
       ("seed", Json.Int r.seed);
       ("requests", Json.Int r.requests);
       ("shards", Json.Int r.shards);
       ("classes", Json.Arr (List.map (fun c -> Json.Str c) r.classes));
       ("rate", Json.Float r.rate);
       ("transport", Json.Str r.transport);
       ("ok", Json.Int r.ok);
       ("errors", Json.Int r.errors);
       ("retried", Json.Int r.retried);
       ("attempts", Json.Int r.attempts);
       ("disagreements", Json.Int r.disagreements);
       ("acked", Json.Int r.acked);
       ("lost_writes", Json.Int r.lost_writes);
       ("faults", Json.Int r.faults);
       ("delays", Json.Int r.delays);
       ( "site_counts",
         Json.Obj (List.map (fun (s, n) -> (s, Json.Int n)) r.site_counts) );
       ("killed_shard", Json.Int r.killed_shard);
       ("killed_at", Json.Int r.killed_at);
       ("promoted", Json.Bool r.promoted);
       ("promotions", Json.Int r.promotions);
       ("hedges", Json.Int r.hedges);
       ("hedge_wins", Json.Int r.hedge_wins);
       ("fingerprint", Json.Str r.fingerprint);
       ("converged", Json.Bool r.converged);
     ]
    @ (match r.slo with Some s -> [ ("slo", json_of_slo s) ] | None -> [])
    @ [
        ("p50_ms", Json.Float r.p50_ms);
        ("p95_ms", Json.Float r.p95_ms);
        ("p99_ms", Json.Float r.p99_ms);
        ("wall_s", Json.Float r.wall_s);
      ])
