(** Consecutive-failure health tracking for one shard.

    The router's monitor probes each shard with a [ping] every health
    interval and feeds the result to {!note}; when [threshold]
    failures arrive in a row, {!note} reports [`Failed] {e once} — the
    edge on which the router promotes the shard's follower
    (docs/CLUSTER.md).  Not thread-safe; the monitor thread owns it. *)

type verdict = [ `Ok | `Failed ]

type t

val create : ?threshold:int -> unit -> t
(** Default threshold 3.
    @raise Invalid_argument when [threshold < 1]. *)

val note : t -> ok:bool -> verdict
(** Record one probe.  [`Failed] exactly when this probe is the
    [threshold]-th consecutive failure; a success resets the streak. *)

val consecutive : t -> int
val probes : t -> int
val failures : t -> int
val threshold : t -> int
