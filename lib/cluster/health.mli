(** Latency-aware health tracking for one shard: crash detection plus
    a gray-failure circuit breaker.

    The router's monitor probes each shard with a [ping] every health
    interval and feeds the result — and its latency — to {!note}.
    Two independent signals come back:

    - {b crash edge} (unchanged from the boolean tracker): when
      [threshold] probe {e failures} arrive in a row, {!note} reports
      [`Failed] {e once} — the edge on which the router promotes the
      shard's follower (docs/CLUSTER.md);
    - {b breaker} (new): successful probes feed a latency EWMA
      ([alpha]-weighted, default 0.3).  When the EWMA of a [Closed]
      shard crosses [latency_limit_ms], {!note} reports [`Opened] and
      the breaker opens — the router routes the shard's traffic to its
      follower while the shard is {e up but slow}.  After [cooldown]
      further probes the breaker goes [Half_open]; the next probe is
      the trial: at or under the limit closes the breaker ([`Recovered],
      EWMA restarted from that sample), over it re-opens.  A failed
      probe while half-open also re-opens.  [latency_limit_ms <= 0]
      disables the breaker entirely.

    Mutation is single-writer (the monitor thread); {!state} /
    {!ewma_ms} are single-word reads, safe for the router's forwarding
    threads to poll. *)

type breaker = Closed | Open | Half_open

type verdict = [ `Ok | `Failed | `Opened | `Recovered ]

type t

val create :
  ?threshold:int ->
  ?alpha:float ->
  ?latency_limit_ms:float ->
  ?cooldown:int ->
  unit ->
  t
(** Defaults: threshold 3, alpha 0.3, latency limit 500 ms, cooldown 3
    probes.
    @raise Invalid_argument when [threshold < 1], [alpha] outside
    [(0, 1]], or [cooldown < 1]. *)

val note : t -> ?latency_ms:float -> ok:bool -> unit -> verdict
(** Record one probe.  [`Failed] exactly on the [threshold]-th
    consecutive failure; [`Opened] / [`Recovered] exactly on breaker
    transitions out of / back into service (see above).  A success
    without a latency sample only resets the failure streak. *)

val state : t -> breaker
val state_name : t -> string
(** ["closed"] / ["open"] / ["half_open"] — the stats wire form. *)

val ewma_ms : t -> float
(** Current latency EWMA in milliseconds ([0.] before any sample). *)

val opens : t -> int
(** How many times the breaker has opened (including re-opens from
    half-open). *)

val consecutive : t -> int
val probes : t -> int
val failures : t -> int
val threshold : t -> int
val latency_limit_ms : t -> float
