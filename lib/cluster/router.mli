(** The cluster router: one process that presents N daemon shards as a
    single mapping-query service (docs/CLUSTER.md).

    Downstream it speaks the daemon's versioned wire protocol — v1
    JSON lines by default, v2 binary after a [hello] — so every
    existing client works against a router unchanged.  Upstream it
    keeps a pool of pipelined connections per shard: each forwarded
    request is restamped with a router-unique integer id, matched back
    by a per-connection reader thread, and restamped with the client's
    original id on the way out.

    Placement: [analyze] routes by the {e matrix-only}
    {!Server.Store.family_hash} through the consistent-hash {!Ring},
    so a content key and its mu-parametric family records always live
    on the same shard and the daemon's family fastpath stays
    shard-local.  [search]/[simulate]/[replay] round-robin over live
    shards; [ping]/[stats]/[drain]/[hello] answer inline; [ship] is
    rejected with [bad_request] — replication is shard-direct.

    Failover: a monitor thread pings every shard each
    [health_interval_ms] and pumps its journal {!Shipper} to the
    follower; when {!Health} crosses [health_threshold] consecutive
    failures the shard is promoted — follower caught up from the
    primary's journal, then installed as the target.  Requests that
    race a dead shard earn retriable [overloaded] replies, which
    {!Server.Client.session} re-issues; acked writes never roll back
    (the chaos harness audits exactly this).

    Gray failures (docs/RESILIENCE.md): the monitor times its pings
    and feeds latency into {!Health}'s EWMA circuit breaker.  While a
    shard's breaker is [Open] — up but slow — its [analyze] traffic
    diverts to the follower, and the stateless round-robin prefers
    shards whose breaker is closed.  Independently, a hedge thread
    re-issues any [analyze] still unanswered after the hedge delay
    ([Fixed_ms], or [Adaptive]: twice the shard's observed p99) on the
    shard's follower with the {e remaining} deadline restamped; the
    first reply wins and the loser is dropped — byte-safe because
    verdicts are deterministic.  Hedging is guarded by a token bucket
    of [hedge_budget] tokens (refilling one budget per second) so a
    melting shard cannot double the fleet's load, and skipped for
    promoted shards, expired deadlines and shards without a follower.

    Fault sites (class [cluster], docs/RESILIENCE.md): [route.forward]
    is consulted once per forwarded request on the client-serving
    thread, so a single-driver chaos run replays deterministically;
    hedge re-issues never consult it. *)

type shard_spec = {
  primary : Server.Client.addr;
  follower : Server.Client.addr option;
      (** Promotion target; a shard without one stays down when its
          primary dies. *)
  journal : string option;
      (** The primary's store journal path — the shipping source.
          Required for replication (with [follower]); [None] disables
          shipping for this shard. *)
}

type hedge_policy =
  | No_hedge          (** Never re-issue; one upstream copy per request. *)
  | Fixed_ms of int   (** Hedge after a fixed delay. *)
  | Adaptive
      (** Hedge after twice the shard's observed p99 first-reply
          latency (64-sample ring; 10 ms before any sample). *)

type config = {
  listen : Server.Daemon.listen;
  shards : shard_spec list;
  pool_size : int;            (** Upstream connections per shard (each pool). *)
  shard_transport : Server.Wire.version;  (** Dialect towards the shards. *)
  max_transport : Server.Wire.version;    (** Newest dialect clients may negotiate. *)
  health_interval_ms : int;
  health_threshold : int;
  vnodes : int;               (** Ring points per shard ({!Ring.make}). *)
  hedge : hedge_policy;
  hedge_budget : int;
      (** Hedge token-bucket capacity (and per-second refill);
          [<= 0] disables hedging like [No_hedge]. *)
  latency_limit_ms : float;
      (** {!Health} breaker threshold on the probe-latency EWMA;
          [<= 0] disables the breaker. *)
}

val default_config : Server.Daemon.listen -> shard_spec list -> config
(** [pool_size = 2], both transports {!Server.Wire.V2}, 1 s health
    interval, threshold 3, 64 vnodes, [Adaptive] hedging with budget
    64, breaker limit 500 ms. *)

type t

val create : config -> t
(** Bind the listening socket (same stale-socket policy as the
    daemon); upstream connections are opened lazily on first use.
    @raise Invalid_argument on an empty shard list,
    @raise Failure / [Unix.Unix_error] when the socket is unusable. *)

val run : t -> unit
(** The blocking accept loop; returns once a drain has completed
    (clients hung up, upstream pools dismantled, final journal tail
    shipped). *)

val initiate_drain : t -> unit
val wake : t -> unit
(** Async-signal-safe drain trigger (one self-pipe write). *)

val port : t -> int option
(** The bound TCP port ([None] for Unix sockets). *)

val ring : t -> Ring.t

val promote_shard : t -> int -> bool
(** Promote shard [idx]'s follower in place, synchronously: mark the
    shard down, fail its pooled connections (parked requests complete
    with retriable [overloaded]), catch the follower up from the
    primary's journal, then redirect.  Returns whether the shard is
    serving afterwards ([false] without a follower).  Idempotent.  The
    monitor thread uses the same path; the chaos harness calls it
    directly so the kill → promote transition lands at a deterministic
    point in its request stream.
    @raise Invalid_argument on an out-of-range index. *)

val stats_fields : t -> (string * Json.t) list
(** The payload of a [stats] reply: per-shard target/liveness/
    promotion/forwarded/shed/hedges/hedge_wins/breaker/ewma_ms/
    watermark plus accepted, promotions, total hedges and hedge wins,
    and the transport policy. *)
