(** Structured observability for the mapping engine: hierarchical trace
    spans, a metrics registry, rate-limited warnings, and exporters.

    The layer is deliberately theory-free — it never inspects matrices
    or verdicts, only names and clocks — so every library from
    [Hnf] up to [Diff] can depend on it without cycles.  Design
    constraints, in order:

    - {e near-zero cost when disabled}: {!Trace.with_span} is one
      atomic load plus a closure call while tracing is off, so the hot
      screening paths of [Analysis] and [Procedure51] stay
      instrumented permanently;
    - {e thread-safety}: span stacks are per {e thread} (not per
      domain — the daemon runs its event loop and batcher workers as
      sibling threads of one domain, and a shared stack would
      interleave their span trees), the collector and every metric are
      safe to touch from any domain, and [Engine.Pool] re-parents
      worker spans under the span that was open at the [map] call;
    - {e machine-readable output}: {!Export} renders the same data as
      Chrome [trace_event] JSON (for [chrome://tracing] / Perfetto)
      and as the [spans]/[metrics] fields of the schema-v2 CLI
      documents (see [docs/SCHEMA.md]). *)

(** Hierarchical wall-clock spans.

    Tracing is globally off until {!Trace.enable}; while off,
    {!Trace.with_span} runs its thunk with no allocation beyond the
    closure.  While on, each [with_span] records one completed {!Trace.span}
    with its parent (the innermost span open {e on the same thread},
    or the parent installed by {!Trace.with_parent} for pool workers
    and the daemon's loop-inline fastpaths).
    The collector keeps at most {!Trace.capacity} spans per session;
    excess spans are dropped (counted by {!Trace.dropped}) rather than
    growing without bound. *)
module Trace : sig
  type span = {
    id : int;                       (** Unique within the session. *)
    parent : int option;            (** [None] for a root span. *)
    name : string;
    domain : int;                   (** Numeric id of the recording domain. *)
    start_s : float;                (** Seconds since {!enable}. *)
    dur_s : float;                  (** Wall-clock duration, [>= 0]. *)
    args : (string * string) list;  (** Static key/value annotations. *)
  }

  val enable : unit -> unit
  (** Start a tracing session: clears previously collected spans and
      restarts the epoch clock. *)

  val disable : unit -> unit
  (** Stop collecting.  Already-recorded spans remain readable. *)

  val enabled : unit -> bool

  val clear : unit -> unit
  (** Drop all collected spans and the dropped-span count (the enabled
      flag is left as is). *)

  val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_span name f] runs [f] and, when tracing is enabled, records
      a span covering its execution — including when [f] raises (the
      exception is re-raised after the span is closed).  Nesting is per
      thread: spans opened inside [f] on the same thread become its
      children. *)

  val current : unit -> int option
  (** The id of the innermost open span on the calling thread, if any
      (always [None] while tracing is disabled).  Pool implementations
      capture this before fanning work out. *)

  val with_parent : int option -> (unit -> 'a) -> 'a
  (** [with_parent p f] runs [f] with the span stack of the calling
      thread temporarily replaced by [p], so spans opened by [f] become
      children of [p] even though [p] was opened on another thread —
      or roots, with [with_parent None].  Restores the previous stack
      afterwards (also on exceptions).  A no-op while tracing is
      disabled. *)

  val spans : unit -> span list
  (** All completed spans of the session, in completion order.  Spans
      still open (e.g. read from inside a [with_span]) are absent. *)

  val aggregate : span list -> (string * int * float) list
  (** [(name, count, total_seconds)] per span name, sorted by name —
      the per-phase wall-time totals used by the CLI and the bench
      harness. *)

  val capacity : int
  (** Maximum spans retained per session (1_000_000). *)

  val dropped : unit -> int
  (** Spans discarded because the collector was full. *)
end

(** A process-wide registry of named counters, gauges and histograms.

    Instruments are created on first use ([counter name] twice returns
    the same instrument) and live for the whole process; {!Metrics.reset}
    zeroes every value but keeps the registrations.  Counters are
    atomic and safe to bump from any domain; gauges and histograms are
    mutex-protected.  This registry replaces the former
    [Engine.Telemetry] counters — the metric names the engine emits
    are listed in [docs/SCHEMA.md]. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Get or create the counter registered under [name]. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int

  val set_counter : counter -> int -> unit
  (** Overwrite a counter (used by cache [clear]-style resets; normal
      producers should only ever {!incr}/{!add}). *)

  val gauge : string -> gauge
  (** Get or create the gauge registered under [name]. *)

  val set_gauge : gauge -> float -> unit
  val set_gauge_max : gauge -> float -> unit
  (** Keep the maximum of the current and the given value — the
      "widest pool observed" style of gauge. *)

  val gauge_value : gauge -> float

  val histogram : string -> histogram
  (** Get or create the histogram registered under [name]. *)

  val observe : histogram -> float -> unit
  (** Record one sample (the engine observes milliseconds). *)

  type hist = {
    count : int;
    sum : float;
    min_v : float;  (** [infinity] when no sample was recorded. *)
    max_v : float;  (** [neg_infinity] when no sample was recorded. *)
  }

  type snapshot = {
    counters : (string * int) list;        (** Sorted by name. *)
    gauges : (string * float) list;        (** Sorted by name. *)
    histograms : (string * hist) list;     (** Sorted by name. *)
  }

  val snapshot : unit -> snapshot

  val counter_value : snapshot -> string -> int
  (** The snapshotted value of a counter, [0] when absent. *)

  val reset : unit -> unit
  (** Zero every registered instrument (registrations survive). *)

  val pp : Format.formatter -> snapshot -> unit
  (** Human-readable one-instrument-per-line rendering; zero-valued
      instruments are omitted. *)
end

(** Rate-limited stderr warnings, for pathologies that should be
    visible once per process rather than once per query (e.g. the
    rank-deficient mapping matrices that force the exact-oracle slow
    path; see [docs/SCHEMA.md]). *)
module Warn : sig
  val once : string -> string -> bool
  (** [once key message] prints ["warning: " ^ message] to stderr the
      first time [key] is seen and returns whether it printed. *)

  val reset : unit -> unit
  (** Forget all seen keys (tests only). *)
end

(** Renderers from the collected data to {!Json.t} documents. *)
module Export : sig
  val chrome_trace : Trace.span list -> Json.t
  (** A Chrome [trace_event] document — [{"traceEvents": [...]}] with
      one complete ("ph":"X") event per span, timestamps in
      microseconds, one thread lane per domain.  Loadable in
      [chrome://tracing] and Perfetto. *)

  val span_tree : Trace.span list -> Json.t
  (** The hierarchical span forest for the schema-v2 reports: an array
      of root spans, each [{"name", "domain", "start_ms", "dur_ms",
      "args", "children"}] with children nested recursively.  Spans
      whose parent was dropped by the collector cap surface as
      additional roots. *)

  val metrics : Metrics.snapshot -> Json.t
  (** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
      instrument names as keys.  Zero-valued instruments are included —
      consumers can rely on a registered name being present. *)

  val phases : (string * int * float) list -> Json.t
  (** {!Trace.aggregate} output as [[{"name", "count", "total_ms"}]]. *)

  val write_file : string -> Json.t -> unit
  (** Serialize compactly to a file, newline-terminated.
      @raise Sys_error when the path is not writable. *)
end
