module Trace = struct
  type span = {
    id : int;
    parent : int option;
    name : string;
    domain : int;
    start_s : float;
    dur_s : float;
    args : (string * string) list;
  }

  let capacity = 1_000_000

  let enabled_flag = Atomic.make false
  let epoch = Atomic.make 0. (* boxed float; written only by [enable] *)
  let next_id = Atomic.make 0
  let dropped_count = Atomic.make 0
  let lock = Mutex.create ()
  let completed : span list ref = ref []
  let completed_len = ref 0

  (* Per-thread stack of open span ids, innermost first.  Keyed by
     thread id, not domain: the daemon's event-loop thread, batcher
     workers and the main thread all live in the main domain, and a
     shared per-domain stack would interleave their span trees. *)
  let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 64
  let stacks_lock = Mutex.create ()

  let my_stack () =
    let tid = Thread.id (Thread.self ()) in
    Mutex.lock stacks_lock;
    let s =
      match Hashtbl.find_opt stacks tid with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
    in
    Mutex.unlock stacks_lock;
    s

  let enabled () = Atomic.get enabled_flag

  let clear () =
    Mutex.lock lock;
    completed := [];
    completed_len := 0;
    Mutex.unlock lock;
    Atomic.set dropped_count 0

  let enable () =
    clear ();
    Atomic.set epoch (Unix.gettimeofday ());
    Atomic.set enabled_flag true

  let disable () = Atomic.set enabled_flag false
  let dropped () = Atomic.get dropped_count

  let record sp =
    Mutex.lock lock;
    if !completed_len < capacity then begin
      completed := sp :: !completed;
      incr completed_len;
      Mutex.unlock lock
    end
    else begin
      Mutex.unlock lock;
      Atomic.incr dropped_count
    end

  let with_span ?(args = []) name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let stack = my_stack () in
      let id = Atomic.fetch_and_add next_id 1 in
      let parent = match !stack with [] -> None | p :: _ -> Some p in
      let t0 = Unix.gettimeofday () in
      stack := id :: !stack;
      let finish () =
        (match !stack with
        | s :: rest when s = id -> stack := rest
        | _ -> () (* unbalanced enable/disable mid-span; drop silently *));
        let t1 = Unix.gettimeofday () in
        record
          {
            id;
            parent;
            name;
            domain = (Domain.self () :> int);
            start_s = t0 -. Atomic.get epoch;
            dur_s = t1 -. t0;
            args;
          }
      in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e
    end

  let current () =
    if not (Atomic.get enabled_flag) then None
    else match !(my_stack ()) with [] -> None | p :: _ -> Some p

  let with_parent parent f =
    (* Skip the stack bookkeeping entirely when tracing is off: this
       sits on every request's hot path. *)
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let stack = my_stack () in
      let saved = !stack in
      stack := (match parent with None -> [] | Some p -> [ p ]);
      match f () with
      | v ->
        stack := saved;
        v
      | exception e ->
        stack := saved;
        raise e
    end

  let spans () =
    Mutex.lock lock;
    let s = !completed in
    Mutex.unlock lock;
    List.rev s

  let aggregate spans =
    let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun sp ->
        match Hashtbl.find_opt tbl sp.name with
        | Some (count, total) ->
          incr count;
          total := !total +. sp.dur_s
        | None -> Hashtbl.add tbl sp.name (ref 1, ref sp.dur_s))
      spans;
    Hashtbl.fold (fun name (count, total) acc -> (name, !count, !total) :: acc) tbl []
    |> List.sort compare
end

module Metrics = struct
  type counter = int Atomic.t
  type gauge = float ref
  type histogram = {
    mutable count : int;
    mutable sum : float;
    mutable min_s : float;
    mutable max_s : float;
  }

  type hist = { count : int; sum : float; min_v : float; max_v : float }

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * hist) list;
  }

  let lock = Mutex.create ()
  let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
  let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 8
  let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 8

  let get_or_create tbl name make =
    Mutex.lock lock;
    let v =
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
        let v = make () in
        Hashtbl.add tbl name v;
        v
    in
    Mutex.unlock lock;
    v

  let counter name = get_or_create counters_tbl name (fun () -> Atomic.make 0)
  let incr c = Atomic.incr c
  let add c n = ignore (Atomic.fetch_and_add c n)
  let value c = Atomic.get c
  let set_counter c n = Atomic.set c n

  let gauge name = get_or_create gauges_tbl name (fun () -> ref 0.)

  let set_gauge g v =
    Mutex.lock lock;
    g := v;
    Mutex.unlock lock

  let set_gauge_max g v =
    Mutex.lock lock;
    if v > !g then g := v;
    Mutex.unlock lock

  let gauge_value g =
    Mutex.lock lock;
    let v = !g in
    Mutex.unlock lock;
    v

  let histogram name =
    get_or_create histograms_tbl name (fun () ->
        { count = 0; sum = 0.; min_s = infinity; max_s = neg_infinity })

  let observe (h : histogram) v =
    Mutex.lock lock;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_s then h.min_s <- v;
    if v > h.max_s then h.max_s <- v;
    Mutex.unlock lock

  let snapshot () =
    Mutex.lock lock;
    let cs = Hashtbl.fold (fun n c acc -> (n, Atomic.get c) :: acc) counters_tbl [] in
    let gs = Hashtbl.fold (fun n g acc -> (n, !g) :: acc) gauges_tbl [] in
    let hs =
      Hashtbl.fold
        (fun n (h : histogram) acc ->
          (n, { count = h.count; sum = h.sum; min_v = h.min_s; max_v = h.max_s }) :: acc)
        histograms_tbl []
    in
    Mutex.unlock lock;
    {
      counters = List.sort compare cs;
      gauges = List.sort compare gs;
      histograms = List.sort compare hs;
    }

  let counter_value snap name =
    match List.assoc_opt name snap.counters with Some v -> v | None -> 0

  let reset () =
    Mutex.lock lock;
    Hashtbl.iter (fun _ c -> Atomic.set c 0) counters_tbl;
    Hashtbl.iter (fun _ g -> g := 0.) gauges_tbl;
    Hashtbl.iter
      (fun _ (h : histogram) ->
        h.count <- 0;
        h.sum <- 0.;
        h.min_s <- infinity;
        h.max_s <- neg_infinity)
      histograms_tbl;
    Mutex.unlock lock

  let pp ppf snap =
    let first = ref true in
    let line fmt =
      Format.kasprintf
        (fun s ->
          if !first then first := false else Format.pp_print_cut ppf ();
          Format.pp_print_string ppf s)
        fmt
    in
    List.iter (fun (n, v) -> if v <> 0 then line "%s = %d" n v) snap.counters;
    List.iter (fun (n, v) -> if v <> 0. then line "%s = %g" n v) snap.gauges;
    List.iter
      (fun (n, h) ->
        if h.count > 0 then
          line "%s: n=%d total=%.3f mean=%.3f min=%.3f max=%.3f" n h.count h.sum
            (h.sum /. float_of_int h.count)
            h.min_v h.max_v)
      snap.histograms
end

module Warn = struct
  let lock = Mutex.create ()
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8

  let once key message =
    Mutex.lock lock;
    let fresh = not (Hashtbl.mem seen key) in
    if fresh then Hashtbl.add seen key ();
    Mutex.unlock lock;
    if fresh then Printf.eprintf "warning: %s\n%!" message;
    fresh

  let reset () =
    Mutex.lock lock;
    Hashtbl.reset seen;
    Mutex.unlock lock
end

module Export = struct
  let args_json args = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)

  let chrome_trace spans =
    let event (sp : Trace.span) =
      Json.Obj
        [
          ("name", Json.Str sp.Trace.name);
          ("cat", Json.Str "shangfortes");
          ("ph", Json.Str "X");
          ("ts", Json.Float (1e6 *. sp.Trace.start_s));
          ("dur", Json.Float (1e6 *. sp.Trace.dur_s));
          ("pid", Json.Int 1);
          ("tid", Json.Int sp.Trace.domain);
          ("args", args_json sp.Trace.args);
        ]
    in
    Json.Obj
      [
        ("traceEvents", Json.Arr (List.map event spans));
        ("displayTimeUnit", Json.Str "ms");
      ]

  let span_tree spans =
    let ids = Hashtbl.create 64 in
    List.iter (fun (sp : Trace.span) -> Hashtbl.replace ids sp.Trace.id sp) spans;
    let children : (int, Trace.span list ref) Hashtbl.t = Hashtbl.create 64 in
    let roots = ref [] in
    (* [spans] is in completion order; within one parent, children
       complete in start order for well-nested spans, so accumulating
       with [::] and reversing preserves chronology. *)
    List.iter
      (fun (sp : Trace.span) ->
        match sp.Trace.parent with
        | Some p when Hashtbl.mem ids p -> (
          match Hashtbl.find_opt children p with
          | Some l -> l := sp :: !l
          | None -> Hashtbl.add children p (ref [ sp ]))
        | Some _ | None -> roots := sp :: !roots)
      spans;
    let rec render (sp : Trace.span) =
      let kids =
        match Hashtbl.find_opt children sp.Trace.id with
        | Some l -> List.rev_map render !l
        | None -> []
      in
      Json.Obj
        [
          ("name", Json.Str sp.Trace.name);
          ("domain", Json.Int sp.Trace.domain);
          ("start_ms", Json.Float (1e3 *. sp.Trace.start_s));
          ("dur_ms", Json.Float (1e3 *. sp.Trace.dur_s));
          ("args", args_json sp.Trace.args);
          ("children", Json.Arr kids);
        ]
    in
    Json.Arr (List.rev_map render !roots)

  let metrics (snap : Metrics.snapshot) =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) snap.Metrics.counters) );
        ( "gauges",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) snap.Metrics.gauges) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, (h : Metrics.hist)) ->
                 ( n,
                   Json.Obj
                     [
                       ("count", Json.Int h.Metrics.count);
                       ("sum", Json.Float h.Metrics.sum);
                       ( "min",
                         if h.Metrics.count = 0 then Json.Null
                         else Json.Float h.Metrics.min_v );
                       ( "max",
                         if h.Metrics.count = 0 then Json.Null
                         else Json.Float h.Metrics.max_v );
                     ] ))
               snap.Metrics.histograms) );
      ]

  let phases agg =
    Json.Arr
      (List.map
         (fun (name, count, total_s) ->
           Json.Obj
             [
               ("name", Json.Str name);
               ("count", Json.Int count);
               ("total_ms", Json.Float (1e3 *. total_s));
             ])
         agg)

  let write_file path json =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string json);
        output_char oc '\n')
end
