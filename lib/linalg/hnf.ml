type strategy = Min_abs | Gcdext

type result = { h : Intmat.t; u : Intmat.t; v : Intmat.t; rank : int }

(* Unimodular column operations, applied simultaneously to the working
   matrix [h] and the multiplier [u]; the inverse row operation is
   applied to [v] so that [u * v = I] is an invariant throughout. *)

let swap_cols h u v j1 j2 =
  if j1 <> j2 then begin
    let swap_col m =
      for i = 0 to Array.length m - 1 do
        let t = m.(i).(j1) in
        m.(i).(j1) <- m.(i).(j2);
        m.(i).(j2) <- t
      done
    in
    swap_col h;
    swap_col u;
    let t = v.(j1) in
    v.(j1) <- v.(j2);
    v.(j2) <- t
  end

let negate_col h u v j =
  let neg_col m =
    for i = 0 to Array.length m - 1 do
      m.(i).(j) <- Zint.neg m.(i).(j)
    done
  in
  neg_col h;
  neg_col u;
  v.(j) <- Array.map Zint.neg v.(j)

(* C_j <- C_j - q * C_p  (inverse on V: row p <- row p + q * row j). *)
let submul_col h u v ~p ~j q =
  if not (Zint.is_zero q) then begin
    let op m =
      for i = 0 to Array.length m - 1 do
        m.(i).(j) <- Zint.sub m.(i).(j) (Zint.mul q m.(i).(p))
      done
    in
    op h;
    op u;
    for c = 0 to Array.length v.(p) - 1 do
      v.(p).(c) <- Zint.add v.(p).(c) (Zint.mul q v.(j).(c))
    done
  end

(* Right-multiply columns (p, j) of [h] and [u] by the 2×2 matrix
   [[m00 m01] [m10 m11]] (determinant ±1): new C_p = m00*C_p + m10*C_j,
   new C_j = m01*C_p + m11*C_j.  The inverse acts on rows (p, j) of
   [v] from the left. *)
let transform2 h u v ~p ~j m00 m01 m10 m11 =
  let d = Zint.sub (Zint.mul m00 m11) (Zint.mul m01 m10) in
  assert (Zint.is_one d || Zint.equal d Zint.minus_one);
  let op m =
    for i = 0 to Array.length m - 1 do
      let cp = m.(i).(p) and cj = m.(i).(j) in
      m.(i).(p) <- Zint.add (Zint.mul m00 cp) (Zint.mul m10 cj);
      m.(i).(j) <- Zint.add (Zint.mul m01 cp) (Zint.mul m11 cj)
    done
  in
  op h;
  op u;
  (* inverse of M with det d = ±1 is d * [[m11 -m01] [-m10 m00]] *)
  let i00 = Zint.mul d m11 and i01 = Zint.mul d (Zint.neg m01) in
  let i10 = Zint.mul d (Zint.neg m10) and i11 = Zint.mul d m00 in
  let rp = v.(p) and rj = v.(j) in
  let n = Array.length rp in
  let new_rp = Array.init n (fun c -> Zint.add (Zint.mul i00 rp.(c)) (Zint.mul i01 rj.(c))) in
  let new_rj = Array.init n (fun c -> Zint.add (Zint.mul i10 rp.(c)) (Zint.mul i11 rj.(c))) in
  v.(p) <- new_rp;
  v.(j) <- new_rj

(* Clear row [i] to the right of column [p] with Euclidean reductions,
   always keeping the smallest-magnitude entry as the pivot.  Returns
   true iff a pivot was produced at (i, p). *)
let clear_row_min_abs h u v ~i ~p n =
  let progress = ref true in
  let produced = ref false in
  while !progress do
    let pick = ref (-1) in
    for j = p to n - 1 do
      if not (Zint.is_zero h.(i).(j))
         && (!pick < 0
             || Zint.compare (Zint.abs h.(i).(j)) (Zint.abs h.(i).(!pick)) < 0)
      then pick := j
    done;
    if !pick < 0 then progress := false
    else begin
      produced := true;
      swap_cols h u v p !pick;
      let remaining = ref false in
      for j = p + 1 to n - 1 do
        if not (Zint.is_zero h.(i).(j)) then begin
          let q = Zint.div h.(i).(j) h.(i).(p) in
          submul_col h u v ~p ~j q;
          if not (Zint.is_zero h.(i).(j)) then remaining := true
        end
      done;
      progress := !remaining
    end
  done;
  !produced

(* Clear row [i] right of column [p] in one pass of Blankinship gcd
   transforms: each nonzero entry is folded into the pivot via the
   extended gcd.  Returns true iff a pivot was produced at (i, p). *)
let clear_row_gcdext h u v ~i ~p n =
  (* Move the first nonzero into position p. *)
  let pick = ref (-1) in
  for j = p to n - 1 do
    if !pick < 0 && not (Zint.is_zero h.(i).(j)) then pick := j
  done;
  if !pick < 0 then false
  else begin
    swap_cols h u v p !pick;
    for j = p + 1 to n - 1 do
      let b = h.(i).(j) in
      if not (Zint.is_zero b) then begin
        let a = h.(i).(p) in
        let g, x, y = Zint.gcdext a b in
        transform2 h u v ~p ~j x (Zint.neg (Zint.divexact b g)) y (Zint.divexact a g)
      end
    done;
    true
  end

let compute ?(strategy = Min_abs) ?(reduce = true) t =
  Obs.Trace.with_span "hnf.compute" @@ fun () ->
  let k = Intmat.rows t and n = Intmat.cols t in
  let h = Intmat.copy t in
  let u = Intmat.identity n in
  let v = Intmat.identity n in
  let p = ref 0 in
  for i = 0 to k - 1 do
    if !p < n then begin
      let produced =
        match strategy with
        | Min_abs -> clear_row_min_abs h u v ~i ~p:!p n
        | Gcdext -> clear_row_gcdext h u v ~i ~p:!p n
      in
      if produced then begin
        if reduce then begin
          if Zint.sign h.(i).(!p) < 0 then negate_col h u v !p;
          (* Canonical form: entries left of the pivot in row i reduced
             into [0, pivot). *)
          for j = 0 to !p - 1 do
            let q = Zint.fdiv h.(i).(j) h.(i).(!p) in
            submul_col h u v ~p:!p ~j q
          done
        end;
        incr p
      end
    end
  done;
  { h; u; v; rank = !p }

let kernel_basis ?strategy t =
  let { u; rank; _ } = compute ?strategy t in
  let n = Intmat.cols t in
  List.init (n - rank) (fun i -> Intmat.col u (rank + i))

let verify t { h; u; v; rank } =
  let k = Intmat.rows t and n = Intmat.cols t in
  let shapes_ok = Intmat.rows h = k && Intmat.cols h = n && Intmat.rows u = n in
  shapes_ok
  && Intmat.equal (Intmat.mul t u) h
  && Intmat.equal (Intmat.mul u v) (Intmat.identity n)
  && Intmat.is_unimodular u
  && rank = Intmat.rank t
  &&
  (* Zero block: columns >= rank of H are entirely zero. *)
  (let ok = ref true in
   for i = 0 to k - 1 do
     for j = rank to n - 1 do
       if not (Zint.is_zero h.(i).(j)) then ok := false
     done
   done;
   !ok)
