(* Textbook LLL with exact rational Gram-Schmidt.  Basis sizes in this
   repository are tiny (<= 6 vectors of dimension <= 8), so the
   orthogonalization is recomputed from scratch after every change —
   simplicity over the incremental update formulas. *)

let q_dot a b =
  let acc = ref Qnum.zero in
  Array.iteri (fun i x -> acc := Qnum.add !acc (Qnum.mul x b.(i))) a;
  !acc

let to_q v = Array.map Qnum.of_zint v

let gram_schmidt basis =
  let bs = Array.of_list (List.map to_q basis) in
  let m = Array.length bs in
  let star = Array.make m [||] in
  let mu = Array.make_matrix m m Qnum.zero in
  let norms = Array.make m Qnum.zero in
  for i = 0 to m - 1 do
    let v = Array.copy bs.(i) in
    for j = 0 to i - 1 do
      if Qnum.is_zero norms.(j) then invalid_arg "Lll: dependent basis";
      let c = Qnum.div (q_dot bs.(i) star.(j)) norms.(j) in
      mu.(i).(j) <- c;
      for t = 0 to Array.length v - 1 do
        v.(t) <- Qnum.sub v.(t) (Qnum.mul c star.(j).(t))
      done
    done;
    star.(i) <- v;
    norms.(i) <- q_dot v v;
    if Qnum.is_zero norms.(i) then invalid_arg "Lll: dependent basis"
  done;
  (mu, norms)

(* Nearest integer to a rational (ties toward +inf, any tie rule works
   for size reduction). *)
let round_q x =
  Zint.fdiv
    (Zint.add (Zint.mul Zint.two (Qnum.num x)) (Qnum.den x))
    (Zint.mul Zint.two (Qnum.den x))

let default_delta = Qnum.of_ints 3 4

let reduce ?(delta = default_delta) basis =
  if basis = [] then invalid_arg "Lll.reduce: empty basis";
  Obs.Trace.with_span "lll.reduce" @@ fun () ->
  let b = Array.of_list (List.map Array.copy basis) in
  let m = Array.length b in
  let size_reduce mu k =
    for j = k - 1 downto 0 do
      let r = round_q mu.(k).(j) in
      if not (Zint.is_zero r) then
        b.(k) <- Intvec.sub b.(k) (Intvec.scale r b.(j))
    done
  in
  let k = ref 1 in
  while !k < m do
    let mu, _ = gram_schmidt (Array.to_list b) in
    size_reduce mu !k;
    let mu, norms = gram_schmidt (Array.to_list b) in
    (* Lovász condition: ||b*_k||^2 >= (delta - mu_{k,k-1}^2) ||b*_{k-1}||^2 *)
    let lhs = norms.(!k) in
    let c = mu.(!k).(!k - 1) in
    let rhs = Qnum.mul (Qnum.sub delta (Qnum.mul c c)) norms.(!k - 1) in
    if Qnum.compare lhs rhs >= 0 then incr k
    else begin
      let t = b.(!k) in
      b.(!k) <- b.(!k - 1);
      b.(!k - 1) <- t;
      k := Stdlib.max (!k - 1) 1
    end
  done;
  (* Final full size reduction pass. *)
  for i = 1 to m - 1 do
    let mu, _ = gram_schmidt (Array.to_list b) in
    size_reduce mu i
  done;
  Array.to_list b

let is_reduced ?(delta = default_delta) basis =
  match basis with
  | [] -> invalid_arg "Lll.is_reduced: empty basis"
  | _ ->
    let mu, norms = gram_schmidt basis in
    let m = List.length basis in
    let half = Qnum.of_ints 1 2 in
    let ok = ref true in
    for i = 1 to m - 1 do
      for j = 0 to i - 1 do
        if Qnum.compare (Qnum.abs mu.(i).(j)) half > 0 then ok := false
      done;
      let c = mu.(i).(i - 1) in
      let rhs = Qnum.mul (Qnum.sub delta (Qnum.mul c c)) norms.(i - 1) in
      if Qnum.compare norms.(i) rhs < 0 then ok := false
    done;
    !ok
