(** Comparison of two [BENCH_*.json] documents for [bench diff].

    Both documents are flattened to [(path, value)] timing leaves:
    object fields join with ["."], array elements key by their ["name"]
    field as [{name}] (falling back to the index), and only leaves
    whose final path segment looks like a duration ([ms],
    [ns_per_run], [*_ms], [*_ns]) are kept — counters and metadata
    never flag a regression.  See [docs/SCHEMA.md] for the document
    format. *)

type change = {
  path : string;    (** Flattened dotted path of the timing leaf. *)
  baseline : float;
  current : float;
  delta_pct : float;  (** [100 * (current - baseline) / baseline]. *)
}

type report = {
  regressions : change list;   (** Slower than baseline beyond threshold. *)
  improvements : change list;  (** Faster than baseline beyond threshold. *)
  missing : string list;       (** Timing paths present only in baseline. *)
  added : string list;         (** Timing paths present only in current. *)
}

val compare_runs :
  ?section:string ->
  threshold_pct:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  report
(** Flags a change when [|delta_pct| > threshold_pct].  Leaves with a
    non-positive baseline value are ignored (a percentage is
    meaningless there).  [?section] restricts the comparison to leaves
    under one top-level dotted prefix (e.g. ["serve"]) — the CI bench
    gate compares the serve section strictly while the full-report
    diff stays advisory. *)

val pp : Format.formatter -> report -> unit
(** Sectioned human-readable rendering; prints a one-line "no changes"
    note when the report is entirely empty. *)
