type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let schema_version = 2

let versioned ~command fields =
  Obj (("schema_version", Int schema_version) :: ("command", Str command) :: fields)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* Shortest decimal that round-trips; never inf/nan by construction
     of the reports, but guard anyway with a JSON-legal fallback. *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, x) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf key;
        Buffer.add_char buf ':';
        write buf x)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let print v = print_endline (to_string v)
let option f = function None -> Null | Some x -> f x
let ints xs = Arr (List.map (fun i -> Int i) xs)

(* ------------------------------ parsing ---------------------------- *)

exception Bad of string

let default_max_bytes = 16 * 1024 * 1024
let default_max_depth = 256

let parse ?(max_bytes = default_max_bytes) ?(max_depth = default_max_depth) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  if n > max_bytes then
    Error (Printf.sprintf "input too large: %d bytes (cap %d)" n max_bytes)
  else
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  (* Encode a Unicode scalar value as UTF-8 bytes (enough for the \u
     escapes our own emitter produces; surrogate pairs are not
     recombined). *)
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code ->
              pos := !pos + 4;
              add_utf8 buf code
            | None -> fail "bad \\u escape")
          | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    (* [go] consumes through the closing quote. *)
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if text = "" then fail "expected a number"
    else if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  (* [depth] counts enclosing arrays/objects; the cap turns adversarial
     nesting into a structured error instead of a stack overflow. *)
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      if depth >= max_depth then fail (Printf.sprintf "nesting deeper than %d" max_depth);
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      if depth >= max_depth then fail (Printf.sprintf "nesting deeper than %d" max_depth);
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (key, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let parse_file ?max_bytes ?max_depth path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse ?max_bytes ?max_depth contents
  | exception Sys_error msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
