type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let schema_version = 1

let versioned ~command fields =
  Obj (("schema_version", Int schema_version) :: ("command", Str command) :: fields)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* Shortest decimal that round-trips; never inf/nan by construction
     of the reports, but guard anyway with a JSON-legal fallback. *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, x) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf key;
        Buffer.add_char buf ':';
        write buf x)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let print v = print_endline (to_string v)
let option f = function None -> Null | Some x -> f x
let ints xs = Arr (List.map (fun i -> Int i) xs)
