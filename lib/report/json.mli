(** Minimal JSON support for the machine-consumable CLI output.

    Construction, compact serialization with correct string escaping,
    and a small strict parser (used by [bench diff] and the tests).
    Documents are versioned — every top-level object produced by
    {!versioned} carries ["schema_version": ]{!schema_version} so
    consumers can detect incompatible changes.  The full contract is
    documented in [docs/SCHEMA.md]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val schema_version : int
(** Current CLI output schema: 2.  v2 replaced the [telemetry] field of
    the [search] report with a [metrics] object and added the optional
    [spans] field behind [--trace]; see [docs/SCHEMA.md] for the
    v1 → v2 migration notes. *)

val versioned : command:string -> (string * t) list -> t
(** [versioned ~command fields] is [Obj] with ["schema_version"] and
    ["command"] prepended — the shape of every CLI document. *)

val to_string : t -> string
(** Compact (single-line) serialization.  Strings are escaped per RFC
    8259; floats use a round-trippable shortest form and are always
    finite by construction. *)

val print : t -> unit
(** [to_string] to stdout, newline-terminated. *)

val option : ('a -> t) -> 'a option -> t
(** [None] becomes [Null]. *)

val ints : int list -> t
(** An array of integers. *)

val default_max_bytes : int
(** Input-size cap applied by {!parse} unless overridden: 16 MiB. *)

val default_max_depth : int
(** Nesting-depth cap applied by {!parse} unless overridden: 256. *)

val parse : ?max_bytes:int -> ?max_depth:int -> string -> (t, string) result
(** Strict parser for the subset of JSON this module emits (which is
    plain RFC 8259 minus surrogate-pair recombination in [\u] escapes).
    Numbers without [.]/[e] become [Int], others [Float].  Rejects
    trailing content after the document; errors carry a byte offset.

    The parser is safe on untrusted input (it feeds the server's
    socket protocol): inputs longer than [max_bytes] and documents
    nested deeper than [max_depth] are rejected with a structured
    [Error] — adversarial nesting can never overflow the stack. *)

val parse_file : ?max_bytes:int -> ?max_depth:int -> string -> (t, string) result
(** [parse] applied to a file's contents; I/O errors are reported as
    [Error] rather than raised. *)

val member : string -> t -> t option
(** [member key json] is the field named [key] when [json] is an
    [Obj] containing one, [None] otherwise. *)
