(** Minimal JSON emitter for the machine-consumable CLI output.

    Only what the reports need: construction and compact serialization
    with correct string escaping.  Documents are versioned — every
    top-level object produced by {!versioned} carries
    ["schema_version": ]{!schema_version} so consumers can detect
    incompatible changes.  Schema v1 is documented in the README. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val schema_version : int
(** Current CLI output schema: 1. *)

val versioned : command:string -> (string * t) list -> t
(** [versioned ~command fields] is [Obj] with ["schema_version"] and
    ["command"] prepended — the shape of every CLI document. *)

val to_string : t -> string
(** Compact (single-line) serialization.  Strings are escaped per RFC
    8259; floats use a round-trippable shortest form and are always
    finite by construction. *)

val print : t -> unit
(** [to_string] to stdout, newline-terminated. *)

val option : ('a -> t) -> 'a option -> t
(** [None] becomes [Null]. *)

val ints : int list -> t
(** An array of integers. *)
