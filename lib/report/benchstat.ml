type change = {
  path : string;
  baseline : float;
  current : float;
  delta_pct : float;
}

type report = {
  regressions : change list;
  improvements : change list;
  missing : string list;
  added : string list;
}

(* Keep only leaves whose path names a timing: the schemas use "ms",
   "ns_per_run", "_ms" and "_ns" suffixes for every duration field. *)
let timing_key path =
  let last =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let ends_with suf = String.length last >= String.length suf
    && String.sub last (String.length last - String.length suf) (String.length suf) = suf
  in
  last = "ms" || last = "ns_per_run" || ends_with "_ms" || ends_with "_ns"

let flatten json =
  let out = ref [] in
  let join prefix key = if prefix = "" then key else prefix ^ "." ^ key in
  let rec go prefix = function
    | Json.Int i ->
      if timing_key prefix then out := (prefix, float_of_int i) :: !out
    | Json.Float f -> if timing_key prefix then out := (prefix, f) :: !out
    | Json.Obj fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | Json.Arr items ->
      List.iteri
        (fun i item ->
          let key =
            match Json.member "name" item with
            | Some (Json.Str n) -> "{" ^ n ^ "}"
            | _ -> string_of_int i
          in
          go (join prefix key) item)
        items
    | Json.Null | Json.Bool _ | Json.Str _ -> ()
  in
  go "" json;
  List.rev !out

let in_section section (path, _) =
  match section with
  | None -> true
  | Some s ->
    path = s
    || (String.length path > String.length s
        && String.sub path 0 (String.length s + 1) = s ^ ".")

let compare_runs ?section ~threshold_pct ~baseline ~current () =
  let base = List.filter (in_section section) (flatten baseline) in
  let cur = List.filter (in_section section) (flatten current) in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace cur_tbl k v) cur;
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) base;
  let regressions = ref [] in
  let improvements = ref [] in
  let missing = ref [] in
  List.iter
    (fun (path, b) ->
      match Hashtbl.find_opt cur_tbl path with
      | None -> missing := path :: !missing
      | Some c ->
        if b > 0. then begin
          let delta_pct = 100. *. (c -. b) /. b in
          let change = { path; baseline = b; current = c; delta_pct } in
          if delta_pct > threshold_pct then regressions := change :: !regressions
          else if delta_pct < -.threshold_pct then
            improvements := change :: !improvements
        end)
    base;
  let added =
    List.filter_map
      (fun (path, _) -> if Hashtbl.mem base_tbl path then None else Some path)
      cur
  in
  {
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    missing = List.rev !missing;
    added;
  }

let pp_change ppf c =
  Format.fprintf ppf "%s: %.3f -> %.3f (%+.1f%%)" c.path c.baseline c.current
    c.delta_pct

let pp ppf r =
  let section title items pp_item =
    if items <> [] then begin
      Format.fprintf ppf "%s:@," title;
      List.iter (fun it -> Format.fprintf ppf "  %a@," pp_item it) items
    end
  in
  Format.pp_open_vbox ppf 0;
  section "regressions" r.regressions pp_change;
  section "improvements" r.improvements pp_change;
  section "missing in current" r.missing Format.pp_print_string;
  section "new in current" r.added Format.pp_print_string;
  if r.regressions = [] && r.improvements = [] && r.missing = [] && r.added = []
  then Format.fprintf ppf "no timing changes beyond threshold@,";
  Format.pp_close_box ppf ()
