(** Deterministic fault injection for the server stack.

    A {!Plan.t} is a seeded, scenario-scripted description of which
    faults fire where: every injection point in the codebase is keyed
    by a {e stable site name} (the closed catalogue in
    {!Plan.site_catalogue}), and the decision "does the [k]-th consult
    of site [s] fault?" is a pure function of [(seed, s, k)] — no
    clocks, no [Random] state — so a plan replays identically across
    runs and across machines.  Armed process-wide with {!Plan.arm},
    consulted by the instrumented code through {!should_fail} /
    {!partial_write} / {!clock_now}; when no plan is armed every
    consult is a single atomic load returning "no fault".

    Sites are grouped into five {e fault classes}, selected per plan:

    - [io] — storage faults: torn (partial) journal appends
      ([store.write]) and failed fsyncs ([store.fsync]);
    - [conn] — transport faults: connections destroyed at accept
      ([daemon.accept]), reads treated as peer resets ([conn.read]),
      replies dropped with the connection ([conn.write]), and
      connections dropped after a served request ([conn.drop]);
    - [worker] — batcher worker-thread death ([batcher.worker]);
    - [clock] — budget clock skew ([budget.clock]): a fraction of
      {!clock_now} reads jump forward by the plan's skew, so
      wall-clock deadlines mispredict;
    - [cluster] — serving-tier faults, consulted only by the sharded
      tier (lib/cluster): whole-shard death mid-load ([shard.kill],
      consulted by the cluster chaos driver) and forwarding failures
      at the router ([route.forward], a shed-and-retry on an otherwise
      healthy shard).  Both sites are consulted on single-threaded
      driver/connection paths, so cluster-class fault logs stay
      byte-identical across same-seed runs even though the tier's
      timer-driven health and shipping traffic is not itself
      deterministic (docs/RESILIENCE.md);
    - [latency] — gray failures: seeded {e delays}, not errors.  A
      fired consult stalls the caller by the plan's [delay_ms] instead
      of failing it: the event-loop read path ([conn.slow]), the
      store's fsync interval ([store.fsync_stall]) and the batcher's
      per-batch pop ([worker.stall]).  Consults go through
      {!delay_ms} / {!stall}, which follow the clock site's ambient
      contract — pure decision, never logged per event, never charged
      against [max_faults] — so same-seed fault logs stay
      byte-identical even when hedged re-issues or stalled loops make
      consult interleavings race across daemons.  The only logged
      trace is one arm-time event per enabled latency site recording
      the stall magnitude.

    Every fired fault is recorded in the plan's log; {!Plan.events}
    returns it in a canonical order (site, then per-site sequence
    number) and {!Plan.fingerprint} hashes it, which is what the chaos
    harness compares across runs to prove determinism.  Clock jumps
    are deliberately {e not} logged per consult — budget polling
    frequency is scheduling-dependent — only the one arm-time
    [budget.clock] event is.

    The exception {!Injected} deliberately does not extend any
    existing error type: recovery code matches it explicitly, and an
    escaped injection fails loudly. *)

exception Injected of string
(** Raised (by the instrumented call sites, never by this module's
    consult functions) when a fault fires; the payload is the site
    name. *)

module Plan : sig
  type t

  type event = {
    site : string;   (** Site name from {!site_catalogue}. *)
    seq : int;       (** 1-based per-site consult number that fired. *)
    action : string; (** What was injected, e.g. [fail] or [partial:12/57]. *)
  }

  val site_catalogue : (string * string) list
  (** The closed [(site, class)] catalogue listed above.  Consulting a
      name outside it never faults; adding a site means extending this
      list (and docs/RESILIENCE.md). *)

  val classes : string list
  (** [["io"; "conn"; "worker"; "clock"; "cluster"; "latency"]]. *)

  val make :
    ?rate:float ->
    ?clock_skew_s:float ->
    ?delay_ms:int ->
    ?max_faults:int ->
    seed:int ->
    classes:string list ->
    unit ->
    t
  (** A plan firing each enabled site's consults independently with
      probability [rate] (default [0.1]), decided by a hash of
      [(seed, site, consult#)].  [clock_skew_s] (default one hour) is
      the forward jump applied to faulted clock reads; [delay_ms]
      (default 25) is the stall applied by fired latency consults.
      [max_faults] caps the total injections (the clock and latency
      sites are exempt — they are ambient, not budgeted).
      @raise Invalid_argument on an unknown class, a rate outside
      [0, 1], or a negative [delay_ms]. *)

  val arm : t -> unit
  (** Install the plan process-wide (replacing any armed plan) and log
      the [budget.clock] arm event when the clock class is enabled.
      Arming the same plan twice continues its counters — make a fresh
      plan per scenario. *)

  val disarm : unit -> unit
  val armed : unit -> bool

  val events : t -> event list
  (** Everything that fired so far, sorted by [(site, seq)] — the
      canonical replay log. *)

  val log_lines : t -> string list
  (** {!events} rendered one per line ([site#seq action]). *)

  val fingerprint : t -> string
  (** Hex hash of {!log_lines}; equal fingerprints mean identical
      fault logs. *)

  val faults_injected : t -> int

  val delays_injected : t -> int
  (** How many latency consults fired (stalls applied).  Ambient
      bookkeeping only — delays are never logged per event and never
      count toward [max_faults] or {!faults_injected}. *)
end

val should_fail : string -> bool
(** Consult a site: [true] when the armed plan fires a fault here (the
    event is logged; the caller performs the failure, typically by
    raising {!Injected} or dropping the operation).  Always [false]
    with no armed plan. *)

val partial_write : string -> int -> int option
(** [partial_write site len]: like {!should_fail}, but for torn-write
    sites — [Some n] with [0 <= n < len] asks the caller to write only
    the first [n] of [len] bytes and then fail.  The prefix length is
    derived from the same [(seed, site, consult#)] hash. *)

val clock_now : unit -> float
(** [Unix.gettimeofday], except that with an armed plan whose [clock]
    class is enabled a [rate]-fraction of reads (same pure decision
    function) jump forward by the plan's [clock_skew_s].
    [Engine.Budget] reads all wall-clock time through this. *)

val delay_ms : string -> int option
(** Consult a latency site: [Some ms] when the armed plan fires a
    stall of [ms] milliseconds here (the caller sleeps), [None]
    otherwise.  Ambient like {!clock_now}: the decision is the same
    pure function of [(seed, site, consult#)], but firings are neither
    logged per event nor charged against the fault budget. *)

val stall : string -> unit
(** [stall site] consults {!delay_ms} and sleeps the fired stall on
    the calling thread (no-op when nothing fires).  This is what the
    instrumented sites call: [conn.slow] on the event loop after a
    received chunk, [store.fsync_stall] when the fsync interval is
    due, [worker.stall] once per popped batch. *)
