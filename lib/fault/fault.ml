exception Injected of string

(* Same FNV-1a the store's record CRC uses: cheap, stable across
   platforms, and plenty of mixing for a fire/don't-fire decision. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

module Plan = struct
  type event = { site : string; seq : int; action : string }

  let site_catalogue =
    [
      ("store.write", "io");
      ("store.fsync", "io");
      ("daemon.accept", "conn");
      ("conn.read", "conn");
      ("conn.write", "conn");
      ("conn.drop", "conn");
      ("batcher.worker", "worker");
      ("budget.clock", "clock");
      ("shard.kill", "cluster");
      ("route.forward", "cluster");
      ("conn.slow", "latency");
      ("store.fsync_stall", "latency");
      ("worker.stall", "latency");
    ]

  let classes = [ "io"; "conn"; "worker"; "clock"; "cluster"; "latency" ]

  type site_state = { name : string; enabled : bool; count : int Atomic.t }

  type t = {
    seed : int;
    rate : float;
    clock_skew_s : float;
    delay_ms : int;
    max_faults : int option;
    sites : site_state array;
    injected : int Atomic.t;
    delays : int Atomic.t;
    log : event list ref;
    log_lock : Mutex.t;
  }

  let make ?(rate = 0.1) ?(clock_skew_s = 3600.) ?(delay_ms = 25) ?max_faults
      ~seed ~classes:cls () =
    if not (rate >= 0. && rate <= 1.) then
      invalid_arg "Fault.Plan.make: rate must be in [0, 1]";
    if delay_ms < 0 then invalid_arg "Fault.Plan.make: delay_ms must be >= 0";
    List.iter
      (fun c ->
        if not (List.mem c classes) then
          invalid_arg ("Fault.Plan.make: unknown fault class " ^ c))
      cls;
    {
      seed;
      rate;
      clock_skew_s;
      delay_ms;
      max_faults;
      sites =
        Array.of_list
          (List.map
             (fun (name, klass) ->
               { name; enabled = List.mem klass cls; count = Atomic.make 0 })
             site_catalogue);
      injected = Atomic.make 0;
      delays = Atomic.make 0;
      log = ref [];
      log_lock = Mutex.create ();
    }

  let record t site seq action =
    Mutex.lock t.log_lock;
    t.log := { site; seq; action } :: !(t.log);
    Mutex.unlock t.log_lock

  (* The whole point: firing is a pure function of (seed, site, k), so
     the k-th consult of a site gives the same answer in every run, no
     matter how threads interleave. *)
  let roll t site k salt = fnv1a (Printf.sprintf "%d:%s:%d:%s" t.seed site k salt)

  let decide t site k =
    float_of_int (roll t site k "fire" mod 100_000) < t.rate *. 100_000.

  let find_site t name =
    let n = Array.length t.sites in
    let rec go i =
      if i >= n then None
      else if t.sites.(i).name = name then Some t.sites.(i)
      else go (i + 1)
    in
    go 0

  let events t =
    Mutex.lock t.log_lock;
    let l = !(t.log) in
    Mutex.unlock t.log_lock;
    List.sort
      (fun a b ->
        match compare a.site b.site with 0 -> compare a.seq b.seq | c -> c)
      l

  let log_lines t =
    List.map (fun e -> Printf.sprintf "%s#%d %s" e.site e.seq e.action) (events t)

  let fingerprint t = Printf.sprintf "%08x" (fnv1a (String.concat "\n" (log_lines t)))
  let faults_injected t = Atomic.get t.injected
  let delays_injected t = Atomic.get t.delays

  let current : t option Atomic.t = Atomic.make None

  let arm p =
    Atomic.set current (Some p);
    (match find_site p "budget.clock" with
    | Some s when s.enabled ->
      record p "budget.clock" 0 (Printf.sprintf "skew=%gs" p.clock_skew_s)
    | _ -> ());
    (* Latency sites are ambient like the clock: the only logged event
       is this arm-time record of the stall magnitude, which is a pure
       function of the plan's configuration. *)
    List.iter
      (fun (name, klass) ->
        if klass = "latency" then
          match find_site p name with
          | Some s when s.enabled ->
            record p name 0 (Printf.sprintf "delay=%dms" p.delay_ms)
          | _ -> ())
      site_catalogue

  let disarm () = Atomic.set current None
  let armed () = Atomic.get current <> None
end

(* One consult: bump the site's counter, apply the pure decision, and
   charge the plan's fault budget when it fires. *)
let consult name =
  match Atomic.get Plan.current with
  | None -> None
  | Some p -> (
    match Plan.find_site p name with
    | None -> None
    | Some s ->
      if not s.Plan.enabled then None
      else
        let k = Atomic.fetch_and_add s.Plan.count 1 + 1 in
        let left =
          match p.Plan.max_faults with
          | None -> true
          | Some m -> Atomic.get p.Plan.injected < m
        in
        if left && Plan.decide p name k then begin
          Atomic.incr p.Plan.injected;
          Some (p, k)
        end
        else None)

let should_fail name =
  match consult name with
  | None -> false
  | Some (p, k) ->
    Plan.record p name k "fail";
    true

let partial_write name len =
  match consult name with
  | None -> None
  | Some (p, k) ->
    let n = if len <= 1 then 0 else Plan.roll p name k "len" mod len in
    Plan.record p name k (Printf.sprintf "partial:%d/%d" n len);
    Some n

(* Clock faults are ambient: each read decides independently (still a
   pure function of the consult number) but is neither logged nor
   charged against [max_faults] — budget polling frequency is
   scheduling-dependent, and the log must stay canonical. *)
let clock_now () =
  match Atomic.get Plan.current with
  | None -> Unix.gettimeofday ()
  | Some p -> (
    match Plan.find_site p "budget.clock" with
    | Some s when s.Plan.enabled ->
      let k = Atomic.fetch_and_add s.Plan.count 1 + 1 in
      if Plan.decide p "budget.clock" k then Unix.gettimeofday () +. p.Plan.clock_skew_s
      else Unix.gettimeofday ()
    | _ -> Unix.gettimeofday ())

(* Latency faults are ambient for the same reason the clock is: the
   firing decision stays a pure function of (seed, site, consult#),
   but firings are neither logged per event nor charged against
   [max_faults] — hedged re-issues and stalled-loop interleavings make
   per-site consult attribution scheduling-dependent across daemons,
   and the log must stay canonical. *)
let delay_ms name =
  match Atomic.get Plan.current with
  | None -> None
  | Some p -> (
    match Plan.find_site p name with
    | Some s when s.Plan.enabled ->
      let k = Atomic.fetch_and_add s.Plan.count 1 + 1 in
      if Plan.decide p name k then begin
        Atomic.incr p.Plan.delays;
        Some p.Plan.delay_ms
      end
      else None
    | _ -> None)

let stall name =
  match delay_ms name with
  | None -> ()
  | Some ms -> if ms > 0 then Thread.delay (float_of_int ms /. 1000.)
