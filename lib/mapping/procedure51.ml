type conflict_check = Exact | Theorem

type result = {
  pi : Intvec.t;
  total_time : int;
  candidates_tried : int;
  routing : Tmap.routing option;
}

(* Enumerate all pi with Sigma |pi_i| * mu_i = cost.  Components are
   chosen left to right; each nonzero magnitude branches on sign. *)
let candidates_at_cost ~mu cost =
  let n = Array.length mu in
  let acc = ref [] in
  let pi = Array.make n 0 in
  let rec go i remaining =
    if i = n then begin
      if remaining = 0 then acc := Intvec.of_int_array pi :: !acc
    end
    else begin
      let w = mu.(i) in
      let max_mag = remaining / w in
      for mag = 0 to max_mag do
        if mag = 0 then begin
          pi.(i) <- 0;
          go (i + 1) remaining
        end
        else begin
          pi.(i) <- mag;
          go (i + 1) (remaining - (mag * w));
          pi.(i) <- -mag;
          go (i + 1) (remaining - (mag * w));
          pi.(i) <- 0
        end
      done
    end
  in
  go 0 cost;
  List.rev !acc

let default_max_objective mu =
  Array.fold_left (fun acc m -> acc + (m * (m + 1))) 0 mu

let minimal_schedule ?max_objective (alg : Algorithm.t) =
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  let max_objective =
    match max_objective with Some m -> m | None -> default_max_objective mu
  in
  let rec by_cost cost =
    if cost > max_objective then None
    else
      match
        List.find_opt (fun pi -> Schedule.respects pi d) (candidates_at_cost ~mu cost)
      with
      | Some pi -> Some pi
      | None -> by_cost (cost + 1)
  in
  by_cost 1

let optimize ?(check = Theorem) ?valid ?p ?(require_routing = false) ?max_objective
    (alg : Algorithm.t) ~s =
  Obs.Trace.with_span "p51.optimize" @@ fun () ->
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  let k = Intmat.rows s + 1 in
  let max_objective =
    match max_objective with Some m -> m | None -> default_max_objective mu
  in
  let valid =
    match valid with
    | Some f -> f
    | None ->
      fun t ->
        Obs.Trace.with_span "p51.screen" @@ fun () ->
        Intmat.rank t = k
        &&
        (match check with
        | Exact -> Conflict.is_conflict_free ~mu t
        | Theorem -> fst (Theorems.decide ~mu t))
  in
  let tried = ref 0 in
  let candidates_metric = Obs.Metrics.counter "p51.candidates" in
  let attempt pi =
    incr tried;
    Obs.Metrics.incr candidates_metric;
    if not (Schedule.respects pi d) then None
    else begin
      let tm = Tmap.make ~s ~pi in
      let t = Tmap.matrix tm in
      if not (valid t) then None
      else if not require_routing then Some (pi, None)
      else
        match Tmap.find_routing ?p tm ~d with
        | Some routing -> Some (pi, Some routing)
        | None -> None
    end
  in
  let rec by_cost cost =
    if cost > max_objective then None
    else
      let winners = List.filter_map attempt (candidates_at_cost ~mu cost) in
      match winners with
      | (pi, routing) :: _ ->
        Some { pi; total_time = cost + 1; candidates_tried = !tried; routing }
      | [] -> by_cost (cost + 1)
  in
  by_cost 1
