(** The paper's closed-form conflict-freedom conditions (Theorems 4.3
    through 4.8), stated on the Hermite multiplier [U] of the mapping
    matrix.

    Every predicate takes the {!Hnf.result} of [T] (so callers pay for
    the normal form once) together with the index-set bounds [mu].
    Their agreement with the exact box oracle of {!Conflict} is
    property-tested; see EXPERIMENTS.md for the observed status of each
    condition. *)

type input = {
  hnf : Hnf.result;
  mu : int array;
}

val make_input : mu:int array -> Intmat.t -> input

val necessary_cond2 : input -> bool
(** Theorem 4.3: every column of [V = U⁻¹] has a nonzero entry among
    its first [k] rows.  Necessary for conflict-freedom. *)

val necessary_cond3 : input -> bool
(** Theorem 4.4: the kernel columns [u_{k+1} .. u_n] are themselves
    feasible conflict vectors.  Necessary. *)

val sufficient_cond4 : input -> bool
(** Theorem 4.5: there are rows [i_1 .. i_{n-k}] of [U] whose
    restriction to the kernel columns is nonsingular while the gcd of
    each such row is at least [mu_i + 1].  Sufficient. *)

val sufficient_cond5 : input -> bool
(** Theorem 4.6, [k = n-2] only: a gcd row plus a second row covering
    the one-dimensional degenerate direction.  Sufficient.
    @raise Invalid_argument when [n - k <> 2]. *)

val nec_suff_n_minus_2 : input -> bool
(** Theorem 4.7, [k = n-2]: sign-matched column sums exceed the bounds
    and both kernel columns are feasible.  Claimed necessary and
    sufficient by the paper; our property tests against the box oracle
    show the {e sufficiency} direction holds but the {e necessity}
    direction fails (the proof's step "condition (1) does not hold ⇒
    |gamma_i| <= mu_i for all i" ignores rows whose two kernel entries
    have opposite signs yet still sum past the bound).  Treat as
    sufficient only; see EXPERIMENTS.md E11.
    @raise Invalid_argument when [n - k <> 2]. *)

val nec_suff_n_minus_3 : input -> bool
(** Theorem 4.8, [k = n-3]: the four sign-pattern conditions plus
    feasibility of the three kernel columns, exactly as printed.
    Property tests show this is {e neither} necessary {e nor}
    sufficient: conflict vectors whose [beta] has a zero component
    (e.g. [beta = (1, -1, 0)], a pairwise combination of two kernel
    columns) are covered by none of the four all-nonzero sign patterns
    nor by condition 5.  Kept verbatim for the reproduction; use
    {!corrected_sufficient_n_minus_3} for a sound check.
    @raise Invalid_argument when [n - k <> 3]. *)

val corrected_sufficient_n_minus_3 : input -> bool
(** Theorem 4.8 repaired: the four triple sign-pattern conditions,
    {e plus} the three pairwise Theorem-4.7-style conditions (for each
    pair of kernel columns and each relative sign), plus feasibility of
    the single columns.  Sufficient by the same magnitude argument as
    Theorem 4.7, now covering every partition of [beta]'s support.
    @raise Invalid_argument when [n - k <> 3]. *)

(** {1 Unified decision procedure} *)

type method_used =
  | Full_rank_square   (** k = n: rank alone decides. *)
  | Adjugate_form      (** k = n-1: Theorem 3.1 (exact). *)
  | Column_infeasible  (** Theorem 4.4 rejected: a kernel column sits
                           inside the box, an immediate conflict. *)
  | Hermite_n_minus_2  (** Theorem 4.7 accepted (sufficient). *)
  | Hermite_n_minus_3  (** Corrected Theorem 4.8 accepted (sufficient). *)
  | Gcd_sufficient     (** Theorem 4.5 accepted (sufficient). *)
  | Box_oracle         (** Exact enumeration fallback. *)

val decide : mu:int array -> Intmat.t -> bool * method_used
(** Conflict-freedom decided soundly with the cheapest applicable paper
    condition: exact closed forms where they exist (k >= n-1), fast
    necessary/sufficient screens otherwise, and the exact box oracle
    when the screens do not settle the answer.  Always agrees with
    {!Conflict.is_conflict_free}.

    @deprecated New code should call [Analysis.check] (library
    [engine]), which returns the same decision together with rank,
    witness and timing in one record, memoizes it, and honors query
    budgets.  [decide] remains as the uncached sequential reference
    that [Analysis.check] is property-tested against. *)
