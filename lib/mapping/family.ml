(* Symbolic, mu-parametric conflict-freedom: analyze the mapping matrix
   once, serve every index-set size.

   Every mu-dependence in the closed forms of Theorems 3.1 and 4.4-4.8
   reduces to atoms of one shape, [mu_i < c] with a constant c computed
   from the Hermite multiplier: escape conditions [|v| > mu_i] are
   [mu_i < |v|] and gcd conditions [g >= mu_i + 1] are [mu_i < g].
   Sign guards (e.g. [sign (a*b) >= 0]) do not mention mu at all and
   fold away at build time.  What remains is a piecewise predicate over
   mu — conjunctions and disjunctions of interval bounds — evaluated
   per instance in O(atoms) integer comparisons, no HNF, no oracle. *)

type cond =
  | True
  | False
  | Lt of int * Zint.t  (* mu_i < c, strict; c > 0 by construction *)
  | All of cond list
  | Any of cond list

let rec eval_cond c ~mu =
  match c with
  | True -> true
  | False -> false
  | Lt (i, c) -> Zint.compare (Zint.of_int mu.(i)) c < 0
  | All cs -> List.for_all (fun c -> eval_cond c ~mu) cs
  | Any cs -> List.exists (fun c -> eval_cond c ~mu) cs

(* Smart constructors keep the stored conditions in simplified form:
   no empty or singleton junctions, no nested same-kind junctions, no
   trivially decided atoms.  [mu_i < c] with c <= 0 is False because
   index-set bounds are non-negative (mu_i >= 1 everywhere else in the
   system, enforced by Instance.make and the wire decoder). *)
let atom i c = if Zint.sign c <= 0 then False else Lt (i, c)
let is_true = function True -> true | _ -> false
let is_false = function False -> true | _ -> false

let all_ cs =
  let cs = List.concat_map (function True -> [] | All xs -> xs | c -> [ c ]) cs in
  if List.exists is_false cs then False
  else match cs with [] -> True | [ c ] -> c | cs -> All cs

let any_ cs =
  let cs = List.concat_map (function False -> [] | Any xs -> xs | c -> [ c ]) cs in
  if List.exists is_true cs then True
  else match cs with [] -> False | [ c ] -> c | cs -> Any cs

(* Theorem 2.2 per vector: gamma escapes the box iff some |gamma_i|
   exceeds mu_i. *)
let escape_cond gamma =
  any_ (List.init (Array.length gamma) (fun i -> atom i (Zint.abs gamma.(i))))

(* ------------------ parametric theorem conditions ------------------ *)

(* All builders read the Hermite multiplier U of T; its kernel columns
   are columns rank .. n-1 (Theorem 4.2(3)). *)
let udims (h : Hnf.result) = (Intmat.rows h.Hnf.u, h.Hnf.rank)
let uget (h : Hnf.result) i j = Intmat.get h.Hnf.u i j

let kernel_columns h =
  let n, rank = udims h in
  List.init (n - rank) (fun c -> Intmat.col h.Hnf.u (rank + c))

(* Theorem 4.4: every kernel column escapes the box. *)
let cond3 h = all_ (List.map escape_cond (kernel_columns h))

(* Theorem 4.6 (k = n-2): some row i has gcd past its bound while the
   coprime direction it leaves uncovered escapes through another row. *)
let cond5 h =
  let n, k = udims h in
  let c1 = k and c2 = k + 1 in
  any_
    (List.init n (fun i ->
         let a = uget h i c1 and b = uget h i c2 in
         let g = Zint.gcd a b in
         if Zint.is_zero g then False
         else begin
           let b1 = Zint.divexact b g and b2 = Zint.neg (Zint.divexact a g) in
           let escapes =
             List.init n (fun j ->
                 if j = i then False
                 else
                   atom j
                     (Zint.abs
                        (Zint.add (Zint.mul b1 (uget h j c1)) (Zint.mul b2 (uget h j c2)))))
           in
           all_ [ atom i g; any_ escapes ]
         end))

let sign_match x s = Zint.sign x * s >= 0

(* Theorem 4.7 (k = n-2): same-sign sums and opposite-sign differences
   escape, kernel columns feasible.  The sign guards select which rows
   contribute an atom; the atoms carry |a+b| and |a-b|. *)
let cond_n_minus_2 h =
  let n, k = udims h in
  let c1 = k and c2 = k + 1 in
  let cond1 =
    any_
      (List.init n (fun i ->
           let a = uget h i c1 and b = uget h i c2 in
           if Zint.sign (Zint.mul a b) >= 0 then atom i (Zint.abs (Zint.add a b))
           else False))
  in
  let cond2 =
    any_
      (List.init n (fun j ->
           let a = uget h j c1 and b = uget h j c2 in
           if Zint.sign (Zint.mul a b) <= 0 then atom j (Zint.abs (Zint.sub a b))
           else False))
  in
  all_ [ cond1; cond2; cond3 h ]

let patterns_n_minus_3 =
  [ [| 1; 1; 1 |]; [| 1; 1; -1 |]; [| 1; -1; 1 |]; [| -1; 1; 1 |] ]

(* Theorem 4.8 (k = n-3) verbatim: each of the four sign patterns needs
   a sign-matched row whose patterned sum escapes. *)
let cond_n_minus_3 h =
  let n, k = udims h in
  let per_pattern pat =
    any_
      (List.init n (fun i ->
           let ok = ref true in
           let sum = ref Zint.zero in
           for c = 0 to 2 do
             let x = uget h i (k + c) in
             if not (sign_match x pat.(c)) then ok := false;
             sum := Zint.add !sum (Zint.mul_int x pat.(c))
           done;
           if !ok then atom i (Zint.abs !sum) else False))
  in
  all_ (List.map per_pattern patterns_n_minus_3 @ [ cond3 h ])

(* The Theorem 4.7-style pairwise repair on kernel columns ca, cb. *)
let pair_cond h ca cb =
  let n, _ = udims h in
  let escape sigma =
    any_
      (List.init n (fun i ->
           let a = uget h i ca and b = Zint.mul_int (uget h i cb) sigma in
           if Zint.sign (Zint.mul a b) >= 0 then atom i (Zint.abs (Zint.add a b))
           else False))
  in
  all_ [ escape 1; escape (-1) ]

let corrected_cond_n_minus_3 h =
  let _, k = udims h in
  all_
    [ cond_n_minus_3 h; pair_cond h k (k + 1); pair_cond h k (k + 2);
      pair_cond h (k + 1) (k + 2) ]

(* Theorem 4.5: some size-d row subset with nonsingular kernel
   restriction has every row gcd past its bound.  The mu-dependent
   candidate filter of the concrete form becomes a disjunction over the
   (mu-independent) nonsingular subsets.  C(n, d) can blow up for wide
   kernels, so the builder refuses past [cond4_max_subsets] — the
   caller then leaves the family's sufficient arm empty and those
   instances fall through to concrete analysis (sound, never wrong). *)
let cond4_max_subsets = 20_000

let cond4 h =
  let n, k = udims h in
  let d = n - k in
  let row_gcd i =
    let g = ref Zint.zero in
    for c = k to n - 1 do
      g := Zint.gcd !g (uget h i c)
    done;
    !g
  in
  let choose n k =
    let rec go acc i = if i > k then acc else go (acc * (n - i + 1) / i) (i + 1) in
    if k < 0 || k > n then 0 else go 1 1
  in
  if choose n d > cond4_max_subsets then None
  else begin
    let rec subsets sz from =
      if sz = 0 then [ [] ]
      else if from >= n then []
      else
        List.map (fun s -> from :: s) (subsets (sz - 1) (from + 1))
        @ subsets sz (from + 1)
    in
    let arms =
      List.filter_map
        (fun rows ->
          let m = Intmat.make d d (fun a b -> uget h (List.nth rows a) (k + b)) in
          if Zint.is_zero (Intmat.det m) then None
          else Some (all_ (List.map (fun i -> atom i (row_gcd i)) rows)))
        (subsets d 0)
    in
    Some (any_ arms)
  end

(* ----------------------------- families ----------------------------- *)

type meth =
  | Full_rank_square
  | Adjugate_form
  | Column_infeasible
  | Hermite_n_minus_2
  | Hermite_n_minus_3
  | Gcd_sufficient

let method_name = function
  | Full_rank_square -> "full-rank-square"
  | Adjugate_form -> "adjugate-form"
  | Column_infeasible -> "kernel-column-infeasible"
  | Hermite_n_minus_2 -> "hermite-n-minus-2"
  | Hermite_n_minus_3 -> "hermite-n-minus-3"
  | Gcd_sufficient -> "gcd-sufficient"

type shape =
  | Const_free
  | Always_residual
  | Adjugate of Intvec.t
  | Cascade of {
      kernel : Intvec.t list;
      sufficient : (meth * cond) option;
    }

type t = {
  k : int;
  n : int;
  full_rank : bool;
  shape : shape;
}

let shape_name fam =
  match fam.shape with
  | Const_free -> "const-free"
  | Always_residual -> "residual"
  | Adjugate _ -> "adjugate"
  | Cascade _ -> "cascade"

let build ?hnf t =
  let n = Intmat.cols t and k = Intmat.rows t in
  if k >= n then begin
    let r = Intmat.rank t in
    if r = n then { k; n; full_rank = r = k; shape = Const_free }
    else { k; n; full_rank = r = k; shape = Always_residual }
  end
  else if k = n - 1 && Intmat.rank t = n - 1 then
    match Conflict.single_conflict_vector t with
    | Some gamma -> { k; n; full_rank = true; shape = Adjugate gamma }
    | None -> assert false (* full rank guarantees a nonzero minor *)
  else begin
    let h = match hnf with Some h -> h | None -> Hnf.compute t in
    let rank = h.Hnf.rank in
    if rank <> k then { k; n; full_rank = false; shape = Always_residual }
    else begin
      (* Witnesses are stored pre-normalized, in the same column order
         the concrete cascade scans, so an infeasible column yields the
         byte-identical verdict. *)
      let kernel =
        List.init (n - rank) (fun c ->
            Intvec.normalize_sign (Intmat.col h.Hnf.u (rank + c)))
      in
      let codim = n - rank in
      let sufficient =
        if codim = 2 then Some (Hermite_n_minus_2, cond_n_minus_2 h)
        else if codim = 3 then Some (Hermite_n_minus_3, corrected_cond_n_minus_3 h)
        else Option.map (fun c -> (Gcd_sufficient, c)) (cond4 h)
      in
      { k; n; full_rank = true; shape = Cascade { kernel; sufficient } }
    end
  end

type evaluation =
  | Decided of {
      conflict_free : bool;
      method_ : meth;
      witness : Intvec.t option;
    }
  | Residual

let eval fam ~mu =
  if Array.length mu <> fam.n then invalid_arg "Family.eval: arity mismatch";
  match fam.shape with
  | Const_free -> Decided { conflict_free = true; method_ = Full_rank_square; witness = None }
  | Always_residual -> Residual
  | Adjugate gamma ->
    let free = Conflict.is_feasible ~mu gamma in
    Decided
      {
        conflict_free = free;
        method_ = Adjugate_form;
        witness = (if free then None else Some gamma);
      }
  | Cascade { kernel; sufficient } -> (
    match List.find_opt (fun w -> not (Conflict.is_feasible ~mu w)) kernel with
    | Some w ->
      Decided { conflict_free = false; method_ = Column_infeasible; witness = Some w }
    | None -> (
      match sufficient with
      | Some (m, c) when eval_cond c ~mu ->
        Decided { conflict_free = true; method_ = m; witness = None }
      | _ -> Residual))

(* ------------------------------- codec ------------------------------ *)

(* Space-free rendering, so a family fits one token of a store journal
   record.  Grammar (docs/FAMILIES.md):
     family := k ':' n ':' fr ':' shape
     shape  := "CF" | "RD" | 'A' vec | 'K' vec+ '!' suff
     suff   := '~' | tag '@' cond          tag := "h2" | "h3" | "g4"
     vec    := '(' int (',' int)* ')'
     cond   := 'T' | 'F' | 'l' i '.' c
             | '&(' cond (',' cond)* ')' | '|(' cond (',' cond)* ')' *)

let rec cond_to_buf b c =
  match c with
  | True -> Buffer.add_char b 'T'
  | False -> Buffer.add_char b 'F'
  | Lt (i, c) ->
    Buffer.add_char b 'l';
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b '.';
    Buffer.add_string b (Zint.to_string c)
  | All cs | Any cs ->
    Buffer.add_char b (match c with All _ -> '&' | _ -> '|');
    Buffer.add_char b '(';
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        cond_to_buf b c)
      cs;
    Buffer.add_char b ')'

let vec_to_buf b v =
  Buffer.add_char b '(';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Zint.to_string x))
    v;
  Buffer.add_char b ')'

let suff_tag = function
  | Hermite_n_minus_2 -> "h2"
  | Hermite_n_minus_3 -> "h3"
  | Gcd_sufficient -> "g4"
  | Full_rank_square | Adjugate_form | Column_infeasible ->
    invalid_arg "Family.to_string: not a sufficient-arm method"

let to_string fam =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int fam.k);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int fam.n);
  Buffer.add_char b ':';
  Buffer.add_char b (if fam.full_rank then '1' else '0');
  Buffer.add_char b ':';
  (match fam.shape with
  | Const_free -> Buffer.add_string b "CF"
  | Always_residual -> Buffer.add_string b "RD"
  | Adjugate gamma ->
    Buffer.add_char b 'A';
    vec_to_buf b gamma
  | Cascade { kernel; sufficient } ->
    Buffer.add_char b 'K';
    List.iter (vec_to_buf b) kernel;
    Buffer.add_char b '!';
    (match sufficient with
    | None -> Buffer.add_char b '~'
    | Some (m, c) ->
      Buffer.add_string b (suff_tag m);
      Buffer.add_char b '@';
      cond_to_buf b c));
  Buffer.contents b

exception Parse of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then raise (Parse "truncated");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let expect c =
    if next () <> c then raise (Parse (Printf.sprintf "expected %c" c))
  in
  let take_while p =
    let start = !pos in
    while !pos < len && p s.[!pos] do
      incr pos
    done;
    if !pos = start then raise (Parse "empty token");
    String.sub s start (!pos - start)
  in
  let is_digit c = c >= '0' && c <= '9' in
  let int_tok () = int_of_string (take_while is_digit) in
  let zint_tok () =
    let neg = peek () = Some '-' in
    if neg then incr pos;
    let d = take_while is_digit in
    Zint.of_string (if neg then "-" ^ d else d)
  in
  let vec () =
    expect '(';
    let xs = ref [ zint_tok () ] in
    while peek () = Some ',' do
      incr pos;
      xs := zint_tok () :: !xs
    done;
    expect ')';
    Array.of_list (List.rev !xs)
  in
  let rec cond () =
    match next () with
    | 'T' -> True
    | 'F' -> False
    | 'l' ->
      let i = int_tok () in
      expect '.';
      Lt (i, zint_tok ())
    | ('&' | '|') as junction ->
      expect '(';
      let cs = ref [ cond () ] in
      while peek () = Some ',' do
        incr pos;
        cs := cond () :: !cs
      done;
      expect ')';
      let cs = List.rev !cs in
      if junction = '&' then All cs else Any cs
    | c -> raise (Parse (Printf.sprintf "unexpected %c in condition" c))
  in
  let shape () =
    match next () with
    | 'C' ->
      expect 'F';
      Const_free
    | 'R' ->
      expect 'D';
      Always_residual
    | 'A' -> Adjugate (vec ())
    | 'K' ->
      let kernel = ref [ vec () ] in
      while peek () = Some '(' do
        kernel := vec () :: !kernel
      done;
      expect '!';
      let sufficient =
        match next () with
        | '~' -> None
        | 'h' -> (
          let m =
            match next () with
            | '2' -> Hermite_n_minus_2
            | '3' -> Hermite_n_minus_3
            | c -> raise (Parse (Printf.sprintf "unknown tag h%c" c))
          in
          expect '@';
          Some (m, cond ()))
        | 'g' ->
          expect '4';
          expect '@';
          Some (Gcd_sufficient, cond ())
        | c -> raise (Parse (Printf.sprintf "unknown sufficient tag %c" c))
      in
      Cascade { kernel = List.rev !kernel; sufficient }
    | c -> raise (Parse (Printf.sprintf "unknown shape %c" c))
  in
  match
    let k = int_tok () in
    expect ':';
    let n = int_tok () in
    expect ':';
    let fr =
      match next () with
      | '1' -> true
      | '0' -> false
      | _ -> raise (Parse "bad full-rank flag")
    in
    expect ':';
    let sh = shape () in
    if !pos <> len then raise (Parse "trailing bytes");
    { k; n; full_rank = fr; shape = sh }
  with
  | fam -> Some fam
  | exception (Parse _ | Failure _ | Invalid_argument _) -> None
