(** Procedure 5.1: find the time-optimal conflict-free schedule [Pi°]
    for a given space mapping [S] by enumerating candidates in
    increasing total-execution-time order.

    Candidates with equal objective [Σ |pi_i| mu_i] are generated
    together (the sorting of Step 3 is implicit in the cost-level
    enumeration); each candidate is screened by the four conditions of
    Step 5: [Pi D > 0], [rank T = k], conflict-freedom, and — when an
    interconnection matrix is supplied — the routing condition
    [SD = PK]. *)

type conflict_check =
  | Exact    (** The box oracle of {!Conflict} — always correct. *)
  | Theorem  (** The cheapest applicable closed-form condition via
                 {!Theorems.decide}. *)

type result = {
  pi : Intvec.t;
  total_time : int;        (** Equation 2.7. *)
  candidates_tried : int;  (** Search effort, for the complexity bench. *)
  routing : Tmap.routing option;
}

val optimize :
  ?check:conflict_check ->
  ?valid:(Intmat.t -> bool) ->
  ?p:Intmat.t ->
  ?require_routing:bool ->
  ?max_objective:int ->
  Algorithm.t ->
  s:Intmat.t ->
  result option
(** [optimize alg ~s] returns the schedule minimizing Equation 2.7, or
    [None] if no valid schedule exists with objective up to
    [max_objective] (default [Σ mu_i * (mu_i + 1)], enough for every
    example in the paper).  When [require_routing] is set (default
    [false]), candidates whose dependences cannot be routed on [p]
    (default nearest-neighbor links) are rejected — condition 2 of
    Definition 2.2.

    [valid] replaces the default mapping-matrix screen
    ([rank T = k] and conflict-freedom per [check]) — the hook the
    cached engine ([Analysis.check]) plugs into; overriding it makes
    [check] irrelevant. *)

val default_max_objective : int array -> int
(** The default search bound [Σ mu_i * (mu_i + 1)] — exposed so engine
    scans stop at the same level as this module. *)

val candidates_at_cost : mu:int array -> int -> Intvec.t list
(** All integral [Pi] with [Σ |pi_i| mu_i] equal to the given cost —
    the paper's candidate set [C_l], exposed for tests. *)

val minimal_schedule : ?max_objective:int -> Algorithm.t -> Intvec.t option
(** The cost-minimal [Pi] with [Pi D > 0] and nothing else — the
    "free" schedule used as Problem 6.1's given input when no space
    mapping has been chosen yet. *)
