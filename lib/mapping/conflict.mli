(** Conflict vectors and conflict-freedom (Definition 2.3, Theorems 2.2
    and 3.1).

    A conflict vector of [T] is an integral [gamma ≠ 0] with
    [T gamma = 0] and relatively prime entries.  On a constant-bounded
    index set with bounds [mu], [T] is conflict-free iff no nonzero
    integral vector of its kernel fits inside the box
    [|gamma_i| <= mu_i] (Theorem 2.2) — the {e box oracle} here decides
    exactly that by pruned enumeration and serves as ground truth for
    every closed-form condition in {!Theorems}. *)

val is_feasible : mu:int array -> Intvec.t -> bool
(** Theorem 2.2, per-vector: [gamma] is a feasible conflict vector iff
    some [|gamma_i| > mu_i]. *)

val kernel_basis : Intmat.t -> Intvec.t list
(** The [n - rank] linearly independent conflict vectors given by the
    last columns of the Hermite multiplier (Theorem 4.2(3)); each is
    primitive. *)

val find_conflict : mu:int array -> Intmat.t -> Intvec.t option
(** Exact oracle: a nonzero kernel vector inside the box
    [|gamma_i| <= mu_i], primitive and sign-normalized, or [None] when
    the mapping is conflict-free.  Backtracking enumeration with
    interval pruning on the partial products [T gamma].

    @deprecated Callers wanting a verdict-plus-witness should use
    [Analysis.check] (library [engine]); it picks the cheapest sound
    method, caches the result and degrades under budgets.  This
    function remains the ground-truth box enumeration it builds on. *)

val is_conflict_free : mu:int array -> Intmat.t -> bool
(** Decides with {!find_conflict} when the box is small and with
    {!find_conflict_lattice} otherwise, so it stays exact {e and}
    affordable at large [mu]. *)

val conflict_in_lattice : mu:int array -> Intvec.t list -> Intvec.t option
(** [conflict_in_lattice ~mu basis] is the lattice oracle on an
    explicit basis of linearly independent integer vectors: a nonzero
    integral combination fitting the box, or [None].  Used with the
    Hermite kernel basis by {!find_conflict_lattice} and with the
    Proposition 8.1 closed-form generators by [Prop81.decide]. *)

val find_conflict_lattice : mu:int array -> Intmat.t -> Intvec.t option
(** Exact oracle that scales to large bounds: instead of enumerating
    the box (O((2 mu + 1)^n) points), enumerate integer coefficient
    vectors over an LLL-reduced basis of [ker T] — the search space is
    the rank-(n-k) coefficient lattice with bounds derived from the
    pseudo-inverse of the basis, essentially independent of [n].
    Agrees with {!find_conflict} on whether a conflict exists (the
    witnesses may differ); property-tested. *)

val conflicting_pairs_oracle :
  Index_set.t -> Intmat.t -> (int array * int array) list
(** Definition 2.2 condition 3 checked literally: all unordered pairs
    [j1 <> j2 ∈ J] with [T j1 = T j2].  Quadratic in [|J|]; tests
    only. *)

val all_in_box : mu:int array -> Intmat.t -> Intvec.t list
(** Every nonzero kernel vector inside the box, sign-normalized (first
    nonzero entry positive); used for Figure-1-style reports. *)

(** {1 The k = n-1 closed form (Section 3)} *)

val single_conflict_vector : Intmat.t -> Intvec.t option
(** Theorem 3.1: for [T ∈ Z^{(n-1)×n}] with [rank T = n-1], the unique
    conflict vector whose first nonzero entry is positive, via the
    signed maximal minors of [T] (Equation 3.2 up to the scalar
    [lambda]).  [None] when [rank T < n-1]. *)

val f_coefficient_matrix : s:Intmat.t -> Intmat.t
(** Proposition 3.2 made explicit: the n×n integer matrix [C] such that
    the conflict vector of [T = [S; Pi]] is
    [gamma = lambda * C pi^T] — i.e. [f_i(pi) = Σ_j C_ij pi_j].
    [S] must be (n-2)×n. *)
