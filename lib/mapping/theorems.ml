type input = {
  hnf : Hnf.result;
  mu : int array;
}

let make_input ~mu t =
  if Array.length mu <> Intmat.cols t then
    invalid_arg "Theorems.make_input: arity mismatch";
  { hnf = Hnf.compute t; mu }

let dims { hnf; mu } =
  let n = Array.length mu in
  (n, hnf.Hnf.rank)

(* u entry helpers; columns are 0-indexed, so the paper's u_{i,n}
   is [u i (n-1)]. *)
let uget inp i j = Intmat.get inp.hnf.Hnf.u i j

let necessary_cond2 inp =
  let n, k = dims inp in
  let v = inp.hnf.Hnf.v in
  let column_ok j =
    let ok = ref false in
    for i = 0 to k - 1 do
      if not (Zint.is_zero (Intmat.get v i j)) then ok := true
    done;
    !ok
  in
  let all = ref true in
  for j = 0 to n - 1 do
    if not (column_ok j) then all := false
  done;
  !all

(* The closed-form predicates below are evaluated through their
   mu-parametric forms in [Family]: each one builds the symbolic
   piecewise condition (sign guards folded, mu-dependence reduced to
   [mu_i < c] atoms) and evaluates it at this input's concrete bounds.
   One source of truth — [Analysis]'s family cache compiles the same
   conditions once per matrix and replays them across instances. *)

let necessary_cond3 inp = Family.eval_cond (Family.cond3 inp.hnf) ~mu:inp.mu

(* Theorem 4.5: choose n-k rows of U whose kernel-column restriction is
   nonsingular while each chosen row's gcd over the kernel columns is
   >= mu_i + 1. *)
let sufficient_cond4 inp =
  let n, k = dims inp in
  let d = n - k in
  if d = 0 then true
  else
    match Family.cond4 inp.hnf with
    | Some c -> Family.eval_cond c ~mu:inp.mu
    | None ->
      (* Too many subsets for the symbolic form: fall back to the
         concrete search, where the mu-filter prunes the candidate
         rows before enumeration. *)
      let row_gcd i =
        let g = ref Zint.zero in
        for c = k to n - 1 do
          g := Zint.gcd !g (uget inp i c)
        done;
        !g
      in
      let candidate_rows =
        List.filter
          (fun i -> Zint.compare (row_gcd i) (Zint.of_int (inp.mu.(i) + 1)) >= 0)
          (List.init n (fun i -> i))
      in
      let rec subsets sz = function
        | [] -> if sz = 0 then [ [] ] else []
        | x :: rest ->
          if sz = 0 then [ [] ]
          else
            List.map (fun s -> x :: s) (subsets (sz - 1) rest) @ subsets sz rest
      in
      List.exists
        (fun rows ->
          let m =
            Intmat.make d d (fun a b -> uget inp (List.nth rows a) (k + b))
          in
          not (Zint.is_zero (Intmat.det m)))
        (subsets d candidate_rows)

let require_codim inp d name =
  let n, k = dims inp in
  if n - k <> d then invalid_arg (name ^ ": wrong codimension")

(* Theorem 4.6 (sufficient, k = n-2). *)
let sufficient_cond5 inp =
  require_codim inp 2 "Theorems.sufficient_cond5";
  Family.eval_cond (Family.cond5 inp.hnf) ~mu:inp.mu

(* Theorem 4.7 (k = n-2): conditions (1) same-sign sum, (2)
   opposite-sign difference, (3) kernel columns feasible. *)
let nec_suff_n_minus_2 inp =
  require_codim inp 2 "Theorems.nec_suff_n_minus_2";
  Family.eval_cond (Family.cond_n_minus_2 inp.hnf) ~mu:inp.mu

(* Theorem 4.8 (k = n-3): for each of the four sign patterns of
   (beta_{n-2}, beta_{n-1}, beta_n) up to global negation there must be
   a row whose kernel entries match the pattern and whose patterned sum
   escapes the box; plus feasibility of the kernel columns. *)
let nec_suff_n_minus_3 inp =
  require_codim inp 3 "Theorems.nec_suff_n_minus_3";
  Family.eval_cond (Family.cond_n_minus_3 inp.hnf) ~mu:inp.mu

let corrected_sufficient_n_minus_3 inp =
  require_codim inp 3 "Theorems.corrected_sufficient_n_minus_3";
  Family.eval_cond (Family.corrected_cond_n_minus_3 inp.hnf) ~mu:inp.mu

type method_used =
  | Full_rank_square
  | Adjugate_form
  | Column_infeasible
  | Hermite_n_minus_2
  | Hermite_n_minus_3
  | Gcd_sufficient
  | Box_oracle

(* Rank-deficient inputs skip the whole closed-form cascade and pay
   for an exact oracle; count them and say so once on stderr. *)
let note_rank_deficient () =
  Obs.Metrics.incr (Obs.Metrics.counter "theorems.rank_deficient_fallthrough");
  ignore
    (Obs.Warn.once "theorems.rank-deficient-oracle"
       "rank-deficient mapping matrix in Theorems.decide: no closed-form \
        theorem applies, paying exact-oracle cost (counted in \
        theorems.rank_deficient_fallthrough)")

let decide ~mu t =
  Obs.Trace.with_span "theorems.decide" @@ fun () ->
  let n = Intmat.cols t and k = Intmat.rows t in
  if k >= n then
    if Intmat.rank t = n then (true, Full_rank_square)
    else begin
      (* Rank deficiency only makes the kernel nontrivial; its vectors
         can still all escape the box [|gamma_i| <= mu_i], so the
         bounded verdict needs the oracle (found by differential
         fuzzing, see test/corpus/square-rank-deficient-free.case). *)
      note_rank_deficient ();
      (Conflict.is_conflict_free ~mu t, Box_oracle)
    end
  else if k = n - 1 && Intmat.rank t = n - 1 then
    match Conflict.single_conflict_vector t with
    | Some gamma -> (Conflict.is_feasible ~mu gamma, Adjugate_form)
    | None -> assert false (* full rank guarantees a nonzero minor *)
  else begin
    let inp = make_input ~mu t in
    let _, rank = dims inp in
    if rank <> Intmat.rows t then begin
      note_rank_deficient ();
      (Conflict.is_conflict_free ~mu t, Box_oracle)
    end
    else if not (necessary_cond3 inp) then (false, Column_infeasible)
    else if n - rank = 2 && nec_suff_n_minus_2 inp then (true, Hermite_n_minus_2)
    else if n - rank = 3 && corrected_sufficient_n_minus_3 inp then
      (true, Hermite_n_minus_3)
    else if n - rank > 3 && sufficient_cond4 inp then (true, Gcd_sufficient)
    else (Conflict.is_conflict_free ~mu t, Box_oracle)
  end
