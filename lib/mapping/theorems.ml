type input = {
  hnf : Hnf.result;
  mu : int array;
}

let make_input ~mu t =
  if Array.length mu <> Intmat.cols t then
    invalid_arg "Theorems.make_input: arity mismatch";
  { hnf = Hnf.compute t; mu }

let dims { hnf; mu } =
  let n = Array.length mu in
  (n, hnf.Hnf.rank)

(* u entry helpers; columns are 0-indexed, so the paper's u_{i,n}
   is [u i (n-1)]. *)
let uget inp i j = Intmat.get inp.hnf.Hnf.u i j

let kernel_columns inp =
  let n, k = dims inp in
  List.init (n - k) (fun c -> Intmat.col inp.hnf.Hnf.u (k + c))

let necessary_cond2 inp =
  let n, k = dims inp in
  let v = inp.hnf.Hnf.v in
  let column_ok j =
    let ok = ref false in
    for i = 0 to k - 1 do
      if not (Zint.is_zero (Intmat.get v i j)) then ok := true
    done;
    !ok
  in
  let all = ref true in
  for j = 0 to n - 1 do
    if not (column_ok j) then all := false
  done;
  !all

let necessary_cond3 inp =
  List.for_all (Conflict.is_feasible ~mu:inp.mu) (kernel_columns inp)

(* Theorem 4.5: choose n-k rows of U whose kernel-column restriction is
   nonsingular while each chosen row's gcd over the kernel columns is
   >= mu_i + 1. *)
let sufficient_cond4 inp =
  let n, k = dims inp in
  let d = n - k in
  if d = 0 then true
  else begin
    let row_gcd i =
      let g = ref Zint.zero in
      for c = k to n - 1 do
        g := Zint.gcd !g (uget inp i c)
      done;
      !g
    in
    let candidate_rows =
      List.filter
        (fun i -> Zint.compare (row_gcd i) (Zint.of_int (inp.mu.(i) + 1)) >= 0)
        (List.init n (fun i -> i))
    in
    (* Search for a size-d subset with nonsingular restriction. *)
    let rec subsets sz = function
      | [] -> if sz = 0 then [ [] ] else []
      | x :: rest ->
        if sz = 0 then [ [] ]
        else
          List.map (fun s -> x :: s) (subsets (sz - 1) rest) @ subsets sz rest
    in
    List.exists
      (fun rows ->
        let m =
          Intmat.make d d (fun a b -> uget inp (List.nth rows a) (k + b))
        in
        not (Zint.is_zero (Intmat.det m)))
      (subsets d candidate_rows)
  end

let require_codim inp d name =
  let n, k = dims inp in
  if n - k <> d then invalid_arg (name ^ ": wrong codimension")

(* Theorem 4.6 (sufficient, k = n-2). *)
let sufficient_cond5 inp =
  require_codim inp 2 "Theorems.sufficient_cond5";
  let n, k = dims inp in
  let c1 = k and c2 = k + 1 in
  let cond_at i =
    let a = uget inp i c1 and b = uget inp i c2 in
    let g = Zint.gcd a b in
    if Zint.compare g (Zint.of_int (inp.mu.(i) + 1)) < 0 then false
    else begin
      (* The coprime (beta1, beta2) annihilating row i:
         (b/g, -a/g); check some other row escapes its box. *)
      let b1 = Zint.divexact b g and b2 = Zint.neg (Zint.divexact a g) in
      let escapes j =
        let v = Zint.add (Zint.mul b1 (uget inp j c1)) (Zint.mul b2 (uget inp j c2)) in
        Zint.compare (Zint.abs v) (Zint.of_int inp.mu.(j)) > 0
      in
      let rec any j = j < n && ((j <> i && escapes j) || any (j + 1)) in
      any 0
    end
  in
  let rec exists i = i < n && (cond_at i || exists (i + 1)) in
  exists 0

(* Sign compatibility with zero counting as either sign. *)
let sign_match x s = Zint.sign x * s >= 0

(* Theorem 4.7 (k = n-2): conditions (1) same-sign sum, (2)
   opposite-sign difference, (3) kernel columns feasible. *)
let nec_suff_n_minus_2 inp =
  require_codim inp 2 "Theorems.nec_suff_n_minus_2";
  let n, k = dims inp in
  let c1 = k and c2 = k + 1 in
  let cond1 =
    let rec go i =
      i < n
      && ((let a = uget inp i c1 and b = uget inp i c2 in
           Zint.sign (Zint.mul a b) >= 0
           && Zint.compare (Zint.abs (Zint.add a b)) (Zint.of_int inp.mu.(i)) > 0)
          || go (i + 1))
    in
    go 0
  in
  let cond2 =
    let rec go j =
      j < n
      && ((let a = uget inp j c1 and b = uget inp j c2 in
           Zint.sign (Zint.mul a b) <= 0
           && Zint.compare (Zint.abs (Zint.sub a b)) (Zint.of_int inp.mu.(j)) > 0)
          || go (j + 1))
    in
    go 0
  in
  cond1 && cond2 && necessary_cond3 inp

(* Theorem 4.8 (k = n-3): for each of the four sign patterns of
   (beta_{n-2}, beta_{n-1}, beta_n) up to global negation there must be
   a row whose kernel entries match the pattern and whose patterned sum
   escapes the box; plus feasibility of the kernel columns. *)
let nec_suff_n_minus_3 inp =
  require_codim inp 3 "Theorems.nec_suff_n_minus_3";
  let n, k = dims inp in
  let patterns = [ [| 1; 1; 1 |]; [| 1; 1; -1 |]; [| 1; -1; 1 |]; [| -1; 1; 1 |] ] in
  let row_matches i pat =
    let ok = ref true in
    let sum = ref Zint.zero in
    for c = 0 to 2 do
      let x = uget inp i (k + c) in
      if not (sign_match x pat.(c)) then ok := false;
      sum := Zint.add !sum (Zint.mul_int x pat.(c))
    done;
    !ok && Zint.compare (Zint.abs !sum) (Zint.of_int inp.mu.(i)) > 0
  in
  List.for_all
    (fun pat ->
      let rec go i = i < n && (row_matches i pat || go (i + 1)) in
      go 0)
    patterns
  && necessary_cond3 inp

(* Theorem 4.7-style pairwise check on two kernel columns [ca], [cb]:
   for both relative signs there is a sign-matched row escaping its
   bound.  Covers all conflict vectors beta_a u_a + beta_b u_b with
   both coefficients nonzero. *)
let pair_covered inp ca cb =
  let n, _ = dims inp in
  let escape sigma =
    let rec go i =
      i < n
      && ((let a = uget inp i ca and b = Zint.mul_int (uget inp i cb) sigma in
           Zint.sign (Zint.mul a b) >= 0
           && Zint.compare (Zint.abs (Zint.add a b)) (Zint.of_int inp.mu.(i)) > 0)
          || go (i + 1))
    in
    go 0
  in
  escape 1 && escape (-1)

let corrected_sufficient_n_minus_3 inp =
  require_codim inp 3 "Theorems.corrected_sufficient_n_minus_3";
  let _, k = dims inp in
  nec_suff_n_minus_3 inp
  && pair_covered inp k (k + 1)
  && pair_covered inp k (k + 2)
  && pair_covered inp (k + 1) (k + 2)

type method_used =
  | Full_rank_square
  | Adjugate_form
  | Column_infeasible
  | Hermite_n_minus_2
  | Hermite_n_minus_3
  | Gcd_sufficient
  | Box_oracle

(* Rank-deficient inputs skip the whole closed-form cascade and pay
   for an exact oracle; count them and say so once on stderr. *)
let note_rank_deficient () =
  Obs.Metrics.incr (Obs.Metrics.counter "theorems.rank_deficient_fallthrough");
  ignore
    (Obs.Warn.once "theorems.rank-deficient-oracle"
       "rank-deficient mapping matrix in Theorems.decide: no closed-form \
        theorem applies, paying exact-oracle cost (counted in \
        theorems.rank_deficient_fallthrough)")

let decide ~mu t =
  Obs.Trace.with_span "theorems.decide" @@ fun () ->
  let n = Intmat.cols t and k = Intmat.rows t in
  if k >= n then
    if Intmat.rank t = n then (true, Full_rank_square)
    else begin
      (* Rank deficiency only makes the kernel nontrivial; its vectors
         can still all escape the box [|gamma_i| <= mu_i], so the
         bounded verdict needs the oracle (found by differential
         fuzzing, see test/corpus/square-rank-deficient-free.case). *)
      note_rank_deficient ();
      (Conflict.is_conflict_free ~mu t, Box_oracle)
    end
  else if k = n - 1 && Intmat.rank t = n - 1 then
    match Conflict.single_conflict_vector t with
    | Some gamma -> (Conflict.is_feasible ~mu gamma, Adjugate_form)
    | None -> assert false (* full rank guarantees a nonzero minor *)
  else begin
    let inp = make_input ~mu t in
    let _, rank = dims inp in
    if rank <> Intmat.rows t then begin
      note_rank_deficient ();
      (Conflict.is_conflict_free ~mu t, Box_oracle)
    end
    else if not (necessary_cond3 inp) then (false, Column_infeasible)
    else if n - rank = 2 && nec_suff_n_minus_2 inp then (true, Hermite_n_minus_2)
    else if n - rank = 3 && corrected_sufficient_n_minus_3 inp then
      (true, Hermite_n_minus_3)
    else if n - rank > 3 && sufficient_cond4 inp then (true, Gcd_sufficient)
    else (Conflict.is_conflict_free ~mu t, Box_oracle)
  end
