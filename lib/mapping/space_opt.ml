type objective = Processors | Processors_plus_wire

type result = {
  s : Intmat.t;
  processors : int;
  wire_length : int;
  candidates_tried : int;
}

(* Enumerate all row vectors of dimension n with entries in
   [-bound, bound] whose first nonzero entry is positive (negating a
   row of S changes neither the PE count nor conflict vectors). *)
let candidate_rows n bound =
  let acc = ref [] in
  let row = Array.make n 0 in
  let rec go i ~nonzero =
    if i = n then begin
      if nonzero then acc := Array.copy row :: !acc
    end
    else begin
      let lo = if nonzero then -bound else 0 in
      for v = lo to bound do
        row.(i) <- v;
        go (i + 1) ~nonzero:(nonzero || v <> 0);
        row.(i) <- 0
      done
    end
  in
  go 0 ~nonzero:false;
  List.rev !acc

(* All ways to pick [rows] candidate rows with strictly increasing
   positions in the candidate list: row order within S only permutes
   PE coordinates, so combinations suffice. *)
let rec choose k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest -> List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

let optimize ?(entry_bound = 1) ?(objective = Processors_plus_wire) ?valid
    (alg : Algorithm.t) ~pi ~k =
  Obs.Trace.with_span "space_opt.optimize" @@ fun () ->
  let n = Algorithm.dim alg in
  let d = alg.Algorithm.dependences in
  let m = Algorithm.num_dependences alg in
  if k < 2 || k > n then invalid_arg "Space_opt.optimize: need 2 <= k <= n";
  if not (Schedule.respects pi d) then
    invalid_arg "Space_opt.optimize: Pi does not respect the dependences";
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let valid =
    match valid with
    | Some f -> f
    | None -> fun t -> Intmat.rank t = k && fst (Theorems.decide ~mu t)
  in
  let slack = Array.init m (fun i -> Zint.to_int (Intvec.dot pi (Intmat.col d i))) in
  let tried = ref 0 in
  let best = ref None in
  let consider s =
    incr tried;
    let t = Intmat.append_row s pi in
    if valid t then begin
      (* Routability and wire length: one nearest-neighbor hop per unit
         of |S d_i| per array dimension, within the schedule slack. *)
      let sd = Intmat.mul s d in
      let hops i =
        let acc = ref 0 in
        for r = 0 to k - 2 do
          acc := !acc + abs (Zint.to_int (Intmat.get sd r i))
        done;
        !acc
      in
      let routable = ref true in
      let wire = ref 0 in
      for i = 0 to m - 1 do
        let h = hops i in
        if h > slack.(i) then routable := false;
        wire := !wire + h
      done;
      if !routable then begin
        let tm = Tmap.make ~s ~pi in
        let procs = List.length (Tmap.processors tm alg.Algorithm.index_set) in
        let cost =
          match objective with
          | Processors -> procs
          | Processors_plus_wire -> procs + !wire
        in
        match !best with
        | Some (bcost, _) when bcost <= cost -> ()
        | Some _ | None -> best := Some (cost, { s; processors = procs; wire_length = !wire; candidates_tried = 0 })
      end
    end
  in
  let rows = List.map Intvec.of_int_array (candidate_rows n entry_bound) in
  List.iter
    (fun combo -> consider (Intmat.of_rows combo))
    (choose (k - 1) rows);
  match !best with
  | Some (_, r) -> Some { r with candidates_tried = !tried }
  | None -> None

let optimize_joint ?entry_bound ?objective ?valid ?max_time_objective (alg : Algorithm.t)
    ~k =
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  let max_time_objective =
    match max_time_objective with
    | Some m -> m
    | None -> Array.fold_left (fun acc m -> acc + (m * (m + 1))) 0 mu
  in
  let rec by_cost cost =
    if cost > max_time_objective then None
    else
      let hit =
        List.find_map
          (fun pi ->
            if not (Schedule.respects pi d) then None
            else
              match optimize ?entry_bound ?objective ?valid alg ~pi ~k with
              | Some r -> Some (pi, r)
              | None -> None)
          (Procedure51.candidates_at_cost ~mu cost)
      in
      match hit with Some _ -> hit | None -> by_cost (cost + 1)
  in
  by_cost 1
