(** Problem 6.1 (the paper's stated future work): given a linear
    schedule [Pi], find a space mapping [S ∈ Z^{(k-1)×n}] such that
    [T = [S; Pi]] is conflict-free and the array cost — number of
    processors plus total wire length — is minimized.

    The search enumerates candidate space mappings with bounded
    entries, prunes by rank and conflict-freedom (using the same sound
    decision procedure as Procedure 5.1) and evaluates the cost
    exactly: processors by projecting the index set, wire length as
    [Σ_i ||S d_i||₁] (nearest-neighbor hops per dependence), subject to
    the routability constraint [||S d_i||₁ <= Pi d_i] of
    Definition 2.2 condition 2. *)

type objective =
  | Processors            (** Minimize PE count only. *)
  | Processors_plus_wire  (** The paper's stated criterion. *)

type result = {
  s : Intmat.t;
  processors : int;
  wire_length : int;
  candidates_tried : int;
}

val optimize :
  ?entry_bound:int ->
  ?objective:objective ->
  ?valid:(Intmat.t -> bool) ->
  Algorithm.t ->
  pi:Intvec.t ->
  k:int ->
  result option
(** [optimize alg ~pi ~k] searches space mappings for a
    (k-1)-dimensional array with entries in [[-entry_bound,
    entry_bound]] (default 1 — unit projections, the systolic norm).
    Returns [None] if no conflict-free routable [S] exists in the
    searched family.

    [valid] replaces the default mapping-matrix screen ([rank T = k]
    plus [Theorems.decide]) on each candidate [T = [S; Pi]] — the hook
    the cached engine ([Analysis.check]) plugs into.
    @raise Invalid_argument when [Pi] does not respect the dependences
    or [k] is out of range (needs [2 <= k <= n]). *)

val optimize_joint :
  ?entry_bound:int ->
  ?objective:objective ->
  ?valid:(Intmat.t -> bool) ->
  ?max_time_objective:int ->
  Algorithm.t ->
  k:int ->
  (Intvec.t * result) option
(** Problem 6.2 (the paper's second future-work problem), solved
    lexicographically: enumerate schedules [Pi] in increasing
    total-time order (the Procedure 5.1 candidate stream) and return
    the first one admitting a conflict-free space mapping in the
    searched family, together with the cheapest such array.  The
    result is time-optimal among all mappings whose [S] lies in the
    family, and array-cheapest for that time. *)
