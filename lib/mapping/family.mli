(** Mu-parametric (symbolic) conflict-freedom: Theorems 3.1 and 4.4-4.8
    with the index-set bounds [mu] left as parameters.

    Every mu-dependence in the paper's closed forms is an atom
    [mu_i < c] with [c] a constant computed from the Hermite multiplier
    — escape conditions [|v| > mu_i] and gcd conditions
    [g >= mu_i + 1] alike — while the sign guards are mu-free and fold
    away at build time.  {!build} therefore compiles a mapping matrix
    [T] once into a {e family verdict}: a piecewise predicate over mu
    that {!eval} decides per instance in a handful of integer
    comparisons, plus an explicit {!Residual} arm for the mu where no
    closed form applies (those fall back to concrete analysis).

    Soundness contract (property-tested in [Check.Diff] and
    [test_family.ml]): whenever [eval] answers {!Decided}, the verdict
    — boolean, deciding method {e and} witness — is byte-identical to
    what the concrete cascade of [Analysis.check] computes at the same
    [mu], and it is always exact, never budget-bounded.  See
    [docs/FAMILIES.md] for the derivations and the grammar. *)

(** {1 The piecewise-condition language} *)

type cond =
  | True
  | False
  | Lt of int * Zint.t  (** [mu_i < c], strict; [c > 0] by construction. *)
  | All of cond list    (** Conjunction; flattened, never empty. *)
  | Any of cond list    (** Disjunction; flattened, never empty. *)

val eval_cond : cond -> mu:int array -> bool
(** Evaluate at concrete bounds.  Requires every [mu_i >= 0] (the
    simplifier folds [mu_i < c] with [c <= 0] to [False]); the rest of
    the system enforces [mu_i >= 1]. *)

val escape_cond : Intvec.t -> cond
(** Theorem 2.2 for one vector: [gamma] escapes the box iff some
    [|gamma_i| > mu_i]. *)

(** {1 Parametric theorem conditions}

    Each builder is the mu-parametric form of the matching predicate in
    {!Theorems}, on the same Hermite factorization; [Theorems] itself
    evaluates these at concrete [mu], so there is a single source of
    truth for the closed forms. *)

val cond3 : Hnf.result -> cond
(** Theorem 4.4: every kernel column escapes. *)

val cond4 : Hnf.result -> cond option
(** Theorem 4.5, subsets made mu-free: a disjunction over the
    nonsingular size-(n-k) row subsets of the conjunction of their row
    gcd bounds.  [None] when the subset count exceeds an internal cap
    (the family then keeps no sufficient arm — sound, those mu are
    residual). *)

val cond5 : Hnf.result -> cond
(** Theorem 4.6 (k = n-2). *)

val cond_n_minus_2 : Hnf.result -> cond
(** Theorem 4.7 (k = n-2), including the Theorem 4.4 conjunct. *)

val cond_n_minus_3 : Hnf.result -> cond
(** Theorem 4.8 (k = n-3) verbatim — neither necessary nor sufficient,
    kept for the reproduction; see {!Theorems.nec_suff_n_minus_3}. *)

val corrected_cond_n_minus_3 : Hnf.result -> cond
(** Repaired Theorem 4.8: the verbatim conditions plus the pairwise
    Theorem-4.7-style conditions. *)

(** {1 Family verdicts} *)

type meth =
  | Full_rank_square
  | Adjugate_form
  | Column_infeasible
  | Hermite_n_minus_2
  | Hermite_n_minus_3
  | Gcd_sufficient

val method_name : meth -> string
(** Same names as [Analysis.decided_by_name] on the matching arms. *)

type shape =
  | Const_free
      (** [k >= n], full rank: conflict-free for every mu. *)
  | Always_residual
      (** Rank-deficient: no closed form, every instance pays for a
          concrete oracle. *)
  | Adjugate of Intvec.t
      (** [k = n-1], full rank: the unique conflict vector (Theorem
          3.1); free iff it escapes the box — exact in both
          directions, witness included. *)
  | Cascade of {
      kernel : Intvec.t list;
          (** Sign-normalized kernel columns in scan order; the first
              one trapped in the box is the (byte-identical) witness. *)
      sufficient : (meth * cond) option;
          (** The codimension-matched sufficient condition; mu where
              it fails are residual. *)
    }

type t = {
  k : int;
  n : int;
  full_rank : bool;  (** [rank T = k], cached for the verdict record. *)
  shape : shape;
}

val shape_name : t -> string
(** ["const-free" | "residual" | "adjugate" | "cascade"]. *)

val build : ?hnf:Hnf.result -> Intmat.t -> t
(** Compile the family verdict for [T].  [hnf] lets callers with a
    memoized factorization (see [Engine.Cache.hnf]) avoid recomputing
    it; it is only consulted on the branches that need it. *)

type evaluation =
  | Decided of {
      conflict_free : bool;
      method_ : meth;
      witness : Intvec.t option;
    }
  | Residual

val eval : t -> mu:int array -> evaluation
(** Evaluate the family at concrete bounds.
    @raise Invalid_argument when [mu] and the family disagree on
    arity. *)

(** {1 Codec}

    Compact, space-free rendering used by the persistent store's
    family records ([f] lines) and documented in [docs/FAMILIES.md]. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on any malformed input (the store
    quarantines such records). *)
