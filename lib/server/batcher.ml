type 'a t = {
  queue : 'a Admission.t;
  batch_max : int;
  compatible : 'a -> 'a -> bool;
  handle : 'a list -> unit;
  lock : Mutex.t;
  mutable threads : Thread.t list;
  mutable deaths : int;
}

let m_errors = Obs.Metrics.counter "server.worker_errors"
let m_deaths = Obs.Metrics.counter "server.worker_deaths"

(* A worker consults the [batcher.worker] kill site once per *popped
   batch* — never per wake-up or per blocked wait, which would make
   the consult count (and so the seeded fault log) depend on thread
   scheduling and on when the plan is disarmed.  One batch, one
   consult: the stream of decisions is ordered with the request
   stream.  When the site fires, the worker dies with the batch in
   hand; its replacement (spawned under the pool lock, so [join]
   always sees the full thread list) handles that batch *first*, so
   an accepted request is never lost to supervision. *)
let rec worker ?carry t () =
  let handle_batch batch =
    try t.handle batch
    with exn ->
      Obs.Metrics.incr m_errors;
      ignore
        (Obs.Warn.once "server.worker_error"
           (Printf.sprintf "server worker: uncaught %s" (Printexc.to_string exn)))
  in
  Option.iter handle_batch carry;
  match Admission.pop_batch t.queue ~max:t.batch_max ~compatible:t.compatible with
  | None -> ()
  | Some batch ->
    (* The gray [worker.stall] site shares the once-per-popped-batch
       cadence: a fired consult stalls this worker (and its whole
       batch) by the plan's delay — a GC-pause / saturated-worker
       brownout.  Ambient: applied, never logged. *)
    Fault.stall "worker.stall";
    if Fault.should_fail "batcher.worker" then begin
      Obs.Metrics.incr m_deaths;
      Mutex.lock t.lock;
      t.deaths <- t.deaths + 1;
      t.threads <- Thread.create (worker ~carry:batch t) () :: t.threads;
      Mutex.unlock t.lock;
      ignore
        (Obs.Warn.once "server.worker_death"
           "server worker: killed by fault plan, respawned")
    end
    else begin
      handle_batch batch;
      worker t ()
    end

let start ~queue ~workers ~batch_max ~compatible ~handle =
  if workers < 1 then invalid_arg "Batcher.start: workers must be >= 1";
  if batch_max < 1 then invalid_arg "Batcher.start: batch_max must be >= 1";
  let t =
    {
      queue;
      batch_max;
      compatible;
      handle;
      lock = Mutex.create ();
      threads = [];
      deaths = 0;
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create (worker t) ());
  t

(* The thread list grows while we join (respawns), so keep popping
   until it is empty rather than iterating a snapshot. *)
let join t =
  let rec drain () =
    Mutex.lock t.lock;
    match t.threads with
    | [] -> Mutex.unlock t.lock
    | th :: rest ->
      t.threads <- rest;
      Mutex.unlock t.lock;
      Thread.join th;
      drain ()
  in
  drain ()

let deaths t =
  Mutex.lock t.lock;
  let d = t.deaths in
  Mutex.unlock t.lock;
  d
