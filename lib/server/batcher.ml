type 'a t = { threads : Thread.t list }

let m_errors = Obs.Metrics.counter "server.worker_errors"

let start ~queue ~workers ~batch_max ~compatible ~handle =
  if workers < 1 then invalid_arg "Batcher.start: workers must be >= 1";
  if batch_max < 1 then invalid_arg "Batcher.start: batch_max must be >= 1";
  let worker () =
    let rec loop () =
      match Admission.pop_batch queue ~max:batch_max ~compatible with
      | None -> ()
      | Some batch ->
        (try handle batch
         with exn ->
           Obs.Metrics.incr m_errors;
           ignore
             (Obs.Warn.once "server.worker_error"
                (Printf.sprintf "server worker: uncaught %s" (Printexc.to_string exn))));
        loop ()
    in
    loop ()
  in
  { threads = List.init workers (fun _ -> Thread.create worker ()) }

let join t = List.iter Thread.join t.threads
