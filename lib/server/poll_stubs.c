/* poll(2) binding for the daemon's readiness loop.  The OCaml runtime
 * lock is released around the syscall so worker threads keep running
 * while the loop sleeps.  File descriptors arrive as a Unix.file_descr
 * array (immediate ints on Unix); interest and readiness are encoded
 * as bitmasks: 1 = read, 2 = write, 4 = error/hangup/invalid. */

#include <poll.h>
#include <stdlib.h>
#include <errno.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

CAMLprim value sf_poll_fds(value v_fds, value v_events, value v_timeout_ms)
{
  CAMLparam3(v_fds, v_events, v_timeout_ms);
  CAMLlocal1(v_res);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = malloc(sizeof(struct pollfd) * (n > 0 ? n : 1));
  if (pfds == NULL) caml_failwith("sf_poll_fds: out of memory");
  for (mlsize_t i = 0; i < n; i++) {
    int interest = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short)(((interest & 1) ? POLLIN : 0) |
                             ((interest & 2) ? POLLOUT : 0));
    pfds[i].revents = 0;
  }
  caml_release_runtime_system();
  int rc = poll(pfds, (nfds_t)n, timeout);
  int saved_errno = errno;
  caml_acquire_runtime_system();
  if (rc < 0 && saved_errno != EINTR) {
    free(pfds);
    caml_failwith("sf_poll_fds: poll failed");
  }
  v_res = caml_alloc(n, 0);
  for (mlsize_t i = 0; i < n; i++) {
    int r = 0;
    if (rc > 0) {
      if (pfds[i].revents & (POLLIN | POLLHUP)) r |= 1;
      if (pfds[i].revents & POLLOUT) r |= 2;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) r |= 4;
    }
    Store_field(v_res, i, Val_int(r));
  }
  free(pfds);
  CAMLreturn(v_res);
}
