(** The versioned transport layer of the mapping-query service: two
    codecs behind one signature, selected per connection.

    {b v1 ("json")} is the original JSON-lines transport — one request
    object per newline-terminated line, one reply object per line —
    and remains the default for bare clients: a connection speaks v1
    until it negotiates otherwise, so every pre-existing client works
    untouched.

    {b v2 ("binary")} is a length-prefixed frame transport.  Each
    frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is a tag:

    - ['J'] — a JSON document (any request or reply), UTF-8 bytes.
      This keeps every v1 operation expressible on a v2 connection.
    - ['A'] — a binary [analyze] request: [id] (i64 BE),
      [deadline_ms] (i32 BE, [-1] = none), [k] (u8), [n] (u8),
      [mu] (n × i32 BE), then the k×n mapping matrix row-major
      (k·n × i32 BE).  The frame length must match exactly.
    - ['V'] — a binary [analyze] verdict reply: [id] (i64 BE), a flag
      byte (bit 0 [conflict_free], bit 1 [full_rank], bit 2 exact,
      bit 3 witness present), a store-status byte (['h']it / ['m']iss
      / ['b']ypass / ['o']ff / ['e']rror, see {!Handlers.analyze}),
      [decided_by] as u8 length + bytes, and, when bit 3 is set, the
      witness as u8 count + i32 BE entries.

    A connection switches from v1 to v2 through the in-band ["hello"]
    negotiation op ({!Protocol}): the request and its reply travel in
    the {e current} version; both sides switch immediately after.

    Both codecs share the same {!max_frame_bytes} input cap (1 MiB,
    equal to {!Protocol.max_line_bytes}): an oversized v2 frame is
    rejected from its length prefix alone — the decoder never buffers
    the body — exactly as an oversized v1 line is rejected without
    waiting for its newline.  The full grammar lives in
    docs/SERVER.md. *)

type version = V1 | V2

val version_name : version -> string
(** ["json"] / ["binary"] — the names used by the [hello] op and the
    [--transport] CLI flag. *)

val version_of_name : string -> version option

val max_frame_bytes : int
(** Shared input cap for both codecs, = {!Protocol.max_line_bytes}. *)

type frame =
  | Text of string
      (** A JSON document: a bare line in v1, a ['J'] frame in v2
          (in both cases without trailing newline). *)
  | Bin_analyze of {
      id : int;
      deadline_ms : int option;
      mu : int array;
      tmat : Intmat.t;
    }  (** An ['A'] frame (v2 only). *)
  | Bin_verdict of { id : int; verdict : Protocol.verdict_wire; store : string }
      (** A ['V'] frame (v2 only). *)

val encode : version -> frame -> string
(** Render one frame as wire bytes ([Text] gains the newline in v1,
    the length prefix in v2).
    @raise Invalid_argument on a [Bin_*] frame in v1, a field that
    does not fit its fixed-width encoding (i32 entries, u8 lengths),
    an unknown store status, or a [Text] in v1 containing a newline. *)

(** {1 Decoding}

    A stateful, incremental decoder.  Feed it raw chunks as they
    arrive; pull frames until it wants more bytes.  The decoder
    {e never raises} on wire input — malformed input surfaces as
    {!Corrupt}, after which the decoder is poisoned (every further
    {!next} returns the same verdict) and the connection should be
    dropped, mirroring the v1 oversized-line contract. *)

type decoder

type result =
  | Frame of frame
  | Need_more  (** No complete frame buffered; feed more bytes. *)
  | Corrupt of string
      (** Unrecoverable framing error (oversized frame, unknown tag,
          malformed binary body).  Sticky. *)

val decoder : version -> decoder

val decoder_version : decoder -> version

val set_version : decoder -> version -> unit
(** Switch codec for all not-yet-decoded bytes — called right after a
    [hello] exchange.  Bytes already buffered are re-interpreted under
    the new version (the peer switches at exactly the same point in
    the stream). *)

val feed : decoder -> bytes -> int -> int -> unit
(** [feed d buf off len] appends a received chunk. *)

val next : decoder -> result

val buffered : decoder -> int
(** Bytes currently buffered — bounded by {!max_frame_bytes} plus one
    read chunk, because oversized inputs are rejected before their
    bodies are buffered (the adversarial decoder test asserts this). *)
