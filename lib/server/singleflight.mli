(** Singleflight coalescing of identical in-flight queries.

    A table of open {e groups}, keyed by the 32-bit {!Store.key_hash}
    content hash and disambiguated by the canonical {!Store.key_string}
    (a colliding hash must never share a group — the full key string
    is compared, mirroring the store's own bucket design).  The first
    {!join} for a key creates the group and elects the caller leader:
    it alone dispatches the analysis.  Every further join for the same
    key while the group is open becomes a follower.  {!complete}
    closes the group and returns {e all} waiters in join order — the
    leader fans one verdict (and one store write) out to each of them.

    The table never blocks: callers are the daemon's event loop and
    its completion callbacks, which park waiter records here rather
    than threads.  All operations are thread-safe. *)

type 'a t

val create : unit -> 'a t

val join : 'a t -> hash:int -> key:string -> 'a -> [ `Leader | `Follower ]
(** Register one waiter.  [`Leader] means the caller opened the group
    and must eventually {!complete} it (on success, failure or shed —
    a leaked group would coalesce followers forever). *)

val complete : 'a t -> hash:int -> key:string -> 'a list
(** Close the group and take its waiters, in join order; the empty
    list when no group is open for the key. *)

val stats : 'a t -> int * int
(** [(groups, coalesced)]: groups ever opened, followers ever
    coalesced into an open group. *)
