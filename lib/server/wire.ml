type version = V1 | V2

let version_name = function V1 -> "json" | V2 -> "binary"

let version_of_name = function
  | "json" | "v1" -> Some V1
  | "binary" | "v2" -> Some V2
  | _ -> None

let max_frame_bytes = Protocol.max_line_bytes

type frame =
  | Text of string
  | Bin_analyze of {
      id : int;
      deadline_ms : int option;
      mu : int array;
      tmat : Intmat.t;
    }
  | Bin_verdict of { id : int; verdict : Protocol.verdict_wire; store : string }

(* ------------------------------ encoding ---------------------------- *)

let tag_json = 'J'
let tag_analyze = 'A'
let tag_verdict = 'V'

let status_char = function
  | "hit" -> 'h'
  | "miss" -> 'm'
  | "bypass" -> 'b'
  | "off" -> 'o'
  | "error" -> 'e'
  | "family" -> 'f'
  | other -> invalid_arg (Printf.sprintf "Wire.encode: unknown store status %S" other)

let status_of_char = function
  | 'h' -> Some "hit"
  | 'm' -> Some "miss"
  | 'b' -> Some "bypass"
  | 'o' -> Some "off"
  | 'e' -> Some "error"
  | 'f' -> Some "family"
  | _ -> None

let fits_i32 v = v >= -0x8000_0000 && v <= 0x7FFF_FFFF

let add_i32 b name v =
  if not (fits_i32 v) then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d does not fit an i32" name v);
  Buffer.add_int32_be b (Int32.of_int v)

let add_u8 b name v =
  if v < 0 || v > 255 then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d does not fit a u8" name v);
  Buffer.add_char b (Char.chr v)

let payload_of_frame = function
  | Text s ->
    let b = Buffer.create (String.length s + 1) in
    Buffer.add_char b tag_json;
    Buffer.add_string b s;
    Buffer.contents b
  | Bin_analyze { id; deadline_ms; mu; tmat } ->
    let k = Intmat.rows tmat and n = Intmat.cols tmat in
    if Array.length mu <> n then
      invalid_arg "Wire.encode: mu arity does not match matrix columns";
    let b = Buffer.create (16 + (4 * n * (k + 1))) in
    Buffer.add_char b tag_analyze;
    Buffer.add_int64_be b (Int64.of_int id);
    add_i32 b "deadline_ms" (match deadline_ms with Some ms when ms >= 0 -> ms | _ -> -1);
    add_u8 b "matrix rows" k;
    add_u8 b "matrix cols" n;
    Array.iter (fun m -> add_i32 b "mu entry" m) mu;
    for i = 0 to k - 1 do
      for j = 0 to n - 1 do
        add_i32 b "matrix entry" (Zint.to_int (Intmat.get tmat i j))
      done
    done;
    Buffer.contents b
  | Bin_verdict { id; verdict; store } ->
    let w = verdict in
    let exact =
      match w.Protocol.exactness with
      | "exact" -> true
      | "bounded" -> false
      | other -> invalid_arg (Printf.sprintf "Wire.encode: unknown exactness %S" other)
    in
    let b = Buffer.create 32 in
    Buffer.add_char b tag_verdict;
    Buffer.add_int64_be b (Int64.of_int id);
    let flags =
      (if w.Protocol.conflict_free then 1 else 0)
      lor (if w.Protocol.full_rank then 2 else 0)
      lor (if exact then 4 else 0)
      lor (match w.Protocol.witness with Some _ -> 8 | None -> 0)
    in
    Buffer.add_char b (Char.chr flags);
    Buffer.add_char b (status_char store);
    add_u8 b "decided_by length" (String.length w.Protocol.decided_by);
    Buffer.add_string b w.Protocol.decided_by;
    (match w.Protocol.witness with
    | None -> ()
    | Some ws ->
      add_u8 b "witness length" (List.length ws);
      List.iter (fun x -> add_i32 b "witness entry" x) ws);
    Buffer.contents b

let encode version frame =
  match version with
  | V1 -> (
    match frame with
    | Text s ->
      if String.contains s '\n' then
        invalid_arg "Wire.encode: v1 document contains a newline";
      s ^ "\n"
    | Bin_analyze _ | Bin_verdict _ ->
      invalid_arg "Wire.encode: binary frames require the v2 transport")
  | V2 ->
    let payload = payload_of_frame frame in
    let b = Buffer.create (String.length payload + 4) in
    Buffer.add_int32_be b (Int32.of_int (String.length payload));
    Buffer.add_string b payload;
    Buffer.contents b

(* ------------------------------ decoding ---------------------------- *)

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first live byte *)
  mutable len : int;    (* live byte count *)
  mutable vers : version;
  mutable nl_scanned : int;  (* prefix of live bytes known newline-free (v1) *)
  mutable poison : string option;
}

type result = Frame of frame | Need_more | Corrupt of string

let decoder version =
  { buf = Bytes.create 4096; start = 0; len = 0; vers = version; nl_scanned = 0; poison = None }

let decoder_version d = d.vers

let set_version d v =
  d.vers <- v;
  d.nl_scanned <- 0

let buffered d = d.len

let feed d src off n =
  if n < 0 || off < 0 || off + n > Bytes.length src then
    invalid_arg "Wire.feed: bad substring";
  if d.poison = None && n > 0 then begin
    let cap = Bytes.length d.buf in
    if d.start + d.len + n > cap then begin
      (* Compact, then grow only if the live bytes + chunk still do
         not fit. *)
      if d.start > 0 then Bytes.blit d.buf d.start d.buf 0 d.len;
      d.start <- 0;
      if d.len + n > cap then begin
        let cap' =
          let rec grow c = if c >= d.len + n then c else grow (2 * c) in
          grow (max cap 64)
        in
        let buf' = Bytes.create cap' in
        Bytes.blit d.buf 0 buf' 0 d.len;
        d.buf <- buf'
      end
    end;
    Bytes.blit src off d.buf (d.start + d.len) n;
    d.len <- d.len + n
  end

let poison d msg =
  d.poison <- Some msg;
  d.len <- 0;
  d.start <- 0;
  Corrupt msg

let consume d n =
  d.start <- d.start + n;
  d.len <- d.len - n;
  if d.len = 0 then d.start <- 0

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* All reads below are bounds-checked against the payload length
   first, so [String.get_*] can never raise on wire input. *)
let parse_payload payload =
  let plen = String.length payload in
  let need pos n what = if pos + n > plen then malformed "truncated %s" what in
  let u8 pos = Char.code payload.[pos] in
  let i32 pos = Int32.to_int (String.get_int32_be payload pos) in
  let i64 pos = Int64.to_int (String.get_int64_be payload pos) in
  match payload.[0] with
  | c when c = tag_json -> Text (String.sub payload 1 (plen - 1))
  | c when c = tag_analyze ->
    need 1 14 "analyze header";
    let id = i64 1 in
    let dl = i32 9 in
    let k = u8 13 and n = u8 14 in
    if k < 1 || n < 1 then malformed "analyze frame with empty matrix";
    let expect = 15 + (4 * n) + (4 * k * n) in
    if plen <> expect then
      malformed "analyze frame length %d does not match %dx%d matrix" plen k n;
    let mu = Array.init n (fun j -> i32 (15 + (4 * j))) in
    let base = 15 + (4 * n) in
    let rows =
      List.init k (fun i -> List.init n (fun j -> i32 (base + (4 * ((i * n) + j)))))
    in
    Bin_analyze
      {
        id;
        deadline_ms = (if dl < 0 then None else Some dl);
        mu;
        tmat = Intmat.of_ints rows;
      }
  | c when c = tag_verdict ->
    need 1 11 "verdict header";
    let id = i64 1 in
    let flags = u8 9 in
    let store =
      match status_of_char payload.[10] with
      | Some s -> s
      | None -> malformed "unknown store status byte 0x%02x" (u8 10)
    in
    let dlen = u8 11 in
    need 12 dlen "decided_by";
    let decided_by = String.sub payload 12 dlen in
    let pos = 12 + dlen in
    let witness, pos =
      if flags land 8 = 0 then (None, pos)
      else begin
        need pos 1 "witness length";
        let wlen = u8 pos in
        need (pos + 1) (4 * wlen) "witness";
        ( Some (List.init wlen (fun i -> i32 (pos + 1 + (4 * i)))),
          pos + 1 + (4 * wlen) )
      end
    in
    if pos <> plen then malformed "verdict frame has %d trailing bytes" (plen - pos);
    Bin_verdict
      {
        id;
        verdict =
          {
            Protocol.conflict_free = flags land 1 <> 0;
            full_rank = flags land 2 <> 0;
            decided_by;
            exactness = (if flags land 4 <> 0 then "exact" else "bounded");
            witness;
          };
        store;
      }
  | c -> malformed "unknown frame tag 0x%02x" (Char.code c)

let next d =
  match d.poison with
  | Some msg -> Corrupt msg
  | None -> (
    match d.vers with
    | V1 -> (
      let limit = d.start + d.len in
      let rec scan i =
        if i >= limit then None
        else if Bytes.get d.buf i = '\n' then Some i
        else scan (i + 1)
      in
      match scan (d.start + d.nl_scanned) with
      | Some nl ->
        let line = Bytes.sub_string d.buf d.start (nl - d.start) in
        consume d (nl - d.start + 1);
        d.nl_scanned <- 0;
        Frame (Text line)
      | None ->
        d.nl_scanned <- d.len;
        if d.len > max_frame_bytes then
          poison d (Printf.sprintf "request line exceeds %d bytes" max_frame_bytes)
        else Need_more)
    | V2 ->
      if d.len < 4 then Need_more
      else
        let flen =
          Int32.to_int (Bytes.get_int32_be d.buf d.start) land 0xFFFF_FFFF
        in
        if flen < 1 then poison d "empty frame"
        else if flen > max_frame_bytes then
          poison d
            (Printf.sprintf "frame of %d bytes exceeds the %d byte cap" flen
               max_frame_bytes)
        else if d.len < 4 + flen then Need_more
        else begin
          let payload = Bytes.sub_string d.buf (d.start + 4) flen in
          consume d (4 + flen);
          match parse_payload payload with
          | frame -> Frame frame
          | exception Malformed msg -> poison d msg
        end)
