type listen = Unix_sock of string | Tcp of int

type config = {
  listen : listen;
  jobs : int option;
  max_inflight : int;
  queue_capacity : int;
  batch_max : int;
  store_path : string option;
  fsync_every : int;
}

let default_config listen =
  {
    listen;
    jobs = None;
    max_inflight = 2;
    queue_capacity = 256;
    batch_max = 32;
    store_path = None;
    fsync_every = 32;
  }

type conn = { fd : Unix.file_descr; wlock : Mutex.t; cid : int }

type job = {
  rid : int;
  env : Protocol.envelope;
  budget : Engine.Budget.t;
  jconn : conn;
  enqueued_at : float;
}

type t = {
  cfg : config;
  pool : Engine.Pool.t;
  store_ : Store.t option;
  queue : job Admission.t;
  mutable batcher : job Batcher.t option;
  draining : bool Atomic.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  listen_fd : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;
  conn_threads : (int, Thread.t) Hashtbl.t;
  conns_lock : Mutex.t;
  inflight : (int, Engine.Budget.t) Hashtbl.t;
  inflight_lock : Mutex.t;
  next_id : int Atomic.t;
  (* Per-server counts (the [Obs.Metrics] counters are process-wide,
     and the tests run several servers in one process). *)
  n_accepted : int Atomic.t;
  n_shed : int Atomic.t;
  n_batches : int Atomic.t;
  n_batched : int Atomic.t;
}

let m_accepted = Obs.Metrics.counter "server.accepted"
let m_shed = Obs.Metrics.counter "server.shed"
let m_batches = Obs.Metrics.counter "server.batches"
let m_batched = Obs.Metrics.counter "server.batched"
let m_conns = Obs.Metrics.counter "server.connections"
let g_queue_depth = Obs.Metrics.gauge "server.queue_depth"
let h_request_ms = Obs.Metrics.histogram "server.request_ms"

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------ replies ----------------------------- *)

(* A connection may be written by its reader thread and by any pool
   worker finishing one of its requests; the write lock keeps reply
   lines whole.  A dead peer (EPIPE) is not an error — the reply is
   simply dropped.  An injected [conn.write] fault swallows the reply
   and shuts the connection down, so the peer observes EOF instead of
   silence and can retry promptly. *)
let write_line conn json =
  if Fault.should_fail "conn.write" then
    try Unix.shutdown conn.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  else
    let line = Json.to_string json ^ "\n" in
    let bytes = Bytes.of_string line in
    locked conn.wlock (fun () ->
        try
          let n = Bytes.length bytes in
          let written = ref 0 in
          while !written < n do
            written := !written + Unix.write conn.fd bytes !written (n - !written)
          done
        with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ())

(* ------------------------------ batches ----------------------------- *)

let compatible a b =
  match (a.env.Protocol.req, b.env.Protocol.req) with
  | Protocol.Analyze _, Protocol.Analyze _ -> true
  | Protocol.Replay _, Protocol.Replay _ -> true
  | _ -> false

let unregister t rid =
  locked t.inflight_lock (fun () -> Hashtbl.remove t.inflight rid)

let serve_job t job =
  let op = Protocol.op_name job.env.Protocol.req in
  let reply =
    (* A fresh span stack per request: pool workers run in their own
       domain, so the request subtree is not entangled with the
       server's own spans. *)
    Obs.Trace.with_parent None (fun () ->
        Obs.Trace.with_span "server.request"
          ~args:[ ("op", op); ("rid", string_of_int job.rid) ]
          (fun () ->
            match
              Handlers.execute ~pool:t.pool ~store:t.store_ ~budget:job.budget
                job.env.Protocol.req
            with
            | fields -> Protocol.ok_reply ~id:job.env.Protocol.id ~op fields
            | exception Handlers.Bad_request msg ->
              Protocol.error_reply ~id:job.env.Protocol.id ~code:"bad_request" ~detail:msg
            | exception exn ->
              Protocol.error_reply ~id:job.env.Protocol.id ~code:"internal"
                ~detail:(Printexc.to_string exn)))
  in
  write_line job.jconn reply;
  unregister t job.rid;
  Obs.Metrics.observe h_request_ms (1000. *. (Unix.gettimeofday () -. job.enqueued_at))

let handle_batch t batch =
  Atomic.incr t.n_batches;
  ignore (Atomic.fetch_and_add t.n_batched (List.length batch));
  Obs.Metrics.incr m_batches;
  Obs.Metrics.add m_batched (List.length batch);
  Obs.Metrics.set_gauge g_queue_depth (float_of_int (Admission.length t.queue));
  ignore (Engine.Pool.map t.pool (fun job -> serve_job t job) batch)

(* ------------------------------- stats ------------------------------ *)

let store t = t.store_
let worker_deaths t = match t.batcher with Some b -> Batcher.deaths b | None -> 0

let stats_fields t =
  let base =
    [
      ("queue_depth", Json.Int (Admission.length t.queue));
      ("draining", Json.Bool (Atomic.get t.draining));
      ("accepted", Json.Int (Atomic.get t.n_accepted));
      ("shed", Json.Int (Atomic.get t.n_shed));
      ("batches", Json.Int (Atomic.get t.n_batches));
      ("batched", Json.Int (Atomic.get t.n_batched));
      ("worker_deaths", Json.Int (worker_deaths t));
      ("jobs", Json.Int (Engine.Pool.jobs t.pool));
    ]
  in
  match t.store_ with
  | None -> base @ [ ("store", Json.Null) ]
  | Some s ->
    let st = Store.stats s in
    base
    @ [
        ( "store",
          Json.Obj
            [
              ("entries", Json.Int st.Store.entries);
              ("hits", Json.Int st.Store.hits);
              ("misses", Json.Int st.Store.misses);
              ("appended", Json.Int st.Store.appended);
              ("loaded", Json.Int st.Store.loaded);
              ("dropped_bytes", Json.Int st.Store.dropped_bytes);
              ("quarantined", Json.Int st.Store.quarantined);
              ("healed", Json.Int st.Store.healed);
              ("io_errors", Json.Int st.Store.io_errors);
            ] );
      ]

(* ------------------------------- drain ------------------------------ *)

let wake t = try ignore (Unix.write t.pipe_w (Bytes.of_string "x") 0 1) with _ -> ()

let initiate_drain t =
  if not (Atomic.exchange t.draining true) then begin
    (* Already-running and already-queued requests finish fast: their
       budgets are cancelled, so analysis degrades to the bounded
       lattice path instead of completing at leisure or vanishing. *)
    locked t.inflight_lock (fun () ->
        Hashtbl.iter (fun _ b -> Engine.Budget.cancel b) t.inflight);
    Admission.close t.queue;
    wake t
  end

(* ---------------------------- connections --------------------------- *)

let handle_request t conn line =
  match Json.parse ~max_bytes:Protocol.max_line_bytes line with
  | Error msg ->
    write_line conn (Protocol.error_reply ~id:Json.Null ~code:"parse_error" ~detail:msg)
  | Ok json -> (
    match Protocol.parse_request json with
    | Error msg ->
      write_line conn
        (Protocol.error_reply ~id:(Protocol.reply_id json) ~code:"bad_request" ~detail:msg)
    | Ok env ->
      let id = env.Protocol.id in
      let op = Protocol.op_name env.Protocol.req in
      if not (Protocol.queued env.Protocol.req) then begin
        match env.Protocol.req with
        | Protocol.Ping -> write_line conn (Protocol.ok_reply ~id ~op [])
        | Protocol.Stats -> write_line conn (Protocol.ok_reply ~id ~op (stats_fields t))
        | Protocol.Drain ->
          write_line conn (Protocol.ok_reply ~id ~op [ ("draining", Json.Bool true) ]);
          initiate_drain t
        | _ -> assert false
      end
      else if Atomic.get t.draining then
        write_line conn
          (Protocol.error_reply ~id ~code:"draining" ~detail:"server is draining")
      else begin
        let rid = Atomic.fetch_and_add t.next_id 1 in
        let budget =
          Engine.Budget.make ?deadline_ms:(Protocol.deadline_ms env.Protocol.req) ()
        in
        locked t.inflight_lock (fun () -> Hashtbl.replace t.inflight rid budget);
        let job = { rid; env; budget; jconn = conn; enqueued_at = Unix.gettimeofday () } in
        if Admission.try_push t.queue job then begin
          Atomic.incr t.n_accepted;
          Obs.Metrics.incr m_accepted;
          Obs.Metrics.set_gauge g_queue_depth (float_of_int (Admission.length t.queue))
        end
        else begin
          unregister t rid;
          Atomic.incr t.n_shed;
          Obs.Metrics.incr m_shed;
          write_line conn
            (Protocol.error_reply ~id ~code:"overloaded"
               ~detail:
                 (Printf.sprintf "queue full (%d requests)" t.cfg.queue_capacity))
        end
      end)

(* Read newline-terminated requests with a hard per-line byte cap; an
   over-long line gets one [parse_error] reply and the connection is
   dropped (there is no way to resynchronize without buffering the
   oversized line anyway). *)
let conn_loop t conn =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain_lines start =
    let s = Buffer.contents buf in
    match String.index_from_opt s start '\n' with
    | Some nl ->
      handle_request t conn (String.sub s start (nl - start));
      drain_lines (nl + 1)
    | None ->
      Buffer.clear buf;
      Buffer.add_substring buf s start (String.length s - start);
      true
  in
  let rec loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      (* Both connection-fault sites are consulted here, after a
         successful read, so the decisions are ordered with the peer's
         request stream — the peer sending these bytes proves it has
         consumed every earlier reply, so tearing down now can never
         race a reply still in flight (an asynchronous shutdown from a
         pool worker would, making the consult sequence
         timing-dependent).  [conn.read] models a transport reset
         while reading a request; [conn.drop] a hang-up between
         requests (an idle kill).  Either way the just-read bytes are
         discarded and the connection is torn down below; the peer
         re-issues on a fresh connection. *)
      if Fault.should_fail "conn.read" then ()
      else if Fault.should_fail "conn.drop" then ()
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        if drain_lines 0 then
          if Buffer.length buf > Protocol.max_line_bytes then
            write_line conn
              (Protocol.error_reply ~id:Json.Null ~code:"parse_error"
                 ~detail:
                   (Printf.sprintf "request line exceeds %d bytes"
                      Protocol.max_line_bytes))
          else loop ()
      end
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> ()
  in
  loop ();
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  locked t.conns_lock (fun () -> Hashtbl.remove t.conns conn.cid)

(* ------------------------------ create ------------------------------ *)

(* Bind a Unix socket, coping with a stale socket file left by a
   SIGKILLed predecessor: a path that IS a socket gets probed with a
   connect — refused/unreachable means dead owner, so unlink and take
   over; answered means another daemon is live, so fail loudly.  A
   path that exists but is NOT a socket is never unlinked (the store
   journal, say, must not be clobbered by a mistyped --socket). *)
let bind_unix path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect probe (ADDR_UNIX path) with
    | () ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      failwith
        (Printf.sprintf "Daemon.create: a server is already listening on %s" path)
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception e ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      raise e)
  | { Unix.st_kind = _; _ } ->
    failwith
      (Printf.sprintf "Daemon.create: %s exists and is not a socket; refusing to unlink"
         path)
  | exception Unix.Unix_error (ENOENT, _, _) -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let create cfg =
  (* A peer hanging up mid-reply must surface as EPIPE on the write,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Store before socket: an unusable store path must not leave a
     bound socket (or a just-unlinked stale one) behind. *)
  let store_ =
    Option.map (fun p -> Store.open_ ~fsync_every:cfg.fsync_every p) cfg.store_path
  in
  let listen_fd =
    match cfg.listen with
    | Unix_sock path -> (
      try bind_unix path
      with e ->
        Option.iter Store.close store_;
        raise e)
    | Tcp port ->
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let t =
    {
      cfg;
      pool = Engine.Pool.create ?jobs:cfg.jobs ();
      store_;
      queue = Admission.create ~capacity:cfg.queue_capacity;
      batcher = None;
      draining = Atomic.make false;
      pipe_r;
      pipe_w;
      listen_fd;
      conns = Hashtbl.create 16;
      conn_threads = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      inflight = Hashtbl.create 64;
      inflight_lock = Mutex.create ();
      next_id = Atomic.make 0;
      n_accepted = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_batches = Atomic.make 0;
      n_batched = Atomic.make 0;
    }
  in
  t.batcher <-
    Some
      (Batcher.start ~queue:t.queue ~workers:cfg.max_inflight ~batch_max:cfg.batch_max
         ~compatible ~handle:(handle_batch t));
  t

let port t =
  match Unix.getsockname t.listen_fd with
  | ADDR_INET (_, port) -> Some port
  | ADDR_UNIX _ -> None

(* -------------------------------- run ------------------------------- *)

let run t =
  let cid = ref 0 in
  let rec accept_loop () =
    if not (Atomic.get t.draining) then begin
      match Unix.select [ t.listen_fd; t.pipe_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | readable, _, _ ->
        if List.mem t.pipe_r readable then begin
          (* A signal handler or a [drain] request woke us. *)
          (try ignore (Unix.read t.pipe_r (Bytes.create 16) 0 16) with _ -> ());
          initiate_drain t
        end
        else begin
          (if List.mem t.listen_fd readable then
             match Unix.accept t.listen_fd with
             | fd, _ ->
               (* An injected [daemon.accept] fault closes the freshly
                  accepted connection before it is ever serviced — the
                  peer sees an immediate EOF and reconnects. *)
               if Fault.should_fail "daemon.accept" then (
                 try Unix.close fd with Unix.Unix_error _ -> ())
               else begin
                 incr cid;
                 let conn = { fd; wlock = Mutex.create (); cid = !cid } in
                 Obs.Metrics.incr m_conns;
                 locked t.conns_lock (fun () ->
                     Hashtbl.replace t.conns conn.cid conn;
                     Hashtbl.replace t.conn_threads conn.cid
                       (Thread.create (fun () -> conn_loop t conn) ()))
               end
             | exception Unix.Unix_error _ -> ());
          accept_loop ()
        end
    end
  in
  accept_loop ();
  initiate_drain t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.listen with
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  (* Workers first: every accepted request still gets its reply
     before the sockets go away. *)
  Option.iter Batcher.join t.batcher;
  let conns = locked t.conns_lock (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []) in
  List.iter
    (fun c -> try Unix.shutdown c.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  let threads =
    locked t.conns_lock (fun () ->
        Hashtbl.fold (fun _ th acc -> th :: acc) t.conn_threads [])
  in
  List.iter Thread.join threads;
  Option.iter Store.close t.store_;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
