type listen = Unix_sock of string | Tcp of int

type config = {
  listen : listen;
  jobs : int option;
  max_inflight : int;
  queue_capacity : int;
  batch_max : int;
  store_path : string option;
  snapshot_path : string option;
  fsync_every : int;
  max_transport : Wire.version;
  admission_min : int;
  admission_target_ms : float;
}

let default_config listen =
  {
    listen;
    jobs = None;
    max_inflight = 2;
    queue_capacity = 256;
    batch_max = 32;
    store_path = None;
    snapshot_path = None;
    fsync_every = 32;
    max_transport = Wire.V2;
    admission_min = 4;
    admission_target_ms = 250.;
  }

(* -------------------------- output buffers -------------------------- *)

(* A growable byte queue per connection: replies append at the tail,
   the nonblocking flush consumes from the head.  Reused for the
   connection's whole life — the warm path never allocates a fresh
   buffer per reply. *)
module Outbuf = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create n = { buf = Bytes.create n; start = 0; len = 0 }
  let length b = b.len

  let add b s =
    let n = String.length s in
    let cap = Bytes.length b.buf in
    if b.start + b.len + n > cap then begin
      if b.start > 0 then Bytes.blit b.buf b.start b.buf 0 b.len;
      b.start <- 0;
      if b.len + n > cap then begin
        let rec grow c = if c >= b.len + n then c else grow (2 * c) in
        let buf' = Bytes.create (grow (max cap 64)) in
        Bytes.blit b.buf 0 buf' 0 b.len;
        b.buf <- buf'
      end
    end;
    Bytes.blit_string s 0 b.buf (b.start + b.len) n;
    b.len <- b.len + n

  let consume b n =
    b.start <- b.start + n;
    b.len <- b.len - n;
    if b.len = 0 then b.start <- 0

  let clear b =
    b.start <- 0;
    b.len <- 0
end

type conn = {
  cid : int;
  fd : Unix.file_descr;
  dec : Wire.decoder;  (* loop-thread only *)
  out : Outbuf.t;
  olock : Mutex.t;
  (* [version], [dead] and [out] are shared between the loop and the
     batcher workers; all three are read and written under [olock], so
     a reply is always encoded in the version current at its position
     in the output stream (the hello switch happens under the same
     lock, between the ack bytes and whatever is appended next). *)
  mutable version : Wire.version;
  mutable dead : bool;
  mutable closing : bool;  (* loop-thread only: drop after output drains *)
}

(* Waiters carry their own (mu, T): singleflight groups key on the
   family (T alone), so members may ask about different instances of
   the leader's family. *)
type waiter = {
  w_conn : conn;
  w_id : Json.t;
  w_bin : bool;
  w_mu : int array;
  w_tmat : Intmat.t;
}

type job = {
  rid : int;
  env : Protocol.envelope;
  budget : Engine.Budget.t;
  jconn : conn;
  enqueued_at : float;
  sf : (int * string) option;  (* singleflight (hash, key) of an analyze leader *)
}

type t = {
  cfg : config;
  pool : Engine.Pool.t;
  store_ : Store.t option;
  queue : job Admission.t;
  limiter : Limiter.t;
  mutable batcher : job Batcher.t option;
  draining : bool Atomic.t;
  aborting : bool Atomic.t;
  workers_done : bool Atomic.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  listen_fd : Unix.file_descr;
  bound_port : int option;
  conns : (int, conn) Hashtbl.t;
  conns_lock : Mutex.t;
  sflight : waiter Singleflight.t;
  inflight : (int, Engine.Budget.t) Hashtbl.t;
  inflight_lock : Mutex.t;
  next_id : int Atomic.t;
  next_cid : int Atomic.t;
  (* Per-server counts (the [Obs.Metrics] counters are process-wide,
     and the tests run several servers in one process). *)
  n_accepted : int Atomic.t;
  n_shed : int Atomic.t;
  n_batches : int Atomic.t;
  n_batched : int Atomic.t;
  n_fastpath : int Atomic.t;
  n_family_fastpath : int Atomic.t;
  n_binary : int Atomic.t;
  n_deadline_exceeded : int Atomic.t;
}

let m_accepted = Obs.Metrics.counter "server.accepted"
let m_shed = Obs.Metrics.counter "server.shed"
let m_batches = Obs.Metrics.counter "server.batches"
let m_batched = Obs.Metrics.counter "server.batched"
let m_conns = Obs.Metrics.counter "server.connections"
let m_fastpath = Obs.Metrics.counter "server.fastpath"
let m_family_fastpath = Obs.Metrics.counter "server.family_fastpath"
let m_coalesced = Obs.Metrics.counter "server.singleflight.coalesced"
let m_deadline_exceeded = Obs.Metrics.counter "server.deadline_exceeded"
let g_queue_depth = Obs.Metrics.gauge "server.queue_depth"
let h_request_ms = Obs.Metrics.histogram "server.request_ms"

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------- wakeup ------------------------------ *)

(* The self-pipe carries two byte values: ['d'] asks for a drain (the
   public, async-signal-safe {!wake}), ['w'] merely interrupts the
   poll so the loop re-reads shared state — workers send it after
   queueing output for a descriptor the loop is not yet watching for
   writability. *)
let wake t = try ignore (Unix.write t.pipe_w (Bytes.of_string "d") 0 1) with _ -> ()
let wake_loop t = try ignore (Unix.write t.pipe_w (Bytes.of_string "w") 0 1) with _ -> ()

let initiate_drain t =
  if not (Atomic.exchange t.draining true) then begin
    (* Already-running and already-queued requests finish fast: their
       budgets are cancelled, so analysis degrades to the bounded
       lattice path instead of completing at leisure or vanishing. *)
    locked t.inflight_lock (fun () ->
        Hashtbl.iter (fun _ b -> Engine.Budget.cancel b) t.inflight);
    Admission.close t.queue;
    wake t
  end

(* ------------------------------ replies ----------------------------- *)

(* Flush as much pending output as the socket accepts right now; the
   remainder stays queued and the loop polls for writability.  A dead
   peer is not an error — the bytes are simply dropped (the read side
   will observe the hangup and tear the connection down). *)
let flush_locked conn =
  let rec go () =
    if conn.out.Outbuf.len > 0 then
      match
        Unix.write conn.fd conn.out.Outbuf.buf conn.out.Outbuf.start
          conn.out.Outbuf.len
      with
      | 0 -> ()
      | n ->
        Outbuf.consume conn.out n;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        Outbuf.clear conn.out
  in
  go ()

(* Append one encoded message to the connection's output stream.  With
   [defer] the bytes are only queued — the event loop batches one
   flush per readiness event, so a pipelined burst of replies costs
   one [write] instead of one per reply.  Workers flush eagerly and
   wake the loop if the socket would block. *)
let send t conn ?(defer = false) make =
  Mutex.lock conn.olock;
  if conn.dead then Mutex.unlock conn.olock
  else begin
    let pending =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock conn.olock)
        (fun () ->
          Outbuf.add conn.out (make conn.version);
          if not defer then flush_locked conn;
          (not defer) && Outbuf.length conn.out > 0)
    in
    if pending then wake_loop t
  end

(* Every reply write consults the [conn.write] fault site first, as
   before the event-loop rewrite: a fired fault swallows the reply
   and shuts the connection down, so the peer observes EOF instead of
   silence and can retry promptly. *)
let send_reply t conn ?defer make =
  if Fault.should_fail "conn.write" then
    locked conn.olock (fun () ->
        if not conn.dead then
          try Unix.shutdown conn.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  else send t conn ?defer make

let send_doc t conn ?defer json =
  send_reply t conn ?defer (fun version ->
      Wire.encode version (Wire.Text (Json.to_string json)))

(* An analyze result fans out to each singleflight waiter in the
   waiter's own dialect: waiters whose request arrived as a binary
   ['A'] frame get a compact ['V'] frame, everyone else the JSON
   reply document. *)
let send_analyze t w ?defer (wire, status) =
  match w.w_id with
  | Json.Int id when w.w_bin ->
    send_reply t w.w_conn ?defer (fun version ->
        match version with
        | Wire.V2 -> Wire.encode Wire.V2 (Wire.Bin_verdict { id; verdict = wire; store = status })
        | Wire.V1 ->
          Wire.encode Wire.V1
            (Wire.Text
               (Json.to_string
                  (Protocol.ok_reply ~id:w.w_id ~op:"analyze"
                     (Handlers.fields_of_analyze (wire, status))))))
  | _ ->
    send_doc t w.w_conn ?defer
      (Protocol.ok_reply ~id:w.w_id ~op:"analyze"
         (Handlers.fields_of_analyze (wire, status)))

(* ------------------------------ batches ----------------------------- *)

let compatible a b =
  match (a.env.Protocol.req, b.env.Protocol.req) with
  | Protocol.Analyze _, Protocol.Analyze _ -> true
  | Protocol.Replay _, Protocol.Replay _ -> true
  | _ -> false

let unregister t rid =
  locked t.inflight_lock (fun () -> Hashtbl.remove t.inflight rid)

let serve_job t job =
  let op = Protocol.op_name job.env.Protocol.req in
  (* A fresh span stack per request: pool workers run in their own
     domain, so the request subtree is not entangled with the
     server's own spans. *)
  Obs.Trace.with_parent None (fun () ->
      Obs.Trace.with_span "server.request"
        ~args:[ ("op", op); ("rid", string_of_int job.rid) ]
        (fun () ->
          match (job.sf, job.env.Protocol.req) with
          | Some (hash, key), Protocol.Analyze { mu; tmat; _ } ->
            (* The group is keyed on the family (T alone): the leader
               computes its own instance once — populating the family
               cache as a side effect — then journals the family
               verdict and fans out.  Waiters on the same mu reuse the
               leader's result (and its single store append inside
               [analyze_wire]); waiters on other instances of the
               family re-enter [analyze_wire], which now replays the
               warm family in O(atoms). *)
            let result =
              match Handlers.analyze_wire ~store:t.store_ ~budget:job.budget ~mu tmat with
              | r -> Ok r
              | exception exn -> Error (Printexc.to_string exn)
            in
            (match result with
            | Ok _ ->
              Option.iter
                (fun s ->
                  try Store.add_family s tmat (Analysis.family tmat)
                  with Fault.Injected _ | Sys_error _ | Unix.Unix_error _ -> ())
                t.store_
            | Error _ -> ());
            let waiters = Singleflight.complete t.sflight ~hash ~key in
            List.iter
              (fun w ->
                match result with
                | Ok r ->
                  if w.w_mu = mu then send_analyze t w r
                  else (
                    match
                      Handlers.analyze_wire ~store:t.store_ ~budget:job.budget
                        ~mu:w.w_mu w.w_tmat
                    with
                    | r' -> send_analyze t w r'
                    | exception exn ->
                      send_doc t w.w_conn
                        (Protocol.error_reply ~id:w.w_id ~code:"internal"
                           ~detail:(Printexc.to_string exn)))
                | Error msg ->
                  send_doc t w.w_conn
                    (Protocol.error_reply ~id:w.w_id ~code:"internal" ~detail:msg))
              waiters
          | _ ->
            let reply =
              match
                Handlers.execute ~pool:t.pool ~store:t.store_ ~budget:job.budget
                  job.env.Protocol.req
              with
              | fields -> Protocol.ok_reply ~id:job.env.Protocol.id ~op fields
              | exception Handlers.Bad_request msg ->
                Protocol.error_reply ~id:job.env.Protocol.id ~code:"bad_request"
                  ~detail:msg
              | exception exn ->
                Protocol.error_reply ~id:job.env.Protocol.id ~code:"internal"
                  ~detail:(Printexc.to_string exn)
            in
            send_doc t job.jconn reply));
  unregister t job.rid;
  let latency_ms = 1000. *. (Unix.gettimeofday () -. job.enqueued_at) in
  (* Admission-to-completion latency feeds the AIMD loop: queue wait
     counts, so a backlog is itself the overload signal. *)
  Limiter.release t.limiter ~latency_ms;
  Obs.Metrics.observe h_request_ms latency_ms

(* SIGKILL-grade shutdown: refuse new work, cancel running budgets,
   discard everything still queued and (in the loop) slam connections
   without flushing queued replies.  Unlike [initiate_drain] nothing
   graceful happens — this is how the cluster chaos harness models a
   hard kill of an in-process shard (docs/CLUSTER.md). *)
let abort t =
  if not (Atomic.exchange t.aborting true) then begin
    Atomic.set t.draining true;
    locked t.inflight_lock (fun () ->
        Hashtbl.iter (fun _ b -> Engine.Budget.cancel b) t.inflight);
    let dropped = Admission.abort t.queue in
    List.iter
      (fun j ->
        unregister t j.rid;
        Limiter.release t.limiter ~latency_ms:0.)
      dropped;
    wake_loop t
  end

let handle_batch t batch =
  Atomic.incr t.n_batches;
  ignore (Atomic.fetch_and_add t.n_batched (List.length batch));
  Obs.Metrics.incr m_batches;
  Obs.Metrics.add m_batched (List.length batch);
  Obs.Metrics.set_gauge g_queue_depth (float_of_int (Admission.length t.queue));
  ignore (Engine.Pool.map t.pool (fun job -> serve_job t job) batch)

(* ------------------------------- stats ------------------------------ *)

let store t = t.store_
let worker_deaths t = match t.batcher with Some b -> Batcher.deaths b | None -> 0

let stats_fields t =
  let groups, coalesced = Singleflight.stats t.sflight in
  let base =
    [
      ("queue_depth", Json.Int (Admission.length t.queue));
      ("draining", Json.Bool (Atomic.get t.draining));
      ("accepted", Json.Int (Atomic.get t.n_accepted));
      ("shed", Json.Int (Atomic.get t.n_shed));
      ("deadline_exceeded", Json.Int (Atomic.get t.n_deadline_exceeded));
      ( "admission",
        Json.Obj
          [
            ("limit", Json.Int (Limiter.limit t.limiter));
            ("inflight", Json.Int (Limiter.inflight t.limiter));
            ("rejected", Json.Int (Limiter.rejected t.limiter));
            ("decreases", Json.Int (Limiter.decreases t.limiter));
          ] );
      ("batches", Json.Int (Atomic.get t.n_batches));
      ("batched", Json.Int (Atomic.get t.n_batched));
      ("fastpath", Json.Int (Atomic.get t.n_fastpath));
      ( "family",
        Json.Obj [ ("fastpath", Json.Int (Atomic.get t.n_family_fastpath)) ] );
      ( "singleflight",
        Json.Obj [ ("groups", Json.Int groups); ("coalesced", Json.Int coalesced) ] );
      ( "transport",
        Json.Obj
          [
            ("max", Json.Str (Wire.version_name t.cfg.max_transport));
            ("binary_negotiated", Json.Int (Atomic.get t.n_binary));
          ] );
      ("worker_deaths", Json.Int (worker_deaths t));
      ("jobs", Json.Int (Engine.Pool.jobs t.pool));
    ]
  in
  match t.store_ with
  | None -> base @ [ ("store", Json.Null) ]
  | Some s ->
    let st = Store.stats s in
    base
    @ [
        ( "store",
          Json.Obj
            [
              ("entries", Json.Int st.Store.entries);
              ("hits", Json.Int st.Store.hits);
              ("misses", Json.Int st.Store.misses);
              ("appended", Json.Int st.Store.appended);
              ("loaded", Json.Int st.Store.loaded);
              ("families", Json.Int st.Store.families);
              ("f_appended", Json.Int st.Store.f_appended);
              ("f_loaded", Json.Int st.Store.f_loaded);
              ("dropped_bytes", Json.Int st.Store.dropped_bytes);
              ("quarantined", Json.Int st.Store.quarantined);
              ("healed", Json.Int st.Store.healed);
              ("io_errors", Json.Int st.Store.io_errors);
              ("snap_entries", Json.Int st.Store.snap_entries);
              ("snap_hits", Json.Int st.Store.snap_hits);
              ("snap_corrupt", Json.Int st.Store.snap_corrupt);
              ("open_ms", Json.Float st.Store.open_ms);
              ("provenance", Json.Str st.Store.provenance);
            ] );
      ]

(* ----------------------------- dispatch ----------------------------- *)

(* Everything below runs on the single event-loop thread, so all fault
   consults — [daemon.accept], [conn.read], [conn.drop], [conn.write]
   for inline replies — stay totally ordered with the request stream,
   exactly as the per-connection reader threads ordered them before
   the rewrite (docs/RESILIENCE.md). *)

(* Loop-inline work gets its own span root per request: the event-loop
   thread's span stack is its own (per-thread stacks in [Obs.Trace]),
   and [with_parent None] roots the request subtree so fastpath spans
   are never children of whatever the loop happened to have open. *)
let with_loop_span ~path f =
  Obs.Trace.with_parent None (fun () ->
      Obs.Trace.with_span "server.request"
        ~args:[ ("op", "analyze"); ("path", path) ]
        f)

let deadline_exceeded_reply t conn ~id =
  Atomic.incr t.n_deadline_exceeded;
  Obs.Metrics.incr m_deadline_exceeded;
  send_doc t conn ~defer:true
    (Protocol.error_reply ~id ~code:"deadline_exceeded"
       ~detail:"request deadline already spent")

let handle_analyze t conn ~bin ~id ~mu ~tmat ~deadline_ms =
  if Atomic.get t.draining then
    send_doc t conn ~defer:true
      (Protocol.error_reply ~id ~code:"draining" ~detail:"server is draining")
  else if match deadline_ms with Some d -> d <= 0 | None -> false then
    (* The budget was spent before the request arrived (the router
       stamps the remaining budget on each forwarded frame): answer
       without touching the store or dispatching any analysis. *)
    deadline_exceeded_reply t conn ~id
  else
    let w = { w_conn = conn; w_id = id; w_bin = bin; w_mu = mu; w_tmat = tmat } in
    match Option.bind t.store_ (fun s -> Store.find s ~mu tmat) with
    | Some e ->
      (* Warm fast path: a stored verdict is encoded straight from the
         event loop — no queue, no batcher, no pool handoff. *)
      with_loop_span ~path:"fastpath" (fun () ->
          Atomic.incr t.n_fastpath;
          Obs.Metrics.incr m_fastpath;
          send_analyze t ~defer:true w (Protocol.wire_of_entry e, "hit"))
    | None -> (
      let family_verdict =
        match t.store_ with
        | None -> None
        | Some s ->
          Option.bind (Store.find_family s tmat) (fun fam ->
              match Analysis.eval_family fam ~mu with
              | v -> Option.map (fun v -> (s, v)) v
              | exception Invalid_argument _ -> None)
      in
      match family_verdict with
      | Some (s, v) ->
        (* Family fast path: a journaled family verdict decides this
           instance in O(atoms) of its piecewise condition, still
           inline on the event loop.  The concrete entry it implies is
           appended so the next identical query is a plain hit; as in
           [Handlers.analyze_wire], a failed append degrades the
           status, never the verdict. *)
        with_loop_span ~path:"family" (fun () ->
            let e = Store.entry_of_verdict v in
            Atomic.incr t.n_family_fastpath;
            Obs.Metrics.incr m_family_fastpath;
            let status =
              match Store.add s ~mu tmat e with
              | () -> "family"
              | exception (Fault.Injected _ | Sys_error _ | Unix.Unix_error _) ->
                "error"
            in
            send_analyze t ~defer:true w (Protocol.wire_of_entry e, status))
      | None -> (
        (* Singleflight groups key on the family (T alone): one
           leader's symbolic analysis serves every coalesced
           instance. *)
        let hash = Store.family_hash tmat and key = Store.family_key_string tmat in
        match Singleflight.join t.sflight ~hash ~key w with
      | `Follower -> Obs.Metrics.incr m_coalesced
      | `Leader ->
        (* Adaptive admission: the AIMD limiter gates queued compute
           work only — ping/stats/drain/hello/ship are answered inline
           above and can never shed behind analyze traffic. *)
        let shed_group detail =
          Atomic.incr t.n_shed;
          Obs.Metrics.incr m_shed;
          (* The whole group sheds: followers joined an admission that
             never happened. *)
          let ws = Singleflight.complete t.sflight ~hash ~key in
          List.iter
            (fun w ->
              send_doc t w.w_conn ~defer:true
                (Protocol.error_reply ~id:w.w_id ~code:"overloaded" ~detail))
            ws
        in
        if not (Limiter.try_admit t.limiter) then
          shed_group
            (Printf.sprintf "admission limit reached (%d inflight)"
               (Limiter.limit t.limiter))
        else begin
          let rid = Atomic.fetch_and_add t.next_id 1 in
          let budget = Engine.Budget.make ?deadline_ms () in
          locked t.inflight_lock (fun () -> Hashtbl.replace t.inflight rid budget);
          let job =
            {
              rid;
              env = { Protocol.id; req = Protocol.Analyze { mu; tmat; deadline_ms } };
              budget;
              jconn = conn;
              enqueued_at = Unix.gettimeofday ();
              sf = Some (hash, key);
            }
          in
          if Admission.try_push t.queue job then begin
            Atomic.incr t.n_accepted;
            Obs.Metrics.incr m_accepted;
            Obs.Metrics.set_gauge g_queue_depth (float_of_int (Admission.length t.queue))
          end
          else begin
            unregister t rid;
            (* A full queue is itself an overload signal: release with
               an over-target latency so the limiter backs off. *)
            Limiter.release t.limiter ~latency_ms:Float.infinity;
            shed_group
              (Printf.sprintf "queue full (%d requests)" t.cfg.queue_capacity)
          end
        end))

let handle_envelope t conn ~bin (env : Protocol.envelope) =
  let id = env.Protocol.id in
  let op = Protocol.op_name env.Protocol.req in
  match env.Protocol.req with
  | Protocol.Analyze { mu; tmat; deadline_ms } ->
    handle_analyze t conn ~bin ~id ~mu ~tmat ~deadline_ms
  | Protocol.Ship { seq; line } ->
    (* Answered inline like ping: applying a shipped record is one
       store call, and keeping it off the pool preserves ship-order
       per connection (the shipper pipelines on one session). *)
    let reply =
      if Atomic.get t.draining then
        Protocol.error_reply ~id ~code:"draining" ~detail:"server is draining"
      else
        match t.store_ with
        | None -> Protocol.error_reply ~id ~code:"bad_request" ~detail:"no store attached"
        | Some s -> (
          match Store.ingest_line s line with
          | Ok () -> Protocol.ok_reply ~id ~op [ ("watermark", Json.Int seq) ]
          | Error msg ->
            Protocol.error_reply ~id ~code:"bad_request"
              ~detail:("bad ship record: " ^ msg)
          | exception (Fault.Injected _ | Sys_error _ | Unix.Unix_error _) ->
            (* The record is not applied; an [internal] reply is not
               retried by sessions, so surface it as [overloaded] —
               the shipper re-ships from its watermark. *)
            Protocol.error_reply ~id ~code:"overloaded" ~detail:"ship append failed")
    in
    send_doc t conn ~defer:true reply
  | Protocol.Ping -> send_doc t conn ~defer:true (Protocol.ok_reply ~id ~op [])
  | Protocol.Stats ->
    send_doc t conn ~defer:true (Protocol.ok_reply ~id ~op (stats_fields t))
  | Protocol.Drain ->
    send_doc t conn ~defer:true (Protocol.ok_reply ~id ~op [ ("draining", Json.Bool true) ]);
    initiate_drain t
  | Protocol.Hello { transport } -> (
    let accepted =
      match Wire.version_of_name transport with
      | Some Wire.V1 -> Some Wire.V1
      | Some Wire.V2 when t.cfg.max_transport = Wire.V2 -> Some Wire.V2
      | Some Wire.V2 | None -> None
    in
    match accepted with
    | None ->
      send_doc t conn ~defer:true
        (Protocol.error_reply ~id ~code:"bad_request"
           ~detail:(Printf.sprintf "unknown or disabled transport %S" transport))
    | Some v ->
      (* Ack in the current dialect, then switch both directions under
         [olock], so any reply encoded after this point — including
         one from a concurrently finishing worker — lands after the
         ack bytes in the new dialect, exactly where the peer switches
         its own decoder. *)
      locked conn.olock (fun () ->
          if not conn.dead then begin
            Outbuf.add conn.out
              (Wire.encode conn.version
                 (Wire.Text
                    (Json.to_string
                       (Protocol.ok_reply ~id ~op
                          [ ("transport", Json.Str (Wire.version_name v)) ]))));
            conn.version <- v
          end);
      Wire.set_version conn.dec v;
      if v = Wire.V2 then Atomic.incr t.n_binary)
  | Protocol.Search _ | Protocol.Simulate _ | Protocol.Replay _ ->
    let deadline_ms = Protocol.deadline_ms env.Protocol.req in
    if Atomic.get t.draining then
      send_doc t conn ~defer:true
        (Protocol.error_reply ~id ~code:"draining" ~detail:"server is draining")
    else if match deadline_ms with Some d -> d <= 0 | None -> false then
      deadline_exceeded_reply t conn ~id
    else if not (Limiter.try_admit t.limiter) then begin
      Atomic.incr t.n_shed;
      Obs.Metrics.incr m_shed;
      send_doc t conn ~defer:true
        (Protocol.error_reply ~id ~code:"overloaded"
           ~detail:
             (Printf.sprintf "admission limit reached (%d inflight)"
                (Limiter.limit t.limiter)))
    end
    else begin
      let rid = Atomic.fetch_and_add t.next_id 1 in
      let budget = Engine.Budget.make ?deadline_ms () in
      locked t.inflight_lock (fun () -> Hashtbl.replace t.inflight rid budget);
      let job =
        { rid; env; budget; jconn = conn; enqueued_at = Unix.gettimeofday (); sf = None }
      in
      if Admission.try_push t.queue job then begin
        Atomic.incr t.n_accepted;
        Obs.Metrics.incr m_accepted;
        Obs.Metrics.set_gauge g_queue_depth (float_of_int (Admission.length t.queue))
      end
      else begin
        unregister t rid;
        Limiter.release t.limiter ~latency_ms:Float.infinity;
        Atomic.incr t.n_shed;
        Obs.Metrics.incr m_shed;
        send_doc t conn ~defer:true
          (Protocol.error_reply ~id ~code:"overloaded"
             ~detail:(Printf.sprintf "queue full (%d requests)" t.cfg.queue_capacity))
      end
    end

let handle_frame t conn frame =
  match frame with
  | Wire.Text line -> (
    match Json.parse ~max_bytes:Protocol.max_line_bytes line with
    | Error msg ->
      send_doc t conn ~defer:true
        (Protocol.error_reply ~id:Json.Null ~code:"parse_error" ~detail:msg)
    | Ok json -> (
      match Protocol.parse_request json with
      | Error msg ->
        send_doc t conn ~defer:true
          (Protocol.error_reply ~id:(Protocol.reply_id json) ~code:"bad_request"
             ~detail:msg)
      | Ok env -> handle_envelope t conn ~bin:false env))
  | Wire.Bin_analyze { id; deadline_ms; mu; tmat } ->
    if Array.length mu <> Intmat.cols tmat then
      send_doc t conn ~defer:true
        (Protocol.error_reply ~id:(Json.Int id) ~code:"bad_request"
           ~detail:"mu arity does not match t columns")
    else if Array.exists (fun m -> m < 1) mu then
      send_doc t conn ~defer:true
        (Protocol.error_reply ~id:(Json.Int id) ~code:"bad_request"
           ~detail:"mu entries must be >= 1")
    else handle_analyze t conn ~bin:true ~id:(Json.Int id) ~mu ~tmat ~deadline_ms
  | Wire.Bin_verdict _ ->
    send_doc t conn ~defer:true
      (Protocol.error_reply ~id:Json.Null ~code:"bad_request"
         ~detail:"verdict frames flow server to client only")

(* ------------------------------ create ------------------------------ *)

(* Bind a Unix socket, coping with a stale socket file left by a
   SIGKILLed predecessor: a path that IS a socket gets probed with a
   connect — refused/unreachable means dead owner, so unlink and take
   over; answered means another daemon is live, so fail loudly.  A
   path that exists but is NOT a socket is never unlinked (the store
   journal, say, must not be clobbered by a mistyped --socket). *)
let bind_unix path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect probe (ADDR_UNIX path) with
    | () ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      failwith
        (Printf.sprintf "Daemon.create: a server is already listening on %s" path)
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception e ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      raise e)
  | { Unix.st_kind = _; _ } ->
    failwith
      (Printf.sprintf "Daemon.create: %s exists and is not a socket; refusing to unlink"
         path)
  | exception Unix.Unix_error (ENOENT, _, _) -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let create cfg =
  (* A peer hanging up mid-reply must surface as EPIPE on the write,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Store before socket: an unusable store path must not leave a
     bound socket (or a just-unlinked stale one) behind. *)
  let store_ =
    Option.map
      (fun p -> Store.open_ ~fsync_every:cfg.fsync_every ?snapshot:cfg.snapshot_path p)
      cfg.store_path
  in
  let listen_fd =
    match cfg.listen with
    | Unix_sock path -> (
      try bind_unix path
      with e ->
        Option.iter Store.close store_;
        raise e)
    | Tcp port ->
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd
  in
  let bound_port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, port) -> Some port
    | ADDR_UNIX _ -> None
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let t =
    {
      cfg;
      pool = Engine.Pool.create ?jobs:cfg.jobs ();
      store_;
      queue = Admission.create ~capacity:cfg.queue_capacity;
      limiter =
        Limiter.create ~min_limit:cfg.admission_min
          ~target_ms:cfg.admission_target_ms ~max_limit:cfg.queue_capacity ();
      batcher = None;
      draining = Atomic.make false;
      aborting = Atomic.make false;
      workers_done = Atomic.make false;
      pipe_r;
      pipe_w;
      listen_fd;
      bound_port;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      sflight = Singleflight.create ();
      inflight = Hashtbl.create 64;
      inflight_lock = Mutex.create ();
      next_id = Atomic.make 0;
      next_cid = Atomic.make 1;
      n_accepted = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_batches = Atomic.make 0;
      n_batched = Atomic.make 0;
      n_fastpath = Atomic.make 0;
      n_family_fastpath = Atomic.make 0;
      n_binary = Atomic.make 0;
      n_deadline_exceeded = Atomic.make 0;
    }
  in
  t.batcher <-
    Some
      (Batcher.start ~queue:t.queue ~workers:cfg.max_inflight ~batch_max:cfg.batch_max
         ~compatible ~handle:(handle_batch t));
  t

let port t = t.bound_port

(* -------------------------------- run ------------------------------- *)

let teardown t fdmap conn =
  locked conn.olock (fun () ->
      if not conn.dead then begin
        conn.dead <- true;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end);
  Hashtbl.remove fdmap conn.fd;
  locked t.conns_lock (fun () -> Hashtbl.remove t.conns conn.cid)

let rec drain_frames t fdmap conn =
  if not (conn.closing || conn.dead) then
    match Wire.next conn.dec with
    | Wire.Need_more -> ()
    | Wire.Frame f ->
      handle_frame t conn f;
      drain_frames t fdmap conn
    | Wire.Corrupt msg ->
      (* One structured reply, then drop — same contract for an
         oversized binary frame as for an oversized JSON line (there
         is no way to resynchronize a corrupt stream anyway). *)
      send_doc t conn ~defer:true
        (Protocol.error_reply ~id:Json.Null ~code:"parse_error" ~detail:msg);
      conn.closing <- true

let service_read t fdmap conn chunk =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> teardown t fdmap conn
  | n ->
    (* Both connection-fault sites are consulted here, after a
       successful read, so the decisions are ordered with the peer's
       request stream — the peer sending these bytes proves it has
       consumed every earlier reply, so tearing down now can never
       race a reply still in flight.  [conn.read] models a transport
       reset while reading a request; [conn.drop] a hang-up between
       requests.  Either way the just-read bytes are discarded and the
       connection is torn down; the peer re-issues on a fresh
       connection.  [conn.slow] first: a gray failure stalls the whole
       event loop for the plan's delay — the slow-shard scenario the
       hedging and breaker machinery exists for — without failing
       anything (ambient, never logged per event). *)
    Fault.stall "conn.slow";
    if Fault.should_fail "conn.read" then teardown t fdmap conn
    else if Fault.should_fail "conn.drop" then teardown t fdmap conn
    else begin
      Wire.feed conn.dec chunk 0 n;
      drain_frames t fdmap conn;
      (* One flush for the whole burst of inline replies. *)
      let pending =
        locked conn.olock (fun () ->
            if conn.dead then false
            else begin
              flush_locked conn;
              Outbuf.length conn.out > 0
            end)
      in
      if conn.closing && not pending then teardown t fdmap conn
    end
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
    teardown t fdmap conn

let accept_burst t fdmap =
  let rec go budget =
    if budget > 0 then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (* An injected [daemon.accept] fault closes the freshly
           accepted connection before it is ever serviced — the peer
           sees an immediate EOF and reconnects. *)
        if Fault.should_fail "daemon.accept" then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          go (budget - 1))
        else begin
          Unix.set_nonblock fd;
          let conn =
            {
              cid = Atomic.fetch_and_add t.next_cid 1;
              fd;
              dec = Wire.decoder Wire.V1;
              out = Outbuf.create 4096;
              olock = Mutex.create ();
              version = Wire.V1;
              dead = false;
              closing = false;
            }
          in
          Obs.Metrics.incr m_conns;
          Hashtbl.replace fdmap fd conn;
          locked t.conns_lock (fun () -> Hashtbl.replace t.conns conn.cid conn);
          go (budget - 1)
        end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
  in
  go 128

let run t =
  let chunk = Bytes.create 65536 in
  let pipe_buf = Bytes.create 256 in
  Unix.set_nonblock t.listen_fd;
  Unix.set_nonblock t.pipe_r;
  let fdmap : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let drain_seen = ref false in
  let flush_deadline = ref infinity in
  let service_pipe () =
    match Unix.read t.pipe_r pipe_buf 0 (Bytes.length pipe_buf) with
    | 0 -> ()
    | n ->
      let drain = ref false in
      for i = 0 to n - 1 do
        if Bytes.get pipe_buf i = 'd' then drain := true
      done;
      if !drain then initiate_drain t
    | exception Unix.Unix_error _ -> ()
  in
  let conn_pending conn = locked conn.olock (fun () -> Outbuf.length conn.out > 0) in
  let abort_seen = ref false in
  let rec loop () =
    if Atomic.get t.aborting && not !abort_seen then begin
      abort_seen := true;
      drain_seen := true;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (match t.cfg.listen with
      | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ());
      (* Slam every connection: queued replies are dropped unflushed,
         exactly as a killed process would drop them.  Workers still
         finishing a batch send into dead connections, which is a
         no-op. *)
      Hashtbl.fold (fun _ c acc -> c :: acc) fdmap []
      |> List.iter (fun c ->
             locked c.olock (fun () -> Outbuf.clear c.out);
             teardown t fdmap c);
      Atomic.set t.workers_done true;
      flush_deadline := neg_infinity
    end;
    let draining = Atomic.get t.draining in
    if draining && not !drain_seen then begin
      drain_seen := true;
      (* Stop accepting at once; a joiner thread turns the batcher
         join into a loop wake-up so replies queued by the last
         workers still flush through the poll loop below. *)
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (match t.cfg.listen with
      | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ());
      ignore
        (Thread.create
           (fun () ->
             Option.iter Batcher.join t.batcher;
             Atomic.set t.workers_done true;
             wake_loop t)
           ())
    end;
    (* Tear down connections that finished flushing after a corrupt
       stream; collect the ones still alive. *)
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) fdmap [] in
    List.iter
      (fun c -> if c.closing && not (conn_pending c) then teardown t fdmap c)
      conns;
    let live = Hashtbl.fold (fun _ c acc -> c :: acc) fdmap [] in
    let workers_done = Atomic.get t.workers_done in
    if workers_done && !flush_deadline = infinity then
      (* Bounded drain flush: a peer that never reads its replies must
         not wedge the shutdown. *)
      flush_deadline := Unix.gettimeofday () +. 5.0;
    let all_flushed = List.for_all (fun c -> not (conn_pending c)) live in
    if !drain_seen && workers_done
       && (all_flushed || Unix.gettimeofday () > !flush_deadline)
    then ()
    else begin
      let interests =
        (if !drain_seen then []
         else [ (t.listen_fd, { Poll.want_read = true; want_write = false }) ])
        @ [ (t.pipe_r, { Poll.want_read = true; want_write = false }) ]
        @ List.filter_map
            (fun c ->
              let want_write = conn_pending c in
              let want_read = not c.closing in
              if want_read || want_write then
                Some (c.fd, { Poll.want_read; want_write })
              else None)
            live
      in
      let timeout_ms = if !drain_seen then 50 else -1 in
      let events = Poll.wait interests ~timeout_ms in
      List.iter
        (fun (fd, (ev : Poll.event)) ->
          if fd = t.pipe_r then (if ev.Poll.ready_read then service_pipe ())
          else if (not !drain_seen) && fd = t.listen_fd then begin
            if ev.Poll.ready_read then accept_burst t fdmap
          end
          else
            match Hashtbl.find_opt fdmap fd with
            | None -> ()
            | Some conn ->
              if ev.Poll.ready_write then begin
                let pending =
                  locked conn.olock (fun () ->
                      if conn.dead then false
                      else begin
                        flush_locked conn;
                        Outbuf.length conn.out > 0
                      end)
                in
                if conn.closing && not pending then teardown t fdmap conn
              end;
              if (not conn.dead) && (ev.Poll.ready_read || ev.Poll.ready_error) then
                if conn.closing then (if ev.Poll.ready_error then teardown t fdmap conn)
                else service_read t fdmap conn chunk)
        events;
      loop ()
    end
  in
  loop ();
  initiate_drain t;
  (* The drain path above already closed the listener and unlinked the
     socket; [initiate_drain] here only covers a [run] that never saw
     traffic.  Workers are done: every accepted request got its reply
     bytes queued, and the loop flushed them (or timed out on a peer
     that stopped reading). *)
  let conns = locked t.conns_lock (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []) in
  List.iter
    (fun c ->
      locked c.olock (fun () ->
          if not c.dead then begin
            c.dead <- true;
            (try Unix.shutdown c.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
            try Unix.close c.fd with Unix.Unix_error _ -> ()
          end))
    conns;
  Option.iter Store.close t.store_;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
