type addr = [ `Unix of string | `Tcp of string * int ]

type conn = { fd : Unix.file_descr; rbuf : Buffer.t; chunk : Bytes.t }

let connect (addr : addr) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd, sockaddr =
    match addr with
    | `Unix path -> (Unix.socket PF_UNIX SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      ( Unix.socket PF_INET SOCK_STREAM 0,
        Unix.ADDR_INET ((Unix.gethostbyname host).h_addr_list.(0), port) )
  in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  { fd; rbuf = Buffer.create 1024; chunk = Bytes.create 4096 }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let read_line c =
  let rec take () =
    let s = Buffer.contents c.rbuf in
    match String.index_opt s '\n' with
    | Some nl ->
      Buffer.clear c.rbuf;
      Buffer.add_substring c.rbuf s (nl + 1) (String.length s - nl - 1);
      String.sub s 0 nl
    | None -> (
      match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
      | 0 -> failwith "Client.request: connection closed by server"
      | n ->
        Buffer.add_subbytes c.rbuf c.chunk 0 n;
        take ())
  in
  take ()

let request c json =
  let line = Json.to_string json ^ "\n" in
  let bytes = Bytes.of_string line in
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write c.fd bytes !written (n - !written)
  done;
  match Json.parse (read_line c) with
  | Ok reply -> reply
  | Error msg -> failwith ("Client.request: unparsable reply: " ^ msg)

(* --------------------------- retrying session ----------------------- *)

type retry = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  timeout_ms : float;
  retry_seed : int;
}

let default_retry =
  {
    max_attempts = 8;
    base_delay_ms = 1.;
    max_delay_ms = 100.;
    timeout_ms = 2000.;
    retry_seed = 0;
  }

type session = {
  s_addr : addr;
  s_retry : retry;
  mutable s_conn : conn option;
  mutable s_rng : int;
  mutable s_next_id : int;
}

let session ?(retry = default_retry) addr =
  if retry.max_attempts < 1 then invalid_arg "Client.session: max_attempts must be >= 1";
  {
    s_addr = addr;
    s_retry = retry;
    s_conn = None;
    (* [lor 1] keeps a zero seed from pinning the LCG at zero. *)
    s_rng = (retry.retry_seed * 2654435761) lor 1;
    s_next_id = 0;
  }

let close_session s =
  Option.iter close s.s_conn;
  s.s_conn <- None

(* Deterministic jitter: a tiny LCG advanced per retry, seeded from
   [retry_seed], so a chaos run's whole retry schedule replays. *)
let jitter s =
  s.s_rng <- ((s.s_rng * 1103515245) + 12345) land 0x3FFFFFFF;
  float_of_int (s.s_rng mod 1000) /. 1000.

(* Exponential backoff with full jitter in [d/2, d]: concurrent
   retriers spread out, and the delay never collapses to zero. *)
let backoff s attempt =
  let r = s.s_retry in
  let d = Float.min r.max_delay_ms (r.base_delay_ms *. (2. ** float_of_int (attempt - 1))) in
  d *. (0.5 +. (0.5 *. jitter s)) /. 1000.

let session_conn s =
  match s.s_conn with
  | Some c -> c
  | None ->
    let c = connect s.s_addr in
    (* A receive timeout bounds how long a swallowed reply can stall
       the session; the EAGAIN it raises is a retriable transport
       error like any other. *)
    (try Unix.setsockopt_float c.fd SO_RCVTIMEO (s.s_retry.timeout_ms /. 1000.)
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    s.s_conn <- Some c;
    c

let drop_session_conn s =
  Option.iter close s.s_conn;
  s.s_conn <- None

let retriable_code reply =
  match Protocol.error_code reply with
  | Some ("overloaded" | "draining") -> true
  | _ -> false

let call s json =
  (* Stamp a session-unique id when the caller did not: the id is the
     dedupe key that makes re-issue after a lost reply idempotent. *)
  let json =
    match Json.member "id" json with
    | Some _ -> json
    | None -> (
      s.s_next_id <- s.s_next_id + 1;
      match json with
      | Json.Obj fields -> Json.Obj (("id", Json.Int s.s_next_id) :: fields)
      | other -> other)
  in
  let want_id = Json.member "id" json in
  let attempt_once () =
    let c = session_conn s in
    let line = Json.to_string json ^ "\n" in
    let bytes = Bytes.of_string line in
    let n = Bytes.length bytes in
    let written = ref 0 in
    while !written < n do
      written := !written + Unix.write c.fd bytes !written (n - !written)
    done;
    (* Discard replies whose id is not ours: a late reply to an
       earlier, timed-out request on this same connection must not be
       mis-attributed to the re-issued one. *)
    let rec read_matching () =
      match Json.parse (read_line c) with
      | Error msg -> failwith ("unparsable reply: " ^ msg)
      | Ok reply -> if Json.member "id" reply = want_id then reply else read_matching ()
    in
    read_matching ()
  in
  let rec go attempt =
    match attempt_once () with
    | reply ->
      if retriable_code reply && attempt < s.s_retry.max_attempts then begin
        Thread.delay (backoff s attempt);
        go (attempt + 1)
      end
      else Ok (reply, attempt)
    | exception e ->
      (* Any transport failure — reset, EOF, receive timeout — voids
         the connection; the next attempt reconnects from scratch. *)
      drop_session_conn s;
      if attempt < s.s_retry.max_attempts then begin
        Thread.delay (backoff s attempt);
        go (attempt + 1)
      end
      else Error (Printexc.to_string e)
  in
  go 1

(* ---------------------------- load generator ------------------------ *)

type load_config = {
  requests : int;
  concurrency : int;
  distinct : int;
  seed : int;
  size : int;
  verify : bool;
  deadline_ms : int option;
}

let default_load =
  {
    requests = 1000;
    concurrency = 8;
    distinct = 64;
    seed = 1;
    size = 4;
    verify = true;
    deadline_ms = None;
  }

type load_report = {
  sent : int;
  ok : int;
  shed : int;
  draining : int;
  errors : int;
  bounded : int;
  disagreements : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  wall_s : float;
  rps : float;
}

let h_latency = Obs.Metrics.histogram "client.request_ms"

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let wire_exactness reply =
  match Json.member "verdict" reply with
  | Some v -> (
    match Json.member "exactness" v with Some (Json.Str s) -> Some s | _ -> None)
  | None -> None

let verdict_bytes reply =
  match Json.member "verdict" reply with
  | Some v -> Some (Json.to_string v)
  | None -> None

let load addr cfg =
  if cfg.requests < 1 then invalid_arg "Client.load: requests must be >= 1";
  if cfg.concurrency < 1 then invalid_arg "Client.load: concurrency must be >= 1";
  if cfg.distinct < 1 then invalid_arg "Client.load: distinct must be >= 1";
  let instances =
    Array.init cfg.distinct (fun i -> Check.Gen.ith ~seed:cfg.seed ~size:cfg.size i)
  in
  let expected =
    if not cfg.verify then [||]
    else
      Array.map
        (fun (inst : Check.Instance.t) ->
          Json.to_string
            (Protocol.json_of_wire
               (Protocol.wire_of_verdict
                  (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat))))
        instances
  in
  let latencies = Array.make cfg.requests nan in
  let next = Atomic.make 0 in
  let ok = Atomic.make 0
  and shed = Atomic.make 0
  and draining = Atomic.make 0
  and errors = Atomic.make 0
  and bounded = Atomic.make 0
  and disagreements = Atomic.make 0 in
  let worker () =
    match connect addr with
    | exception exn ->
      Printf.eprintf "client: connect failed: %s\n%!" (Printexc.to_string exn);
      (* Burn the whole remaining share as transport errors rather
         than hanging the run. *)
      let rec burn () =
        let i = Atomic.fetch_and_add next 1 in
        if i < cfg.requests then begin
          Atomic.incr errors;
          burn ()
        end
      in
      burn ()
    | c ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < cfg.requests then begin
          let inst = instances.(i mod cfg.distinct) in
          let req =
            Protocol.analyze ~id:(Json.Int i) ?deadline_ms:cfg.deadline_ms
              ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat
          in
          let t0 = Unix.gettimeofday () in
          (match request c req with
          | exception _ -> Atomic.incr errors
          | reply ->
            let ms = 1000. *. (Unix.gettimeofday () -. t0) in
            latencies.(i) <- ms;
            Obs.Metrics.observe h_latency ms;
            if Protocol.reply_ok reply then begin
              Atomic.incr ok;
              if cfg.verify then
                if wire_exactness reply = Some "bounded" then Atomic.incr bounded
                else if verdict_bytes reply <> Some expected.(i mod cfg.distinct) then
                  Atomic.incr disagreements
            end
            else
              match Protocol.error_code reply with
              | Some "overloaded" -> Atomic.incr shed
              | Some "draining" -> Atomic.incr draining
              | _ -> Atomic.incr errors);
          loop ()
        end
      in
      loop ();
      close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init cfg.concurrency (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let measured =
    Array.of_list
      (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list latencies))
  in
  Array.sort compare measured;
  {
    sent = cfg.requests;
    ok = Atomic.get ok;
    shed = Atomic.get shed;
    draining = Atomic.get draining;
    errors = Atomic.get errors;
    bounded = Atomic.get bounded;
    disagreements = Atomic.get disagreements;
    p50_ms = percentile measured 0.50;
    p95_ms = percentile measured 0.95;
    p99_ms = percentile measured 0.99;
    max_ms = (if Array.length measured = 0 then 0. else measured.(Array.length measured - 1));
    wall_s;
    rps = (if wall_s > 0. then float_of_int cfg.requests /. wall_s else 0.);
  }

let json_of_load_report r =
  Json.Obj
    [
      ("sent", Json.Int r.sent);
      ("ok", Json.Int r.ok);
      ("shed", Json.Int r.shed);
      ("draining", Json.Int r.draining);
      ("errors", Json.Int r.errors);
      ("bounded", Json.Int r.bounded);
      ("disagreements", Json.Int r.disagreements);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("max_ms", Json.Float r.max_ms);
      ("wall_s", Json.Float r.wall_s);
      ("requests_per_s", Json.Float r.rps);
      ("shed_rate", Json.Float (float_of_int r.shed /. float_of_int r.sent));
    ]
