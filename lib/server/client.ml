type addr = [ `Unix of string | `Tcp of string * int ]

type conn = { fd : Unix.file_descr; rbuf : Buffer.t; chunk : Bytes.t }

let connect (addr : addr) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd, sockaddr =
    match addr with
    | `Unix path -> (Unix.socket PF_UNIX SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      ( Unix.socket PF_INET SOCK_STREAM 0,
        Unix.ADDR_INET ((Unix.gethostbyname host).h_addr_list.(0), port) )
  in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  { fd; rbuf = Buffer.create 1024; chunk = Bytes.create 4096 }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let read_line c =
  let rec take () =
    let s = Buffer.contents c.rbuf in
    match String.index_opt s '\n' with
    | Some nl ->
      Buffer.clear c.rbuf;
      Buffer.add_substring c.rbuf s (nl + 1) (String.length s - nl - 1);
      String.sub s 0 nl
    | None -> (
      match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
      | 0 -> failwith "Client.request: connection closed by server"
      | n ->
        Buffer.add_subbytes c.rbuf c.chunk 0 n;
        take ())
  in
  take ()

let request c json =
  let line = Json.to_string json ^ "\n" in
  let bytes = Bytes.of_string line in
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write c.fd bytes !written (n - !written)
  done;
  match Json.parse (read_line c) with
  | Ok reply -> reply
  | Error msg -> failwith ("Client.request: unparsable reply: " ^ msg)

(* ---------------------------- load generator ------------------------ *)

type load_config = {
  requests : int;
  concurrency : int;
  distinct : int;
  seed : int;
  size : int;
  verify : bool;
  deadline_ms : int option;
}

let default_load =
  {
    requests = 1000;
    concurrency = 8;
    distinct = 64;
    seed = 1;
    size = 4;
    verify = true;
    deadline_ms = None;
  }

type load_report = {
  sent : int;
  ok : int;
  shed : int;
  draining : int;
  errors : int;
  bounded : int;
  disagreements : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  wall_s : float;
  rps : float;
}

let h_latency = Obs.Metrics.histogram "client.request_ms"

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let wire_exactness reply =
  match Json.member "verdict" reply with
  | Some v -> (
    match Json.member "exactness" v with Some (Json.Str s) -> Some s | _ -> None)
  | None -> None

let verdict_bytes reply =
  match Json.member "verdict" reply with
  | Some v -> Some (Json.to_string v)
  | None -> None

let load addr cfg =
  if cfg.requests < 1 then invalid_arg "Client.load: requests must be >= 1";
  if cfg.concurrency < 1 then invalid_arg "Client.load: concurrency must be >= 1";
  if cfg.distinct < 1 then invalid_arg "Client.load: distinct must be >= 1";
  let instances =
    Array.init cfg.distinct (fun i -> Check.Gen.ith ~seed:cfg.seed ~size:cfg.size i)
  in
  let expected =
    if not cfg.verify then [||]
    else
      Array.map
        (fun (inst : Check.Instance.t) ->
          Json.to_string
            (Protocol.json_of_wire
               (Protocol.wire_of_verdict
                  (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat))))
        instances
  in
  let latencies = Array.make cfg.requests nan in
  let next = Atomic.make 0 in
  let ok = Atomic.make 0
  and shed = Atomic.make 0
  and draining = Atomic.make 0
  and errors = Atomic.make 0
  and bounded = Atomic.make 0
  and disagreements = Atomic.make 0 in
  let worker () =
    match connect addr with
    | exception exn ->
      Printf.eprintf "client: connect failed: %s\n%!" (Printexc.to_string exn);
      (* Burn the whole remaining share as transport errors rather
         than hanging the run. *)
      let rec burn () =
        let i = Atomic.fetch_and_add next 1 in
        if i < cfg.requests then begin
          Atomic.incr errors;
          burn ()
        end
      in
      burn ()
    | c ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < cfg.requests then begin
          let inst = instances.(i mod cfg.distinct) in
          let req =
            Protocol.analyze ~id:(Json.Int i) ?deadline_ms:cfg.deadline_ms
              ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat
          in
          let t0 = Unix.gettimeofday () in
          (match request c req with
          | exception _ -> Atomic.incr errors
          | reply ->
            let ms = 1000. *. (Unix.gettimeofday () -. t0) in
            latencies.(i) <- ms;
            Obs.Metrics.observe h_latency ms;
            if Protocol.reply_ok reply then begin
              Atomic.incr ok;
              if cfg.verify then
                if wire_exactness reply = Some "bounded" then Atomic.incr bounded
                else if verdict_bytes reply <> Some expected.(i mod cfg.distinct) then
                  Atomic.incr disagreements
            end
            else
              match Protocol.error_code reply with
              | Some "overloaded" -> Atomic.incr shed
              | Some "draining" -> Atomic.incr draining
              | _ -> Atomic.incr errors);
          loop ()
        end
      in
      loop ();
      close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init cfg.concurrency (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let measured =
    Array.of_list
      (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list latencies))
  in
  Array.sort compare measured;
  {
    sent = cfg.requests;
    ok = Atomic.get ok;
    shed = Atomic.get shed;
    draining = Atomic.get draining;
    errors = Atomic.get errors;
    bounded = Atomic.get bounded;
    disagreements = Atomic.get disagreements;
    p50_ms = percentile measured 0.50;
    p95_ms = percentile measured 0.95;
    p99_ms = percentile measured 0.99;
    max_ms = (if Array.length measured = 0 then 0. else measured.(Array.length measured - 1));
    wall_s;
    rps = (if wall_s > 0. then float_of_int cfg.requests /. wall_s else 0.);
  }

let json_of_load_report r =
  Json.Obj
    [
      ("sent", Json.Int r.sent);
      ("ok", Json.Int r.ok);
      ("shed", Json.Int r.shed);
      ("draining", Json.Int r.draining);
      ("errors", Json.Int r.errors);
      ("bounded", Json.Int r.bounded);
      ("disagreements", Json.Int r.disagreements);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("max_ms", Json.Float r.max_ms);
      ("wall_s", Json.Float r.wall_s);
      ("requests_per_s", Json.Float r.rps);
      ("shed_rate", Json.Float (float_of_int r.shed /. float_of_int r.sent));
    ]
