type addr = [ `Unix of string | `Tcp of string * int ]

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable version : Wire.version;
  chunk : Bytes.t;
}

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Wakes a thread blocked in [recv] on this connection (the read
   returns EOF) without invalidating the descriptor under it — the
   router shuts a pooled connection down first, joins its reader
   thread, then [close]s. *)
let shutdown c = try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let send_string c s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write c.fd bytes !written (n - !written)
  done

let rec read_frame c =
  match Wire.next c.dec with
  | Wire.Frame f -> f
  | Wire.Corrupt msg -> failwith ("Client.request: corrupt reply stream: " ^ msg)
  | Wire.Need_more -> (
    match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
    | 0 -> failwith "Client.request: connection closed by server"
    | n ->
      Wire.feed c.dec c.chunk 0 n;
      read_frame c)

(* Every reply surfaces as the JSON document it is equivalent to: a
   binary ['V'] frame reconstructs the exact [ok] analyze reply —
   {!Protocol.json_of_wire} renders deterministically, so the verify
   path compares byte-identically regardless of transport. *)
let read_reply c =
  match read_frame c with
  | Wire.Text line -> (
    match Json.parse line with
    | Ok reply -> reply
    | Error msg -> failwith ("Client.request: unparsable reply: " ^ msg))
  | Wire.Bin_verdict { id; verdict; store } ->
    Protocol.ok_reply ~id:(Json.Int id) ~op:"analyze"
      (Handlers.fields_of_analyze (verdict, store))
  | Wire.Bin_analyze _ -> failwith "Client.request: unexpected analyze frame from server"

let request c json =
  send_string c (Wire.encode c.version (Wire.Text (Json.to_string json)));
  read_reply c

(* Pipelining halves, for callers (the cluster router) that multiplex
   many requests over one connection and match replies by id. *)
let send c json = send_string c (Wire.encode c.version (Wire.Text (Json.to_string json)))
let recv c = read_reply c

let connect ?(transport = Wire.V1) (addr : addr) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd, sockaddr =
    match addr with
    | `Unix path -> (Unix.socket PF_UNIX SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      ( Unix.socket PF_INET SOCK_STREAM 0,
        Unix.ADDR_INET ((Unix.gethostbyname host).h_addr_list.(0), port) )
  in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  let c = { fd; dec = Wire.decoder Wire.V1; version = Wire.V1; chunk = Bytes.create 65536 } in
  (match transport with
  | Wire.V1 -> ()
  | Wire.V2 -> (
    (* Negotiate before anything else is in flight: the ack is the
       switch point for both directions. *)
    match request c (Protocol.hello ~transport:(Wire.version_name Wire.V2) ()) with
    | reply when Protocol.reply_ok reply ->
      c.version <- Wire.V2;
      Wire.set_version c.dec Wire.V2
    | _ ->
      close c;
      failwith "Client.connect: server refused the binary transport"
    | exception e ->
      close c;
      raise e));
  c

(* The transport-polymorphic analyze send: a compact ['A'] frame once
   the connection speaks v2, the JSON document otherwise. *)
let send_analyze c ~id ?deadline_ms ~mu tmat =
  match c.version with
  | Wire.V2 -> send_string c (Wire.encode Wire.V2 (Wire.Bin_analyze { id; deadline_ms; mu; tmat }))
  | Wire.V1 ->
    send_string c
      (Wire.encode Wire.V1
         (Wire.Text
            (Json.to_string (Protocol.analyze ~id:(Json.Int id) ?deadline_ms ~mu tmat))))

(* --------------------------- retrying session ----------------------- *)

type retry = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  timeout_ms : float;
  retry_seed : int;
  retry_budget : int;
  retry_refill_per_s : float;
}

let default_retry =
  {
    max_attempts = 8;
    base_delay_ms = 1.;
    max_delay_ms = 100.;
    timeout_ms = 2000.;
    retry_seed = 0;
    retry_budget = 128;
    retry_refill_per_s = 64.;
  }

type session = {
  s_addr : addr;
  s_retry : retry;
  s_transport : Wire.version;
  mutable s_conn : conn option;
  mutable s_rng : int;
  mutable s_next_id : int;
  (* Retry token bucket: every re-issue (per-attempt backoff aside)
     spends a token, tokens refill at a steady rate, so a session can
     never storm a slow or recovering server with an unbounded retry
     amplification — the bucket caps the burst, the refill caps the
     sustained rate. *)
  mutable s_tokens : float;
  mutable s_refill_at : float;
}

let session ?(retry = default_retry) ?(transport = Wire.V1) addr =
  if retry.max_attempts < 1 then invalid_arg "Client.session: max_attempts must be >= 1";
  {
    s_addr = addr;
    s_retry = retry;
    s_transport = transport;
    s_conn = None;
    (* [lor 1] keeps a zero seed from pinning the LCG at zero. *)
    s_rng = (retry.retry_seed * 2654435761) lor 1;
    s_next_id = 0;
    s_tokens = float_of_int (max 0 retry.retry_budget);
    s_refill_at = Unix.gettimeofday ();
  }

let close_session s =
  Option.iter close s.s_conn;
  s.s_conn <- None

(* Deterministic jitter: a tiny LCG advanced per retry, seeded from
   [retry_seed], so a chaos run's whole retry schedule replays. *)
let jitter s =
  s.s_rng <- ((s.s_rng * 1103515245) + 12345) land 0x3FFFFFFF;
  float_of_int (s.s_rng mod 1000) /. 1000.

(* Exponential backoff with full jitter in [d/2, d]: concurrent
   retriers spread out, and the delay never collapses to zero. *)
let backoff s attempt =
  let r = s.s_retry in
  let d = Float.min r.max_delay_ms (r.base_delay_ms *. (2. ** float_of_int (attempt - 1))) in
  d *. (0.5 +. (0.5 *. jitter s)) /. 1000.

let session_conn s =
  match s.s_conn with
  | Some c -> c
  | None ->
    let fd_timeout c =
      (* A receive timeout bounds how long a swallowed reply can stall
         the session; the EAGAIN it raises is a retriable transport
         error like any other. *)
      try Unix.setsockopt_float c.fd SO_RCVTIMEO (s.s_retry.timeout_ms /. 1000.)
      with Unix.Unix_error _ | Invalid_argument _ -> ()
    in
    (* The timeout must cover the negotiation read too, so connect
       plain-v1 first and upgrade through the session's own request
       path. *)
    let c = connect s.s_addr in
    fd_timeout c;
    (match s.s_transport with
    | Wire.V1 -> ()
    | Wire.V2 -> (
      match request c (Protocol.hello ~transport:(Wire.version_name Wire.V2) ()) with
      | reply when Protocol.reply_ok reply ->
        c.version <- Wire.V2;
        Wire.set_version c.dec Wire.V2
      | _ ->
        close c;
        failwith "Client.session: server refused the binary transport"
      | exception e ->
        close c;
        raise e));
    s.s_conn <- Some c;
    c

let drop_session_conn s =
  Option.iter close s.s_conn;
  s.s_conn <- None

let retriable_code reply =
  match Protocol.error_code reply with
  | Some ("overloaded" | "draining") -> true
  | _ -> false

(* [retry_budget <= 0] means unlimited (the pre-budget behavior);
   otherwise a retry happens only if a token is available right now.
   Refill is continuous at [retry_refill_per_s], capped at the bucket
   size. *)
let take_retry_token s =
  let r = s.s_retry in
  if r.retry_budget <= 0 then true
  else begin
    let now = Unix.gettimeofday () in
    let elapsed = Float.max 0. (now -. s.s_refill_at) in
    s.s_refill_at <- now;
    s.s_tokens <-
      Float.min
        (float_of_int r.retry_budget)
        (s.s_tokens +. (elapsed *. r.retry_refill_per_s));
    if s.s_tokens >= 1. then begin
      s.s_tokens <- s.s_tokens -. 1.;
      true
    end
    else false
  end

let call s json =
  (* Stamp a session-unique id when the caller did not: the id is the
     dedupe key that makes re-issue after a lost reply idempotent. *)
  let json =
    match Json.member "id" json with
    | Some _ -> json
    | None -> (
      s.s_next_id <- s.s_next_id + 1;
      match json with
      | Json.Obj fields -> Json.Obj (("id", Json.Int s.s_next_id) :: fields)
      | other -> other)
  in
  let want_id = Json.member "id" json in
  let attempt_once () =
    let c = session_conn s in
    send_string c (Wire.encode c.version (Wire.Text (Json.to_string json)));
    (* Discard replies whose id is not ours: a late reply to an
       earlier, timed-out request on this same connection must not be
       mis-attributed to the re-issued one. *)
    let rec read_matching () =
      let reply = read_reply c in
      if Json.member "id" reply = want_id then reply else read_matching ()
    in
    read_matching ()
  in
  let rec go attempt =
    match attempt_once () with
    | reply ->
      if
        retriable_code reply
        && attempt < s.s_retry.max_attempts
        && take_retry_token s
      then begin
        Thread.delay (backoff s attempt);
        go (attempt + 1)
      end
      else Ok (reply, attempt)
    | exception e ->
      (* Any transport failure — reset, EOF, receive timeout — voids
         the connection; the next attempt reconnects from scratch. *)
      drop_session_conn s;
      if attempt < s.s_retry.max_attempts && take_retry_token s then begin
        Thread.delay (backoff s attempt);
        go (attempt + 1)
      end
      else Error (Printexc.to_string e)
  in
  go 1

(* ---------------------------- load generator ------------------------ *)

type load_config = {
  requests : int;
  concurrency : int;
  distinct : int;
  seed : int;
  size : int;
  verify : bool;
  deadline_ms : int option;
  transport : Wire.version;
  pipeline : int;
}

let default_load =
  {
    requests = 1000;
    concurrency = 8;
    distinct = 64;
    seed = 1;
    size = 4;
    verify = true;
    deadline_ms = None;
    transport = Wire.V1;
    pipeline = 1;
  }

type load_report = {
  sent : int;
  ok : int;
  shed : int;
  draining : int;
  deadline_exceeded : int;
  errors : int;
  bounded : int;
  disagreements : int;
  transport : string;
  pipeline : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  wall_s : float;
  rps : float;
}

let h_latency = Obs.Metrics.histogram "client.request_ms"

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let wire_exactness reply =
  match Json.member "verdict" reply with
  | Some v -> (
    match Json.member "exactness" v with Some (Json.Str s) -> Some s | _ -> None)
  | None -> None

let verdict_bytes reply =
  match Json.member "verdict" reply with
  | Some v -> Some (Json.to_string v)
  | None -> None

let load_any addrs cfg =
  if addrs = [] then invalid_arg "Client.load: at least one address";
  if cfg.requests < 1 then invalid_arg "Client.load: requests must be >= 1";
  if cfg.concurrency < 1 then invalid_arg "Client.load: concurrency must be >= 1";
  if cfg.distinct < 1 then invalid_arg "Client.load: distinct must be >= 1";
  if cfg.pipeline < 1 then invalid_arg "Client.load: pipeline must be >= 1";
  let addrs = Array.of_list addrs in
  let instances =
    Array.init cfg.distinct (fun i -> Check.Gen.ith ~seed:cfg.seed ~size:cfg.size i)
  in
  let expected =
    if not cfg.verify then [||]
    else
      Array.map
        (fun (inst : Check.Instance.t) ->
          Json.to_string
            (Protocol.json_of_wire
               (Protocol.wire_of_verdict
                  (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat))))
        instances
  in
  let latencies = Array.make cfg.requests nan in
  let next = Atomic.make 0 in
  let ok = Atomic.make 0
  and shed = Atomic.make 0
  and draining = Atomic.make 0
  and deadline_exceeded = Atomic.make 0
  and errors = Atomic.make 0
  and bounded = Atomic.make 0
  and disagreements = Atomic.make 0 in
  let classify reply i =
    if Protocol.reply_ok reply then begin
      Atomic.incr ok;
      if cfg.verify then
        if wire_exactness reply = Some "bounded" then Atomic.incr bounded
        else if verdict_bytes reply <> Some expected.(i mod cfg.distinct) then
          Atomic.incr disagreements
    end
    else
      match Protocol.error_code reply with
      | Some "overloaded" -> Atomic.incr shed
      | Some "draining" -> Atomic.incr draining
      (* An expired deadline is an answer, not a failure: the server
         honored the budget the caller asked for. *)
      | Some "deadline_exceeded" -> Atomic.incr deadline_exceeded
      | _ -> Atomic.incr errors
  in
  (* Each worker keeps up to [pipeline] requests in flight on its one
     connection and matches replies back by id — the server answers
     warm requests inline and cold ones from the pool, so replies can
     legitimately overtake each other. *)
  (* Workers round-robin over the given addresses, so a shard fleet
     gets driven — and byte-for-byte verified — evenly; with one
     address this is the classic single-server load. *)
  let worker w () =
    match connect ~transport:cfg.transport addrs.(w mod Array.length addrs) with
    | exception exn ->
      Printf.eprintf "client: connect failed: %s\n%!" (Printexc.to_string exn);
      (* Burn the whole remaining share as transport errors rather
         than hanging the run. *)
      let rec burn () =
        let i = Atomic.fetch_and_add next 1 in
        if i < cfg.requests then begin
          Atomic.incr errors;
          burn ()
        end
      in
      burn ()
    | c ->
      let outstanding : (int, float) Hashtbl.t = Hashtbl.create (2 * cfg.pipeline) in
      let exhausted = ref false in
      let fill () =
        while (not !exhausted) && Hashtbl.length outstanding < cfg.pipeline do
          let i = Atomic.fetch_and_add next 1 in
          if i >= cfg.requests then exhausted := true
          else begin
            let inst = instances.(i mod cfg.distinct) in
            Hashtbl.replace outstanding i (Unix.gettimeofday ());
            send_analyze c ~id:i ?deadline_ms:cfg.deadline_ms
              ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat
          end
        done
      in
      (match
         let rec pump () =
           fill ();
           if Hashtbl.length outstanding > 0 then begin
             let reply = read_reply c in
             (match Protocol.reply_id reply with
             | Json.Int i when Hashtbl.mem outstanding i ->
               let t0 = Hashtbl.find outstanding i in
               Hashtbl.remove outstanding i;
               let ms = 1000. *. (Unix.gettimeofday () -. t0) in
               latencies.(i) <- ms;
               Obs.Metrics.observe h_latency ms;
               classify reply i
             | _ -> Atomic.incr errors);
             pump ()
           end
         in
         pump ()
       with
      | () -> ()
      | exception _ ->
        (* A transport failure voids every request in flight on this
           connection; requests not yet sent stay in the shared
           counter for the other workers. *)
        ignore (Atomic.fetch_and_add errors (Hashtbl.length outstanding)));
      close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init cfg.concurrency (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let measured =
    Array.of_list
      (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list latencies))
  in
  Array.sort compare measured;
  {
    sent = cfg.requests;
    ok = Atomic.get ok;
    shed = Atomic.get shed;
    draining = Atomic.get draining;
    deadline_exceeded = Atomic.get deadline_exceeded;
    errors = Atomic.get errors;
    bounded = Atomic.get bounded;
    disagreements = Atomic.get disagreements;
    transport = Wire.version_name cfg.transport;
    pipeline = cfg.pipeline;
    p50_ms = percentile measured 0.50;
    p95_ms = percentile measured 0.95;
    p99_ms = percentile measured 0.99;
    max_ms = (if Array.length measured = 0 then 0. else measured.(Array.length measured - 1));
    wall_s;
    rps = (if wall_s > 0. then float_of_int cfg.requests /. wall_s else 0.);
  }

let load addr cfg = load_any [ addr ] cfg

let json_of_load_report r =
  Json.Obj
    [
      ("sent", Json.Int r.sent);
      ("ok", Json.Int r.ok);
      ("shed", Json.Int r.shed);
      ("draining", Json.Int r.draining);
      ("deadline_exceeded", Json.Int r.deadline_exceeded);
      ("errors", Json.Int r.errors);
      ("bounded", Json.Int r.bounded);
      ("disagreements", Json.Int r.disagreements);
      ("transport", Json.Str r.transport);
      ("pipeline", Json.Int r.pipeline);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("max_ms", Json.Float r.max_ms);
      ("wall_s", Json.Float r.wall_s);
      ("requests_per_s", Json.Float r.rps);
      ("shed_rate", Json.Float (float_of_int r.shed /. float_of_int r.sent));
    ]
