exception Bad_request of string

let badf fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let builtin_algorithm name mu =
  match name with
  | "matmul" -> (Matmul.algorithm ~mu, Some Matmul.paper_s)
  | "tc" | "transitive-closure" ->
    (Transitive_closure.algorithm ~mu, Some Transitive_closure.paper_s)
  | "convolution" ->
    (Convolution.algorithm ~mu_ij:mu ~mu_pq:(max 1 (mu / 2)), Some Convolution.example_s)
  | "bitmm" | "bit-matmul" ->
    (Bit_matmul.algorithm ~mu_word:mu ~mu_bit:mu, Some Bit_matmul.example_s)
  | "lu" -> (Lu.algorithm ~mu, Some Lu.example_s)
  | other -> badf "unknown algorithm: %s (matmul|tc|convolution|bitmm|lu)" other

let json_of_vec v = Json.ints (Intvec.to_ints v)
let json_of_mat m = Json.Arr (List.map Json.ints (Intmat.to_ints m))
let json_of_int_array a = Json.ints (Array.to_list a)

(* ------------------------------ analyze ----------------------------- *)

let analyze_wire ~store ~budget ~mu tmat =
  match store with
  | None -> (Protocol.wire_of_verdict (Analysis.check ~budget ~mu tmat), "off")
  | Some store -> (
    match Store.find store ~mu tmat with
    | Some e -> (Protocol.wire_of_entry e, "hit")
    | None ->
      let v = Analysis.check ~budget ~mu tmat in
      let wire = Protocol.wire_of_verdict v in
      (* Bounded verdicts depend on the budget that produced them;
         persisting one would replay it as ground truth forever. *)
      if v.Analysis.exactness = Analysis.Exact then
        (* A failed journal append must not fail the query: the
           verdict is already computed, only persistence is lost.
           The [error] status tells the client not to count this
           reply as an acknowledged write. *)
        match Store.add store ~mu tmat (Store.entry_of_verdict v) with
        | () -> (wire, "miss")
        | exception (Fault.Injected _ | Sys_error _ | Unix.Unix_error _) ->
          (wire, "error")
      else (wire, "bypass"))

let fields_of_analyze (wire, status) =
  [ ("verdict", Protocol.json_of_wire wire); ("store", Json.Str status) ]

let analyze ~store ~budget ~mu tmat =
  fields_of_analyze (analyze_wire ~store ~budget ~mu tmat)

(* ------------------------------ search ------------------------------ *)

let json_of_routing (rt : Tmap.routing) =
  Json.Obj
    [
      ("hops", json_of_int_array rt.Tmap.hops);
      ("buffers", json_of_int_array rt.Tmap.buffers);
    ]

let json_of_pareto_point (p : Enumerate.pareto_point) =
  Json.Obj
    [
      ("total_time", Json.Int p.Enumerate.total_time);
      ("processors", Json.Int p.Enumerate.processors);
      ("pi", json_of_vec p.Enumerate.pi);
      ("s", json_of_mat p.Enumerate.s);
    ]

let resolve_s s_opt default_s =
  match (s_opt, default_s) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> badf "no default space mapping for this algorithm; pass \"s\""

let search ~pool ~budget ~algorithm ~mu ~s:s_opt ~pareto ~array_dim =
  let alg, default_s = builtin_algorithm algorithm mu in
  let base =
    [ ("algorithm", Json.Str algorithm); ("mu", Json.Int mu) ]
  in
  let fields =
    if pareto then
      let front = Search.pareto_front ~pool ~budget alg ~k:(array_dim + 1) in
      [
        ("mode", Json.Str "pareto");
        ("array_dim", Json.Int array_dim);
        ("points", Json.Arr (List.map json_of_pareto_point front));
      ]
    else begin
      let s = resolve_s s_opt default_s in
      let schedules = Search.all_optimal_schedules ~pool ~budget alg ~s in
      let best = Search.best_by_buffers ~pool ~budget alg ~s in
      [
        ("mode", Json.Str "schedules");
        ("s", json_of_mat s);
        ("schedules", Json.Arr (List.map json_of_vec schedules));
        ( "best_by_buffers",
          Json.option
            (fun (pi, rt) ->
              Json.Obj
                [
                  ("pi", json_of_vec pi);
                  ("registers", Json.Int (Array.fold_left ( + ) 0 rt.Tmap.buffers));
                  ("routing", json_of_routing rt);
                ])
            best );
      ]
    end
  in
  base @ fields
  @ [ ("interrupted", Json.Bool (Engine.Budget.cancelled budget || Engine.Budget.pressed budget)) ]

(* ----------------------------- simulate ----------------------------- *)

let simulate ~algorithm ~mu ~s:s_opt ~pi =
  let alg, default_s = builtin_algorithm algorithm mu in
  let s = resolve_s s_opt default_s in
  let tm =
    match Tmap.make ~s ~pi with
    | tm -> tm
    | exception Invalid_argument msg -> badf "bad mapping: %s" msg
  in
  let r =
    match Exec.run alg Dataflow.semantics tm with
    | r -> r
    | exception (Invalid_argument msg | Failure msg) -> badf "simulation rejected: %s" msg
  in
  [
    ("algorithm", Json.Str algorithm);
    ("mu", Json.Int mu);
    ("s", json_of_mat s);
    ("pi", json_of_vec pi);
    ("makespan", Json.Int r.Exec.makespan);
    ("processors", Json.Int r.Exec.num_processors);
    ("computations", Json.Int r.Exec.computations);
    ("conflicts", Json.Int (List.length r.Exec.conflicts));
    ("causality_violations", Json.Int (List.length r.Exec.causality_violations));
    ("link_collisions", Json.Int (List.length r.Exec.collisions));
    ("buffers", json_of_int_array r.Exec.max_buffer_occupancy);
    ("dataflow_correct", Json.Bool (Exec.values_agree r));
    ("verification", Json.Str (Exec.verification_name r.Exec.verified));
    ("utilization", Json.Float r.Exec.utilization);
  ]

(* ------------------------------ replay ------------------------------ *)

let replay ~budget instance =
  let mu = instance.Check.Instance.mu and tmat = instance.Check.Instance.tmat in
  let wire = Protocol.wire_of_verdict (Analysis.check ~budget ~mu tmat) in
  let oracle_free =
    if Check.Instance.points instance <= Check.Oracle.max_points then
      Some (Check.Oracle.is_conflict_free instance)
    else None
  in
  [
    ("instance", Json.Str (Check.Instance.to_string instance));
    ("verdict", Protocol.json_of_wire wire);
    ("oracle_free", Json.option (fun b -> Json.Bool b) oracle_free);
    ( "agree",
      Json.option (fun free -> Json.Bool (free = wire.Protocol.conflict_free)) oracle_free );
  ]

(* ----------------------------- dispatch ----------------------------- *)

let execute ~pool ~store ~budget = function
  | Protocol.Analyze { mu; tmat; deadline_ms = _ } -> analyze ~store ~budget ~mu tmat
  | Protocol.Search { algorithm; mu; s; pareto; array_dim; deadline_ms = _ } ->
    search ~pool ~budget ~algorithm ~mu ~s ~pareto ~array_dim
  | Protocol.Simulate { algorithm; mu; s; pi } -> simulate ~algorithm ~mu ~s ~pi
  | Protocol.Replay { instance } -> replay ~budget instance
  | Protocol.Ship _ | Protocol.Ping | Protocol.Stats | Protocol.Drain
  | Protocol.Hello _ ->
    invalid_arg "Handlers.execute: inline op"
