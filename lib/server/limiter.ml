type t = {
  min_limit : int;
  max_limit : int;
  target_ms : float;
  lock : Mutex.t;
  mutable limit : float;
  mutable inflight : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable decreases : int;
  (* Completions since the last multiplicative decrease; gating
     decreases on a full window of ~[limit] completions makes the
     limiter react once per "round trip" of admitted work instead of
     collapsing to the floor on a single slow burst. *)
  mutable since_decrease : int;
}

let md_factor = 0.7

let create ?(min_limit = 1) ?(target_ms = 250.) ~max_limit () =
  if min_limit < 1 then invalid_arg "Limiter.create: min_limit must be >= 1";
  if max_limit < min_limit then
    invalid_arg "Limiter.create: max_limit must be >= min_limit";
  if not (target_ms > 0.) then
    invalid_arg "Limiter.create: target_ms must be > 0";
  {
    min_limit;
    max_limit;
    target_ms;
    lock = Mutex.create ();
    (* Optimistic start: behave exactly like the old static cap until
       latency evidence says otherwise. *)
    limit = float_of_int max_limit;
    inflight = 0;
    admitted = 0;
    rejected = 0;
    decreases = 0;
    since_decrease = max_int;
  }

let try_admit t =
  Mutex.lock t.lock;
  let ok = t.inflight < int_of_float t.limit in
  if ok then begin
    t.inflight <- t.inflight + 1;
    t.admitted <- t.admitted + 1
  end
  else t.rejected <- t.rejected + 1;
  Mutex.unlock t.lock;
  ok

let g_limit = Obs.Metrics.gauge "admission.limit"

let release t ~latency_ms =
  Mutex.lock t.lock;
  if t.inflight > 0 then t.inflight <- t.inflight - 1;
  if t.since_decrease < max_int then t.since_decrease <- t.since_decrease + 1;
  if latency_ms > t.target_ms then begin
    if t.since_decrease >= max 1 (int_of_float t.limit) then begin
      t.limit <- Float.max (float_of_int t.min_limit) (t.limit *. md_factor);
      t.decreases <- t.decreases + 1;
      t.since_decrease <- 0
    end
  end
  else
    t.limit <-
      Float.min (float_of_int t.max_limit) (t.limit +. (1. /. Float.max 1. t.limit));
  let l = t.limit in
  Mutex.unlock t.lock;
  Obs.Metrics.set_gauge g_limit l

let limit t =
  Mutex.lock t.lock;
  let l = int_of_float t.limit in
  Mutex.unlock t.lock;
  l

let inflight t =
  Mutex.lock t.lock;
  let n = t.inflight in
  Mutex.unlock t.lock;
  n

let admitted t = t.admitted
let rejected t = t.rejected
let decreases t = t.decreases
let min_limit t = t.min_limit
let max_limit t = t.max_limit
