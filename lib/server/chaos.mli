(** The chaos harness: boot the in-process daemon under a seeded
    {!Fault.Plan}, drive verified analyze requests through the
    retrying {!Client.session}, then audit that the system
    {e converged} — zero verdict disagreements against a fault-free
    direct {!Analysis.check} (byte-identical JSON), and zero lost
    acknowledged writes (every instance whose reply claimed store
    status [hit]/[miss] is present, with the exact verdict, when the
    journal is reopened after the drain).

    Determinism: with the default [concurrency = 1], two runs with
    the same seed produce byte-identical fault logs (same
    {!Fault.Plan.fingerprint}) — the CI smoke job diffs them.  The
    harness backs the [chaos] CLI subcommand and the [chaos] bench
    section; see docs/RESILIENCE.md. *)

type config = {
  seed : int;            (** Seeds instances, fault plan and retry jitter. *)
  requests : int;
  distinct : int;        (** Distinct instances in the cycled pool. *)
  size : int;            (** {!Check.Gen} size parameter. *)
  classes : string list; (** {!Fault.Plan.classes} subset to arm. *)
  rate : float;          (** Per-consult fault probability. *)
  concurrency : int;     (** Driver threads; [> 1] trades determinism
                             of the fault log for contention. *)
  jobs : int option;     (** Daemon pool domains. *)
  deadline_ms : int option;
  transport : Wire.version;
      (** Session transport; faults are injected below the framing
          layer, so both dialects exercise the same catalogue.  Run
          twice with the same seed {e and} transport for byte-identical
          fault logs (the [hello] exchange adds consults, so logs are
          comparable per-transport only). *)
  delay_ms : int;
      (** Stall applied by fired [latency]-class consults (ambient:
          applied, never logged per event — docs/RESILIENCE.md). *)
}

val default_config : config
(** seed 42, 500 requests, 32 distinct, size 4, classes
    [io; conn; worker], rate 0.1, concurrency 1, v1 transport,
    25 ms gray delay. *)

type report = {
  seed : int;
  requests : int;
  classes : string list;
  rate : float;
  transport : string;    (** {!Wire.version_name} of the session transport. *)
  ok : int;
  errors : int;          (** Requests that exhausted every retry. *)
  retried : int;         (** Requests needing more than one attempt. *)
  attempts : int;        (** Total attempts across answered requests. *)
  disagreements : int;
  acked : int;           (** Distinct instances acknowledged persisted. *)
  lost_writes : int;     (** Acked instances missing/wrong after reopen. *)
  faults : int;          (** {!Fault.Plan.faults_injected}. *)
  delays : int;          (** Ambient latency stalls applied ({!Fault.Plan.delays_injected}). *)
  site_counts : (string * int) list;
  worker_deaths : int;
  store_quarantined : int;
  store_healed : int;
  store_io_errors : int;
  fingerprint : string;
  fault_log : string list;
  converged : bool;      (** No disagreements, no lost writes, some oks. *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  recovery_p50_ms : float;  (** Latency of retried requests only. *)
  recovery_p95_ms : float;
  recovery_max_ms : float;
  wall_s : float;
}

val run : config -> report
(** Boots on a fresh temp Unix socket and store journal (removed
    afterwards); arms the plan only while requests are in flight, so
    the ground-truth computation and the final audit are fault-free. *)

val json_of_report : report -> Json.t
