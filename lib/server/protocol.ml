type verdict_wire = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : string;
  exactness : string;
  witness : int list option;
}

let wire_of_verdict (v : Analysis.verdict) =
  {
    conflict_free = v.Analysis.conflict_free;
    full_rank = v.Analysis.full_rank;
    decided_by = Analysis.decided_by_name v.Analysis.decided_by;
    exactness =
      (match v.Analysis.exactness with Analysis.Exact -> "exact" | Analysis.Bounded -> "bounded");
    witness = Option.map Intvec.to_ints v.Analysis.witness;
  }

let wire_of_entry (e : Store.entry) =
  {
    conflict_free = e.Store.conflict_free;
    full_rank = e.Store.full_rank;
    decided_by = e.Store.decided_by;
    exactness = "exact";
    witness = e.Store.witness;
  }

let entry_of_wire w =
  {
    Store.conflict_free = w.conflict_free;
    full_rank = w.full_rank;
    decided_by = w.decided_by;
    witness = w.witness;
  }

let json_of_wire w =
  Json.Obj
    [
      ("conflict_free", Json.Bool w.conflict_free);
      ("full_rank", Json.Bool w.full_rank);
      ("decided_by", Json.Str w.decided_by);
      ("exactness", Json.Str w.exactness);
      ("witness", Json.option Json.ints w.witness);
    ]

(* ----------------------------- requests ---------------------------- *)

type request =
  | Analyze of { mu : int array; tmat : Intmat.t; deadline_ms : int option }
  | Search of {
      algorithm : string;
      mu : int;
      s : Intmat.t option;
      pareto : bool;
      array_dim : int;
      deadline_ms : int option;
    }
  | Simulate of { algorithm : string; mu : int; s : Intmat.t option; pi : Intvec.t }
  | Replay of { instance : Check.Instance.t }
  | Ship of { seq : int; line : string }
  | Ping
  | Stats
  | Drain
  | Hello of { transport : string }

type envelope = { id : Json.t; req : request }

let op_name = function
  | Analyze _ -> "analyze"
  | Search _ -> "search"
  | Simulate _ -> "simulate"
  | Replay _ -> "replay"
  | Ship _ -> "ship"
  | Ping -> "ping"
  | Stats -> "stats"
  | Drain -> "drain"
  | Hello _ -> "hello"

let queued = function
  | Analyze _ | Search _ | Simulate _ | Replay _ -> true
  | Ship _ | Ping | Stats | Drain | Hello _ -> false

let deadline_ms = function
  | Analyze { deadline_ms; _ } | Search { deadline_ms; _ } -> deadline_ms
  | Simulate _ | Replay _ | Ship _ | Ping | Stats | Drain | Hello _ -> None

let max_line_bytes = 1024 * 1024

(* ------------------------- field extraction ------------------------ *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let member name json = Json.member name json

let opt_member name json =
  match member name json with Some Json.Null | None -> None | v -> v

let require name json =
  match opt_member name json with
  | Some v -> v
  | None -> failf "missing field %S" name

let to_int name = function
  | Json.Int i -> i
  | _ -> failf "field %S must be an integer" name

let to_string name = function
  | Json.Str s -> s
  | _ -> failf "field %S must be a string" name

let to_bool name = function
  | Json.Bool b -> b
  | _ -> failf "field %S must be a boolean" name

let to_int_list name = function
  | Json.Arr xs -> List.map (to_int name) xs
  | _ -> failf "field %S must be an array of integers" name

let to_matrix name = function
  | Json.Arr rows when rows <> [] -> (
    match Intmat.of_ints (List.map (to_int_list name) rows) with
    | m -> m
    | exception Invalid_argument msg -> failf "field %S: %s" name msg)
  | _ -> failf "field %S must be a non-empty array of integer rows" name

let opt_int name json = Option.map (to_int name) (opt_member name json)
let opt_matrix name json = Option.map (to_matrix name) (opt_member name json)

let parse_request json =
  match json with
  | Json.Obj _ -> (
    let id = match member "id" json with Some v -> v | None -> Json.Null in
    match
      let op = to_string "op" (require "op" json) in
      let req =
        match op with
        | "analyze" ->
          let tmat = to_matrix "t" (require "t" json) in
          let mu = Array.of_list (to_int_list "mu" (require "mu" json)) in
          if Array.length mu <> Intmat.cols tmat then
            failf "mu arity %d does not match t columns %d" (Array.length mu)
              (Intmat.cols tmat);
          if Array.exists (fun m -> m < 1) mu then failf "mu entries must be >= 1";
          Analyze { mu; tmat; deadline_ms = opt_int "deadline_ms" json }
        | "search" ->
          Search
            {
              algorithm = to_string "algorithm" (require "algorithm" json);
              mu = to_int "mu" (require "mu" json);
              s = opt_matrix "s" json;
              pareto =
                (match opt_member "pareto" json with
                | Some v -> to_bool "pareto" v
                | None -> false);
              array_dim = Option.value ~default:1 (opt_int "array_dim" json);
              deadline_ms = opt_int "deadline_ms" json;
            }
        | "simulate" ->
          Simulate
            {
              algorithm = to_string "algorithm" (require "algorithm" json);
              mu = to_int "mu" (require "mu" json);
              s = opt_matrix "s" json;
              pi = Intvec.of_ints (to_int_list "pi" (require "pi" json));
            }
        | "replay" ->
          let instance =
            match opt_member "case" json with
            | Some v -> (
              match Check.Instance.of_string (to_string "case" v) with
              | inst -> inst
              | exception Failure msg -> failf "field \"case\": %s" msg)
            | None -> (
              let tmat = to_matrix "t" (require "t" json) in
              let mu = Array.of_list (to_int_list "mu" (require "mu" json)) in
              match Check.Instance.make ~mu tmat with
              | inst -> inst
              | exception Invalid_argument msg -> failf "bad instance: %s" msg)
          in
          Replay { instance }
        | "ship" ->
          let seq = to_int "seq" (require "seq" json) in
          if seq < 0 then failf "field \"seq\" must be >= 0";
          let line = to_string "record" (require "record" json) in
          if String.contains line '\n' then failf "field \"record\" must be one line";
          Ship { seq; line }
        | "ping" -> Ping
        | "stats" -> Stats
        | "drain" -> Drain
        | "hello" ->
          Hello
            {
              transport =
                (match opt_member "transport" json with
                | Some v -> to_string "transport" v
                | None -> "json");
            }
        | other -> failf "unknown op %S" other
      in
      { id; req }
    with
    | env -> Ok env
    | exception Bad msg -> Error msg)
  | _ -> Error "request must be a JSON object"

let request_of_line line =
  match Json.parse ~max_bytes:max_line_bytes line with
  | Error msg -> Error msg
  | Ok json -> parse_request json

(* ------------------------------ builders --------------------------- *)

let with_id id fields =
  match id with None -> fields | Some id -> ("id", id) :: fields

let json_of_mat m = Json.Arr (List.map Json.ints (Intmat.to_ints m))

let analyze ?id ?deadline_ms ~mu tmat =
  Json.Obj
    (with_id id
       ([
          ("op", Json.Str "analyze");
          ("t", json_of_mat tmat);
          ("mu", Json.ints (Array.to_list mu));
        ]
       @ match deadline_ms with None -> [] | Some ms -> [ ("deadline_ms", Json.Int ms) ]))

let search ?id ?deadline_ms ?s ?(pareto = false) ?(array_dim = 1) ~algorithm ~mu () =
  Json.Obj
    (with_id id
       ([
          ("op", Json.Str "search");
          ("algorithm", Json.Str algorithm);
          ("mu", Json.Int mu);
          ("pareto", Json.Bool pareto);
          ("array_dim", Json.Int array_dim);
        ]
       @ (match s with None -> [] | Some s -> [ ("s", json_of_mat s) ])
       @ match deadline_ms with None -> [] | Some ms -> [ ("deadline_ms", Json.Int ms) ]))

let simulate ?id ?s ~algorithm ~mu ~pi () =
  Json.Obj
    (with_id id
       ([
          ("op", Json.Str "simulate");
          ("algorithm", Json.Str algorithm);
          ("mu", Json.Int mu);
          ("pi", Json.ints (Intvec.to_ints pi));
        ]
       @ match s with None -> [] | Some s -> [ ("s", json_of_mat s) ]))

let replay ?id instance =
  Json.Obj
    (with_id id
       [ ("op", Json.Str "replay"); ("case", Json.Str (Check.Instance.to_string instance)) ])

let ship ?id ~seq ~record () =
  Json.Obj
    (with_id id
       [ ("op", Json.Str "ship"); ("seq", Json.Int seq); ("record", Json.Str record) ])

let simple op ?id () = Json.Obj (with_id id [ ("op", Json.Str op) ])
let ping = simple "ping"
let stats_request = simple "stats"
let drain = simple "drain"

let hello ?id ~transport () =
  Json.Obj (with_id id [ ("op", Json.Str "hello"); ("transport", Json.Str transport) ])

(* ------------------------------ replies ---------------------------- *)

let ok_reply ~id ~op fields =
  Json.Obj (("id", id) :: ("ok", Json.Bool true) :: ("op", Json.Str op) :: fields)

let error_reply ~id ~code ~detail =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ("error", Json.Str code);
      ("detail", Json.Str detail);
    ]

let reply_id json = match member "id" json with Some v -> v | None -> Json.Null
let reply_ok json = match member "ok" json with Some (Json.Bool b) -> b | _ -> false

let error_code json =
  match member "error" json with Some (Json.Str s) -> Some s | _ -> None
