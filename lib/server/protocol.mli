(** The JSON {e document} layer of the mapping-query service — the
    request/reply vocabulary shared by both transports of {!Wire}.

    One request object per message in, one reply object per message
    out (a bare line on the v1 transport, a frame on v2 — framing is
    {!Wire}'s concern, not this module's).  Requests carry an [op]
    selecting the operation and an optional [id] (any JSON value)
    echoed verbatim in the reply, so clients may pipeline; the
    analysis operations reuse the schema-v2 field shapes of the
    corresponding CLI subcommands.  The full grammar lives in
    [docs/SERVER.md], the field catalogue in [docs/SCHEMA.md].

    Replies are [{"id": ..., "ok": true, "op": ..., ...}] on success
    and [{"id": ..., "ok": false, "error": <code>, "detail": ...}] on
    failure, with [error] one of [parse_error], [bad_request],
    [overloaded], [draining], [internal]. *)

(** The renderable subset of an {!Analysis.verdict} — everything but
    the wall-clock [timing], which would make equal verdicts compare
    unequal.  A store hit and a fresh computation of the same query
    render byte-identically through {!json_of_wire} (the differential
    server tests rely on this). *)
type verdict_wire = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : string;
  exactness : string;  (** ["exact"] or ["bounded"]. *)
  witness : int list option;
}

val wire_of_verdict : Analysis.verdict -> verdict_wire
val wire_of_entry : Store.entry -> verdict_wire
(** Stored entries are always exact. *)

val entry_of_wire : verdict_wire -> Store.entry
val json_of_wire : verdict_wire -> Json.t

(** {1 Requests} *)

type request =
  | Analyze of { mu : int array; tmat : Intmat.t; deadline_ms : int option }
  | Search of {
      algorithm : string;
      mu : int;
      s : Intmat.t option;
      pareto : bool;
      array_dim : int;
      deadline_ms : int option;
    }
  | Simulate of { algorithm : string; mu : int; s : Intmat.t option; pi : Intvec.t }
  | Replay of { instance : Check.Instance.t }
      (** Differential replay of one corpus-format instance:
          {!Analysis.check} against the brute-force oracle. *)
  | Ship of { seq : int; line : string }
      (** Journal replication (docs/CLUSTER.md): apply one raw store
          record line via {!Store.ingest_line}.  [seq] is the
          shipper's watermark for this record (the primary-journal
          byte offset just past it), echoed back in the ack so the
          shipper can resume; the receiver validates the line itself
          (its CRC travels inside it) and applies idempotently.
          Answered inline, shard-direct only — the router rejects
          it. *)
  | Ping
  | Stats
  | Drain
  | Hello of { transport : string }
      (** Transport negotiation ({!Wire}): the client names the
          transport it wants (["json"] or ["binary"]); the server
          answers in the {e current} transport and both sides switch
          immediately after.  An unknown name is a [bad_request] and
          the connection stays as it was. *)

type envelope = { id : Json.t; req : request }

val op_name : request -> string

val queued : request -> bool
(** Whether the request goes through admission control ([analyze],
    [search], [simulate], [replay]); [ship]/[ping]/[stats]/[drain]
    are answered inline by the connection thread. *)

val deadline_ms : request -> int option

val max_line_bytes : int
(** Input-size cap applied to each request line (1 MiB) — far above
    any legitimate request, far below memory exhaustion. *)

val parse_request : Json.t -> (envelope, string) result
val request_of_line : string -> (envelope, string) result
(** {!Json.parse} (with {!max_line_bytes} and the default depth cap)
    followed by {!parse_request}. *)

(** {1 Client-side request builders}

    These build the JSON {e documents}; how a document travels is the
    transport's business.  New transport-aware code should hand the
    result to {!Wire.encode} (or use {!Client}, which does) rather
    than writing raw lines — on a v2 connection a bare line is not a
    valid message. *)

val analyze : ?id:Json.t -> ?deadline_ms:int -> mu:int array -> Intmat.t -> Json.t
(** @deprecated As a wire-level constructor: wrap the document in
    {!Wire.Text} (or send the equivalent {!Wire.Bin_analyze} frame on
    a v2 connection) instead of appending a newline by hand. *)

val search :
  ?id:Json.t -> ?deadline_ms:int -> ?s:Intmat.t -> ?pareto:bool -> ?array_dim:int ->
  algorithm:string -> mu:int -> unit -> Json.t
(** @deprecated As a wire-level constructor: see {!analyze}. *)

val simulate : ?id:Json.t -> ?s:Intmat.t -> algorithm:string -> mu:int -> pi:Intvec.t -> unit -> Json.t
(** @deprecated As a wire-level constructor: see {!analyze}. *)

val replay : ?id:Json.t -> Check.Instance.t -> Json.t
(** @deprecated As a wire-level constructor: see {!analyze}. *)

val ship : ?id:Json.t -> seq:int -> record:string -> unit -> Json.t

val ping : ?id:Json.t -> unit -> Json.t
(** @deprecated As a wire-level constructor: see {!analyze}. *)

val stats_request : ?id:Json.t -> unit -> Json.t
(** @deprecated As a wire-level constructor: see {!analyze}. *)

val drain : ?id:Json.t -> unit -> Json.t
(** @deprecated As a wire-level constructor: see {!analyze}. *)

val hello : ?id:Json.t -> transport:string -> unit -> Json.t
(** The negotiation document itself always travels in the connection's
    current transport. *)

(** {1 Replies} *)

val ok_reply : id:Json.t -> op:string -> (string * Json.t) list -> Json.t
val error_reply : id:Json.t -> code:string -> detail:string -> Json.t

val reply_id : Json.t -> Json.t
(** The echoed [id], [Null] when absent. *)

val reply_ok : Json.t -> bool
val error_code : Json.t -> string option
(** The [error] field of a failure reply. *)
