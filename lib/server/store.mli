(** Persistent content-addressed store of {!Analysis.check} verdicts.

    The store is the server's warm cache across restarts: an
    append-only on-disk journal, one record per exact verdict, keyed
    by the same Intmat content hash the in-memory
    {!Engine.Cache} tables use (the k×n mapping matrix with [mu]
    stacked as an extra row).  At {!open_} the journal is replayed
    into a hash table; every {!add} appends one record.

    Durability and recovery:

    - {e fsync batching}: appends are flushed to the OS on every
      record but [fsync]ed only every [fsync_every] records (and on
      {!flush}/{!close}), so a 10k-request burst does not pay 10k
      disk syncs.  A crash loses at most the un-synced tail.
    - {e crash-truncation recovery}: every record carries a checksum
      over its content.  Replay stops at the first incomplete or
      corrupt record — a torn tail from a crash mid-append — and the
      journal is truncated back to the last valid record, so the next
      append starts from a clean frame.  The dropped byte count is
      reported in {!stats}.

    Only verdicts with [exactness = Exact] belong in the store
    (bounded verdicts depend on the budget that produced them);
    callers enforce this, see [Handlers].  All operations are
    thread-safe. *)

type entry = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : string;  (** {!Analysis.decided_by_name} of the verdict. *)
  witness : int list option;
}

type t

val open_ : ?fsync_every:int -> string -> t
(** Open (creating if absent) the journal at the given path and replay
    it.  [fsync_every] (default 32) is the record count between
    [fsync]s.
    @raise Failure when the file exists but is not a store journal
    (wrong header) — the store never clobbers a foreign file.
    @raise Sys_error when the path is not readable/writable. *)

val find : t -> mu:int array -> Intmat.t -> entry option
(** Look up the verdict for [(t, mu)].  Bumps the
    [server.store.hits] / [server.store.misses] metrics. *)

val add : t -> mu:int array -> Intmat.t -> entry -> unit
(** Record a verdict and append it to the journal.  A key already
    present is a no-op (verdicts are deterministic, so the entry can
    only be identical). *)

val flush : t -> unit
(** Flush buffered appends and [fsync] the journal. *)

val close : t -> unit
(** {!flush}, then close the journal.  The store must not be used
    afterwards. *)

type stats = {
  entries : int;        (** Keys currently held in memory. *)
  hits : int;           (** {!find} successes since {!open_}. *)
  misses : int;         (** {!find} failures since {!open_}. *)
  appended : int;       (** Records written by this process. *)
  loaded : int;         (** Records replayed from disk at {!open_}. *)
  dropped_bytes : int;  (** Torn tail truncated away at {!open_}. *)
}

val stats : t -> stats

val entry_of_verdict : Analysis.verdict -> entry
(** Project the storable fields ([timing] and [exactness] are not
    persisted — the former is nondeterministic, the latter is always
    [Exact] for stored verdicts). *)
