(** Persistent content-addressed store of {!Analysis.check} verdicts.

    The store is the server's warm cache across restarts: an
    append-only on-disk journal, one record per exact verdict, keyed
    by the same Intmat content hash the in-memory
    {!Engine.Cache} tables use (the k×n mapping matrix with [mu]
    stacked as an extra row).  At {!open_} the journal is replayed
    into a hash table; every {!add} appends one record.

    Durability and recovery:

    - {e fsync batching}: appends are flushed to the OS on every
      record but [fsync]ed only every [fsync_every] records (and on
      {!flush}/{!close}), so a 10k-request burst does not pay 10k
      disk syncs.  A crash loses at most the un-synced tail.
    - {e crash-truncation recovery}: every record carries a checksum
      over its content.  An incomplete last line — a torn tail from a
      crash mid-append — is truncated back to the last valid record,
      so the next append starts from a clean frame.  The dropped byte
      count is reported in {!stats}.
    - {e quarantine self-healing}: a {e complete} record that fails
      its checksum (bit rot, partial overwrite) is moved into the
      [<path>.quarantine] sidecar and the journal is compacted
      (tmp + rename, fsynced).  Records after the corrupt one are
      independently checksummed and survive.  The corrupt record's
      key, salvaged best-effort, is marked so {!find} forces a miss
      until a fresh verdict re-verifies it via {!add} (the [healed]
      counter); see docs/RESILIENCE.md for the sidecar format.
    - {e directory durability}: file creation, tail truncation and
      compaction are followed by an [fsync] of the parent directory,
      so the metadata change itself survives power loss.

    Replay is last-wins per key: a healed key's fresh record
    supersedes any earlier one in the journal.

    Fault injection: with an armed {!Fault.Plan}, {!add} consults the
    [store.write] site (torn append, rolled back by truncation, then
    raises {!Fault.Injected}) and the [store.fsync] site (skipped
    sync, retried on the next append).  {!flush} and {!close} always
    sync for real.

    Only verdicts with [exactness = Exact] belong in the store
    (bounded verdicts depend on the budget that produced them);
    callers enforce this, see [Handlers].  All operations are
    thread-safe. *)

type entry = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : string;  (** {!Analysis.decided_by_name} of the verdict. *)
  witness : int list option;
}

type t

val open_ : ?fsync_every:int -> ?snapshot:string -> string -> t
(** Open (creating if absent) the journal at the given path and replay
    it.  [fsync_every] (default 32) is the record count between
    [fsync]s.  With [snapshot], a {!Snapshot} at that path is opened
    first (two bounded reads, O(1) in its size) and consulted on
    memory misses, so a compacted store warm-starts without replaying
    its history; the replayed journal tail shadows the snapshot
    (last-wins), and a structurally unusable snapshot is a warning
    plus a plain replay, never a failure.  The elapsed open time feeds
    the [server.store.open_ms] histogram and {!stats}.
    @raise Failure when the file exists but is not a store journal
    (wrong header) — the store never clobbers a foreign file.
    @raise Sys_error when the path is not readable/writable. *)

val find : t -> mu:int array -> Intmat.t -> entry option
(** Look up the verdict for [(t, mu)].  Bumps the
    [server.store.hits] / [server.store.misses] metrics.  A key whose
    journal record was quarantined misses unconditionally until
    {!add} re-verifies it. *)

val add : t -> mu:int array -> Intmat.t -> entry -> unit
(** Record a verdict and append it to the journal.  A key already
    present is a no-op (verdicts are deterministic, so the entry can
    only be identical) — unless the key is quarantined, in which case
    the fresh entry re-verifies it: a match just clears the mark, a
    mismatch appends a superseding record.
    @raise Fault.Injected when an armed plan fires [store.write]; the
    torn bytes are rolled back and the entry is not recorded — the
    caller may retry or degrade. *)

val find_family : t -> Intmat.t -> Family.t option
(** Look up the family verdict journaled for the mapping matrix alone
    ([f] records, one per distinct [T]); does not touch the hit/miss
    counters, which are reserved for per-instance verdicts.  A
    quarantined key misses until {!add_family} re-verifies it. *)

val add_family : t -> Intmat.t -> Family.t -> unit
(** Record a family verdict ([f] record).  Deduplication, quarantine
    healing and fault injection behave exactly as in {!add}; counted
    in [f_appended], never in [appended]. *)

val ingest_line : t -> string -> (unit, string) result
(** Apply one raw journal record line shipped from another store (the
    [ship] op of journal replication, docs/CLUSTER.md): the line is
    validated exactly as replay would — frame shape, CRC, payload —
    then applied last-wins and appended to this store's own journal,
    so a follower's journal is self-contained.  Idempotent: a
    re-shipped record whose entry is already current appends nothing,
    which makes resume-from-watermark safe.  [Error] on a malformed
    line (nothing applied).
    @raise Fault.Injected as {!add} (the record is then not applied —
    the shipper re-ships it). *)

val write_snapshot : t -> string -> int
(** Write everything the store can currently serve — snapshot,
    journal tail and in-memory additions merged last-wins, quarantined
    keys excluded — as a {!Snapshot} at the given path (atomic,
    fsynced).  Returns the record count.  The store keeps running on
    its current journal; see {!compact_to_snapshot} for the rotation
    that also resets the tail. *)

val compact_to_snapshot : t -> snapshot:string -> int
(** {!write_snapshot} to [snapshot], then truncate the journal back to
    its bare header and switch the store to the fresh snapshot, so the
    next {!open_} with this snapshot replays an empty tail in O(1)
    reads.  The snapshot is durable before the journal is reset: a
    crash between the two steps leaves records present in both, which
    replay's last-wins absorbs.  Returns the snapshot record count. *)

val flush : t -> unit
(** Flush buffered appends and [fsync] the journal. *)

val close : t -> unit
(** {!flush}, then close the journal.  The store must not be used
    afterwards. *)

type stats = {
  entries : int;        (** Verdict keys currently held in memory. *)
  hits : int;           (** {!find} successes since {!open_}. *)
  misses : int;         (** {!find} failures since {!open_}. *)
  appended : int;       (** Verdict records written by this process. *)
  loaded : int;         (** Verdict records replayed from disk at {!open_}. *)
  families : int;       (** Family verdicts currently held in memory. *)
  f_appended : int;     (** Family records written by this process. *)
  f_loaded : int;       (** Family records replayed from disk at {!open_}. *)
  dropped_bytes : int;  (** Torn tail truncated away at {!open_}. *)
  quarantined : int;    (** Corrupt records moved to the sidecar at {!open_}. *)
  healed : int;         (** Quarantined keys re-verified by {!add}. *)
  io_errors : int;      (** Injected/encountered write+fsync failures. *)
  snap_entries : int;   (** Records in the attached snapshot (0 when none). *)
  snap_hits : int;      (** Lookups served from the snapshot. *)
  snap_corrupt : int;   (** Snapshot entries that failed validation. *)
  open_ms : float;      (** Wall-clock {!open_} time. *)
  provenance : string;
      (** How the warm state was built: ["created"], ["replay"],
          ["snapshot"] or ["snapshot+tail"]. *)
}

val stats : t -> stats

val key_hash : mu:int array -> Intmat.t -> int
(** The 32-bit content hash a query is journaled (and singleflighted,
    see {!Singleflight}) under: {!Engine.Cache.key_hash} of the
    mapping matrix with [mu] stacked as an extra row, masked to 32
    bits. *)

val key_string : mu:int array -> Intmat.t -> string
(** The canonical key rendering that disambiguates colliding hashes
    ([mu=...;t=...;...]) — byte-identical across processes. *)

val family_hash : Intmat.t -> int
(** The 32-bit content hash family records are journaled under —
    {!Engine.Cache.key_hash} of the mapping matrix alone — also the
    singleflight group key, so every instance of a family coalesces
    behind one symbolic analysis. *)

val family_key_string : Intmat.t -> string
(** Canonical family key ([t=...]); disjoint by construction from the
    [mu=...] verdict keys, so the two kinds share the quarantine
    namespace safely. *)

val entry_of_verdict : Analysis.verdict -> entry
(** Project the storable fields ([timing] and [exactness] are not
    persisted — the former is nondeterministic, the latter is always
    [Exact] for stored verdicts). *)
