(** Readiness notification for the daemon's event loop: [poll(2)]
    through a small C stub, with a pure-OCaml {!Unix.select} fallback.

    The backend is chosen once at startup: [SHANGFORTES_POLL=select]
    in the environment forces the fallback (the test suite runs the
    event loop under both); otherwise the stub is probed once and
    [select] is used only if the probe fails.  Both backends present
    the same interface and the same semantics — a connection readable
    at EOF and a peer reset both surface as readable, so the caller
    discovers the condition from the subsequent [read]. *)

type interest = { want_read : bool; want_write : bool }

type event = { ready_read : bool; ready_write : bool; ready_error : bool }
(** [ready_error] covers POLLERR / POLLHUP-without-data / POLLNVAL;
    the select fallback folds these into [ready_read] (the
    descriptor is readable at EOF), which callers must treat
    identically. *)

type backend = Native_poll | Select

val backend : unit -> backend
(** The backend in use (decided on first {!wait}). *)

val wait :
  (Unix.file_descr * interest) list -> timeout_ms:int -> (Unix.file_descr * event) list
(** Block until at least one descriptor is ready or the timeout
    elapses ([timeout_ms < 0] waits forever).  Returns one event per
    {e ready} descriptor, in input order; an interrupted wait (EINTR)
    returns the empty list, so callers simply re-evaluate state and
    wait again. *)
