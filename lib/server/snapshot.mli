(** Compact hash-indexed snapshot of a {!Store} journal
    ([shangfortes-snap 1]) — the O(1)-open half of the
    snapshot + journal-tail warm start (docs/CLUSTER.md has the BNF).

    Layout: a text header line; the record lines themselves in
    journal format, sorted by (kind, hash, key); a fixed-width index
    (13 bytes per record: kind, 32-bit hash, file offset, line
    length); and a 24-byte footer carrying the index offset, the
    record count and an FNV-1a CRC over the index.

    {!open_reader} performs exactly two bounded reads (header +
    footer) regardless of snapshot size; the index is loaded lazily by
    the first query and each located line is handed back raw for the
    caller to re-validate against the record's own CRC — so the index
    is a locator, never an authority: a bit-flipped entry degrades to
    a counted miss ({!corrupt_entries}), a truncated or foreign footer
    fails {!open_reader} and the store falls back to full journal
    replay.  The reader is thread-safe. *)

val header : string
(** ["shangfortes-snap 1"]. *)

val write : string -> (char * int * string * string) list -> int
(** [write path records] writes a snapshot atomically (tmp + rename,
    file and directory fsynced) from [(kind, hash, key, line)]
    records, where [line] is the canonical journal record line without
    its newline; records are sorted here.  Returns the record count.
    @raise Sys_error when the path is not writable. *)

type t

val open_reader : string -> (t, string) result
(** Validate header and footer (two reads, O(1) in snapshot size) and
    return a reader; [Error] on anything structurally wrong — absent
    file, bad header, truncated/foreign footer, footer geometry that
    does not match the file size. *)

val find_all : t -> kind:char -> hash:int -> string list
(** Record lines indexed under [(kind, hash)] — normally zero or one,
    more only on a 32-bit hash collision.  The caller must parse and
    CRC-check each line ({!Store} does) and match the key exactly. *)

val iter_lines : t -> (string -> unit) -> unit
(** Sequential sweep of the data region in file order, for
    compaction; lines are raw and unvalidated. *)

val entries : t -> int
(** Record count from the footer. *)

val reads : t -> int
(** Positioned reads issued so far, the two open-time reads included —
    the O(1)-open test bounds this before the first query. *)

val corrupt_entries : t -> int
(** Index entries skipped for impossible geometry or unreadable
    bytes. *)

val path : t -> string
val close : t -> unit
