(** Client for the daemon's versioned wire protocol ({!Wire}),
    doubling as the load generator behind the [client] CLI subcommand,
    the serve bench section and the CI smoke job.

    Every connection starts on the v1 JSON-lines dialect; passing
    [~transport:Wire.V2] sends the [hello] negotiation frame first and
    switches both directions to the binary framing once the server
    acks it.  Whatever the dialect, replies surface as the JSON
    document they are equivalent to — a binary ['V'] verdict frame
    reconstructs the exact [ok] analyze reply — so callers never see
    the transport. *)

type addr = [ `Unix of string | `Tcp of string * int ]

type conn

val connect : ?transport:Wire.version -> addr -> conn
(** Default transport {!Wire.V1}.
    @raise Unix.Unix_error when the server is not there.
    @raise Failure when the server refuses the requested transport. *)

val request : conn -> Json.t -> Json.t
(** Send one request document, block for the reply.
    @raise Failure on EOF, a corrupt frame or an unparsable reply. *)

val send : conn -> Json.t -> unit
(** Write one request document without reading anything — the
    pipelining half for callers (the cluster router) that multiplex
    many requests over one connection and match replies by id. *)

val recv : conn -> Json.t
(** Block for the next reply, whatever its id.  A binary ['V'] frame
    surfaces as the equivalent [ok] analyze reply document.
    @raise Failure as {!request}. *)

val send_analyze :
  conn -> id:int -> ?deadline_ms:int -> mu:int array -> Intmat.t -> unit
(** The transport-polymorphic analyze send: a compact binary ['A']
    frame once the connection speaks v2, the JSON document
    otherwise. *)

val close : conn -> unit

val shutdown : conn -> unit
(** Shut both directions down without closing the descriptor: a thread
    blocked in {!recv} wakes with an EOF failure, after which {!close}
    is safe — the shutdown-join-close sequence the router's connection
    pool uses.  Never raises. *)

(** {1 Retrying session}

    A [session] wraps the raw connection with the recovery loop a
    fault-injected (or merely unlucky) daemon demands: reconnect on
    any transport failure (renegotiating the transport), re-issue the
    request with the {e same} id, discard replies whose id does not
    echo it (so a late reply to a timed-out earlier attempt is never
    mis-attributed), and back off exponentially with deterministic
    seeded jitter between attempts.  [overloaded] and [draining] error
    replies are also retried; other error replies are returned as-is —
    they are answers, not transport failures.  Analyze requests are
    idempotent (verdicts are deterministic), so re-issue is always
    safe.  See docs/RESILIENCE.md. *)

type retry = {
  max_attempts : int;     (** Total tries, first included (>= 1). *)
  base_delay_ms : float;  (** Backoff before the 2nd try. *)
  max_delay_ms : float;   (** Backoff ceiling. *)
  timeout_ms : float;     (** Per-read receive timeout (SO_RCVTIMEO). *)
  retry_seed : int;       (** Seeds the jitter LCG. *)
  retry_budget : int;
      (** Token-bucket capacity bounding {e re-issues} across the whole
          session — the retry-storm guard: once the bucket is empty a
          failed call returns its error instead of hammering a slow
          server.  [<= 0] disables the bucket (unlimited retries, the
          pre-bucket behaviour). *)
  retry_refill_per_s : float;
      (** Continuous bucket refill rate (tokens per second, capped at
          [retry_budget]). *)
}

val default_retry : retry
(** 8 attempts, 1 ms base, 100 ms ceiling, 2 s read timeout, seed 0,
    retry budget 128 refilling at 64 tokens/s — generous enough that a
    well-behaved session never notices the bucket. *)

type session

val session : ?retry:retry -> ?transport:Wire.version -> addr -> session
(** Lazy: the first {!call} connects (and negotiates [transport],
    default {!Wire.V1}); so does every reconnect after a transport
    failure. *)

val call : session -> Json.t -> (Json.t * int, string) result
(** [call s req] returns [(reply, attempts)] or, after exhausting
    [max_attempts], the last transport error.  A request without an
    ["id"] field gets a session-unique one stamped in. *)

val close_session : session -> unit
(** Drop the current connection (the session may be reused; the next
    {!call} reconnects). *)

(** {1 Load generation}

    [load] replays a deterministic {!Check.Gen.ith} instance stream as
    [analyze] requests from [concurrency] worker threads (one
    connection each), cycling over [distinct] instances — so a second
    pass hits the server's warm store.  Each worker keeps up to
    [pipeline] requests in flight on its connection and matches
    replies back by id (the server may answer warm requests out of
    order relative to cold ones).  On {!Wire.V2} the requests go out
    as compact binary ['A'] frames.  With [verify] every exact reply's
    [verdict] object must render byte-identically to a direct local
    {!Analysis.check}; disagreements are counted (and must be zero —
    the CI smoke job asserts it). *)

type load_config = {
  requests : int;
  concurrency : int;
  distinct : int;      (** Distinct instances in the cycled pool. *)
  seed : int;
  size : int;          (** {!Check.Gen} size parameter. *)
  verify : bool;
  deadline_ms : int option;
  transport : Wire.version;
  pipeline : int;      (** Max requests in flight per connection (>= 1). *)
}

val default_load : load_config
(** 1000 requests, 8 workers, 64 distinct instances, seed 1, size 4,
    verify on, no deadline, v1 transport, pipeline 1. *)

type load_report = {
  sent : int;
  ok : int;
  shed : int;           (** [overloaded] replies. *)
  draining : int;
  deadline_exceeded : int;
      (** [deadline_exceeded] replies — answers (the budget really was
          spent), not failures. *)
  errors : int;         (** Transport failures and unexpected replies. *)
  bounded : int;        (** Exact-comparison skips (bounded verdicts). *)
  disagreements : int;
  transport : string;   (** Negotiated transport ({!Wire.version_name}). *)
  pipeline : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  wall_s : float;
  rps : float;
}

val load : addr -> load_config -> load_report
(** Latencies additionally feed the [client.request_ms] histogram of
    {!Obs.Metrics}. *)

val load_any : addr list -> load_config -> load_report
(** {!load} with workers round-robined over several addresses — the
    [client --shards] mode: driving a shard fleet (or a router plus
    direct shard sockets) under the same byte-for-byte verification,
    since every reply is checked against a local {!Analysis.check}
    regardless of which server produced it.
    @raise Invalid_argument on an empty address list. *)

val json_of_load_report : load_report -> Json.t
