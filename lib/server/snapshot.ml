(* Hash-indexed store snapshot ("shangfortes-snap 1"): a sorted table
   of journal record lines, a fixed-width offset index, and a CRC'd
   footer, laid out so a reader needs exactly two bounded reads —
   header and footer — before it can answer its first query.

     header   "shangfortes-snap 1\n"
     data     record lines (journal format, '\n'-terminated),
              sorted by (kind, hash, key)
     index    count x 13-byte entries, same order:
              kind (1B) | hash (u32 BE) | offset (u32 BE) | len (u32 BE)
     footer   24 bytes: "SFSNAP1F" | index_off (u64 BE)
              | count (u32 BE) | crc (u32 BE, FNV-1a over the index)

   Offsets are absolute file positions of line starts; lengths exclude
   the newline.  Every record line carries its own body CRC (the
   journal frame), so the index is a locator, not an authority: a
   bit-flipped index entry yields a read that fails record validation
   in the caller and turns into a miss, never a crash. *)

let header = "shangfortes-snap 1"
let footer_magic = "SFSNAP1F"
let entry_bytes = 13
let footer_bytes = 24

(* Same FNV-1a as the store's record CRC. *)
let fnv1a_bytes b off len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 3) (Char.chr (v land 0xFF))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* ------------------------------ writer ----------------------------- *)

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Write a snapshot atomically (tmp + rename, fsynced) from the given
   [(kind, hash, key, line)] records; [line] is the canonical journal
   record line without its newline.  Returns the record count. *)
let write path records =
  let records =
    List.sort
      (fun (k1, h1, s1, _) (k2, h2, s2, _) ->
        match Char.compare k1 k2 with
        | 0 -> ( match compare (h1 : int) h2 with 0 -> String.compare s1 s2 | c -> c)
        | c -> c)
      records
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string oc header;
  output_char oc '\n';
  let pos = ref (String.length header + 1) in
  let index = Buffer.create (List.length records * entry_bytes) in
  let ebuf = Bytes.create entry_bytes in
  List.iter
    (fun (kind, hash, _key, line) ->
      output_string oc line;
      output_char oc '\n';
      Bytes.set ebuf 0 kind;
      put_u32 ebuf 1 (hash land 0xFFFFFFFF);
      put_u32 ebuf 5 !pos;
      put_u32 ebuf 9 (String.length line);
      Buffer.add_bytes index ebuf;
      pos := !pos + String.length line + 1)
    records;
  let index_off = !pos in
  let ibytes = Buffer.to_bytes index in
  output_bytes oc ibytes;
  let footer = Bytes.create footer_bytes in
  Bytes.blit_string footer_magic 0 footer 0 8;
  (* index_off as u64 BE: the high word is written via two u32 puts. *)
  put_u32 footer 8 (index_off lsr 32);
  put_u32 footer 12 (index_off land 0xFFFFFFFF);
  put_u32 footer 16 (List.length records);
  put_u32 footer 20 (fnv1a_bytes ibytes 0 (Bytes.length ibytes));
  output_bytes oc footer;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Sys.rename tmp path;
  fsync_dir path;
  List.length records

(* ------------------------------ reader ----------------------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  size : int;
  index_off : int;
  count : int;
  index_crc : int;
  (* Lazy: loaded (one read) on the first query, not at open. *)
  mutable index : Bytes.t option;
  mutable index_crc_ok : bool;
  mutable reads : int;  (* positioned reads issued, open included *)
  mutable corrupt : int;  (* index entries that failed validation *)
  lock : Mutex.t;
}

let reads t = t.reads
let entries t = t.count
let corrupt_entries t = t.corrupt
let path t = t.path

let pread t buf off len =
  t.reads <- t.reads + 1;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < len then
      match Unix.read t.fd buf pos (len - pos) with
      | 0 -> pos
      | n -> go (pos + n)
    else pos
  in
  go 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Open = two bounded reads (header line, footer), independent of the
   snapshot's size; the index and the records are only touched by
   queries.  Any structural problem is an [Error] — the store falls
   back to a full journal replay rather than crashing. *)
let open_reader path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot open %s: %s" path (Unix.error_message e))
  | fd -> (
    let fail msg =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error msg
    in
    match (Unix.fstat fd).Unix.st_size with
    | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
    | size ->
      let header_len = String.length header + 1 in
      if size < header_len + footer_bytes then
        fail (Printf.sprintf "%s: truncated snapshot (%d bytes)" path size)
      else begin
        let t =
          {
            path;
            fd;
            size;
            index_off = 0;
            count = 0;
            index_crc = 0;
            index = None;
            index_crc_ok = true;
            reads = 0;
            corrupt = 0;
            lock = Mutex.create ();
          }
        in
        let hbuf = Bytes.create header_len in
        if pread t hbuf 0 header_len <> header_len
           || Bytes.to_string hbuf <> header ^ "\n"
        then fail (Printf.sprintf "%s: not a snapshot (bad header)" path)
        else begin
          let fbuf = Bytes.create footer_bytes in
          if pread t fbuf (size - footer_bytes) footer_bytes <> footer_bytes then
            fail (Printf.sprintf "%s: unreadable footer" path)
          else if Bytes.sub_string fbuf 0 8 <> footer_magic then
            fail (Printf.sprintf "%s: truncated or foreign footer" path)
          else
            let index_off = (get_u32 fbuf 8 lsl 32) lor get_u32 fbuf 12 in
            let count = get_u32 fbuf 16 in
            let index_crc = get_u32 fbuf 20 in
            if
              index_off < header_len
              || index_off + (count * entry_bytes) <> size - footer_bytes
            then fail (Printf.sprintf "%s: footer geometry does not match file" path)
            else Ok { t with index_off; count; index_crc }
        end
      end)

let load_index t =
  match t.index with
  | Some ix -> ix
  | None ->
    let ix = Bytes.create (t.count * entry_bytes) in
    let got = pread t ix t.index_off (Bytes.length ix) in
    if got <> Bytes.length ix then t.index_crc_ok <- false
    else if fnv1a_bytes ix 0 (Bytes.length ix) <> t.index_crc then begin
      (* Keep serving: each located record still self-validates, so a
         damaged index degrades to misses on the damaged entries. *)
      t.index_crc_ok <- false;
      ignore
        (Obs.Warn.once
           ("server.snapshot.index_crc:" ^ t.path)
           (Printf.sprintf
              "snapshot %s: index checksum mismatch; damaged entries will miss" t.path))
    end;
    t.index <- Some ix;
    ix

let entry_key ix i =
  let off = i * entry_bytes in
  (Bytes.get ix off, get_u32 ix (off + 1))

(* All record lines indexed under (kind, hash) — normally zero or one,
   more only on a 32-bit collision.  Entries with impossible geometry
   or unreadable bytes are counted corrupt and skipped; the caller
   still validates each returned line against the record's own CRC. *)
let find_all t ~kind ~hash =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let hash = hash land 0xFFFFFFFF in
      let ix = load_index t in
      let want = (kind, hash) in
      let cmp i =
        let k, h = entry_key ix i in
        match Char.compare k kind with 0 -> compare h hash | c -> c
      in
      (* First index whose (kind, hash) >= want. *)
      let rec lower lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cmp mid < 0 then lower (mid + 1) hi else lower lo mid
      in
      let start = lower 0 t.count in
      let out = ref [] in
      let i = ref start in
      while !i < t.count && entry_key ix !i = want do
        let pos = get_u32 ix ((!i * entry_bytes) + 5) in
        let len = get_u32 ix ((!i * entry_bytes) + 9) in
        let header_len = String.length header + 1 in
        if len = 0 || len > t.index_off || pos < header_len || pos + len > t.index_off
        then t.corrupt <- t.corrupt + 1
        else begin
          let buf = Bytes.create len in
          if pread t buf pos len = len then out := Bytes.to_string buf :: !out
          else t.corrupt <- t.corrupt + 1
        end;
        incr i
      done;
      List.rev !out)

(* Sequential sweep of the data region, for compaction: every complete
   line between the header and the index, in file order.  Lines are
   handed over raw; the caller validates. *)
let iter_lines t f =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let header_len = String.length header + 1 in
      let len = t.index_off - header_len in
      if len > 0 then begin
        let buf = Bytes.create len in
        let got = pread t buf header_len len in
        let data = Bytes.sub_string buf 0 got in
        let n = String.length data in
        let rec go off =
          if off < n then
            match String.index_from_opt data off '\n' with
            | None -> ()
            | Some nl ->
              f (String.sub data off (nl - off));
              go (nl + 1)
        in
        go 0
      end)
