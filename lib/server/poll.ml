type interest = { want_read : bool; want_write : bool }
type event = { ready_read : bool; ready_write : bool; ready_error : bool }
type backend = Native_poll | Select

external sf_poll_fds : Unix.file_descr array -> int array -> int -> int array
  = "sf_poll_fds"

let chosen = ref None

let choose () =
  match Sys.getenv_opt "SHANGFORTES_POLL" with
  | Some "select" -> Select
  | _ -> (
    (* Probe the stub once with an empty set; any failure (unlikely
       outside exotic platforms) demotes to the select fallback. *)
    match sf_poll_fds [||] [||] 0 with
    | _ -> Native_poll
    | exception _ -> Select)

let backend () =
  match !chosen with
  | Some b -> b
  | None ->
    let b = choose () in
    chosen := Some b;
    b

let wait_poll fds ~timeout_ms =
  let arr = Array.of_list fds in
  let n = Array.length arr in
  let raw_fds = Array.map fst arr in
  let interests =
    Array.map
      (fun (_, i) -> (if i.want_read then 1 else 0) lor if i.want_write then 2 else 0)
      arr
  in
  let res = sf_poll_fds raw_fds interests timeout_ms in
  let events = ref [] in
  for i = n - 1 downto 0 do
    let r = res.(i) in
    if r <> 0 then
      events :=
        ( raw_fds.(i),
          {
            ready_read = r land 1 <> 0;
            ready_write = r land 2 <> 0;
            ready_error = r land 4 <> 0;
          } )
        :: !events
  done;
  !events

let wait_select fds ~timeout_ms =
  let rds = List.filter_map (fun (fd, i) -> if i.want_read then Some fd else None) fds in
  let wrs = List.filter_map (fun (fd, i) -> if i.want_write then Some fd else None) fds in
  let all = List.map fst fds in
  let timeout = if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000. in
  match Unix.select rds wrs all timeout with
  | exception Unix.Unix_error (EINTR, _, _) -> []
  | r, w, e ->
    List.filter_map
      (fun (fd, _) ->
        let ready_read = List.memq fd r || List.memq fd e in
        let ready_write = List.memq fd w in
        if ready_read || ready_write then
          Some (fd, { ready_read; ready_write; ready_error = false })
        else None)
      fds

let wait fds ~timeout_ms =
  match backend () with
  | Native_poll -> wait_poll fds ~timeout_ms
  | Select -> wait_select fds ~timeout_ms
