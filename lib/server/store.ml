type entry = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : string;
  witness : int list option;
}

type t = {
  path : string;
  fsync_every : int;
  mutable oc : out_channel option;
  (* content hash -> (canonical key, entry) bucket; the hash is the
     journal's record address, the key string resolves collisions. *)
  table : (int, (string * entry) list) Hashtbl.t;
  (* Same shape for family verdicts ('f' records), keyed on T alone —
     the "t=..." key strings live in a namespace disjoint from the
     verdicts' "mu=...;t=..." keys, so the two kinds can share the
     quarantine table safely. *)
  families : (int, (string * Family.t) list) Hashtbl.t;
  (* Keys salvaged from quarantined (checksum-corrupt) records: these
     must not be served from memory until a fresh verdict re-verifies
     them — [find] forces a miss, [add] clears the mark. *)
  quarantined_keys : (string, unit) Hashtbl.t;
  lock : Mutex.t;
  mutable pending : int; (* appends since the last fsync *)
  mutable hits : int;
  mutable misses : int;
  mutable appended : int;
  mutable loaded : int;
  mutable f_appended : int;
  mutable f_loaded : int;
  mutable dropped_bytes : int;
  mutable quarantined : int;
  mutable healed : int;
  mutable io_errors : int;
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  appended : int;
  loaded : int;
  families : int;
  f_appended : int;
  f_loaded : int;
  dropped_bytes : int;
  quarantined : int;
  healed : int;
  io_errors : int;
}

let header = "shangfortes-store 1"

let m_hits = Obs.Metrics.counter "server.store.hits"
let m_misses = Obs.Metrics.counter "server.store.misses"
let m_quarantined = Obs.Metrics.counter "server.store.quarantined"
let m_healed = Obs.Metrics.counter "server.store.healed"
let m_io_errors = Obs.Metrics.counter "server.store.io_errors"

(* FNV-1a over the record body: cheap, byte-order-free, and enough to
   detect a torn tail (we are defending against crashes, not
   adversaries — the store path is operator-controlled). *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

(* ------------------------- key + record codec ---------------------- *)

let csv ints = String.concat "," (List.map string_of_int ints)

let parse_csv s =
  match List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s) with
  | ints -> ints
  | exception Failure _ -> failwith "bad integer list"

let key_string ~mu t =
  let rows = List.map csv (Intmat.to_ints t) in
  Printf.sprintf "mu=%s;t=%s" (csv (Array.to_list mu)) (String.concat ";" rows)

(* Masked to 32 bits because that is what the journal records — the
   reloaded table must key on the same value [find] recomputes. *)
let key_hash ~mu t =
  Engine.Cache.key_hash (Intmat.append_row t (Intvec.of_int_array mu)) land 0xFFFFFFFF

(* Family records key on T alone: one record serves every mu. *)
let family_key_string t =
  Printf.sprintf "t=%s" (String.concat ";" (List.map csv (Intmat.to_ints t)))

let family_hash t = Engine.Cache.key_hash t land 0xFFFFFFFF

let entry_payload e =
  Printf.sprintf "free=%d;rank=%d;by=%s;wit=%s"
    (Bool.to_int e.conflict_free)
    (Bool.to_int e.full_rank)
    e.decided_by
    (match e.witness with None -> "-" | Some w -> csv w)

(* One record line per kind, same frame: "<tag> <hash-hex> <key>
   <payload> <crc-hex>" with tag 'v' for per-instance verdicts and 'f'
   for family verdicts (payload = Family.to_string).  No token contains
   a space (keys, entries and family strings are csv/semicolon/
   punctuation-separated), so the line splits unambiguously. *)
let framed tag hash key payload =
  let body = Printf.sprintf "%08x %s %s" (hash land 0xFFFFFFFF) key payload in
  Printf.sprintf "%c %s %08x" tag body (fnv1a body)

let record_line hash key e = framed 'v' hash key (entry_payload e)
let family_line hash key fam = framed 'f' hash key (Family.to_string fam)

type record =
  | Verdict of int * string * entry
  | Fam of int * string * Family.t

let parse_record line =
  match String.split_on_char ' ' line with
  | [ tag; hash_hex; key; payload; crc_hex ] when tag = "v" || tag = "f" ->
    let body = Printf.sprintf "%s %s %s" hash_hex key payload in
    let crc = int_of_string ("0x" ^ crc_hex) in
    if fnv1a body <> crc then failwith "checksum mismatch";
    let hash = int_of_string ("0x" ^ hash_hex) in
    if tag = "f" then
      match Family.of_string payload with
      | Some fam -> Fam (hash, key, fam)
      | None -> failwith "bad family payload"
    else
      let field name s =
        let prefix = name ^ "=" in
        let n = String.length prefix in
        if String.length s >= n && String.sub s 0 n = prefix then
          String.sub s n (String.length s - n)
        else failwith ("missing field " ^ name)
      in
      let e =
        match String.split_on_char ';' payload with
        | [ f; r; b; w ] ->
          {
            conflict_free = field "free" f = "1";
            full_rank = field "rank" r = "1";
            decided_by = field "by" b;
            witness =
              (match field "wit" w with "-" -> None | s -> Some (parse_csv s));
          }
        | _ -> failwith "bad entry payload"
      in
      Verdict (hash, key, e)
  | _ -> failwith "bad record shape"

(* Best-effort key recovery from a record that failed its checksum, so
   the key can be marked for re-verification.  Corruption inside the
   key bytes just yields a string that never matches a lookup, which
   is harmless (the lookup misses anyway). *)
let salvage_key line =
  match String.split_on_char ' ' line with
  | ("v" | "f") :: _hash_hex :: key :: _ -> Some key
  | _ -> None

(* ------------------------------ journal ---------------------------- *)

let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Make a metadata change (create / truncate / rename) durable: fsync
   the parent directory, or the change itself can be lost on power
   failure even though the data blocks made it.  Best effort — some
   filesystems refuse fsync on a directory fd. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Replay the journal.  Complete lines that fail to parse or checksum
   are quarantined (each record carries its own CRC, and lines resync
   at the next newline, so later records are independently
   trustworthy); an incomplete last line is a torn tail from a crash
   mid-append.  Returns the surviving records (with their raw lines,
   for compaction), the quarantined raw lines, and the torn-tail byte
   count. *)
let replay contents =
  let n = String.length contents in
  let header_end =
    match String.index_opt contents '\n' with
    | Some nl when String.sub contents 0 nl = header -> Some (nl + 1)
    | _ -> None
  in
  match header_end with
  | None -> None
  | Some start ->
    let records = ref [] and bad = ref [] in
    let rec go offset =
      if offset >= n then 0
      else
        match String.index_from_opt contents offset '\n' with
        | None -> n - offset (* torn tail: line without newline *)
        | Some nl -> (
          let line = String.sub contents offset (nl - offset) in
          (match parse_record line with
          | r -> records := (r, line) :: !records
          | exception _ -> bad := line :: !bad);
          go (nl + 1))
    in
    let torn = go start in
    Some (List.rev !records, List.rev !bad, torn)

let quarantine_path path = path ^ ".quarantine"

(* Move the corrupt records into the sidecar and rewrite the journal
   with only the surviving ones (tmp + rename, both fsynced, then the
   directory), so the next open is clean. *)
let compact path records bad =
  let qp = quarantine_path path in
  let qoc = open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 qp in
  List.iter
    (fun line ->
      output_string qoc line;
      output_char qoc '\n')
    bad;
  fsync_out qoc;
  close_out qoc;
  let tmp = path ^ ".tmp" in
  let toc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string toc header;
  output_char toc '\n';
  List.iter
    (fun (_, line) ->
      output_string toc line;
      output_char toc '\n')
    records;
  fsync_out toc;
  close_out toc;
  Sys.rename tmp path;
  fsync_dir path

let open_ ?(fsync_every = 32) path =
  if fsync_every < 1 then invalid_arg "Store.open_: fsync_every must be >= 1";
  let t =
    {
      path;
      fsync_every;
      oc = None;
      table = Hashtbl.create 1024;
      families = Hashtbl.create 64;
      quarantined_keys = Hashtbl.create 4;
      lock = Mutex.create ();
      pending = 0;
      hits = 0;
      misses = 0;
      appended = 0;
      loaded = 0;
      f_appended = 0;
      f_loaded = 0;
      dropped_bytes = 0;
      quarantined = 0;
      healed = 0;
      io_errors = 0;
    }
  in
  let contents =
    if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all
    else ""
  in
  if contents = "" then begin
    (* O_APPEND, even on the create path: the partial-write rollback
       truncates the file under the channel, and only an append-mode
       fd is guaranteed to land the next record at the new EOF rather
       than at its stale offset (leaving a zero-filled hole). *)
    let oc =
      open_out_gen
        [ Open_wronly; Open_creat; Open_trunc; Open_append; Open_binary ]
        0o644 path
    in
    output_string oc header;
    output_char oc '\n';
    fsync_out oc;
    (* The journal's directory entry must be durable too, or a power
       failure can forget the file the data was synced into. *)
    fsync_dir path;
    t.oc <- Some oc
  end
  else begin
    match replay contents with
    | None -> failwith (Printf.sprintf "Store.open_: %s is not a store journal" path)
    | Some (records, bad, torn) ->
      List.iter
        (fun (record, _) ->
          (* Last record wins: a healed key appends a fresh record
             after its original, and the fresh one is the truth. *)
          match record with
          | Verdict (hash, key, e) ->
            let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
            if not (List.mem_assoc key bucket) then t.loaded <- t.loaded + 1;
            Hashtbl.replace t.table hash ((key, e) :: List.remove_assoc key bucket)
          | Fam (hash, key, fam) ->
            let bucket =
              Option.value ~default:[] (Hashtbl.find_opt t.families hash)
            in
            if not (List.mem_assoc key bucket) then t.f_loaded <- t.f_loaded + 1;
            Hashtbl.replace t.families hash ((key, fam) :: List.remove_assoc key bucket))
        records;
      List.iter
        (fun line ->
          t.quarantined <- t.quarantined + 1;
          Obs.Metrics.incr m_quarantined;
          match salvage_key line with
          | Some key -> Hashtbl.replace t.quarantined_keys key ()
          | None -> ())
        bad;
      t.dropped_bytes <- torn;
      if bad <> [] then begin
        compact path records bad;
        ignore
          (Obs.Warn.once
             ("server.store.quarantined:" ^ path)
             (Printf.sprintf
                "store %s: quarantined %d corrupt record(s) into %s; keys re-verify on \
                 next access"
                path (List.length bad) (quarantine_path path)))
      end
      else if torn > 0 then begin
        (* Truncate the torn tail so the next append starts a clean
           frame instead of extending a partial one — and fsync the
           directory so the truncation itself survives power loss. *)
        Unix.truncate path (String.length contents - torn);
        fsync_dir path
      end;
      if torn > 0 then
        ignore
          (Obs.Warn.once
             ("server.store.recovered:" ^ path)
             (Printf.sprintf
                "store %s: dropped %d bytes of torn journal tail (crash recovery)" path
                torn));
      t.oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
  end;
  t

let oc_exn t =
  match t.oc with Some oc -> oc | None -> failwith "Store: used after close"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~mu tm =
  let hash = key_hash ~mu tm in
  let key = key_string ~mu tm in
  locked t (fun () ->
      if Hashtbl.mem t.quarantined_keys key then begin
        (* The journal record for this key was corrupt: force a miss so
           the caller recomputes and [add] re-verifies. *)
        t.misses <- t.misses + 1;
        Obs.Metrics.incr m_misses;
        None
      end
      else
        match Option.bind (Hashtbl.find_opt t.table hash) (List.assoc_opt key) with
        | Some e ->
          t.hits <- t.hits + 1;
          Obs.Metrics.incr m_hits;
          Some e
        | None ->
          t.misses <- t.misses + 1;
          Obs.Metrics.incr m_misses;
          None)

(* Append one record, honouring the [store.write] (torn append) and
   [store.fsync] injection sites.  A torn append is rolled back by
   truncating to the pre-write length, so the journal never dwells in
   a torn state because of an injected fault — the caller sees
   [Fault.Injected] and the entry is simply not persisted yet. *)
let append_line t line =
  let oc = oc_exn t in
  let line = line ^ "\n" in
  (match Fault.partial_write "store.write" (String.length line) with
  | Some n ->
    t.io_errors <- t.io_errors + 1;
    Obs.Metrics.incr m_io_errors;
    (try
       flush oc;
       let fd = Unix.descr_of_out_channel oc in
       let size = (Unix.fstat fd).Unix.st_size in
       output_substring oc line 0 n;
       flush oc;
       Unix.ftruncate fd size
     with Sys_error _ | Unix.Unix_error _ -> ());
    raise (Fault.Injected "store.write")
  | None ->
    output_string oc line;
    flush oc);
  t.pending <- t.pending + 1;
  if t.pending >= t.fsync_every then
    if Fault.should_fail "store.fsync" then begin
      (* Keep [pending] so the next append retries the fsync; the data
         is in the OS already (flushed), only durability is delayed. *)
      t.io_errors <- t.io_errors + 1;
      Obs.Metrics.incr m_io_errors
    end
    else begin
      fsync_out oc;
      t.pending <- 0
    end

let append_record t hash key e =
  append_line t (record_line hash key e);
  t.appended <- t.appended + 1

let heal t key =
  if Hashtbl.mem t.quarantined_keys key then begin
    Hashtbl.remove t.quarantined_keys key;
    t.healed <- t.healed + 1;
    Obs.Metrics.incr m_healed
  end

let add t ~mu tm e =
  let hash = key_hash ~mu tm in
  let key = key_string ~mu tm in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
      let quarantined = Hashtbl.mem t.quarantined_keys key in
      match List.assoc_opt key bucket with
      | Some _ when not quarantined -> () (* verdicts are deterministic *)
      | Some e0 when e0 = e ->
        (* Re-verified: the fresh verdict matches the record that
           survived next to the corrupt one; just clear the mark. *)
        heal t key
      | _ ->
        append_record t hash key e;
        Hashtbl.replace t.table hash ((key, e) :: List.remove_assoc key bucket);
        heal t key)

let find_family t tm =
  let hash = family_hash tm in
  let key = family_key_string tm in
  locked t (fun () ->
      if Hashtbl.mem t.quarantined_keys key then None
      else Option.bind (Hashtbl.find_opt t.families hash) (List.assoc_opt key))

let add_family t tm fam =
  let hash = family_hash tm in
  let key = family_key_string tm in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.families hash) in
      let quarantined = Hashtbl.mem t.quarantined_keys key in
      let same f0 = Family.to_string f0 = Family.to_string fam in
      match List.assoc_opt key bucket with
      | Some _ when not quarantined -> () (* families are deterministic *)
      | Some f0 when same f0 -> heal t key
      | _ ->
        append_line t (family_line hash key fam);
        t.f_appended <- t.f_appended + 1;
        Hashtbl.replace t.families hash ((key, fam) :: List.remove_assoc key bucket);
        heal t key)

let flush t =
  locked t (fun () ->
      fsync_out (oc_exn t);
      t.pending <- 0)

let close t =
  locked t (fun () ->
      let oc = oc_exn t in
      fsync_out oc;
      close_out oc;
      t.oc <- None)

let stats t =
  locked t (fun () ->
      let entries = Hashtbl.fold (fun _ b acc -> acc + List.length b) t.table 0 in
      let families = Hashtbl.fold (fun _ b acc -> acc + List.length b) t.families 0 in
      {
        entries;
        hits = t.hits;
        misses = t.misses;
        appended = t.appended;
        loaded = t.loaded;
        families;
        f_appended = t.f_appended;
        f_loaded = t.f_loaded;
        dropped_bytes = t.dropped_bytes;
        quarantined = t.quarantined;
        healed = t.healed;
        io_errors = t.io_errors;
      })

let entry_of_verdict (v : Analysis.verdict) =
  {
    conflict_free = v.Analysis.conflict_free;
    full_rank = v.Analysis.full_rank;
    decided_by = Analysis.decided_by_name v.Analysis.decided_by;
    witness = Option.map Intvec.to_ints v.Analysis.witness;
  }
