type entry = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : string;
  witness : int list option;
}

type t = {
  path : string;
  fsync_every : int;
  mutable oc : out_channel option;
  (* content hash -> (canonical key, entry) bucket; the hash is the
     journal's record address, the key string resolves collisions. *)
  table : (int, (string * entry) list) Hashtbl.t;
  lock : Mutex.t;
  mutable pending : int; (* appends since the last fsync *)
  mutable hits : int;
  mutable misses : int;
  mutable appended : int;
  mutable loaded : int;
  mutable dropped_bytes : int;
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  appended : int;
  loaded : int;
  dropped_bytes : int;
}

let header = "shangfortes-store 1"

let m_hits = Obs.Metrics.counter "server.store.hits"
let m_misses = Obs.Metrics.counter "server.store.misses"

(* FNV-1a over the record body: cheap, byte-order-free, and enough to
   detect a torn tail (we are defending against crashes, not
   adversaries — the store path is operator-controlled). *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

(* ------------------------- key + record codec ---------------------- *)

let csv ints = String.concat "," (List.map string_of_int ints)

let parse_csv s =
  match List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s) with
  | ints -> ints
  | exception Failure _ -> failwith "bad integer list"

let key_string ~mu t =
  let rows = List.map csv (Intmat.to_ints t) in
  Printf.sprintf "mu=%s;t=%s" (csv (Array.to_list mu)) (String.concat ";" rows)

(* Masked to 32 bits because that is what the journal records — the
   reloaded table must key on the same value [find] recomputes. *)
let key_hash ~mu t =
  Engine.Cache.key_hash (Intmat.append_row t (Intvec.of_int_array mu)) land 0xFFFFFFFF

let entry_payload e =
  Printf.sprintf "free=%d;rank=%d;by=%s;wit=%s"
    (Bool.to_int e.conflict_free)
    (Bool.to_int e.full_rank)
    e.decided_by
    (match e.witness with None -> "-" | Some w -> csv w)

(* One record line: "v <hash-hex> <key> <entry> <crc-hex>".  No token
   contains a space (keys and entries are csv/semicolon-separated), so
   the line splits unambiguously. *)
let record_line hash key e =
  let body = Printf.sprintf "%08x %s %s" (hash land 0xFFFFFFFF) key (entry_payload e) in
  Printf.sprintf "v %s %08x" body (fnv1a body)

let parse_record line =
  match String.split_on_char ' ' line with
  | [ "v"; hash_hex; key; payload; crc_hex ] ->
    let body = Printf.sprintf "%s %s %s" hash_hex key payload in
    let crc = int_of_string ("0x" ^ crc_hex) in
    if fnv1a body <> crc then failwith "checksum mismatch";
    let hash = int_of_string ("0x" ^ hash_hex) in
    let field name s =
      let prefix = name ^ "=" in
      let n = String.length prefix in
      if String.length s >= n && String.sub s 0 n = prefix then
        String.sub s n (String.length s - n)
      else failwith ("missing field " ^ name)
    in
    let e =
      match String.split_on_char ';' payload with
      | [ f; r; b; w ] ->
        {
          conflict_free = field "free" f = "1";
          full_rank = field "rank" r = "1";
          decided_by = field "by" b;
          witness =
            (match field "wit" w with "-" -> None | s -> Some (parse_csv s));
        }
      | _ -> failwith "bad entry payload"
    in
    (hash, key, e)
  | _ -> failwith "bad record shape"

(* ------------------------------ journal ---------------------------- *)

let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Replay the journal, returning the records of the valid prefix and
   its byte length.  The prefix ends at the first line that is
   incomplete (no trailing newline), malformed, or checksum-corrupt —
   everything after a bad frame is untrustworthy in an append-only
   journal. *)
let replay contents =
  let n = String.length contents in
  let records = ref [] in
  let rec go offset =
    if offset >= n then offset
    else
      match String.index_from_opt contents offset '\n' with
      | None -> offset (* torn tail: line without newline *)
      | Some nl -> (
        let line = String.sub contents offset (nl - offset) in
        match parse_record line with
        | r ->
          records := r :: !records;
          go (nl + 1)
        | exception _ -> offset)
  in
  let header_end =
    match String.index_opt contents '\n' with
    | Some nl when String.sub contents 0 nl = header -> Some (nl + 1)
    | _ -> None
  in
  match header_end with
  | None -> None
  | Some start ->
    let valid = go start in
    Some (List.rev !records, valid)

let open_ ?(fsync_every = 32) path =
  if fsync_every < 1 then invalid_arg "Store.open_: fsync_every must be >= 1";
  let t =
    {
      path;
      fsync_every;
      oc = None;
      table = Hashtbl.create 1024;
      lock = Mutex.create ();
      pending = 0;
      hits = 0;
      misses = 0;
      appended = 0;
      loaded = 0;
      dropped_bytes = 0;
    }
  in
  let contents =
    if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all
    else ""
  in
  if contents = "" then begin
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
    output_string oc header;
    output_char oc '\n';
    fsync_out oc;
    t.oc <- Some oc
  end
  else begin
    match replay contents with
    | None -> failwith (Printf.sprintf "Store.open_: %s is not a store journal" path)
    | Some (records, valid) ->
      List.iter
        (fun (hash, key, e) ->
          let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
          if not (List.mem_assoc key bucket) then begin
            Hashtbl.replace t.table hash ((key, e) :: bucket);
            t.loaded <- t.loaded + 1
          end)
        records;
      t.dropped_bytes <- String.length contents - valid;
      if t.dropped_bytes > 0 then begin
        (* Truncate the torn tail so the next append starts a clean
           frame instead of extending a partial one. *)
        Unix.truncate path valid;
        ignore
          (Obs.Warn.once
             ("server.store.recovered:" ^ path)
             (Printf.sprintf
                "store %s: dropped %d bytes of torn journal tail (crash recovery)" path
                t.dropped_bytes))
      end;
      t.oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
  end;
  t

let oc_exn t =
  match t.oc with Some oc -> oc | None -> failwith "Store: used after close"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~mu tm =
  let hash = key_hash ~mu tm in
  let key = key_string ~mu tm in
  locked t (fun () ->
      match Option.bind (Hashtbl.find_opt t.table hash) (List.assoc_opt key) with
      | Some e ->
        t.hits <- t.hits + 1;
        Obs.Metrics.incr m_hits;
        Some e
      | None ->
        t.misses <- t.misses + 1;
        Obs.Metrics.incr m_misses;
        None)

let add t ~mu tm e =
  let hash = key_hash ~mu tm in
  let key = key_string ~mu tm in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
      if not (List.mem_assoc key bucket) then begin
        Hashtbl.replace t.table hash ((key, e) :: bucket);
        let oc = oc_exn t in
        output_string oc (record_line hash key e);
        output_char oc '\n';
        flush oc;
        t.appended <- t.appended + 1;
        t.pending <- t.pending + 1;
        if t.pending >= t.fsync_every then begin
          fsync_out oc;
          t.pending <- 0
        end
      end)

let flush t =
  locked t (fun () ->
      fsync_out (oc_exn t);
      t.pending <- 0)

let close t =
  locked t (fun () ->
      let oc = oc_exn t in
      fsync_out oc;
      close_out oc;
      t.oc <- None)

let stats t =
  locked t (fun () ->
      let entries = Hashtbl.fold (fun _ b acc -> acc + List.length b) t.table 0 in
      {
        entries;
        hits = t.hits;
        misses = t.misses;
        appended = t.appended;
        loaded = t.loaded;
        dropped_bytes = t.dropped_bytes;
      })

let entry_of_verdict (v : Analysis.verdict) =
  {
    conflict_free = v.Analysis.conflict_free;
    full_rank = v.Analysis.full_rank;
    decided_by = Analysis.decided_by_name v.Analysis.decided_by;
    witness = Option.map Intvec.to_ints v.Analysis.witness;
  }
