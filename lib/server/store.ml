type entry = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : string;
  witness : int list option;
}

type t = {
  path : string;
  fsync_every : int;
  mutable oc : out_channel option;
  (* content hash -> (canonical key, entry) bucket; the hash is the
     journal's record address, the key string resolves collisions. *)
  table : (int, (string * entry) list) Hashtbl.t;
  (* Same shape for family verdicts ('f' records), keyed on T alone —
     the "t=..." key strings live in a namespace disjoint from the
     verdicts' "mu=...;t=..." keys, so the two kinds can share the
     quarantine table safely. *)
  families : (int, (string * Family.t) list) Hashtbl.t;
  (* Keys salvaged from quarantined (checksum-corrupt) records: these
     must not be served from memory until a fresh verdict re-verifies
     them — [find] forces a miss, [add] clears the mark. *)
  quarantined_keys : (string, unit) Hashtbl.t;
  lock : Mutex.t;
  mutable pending : int; (* appends since the last fsync *)
  mutable hits : int;
  mutable misses : int;
  mutable appended : int;
  mutable loaded : int;
  mutable f_appended : int;
  mutable f_loaded : int;
  mutable dropped_bytes : int;
  mutable quarantined : int;
  mutable healed : int;
  mutable io_errors : int;
  (* Snapshot half of the snapshot + journal-tail warm start: memory
     (the replayed tail) is consulted first, so a tail record always
     shadows the snapshot's. *)
  mutable snap : Snapshot.t option;
  (* Retained across [close] so the drained stats still report the
     snapshot the store served from after the reader is dropped. *)
  mutable snap_entries : int;
  mutable snap_hits : int;
  mutable snap_corrupt : int;
  mutable open_ms : float;
  mutable provenance : string;
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  appended : int;
  loaded : int;
  families : int;
  f_appended : int;
  f_loaded : int;
  dropped_bytes : int;
  quarantined : int;
  healed : int;
  io_errors : int;
  snap_entries : int;
  snap_hits : int;
  snap_corrupt : int;
  open_ms : float;
  provenance : string;
}

let header = "shangfortes-store 1"

let m_hits = Obs.Metrics.counter "server.store.hits"
let m_misses = Obs.Metrics.counter "server.store.misses"
let m_quarantined = Obs.Metrics.counter "server.store.quarantined"
let m_healed = Obs.Metrics.counter "server.store.healed"
let m_io_errors = Obs.Metrics.counter "server.store.io_errors"
let m_snap_hits = Obs.Metrics.counter "server.store.snapshot_hits"
let m_snap_corrupt = Obs.Metrics.counter "server.store.snapshot_corrupt"
let h_open_ms = Obs.Metrics.histogram "server.store.open_ms"

(* FNV-1a over the record body: cheap, byte-order-free, and enough to
   detect a torn tail (we are defending against crashes, not
   adversaries — the store path is operator-controlled). *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

(* ------------------------- key + record codec ---------------------- *)

let csv ints = String.concat "," (List.map string_of_int ints)

let parse_csv s =
  match List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s) with
  | ints -> ints
  | exception Failure _ -> failwith "bad integer list"

let key_string ~mu t =
  let rows = List.map csv (Intmat.to_ints t) in
  Printf.sprintf "mu=%s;t=%s" (csv (Array.to_list mu)) (String.concat ";" rows)

(* Masked to 32 bits because that is what the journal records — the
   reloaded table must key on the same value [find] recomputes. *)
let key_hash ~mu t =
  Engine.Cache.key_hash (Intmat.append_row t (Intvec.of_int_array mu)) land 0xFFFFFFFF

(* Family records key on T alone: one record serves every mu. *)
let family_key_string t =
  Printf.sprintf "t=%s" (String.concat ";" (List.map csv (Intmat.to_ints t)))

let family_hash t = Engine.Cache.key_hash t land 0xFFFFFFFF

let entry_payload e =
  Printf.sprintf "free=%d;rank=%d;by=%s;wit=%s"
    (Bool.to_int e.conflict_free)
    (Bool.to_int e.full_rank)
    e.decided_by
    (match e.witness with None -> "-" | Some w -> csv w)

(* One record line per kind, same frame: "<tag> <hash-hex> <key>
   <payload> <crc-hex>" with tag 'v' for per-instance verdicts and 'f'
   for family verdicts (payload = Family.to_string).  No token contains
   a space (keys, entries and family strings are csv/semicolon/
   punctuation-separated), so the line splits unambiguously. *)
let framed tag hash key payload =
  let body = Printf.sprintf "%08x %s %s" (hash land 0xFFFFFFFF) key payload in
  Printf.sprintf "%c %s %08x" tag body (fnv1a body)

let record_line hash key e = framed 'v' hash key (entry_payload e)
let family_line hash key fam = framed 'f' hash key (Family.to_string fam)

type record =
  | Verdict of int * string * entry
  | Fam of int * string * Family.t

let parse_record line =
  match String.split_on_char ' ' line with
  | [ tag; hash_hex; key; payload; crc_hex ] when tag = "v" || tag = "f" ->
    let body = Printf.sprintf "%s %s %s" hash_hex key payload in
    let crc = int_of_string ("0x" ^ crc_hex) in
    if fnv1a body <> crc then failwith "checksum mismatch";
    let hash = int_of_string ("0x" ^ hash_hex) in
    if tag = "f" then
      match Family.of_string payload with
      | Some fam -> Fam (hash, key, fam)
      | None -> failwith "bad family payload"
    else
      let field name s =
        let prefix = name ^ "=" in
        let n = String.length prefix in
        if String.length s >= n && String.sub s 0 n = prefix then
          String.sub s n (String.length s - n)
        else failwith ("missing field " ^ name)
      in
      let e =
        match String.split_on_char ';' payload with
        | [ f; r; b; w ] ->
          {
            conflict_free = field "free" f = "1";
            full_rank = field "rank" r = "1";
            decided_by = field "by" b;
            witness =
              (match field "wit" w with "-" -> None | s -> Some (parse_csv s));
          }
        | _ -> failwith "bad entry payload"
      in
      Verdict (hash, key, e)
  | _ -> failwith "bad record shape"

(* Best-effort key recovery from a record that failed its checksum, so
   the key can be marked for re-verification.  Corruption inside the
   key bytes just yields a string that never matches a lookup, which
   is harmless (the lookup misses anyway). *)
let salvage_key line =
  match String.split_on_char ' ' line with
  | ("v" | "f") :: _hash_hex :: key :: _ -> Some key
  | _ -> None

(* ------------------------------ journal ---------------------------- *)

let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Make a metadata change (create / truncate / rename) durable: fsync
   the parent directory, or the change itself can be lost on power
   failure even though the data blocks made it.  Best effort — some
   filesystems refuse fsync on a directory fd. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Replay the journal.  Complete lines that fail to parse or checksum
   are quarantined (each record carries its own CRC, and lines resync
   at the next newline, so later records are independently
   trustworthy); an incomplete last line is a torn tail from a crash
   mid-append.  Returns the surviving records (with their raw lines,
   for compaction), the quarantined raw lines, and the torn-tail byte
   count. *)
let replay contents =
  let n = String.length contents in
  let header_end =
    match String.index_opt contents '\n' with
    | Some nl when String.sub contents 0 nl = header -> Some (nl + 1)
    | _ -> None
  in
  match header_end with
  | None -> None
  | Some start ->
    let records = ref [] and bad = ref [] in
    let rec go offset =
      if offset >= n then 0
      else
        match String.index_from_opt contents offset '\n' with
        | None -> n - offset (* torn tail: line without newline *)
        | Some nl -> (
          let line = String.sub contents offset (nl - offset) in
          (match parse_record line with
          | r -> records := (r, line) :: !records
          | exception _ -> bad := line :: !bad);
          go (nl + 1))
    in
    let torn = go start in
    Some (List.rev !records, List.rev !bad, torn)

let quarantine_path path = path ^ ".quarantine"

(* Move the corrupt records into the sidecar and rewrite the journal
   with only the surviving ones (tmp + rename, both fsynced, then the
   directory), so the next open is clean. *)
let compact path records bad =
  let qp = quarantine_path path in
  let qoc = open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 qp in
  List.iter
    (fun line ->
      output_string qoc line;
      output_char qoc '\n')
    bad;
  fsync_out qoc;
  close_out qoc;
  let tmp = path ^ ".tmp" in
  let toc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string toc header;
  output_char toc '\n';
  List.iter
    (fun (_, line) ->
      output_string toc line;
      output_char toc '\n')
    records;
  fsync_out toc;
  close_out toc;
  Sys.rename tmp path;
  fsync_dir path

let open_ ?(fsync_every = 32) ?snapshot path =
  if fsync_every < 1 then invalid_arg "Store.open_: fsync_every must be >= 1";
  let t0 = Unix.gettimeofday () in
  let t =
    {
      path;
      fsync_every;
      oc = None;
      table = Hashtbl.create 1024;
      families = Hashtbl.create 64;
      quarantined_keys = Hashtbl.create 4;
      lock = Mutex.create ();
      pending = 0;
      hits = 0;
      misses = 0;
      appended = 0;
      loaded = 0;
      f_appended = 0;
      f_loaded = 0;
      dropped_bytes = 0;
      quarantined = 0;
      healed = 0;
      io_errors = 0;
      snap = None;
      snap_entries = 0;
      snap_hits = 0;
      snap_corrupt = 0;
      open_ms = 0.;
      provenance = "created";
    }
  in
  (* The snapshot opens in O(1) reads; a structurally bad snapshot is
     a warning and a fall-back to plain journal replay, never a
     crash — the journal alone is always sufficient. *)
  (match snapshot with
  | Some sp when Sys.file_exists sp -> (
    match Snapshot.open_reader sp with
    | Ok reader ->
      t.snap <- Some reader;
      t.snap_entries <- Snapshot.entries reader
    | Error msg ->
      ignore
        (Obs.Warn.once
           ("server.store.snapshot:" ^ sp)
           (Printf.sprintf "store %s: ignoring unusable snapshot: %s" path msg)))
  | Some _ | None -> ());
  let contents =
    if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all
    else ""
  in
  if contents = "" then begin
    (* O_APPEND, even on the create path: the partial-write rollback
       truncates the file under the channel, and only an append-mode
       fd is guaranteed to land the next record at the new EOF rather
       than at its stale offset (leaving a zero-filled hole). *)
    let oc =
      open_out_gen
        [ Open_wronly; Open_creat; Open_trunc; Open_append; Open_binary ]
        0o644 path
    in
    output_string oc header;
    output_char oc '\n';
    fsync_out oc;
    (* The journal's directory entry must be durable too, or a power
       failure can forget the file the data was synced into. *)
    fsync_dir path;
    t.oc <- Some oc;
    t.provenance <- (if t.snap = None then "created" else "snapshot")
  end
  else begin
    t.provenance <- (if t.snap = None then "replay" else "snapshot+tail");
    match replay contents with
    | None -> failwith (Printf.sprintf "Store.open_: %s is not a store journal" path)
    | Some (records, bad, torn) ->
      List.iter
        (fun (record, _) ->
          (* Last record wins: a healed key appends a fresh record
             after its original, and the fresh one is the truth. *)
          match record with
          | Verdict (hash, key, e) ->
            let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
            if not (List.mem_assoc key bucket) then t.loaded <- t.loaded + 1;
            Hashtbl.replace t.table hash ((key, e) :: List.remove_assoc key bucket)
          | Fam (hash, key, fam) ->
            let bucket =
              Option.value ~default:[] (Hashtbl.find_opt t.families hash)
            in
            if not (List.mem_assoc key bucket) then t.f_loaded <- t.f_loaded + 1;
            Hashtbl.replace t.families hash ((key, fam) :: List.remove_assoc key bucket))
        records;
      List.iter
        (fun line ->
          t.quarantined <- t.quarantined + 1;
          Obs.Metrics.incr m_quarantined;
          match salvage_key line with
          | Some key -> Hashtbl.replace t.quarantined_keys key ()
          | None -> ())
        bad;
      t.dropped_bytes <- torn;
      if bad <> [] then begin
        compact path records bad;
        ignore
          (Obs.Warn.once
             ("server.store.quarantined:" ^ path)
             (Printf.sprintf
                "store %s: quarantined %d corrupt record(s) into %s; keys re-verify on \
                 next access"
                path (List.length bad) (quarantine_path path)))
      end
      else if torn > 0 then begin
        (* Truncate the torn tail so the next append starts a clean
           frame instead of extending a partial one — and fsync the
           directory so the truncation itself survives power loss. *)
        Unix.truncate path (String.length contents - torn);
        fsync_dir path
      end;
      if torn > 0 then
        ignore
          (Obs.Warn.once
             ("server.store.recovered:" ^ path)
             (Printf.sprintf
                "store %s: dropped %d bytes of torn journal tail (crash recovery)" path
                torn));
      t.oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
  end;
  t.open_ms <- 1000. *. (Unix.gettimeofday () -. t0);
  Obs.Metrics.observe h_open_ms t.open_ms;
  t

let oc_exn t =
  match t.oc with Some oc -> oc | None -> failwith "Store: used after close"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Consult the snapshot for [(kind, hash, key)], re-validating every
   located line against the record's own CRC (the index is only a
   locator): a line that fails to parse is counted corrupt and
   skipped, a parsed record with another key is a plain hash
   collision.  Caller holds the lock. *)
let snap_record t kind hash key =
  match t.snap with
  | None -> None
  | Some sr ->
    let rec pick = function
      | [] -> None
      | line :: rest -> (
        match parse_record line with
        | r -> (
          match r with
          | Verdict (h, k, _) | Fam (h, k, _) ->
            if h = hash && k = key then Some r else pick rest)
        | exception _ ->
          t.snap_corrupt <- t.snap_corrupt + 1;
          Obs.Metrics.incr m_snap_corrupt;
          pick rest)
    in
    pick (Snapshot.find_all sr ~kind ~hash)

let find t ~mu tm =
  let hash = key_hash ~mu tm in
  let key = key_string ~mu tm in
  locked t (fun () ->
      if Hashtbl.mem t.quarantined_keys key then begin
        (* The journal record for this key was corrupt: force a miss so
           the caller recomputes and [add] re-verifies. *)
        t.misses <- t.misses + 1;
        Obs.Metrics.incr m_misses;
        None
      end
      else
        match Option.bind (Hashtbl.find_opt t.table hash) (List.assoc_opt key) with
        | Some e ->
          t.hits <- t.hits + 1;
          Obs.Metrics.incr m_hits;
          Some e
        | None -> (
          (* Memory holds the journal tail, so a tail record shadows
             the snapshot's; only a genuine memory miss reads disk. *)
          match snap_record t 'v' hash key with
          | Some (Verdict (_, _, e)) ->
            t.hits <- t.hits + 1;
            t.snap_hits <- t.snap_hits + 1;
            Obs.Metrics.incr m_hits;
            Obs.Metrics.incr m_snap_hits;
            (* Promote into memory: the next lookup is a table hit. *)
            let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
            Hashtbl.replace t.table hash ((key, e) :: bucket);
            Some e
          | Some (Fam _) | None ->
            t.misses <- t.misses + 1;
            Obs.Metrics.incr m_misses;
            None))

(* Append one record, honouring the [store.write] (torn append) and
   [store.fsync] injection sites.  A torn append is rolled back by
   truncating to the pre-write length, so the journal never dwells in
   a torn state because of an injected fault — the caller sees
   [Fault.Injected] and the entry is simply not persisted yet. *)
let append_line t line =
  let oc = oc_exn t in
  let line = line ^ "\n" in
  (match Fault.partial_write "store.write" (String.length line) with
  | Some n ->
    t.io_errors <- t.io_errors + 1;
    Obs.Metrics.incr m_io_errors;
    (try
       flush oc;
       let fd = Unix.descr_of_out_channel oc in
       let size = (Unix.fstat fd).Unix.st_size in
       output_substring oc line 0 n;
       flush oc;
       Unix.ftruncate fd size
     with Sys_error _ | Unix.Unix_error _ -> ());
    raise (Fault.Injected "store.write")
  | None ->
    output_string oc line;
    flush oc);
  t.pending <- t.pending + 1;
  if t.pending >= t.fsync_every then begin
    (* Gray failure: a fired [store.fsync_stall] delays the sync (and
       the caller) by the plan's delay — the classic stalled-fsync
       brownout — without failing anything.  Ambient, never logged. *)
    Fault.stall "store.fsync_stall";
    if Fault.should_fail "store.fsync" then begin
      (* Keep [pending] so the next append retries the fsync; the data
         is in the OS already (flushed), only durability is delayed. *)
      t.io_errors <- t.io_errors + 1;
      Obs.Metrics.incr m_io_errors
    end
    else begin
      fsync_out oc;
      t.pending <- 0
    end
  end

let append_record t hash key e =
  append_line t (record_line hash key e);
  t.appended <- t.appended + 1

let heal t key =
  if Hashtbl.mem t.quarantined_keys key then begin
    Hashtbl.remove t.quarantined_keys key;
    t.healed <- t.healed + 1;
    Obs.Metrics.incr m_healed
  end

let add t ~mu tm e =
  let hash = key_hash ~mu tm in
  let key = key_string ~mu tm in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
      let quarantined = Hashtbl.mem t.quarantined_keys key in
      match List.assoc_opt key bucket with
      | Some _ when not quarantined -> () (* verdicts are deterministic *)
      | Some e0 when e0 = e ->
        (* Re-verified: the fresh verdict matches the record that
           survived next to the corrupt one; just clear the mark. *)
        heal t key
      | _ ->
        append_record t hash key e;
        Hashtbl.replace t.table hash ((key, e) :: List.remove_assoc key bucket);
        heal t key)

let find_family t tm =
  let hash = family_hash tm in
  let key = family_key_string tm in
  locked t (fun () ->
      if Hashtbl.mem t.quarantined_keys key then None
      else
        match Option.bind (Hashtbl.find_opt t.families hash) (List.assoc_opt key) with
        | Some fam -> Some fam
        | None -> (
          match snap_record t 'f' hash key with
          | Some (Fam (_, _, fam)) ->
            t.snap_hits <- t.snap_hits + 1;
            Obs.Metrics.incr m_snap_hits;
            let bucket =
              Option.value ~default:[] (Hashtbl.find_opt t.families hash)
            in
            Hashtbl.replace t.families hash ((key, fam) :: bucket);
            Some fam
          | Some (Verdict _) | None -> None))

let add_family t tm fam =
  let hash = family_hash tm in
  let key = family_key_string tm in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.families hash) in
      let quarantined = Hashtbl.mem t.quarantined_keys key in
      let same f0 = Family.to_string f0 = Family.to_string fam in
      match List.assoc_opt key bucket with
      | Some _ when not quarantined -> () (* families are deterministic *)
      | Some f0 when same f0 -> heal t key
      | _ ->
        append_line t (family_line hash key fam);
        t.f_appended <- t.f_appended + 1;
        Hashtbl.replace t.families hash ((key, fam) :: List.remove_assoc key bucket);
        heal t key)

(* Apply one raw journal record line shipped from another store
   (the [ship] op): validate it exactly as replay would, then apply
   with last-wins semantics and append it to this store's own journal
   so the follower is self-contained.  Idempotent — a re-shipped
   record whose entry is already current appends nothing, which makes
   the shipper's resume-from-watermark safe.  Append faults
   ([store.write]/[store.fsync]) propagate as usual. *)
let ingest_line t line =
  match parse_record line with
  | exception Failure msg -> Error msg
  | exception _ -> Error "unparsable record"
  | Verdict (hash, key, e) ->
    locked t (fun () ->
        let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table hash) in
        (match List.assoc_opt key bucket with
        | Some e0 when e0 = e -> ()
        | _ ->
          append_record t hash key e;
          Hashtbl.replace t.table hash ((key, e) :: List.remove_assoc key bucket));
        heal t key;
        Ok ())
  | Fam (hash, key, fam) ->
    locked t (fun () ->
        let bucket = Option.value ~default:[] (Hashtbl.find_opt t.families hash) in
        (match List.assoc_opt key bucket with
        | Some f0 when Family.to_string f0 = Family.to_string fam -> ()
        | _ ->
          append_line t (family_line hash key fam);
          t.f_appended <- t.f_appended + 1;
          Hashtbl.replace t.families hash ((key, fam) :: List.remove_assoc key bucket));
        heal t key;
        Ok ())

(* Everything the store can currently serve, as (kind, hash, key,
   canonical line) records: the snapshot's records (swept once),
   overlaid by memory — which holds the journal tail plus everything
   promoted from the snapshot — minus quarantined keys.  Caller holds
   the lock. *)
let all_records t =
  let acc : (string, char * int * string * string) Hashtbl.t = Hashtbl.create 1024 in
  (match t.snap with
  | None -> ()
  | Some sr ->
    Snapshot.iter_lines sr (fun line ->
        match parse_record line with
        | Verdict (hash, key, _) -> Hashtbl.replace acc key ('v', hash, key, line)
        | Fam (hash, key, _) -> Hashtbl.replace acc key ('f', hash, key, line)
        | exception _ -> ()));
  Hashtbl.iter
    (fun hash bucket ->
      List.iter
        (fun (key, e) -> Hashtbl.replace acc key ('v', hash, key, record_line hash key e))
        bucket)
    t.table;
  Hashtbl.iter
    (fun hash bucket ->
      List.iter
        (fun (key, fam) ->
          Hashtbl.replace acc key ('f', hash, key, family_line hash key fam))
        bucket)
    t.families;
  Hashtbl.iter (fun key () -> Hashtbl.remove acc key) t.quarantined_keys;
  Hashtbl.fold (fun _ r rs -> r :: rs) acc []

let write_snapshot t path = locked t (fun () -> Snapshot.write path (all_records t))

(* Snapshot-then-truncate: after this, the store opens as snapshot +
   empty tail in O(1) reads.  The snapshot is durable (fsynced, tmp +
   rename) before the journal is reset, so a crash between the two
   steps leaves a snapshot plus the full journal — records are then
   merely present twice, and replay's last-wins handles it. *)
let compact_to_snapshot t ~snapshot =
  locked t (fun () ->
      let count = Snapshot.write snapshot (all_records t) in
      let oc = oc_exn t in
      fsync_out oc;
      close_out oc;
      t.oc <- None;
      let tmp = t.path ^ ".tmp" in
      let toc =
        open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
      in
      output_string toc header;
      output_char toc '\n';
      fsync_out toc;
      close_out toc;
      Sys.rename tmp t.path;
      fsync_dir t.path;
      t.oc <-
        Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path);
      t.pending <- 0;
      Option.iter Snapshot.close t.snap;
      (match Snapshot.open_reader snapshot with
      | Ok reader ->
        t.snap <- Some reader;
        t.snap_entries <- Snapshot.entries reader;
        t.provenance <- "snapshot+tail"
      | Error msg ->
        t.snap <- None;
        t.snap_entries <- 0;
        ignore
          (Obs.Warn.once
             ("server.store.snapshot:" ^ snapshot)
             (Printf.sprintf "store %s: freshly written snapshot unreadable: %s" t.path
                msg)));
      count)

let flush t =
  locked t (fun () ->
      fsync_out (oc_exn t);
      t.pending <- 0)

let close t =
  locked t (fun () ->
      let oc = oc_exn t in
      fsync_out oc;
      close_out oc;
      t.oc <- None;
      (* Fold the reader's corruption tally into the sticky counter so
         stats queried after close (the daemon's drained report) keep
         the full picture; snap_entries is already sticky. *)
      Option.iter
        (fun sr -> t.snap_corrupt <- t.snap_corrupt + Snapshot.corrupt_entries sr)
        t.snap;
      Option.iter Snapshot.close t.snap;
      t.snap <- None)

let stats t =
  locked t (fun () ->
      let entries = Hashtbl.fold (fun _ b acc -> acc + List.length b) t.table 0 in
      let families = Hashtbl.fold (fun _ b acc -> acc + List.length b) t.families 0 in
      {
        entries;
        hits = t.hits;
        misses = t.misses;
        appended = t.appended;
        loaded = t.loaded;
        families;
        f_appended = t.f_appended;
        f_loaded = t.f_loaded;
        dropped_bytes = t.dropped_bytes;
        quarantined = t.quarantined;
        healed = t.healed;
        io_errors = t.io_errors;
        snap_entries = t.snap_entries;
        snap_hits = t.snap_hits;
        snap_corrupt =
          (t.snap_corrupt
          + match t.snap with Some sr -> Snapshot.corrupt_entries sr | None -> 0);
        open_ms = t.open_ms;
        provenance = t.provenance;
      })

let entry_of_verdict (v : Analysis.verdict) =
  {
    conflict_free = v.Analysis.conflict_free;
    full_rank = v.Analysis.full_rank;
    decided_by = Analysis.decided_by_name v.Analysis.decided_by;
    witness = Option.map Intvec.to_ints v.Analysis.witness;
  }
