(** The worker pool draining the admission queue.

    [start] spawns [workers] threads, each looping
    {!Admission.pop_batch} → [handle]; a worker exits when the queue
    is closed and drained.  [handle] receives whole batches so it can
    fan one batch across a shared {!Engine.Pool}.  Exceptions escaping
    [handle] are caught, counted on [server.worker_errors] and logged
    once — a poisoned request must not kill its worker. *)

type 'a t

val start :
  queue:'a Admission.t ->
  workers:int ->
  batch_max:int ->
  compatible:('a -> 'a -> bool) ->
  handle:('a list -> unit) ->
  'a t

val join : 'a t -> unit
(** Wait for every worker to exit (callers {!Admission.close} the
    queue first). *)
