(** The worker pool draining the admission queue.

    [start] spawns [workers] threads, each looping
    {!Admission.pop_batch} → [handle]; a worker exits when the queue
    is closed and drained.  [handle] receives whole batches so it can
    fan one batch across a shared {!Engine.Pool}.  Exceptions escaping
    [handle] are caught, counted on [server.worker_errors] and logged
    once — a poisoned request must not kill its worker.

    Supervision: with an armed {!Fault.Plan}, the [batcher.worker]
    site is consulted exactly once per {e popped batch} — never per
    wake-up or blocked wait, so the consult sequence is ordered with
    the request stream and a seeded plan replays identically.  A fired
    fault kills the worker with the batch in hand; the replacement it
    spawns (counted by the [server.worker_deaths] metric and
    {!deaths}) handles that batch first, so no accepted request is
    ever lost to a worker death. *)

type 'a t

val start :
  queue:'a Admission.t ->
  workers:int ->
  batch_max:int ->
  compatible:('a -> 'a -> bool) ->
  handle:('a list -> unit) ->
  'a t

val join : 'a t -> unit
(** Wait for every worker — including respawned ones — to exit
    (callers {!Admission.close} the queue first). *)

val deaths : 'a t -> int
(** Workers killed by the fault plan (each one respawned). *)
