(** AIMD adaptive concurrency limiter for daemon admission.

    Replaces the static admission cap: the number of requests admitted
    into the daemon (queued or being computed) is bounded by a limit
    that {e adapts} to observed request latency, classic
    additive-increase / multiplicative-decrease:

    - every completion at or under [target_ms] nudges the limit up by
      [1/limit] (≈ +1 per window of [limit] completions);
    - a completion over [target_ms] cuts the limit to [0.7 ×], at most
      once per window of [limit] completions, so one slow burst costs
      one decrease, not a collapse;
    - the limit is clamped to [[min_limit, max_limit]] and starts at
      [max_limit] (optimistic: identical to the old static cap until
      latency evidence arrives).

    The adaptation signal is completion latency measured from
    admission (so queue wait counts — a growing queue {e is} the
    overload), which needs no extra clock reads on the hot path.  The
    current limit is exported as the [admission.limit] gauge.

    Deliberately clock-free: windows are counted in completions, never
    wall time, so unit tests drive it deterministically.  All
    operations are thread-safe. *)

type t

val create : ?min_limit:int -> ?target_ms:float -> max_limit:int -> unit -> t
(** [min_limit] defaults to [1]; [target_ms] to [250.].
    @raise Invalid_argument when [min_limit < 1],
    [max_limit < min_limit], or [target_ms <= 0]. *)

val try_admit : t -> bool
(** Admit one request if current inflight < limit (counted toward
    inflight on success).  Callers must pair every [true] with exactly
    one {!release}. *)

val release : t -> latency_ms:float -> unit
(** Complete one admitted request, feeding its admission-to-completion
    latency into the AIMD loop. *)

val limit : t -> int
(** The current adaptive limit (floor of the fractional internal
    limit). *)

val inflight : t -> int
val admitted : t -> int
val rejected : t -> int

val decreases : t -> int
(** How many multiplicative decreases have fired. *)

val min_limit : t -> int
val max_limit : t -> int
