type 'a group = { g_key : string; mutable waiters : 'a list (* reverse join order *) }

type 'a t = {
  (* Buckets keyed by the 32-bit content hash; the canonical key
     string disambiguates colliding hashes, exactly as in [Store]. *)
  tbl : (int, 'a group list) Hashtbl.t;
  lock : Mutex.t;
  mutable n_groups : int;
  mutable n_coalesced : int;
}

let create () =
  { tbl = Hashtbl.create 64; lock = Mutex.create (); n_groups = 0; n_coalesced = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let join t ~hash ~key waiter =
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.tbl hash) in
      match List.find_opt (fun g -> g.g_key = key) bucket with
      | Some g ->
        g.waiters <- waiter :: g.waiters;
        t.n_coalesced <- t.n_coalesced + 1;
        `Follower
      | None ->
        Hashtbl.replace t.tbl hash ({ g_key = key; waiters = [ waiter ] } :: bucket);
        t.n_groups <- t.n_groups + 1;
        `Leader)

let complete t ~hash ~key =
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.tbl hash) in
      match List.partition (fun g -> g.g_key = key) bucket with
      | [], _ -> []
      | g :: _, rest ->
        if rest = [] then Hashtbl.remove t.tbl hash else Hashtbl.replace t.tbl hash rest;
        List.rev g.waiters)

let stats t = locked t (fun () -> (t.n_groups, t.n_coalesced))
