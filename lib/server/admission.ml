type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  {
    capacity;
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    is_closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  locked t (fun () ->
      if t.is_closed || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let pop_batch t ~max ~compatible =
  locked t (fun () ->
      while Queue.is_empty t.q && not t.is_closed do
        Condition.wait t.nonempty t.lock
      done;
      if Queue.is_empty t.q then None
      else begin
        let first = Queue.pop t.q in
        let batch = ref [ first ] in
        let n = ref 1 in
        let stop = ref false in
        while (not !stop) && !n < max && not (Queue.is_empty t.q) do
          if compatible first (Queue.peek t.q) then begin
            batch := Queue.pop t.q :: !batch;
            incr n
          end
          else stop := true
        done;
        Some (List.rev !batch)
      end)

let close t =
  locked t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let abort t =
  locked t (fun () ->
      t.is_closed <- true;
      let dropped = List.of_seq (Queue.to_seq t.q) in
      Queue.clear t.q;
      Condition.broadcast t.nonempty;
      dropped)

let closed t = locked t (fun () -> t.is_closed)
let length t = locked t (fun () -> Queue.length t.q)
