type config = {
  seed : int;
  requests : int;
  distinct : int;
  size : int;
  classes : string list;
  rate : float;
  concurrency : int;
  jobs : int option;
  deadline_ms : int option;
  transport : Wire.version;
  delay_ms : int;
}

let default_config =
  {
    seed = 42;
    requests = 500;
    distinct = 32;
    size = 4;
    classes = [ "io"; "conn"; "worker" ];
    rate = 0.1;
    (* One driver thread by default: per-site fault consult sequences
       are then a pure function of the seed, so two runs produce
       byte-identical fault logs (the determinism contract the CI
       smoke job diffs). *)
    concurrency = 1;
    jobs = None;
    deadline_ms = None;
    transport = Wire.V1;
    delay_ms = 25;
  }

type report = {
  seed : int;
  requests : int;
  classes : string list;
  rate : float;
  transport : string;
  ok : int;
  errors : int;
  retried : int;
  attempts : int;
  disagreements : int;
  acked : int;
  lost_writes : int;
  faults : int;
  delays : int;
  site_counts : (string * int) list;
  worker_deaths : int;
  store_quarantined : int;
  store_healed : int;
  store_io_errors : int;
  fingerprint : string;
  fault_log : string list;
  converged : bool;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  recovery_p50_ms : float;
  recovery_p95_ms : float;
  recovery_max_ms : float;
  wall_s : float;
}

let path_counter = Atomic.make 0

let fresh_path prefix suffix =
  Printf.sprintf "%s/%s-%d-%d%s"
    (Filename.get_temp_dir_name ())
    prefix (Unix.getpid ())
    (Atomic.fetch_and_add path_counter 1)
    suffix

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let reply_field reply name =
  match Json.member name reply with Some (Json.Str s) -> Some s | _ -> None

let run (cfg : config) =
  if cfg.requests < 1 then invalid_arg "Chaos.run: requests must be >= 1";
  if cfg.distinct < 1 then invalid_arg "Chaos.run: distinct must be >= 1";
  if cfg.concurrency < 1 then invalid_arg "Chaos.run: concurrency must be >= 1";
  let sock = fresh_path "chaos" ".sock" in
  let store_path = fresh_path "chaos-store" ".journal" in
  let instances =
    Array.init cfg.distinct (fun i -> Check.Gen.ith ~seed:cfg.seed ~size:cfg.size i)
  in
  (* Ground truth first, with no plan armed: the convergence check is
     against a fault-free direct Analysis.check, byte for byte. *)
  let expected =
    Array.map
      (fun (inst : Check.Instance.t) ->
        Json.to_string
          (Protocol.json_of_wire
             (Protocol.wire_of_verdict
                (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat))))
      instances
  in
  let daemon =
    Daemon.create
      {
        (Daemon.default_config (Daemon.Unix_sock sock)) with
        jobs = cfg.jobs;
        store_path = Some store_path;
        (* Small fsync interval: store.fsync faults get consulted
           often enough to matter at chaos request counts. *)
        fsync_every = 4;
      }
  in
  let run_thread = Thread.create Daemon.run daemon in
  let plan =
    Fault.Plan.make ~rate:cfg.rate ~seed:cfg.seed ~delay_ms:cfg.delay_ms
      ~classes:cfg.classes ()
  in
  Fault.Plan.arm plan;
  let next = Atomic.make 0 in
  let ok = Atomic.make 0
  and errors = Atomic.make 0
  and retried = Atomic.make 0
  and attempts = Atomic.make 0
  and disagreements = Atomic.make 0 in
  let latencies = Array.make cfg.requests nan in
  let recoveries = Array.make cfg.requests nan in
  (* Instances whose verdict the server acknowledged as persisted
     (store status hit or miss); these must survive into the reopened
     journal or the run lost an acknowledged write. *)
  let acked = Array.make cfg.distinct false in
  let acked_lock = Mutex.create () in
  let worker w () =
    let session =
      Client.session
        ~retry:{ Client.default_retry with retry_seed = cfg.seed + w }
        ~transport:cfg.transport (`Unix sock)
    in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < cfg.requests then begin
        let idx = i mod cfg.distinct in
        let inst = instances.(idx) in
        let req =
          Protocol.analyze ~id:(Json.Int i) ?deadline_ms:cfg.deadline_ms
            ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat
        in
        let t0 = Unix.gettimeofday () in
        (match Client.call session req with
        | Error _ -> Atomic.incr errors
        | Ok (reply, tries) ->
          let ms = 1000. *. (Unix.gettimeofday () -. t0) in
          latencies.(i) <- ms;
          ignore (Atomic.fetch_and_add attempts tries);
          if tries > 1 then begin
            Atomic.incr retried;
            recoveries.(i) <- ms
          end;
          if Protocol.reply_ok reply then begin
            Atomic.incr ok;
            (match Json.member "verdict" reply with
            | Some v when Json.to_string v = expected.(idx) -> ()
            | _ -> Atomic.incr disagreements);
            match reply_field reply "store" with
            | Some ("hit" | "miss") ->
              Mutex.lock acked_lock;
              acked.(idx) <- true;
              Mutex.unlock acked_lock
            | _ -> ()
          end
          else Atomic.incr errors);
        loop ()
      end
    in
    loop ();
    Client.close_session session
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init cfg.concurrency (fun w -> Thread.create (worker w) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let worker_deaths = Daemon.worker_deaths daemon in
  let store_stats = Option.map Store.stats (Daemon.store daemon) in
  (* Disarm before the drain: shutdown itself is not under test, and
     a clean close guarantees the journal is fully synced before the
     convergence audit reopens it. *)
  Fault.Plan.disarm ();
  Daemon.initiate_drain daemon;
  Thread.join run_thread;
  let lost_writes = ref 0 in
  let reopened = Store.open_ store_path in
  Array.iteri
    (fun idx was_acked ->
      if was_acked then begin
        let inst = instances.(idx) in
        match Store.find reopened ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat with
        | Some e
          when Json.to_string (Protocol.json_of_wire (Protocol.wire_of_entry e))
               = expected.(idx) -> ()
        | Some _ | None -> incr lost_writes
      end)
    acked;
  Store.close reopened;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ sock; store_path; store_path ^ ".quarantine" ];
  let events = Fault.Plan.events plan in
  let site_counts =
    List.map
      (fun (site, _) ->
        (site, List.length (List.filter (fun e -> e.Fault.Plan.site = site) events)))
      Fault.Plan.site_catalogue
  in
  let finite a =
    let xs = Array.of_list (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list a)) in
    Array.sort compare xs;
    xs
  in
  let lat = finite latencies and rec_ = finite recoveries in
  let ok_n = Atomic.get ok in
  {
    seed = cfg.seed;
    requests = cfg.requests;
    classes = cfg.classes;
    rate = cfg.rate;
    transport = Wire.version_name cfg.transport;
    ok = ok_n;
    errors = Atomic.get errors;
    retried = Atomic.get retried;
    attempts = Atomic.get attempts;
    disagreements = Atomic.get disagreements;
    acked = Array.fold_left (fun n b -> if b then n + 1 else n) 0 acked;
    lost_writes = !lost_writes;
    faults = Fault.Plan.faults_injected plan;
    delays = Fault.Plan.delays_injected plan;
    site_counts;
    worker_deaths;
    store_quarantined = (match store_stats with Some s -> s.Store.quarantined | None -> 0);
    store_healed = (match store_stats with Some s -> s.Store.healed | None -> 0);
    store_io_errors = (match store_stats with Some s -> s.Store.io_errors | None -> 0);
    fingerprint = Fault.Plan.fingerprint plan;
    fault_log = Fault.Plan.log_lines plan;
    converged = Atomic.get disagreements = 0 && !lost_writes = 0 && ok_n > 0;
    p50_ms = percentile lat 0.50;
    p95_ms = percentile lat 0.95;
    p99_ms = percentile lat 0.99;
    recovery_p50_ms = percentile rec_ 0.50;
    recovery_p95_ms = percentile rec_ 0.95;
    recovery_max_ms =
      (if Array.length rec_ = 0 then 0. else rec_.(Array.length rec_ - 1));
    wall_s;
  }

let json_of_report r =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("requests", Json.Int r.requests);
      ("classes", Json.Arr (List.map (fun c -> Json.Str c) r.classes));
      ("rate", Json.Float r.rate);
      ("transport", Json.Str r.transport);
      ("ok", Json.Int r.ok);
      ("errors", Json.Int r.errors);
      ("retried", Json.Int r.retried);
      ("attempts", Json.Int r.attempts);
      ("disagreements", Json.Int r.disagreements);
      ("acked", Json.Int r.acked);
      ("lost_writes", Json.Int r.lost_writes);
      ("faults", Json.Int r.faults);
      ("delays", Json.Int r.delays);
      ( "site_counts",
        Json.Obj (List.map (fun (s, n) -> (s, Json.Int n)) r.site_counts) );
      ("worker_deaths", Json.Int r.worker_deaths);
      ("store_quarantined", Json.Int r.store_quarantined);
      ("store_healed", Json.Int r.store_healed);
      ("store_io_errors", Json.Int r.store_io_errors);
      ("fingerprint", Json.Str r.fingerprint);
      ("converged", Json.Bool r.converged);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("recovery_p50_ms", Json.Float r.recovery_p50_ms);
      ("recovery_p95_ms", Json.Float r.recovery_p95_ms);
      ("recovery_max_ms", Json.Float r.recovery_max_ms);
      ("wall_s", Json.Float r.wall_s);
    ]
