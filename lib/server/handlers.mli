(** Request execution: one function per queued protocol operation,
    each returning the payload fields of its [ok] reply.

    Handlers are pure with respect to the connection — they never see
    sockets, only a {!Protocol.request} plus the shared resources
    (verdict {!Store}, per-request {!Engine.Budget}) — so the same
    code serves the daemon, the in-process bench harness and the
    differential tests. *)

exception Bad_request of string
(** A well-formed request the handlers cannot serve (unknown
    algorithm, missing space mapping, oversized replay instance …);
    the server maps it to a [bad_request] reply. *)

val builtin_algorithm : string -> int -> Algorithm.t * Intmat.t option
(** Resolve a built-in algorithm name ([matmul], [tc], [convolution],
    [bitmm], [lu]) at problem size [mu], with its default space
    mapping.  Shared with the CLI subcommands.
    @raise Bad_request on an unknown name. *)

val analyze_wire :
  store:Store.t option ->
  budget:Engine.Budget.t ->
  mu:int array ->
  Intmat.t ->
  Protocol.verdict_wire * string
(** One analysis, returned pre-rendering so the daemon can encode it
    per transport (a JSON object on v1, a ['V'] frame on v2) and fan
    one result out to every singleflight waiter.  The status string is
    ["hit"] (served from the store), ["miss"] (computed and
    persisted), ["bypass"] (computed under budget pressure, hence
    bounded and not persisted), ["error"] (computed but the journal
    append failed — not an acknowledged write), or ["off"] (no store
    configured). *)

val fields_of_analyze : Protocol.verdict_wire * string -> (string * Json.t) list
(** The [verdict] + [store] reply fields of an {!analyze_wire}
    result. *)

val analyze :
  store:Store.t option ->
  budget:Engine.Budget.t ->
  mu:int array ->
  Intmat.t ->
  (string * Json.t) list
(** [fields_of_analyze (analyze_wire ...)]. *)

val execute :
  pool:Engine.Pool.t ->
  store:Store.t option ->
  budget:Engine.Budget.t ->
  Protocol.request ->
  (string * Json.t) list
(** Dispatch one queued request ({!Protocol.queued}).
    @raise Bad_request as above.
    @raise Invalid_argument on [Ping]/[Stats]/[Drain], which the
    connection loop answers inline. *)
