(** The mapping-query daemon: a poll-based event loop, admission
    control and graceful drain, wired around {!Wire}, {!Singleflight},
    {!Admission}, {!Batcher}, {!Handlers} and {!Store}.

    I/O architecture: one event-loop thread owns every socket.  It
    polls ({!Poll}) the listener, a self-pipe and all connections;
    accepts until the listener would block; reads nonblocking chunks
    into each connection's {!Wire.decoder}; and answers inline
    everything that needs no pool dispatch — [ping], [stats], [drain],
    [hello], [ship], and the {e warm fast path}: an [analyze] whose verdict is
    already in the {!Store} is encoded straight from the loop, no
    queue, no batcher.  Cold [analyze] requests are coalesced in a
    {!Singleflight} table keyed on the 32-bit {!Store.key_hash}
    content hash (full {!Store.key_string} confirmation, so colliding
    hashes never share a verdict): the first request for a key is
    admitted as the group's leader, every identical request arriving
    while it is in flight joins as a follower, and the finishing
    worker fans one verdict — and one store append — out to all of
    them.  Replies append to a reusable per-connection output buffer
    and flush opportunistically, so pipelined bursts cost one [write]
    per readiness event rather than one per reply.

    Transports: every connection starts on the v1 JSON-lines dialect;
    a [hello] request ({!Protocol.Hello}) switches it to the v2 binary
    framing when [max_transport] allows ({!Wire}).  A corrupt or
    oversized frame — either dialect — earns one structured
    [parse_error] reply and the connection is dropped.

    Life cycle: {!create} binds the socket and replays the store,
    {!run} blocks in the event loop until a drain completes, and
    {!initiate_drain} (idempotent, thread-safe) starts the shutdown
    sequence: cancel every in-flight {!Engine.Budget}, close the
    admission queue, stop accepting, let the workers finish the
    already-accepted requests (their replies still go out — cancelled
    budgets make them bounded rather than lost), flush the remaining
    output, then shut the connections down and flush the store.
    Signal handlers must call only {!wake} (a self-pipe write); the
    loop turns the wake-up into [initiate_drain] from a normal
    context.

    Stale sockets: {!create} on a Unix path that holds a {e dead}
    socket (the previous daemon was SIGKILLed before it could clean
    up) probes it with a connect, unlinks it on refusal, and binds in
    its place; a path with a {e live} listener fails loudly, and a
    path that is not a socket at all is never unlinked.

    Fault injection (armed {!Fault.Plan}, docs/RESILIENCE.md): the
    loop consults [daemon.accept] (close the fresh connection),
    [conn.read] (transport reset while reading a request) and
    [conn.drop] (hang-up between requests) on every arriving chunk,
    and every reply write consults [conn.write] (swallow the reply and
    shut the connection down).  All four surface to a well-behaved
    client as a dropped connection, never as a corrupt reply; because
    the consults run on the single loop thread (or, for [conn.write],
    at the reply's position in the output stream), they stay ordered
    with the request stream and a seeded plan replays identically —
    the event-loop rewrite did not change this contract.  The gray
    [conn.slow] site is consulted at the same loop-ordered point but
    is {e ambient}: a fired consult stalls the loop by the plan's
    delay and is never logged per event ({!Fault.stall}).

    Deadlines: an [analyze] / [search] / [simulate] / [replay] whose
    [deadline_ms] is already [<= 0] on arrival (the router stamps the
    {e remaining} budget on forwarded frames, both dialects) is
    answered [deadline_exceeded] before any store lookup or dispatch —
    counted by [server.deadline_exceeded] and the [stats] field.

    Admission: queued compute work passes an AIMD adaptive concurrency
    limiter ({!Limiter}, bounds [[admission_min, queue_capacity]],
    exported as the [admission.limit] gauge) before the bounded queue;
    inline operations — [ping], [stats], [drain], [hello], [ship] and
    both fastpaths — are never gated, so control traffic cannot shed
    behind analyze load.  Loop-inline replies run under their own span
    root, so per-request trace trees are accurate for fastpath work
    too (per-thread span stacks in {!Obs.Trace}). *)

type listen =
  | Unix_sock of string  (** Path of a Unix-domain socket. *)
  | Tcp of int           (** TCP port on 127.0.0.1; [0] picks a free port. *)

type config = {
  listen : listen;
  jobs : int option;       (** Pool domains ([None]: runtime default). *)
  max_inflight : int;      (** Batcher worker threads. *)
  queue_capacity : int;    (** Admission queue bound; beyond it requests shed. *)
  batch_max : int;         (** Largest batch fanned across the pool. *)
  store_path : string option;
  snapshot_path : string option;
      (** Snapshot the store warm-starts from (and that [compact]
          rotates into): {!Store.open_} consults it on memory misses
          so a compacted store opens in O(1) reads
          (docs/CLUSTER.md). *)
  fsync_every : int;
  max_transport : Wire.version;
      (** Newest dialect [hello] may negotiate: {!Wire.V1} pins the
          server to JSON lines, {!Wire.V2} (the default) also offers
          the binary framing. *)
  admission_min : int;
      (** Floor of the adaptive admission limit ({!Limiter}). *)
  admission_target_ms : float;
      (** Admission-to-completion latency above which the AIMD
          limiter backs off. *)
}

val default_config : listen -> config
(** [jobs = None], [max_inflight = 2], [queue_capacity = 256],
    [batch_max = 32], no store, no snapshot, [fsync_every = 32],
    [max_transport = V2], [admission_min = 4],
    [admission_target_ms = 250.]. *)

type t

val create : config -> t
(** Bind the socket, open and replay the store, start the workers.
    @raise Failure / [Unix.Unix_error] when the socket or store path
    is unusable. *)

val run : t -> unit
(** The blocking event loop; returns once a drain has fully completed
    (store closed, sockets gone). *)

val initiate_drain : t -> unit

val abort : t -> unit
(** SIGKILL-grade shutdown for in-process chaos: refuse new work,
    cancel running budgets, {e discard} queued requests and queued
    reply bytes, and slam every connection without the graceful flush
    {!initiate_drain} performs.  Peers see EOF; acked writes survive
    only as far as the store's [fsync_every] contract already put them
    on disk.  Idempotent and thread-safe. *)

val wake : t -> unit
(** Async-signal-safe drain trigger: one self-pipe write, nothing
    else — safe to call from a [Sys.signal] handler. *)

val port : t -> int option
(** The bound TCP port ([None] for Unix sockets) — useful with
    [Tcp 0]. *)

val store : t -> Store.t option

val worker_deaths : t -> int
(** Batcher workers killed (and respawned) by an armed fault plan —
    see {!Batcher.deaths}. *)

val stats_fields : t -> (string * Json.t) list
(** The payload of a [stats] reply: queue depth, accepted / shed /
    batched / fastpath / worker-death counts, singleflight group and
    coalescing counts, the transport policy with the number of
    binary-negotiated connections, the draining flag and store
    statistics. *)
