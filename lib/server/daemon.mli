(** The mapping-query daemon: accept loop, connection threads,
    admission control and graceful drain, wired around {!Admission},
    {!Batcher}, {!Handlers} and {!Store}.

    Life cycle: {!create} binds the socket and replays the store,
    {!run} blocks in the accept loop until a drain completes, and
    {!initiate_drain} (idempotent, thread-safe) starts the shutdown
    sequence: cancel every in-flight {!Engine.Budget}, close the
    admission queue, stop accepting, let the workers finish the
    already-accepted requests (their replies still go out — cancelled
    budgets make them bounded rather than lost), then shut the
    connections down and flush the store.  Signal handlers must call
    only {!wake} (a self-pipe write); [run] turns the wake-up into
    [initiate_drain] from a normal context.

    Stale sockets: {!create} on a Unix path that holds a {e dead}
    socket (the previous daemon was SIGKILLed before it could clean
    up) probes it with a connect, unlinks it on refusal, and binds in
    its place; a path with a {e live} listener fails loudly, and a
    path that is not a socket at all is never unlinked.  [run]
    unlinks the socket again on clean exit.

    Fault injection (armed {!Fault.Plan}, docs/RESILIENCE.md): the
    accept loop consults [daemon.accept] (close the fresh connection),
    the reader threads consult [conn.read] (transport reset while
    reading a request) and [conn.drop] (hang-up between requests) on
    every arriving chunk, and every reply write consults [conn.write]
    (swallow the reply and shut the connection down).  All four
    surface to a well-behaved client as a dropped connection, never
    as a corrupt reply, and all are consulted at points ordered with
    the request stream so a seeded plan replays identically. *)

type listen =
  | Unix_sock of string  (** Path of a Unix-domain socket. *)
  | Tcp of int           (** TCP port on 127.0.0.1; [0] picks a free port. *)

type config = {
  listen : listen;
  jobs : int option;       (** Pool domains ([None]: runtime default). *)
  max_inflight : int;      (** Batcher worker threads. *)
  queue_capacity : int;    (** Admission queue bound; beyond it requests shed. *)
  batch_max : int;         (** Largest batch fanned across the pool. *)
  store_path : string option;
  fsync_every : int;
}

val default_config : listen -> config
(** [jobs = None], [max_inflight = 2], [queue_capacity = 256],
    [batch_max = 32], no store, [fsync_every = 32]. *)

type t

val create : config -> t
(** Bind the socket, open and replay the store, start the workers.
    @raise Failure / [Unix.Unix_error] when the socket or store path
    is unusable. *)

val run : t -> unit
(** The blocking accept loop; returns once a drain has fully
    completed (store closed, sockets gone). *)

val initiate_drain : t -> unit
val wake : t -> unit
(** Async-signal-safe drain trigger: one self-pipe write, nothing
    else — safe to call from a [Sys.signal] handler. *)

val port : t -> int option
(** The bound TCP port ([None] for Unix sockets) — useful with
    [Tcp 0]. *)

val store : t -> Store.t option

val worker_deaths : t -> int
(** Batcher workers killed (and respawned) by an armed fault plan —
    see {!Batcher.deaths}. *)

val stats_fields : t -> (string * Json.t) list
(** The payload of a [stats] reply: queue depth, accepted / shed /
    batched / worker-death counts, draining flag and store
    statistics. *)
