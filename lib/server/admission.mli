(** Admission control: the bounded request queue between connection
    threads and the batcher workers.

    Producers never block — {!try_push} on a full queue returns
    [false] and the caller sheds the request with an [overloaded]
    reply.  Consumers block in {!pop_batch} until work or {!close};
    a batch is the longest prefix of queued items (up to [max]) that
    is pairwise [compatible] with the first, so compatible analysis
    requests fan out across one {!Engine.Pool.map} call.

    All operations are thread-safe. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue, or return [false] when the queue is full or closed. *)

val pop_batch : 'a t -> max:int -> compatible:('a -> 'a -> bool) -> 'a list option
(** Block until the queue is non-empty, then dequeue the longest
    prefix (at most [max] items) whose members are all [compatible]
    with the first.  [None] once the queue is closed and drained. *)

val close : 'a t -> unit
(** Reject further pushes and wake all blocked consumers; already
    queued items are still delivered. *)

val abort : 'a t -> 'a list
(** SIGKILL-grade {!close}: additionally discard everything still
    queued, returning the dropped items so the caller can release
    bookkeeping (admission slots, inflight registration).  Consumers
    see an empty closed queue. *)

val closed : 'a t -> bool
val length : 'a t -> int
