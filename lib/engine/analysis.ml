type exactness = Exact | Bounded

type decided_by =
  | Theorem of Theorems.method_used
  | Lattice_oracle
  | Lattice_fallback

type verdict = {
  conflict_free : bool;
  full_rank : bool;
  decided_by : decided_by;
  witness : Intvec.t option;
  timing : float;
  exactness : exactness;
}

let decided_by_name = function
  | Theorem Theorems.Full_rank_square -> "full-rank-square"
  | Theorem Theorems.Adjugate_form -> "adjugate-form"
  | Theorem Theorems.Column_infeasible -> "kernel-column-infeasible"
  | Theorem Theorems.Hermite_n_minus_2 -> "hermite-n-minus-2"
  | Theorem Theorems.Hermite_n_minus_3 -> "hermite-n-minus-3"
  | Theorem Theorems.Gcd_sufficient -> "gcd-sufficient"
  | Theorem Theorems.Box_oracle -> "box-oracle"
  | Lattice_oracle -> "lattice-oracle"
  | Lattice_fallback -> "lattice-fallback"

(* Same threshold as Conflict.is_conflict_free: beyond this box volume
   the lattice oracle is the affordable exact method. *)
let box_volume_limit = 2_000_000

let m_queries = Obs.Metrics.counter "analysis.queries"
let m_closed_form = Obs.Metrics.counter "analysis.closed_form"
let m_box_oracle = Obs.Metrics.counter "analysis.box_oracle"
let m_budget_degraded = Obs.Metrics.counter "analysis.budget_degraded"
let m_rank_deficient = Obs.Metrics.counter "analysis.rank_deficient_fallthrough"
let h_check_ms = Obs.Metrics.histogram "analysis.check_ms"

(* Rank-deficient mapping matrices have no closed-form answer: every
   such query pays for an exact oracle.  Make that visible once. *)
let note_rank_deficient () =
  Obs.Metrics.incr m_rank_deficient;
  ignore
    (Obs.Warn.once "analysis.rank-deficient-oracle"
       "rank-deficient mapping matrix: no closed-form theorem applies, \
        paying exact-oracle cost (counted in \
        analysis.rank_deficient_fallthrough)")

let box_is_small mu =
  let v =
    Array.fold_left
      (fun acc m -> if acc > box_volume_limit then acc else acc * ((2 * m) + 1))
      1 mu
  in
  v <= box_volume_limit

(* The un-timed decision core: (free, decided_by, witness, full_rank).
   Mirrors Theorems.decide branch for branch, but reads the Hermite
   factorization through Engine.Cache and produces a witness on the
   conflicting side whenever one is cheap. *)
let core ~budget ~mu t =
  let n = Intmat.cols t and k = Intmat.rows t in
  if k >= n then begin
    let r = Intmat.rank t in
    if r = n then begin
      Obs.Metrics.incr m_closed_form;
      (true, Theorem Theorems.Full_rank_square, None, r = k)
    end
    else begin
      (* Rank-deficient: the kernel is nontrivial but its vectors can
         still all escape the box, so conflict-freedom needs an exact
         oracle (found by differential fuzzing; the old code reported
         a conflict from the rank alone). *)
      note_rank_deficient ();
      Engine.Budget.charge_oracle budget;
      if box_is_small mu then begin
        Obs.Metrics.incr m_box_oracle;
        let w = Obs.Trace.with_span "oracle.box" (fun () -> Conflict.find_conflict ~mu t) in
        (Option.is_none w, Theorem Theorems.Box_oracle, w, r = k)
      end
      else
        let w = Engine.Cache.find_conflict_lattice ~mu t in
        (Option.is_none w, Lattice_oracle, w, r = k)
    end
  end
  else if k = n - 1 && Intmat.rank t = n - 1 then begin
    Obs.Metrics.incr m_closed_form;
    match Conflict.single_conflict_vector t with
    | Some gamma ->
      let free = Conflict.is_feasible ~mu gamma in
      (free, Theorem Theorems.Adjugate_form, (if free then None else Some gamma), true)
    | None -> assert false (* full rank guarantees a nonzero minor *)
  end
  else begin
    let hnf = Engine.Cache.hnf t in
    let rank = hnf.Hnf.rank in
    let rank_ok = rank = k in
    let oracle () =
      Engine.Budget.charge_oracle budget;
      if box_is_small mu then begin
        Obs.Metrics.incr m_box_oracle;
        let w = Obs.Trace.with_span "oracle.box" (fun () -> Conflict.find_conflict ~mu t) in
        (Option.is_none w, Theorem Theorems.Box_oracle, w, rank_ok)
      end
      else
        let w = Engine.Cache.find_conflict_lattice ~mu t in
        (Option.is_none w, Lattice_oracle, w, rank_ok)
    in
    if not rank_ok then begin
      note_rank_deficient ();
      oracle ()
    end
    else begin
      let kernel_cols = List.init (n - rank) (fun c -> Intmat.col hnf.Hnf.u (rank + c)) in
      match List.find_opt (fun c -> not (Conflict.is_feasible ~mu c)) kernel_cols with
      | Some bad ->
        (* Theorem 4.4 rejected: the kernel column itself is a conflict
           vector inside the box. *)
        Obs.Metrics.incr m_closed_form;
        (false, Theorem Theorems.Column_infeasible, Some (Intvec.normalize_sign bad), rank_ok)
      | None ->
        let inp = { Theorems.hnf; mu } in
        let codim = n - rank in
        if codim = 2 && Theorems.nec_suff_n_minus_2 inp then begin
          Obs.Metrics.incr m_closed_form;
          (true, Theorem Theorems.Hermite_n_minus_2, None, rank_ok)
        end
        else if codim = 3 && Theorems.corrected_sufficient_n_minus_3 inp then begin
          Obs.Metrics.incr m_closed_form;
          (true, Theorem Theorems.Hermite_n_minus_3, None, rank_ok)
        end
        else if codim > 3 && Theorems.sufficient_cond4 inp then begin
          Obs.Metrics.incr m_closed_form;
          (true, Theorem Theorems.Gcd_sufficient, None, rank_ok)
        end
        else oracle ()
    end
  end

let verdict_table : (bool * decided_by * Intvec.t option * bool) Engine.Cache.table =
  Engine.Cache.create_table "analysis-verdict"

(* ------------------------- family verdicts ------------------------- *)

(* The symbolic tier: one Family.build per distinct T, then every
   instance in the family costs an O(atoms) condition evaluation
   instead of the cascade above.  Soundness rests on Family.eval being
   byte-identical to [core] whenever it answers Decided (checked by
   Check.Diff and test_family.ml); Residual instances fall through to
   [core] unchanged. *)

let family_table : Family.t Engine.Cache.table = Engine.Cache.create_table "family"
let m_family_hits = Obs.Metrics.counter "family.hits"
let m_family_misses = Obs.Metrics.counter "family.misses"
let m_family_residual = Obs.Metrics.counter "family.residual"

let family t =
  Engine.Cache.memo family_table t (fun () ->
      Obs.Metrics.incr m_family_misses;
      let n = Intmat.cols t and k = Intmat.rows t in
      (* Only thread the memoized factorization through on the branch
         that reads it; the others would charge an hnf-cache miss for a
         factorization [Family.build] never looks at. *)
      if k < n && not (k = n - 1 && Intmat.rank t = n - 1) then
        Family.build ~hnf:(Engine.Cache.hnf t) t
      else Family.build t)

let method_of_family = function
  | Family.Full_rank_square -> Theorems.Full_rank_square
  | Family.Adjugate_form -> Theorems.Adjugate_form
  | Family.Column_infeasible -> Theorems.Column_infeasible
  | Family.Hermite_n_minus_2 -> Theorems.Hermite_n_minus_2
  | Family.Hermite_n_minus_3 -> Theorems.Hermite_n_minus_3
  | Family.Gcd_sufficient -> Theorems.Gcd_sufficient

let eval_family fam ~mu =
  match Family.eval fam ~mu with
  | Family.Decided { conflict_free; method_; witness } ->
    Some
      {
        conflict_free;
        full_rank = fam.Family.full_rank;
        decided_by = Theorem (method_of_family method_);
        witness;
        timing = 0.;
        exactness = Exact;
      }
  | Family.Residual -> None

let probe_family ~mu t =
  if Array.length mu <> Intmat.cols t then
    invalid_arg "Analysis.probe_family: arity mismatch";
  match Engine.Cache.find_opt family_table t with
  | None -> None
  | Some fam -> eval_family fam ~mu

let check ?(budget = Engine.Budget.unlimited) ~mu t =
  if Array.length mu <> Intmat.cols t then invalid_arg "Analysis.check: arity mismatch";
  Obs.Metrics.incr m_queries;
  Obs.Trace.with_span "analysis.check" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let finish (free, how, wit, rank_ok) exactness =
    let timing = Unix.gettimeofday () -. t0 in
    Obs.Metrics.observe h_check_ms (1000. *. timing);
    {
      conflict_free = free;
      full_rank = rank_ok;
      decided_by = how;
      witness = wit;
      timing;
      exactness;
    }
  in
  if Engine.Budget.pressed budget then begin
    (* Graceful degradation: skip the closed-form cascade and the box
       oracle entirely; one lattice-oracle call (itself cached) settles
       the query, reported as bounded.  Bounded verdicts are never
       written to the verdict cache. *)
    Obs.Metrics.incr m_budget_degraded;
    Engine.Budget.charge_oracle budget;
    let w = Engine.Cache.find_conflict_lattice ~mu t in
    let rank_ok = (Engine.Cache.hnf t).Hnf.rank = Intmat.rows t in
    finish (Option.is_none w, Lattice_fallback, w, rank_ok) Bounded
  end
  else
    let key = Intmat.append_row t (Intvec.of_int_array mu) in
    finish
      (Engine.Cache.memo verdict_table key (fun () ->
           (* Family tier first: a Decided evaluation replays the
              concrete cascade's verdict without re-running it. *)
           let fam = family t in
           match Family.eval fam ~mu with
           | Family.Decided { conflict_free; method_; witness } ->
             Obs.Metrics.incr m_family_hits;
             Obs.Metrics.incr m_closed_form;
             (conflict_free, Theorem (method_of_family method_), witness,
              fam.Family.full_rank)
           | Family.Residual ->
             Obs.Metrics.incr m_family_residual;
             core ~budget ~mu t))
      Exact

let is_conflict_free ?budget ~mu t = (check ?budget ~mu t).conflict_free
