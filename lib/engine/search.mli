(** Parallel, cached versions of the {!Enumerate} queries.

    Each function answers exactly what its sequential counterpart
    answers — the candidate spaces, screens and cost-level order are
    identical — but the per-candidate work is fanned out over an
    {!Engine.Pool} and every mapping-matrix decision goes through the
    memoized {!Analysis.check}.  Results are merged deterministically
    (the pool preserves input order), so the output is reproducible
    and independent of the number of domains; [test_engine.ml] pins
    both properties.

    Why parallelism preserves exactness: candidates are screened
    independently (no shared state beyond the append-only caches), the
    screen itself is the same sound decision procedure as the
    sequential scan, and cost levels are still visited smallest-first
    with a full barrier per level — so "first level with winners"
    means the same thing under any domain count. *)

val all_optimal_schedules :
  ?pool:Engine.Pool.t ->
  ?budget:Engine.Budget.t ->
  ?max_objective:int ->
  Algorithm.t ->
  s:Intmat.t ->
  Intvec.t list
(** Parallel {!Enumerate.all_optimal_schedules}: every conflict-free,
    full-rank, dependence-respecting [Pi] at the minimal total-time
    level, in candidate-enumeration order. *)

val best_by_buffers :
  ?pool:Engine.Pool.t ->
  ?budget:Engine.Budget.t ->
  ?max_objective:int ->
  Algorithm.t ->
  s:Intmat.t ->
  (Intvec.t * Tmap.routing) option
(** Parallel {!Enumerate.best_by_buffers}: among all time-optimal
    schedules, one minimizing total delay registers (ties: fewest
    hops, then enumeration order — same tie-breaking as the
    sequential version). *)

val pareto_front :
  ?pool:Engine.Pool.t ->
  ?budget:Engine.Budget.t ->
  ?entry_bound:int ->
  ?time_slack:int ->
  ?accept:(Intvec.t -> Intmat.t -> bool) ->
  Algorithm.t ->
  k:int ->
  Enumerate.pareto_point list
(** Parallel {!Enumerate.pareto_front}: non-dominated (total time,
    processors) points over the unit space-mapping family, smallest
    time first.  The space-family scan for each schedule candidate
    runs as one pool task with the cached oracle plugged into
    {!Space_opt.optimize}. *)
