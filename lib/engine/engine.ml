module Budget = struct
  type t = {
    deadline : float option; (* absolute wall-clock seconds *)
    max_oracle_calls : int option;
    used_oracle : int Atomic.t;
    started : float;
    cancelled : bool Atomic.t;
  }

  (* All wall-clock reads go through [Fault.clock_now] so an armed
     chaos plan with the [clock] class can skew deadline arithmetic;
     with no plan armed it is [Unix.gettimeofday]. *)
  let make ?deadline_ms ?max_oracle_calls () =
    let started = Fault.clock_now () in
    {
      deadline = Option.map (fun ms -> started +. (float_of_int ms /. 1000.)) deadline_ms;
      max_oracle_calls;
      used_oracle = Atomic.make 0;
      started;
      cancelled = Atomic.make false;
    }

  let unlimited = make ()
  let charge_oracle t = Atomic.incr t.used_oracle
  let oracle_calls t = Atomic.get t.used_oracle
  let elapsed_ms t = 1000. *. (Fault.clock_now () -. t.started)

  (* The shared [unlimited] budget must stay un-cancellable — it backs
     every caller that passed no budget at all. *)
  let cancel t = if t != unlimited then Atomic.set t.cancelled true
  let cancelled t = Atomic.get t.cancelled

  let pressed t =
    Atomic.get t.cancelled
    || (* [>=] so a zero deadline is pressed from the start. *)
    (match t.deadline with
    | Some d -> Fault.clock_now () >= d
    | None -> false)
    ||
    match t.max_oracle_calls with
    | Some m -> Atomic.get t.used_oracle >= m
    | None -> false
end

module Cache = struct
  module Key = struct
    type t = Intmat.t

    let equal = Intmat.equal

    let hash m =
      let rows = Intmat.rows m and cols = Intmat.cols m in
      let h = ref ((rows * 31) + cols) in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          h := (!h * 1000003) lxor Zint.hash (Intmat.get m i j)
        done
      done;
      !h land max_int
  end

  module H = Hashtbl.Make (Key)

  type 'v table = {
    tbl : 'v H.t;
    lock : Mutex.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
    hits_metric : Obs.Metrics.counter;
    misses_metric : Obs.Metrics.counter;
  }

  type stats = { hits : int; misses : int; entries : int }

  (* Registry of per-table accessors, so [stats]/[clear] reach tables
     of any value type. *)
  let registry : (unit -> stats) list ref = ref []
  let clearers : (unit -> unit) list ref = ref []
  let registry_lock = Mutex.create ()

  let create_table name =
    let t =
      {
        tbl = H.create 256;
        lock = Mutex.create ();
        hits = Atomic.make 0;
        misses = Atomic.make 0;
        hits_metric = Obs.Metrics.counter ("cache." ^ name ^ ".hits");
        misses_metric = Obs.Metrics.counter ("cache." ^ name ^ ".misses");
      }
    in
    Mutex.lock registry_lock;
    registry :=
      (fun () ->
        Mutex.lock t.lock;
        let entries = H.length t.tbl in
        Mutex.unlock t.lock;
        { hits = Atomic.get t.hits; misses = Atomic.get t.misses; entries })
      :: !registry;
    clearers :=
      (fun () ->
        Mutex.lock t.lock;
        H.reset t.tbl;
        Mutex.unlock t.lock;
        Atomic.set t.hits 0;
        Atomic.set t.misses 0)
      :: !clearers;
    Mutex.unlock registry_lock;
    t

  let memo t key compute =
    Mutex.lock t.lock;
    match H.find_opt t.tbl key with
    | Some v ->
      Mutex.unlock t.lock;
      Atomic.incr t.hits;
      Obs.Metrics.incr t.hits_metric;
      v
    | None ->
      Mutex.unlock t.lock;
      Atomic.incr t.misses;
      Obs.Metrics.incr t.misses_metric;
      (* Compute outside the lock: a racing domain may duplicate the
         work, but never blocks behind it. *)
      let v = compute () in
      Mutex.lock t.lock;
      if not (H.mem t.tbl key) then H.add t.tbl key v;
      Mutex.unlock t.lock;
      v

  (* Probe without counting: callers that fall back to [memo] on [None]
     would otherwise double-count the miss. *)
  let find_opt t key =
    Mutex.lock t.lock;
    let v = H.find_opt t.tbl key in
    Mutex.unlock t.lock;
    v

  let stats () =
    Mutex.lock registry_lock;
    let fns = !registry in
    Mutex.unlock registry_lock;
    List.fold_left
      (fun acc f ->
        let s = f () in
        { hits = acc.hits + s.hits; misses = acc.misses + s.misses; entries = acc.entries + s.entries })
      { hits = 0; misses = 0; entries = 0 }
      fns

  let clear () =
    Mutex.lock registry_lock;
    let fns = !clearers in
    Mutex.unlock registry_lock;
    List.iter (fun f -> f ()) fns

  let key_hash = Key.hash

  let hnf_table : Hnf.result table = create_table "hnf"
  let lll_table : Intvec.t list table = create_table "lll"
  let lattice_table : Intvec.t option table = create_table "conflict-lattice"

  let hnf t = memo hnf_table t (fun () -> Hnf.compute t)

  let lll_reduce basis =
    match basis with
    | [] -> Lll.reduce basis (* delegate the Invalid_argument *)
    | _ -> memo lll_table (Intmat.of_rows basis) (fun () -> Lll.reduce basis)

  let find_conflict_lattice ~mu t =
    if Array.length mu <> Intmat.cols t then
      invalid_arg "Engine.Cache.find_conflict_lattice: arity mismatch";
    (* Key = T with mu stacked as an extra row: rows 0..k-1 recover T,
       the last row recovers mu, so distinct (T, mu) pairs never
       collide. *)
    let key = Intmat.append_row t (Intvec.of_int_array mu) in
    memo lattice_table key (fun () ->
        Obs.Metrics.incr (Obs.Metrics.counter "analysis.lattice_oracle");
        Obs.Trace.with_span "oracle.lattice" (fun () ->
            Conflict.find_conflict_lattice ~mu t))
end

module Pool = struct
  type t = { jobs : int }

  let create ?jobs () =
    let jobs =
      match jobs with
      | Some j -> max 1 j
      | None -> Domain.recommended_domain_count ()
    in
    { jobs }

  let jobs t = t.jobs

  let map t f xs =
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | xs when t.jobs = 1 -> List.map f xs
    | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let out = Array.make n None in
      let next = Atomic.make 0 in
      (* Spans opened by workers re-parent under the span open at the
         [map] call, so a trace shows the fan-out as one subtree. *)
      let parent = Obs.Trace.current () in
      let worker () =
        Obs.Trace.with_parent parent (fun () ->
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                out.(i) <- Some (f arr.(i));
                loop ()
              end
            in
            loop ())
      in
      let spawned = min (t.jobs - 1) (n - 1) in
      Obs.Metrics.set_gauge_max
        (Obs.Metrics.gauge "pool.max_domains")
        (float_of_int (spawned + 1));
      let domains = List.init spawned (fun _ -> Domain.spawn worker) in
      (* Always join every domain, even when a worker raises; the first
         exception (caller's first, then spawn order) is re-raised. *)
      let failure =
        match worker () with
        | () -> None
        | exception e -> Some e
      in
      let failure =
        List.fold_left
          (fun failure d ->
            match Domain.join d with
            | () -> failure
            | exception e -> (match failure with Some _ -> failure | None -> Some e))
          failure domains
      in
      (match failure with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map (function Some v -> v | None -> assert false) out)
end
