module Telemetry = struct
  type snapshot = {
    queries : int;
    closed_form : int;
    box_oracle : int;
    lattice_oracle : int;
    cache_hits : int;
    cache_misses : int;
    max_domains : int;
    phases : (string * float * int) list;
  }

  let queries = Atomic.make 0
  let closed_form = Atomic.make 0
  let box_oracle = Atomic.make 0
  let lattice_oracle = Atomic.make 0
  let cache_hits = Atomic.make 0
  let cache_misses = Atomic.make 0
  let max_domains = Atomic.make 1

  let phase_lock = Mutex.create ()
  let phases : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 8

  let reset () =
    List.iter
      (fun c -> Atomic.set c 0)
      [ queries; closed_form; box_oracle; lattice_oracle; cache_hits; cache_misses ];
    Atomic.set max_domains 1;
    Mutex.lock phase_lock;
    Hashtbl.reset phases;
    Mutex.unlock phase_lock

  let incr_queries () = Atomic.incr queries
  let incr_closed_form () = Atomic.incr closed_form
  let incr_box_oracle () = Atomic.incr box_oracle
  let incr_lattice_oracle () = Atomic.incr lattice_oracle
  let incr_cache_hits () = Atomic.incr cache_hits
  let incr_cache_misses () = Atomic.incr cache_misses

  let note_domains n =
    let rec bump () =
      let cur = Atomic.get max_domains in
      if n > cur && not (Atomic.compare_and_set max_domains cur n) then bump ()
    in
    bump ()

  let time label f =
    let t0 = Unix.gettimeofday () in
    let charge () =
      let dt = Unix.gettimeofday () -. t0 in
      Mutex.lock phase_lock;
      (match Hashtbl.find_opt phases label with
      | Some (total, count) ->
        total := !total +. dt;
        incr count
      | None -> Hashtbl.add phases label (ref dt, ref 1));
      Mutex.unlock phase_lock
    in
    match f () with
    | v ->
      charge ();
      v
    | exception e ->
      charge ();
      raise e

  let snapshot () =
    Mutex.lock phase_lock;
    let ph =
      Hashtbl.fold (fun label (total, count) acc -> (label, !total, !count) :: acc) phases []
    in
    Mutex.unlock phase_lock;
    {
      queries = Atomic.get queries;
      closed_form = Atomic.get closed_form;
      box_oracle = Atomic.get box_oracle;
      lattice_oracle = Atomic.get lattice_oracle;
      cache_hits = Atomic.get cache_hits;
      cache_misses = Atomic.get cache_misses;
      max_domains = Atomic.get max_domains;
      phases = List.sort compare ph;
    }

  let pp ppf s =
    Format.fprintf ppf
      "queries=%d decisions: closed-form=%d box-oracle=%d lattice-oracle=%d@ cache: hits=%d misses=%d@ domains=%d"
      s.queries s.closed_form s.box_oracle s.lattice_oracle s.cache_hits s.cache_misses
      s.max_domains;
    List.iter
      (fun (label, total, count) ->
        Format.fprintf ppf "@ phase %s: %.3f ms (%d)" label (1000. *. total) count)
      s.phases
end

module Budget = struct
  type t = {
    deadline : float option; (* absolute wall-clock seconds *)
    max_oracle_calls : int option;
    used_oracle : int Atomic.t;
    started : float;
  }

  let make ?deadline_ms ?max_oracle_calls () =
    let started = Unix.gettimeofday () in
    {
      deadline = Option.map (fun ms -> started +. (float_of_int ms /. 1000.)) deadline_ms;
      max_oracle_calls;
      used_oracle = Atomic.make 0;
      started;
    }

  let unlimited = make ()
  let charge_oracle t = Atomic.incr t.used_oracle
  let oracle_calls t = Atomic.get t.used_oracle
  let elapsed_ms t = 1000. *. (Unix.gettimeofday () -. t.started)

  let pressed t =
    (* [>=] so a zero deadline is pressed from the start. *)
    (match t.deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false)
    ||
    match t.max_oracle_calls with
    | Some m -> Atomic.get t.used_oracle >= m
    | None -> false
end

module Cache = struct
  module Key = struct
    type t = Intmat.t

    let equal = Intmat.equal

    let hash m =
      let rows = Intmat.rows m and cols = Intmat.cols m in
      let h = ref ((rows * 31) + cols) in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          h := (!h * 1000003) lxor Zint.hash (Intmat.get m i j)
        done
      done;
      !h land max_int
  end

  module H = Hashtbl.Make (Key)

  type 'v table = {
    tbl : 'v H.t;
    lock : Mutex.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  type stats = { hits : int; misses : int; entries : int }

  (* Registry of per-table accessors, so [stats]/[clear] reach tables
     of any value type. *)
  let registry : (unit -> stats) list ref = ref []
  let clearers : (unit -> unit) list ref = ref []
  let registry_lock = Mutex.create ()

  let create_table (_name : string) =
    let t =
      { tbl = H.create 256; lock = Mutex.create (); hits = Atomic.make 0; misses = Atomic.make 0 }
    in
    Mutex.lock registry_lock;
    registry :=
      (fun () ->
        Mutex.lock t.lock;
        let entries = H.length t.tbl in
        Mutex.unlock t.lock;
        { hits = Atomic.get t.hits; misses = Atomic.get t.misses; entries })
      :: !registry;
    clearers :=
      (fun () ->
        Mutex.lock t.lock;
        H.reset t.tbl;
        Mutex.unlock t.lock;
        Atomic.set t.hits 0;
        Atomic.set t.misses 0)
      :: !clearers;
    Mutex.unlock registry_lock;
    t

  let memo t key compute =
    Mutex.lock t.lock;
    match H.find_opt t.tbl key with
    | Some v ->
      Mutex.unlock t.lock;
      Atomic.incr t.hits;
      Telemetry.incr_cache_hits ();
      v
    | None ->
      Mutex.unlock t.lock;
      Atomic.incr t.misses;
      Telemetry.incr_cache_misses ();
      (* Compute outside the lock: a racing domain may duplicate the
         work, but never blocks behind it. *)
      let v = compute () in
      Mutex.lock t.lock;
      if not (H.mem t.tbl key) then H.add t.tbl key v;
      Mutex.unlock t.lock;
      v

  let stats () =
    Mutex.lock registry_lock;
    let fns = !registry in
    Mutex.unlock registry_lock;
    List.fold_left
      (fun acc f ->
        let s = f () in
        { hits = acc.hits + s.hits; misses = acc.misses + s.misses; entries = acc.entries + s.entries })
      { hits = 0; misses = 0; entries = 0 }
      fns

  let clear () =
    Mutex.lock registry_lock;
    let fns = !clearers in
    Mutex.unlock registry_lock;
    List.iter (fun f -> f ()) fns

  let hnf_table : Hnf.result table = create_table "hnf"
  let lll_table : Intvec.t list table = create_table "lll"
  let lattice_table : Intvec.t option table = create_table "conflict-lattice"

  let hnf t = memo hnf_table t (fun () -> Hnf.compute t)

  let lll_reduce basis =
    match basis with
    | [] -> Lll.reduce basis (* delegate the Invalid_argument *)
    | _ -> memo lll_table (Intmat.of_rows basis) (fun () -> Lll.reduce basis)

  let find_conflict_lattice ~mu t =
    if Array.length mu <> Intmat.cols t then
      invalid_arg "Engine.Cache.find_conflict_lattice: arity mismatch";
    (* Key = T with mu stacked as an extra row: rows 0..k-1 recover T,
       the last row recovers mu, so distinct (T, mu) pairs never
       collide. *)
    let key = Intmat.append_row t (Intvec.of_int_array mu) in
    memo lattice_table key (fun () ->
        Telemetry.incr_lattice_oracle ();
        Conflict.find_conflict_lattice ~mu t)
end

module Pool = struct
  type t = { jobs : int }

  let create ?jobs () =
    let jobs =
      match jobs with
      | Some j -> max 1 j
      | None -> Domain.recommended_domain_count ()
    in
    { jobs }

  let jobs t = t.jobs

  let map t f xs =
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | xs when t.jobs = 1 -> List.map f xs
    | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let out = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            out.(i) <- Some (f arr.(i));
            loop ()
          end
        in
        loop ()
      in
      let spawned = min (t.jobs - 1) (n - 1) in
      Telemetry.note_domains (spawned + 1);
      let domains = List.init spawned (fun _ -> Domain.spawn worker) in
      (* Always join every domain, even when a worker raises; the first
         exception (caller's first, then spawn order) is re-raised. *)
      let failure =
        match worker () with
        | () -> None
        | exception e -> Some e
      in
      let failure =
        List.fold_left
          (fun failure d ->
            match Domain.join d with
            | () -> failure
            | exception e -> (match failure with Some _ -> failure | None -> Some e))
          failure domains
      in
      (match failure with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map (function Some v -> v | None -> assert false) out)
end
