let get_pool = function
  | Some p -> p
  | None -> Engine.Pool.create ()

(* The engine's mapping-matrix screen: rank condition plus
   conflict-freedom, answered by the memoized Analysis front door. *)
let valid_screen ?budget ~mu t =
  Obs.Trace.with_span "search.screen" @@ fun () ->
  let v = Analysis.check ?budget ~mu t in
  v.Analysis.full_rank && v.Analysis.conflict_free

let all_optimal_schedules ?pool ?budget ?max_objective (alg : Algorithm.t) ~s =
  let pool = get_pool pool in
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  let max_objective =
    match max_objective with
    | Some m -> m
    | None -> Procedure51.default_max_objective mu
  in
  Obs.Trace.with_span "search.schedule-scan" @@ fun () ->
  let screen pi =
    Schedule.respects pi d && valid_screen ?budget ~mu (Intmat.append_row s pi)
  in
  (* Cost levels smallest-first with a barrier per level, exactly like
     Procedure 5.1; within a level every candidate is screened
     independently and winners keep enumeration order. *)
  let rec by_cost cost =
    if cost > max_objective then []
    else begin
      let winners =
        Obs.Trace.with_span ~args:[ ("cost", string_of_int cost) ] "search.level"
        @@ fun () ->
        let cands = Procedure51.candidates_at_cost ~mu cost in
        let flags = Engine.Pool.map pool screen cands in
        List.filter_map
          (fun (pi, ok) -> if ok then Some pi else None)
          (List.combine cands flags)
      in
      match winners with
      | [] -> by_cost (cost + 1)
      | winners -> winners
    end
  in
  by_cost 1

let best_by_buffers ?pool ?budget ?max_objective (alg : Algorithm.t) ~s =
  let pool = get_pool pool in
  let d = alg.Algorithm.dependences in
  let schedules = all_optimal_schedules ~pool ?budget ?max_objective alg ~s in
  let scored =
    Engine.Pool.map pool
      (fun pi ->
        match Tmap.find_routing (Tmap.make ~s ~pi) ~d with
        | Some routing ->
          let buffers = Array.fold_left ( + ) 0 routing.Tmap.buffers in
          let hops = Array.fold_left ( + ) 0 routing.Tmap.hops in
          Some ((buffers, hops), pi, routing)
        | None -> None)
      schedules
    |> List.filter_map Fun.id
  in
  match List.sort (fun (a, _, _) (b, _, _) -> compare a b) scored with
  | [] -> None
  | (_, pi, routing) :: _ -> Some (pi, routing)

let pareto_front ?pool ?budget ?entry_bound ?(time_slack = 8)
    ?(accept = fun _ _ -> true) (alg : Algorithm.t) ~k =
  let pool = get_pool pool in
  let mu = Index_set.bounds alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  let max_objective = Procedure51.default_max_objective mu in
  let valid t = valid_screen ?budget ~mu t in
  Obs.Trace.with_span "search.space-scan" @@ fun () ->
  (* One pool task per schedule candidate: the whole space-family scan
     for that Pi, with the cached oracle plugged into Space_opt. *)
  let eval pi =
    match Space_opt.optimize ?entry_bound ~objective:Space_opt.Processors ~valid alg ~pi ~k with
    | Some r -> Some (pi, r)
    | None -> None
  in
  let level cost =
    Obs.Trace.with_span ~args:[ ("cost", string_of_int cost) ] "search.level"
    @@ fun () ->
    let cands =
      List.filter (fun pi -> Schedule.respects pi d) (Procedure51.candidates_at_cost ~mu cost)
    in
    Engine.Pool.map pool eval cands
  in
  (* The joint optimum's level: first cost where any candidate admits a
     conflict-free space mapping at all (accept is applied afterwards,
     like the sequential version, so a rejecting accept shifts the
     front without moving its origin). *)
  let rec find_base cost =
    if cost > max_objective then None
    else begin
      let res = level cost in
      if List.exists Option.is_some res then Some (cost, res) else find_base (cost + 1)
    end
  in
  match find_base 1 with
  | None -> []
  | Some (base, res0) ->
    let levels =
      (base, res0) :: List.init time_slack (fun i -> (base + 1 + i, level (base + 1 + i)))
    in
    let candidates =
      List.concat_map
        (fun (cost, res) ->
          List.filter_map
            (function
              | Some (pi, r) when accept pi r.Space_opt.s ->
                Some
                  {
                    Enumerate.total_time = cost + 1;
                    processors = r.Space_opt.processors;
                    pi;
                    s = r.Space_opt.s;
                  }
              | Some _ | None -> None)
            res)
        levels
    in
    (* The sequential version accumulates candidates with [::], so the
       stable sort resolves (time, processors) ties in favor of the
       last-enumerated candidate; reverse here to keep representative
       parity with [Enumerate.pareto_front]. *)
    let sorted =
      List.sort
        (fun a b ->
          compare
            (a.Enumerate.total_time, a.Enumerate.processors)
            (b.Enumerate.total_time, b.Enumerate.processors))
        (List.rev candidates)
    in
    let rec sweep best_procs = function
      | [] -> []
      | p :: rest ->
        if p.Enumerate.processors < best_procs then p :: sweep p.Enumerate.processors rest
        else sweep best_procs rest
    in
    sweep max_int sorted
