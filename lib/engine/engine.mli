(** Execution substrate for mapping-search queries: a domain-based
    worker pool, content-addressed memo tables over {!Intmat.t}, and
    per-query deadlines/budgets.

    The modules here carry no mapping theory of their own — they make
    the scans of {!Analysis} and {!Search} parallel, cached and
    observable without changing their answers (the caches key on the
    full matrix content, and the pool merges results in deterministic
    input order).  Observability — counters, span timing, pool-width
    gauges — goes through {!Obs}; the emitted names are catalogued in
    [docs/SCHEMA.md]. *)

(** Per-query deadlines and work budgets.  A budget never aborts a
    query: callers poll {!pressed} and degrade gracefully (e.g.
    {!Analysis.check} switches the exact box oracle for the lattice
    oracle and reports the verdict as bounded). *)
module Budget : sig
  type t

  val make : ?deadline_ms:int -> ?max_oracle_calls:int -> unit -> t
  (** [deadline_ms] is wall-clock, measured from this call;
      [max_oracle_calls] caps the number of conflict-oracle
      invocations charged with {!charge_oracle}.  Wall-clock reads go
      through {!Fault.clock_now}, so an armed chaos plan can skew
      deadline arithmetic deterministically (docs/RESILIENCE.md). *)

  val unlimited : t
  (** Never pressed. *)

  val charge_oracle : t -> unit
  val oracle_calls : t -> int
  val elapsed_ms : t -> float

  val cancel : t -> unit
  (** Press the budget immediately, whatever its deadline: every
      subsequent {!pressed} poll answers true, so in-flight queries
      degrade to bounded verdicts and finish fast.  This is the path
      shared by the server's graceful drain and the CLI's SIGINT
      handling.  Cancelling {!unlimited} is a no-op (it is shared by
      every caller that passed no budget). *)

  val cancelled : t -> bool

  val pressed : t -> bool
  (** True once the deadline passed, the oracle budget is spent, or
      the budget was {!cancel}led. *)
end

(** Content-addressed memo tables in front of the expensive kernels
    ({!Hnf.compute}, {!Lll.reduce}, {!Conflict.find_conflict_lattice}).
    Keys are full matrices compared with {!Intmat.equal} and hashed
    entry-by-entry, so structurally equal matrices built by different
    scans share one entry.  Tables are domain-safe (mutex-protected);
    hit/miss counts feed the [cache.<name>.hits] / [cache.<name>.misses]
    counters of {!Obs.Metrics}. *)
module Cache : sig
  type 'v table

  val create_table : string -> 'v table
  (** A fresh matrix-keyed table registered for {!stats}/{!clear}; the
      name keys its hit/miss counters in {!Obs.Metrics}. *)

  val memo : 'v table -> Intmat.t -> (unit -> 'v) -> 'v
  (** [memo tbl key compute] returns the cached value for [key] or runs
      [compute] once and stores the result. *)

  val find_opt : 'v table -> Intmat.t -> 'v option
  (** Probe without computing — and without touching the hit/miss
      counters, so callers that fall back to {!memo} on [None] don't
      double-count. *)

  val key_hash : Intmat.t -> int
  (** The content hash the memo tables key on (entry-by-entry over the
      full matrix, in [0 .. max_int]).  Exposed so the persistent
      result store of [lib/server] can address records by the same
      hash the in-memory caches use. *)

  val hnf : Intmat.t -> Hnf.result
  (** Memoized {!Hnf.compute} (default strategy and reduction). *)

  val lll_reduce : Intvec.t list -> Intvec.t list
  (** Memoized {!Lll.reduce} (default delta), keyed on the basis rows. *)

  val find_conflict_lattice : mu:int array -> Intmat.t -> Intvec.t option
  (** Memoized {!Conflict.find_conflict_lattice}, keyed on [(T, mu)]. *)

  type stats = { hits : int; misses : int; entries : int }

  val stats : unit -> stats
  (** Aggregate over every registered table since the last {!clear}. *)

  val clear : unit -> unit
  (** Drop all entries and zero the hit/miss counts of every table. *)
end

(** A bounded pool of OCaml 5 domains with deterministic merge:
    {!Pool.map} always returns results in input order, whatever the
    scheduling, so parallel scans are reproducible and agree with the
    sequential reference (property-tested in [test_engine.ml]). *)
module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** [jobs] defaults to [Domain.recommended_domain_count ()]; values
      below 1 are clamped to 1 (purely sequential). *)

  val jobs : t -> int

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Order-preserving parallel map.  Work is distributed by atomic
      index stealing across [jobs - 1] spawned domains plus the calling
      domain; with [jobs = 1] this is [List.map].  Trace spans opened
      by [f] on worker domains are re-parented under the span that was
      open at the [map] call (see {!Obs.Trace.with_parent}), and the
      widest pool observed feeds the [pool.max_domains] gauge. *)
end
