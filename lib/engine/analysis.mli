(** The single front door for conflict-freedom queries.

    [check ~mu t] subsumes the ad-hoc trio callers used to stitch
    together by hand — {!Theorems.decide} for the verdict,
    {!Conflict.find_conflict} for a witness, and a manual
    [Intmat.rank] test for condition 4 of Definition 2.2 — behind one
    call returning one record.  On top of the unification it adds what
    the old trio could not offer:

    - {e caching}: the Hermite factorization, the lattice oracle and
      the final verdict are memoized in {!Engine.Cache}, keyed on the
      matrix content, so repeated queries (ubiquitous in enumeration
      scans) cost a hash lookup;
    - {e budgets}: under an expired {!Engine.Budget} the exact box
      oracle is replaced by the lattice oracle and the verdict is
      reported with [exactness = Bounded] instead of blocking;
    - {e observability}: every call bumps the [analysis.*] counters of
      {!Obs.Metrics}, feeds the [analysis.check_ms] histogram and opens
      an [analysis.check] trace span (see [docs/SCHEMA.md] for the
      full catalogue).  Rank-deficient inputs — which skip every
      closed-form theorem and pay for an exact oracle — additionally
      bump [analysis.rank_deficient_fallthrough] and warn once on
      stderr. *)

type exactness =
  | Exact    (** Decided by a sound condition or an exact oracle. *)
  | Bounded  (** Budget-degraded path; see {!Engine.Budget}. *)

type decided_by =
  | Theorem of Theorems.method_used
      (** A paper condition (or the exact box oracle) settled it. *)
  | Lattice_oracle
      (** The LLL-lattice oracle, chosen because the box was too large
          to enumerate (still exact). *)
  | Lattice_fallback
      (** The lattice oracle chosen under budget pressure; the verdict
          is reported as bounded. *)

type verdict = {
  conflict_free : bool;
  full_rank : bool;     (** [rank T = k], condition 4 of Definition 2.2. *)
  decided_by : decided_by;
  witness : Intvec.t option;
  (** A conflict vector inside the box when one was produced (always
      primitive and sign-normalized); [None] for conflict-free
      mappings and for verdicts settled without constructing one. *)
  timing : float;       (** Wall-clock seconds spent in this call. *)
  exactness : exactness;
}

val check : ?budget:Engine.Budget.t -> mu:int array -> Intmat.t -> verdict
(** Decide conflict-freedom of [t] on the box [0 <= j_i <= mu_i] with
    the cheapest applicable method.  Agrees with {!Theorems.decide}
    (property-tested); verdicts computed without budget pressure are
    cached and replayed on structurally equal queries.
    @raise Invalid_argument when [mu] and [t] disagree on arity. *)

val is_conflict_free : ?budget:Engine.Budget.t -> mu:int array -> Intmat.t -> bool
(** [(check ~mu t).conflict_free]. *)

val decided_by_name : decided_by -> string
(** Human-readable method name, also used by the JSON reports. *)

(** {1 Family tier}

    The symbolic layer in front of the cascade: {!Family.build} runs
    once per distinct mapping matrix (memoized in the ["family"] cache
    table) and {!check} evaluates the stored piecewise condition at
    each instance's [mu] before falling back to the concrete cascade.
    Counters: [family.hits] (instance decided symbolically),
    [family.misses] (a family built), [family.residual] (family known
    but this [mu] needs concrete analysis).  See [docs/FAMILIES.md]. *)

val family : Intmat.t -> Family.t
(** The memoized family verdict for [t] (built on first use). *)

val eval_family : Family.t -> mu:int array -> verdict option
(** Evaluate a family (e.g. one replayed from the persistent store) at
    concrete bounds: [Some] verdict — byte-identical to {!check}'s,
    with [timing = 0.] and [exactness = Exact] — when the family
    decides, [None] when the instance is residual.
    @raise Invalid_argument on arity mismatch. *)

val probe_family : mu:int array -> Intmat.t -> verdict option
(** {!eval_family} against the in-process family cache without
    building anything: [None] when no family is cached for [t] or the
    instance is residual.
    @raise Invalid_argument when [mu] and [t] disagree on arity. *)
