(* ------------------------------ dtypes ----------------------------- *)

module type TYPE = sig
  type t

  val name : string
  val of_int : int -> t
  val add : t -> t -> t
  val mul : t -> t -> t
  val damp : t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

let ulp_distance x y =
  if x = y then 0
  else if Float.is_nan x || Float.is_nan y then max_int
  else begin
    let bx = Int64.bits_of_float x and by = Int64.bits_of_float y in
    if Int64.logand bx Int64.min_int <> Int64.logand by Int64.min_int then max_int
    else
      (* Same sign: the magnitude difference fits an int. *)
      Int64.to_int (Int64.abs (Int64.sub bx by))
  end

module Int_type = struct
  type t = int

  let name = "int"
  let of_int x = x
  let add = ( + )
  let mul = ( * )
  let damp x = x
  let equal = Int.equal
  let pp = Format.pp_print_int
end

module Int32_type = struct
  type t = int32

  let name = "int32"
  let of_int = Int32.of_int
  let add = Int32.add
  let mul = Int32.mul
  let damp x = x
  let equal = Int32.equal
  let pp fmt x = Format.fprintf fmt "%ldl" x
end

module Float_type = struct
  type t = float

  let name = "float"
  let of_int = float_of_int
  let add = ( +. )
  let mul = ( *. )
  let damp x = x *. 0.0625
  let equal x y = ulp_distance x y <= 2
  let pp fmt x = Format.fprintf fmt "%.17g" x
end

let types : (module TYPE) list =
  [ (module Int_type); (module Int32_type); (module Float_type) ]

let type_by_name n =
  List.find_opt (fun (module M : TYPE) -> M.name = n) types

(* ----------------------------- scenarios --------------------------- *)

type schedule = Optimal | Alternative

type spec = {
  name : string;
  algorithm : string;
  mu : int;
  schedule : schedule;
  flops_per_cell : int;
}

let scenario ?(schedule = Optimal) algorithm ~mu =
  let flops_per_cell =
    match algorithm with
    | "matmul" -> 2 (* one multiply-add per point *)
    | "tc" -> 11 (* 5 muls + 5 adds + the damp scale *)
    | other -> invalid_arg ("Scenario.scenario: unknown algorithm " ^ other)
  in
  let name =
    Printf.sprintf "%s-%d%s" algorithm mu
      (match schedule with Optimal -> "" | Alternative -> "-alt")
  in
  { name; algorithm; mu; schedule; flops_per_cell }

let default_scenarios =
  [
    scenario "matmul" ~mu:4;
    scenario "matmul" ~mu:8;
    scenario "matmul" ~mu:16;
    scenario "matmul" ~mu:8 ~schedule:Alternative;
    scenario "tc" ~mu:4;
    scenario "tc" ~mu:8;
    scenario "tc" ~mu:16;
    scenario "tc" ~mu:8 ~schedule:Alternative;
  ]

let schedule_name spec =
  match (spec.schedule, spec.algorithm) with
  | Optimal, _ -> "optimal"
  | Alternative, "matmul" -> "lee-kedem"
  | Alternative, _ -> "prior"

let instantiate spec =
  let mu = spec.mu in
  match spec.algorithm with
  | "matmul" ->
    let pi =
      match spec.schedule with
      | Optimal -> Matmul.optimal_pi ~mu
      | Alternative -> Matmul.lee_kedem_pi ~mu
    in
    (Matmul.algorithm ~mu, Tmap.make ~s:Matmul.paper_s ~pi)
  | "tc" ->
    let pi =
      match spec.schedule with
      | Optimal -> Transitive_closure.optimal_pi ~mu
      | Alternative -> Transitive_closure.prior_pi ~mu
    in
    (Transitive_closure.algorithm ~mu, Tmap.make ~s:Transitive_closure.paper_s ~pi)
  | other -> invalid_arg ("Scenario.instantiate: unknown algorithm " ^ other)

(* ------------------------ generic semantics ------------------------ *)

(* Matmul over an arbitrary dtype: the same three streams as
   [Matmul.semantics] (B along d1, A along d2, the running sum along
   d3), inputs drawn as small ints so every dtype represents them
   exactly and the integer reference stays overflow-free. *)

type 'v streams = { va : 'v; vb : 'v; vc : 'v }

let matmul_semantics (type a) (module M : TYPE with type t = a) ~mu ~seed :
    a streams Algorithm.semantics =
  let rng = Random.State.make [| 0x7e57; seed; mu |] in
  let matrix () =
    Array.init (mu + 1) (fun _ ->
        Array.init (mu + 1) (fun _ -> Random.State.int rng 19 - 9))
  in
  let a = matrix () and b = matrix () in
  let zero = M.of_int 0 in
  {
    Algorithm.boundary =
      (fun j i ->
        match i with
        | 0 -> { va = zero; vb = M.of_int b.(j.(2)).(j.(1)); vc = zero }
        | 1 -> { va = M.of_int a.(j.(0)).(j.(2)); vb = zero; vc = zero }
        | 2 -> { va = zero; vb = zero; vc = zero }
        | _ -> invalid_arg "Scenario.matmul_semantics: bad dependence index");
    compute =
      (fun _ ops ->
        let from_b = ops.(0) and from_a = ops.(1) and from_c = ops.(2) in
        {
          va = from_a.va;
          vb = from_b.vb;
          vc = M.add from_c.vc (M.mul from_a.va from_b.vb);
        });
    equal_value =
      (fun x y -> M.equal x.va y.va && M.equal x.vb y.vb && M.equal x.vc y.vc);
    pp_value =
      (fun fmt v ->
        Format.fprintf fmt "{a=%a;b=%a;c=%a}" M.pp v.va M.pp v.vb M.pp v.vc);
  }

(* Transitive closure over an arbitrary dtype.  The paper evaluates the
   reindexed algorithm structurally (the recurrence arithmetic lives in
   [17]), so execution uses a fixed polynomial recurrence over the five
   dependence streams: deterministic per point, sensitive to any
   misrouted operand, and — thanks to [damp] — bounded for float. *)

let tc_coefficients = [| 2; -3; 1; -1; 2 |]

let tc_semantics (type a) (module M : TYPE with type t = a) :
    a Algorithm.semantics =
  {
    Algorithm.boundary =
      (fun j i ->
        M.of_int ((((i + 1) * (j.(0) + (2 * j.(1)) + (3 * j.(2)) + 5)) mod 17) - 8));
    compute =
      (fun j ops ->
        let acc = ref (M.of_int 0) in
        Array.iteri
          (fun i v -> acc := M.add !acc (M.mul v (M.of_int tc_coefficients.(i))))
          ops;
        M.add (M.damp !acc) (M.of_int (((j.(0) + j.(1) + j.(2)) mod 5) - 2)));
    equal_value = M.equal;
    pp_value = M.pp;
  }

(* ------------------------------ cells ------------------------------ *)

type sim_check = {
  sim_makespan : int;
  sim_clean : bool;
  makespan_agrees : bool;
}

type cell = {
  spec : spec;
  dtype : string;
  jobs : int;
  cells : int;
  levels : int;
  makespan : int;
  processors : int;
  peak_width : int;
  mismatches : int;
  verified : bool;
  sim : sim_check option;
  elapsed_s : float;
  gflops : float;
  utilization : float;
}

let mismatch_counter = Obs.Metrics.counter "exec.verify.mismatches"

(* The dtype-polymorphic core: execute, verify cell-for-cell, and
   cross-check the simulator; only monomorphic measurements escape. *)
let measure (type v) ~pool ~sim_limit alg tm plan
    (sem : v Algorithm.semantics) =
  let kr = Kernel.run ~pool plan sem in
  let mismatches, sim =
    Obs.Trace.with_span "exec.verify" @@ fun () ->
    let reference = Algorithm.evaluate_all alg sem in
    let mismatches =
      Index_set.fold
        (fun acc j ->
          if sem.Algorithm.equal_value (kr.Kernel.lookup j) (reference j) then acc
          else acc + 1)
        0 alg.Algorithm.index_set
    in
    if mismatches > 0 then
      Obs.Metrics.add mismatch_counter mismatches;
    let sim =
      if Kernel.cells plan > sim_limit then None
      else begin
        let r = Exec.run alg sem tm in
        Some
          {
            sim_makespan = r.Exec.makespan;
            sim_clean = Exec.is_clean r;
            makespan_agrees = r.Exec.makespan = Kernel.makespan plan;
          }
      end
    in
    (mismatches, sim)
  in
  (kr.Kernel.elapsed_s, mismatches, sim)

let run_cell ?pool ?block ?(sim_limit = 8192) spec (module M : TYPE) =
  let pool = match pool with Some p -> p | None -> Engine.Pool.create () in
  let alg, tm = instantiate spec in
  let plan = Kernel.compile ?block alg tm in
  let elapsed_s, mismatches, sim =
    match spec.algorithm with
    | "matmul" ->
      measure ~pool ~sim_limit alg tm plan
        (matmul_semantics (module M) ~mu:spec.mu ~seed:2025)
    | _ -> measure ~pool ~sim_limit alg tm plan (tc_semantics (module M))
  in
  let cells = Kernel.cells plan in
  let makespan = Kernel.makespan plan in
  let processors = Kernel.processors plan in
  {
    spec;
    dtype = M.name;
    jobs = Engine.Pool.jobs pool;
    cells;
    levels = Kernel.levels plan;
    makespan;
    processors;
    peak_width = Kernel.peak_width plan;
    mismatches;
    verified = mismatches = 0;
    sim;
    elapsed_s;
    gflops =
      (if elapsed_s <= 0. then 0.
       else float_of_int (spec.flops_per_cell * cells) /. elapsed_s /. 1e9);
    utilization =
      (if processors = 0 || makespan = 0 then 0.
       else float_of_int cells /. float_of_int (processors * makespan));
  }

let run_matrix ?pool ?block ?sim_limit specs dtypes =
  let pool = match pool with Some p -> p | None -> Engine.Pool.create () in
  List.concat_map
    (fun spec -> List.map (run_cell ~pool ?block ?sim_limit spec) dtypes)
    specs

let cell_ok c =
  c.verified
  &&
  match c.sim with
  | None -> true
  | Some s -> s.sim_clean && s.makespan_agrees

let json_of_cell c =
  Json.Obj
    [
      ("scenario", Json.Str c.spec.name);
      ("algorithm", Json.Str c.spec.algorithm);
      ("mu", Json.Int c.spec.mu);
      ("schedule", Json.Str (schedule_name c.spec));
      ("dtype", Json.Str c.dtype);
      ("jobs", Json.Int c.jobs);
      ("cells", Json.Int c.cells);
      ("levels", Json.Int c.levels);
      ("makespan", Json.Int c.makespan);
      ("processors", Json.Int c.processors);
      ("peak_width", Json.Int c.peak_width);
      ("verified", Json.Bool c.verified);
      ("mismatches", Json.Int c.mismatches);
      ( "sim",
        (match c.sim with
        | None -> Json.Null
        | Some s ->
          Json.Obj
            [
              ("makespan", Json.Int s.sim_makespan);
              ("clean", Json.Bool s.sim_clean);
              ("makespan_agrees", Json.Bool s.makespan_agrees);
            ]) );
      ("elapsed_ms", Json.Float (c.elapsed_s *. 1000.));
      ("gflops", Json.Float c.gflops);
      ("utilization", Json.Float c.utilization);
    ]
