(** The SCENARIOS × TYPES differential matrix over the compiled
    executor {!Kernel}.

    Each scenario is one of the paper's case studies — matrix
    multiplication (Examples 3.1/5.1) or the reindexed transitive
    closure (Examples 3.2/5.2) — at a given size [mu], under either the
    paper's optimal schedule or the prior-art alternative it improves
    on ([23]'s Lee–Kedem schedule for matmul, the [22] schedule for
    transitive closure).  Each dtype is a first-class module giving the
    cell arithmetic over [int], [int32] or [float].

    Per cell the runner:

    + compiles and executes the kernel ({!Kernel.compile} /
      {!Kernel.run}) over {!Engine.Pool} domains;
    + verifies every cell against the schedule-independent reference
      evaluator {!Algorithm.evaluate_all} — exactly for the integer
      dtypes, within a 2-ULP tolerance for float;
    + at small sizes additionally cross-checks the {!Exec}
      cycle-accurate simulator: same makespan, clean run (the
      simulator itself checks values against the same reference, so
      agreement is transitive);
    + reports throughput (GFLOP/s over the per-cell flop count) and
      PE utilization.

    The [exec.verify] span covers the verification work; the
    [exec.verify.mismatches] counter counts failing cells
    (docs/SCHEMA.md).  CLI: [shangfortes exec]; bench: the [exec]
    section of BENCH_<rev>.json.  See docs/EXECUTOR.md. *)

(** {1 Dtypes} *)

module type TYPE = sig
  type t

  val name : string
  val of_int : int -> t
  val add : t -> t -> t
  val mul : t -> t -> t

  val damp : t -> t
  (** Contraction applied inside the transitive-closure recurrence so
      float values stay bounded over long dependence chains (identity
      for the wrapping integer types). *)

  val equal : t -> t -> bool
  (** Exact for integer types; ULP-tolerant for float. *)

  val pp : Format.formatter -> t -> unit
end

module Int_type : TYPE with type t = int
module Int32_type : TYPE with type t = int32
module Float_type : TYPE with type t = float

val types : (module TYPE) list
(** The full dtype axis: int, int32, float. *)

val type_by_name : string -> (module TYPE) option

val ulp_distance : float -> float -> int
(** Units in the last place between two same-sign floats ([0] iff
    numerically equal, [max_int] across a sign change or to a NaN). *)

(** {1 Scenarios} *)

type schedule =
  | Optimal      (** The paper's Pi° (Procedure 5.1's output). *)
  | Alternative  (** Lee–Kedem [23] for matmul, [22] for closure. *)

type spec = {
  name : string;        (** e.g. ["matmul-8"], ["tc-8-alt"]. *)
  algorithm : string;   (** ["matmul"] or ["tc"]. *)
  mu : int;
  schedule : schedule;
  flops_per_cell : int; (** Flop count charged per index point. *)
}

val scenario : ?schedule:schedule -> string -> mu:int -> spec
(** [scenario "matmul" ~mu:8].  @raise Invalid_argument on an unknown
    algorithm name (only the two case studies execute generically). *)

val default_scenarios : spec list
(** The committed matrix: both algorithms at mu 4/8/16 under Pi°, plus
    one alternative-schedule cell each at mu 8 — so the paper's
    headline speedups are measured, not just derived. *)

val schedule_name : spec -> string

val instantiate : spec -> Algorithm.t * Tmap.t
(** The algorithm instance and verified paper mapping [T = [S; Pi]]
    a spec names. *)

(** {1 Generic semantics}

    The same cell arithmetic as the case studies' reference semantics,
    lifted over an arbitrary dtype. *)

type 'v streams = { va : 'v; vb : 'v; vc : 'v }
(** Matmul's three data streams (the [B], [A] and accumulator flows of
    Figure 2). *)

val matmul_semantics :
  (module TYPE with type t = 'a) ->
  mu:int ->
  seed:int ->
  'a streams Algorithm.semantics
(** Multiply two seeded random (mu+1)×(mu+1) matrices of small ints —
    exactly representable in every dtype, overflow-free in [int]. *)

val tc_semantics : (module TYPE with type t = 'a) -> 'a Algorithm.semantics
(** A fixed polynomial recurrence over the closure's five dependence
    streams: deterministic per point, sensitive to any misrouted
    operand, bounded for float thanks to [TYPE.damp]. *)

(** {1 Running} *)

type sim_check = {
  sim_makespan : int;
  sim_clean : bool;     (** {!Exec.is_clean} on the simulator report. *)
  makespan_agrees : bool;  (** Simulator makespan = kernel makespan. *)
}

type cell = {
  spec : spec;
  dtype : string;
  jobs : int;
  cells : int;
  levels : int;
  makespan : int;
  processors : int;
  peak_width : int;
  mismatches : int;     (** Cells disagreeing with the reference. *)
  verified : bool;      (** [mismatches = 0]. *)
  sim : sim_check option;  (** [None] above the simulator size cutoff. *)
  elapsed_s : float;
  gflops : float;
  utilization : float;  (** cells / (processors * makespan). *)
}

val run_cell :
  ?pool:Engine.Pool.t ->
  ?block:int ->
  ?sim_limit:int ->
  spec ->
  (module TYPE) ->
  cell
(** One cell of the matrix.  [sim_limit] (default 8192) is the largest
    cell count still cross-checked against {!Exec.run}. *)

val run_matrix :
  ?pool:Engine.Pool.t ->
  ?block:int ->
  ?sim_limit:int ->
  spec list ->
  (module TYPE) list ->
  cell list
(** The cross product, scenario-major. *)

val cell_ok : cell -> bool
(** Verified against the reference, and — when the simulator ran —
    clean with an agreeing makespan. *)

val json_of_cell : cell -> Json.t
(** The per-cell object of the [exec] CLI report and bench section
    (fields documented in docs/SCHEMA.md). *)
