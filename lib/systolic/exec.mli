(** Cycle-accurate simulation of a uniform dependence algorithm on the
    processor array defined by a mapping matrix [T = [S; Pi]].

    The simulator executes every computation [j ∈ J] at time [Pi j] on
    PE [S j], moves each produced datum to its consumer along the
    routing [K] (one interconnection primitive per cycle, then a
    destination buffer until use), and checks every structural claim
    the paper makes about a mapping:

    - {b computational conflicts} (Definition 2.2, condition 3): two
      points on the same PE at the same cycle;
    - {b causality}: every operand has been produced (and has arrived)
      before its use;
    - {b link collisions} (the [23] condition discussed in Section 5):
      two data of the same stream crossing the same directed link of
      the same PE in the same cycle;
    - {b buffer occupancy} per dependence stream, to compare with the
      paper's [Pi d_i - Σ_j k_ji] register counts;
    - {b value correctness}: the final values equal the reference
      evaluator of {!Algorithm.evaluate_all}. *)

type conflict = {
  time : int;
  pe : int array;
  points : int array list;  (** At least two index points. *)
}

type collision = {
  link_pe : int array;       (** PE the datum leaves. *)
  primitive : int array;     (** Direction vector of the link. *)
  stream : int;              (** Dependence index. *)
  at_time : int;
  count : int;               (** Data simultaneously on the link. *)
}

(** Outcome of the value check against {!Algorithm.evaluate_all},
    kept separate from the movement checks so a skipped routing can
    never masquerade as a verified run (tests must pattern-match the
    case they mean, not a collapsed boolean). *)
type verification =
  | Values_ok
      (** Every value matches the reference evaluator {e and} the
          movement checks (routing, links, buffers) actually ran. *)
  | Skipped_no_routing
      (** Values match, but no routing [K] exists within the schedule
          slack, so link/buffer movement was never exercised. *)
  | Mismatch of int array list
      (** Points whose computed value differs from the reference
          evaluator (capped at 16). *)

val verification_name : verification -> string
(** ["values-ok" | "skipped-no-routing" | "mismatch"]. *)

type 'v report = {
  makespan : int;              (** Cycles between first and last firing,
                                   inclusive — compare Equation 2.7. *)
  num_processors : int;
  computations : int;
  conflicts : conflict list;
  causality_violations : (int array * int) list;
  (** (point, dependence index) whose operand had not arrived. *)
  collisions : collision list;
  max_buffer_occupancy : int array;
  (** Per dependence stream, max data waiting in any one PE's buffer. *)
  routing : Tmap.routing option;  (** [None] when no routing was found;
                                      movement checks are then skipped. *)
  verified : verification;
  utilization : float;
  (** computations / (processors * makespan). *)
}

val run :
  ?p:Intmat.t ->
  Algorithm.t ->
  'v Algorithm.semantics ->
  Tmap.t ->
  'v report
(** @raise Invalid_argument when dimensions disagree.
    @raise Failure when [Pi D > 0] fails (the simulation would not be
    causal by construction). *)

val values_agree : 'v report -> bool
(** The computed values match the reference evaluator (i.e. [verified]
    is not [Mismatch _]); says nothing about movement checks. *)

val is_clean : 'v report -> bool
(** No conflicts, no causality violations, no collisions, values match.
    Movement checks may have been skipped ([Skipped_no_routing]) — use
    {!fully_verified} to also require them. *)

val fully_verified : 'v report -> bool
(** {!is_clean} and [verified = Values_ok]: every structural claim was
    actually exercised, nothing skipped. *)

val schedule_table : Algorithm.t -> Tmap.t -> (int * (int array * int array) list) list
(** For rendering: time -> [(pe, point); ...] sorted by time then PE. *)

val route_primitives : Tmap.routing -> int -> int list
(** The canonical hop sequence (primitive indices, one per cycle) used
    for dependence [i] — primitives in index order, each repeated
    [k_ji] times.  Exposed so that {!Linkcheck}'s analytical model and
    the simulation share one movement policy by construction. *)
