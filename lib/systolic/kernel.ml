(* Schedule compilation: the hyperplane walk of [Pi j = t] lowered to
   flat arrays so the hot loop is array indexing, no hashing.  Index
   points of the box live at dense lexicographic positions (the box is
   full), which gives an O(1) bijection point <-> id via strides. *)

type plan = {
  alg : Algorithm.t;
  m : int;                  (* dependences *)
  card : int;
  stride : int array;       (* id = sum_i j_i * stride_i *)
  points : int array array; (* id -> index point *)
  preds : int array;        (* id*m + i -> predecessor id, -1 = boundary *)
  order : int array;        (* ids sorted by (Pi j, S j) *)
  level_off : int array;    (* levels+1 offsets into order *)
  makespan : int;
  processors : int;
  peak_width : int;
  block : int;
}

let cells p = p.card
let levels p = Array.length p.level_off - 1
let makespan p = p.makespan
let processors p = p.processors
let peak_width p = p.peak_width

let compile ?(block = 256) (alg : Algorithm.t) tm =
  Obs.Trace.with_span "exec.compile" @@ fun () ->
  if block < 1 then invalid_arg "Kernel.compile: block must be >= 1";
  let d = alg.Algorithm.dependences in
  if not (Schedule.respects tm.Tmap.pi d) then
    failwith "Kernel.compile: Pi D > 0 fails; the mapping is not causal";
  let iset = alg.Algorithm.index_set in
  let mu = Index_set.bounds iset in
  let n = Array.length mu in
  let stride = Array.make n 1 in
  for i = n - 2 downto 0 do
    stride.(i) <- stride.(i + 1) * (mu.(i + 1) + 1)
  done;
  let pos j =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + (j.(i) * stride.(i))
    done;
    !acc
  in
  let card = Index_set.cardinal iset in
  let points = Array.make card [||] in
  Index_set.iter (fun j -> points.(pos j) <- Array.copy j) iset;
  let m = Algorithm.num_dependences alg in
  let preds = Array.make (card * m) (-1) in
  Array.iteri
    (fun id j ->
      for i = 0 to m - 1 do
        let p = Algorithm.predecessor alg j i in
        if Index_set.contains iset p then preds.((id * m) + i) <- pos p
      done)
    points;
  let time = Array.map (Tmap.time_of tm) points in
  let pe = Array.map (Tmap.space_of tm) points in
  let order = Array.init card Fun.id in
  Array.sort
    (fun x y ->
      match compare time.(x) time.(y) with
      | 0 -> compare pe.(x) pe.(y)
      | c -> c)
    order;
  let offs = ref [ card ] and peak = ref 0 in
  let lo = ref card in
  for oi = card - 1 downto 0 do
    if oi = 0 || time.(order.(oi - 1)) <> time.(order.(oi)) then begin
      peak := max !peak (!lo - oi);
      lo := oi;
      offs := oi :: !offs
    end
  done;
  let level_off = Array.of_list !offs in
  let processors =
    let seen = Hashtbl.create 256 in
    Array.iter (fun p -> Hashtbl.replace seen (Array.to_list p) ()) pe;
    Hashtbl.length seen
  in
  let makespan =
    if card = 0 then 0 else time.(order.(card - 1)) - time.(order.(0)) + 1
  in
  {
    alg;
    m;
    card;
    stride;
    points;
    preds;
    order;
    level_off;
    makespan;
    processors;
    peak_width = !peak;
    block;
  }

type 'v result = {
  lookup : int array -> 'v;
  elapsed_s : float;
  parallel_levels : int;
}

let cells_counter = Obs.Metrics.counter "exec.cells"

let run ?pool plan (sem : 'v Algorithm.semantics) =
  let pool = match pool with Some p -> p | None -> Engine.Pool.create () in
  if plan.card = 0 then
    {
      lookup = (fun _ -> invalid_arg "Kernel.run: empty index set");
      elapsed_s = 0.;
      parallel_levels = 0;
    }
  else begin
    Obs.Metrics.add cells_counter plan.card;
    (* The fill value is never observed: every id is written before any
       consumer reads it (consumers live on strictly later levels). *)
    let j0 = plan.points.(plan.order.(0)) in
    let fill =
      if plan.m > 0 then sem.Algorithm.boundary j0 0
      else sem.Algorithm.compute j0 [||]
    in
    let values = Array.make plan.card fill in
    let exec_range lo hi =
      for oi = lo to hi - 1 do
        let id = plan.order.(oi) in
        let j = plan.points.(id) in
        let ops =
          Array.init plan.m (fun i ->
              let p = plan.preds.((id * plan.m) + i) in
              if p >= 0 then values.(p) else sem.Algorithm.boundary j i)
        in
        values.(id) <- sem.Algorithm.compute j ops
      done
    in
    let parallel_levels = ref 0 in
    let nlevels = Array.length plan.level_off - 1 in
    let t0 = Unix.gettimeofday () in
    Obs.Trace.with_span "exec.wavefront" (fun () ->
        for l = 0 to nlevels - 1 do
          let lo = plan.level_off.(l) and hi = plan.level_off.(l + 1) in
          let width = hi - lo in
          if width <= plan.block || Engine.Pool.jobs pool = 1 then
            exec_range lo hi
          else begin
            (* PE groups: the order is PE-sorted within a level, so a
               contiguous block is a group of adjacent processors. *)
            incr parallel_levels;
            let nchunks = (width + plan.block - 1) / plan.block in
            ignore
              (Engine.Pool.map pool
                 (fun c ->
                   let s = lo + (c * plan.block) in
                   exec_range s (min hi (s + plan.block)))
                 (List.init nchunks Fun.id))
          end
        done);
    let elapsed_s = Unix.gettimeofday () -. t0 in
    let n = Array.length plan.stride in
    let lookup j =
      if Array.length j <> n then invalid_arg "Kernel.run: arity mismatch";
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := !acc + (j.(i) * plan.stride.(i))
      done;
      values.(!acc)
    in
    { lookup; elapsed_s; parallel_levels = !parallel_levels }
  end
