(** Compiled execution of a verified mapping [T = [S; Pi]].

    Where {!Exec} is a cycle-accurate {e simulator} (hashtables over
    firings, movement checks, per-cycle bookkeeping), this module is an
    {e executor}: {!compile} lowers the schedule once into flat arrays
    — point table, predecessor ids per dependence, execution order
    grouped by hyperplane [Pi j = t] — and {!run} then walks the
    hyperplanes in time order, computing every point of a wavefront
    before the next one starts.

    Because a linear schedule satisfies [Pi D > 0] (enforced at compile
    time, as in {!Exec.run}), all operands of a wavefront were produced
    on strictly earlier hyperplanes, so the points of one wavefront are
    independent: wide wavefronts are split into blocks of adjacent PEs
    (the order is sorted by PE within a level) and fanned across
    {!Engine.Pool} domains; narrow ones run inline, since a domain
    fan-out would cost more than the block itself.  The wavefront sweep
    is the cross-level barrier — exactly the array's cycle structure.

    The executor is generic in the value type through
    {!Algorithm.semantics}, so one compiled plan runs the same schedule
    over int, int32, or float cells (see {!Scenario} for the dtype
    modules and the differential test matrix).

    Hot-path observability: [exec.compile] and [exec.wavefront] spans,
    plus the [exec.cells] counter (docs/SCHEMA.md). *)

type plan

val compile : ?block:int -> Algorithm.t -> Tmap.t -> plan
(** Lower the schedule of [tm] over the algorithm's index set.
    [block] (default 256) is the number of points of one wavefront a
    single domain executes as a unit; a wavefront wider than [block]
    is fanned across the pool by {!run}.
    @raise Failure when [Pi D > 0] fails (not a causal schedule).
    @raise Invalid_argument when dimensions disagree or [block < 1]. *)

val cells : plan -> int
(** Number of index points (= computations executed per {!run}). *)

val levels : plan -> int
(** Number of distinct hyperplanes [Pi j = t] (barriers per run). *)

val makespan : plan -> int
(** Last minus first firing time plus one — equals the simulator's
    [Exec.report.makespan] for the same mapping by construction. *)

val processors : plan -> int
(** Distinct PEs [S j] over the index set. *)

val peak_width : plan -> int
(** Points on the widest hyperplane — an upper bound on the useful
    domain parallelism of {!run}. *)

type 'v result = {
  lookup : int array -> 'v;  (** Value computed at an index point. *)
  elapsed_s : float;         (** Wall-clock of the wavefront sweep. *)
  parallel_levels : int;     (** Levels that were fanned across the pool. *)
}

val run : ?pool:Engine.Pool.t -> plan -> 'v Algorithm.semantics -> 'v result
(** Execute the plan.  [pool] defaults to a fresh
    [Engine.Pool.create ()]; pass an explicit pool to pin [jobs].
    Deterministic: the returned values do not depend on the pool size
    or the block parameter (tested in [test_systolic.ml]). *)
