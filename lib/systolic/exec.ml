type conflict = {
  time : int;
  pe : int array;
  points : int array list;
}

type collision = {
  link_pe : int array;
  primitive : int array;
  stream : int;
  at_time : int;
  count : int;
}

type verification =
  | Values_ok
  | Skipped_no_routing
  | Mismatch of int array list

let verification_name = function
  | Values_ok -> "values-ok"
  | Skipped_no_routing -> "skipped-no-routing"
  | Mismatch _ -> "mismatch"

type 'v report = {
  makespan : int;
  num_processors : int;
  computations : int;
  conflicts : conflict list;
  causality_violations : (int array * int) list;
  collisions : collision list;
  max_buffer_occupancy : int array;
  routing : Tmap.routing option;
  verified : verification;
  utilization : float;
}

let schedule_table (alg : Algorithm.t) tm =
  let events = ref [] in
  Index_set.iter
    (fun j ->
      let j = Array.copy j in
      events := (Tmap.time_of tm j, (Tmap.space_of tm j, j)) :: !events)
    alg.Algorithm.index_set;
  let by_time = Hashtbl.create 64 in
  List.iter
    (fun (t, ev) ->
      let prev = try Hashtbl.find by_time t with Not_found -> [] in
      Hashtbl.replace by_time t (ev :: prev))
    !events;
  Hashtbl.fold (fun t evs acc -> (t, List.sort compare evs) :: acc) by_time []
  |> List.sort compare

(* Expand column [i] of the routing matrix into the ordered list of
   primitive indices the datum traverses (one per cycle). *)
let route_primitives (routing : Tmap.routing) i =
  let k = routing.Tmap.k_matrix in
  let r = Intmat.rows k in
  List.concat
    (List.init r (fun prim ->
         List.init (Zint.to_int (Intmat.get k prim i)) (fun _ -> prim)))

let primitive_vector p prim =
  Array.init (Intmat.rows p) (fun r -> Zint.to_int (Intmat.get p r prim))

let run ?p (alg : Algorithm.t) (sem : 'v Algorithm.semantics) tm =
  let iset = alg.Algorithm.index_set in
  let d = alg.Algorithm.dependences in
  let m = Algorithm.num_dependences alg in
  if not (Schedule.respects tm.Tmap.pi d) then
    failwith "Exec.run: Pi D > 0 fails; the mapping is not causal";
  let pmat =
    match p with
    | Some p -> p
    | None -> Tmap.nearest_neighbor_primitives (Tmap.k tm - 1)
  in
  let routing = Tmap.find_routing ~p:pmat tm ~d in
  (* Per-dependence schedule delay Pi d_i. *)
  let delay = Array.init m (fun i -> Zint.to_int (Intvec.dot tm.Tmap.pi (Intmat.col d i))) in
  (* Gather all firings. *)
  let firings = ref [] in
  Index_set.iter
    (fun j ->
      let j = Array.copy j in
      firings := (Tmap.time_of tm j, Tmap.space_of tm j, j) :: !firings)
    iset;
  let firings = List.sort compare !firings in
  let computations = List.length firings in
  let makespan =
    match (firings, List.rev firings) with
    | (t0, _, _) :: _, (t1, _, _) :: _ -> t1 - t0 + 1
    | _ -> 0
  in
  (* Computational conflicts. *)
  let cell = Hashtbl.create 1024 in
  List.iter
    (fun (t, pe, j) ->
      let key = (t, Array.to_list pe) in
      let prev = try Hashtbl.find cell key with Not_found -> [] in
      Hashtbl.replace cell key (j :: prev))
    firings;
  let conflicts =
    Hashtbl.fold
      (fun (time, pe) points acc ->
        if List.length points > 1 then
          { time; pe = Array.of_list pe; points } :: acc
        else acc)
      cell []
  in
  let num_processors =
    let pes = Hashtbl.create 256 in
    List.iter (fun (_, pe, _) -> Hashtbl.replace pes (Array.to_list pe) ()) firings;
    Hashtbl.length pes
  in
  (* Execute in time order, checking operand availability and values. *)
  let store : (int list, 'v) Hashtbl.t = Hashtbl.create 1024 in
  let causality = ref [] in
  List.iter
    (fun (t, _, j) ->
      let operands =
        Array.init m (fun i ->
            let pred = Algorithm.predecessor alg j i in
            if Index_set.contains iset pred then begin
              let tp = Tmap.time_of tm pred in
              let hops =
                match routing with
                | Some r -> r.Tmap.hops.(i)
                | None -> 0
              in
              if tp + hops > t || tp >= t then causality := (Array.copy j, i) :: !causality;
              match Hashtbl.find_opt store (Array.to_list pred) with
              | Some v -> v
              | None ->
                (* Should not happen when causality holds; fall back to
                   the reference evaluator to keep the run total. *)
                Algorithm.evaluate alg sem pred
            end
            else sem.Algorithm.boundary j i)
      in
      Hashtbl.replace store (Array.to_list j) (sem.Algorithm.compute j operands))
    firings;
  (* Value correctness against the reference evaluator.  Mismatching
     points are reported explicitly (capped) so a wrong value is never
     confused with a movement check that was merely skipped. *)
  let reference = Algorithm.evaluate_all alg sem in
  let max_reported_mismatches = 16 in
  let mismatches =
    List.rev
      (Index_set.fold
         (fun acc j ->
           if List.length acc >= max_reported_mismatches then acc
           else
             match Hashtbl.find_opt store (Array.to_list j) with
             | Some v when sem.Algorithm.equal_value v (reference j) -> acc
             | _ -> Array.copy j :: acc)
         [] iset)
  in
  (* Data movement: link occupancy and destination buffers. *)
  let collisions = ref [] in
  let max_buffer = Array.make m 0 in
  (match routing with
  | None -> ()
  | Some r ->
    let link_load = Hashtbl.create 4096 in
    let buffer_load = Hashtbl.create 4096 in
    let deps = Array.init m (fun i -> Algorithm.dependence alg i) in
    let prim_vecs = Array.init (Intmat.cols pmat) (fun p -> primitive_vector pmat p) in
    let routes = Array.init m (fun i -> route_primitives r i) in
    List.iter
      (fun (tprod, pe_src, j) ->
        for i = 0 to m - 1 do
          let consumer = Array.mapi (fun rr x -> x + deps.(i).(rr)) j in
          if Index_set.contains iset consumer then begin
            (* Walk the route, one primitive per cycle. *)
            let pos = ref (Array.copy pe_src) in
            List.iteri
              (fun l prim ->
                let key =
                  (Array.to_list !pos, prim, i, tprod + l + 1)
                in
                let c = (try Hashtbl.find link_load key with Not_found -> 0) + 1 in
                Hashtbl.replace link_load key c;
                pos := Array.mapi (fun rr x -> x + prim_vecs.(prim).(rr)) !pos)
              routes.(i);
            (* Wait in the destination buffer until use. *)
            let arrival = tprod + r.Tmap.hops.(i) in
            let use = tprod + delay.(i) in
            for tt = arrival to use - 1 do
              let key = (Array.to_list !pos, i, tt) in
              let c = (try Hashtbl.find buffer_load key with Not_found -> 0) + 1 in
              Hashtbl.replace buffer_load key c;
              if c > max_buffer.(i) then max_buffer.(i) <- c
            done
          end
        done)
      firings;
    Hashtbl.iter
      (fun (pe, prim, stream, at_time) count ->
        if count > 1 then
          collisions :=
            {
              link_pe = Array.of_list pe;
              primitive = primitive_vector pmat prim;
              stream;
              at_time;
              count;
            }
            :: !collisions)
      link_load);
  {
    makespan;
    num_processors;
    computations;
    conflicts;
    causality_violations = !causality;
    collisions = !collisions;
    max_buffer_occupancy = max_buffer;
    routing;
    verified =
      (if mismatches <> [] then Mismatch mismatches
       else match routing with None -> Skipped_no_routing | Some _ -> Values_ok);
    utilization =
      (if num_processors = 0 || makespan = 0 then 0.
       else float_of_int computations /. float_of_int (num_processors * makespan));
  }

let values_agree r = match r.verified with Mismatch _ -> false | _ -> true

let is_clean r =
  r.conflicts = [] && r.causality_violations = [] && r.collisions = [] && values_agree r

let fully_verified r = is_clean r && r.verified = Values_ok
