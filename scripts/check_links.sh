#!/bin/sh
# Check relative markdown cross-links in every tracked *.md file.
# A [text](target) link must resolve to an existing file or directory
# relative to the linking document; absolute URLs, mailto: and pure
# #anchors are skipped, and a #fragment on a file link is ignored.
# Exits 1 listing every broken link (used by the CI docs job).
set -u
cd "$(dirname "$0")/.."

tmp=$(mktemp)
broken=$(mktemp)
trap 'rm -f "$tmp" "$broken"' EXIT

for f in $(git ls-files '*.md'); do
  dir=$(dirname "$f")
  # Strip fenced code blocks first: indexing expressions like
  # `a[i](j)` inside them are not links.
  awk '/^ *```/ { fence = !fence; next } !fence' "$f" \
    | grep -o '](\([^)]*\))' >"$tmp" 2>/dev/null || :
  while IFS= read -r link; do
    target=${link#"]("}
    target=${target%")"}
    case "$target" in
    http://* | https://* | mailto:* | '#'* | '') continue ;;
    esac
    path=${target%%#*}
    [ -e "$dir/$path" ] || printf '%s: broken link -> %s\n' "$f" "$target" >>"$broken"
  done <"$tmp"
done

if [ -s "$broken" ]; then
  cat "$broken" >&2
  echo "FAIL: broken markdown cross-links" >&2
  exit 1
fi
echo "ok: all relative markdown links resolve"
