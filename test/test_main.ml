let () =
  Alcotest.run "shang-fortes-1990"
    [
      ("zint", Test_zint.suite);
      ("qnum", Test_qnum.suite);
      ("linalg", Test_linalg.suite);
      ("hnf-smith", Test_hnf.suite);
      ("ratmat", Test_ratmat.suite);
      ("lp", Test_lp.suite);
      ("uda", Test_uda.suite);
      ("conflict", Test_conflict.suite);
      ("theorems", Test_theorems.suite);
      ("family", Test_family.suite);
      ("schedule-tmap", Test_mapping.suite);
      ("optimizers", Test_optimizers.suite);
      ("systolic", Test_systolic.suite);
      ("algorithms", Test_algorithms.suite);
      ("lll", Test_lll.suite);
      ("space-opt", Test_space_opt.suite);
      ("frontend", Test_frontend.suite);
      ("enumerate", Test_enumerate.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("fuzz", Test_fuzz.suite);
      ("edge-cases", Test_edge.suite);
      ("scale", Test_scale.suite);
      ("report", Test_report.suite);
      ("server", Test_server.suite);
      ("cluster", Test_cluster.suite);
      ("paper-facts", Test_paper.suite);
    ]
