(* Tests for the Problem 2.1 enumeration and the Pareto analysis. *)

let test_all_optimal_matmul () =
  let alg = Matmul.algorithm ~mu:4 in
  let all = Enumerate.all_optimal_schedules alg ~s:Matmul.paper_s in
  Alcotest.(check int) "six optimal schedules" 6 (List.length all);
  (* The paper's two named optima are among them. *)
  let as_lists = List.map Intvec.to_ints all in
  Alcotest.(check bool) "(1,4,1) present" true (List.mem [ 1; 4; 1 ] as_lists);
  Alcotest.(check bool) "(4,1,1) present" true (List.mem [ 4; 1; 1 ] as_lists);
  (* Every enumerated schedule really is valid and optimal. *)
  List.iter
    (fun pi ->
      Alcotest.(check int) "cost" 24 (Schedule.objective ~mu:[| 4; 4; 4 |] pi);
      let t = Intmat.append_row Matmul.paper_s pi in
      Alcotest.(check bool) "conflict-free" true (Conflict.is_conflict_free ~mu:[| 4; 4; 4 |] t))
    all

let test_all_optimal_tc_unique () =
  (* Transitive closure has a unique optimum (mu+1, 1, 1). *)
  let mu = 4 in
  let alg = Transitive_closure.algorithm ~mu in
  let all = Enumerate.all_optimal_schedules alg ~s:Transitive_closure.paper_s in
  Alcotest.(check (list (list int))) "unique" [ [ mu + 1; 1; 1 ] ] (List.map Intvec.to_ints all)

let test_pareto_matmul () =
  let alg = Matmul.algorithm ~mu:4 in
  let front = Enumerate.pareto_front alg ~k:2 in
  Alcotest.(check bool) "nonempty" true (front <> []);
  (* Strictly improving processors as time grows; first point is the
     joint optimum's time. *)
  let rec strictly_improving = function
    | a :: (b :: _ as rest) ->
      a.Enumerate.total_time < b.Enumerate.total_time
      && a.Enumerate.processors > b.Enumerate.processors
      && strictly_improving rest
    | _ -> true
  in
  Alcotest.(check bool) "pareto shape" true (strictly_improving front);
  let first = List.hd front in
  Alcotest.(check int) "fastest = 25" 25 first.Enumerate.total_time;
  Alcotest.(check int) "9 PEs at the fastest point" 9 first.Enumerate.processors;
  (* Every point is a valid mapping. *)
  List.iter
    (fun p ->
      let t = Intmat.append_row p.Enumerate.s p.Enumerate.pi in
      Alcotest.(check bool) "valid" true
        (Intmat.rank t = 2 && Conflict.is_conflict_free ~mu:[| 4; 4; 4 |] t))
    front

let test_best_by_buffers () =
  (* Among matmul's six time-optimal schedules, buffer totals differ;
     the selector must return one achieving the minimum (3 registers,
     e.g. the paper's (1,4,1) with buffers (0,3,0)). *)
  let alg = Matmul.algorithm ~mu:4 in
  match Enumerate.best_by_buffers alg ~s:Matmul.paper_s with
  | Some (pi, routing) ->
    let total = Array.fold_left ( + ) 0 routing.Tmap.buffers in
    Alcotest.(check int) "cost optimal" 24 (Schedule.objective ~mu:[| 4; 4; 4 |] pi);
    (* Exhaustive floor: every optimal schedule needs >= this many. *)
    let all = Enumerate.all_optimal_schedules alg ~s:Matmul.paper_s in
    let best_possible =
      List.fold_left
        (fun acc pi ->
          match Tmap.find_routing (Tmap.make ~s:Matmul.paper_s ~pi) ~d:alg.Algorithm.dependences with
          | Some r -> min acc (Array.fold_left ( + ) 0 r.Tmap.buffers)
          | None -> acc)
        max_int all
    in
    Alcotest.(check int) "achieves the minimum" best_possible total
  | None -> Alcotest.fail "expected a schedule"

let test_large_mu_formulas () =
  (* The lattice oracle makes the paper's closed-form times checkable
     far beyond toy sizes: t°(mu) = mu(mu+2)+1 for matmul and
     mu(mu+3)+1 for transitive closure. *)
  List.iter
    (fun mu ->
      let alg = Matmul.algorithm ~mu in
      match Procedure51.optimize alg ~s:Matmul.paper_s with
      | Some r ->
        Alcotest.(check int)
          (Printf.sprintf "matmul mu=%d" mu)
          (Matmul.optimal_total_time ~mu) r.Procedure51.total_time
      | None -> Alcotest.fail "expected a schedule")
    [ 10; 14; 20 ];
  List.iter
    (fun mu ->
      let alg = Transitive_closure.algorithm ~mu in
      match Procedure51.optimize alg ~s:Transitive_closure.paper_s with
      | Some r ->
        Alcotest.(check int)
          (Printf.sprintf "tc mu=%d" mu)
          (Transitive_closure.optimal_total_time ~mu)
          r.Procedure51.total_time
      | None -> Alcotest.fail "expected a schedule")
    [ 10; 14 ]

let test_pareto_accept_reject_all () =
  (* An accept that rejects everything empties the front without
     crashing (the base level is still discovered pre-accept). *)
  let alg = Matmul.algorithm ~mu:3 in
  Alcotest.(check (list pass)) "rejecting accept yields empty front" []
    (Enumerate.pareto_front ~accept:(fun _ _ -> false) alg ~k:2)

let test_pareto_accept_shifts_front () =
  (* Rejecting exactly the unconstrained front's fastest point must
     move the front: the old optimum disappears and whatever remains
     stays valid, non-dominated, and no faster than before. *)
  let alg = Matmul.algorithm ~mu:3 in
  let full = Enumerate.pareto_front alg ~k:2 in
  Alcotest.(check bool) "baseline nonempty" true (full <> []);
  let fastest = List.hd full in
  let restricted =
    Enumerate.pareto_front
      ~accept:(fun pi s ->
        not
          (Intvec.to_ints pi = Intvec.to_ints fastest.Enumerate.pi
          && Intmat.to_ints s = Intmat.to_ints fastest.Enumerate.s))
      alg ~k:2
  in
  Alcotest.(check bool) "old optimum excluded" true
    (not
       (List.exists
          (fun p ->
            Intvec.to_ints p.Enumerate.pi = Intvec.to_ints fastest.Enumerate.pi
            && Intmat.to_ints p.Enumerate.s = Intmat.to_ints fastest.Enumerate.s)
          restricted));
  Alcotest.(check bool) "still nonempty" true (restricted <> []);
  let head = List.hd restricted in
  Alcotest.(check bool) "no faster than the unconstrained optimum" true
    (head.Enumerate.total_time >= fastest.Enumerate.total_time);
  List.iter
    (fun p ->
      let t = Intmat.append_row p.Enumerate.s p.Enumerate.pi in
      Alcotest.(check bool) "valid" true
        (Intmat.rank t = 2 && Conflict.is_conflict_free ~mu:[| 3; 3; 3 |] t))
    restricted

let test_best_by_buffers_tiebreak () =
  (* With buffer totals tied, the selector must break ties on hop
     count: verify it attains the lexicographic (buffers, hops)
     minimum over the whole optimal set. *)
  let alg = Matmul.algorithm ~mu:4 in
  match Enumerate.best_by_buffers alg ~s:Matmul.paper_s with
  | None -> Alcotest.fail "expected a schedule"
  | Some (_, routing) ->
    let got =
      ( Array.fold_left ( + ) 0 routing.Tmap.buffers,
        Array.fold_left ( + ) 0 routing.Tmap.hops )
    in
    let best =
      List.fold_left
        (fun acc pi ->
          match Tmap.find_routing (Tmap.make ~s:Matmul.paper_s ~pi) ~d:alg.Algorithm.dependences with
          | Some r ->
            min acc
              (Array.fold_left ( + ) 0 r.Tmap.buffers, Array.fold_left ( + ) 0 r.Tmap.hops)
          | None -> acc)
        (max_int, max_int)
        (Enumerate.all_optimal_schedules alg ~s:Matmul.paper_s)
    in
    Alcotest.(check (pair int int)) "lexicographic minimum" best got

let test_no_schedule_empty () =
  let alg = Matmul.algorithm ~mu:4 in
  Alcotest.(check (list pass)) "empty under tiny bound" []
    (Enumerate.all_optimal_schedules ~max_objective:3 alg ~s:Matmul.paper_s)

let suite =
  [
    Alcotest.test_case "all optimal matmul schedules" `Quick test_all_optimal_matmul;
    Alcotest.test_case "tc optimum unique" `Quick test_all_optimal_tc_unique;
    Alcotest.test_case "pareto matmul" `Slow test_pareto_matmul;
    Alcotest.test_case "best by buffers" `Quick test_best_by_buffers;
    Alcotest.test_case "pareto accept rejects all" `Quick test_pareto_accept_reject_all;
    Alcotest.test_case "pareto accept shifts front" `Slow test_pareto_accept_shifts_front;
    Alcotest.test_case "best-by-buffers tie-break" `Quick test_best_by_buffers_tiebreak;
    Alcotest.test_case "large-mu formulas" `Slow test_large_mu_formulas;
    Alcotest.test_case "empty under bound" `Quick test_no_schedule_empty;
  ]
